#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <set>
#include <thread>

#include "util/cli.hpp"
#include "util/env.hpp"
#include "util/error.hpp"
#include "util/log.hpp"
#include "util/parallel_guard.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/thread_pool.hpp"
#include "util/timer.hpp"

namespace trkx {
namespace {

// ---------- Rng ----------

TEST(Rng, DeterministicGivenSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) same += (a.next_u64() == b.next_u64());
  EXPECT_LT(same, 3);
}

TEST(Rng, SplitStreamsAreIndependentAndDeterministic) {
  Rng parent(7);
  Rng c1 = parent.split();
  Rng c2 = parent.split();
  EXPECT_NE(c1.state(), c2.state());
  EXPECT_NE(c1.next_u64(), c2.next_u64());
  Rng parent2(7);
  Rng d1 = parent2.split();
  Rng parent3(7);
  Rng e1 = parent3.split();
  EXPECT_EQ(d1.state(), e1.state());
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(3);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformMeanNearHalf) {
  Rng rng(4);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.uniform();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, UniformIndexBounds) {
  Rng rng(5);
  for (int i = 0; i < 10000; ++i) EXPECT_LT(rng.uniform_index(17), 17u);
}

TEST(Rng, UniformIndexChiSquared) {
  Rng rng(6);
  const std::uint64_t k = 10;
  const int n = 100000;
  std::vector<int> counts(k, 0);
  for (int i = 0; i < n; ++i) ++counts[rng.uniform_index(k)];
  const double expected = static_cast<double>(n) / k;
  double chi2 = 0.0;
  for (int c : counts) chi2 += (c - expected) * (c - expected) / expected;
  // 9 dof: p=0.001 critical value is 27.9.
  EXPECT_LT(chi2, 27.9);
}

TEST(Rng, NormalMoments) {
  Rng rng(8);
  const int n = 100000;
  double sum = 0.0, sq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal();
    sum += x;
    sq += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sq / n, 1.0, 0.03);
}

TEST(Rng, PoissonMeanSmallLambda) {
  Rng rng(9);
  const int n = 50000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) sum += rng.poisson(3.5);
  EXPECT_NEAR(sum / n, 3.5, 0.1);
}

TEST(Rng, PoissonMeanLargeLambda) {
  Rng rng(10);
  const int n = 20000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) sum += rng.poisson(200.0);
  EXPECT_NEAR(sum / n, 200.0, 2.0);
}

TEST(Rng, PoissonZeroLambda) {
  Rng rng(11);
  EXPECT_EQ(rng.poisson(0.0), 0);
}

TEST(Rng, SampleWithoutReplacementDistinct) {
  Rng rng(12);
  for (int trial = 0; trial < 100; ++trial) {
    auto s = rng.sample_without_replacement(50, 20);
    std::set<std::uint32_t> uniq(s.begin(), s.end());
    EXPECT_EQ(uniq.size(), 20u);
    for (auto v : s) EXPECT_LT(v, 50u);
  }
}

TEST(Rng, SampleWithoutReplacementAllWhenKGeN) {
  Rng rng(13);
  auto s = rng.sample_without_replacement(5, 9);
  std::sort(s.begin(), s.end());
  ASSERT_EQ(s.size(), 5u);
  for (std::uint32_t i = 0; i < 5; ++i) EXPECT_EQ(s[i], i);
}

TEST(Rng, SampleWithoutReplacementUniform) {
  Rng rng(14);
  const int trials = 30000;
  std::vector<int> counts(10, 0);
  for (int t = 0; t < trials; ++t)
    for (auto v : rng.sample_without_replacement(10, 3)) ++counts[v];
  const double expected = trials * 3.0 / 10.0;
  for (int c : counts) EXPECT_NEAR(c, expected, expected * 0.05);
}

TEST(Rng, ShufflePreservesElements) {
  Rng rng(15);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7};
  auto orig = v;
  rng.shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, orig);
}

// ---------- stats ----------

TEST(RunningStat, MeanAndVariance) {
  RunningStat s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-9);
  EXPECT_EQ(s.min(), 2.0);
  EXPECT_EQ(s.max(), 9.0);
}

TEST(RunningStat, SingleElement) {
  RunningStat s;
  s.add(3.0);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_EQ(s.mean(), 3.0);
}

TEST(RunningStat, MinMaxFromFirstAddNotZero) {
  // Regression: min/max must come from the first observation, never from a
  // spurious 0.0 default, for streams entirely on one side of zero.
  RunningStat pos;
  for (double x : {5.0, 3.0, 8.0}) pos.add(x);
  EXPECT_DOUBLE_EQ(pos.min(), 3.0);
  EXPECT_DOUBLE_EQ(pos.max(), 8.0);
  RunningStat neg;
  for (double x : {-5.0, -3.0, -8.0}) neg.add(x);
  EXPECT_DOUBLE_EQ(neg.min(), -8.0);
  EXPECT_DOUBLE_EQ(neg.max(), -3.0);
}

TEST(RunningStat, EmptyReportsZero) {
  RunningStat s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.min(), 0.0);
  EXPECT_DOUBLE_EQ(s.max(), 0.0);
}

TEST(RunningStat, MergeMatchesSequential) {
  const std::vector<double> xs{2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  RunningStat whole;
  for (double x : xs) whole.add(x);
  RunningStat a, b;
  for (std::size_t i = 0; i < xs.size(); ++i) (i < 3 ? a : b).add(xs[i]);
  a.merge(b);
  EXPECT_EQ(a.count(), whole.count());
  EXPECT_NEAR(a.mean(), whole.mean(), 1e-12);
  EXPECT_NEAR(a.variance(), whole.variance(), 1e-12);
  EXPECT_DOUBLE_EQ(a.min(), whole.min());
  EXPECT_DOUBLE_EQ(a.max(), whole.max());
}

TEST(RunningStat, MergeEmptySides) {
  RunningStat a, b, empty;
  a.add(2.0);
  a.merge(empty);  // merging an empty stat changes nothing
  EXPECT_EQ(a.count(), 1u);
  EXPECT_DOUBLE_EQ(a.min(), 2.0);
  b.merge(a);  // merging into an empty stat copies
  EXPECT_EQ(b.count(), 1u);
  EXPECT_DOUBLE_EQ(b.mean(), 2.0);
  EXPECT_DOUBLE_EQ(b.min(), 2.0);
  EXPECT_DOUBLE_EQ(b.max(), 2.0);
}

TEST(RunningStat, PercentileExactWithinReservoir) {
  RunningStat s;
  for (int i = 1; i <= 100; ++i) s.add(i);  // <= kReservoirCap: exact
  EXPECT_DOUBLE_EQ(s.percentile(0), 1.0);
  EXPECT_DOUBLE_EQ(s.percentile(100), 100.0);
  EXPECT_DOUBLE_EQ(s.percentile(50), 50.5);
}

TEST(RunningStat, PercentileEstimatedBeyondReservoir) {
  RunningStat s;
  const int n = 10 * static_cast<int>(RunningStat::kReservoirCap);
  for (int i = 1; i <= n; ++i) s.add(i);
  const double p50 = s.percentile(50);
  const double p99 = s.percentile(99);
  // Reservoir estimate on a uniform stream: allow sampling error, but the
  // ordering and the [min, max] clamp must hold exactly.
  EXPECT_NEAR(p50, n / 2.0, n * 0.1);
  EXPECT_GT(p99, p50);
  EXPECT_GE(s.percentile(0), s.min());
  EXPECT_LE(s.percentile(100), s.max());
}

TEST(RunningStat, PercentileEmptyIsZero) {
  RunningStat s;
  EXPECT_DOUBLE_EQ(s.percentile(50), 0.0);
}

TEST(RunningStat, PercentileMergeConcatenatesWhileFitting) {
  RunningStat a, b;
  for (int i = 1; i <= 200; ++i) a.add(i);
  for (int i = 201; i <= 400; ++i) b.add(i);
  a.merge(b);  // 400 <= kReservoirCap: still exact after the merge
  EXPECT_DOUBLE_EQ(a.percentile(50), 200.5);
  EXPECT_DOUBLE_EQ(a.percentile(100), 400.0);
}

TEST(Percentile, MedianAndExtremes) {
  std::vector<double> v{5, 1, 3, 2, 4};
  EXPECT_DOUBLE_EQ(percentile(v, 50), 3.0);
  EXPECT_DOUBLE_EQ(percentile(v, 0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(v, 100), 5.0);
}

TEST(Percentile, Interpolates) {
  std::vector<double> v{0, 10};
  EXPECT_DOUBLE_EQ(percentile(v, 25), 2.5);
}

TEST(Percentile, ThrowsOnEmpty) {
  EXPECT_THROW(percentile({}, 50), Error);
}

TEST(BinaryMetricsTest, PrecisionRecallF1) {
  BinaryMetrics m;
  // 3 TP, 1 FP, 2 FN, 4 TN
  for (int i = 0; i < 3; ++i) m.add(true, true);
  m.add(true, false);
  for (int i = 0; i < 2; ++i) m.add(false, true);
  for (int i = 0; i < 4; ++i) m.add(false, false);
  EXPECT_DOUBLE_EQ(m.precision(), 0.75);
  EXPECT_DOUBLE_EQ(m.recall(), 0.6);
  EXPECT_NEAR(m.f1(), 2 * 0.75 * 0.6 / 1.35, 1e-12);
  EXPECT_DOUBLE_EQ(m.accuracy(), 0.7);
  EXPECT_EQ(m.total(), 10u);
}

TEST(BinaryMetricsTest, UndefinedIsZero) {
  BinaryMetrics m;
  EXPECT_EQ(m.precision(), 0.0);
  EXPECT_EQ(m.recall(), 0.0);
  EXPECT_EQ(m.f1(), 0.0);
}

TEST(BinaryMetricsTest, Merge) {
  BinaryMetrics a, b;
  a.add(true, true);
  b.add(false, true);
  a.merge(b);
  EXPECT_EQ(a.true_positives, 1u);
  EXPECT_EQ(a.false_negatives, 1u);
  EXPECT_EQ(a.total(), 2u);
}

// ---------- cli ----------

TEST(Cli, ParsesKeyValueForms) {
  // Note: a bare flag consumes the next token unless it starts with "--",
  // so positionals must precede bare flags.
  const char* argv[] = {"prog", "pos1", "--alpha", "3", "--beta=hi",
                        "--flag"};
  ArgParser args(6, const_cast<char**>(argv));
  EXPECT_EQ(args.get_int("alpha", 0), 3);
  EXPECT_EQ(args.get("beta", ""), "hi");
  EXPECT_TRUE(args.get_bool("flag", false));
  EXPECT_FALSE(args.get_bool("missing", false));
  ASSERT_EQ(args.positional().size(), 1u);
  EXPECT_EQ(args.positional()[0], "pos1");
}

TEST(Cli, Defaults) {
  const char* argv[] = {"prog"};
  ArgParser args(1, const_cast<char**>(argv));
  EXPECT_EQ(args.get_int("x", 7), 7);
  EXPECT_DOUBLE_EQ(args.get_double("y", 1.5), 1.5);
  EXPECT_FALSE(args.has("x"));
}

TEST(Cli, DoubleParsing) {
  const char* argv[] = {"prog", "--lr", "0.25"};
  ArgParser args(3, const_cast<char**>(argv));
  EXPECT_DOUBLE_EQ(args.get_double("lr", 0.0), 0.25);
}

// ---------- thread pool ----------

TEST(ThreadPoolTest, RunsAllTasks) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  std::vector<std::future<void>> futs;
  for (int i = 0; i < 100; ++i)
    futs.push_back(pool.submit([&count] { ++count; }));
  for (auto& f : futs) f.get();
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPoolTest, ParallelForCoversRange) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> hits(50);
  pool.parallel_for(50, [&](std::size_t i) { ++hits[i]; });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

// ---------- timers ----------

TEST(PhaseTimersTest, AccumulatesAndMerges) {
  PhaseTimers t;
  t.add("a", 1.0);
  t.add("a", 2.0);
  t.add("b", 0.5);
  EXPECT_DOUBLE_EQ(t.get("a"), 3.0);
  EXPECT_DOUBLE_EQ(t.get("b"), 0.5);
  EXPECT_DOUBLE_EQ(t.get("missing"), 0.0);
  PhaseTimers u;
  u.add("a", 1.0);
  t.merge(u);
  EXPECT_DOUBLE_EQ(t.get("a"), 4.0);
}

TEST(ScopedPhaseTest, RecordsElapsed) {
  PhaseTimers t;
  {
    ScopedPhase p(t, "x");
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  EXPECT_GT(t.get("x"), 0.0);
}

TEST(PhaseTimersTest, ConcurrentAddsFromManyThreads) {
  // DDP rank threads share one PhaseTimers per epoch record; hammer it.
  PhaseTimers t;
  std::vector<std::thread> threads;
  for (int r = 0; r < 8; ++r)
    threads.emplace_back([&t, r] {
      const std::string mine = "phase" + std::to_string(r % 2);
      for (int i = 0; i < 5000; ++i) {
        t.add(mine, 0.001);
        t.add("shared", 0.001);
      }
    });
  for (auto& th : threads) th.join();
  EXPECT_NEAR(t.get("shared"), 8 * 5000 * 0.001, 1e-6);
  EXPECT_NEAR(t.get("phase0") + t.get("phase1"), 8 * 5000 * 0.001, 1e-6);
  // Snapshot under concurrent-free conditions is consistent.
  const auto buckets = t.buckets();
  EXPECT_EQ(buckets.size(), 3u);
}

TEST(PhaseTimersTest, CopyIsSnapshot) {
  PhaseTimers t;
  t.add("a", 1.0);
  PhaseTimers copy = t;
  t.add("a", 1.0);
  EXPECT_DOUBLE_EQ(copy.get("a"), 1.0);
  EXPECT_DOUBLE_EQ(t.get("a"), 2.0);
}

// ---------- log ----------

TEST(LogTest, SinkRedirectAndThreadTag) {
  const char* path = "/tmp/trkx_util_test_log.txt";
  const LogLevel prev = log_level();
  set_log_level(LogLevel::kDebug);
  set_log_file(path);
  TRKX_INFO << "hello from main";
  std::thread worker([] { TRKX_WARN << "hello from worker"; });
  worker.join();
  set_log_sink(nullptr);  // back to stderr (closes the owned file)
  set_log_level(prev);

  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::string text((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  EXPECT_NE(text.find("hello from main"), std::string::npos);
  EXPECT_NE(text.find("hello from worker"), std::string::npos);
  EXPECT_NE(text.find("[INFO "), std::string::npos);
  EXPECT_NE(text.find("[WARN "), std::string::npos);
  // Each line carries a [tNN] thread tag, and the two lines came from
  // different threads.
  std::set<std::string> tags;
  for (std::size_t pos = text.find("[t"); pos != std::string::npos;
       pos = text.find("[t", pos + 1))
    tags.insert(text.substr(pos, text.find(']', pos) + 1 - pos));
  EXPECT_EQ(tags.size(), 2u);
  std::remove(path);
}

// ---------- error ----------

TEST(ErrorTest, CheckThrowsWithContext) {
  try {
    TRKX_CHECK_MSG(1 == 2, "custom " << 42);
    FAIL() << "should have thrown";
  } catch (const Error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("custom 42"), std::string::npos);
    EXPECT_NE(what.find("1 == 2"), std::string::npos);
  }
}

TEST(ErrorTest, CheckPassesSilently) {
  EXPECT_NO_THROW(TRKX_CHECK(2 + 2 == 4));
}

// ---------- env registry ----------

TEST(EnvRegistry, KnownKnobsRegisteredAndSorted) {
  const auto& ks = env::knobs();
  ASSERT_FALSE(ks.empty());
  EXPECT_TRUE(env::is_registered("TRKX_SIMD"));
  EXPECT_TRUE(env::is_registered("TRKX_FAULTS"));
  EXPECT_TRUE(env::is_registered("TRKX_POOL_MAX_MB"));
  EXPECT_FALSE(env::is_registered("TRKX_NOT_A_KNOB"));
  for (std::size_t i = 1; i < ks.size(); ++i)
    EXPECT_LT(std::string(ks[i - 1].name), std::string(ks[i].name))
        << "registry must stay sorted by name";
  for (const auto& k : ks) {
    EXPECT_TRUE(std::string(k.name).rfind("TRKX_", 0) == 0) << k.name;
    EXPECT_NE(std::string(k.doc), "") << k.name << " needs a doc string";
  }
}

TEST(EnvRegistry, UnregisteredKnobThrows) {
  EXPECT_THROW(env::get_string("TRKX_NOT_A_KNOB"), Error);
  EXPECT_THROW(env::raw("TRKX_NOT_A_KNOB"), Error);
}

TEST(EnvRegistry, TypedAccessorsAndDefaults) {
  ::unsetenv("TRKX_POOL_MAX_MB");
  EXPECT_EQ(env::get_int("TRKX_POOL_MAX_MB"), 128);  // registry default
  ::setenv("TRKX_POOL_MAX_MB", "64", 1);
  EXPECT_EQ(env::get_int("TRKX_POOL_MAX_MB"), 64);
  ::setenv("TRKX_POOL_MAX_MB", "not-a-number", 1);
  EXPECT_EQ(env::get_int("TRKX_POOL_MAX_MB"), 128);  // falls back
  ::unsetenv("TRKX_POOL_MAX_MB");

  ::unsetenv("TRKX_MEM_PLAN");
  EXPECT_TRUE(env::get_bool("TRKX_MEM_PLAN"));  // default "1"
  ::setenv("TRKX_MEM_PLAN", "0", 1);
  EXPECT_FALSE(env::get_bool("TRKX_MEM_PLAN"));
  ::setenv("TRKX_MEM_PLAN", "off", 1);
  EXPECT_FALSE(env::get_bool("TRKX_MEM_PLAN"));
  ::setenv("TRKX_MEM_PLAN", "yes", 1);
  EXPECT_TRUE(env::get_bool("TRKX_MEM_PLAN"));
  ::unsetenv("TRKX_MEM_PLAN");

  ::setenv("TRKX_COMM_TIMEOUT_MS", "1500.5", 1);
  EXPECT_DOUBLE_EQ(env::get_double("TRKX_COMM_TIMEOUT_MS"), 1500.5);
  ::unsetenv("TRKX_COMM_TIMEOUT_MS");
  EXPECT_DOUBLE_EQ(env::get_double("TRKX_COMM_TIMEOUT_MS"), 0.0);

  ::unsetenv("TRKX_SIMD");
  EXPECT_EQ(env::get_string("TRKX_SIMD"), "auto");
  EXPECT_FALSE(env::is_set("TRKX_SIMD"));
}

TEST(EnvRegistry, DumpIsValidSortedJson) {
  std::ostringstream os;
  env::dump_registry_json(os);
  const std::string json = os.str();
  EXPECT_EQ(json.front(), '[');
  // Every registered knob appears exactly once.
  for (const auto& k : env::knobs()) {
    const std::string needle = std::string("\"name\": \"") + k.name + "\"";
    const std::size_t first = json.find(needle);
    ASSERT_NE(first, std::string::npos) << k.name;
    EXPECT_EQ(json.find(needle, first + 1), std::string::npos) << k.name;
  }
}

TEST(ExceptionBarrier, CapturesFirstAndRethrowsOnce) {
  ExceptionBarrier barrier;
  EXPECT_FALSE(barrier.cancelled());
  barrier.run([] { throw Error("first"); });
  EXPECT_TRUE(barrier.cancelled());
  barrier.run([] { throw Error("second"); });  // dropped: first wins
  try {
    barrier.rethrow();
    FAIL() << "rethrow() did not throw";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("first"), std::string::npos);
  }
  // Cleared after rethrow: reusable, second rethrow is a no-op.
  EXPECT_FALSE(barrier.cancelled());
  barrier.rethrow();
}

TEST(ExceptionBarrier, NonThrowingBodyPassesThrough) {
  ExceptionBarrier barrier;
  int runs = 0;
  barrier.run([&] { ++runs; });
  EXPECT_EQ(runs, 1);
  EXPECT_FALSE(barrier.cancelled());
  barrier.rethrow();  // nothing captured: no-op
}

}  // namespace
}  // namespace trkx
