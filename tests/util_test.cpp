#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <chrono>
#include <set>
#include <thread>

#include "util/cli.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/thread_pool.hpp"
#include "util/timer.hpp"

namespace trkx {
namespace {

// ---------- Rng ----------

TEST(Rng, DeterministicGivenSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) same += (a.next_u64() == b.next_u64());
  EXPECT_LT(same, 3);
}

TEST(Rng, SplitStreamsAreIndependentAndDeterministic) {
  Rng parent(7);
  Rng c1 = parent.split();
  Rng c2 = parent.split();
  EXPECT_NE(c1.state(), c2.state());
  EXPECT_NE(c1.next_u64(), c2.next_u64());
  Rng parent2(7);
  Rng d1 = parent2.split();
  Rng parent3(7);
  Rng e1 = parent3.split();
  EXPECT_EQ(d1.state(), e1.state());
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(3);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformMeanNearHalf) {
  Rng rng(4);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.uniform();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, UniformIndexBounds) {
  Rng rng(5);
  for (int i = 0; i < 10000; ++i) EXPECT_LT(rng.uniform_index(17), 17u);
}

TEST(Rng, UniformIndexChiSquared) {
  Rng rng(6);
  const std::uint64_t k = 10;
  const int n = 100000;
  std::vector<int> counts(k, 0);
  for (int i = 0; i < n; ++i) ++counts[rng.uniform_index(k)];
  const double expected = static_cast<double>(n) / k;
  double chi2 = 0.0;
  for (int c : counts) chi2 += (c - expected) * (c - expected) / expected;
  // 9 dof: p=0.001 critical value is 27.9.
  EXPECT_LT(chi2, 27.9);
}

TEST(Rng, NormalMoments) {
  Rng rng(8);
  const int n = 100000;
  double sum = 0.0, sq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal();
    sum += x;
    sq += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sq / n, 1.0, 0.03);
}

TEST(Rng, PoissonMeanSmallLambda) {
  Rng rng(9);
  const int n = 50000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) sum += rng.poisson(3.5);
  EXPECT_NEAR(sum / n, 3.5, 0.1);
}

TEST(Rng, PoissonMeanLargeLambda) {
  Rng rng(10);
  const int n = 20000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) sum += rng.poisson(200.0);
  EXPECT_NEAR(sum / n, 200.0, 2.0);
}

TEST(Rng, PoissonZeroLambda) {
  Rng rng(11);
  EXPECT_EQ(rng.poisson(0.0), 0);
}

TEST(Rng, SampleWithoutReplacementDistinct) {
  Rng rng(12);
  for (int trial = 0; trial < 100; ++trial) {
    auto s = rng.sample_without_replacement(50, 20);
    std::set<std::uint32_t> uniq(s.begin(), s.end());
    EXPECT_EQ(uniq.size(), 20u);
    for (auto v : s) EXPECT_LT(v, 50u);
  }
}

TEST(Rng, SampleWithoutReplacementAllWhenKGeN) {
  Rng rng(13);
  auto s = rng.sample_without_replacement(5, 9);
  std::sort(s.begin(), s.end());
  ASSERT_EQ(s.size(), 5u);
  for (std::uint32_t i = 0; i < 5; ++i) EXPECT_EQ(s[i], i);
}

TEST(Rng, SampleWithoutReplacementUniform) {
  Rng rng(14);
  const int trials = 30000;
  std::vector<int> counts(10, 0);
  for (int t = 0; t < trials; ++t)
    for (auto v : rng.sample_without_replacement(10, 3)) ++counts[v];
  const double expected = trials * 3.0 / 10.0;
  for (int c : counts) EXPECT_NEAR(c, expected, expected * 0.05);
}

TEST(Rng, ShufflePreservesElements) {
  Rng rng(15);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7};
  auto orig = v;
  rng.shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, orig);
}

// ---------- stats ----------

TEST(RunningStat, MeanAndVariance) {
  RunningStat s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-9);
  EXPECT_EQ(s.min(), 2.0);
  EXPECT_EQ(s.max(), 9.0);
}

TEST(RunningStat, SingleElement) {
  RunningStat s;
  s.add(3.0);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_EQ(s.mean(), 3.0);
}

TEST(Percentile, MedianAndExtremes) {
  std::vector<double> v{5, 1, 3, 2, 4};
  EXPECT_DOUBLE_EQ(percentile(v, 50), 3.0);
  EXPECT_DOUBLE_EQ(percentile(v, 0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(v, 100), 5.0);
}

TEST(Percentile, Interpolates) {
  std::vector<double> v{0, 10};
  EXPECT_DOUBLE_EQ(percentile(v, 25), 2.5);
}

TEST(Percentile, ThrowsOnEmpty) {
  EXPECT_THROW(percentile({}, 50), Error);
}

TEST(BinaryMetricsTest, PrecisionRecallF1) {
  BinaryMetrics m;
  // 3 TP, 1 FP, 2 FN, 4 TN
  for (int i = 0; i < 3; ++i) m.add(true, true);
  m.add(true, false);
  for (int i = 0; i < 2; ++i) m.add(false, true);
  for (int i = 0; i < 4; ++i) m.add(false, false);
  EXPECT_DOUBLE_EQ(m.precision(), 0.75);
  EXPECT_DOUBLE_EQ(m.recall(), 0.6);
  EXPECT_NEAR(m.f1(), 2 * 0.75 * 0.6 / 1.35, 1e-12);
  EXPECT_DOUBLE_EQ(m.accuracy(), 0.7);
  EXPECT_EQ(m.total(), 10u);
}

TEST(BinaryMetricsTest, UndefinedIsZero) {
  BinaryMetrics m;
  EXPECT_EQ(m.precision(), 0.0);
  EXPECT_EQ(m.recall(), 0.0);
  EXPECT_EQ(m.f1(), 0.0);
}

TEST(BinaryMetricsTest, Merge) {
  BinaryMetrics a, b;
  a.add(true, true);
  b.add(false, true);
  a.merge(b);
  EXPECT_EQ(a.true_positives, 1u);
  EXPECT_EQ(a.false_negatives, 1u);
  EXPECT_EQ(a.total(), 2u);
}

// ---------- cli ----------

TEST(Cli, ParsesKeyValueForms) {
  // Note: a bare flag consumes the next token unless it starts with "--",
  // so positionals must precede bare flags.
  const char* argv[] = {"prog", "pos1", "--alpha", "3", "--beta=hi",
                        "--flag"};
  ArgParser args(6, const_cast<char**>(argv));
  EXPECT_EQ(args.get_int("alpha", 0), 3);
  EXPECT_EQ(args.get("beta", ""), "hi");
  EXPECT_TRUE(args.get_bool("flag", false));
  EXPECT_FALSE(args.get_bool("missing", false));
  ASSERT_EQ(args.positional().size(), 1u);
  EXPECT_EQ(args.positional()[0], "pos1");
}

TEST(Cli, Defaults) {
  const char* argv[] = {"prog"};
  ArgParser args(1, const_cast<char**>(argv));
  EXPECT_EQ(args.get_int("x", 7), 7);
  EXPECT_DOUBLE_EQ(args.get_double("y", 1.5), 1.5);
  EXPECT_FALSE(args.has("x"));
}

TEST(Cli, DoubleParsing) {
  const char* argv[] = {"prog", "--lr", "0.25"};
  ArgParser args(3, const_cast<char**>(argv));
  EXPECT_DOUBLE_EQ(args.get_double("lr", 0.0), 0.25);
}

// ---------- thread pool ----------

TEST(ThreadPoolTest, RunsAllTasks) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  std::vector<std::future<void>> futs;
  for (int i = 0; i < 100; ++i)
    futs.push_back(pool.submit([&count] { ++count; }));
  for (auto& f : futs) f.get();
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPoolTest, ParallelForCoversRange) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> hits(50);
  pool.parallel_for(50, [&](std::size_t i) { ++hits[i]; });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

// ---------- timers ----------

TEST(PhaseTimersTest, AccumulatesAndMerges) {
  PhaseTimers t;
  t.add("a", 1.0);
  t.add("a", 2.0);
  t.add("b", 0.5);
  EXPECT_DOUBLE_EQ(t.get("a"), 3.0);
  EXPECT_DOUBLE_EQ(t.get("b"), 0.5);
  EXPECT_DOUBLE_EQ(t.get("missing"), 0.0);
  PhaseTimers u;
  u.add("a", 1.0);
  t.merge(u);
  EXPECT_DOUBLE_EQ(t.get("a"), 4.0);
}

TEST(ScopedPhaseTest, RecordsElapsed) {
  PhaseTimers t;
  {
    ScopedPhase p(t, "x");
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  EXPECT_GT(t.get("x"), 0.0);
}

// ---------- error ----------

TEST(ErrorTest, CheckThrowsWithContext) {
  try {
    TRKX_CHECK_MSG(1 == 2, "custom " << 42);
    FAIL() << "should have thrown";
  } catch (const Error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("custom 42"), std::string::npos);
    EXPECT_NE(what.find("1 == 2"), std::string::npos);
  }
}

TEST(ErrorTest, CheckPassesSilently) {
  EXPECT_NO_THROW(TRKX_CHECK(2 + 2 == 4));
}

}  // namespace
}  // namespace trkx
