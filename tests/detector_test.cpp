#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "detector/helix.hpp"
#include "detector/presets.hpp"
#include "util/rng.hpp"

namespace trkx {
namespace {

// ---------- helix ----------

TEST(HelixTest, RadiusMatchesPtOverQB) {
  ParticleState s;
  s.pt = 1.0;  // GeV
  Helix h(s, 2.0);
  EXPECT_NEAR(h.radius(), 1.0 / 0.6 * 1000.0, 1e-6);  // mm
}

TEST(HelixTest, StartsAtOriginWithCorrectDirection) {
  ParticleState s;
  s.phi0 = 0.7;
  s.z0 = 12.0;
  Helix h(s, 2.0);
  const HitPoint p0 = h.at(0.0);
  EXPECT_NEAR(p0.x, 0.0, 1e-9);
  EXPECT_NEAR(p0.y, 0.0, 1e-9);
  EXPECT_NEAR(p0.z, 12.0, 1e-9);
  // Small step moves along (cos φ0, sin φ0).
  const HitPoint p1 = h.at(1e-4);
  EXPECT_NEAR(std::atan2(p1.y, p1.x), 0.7, 1e-3);
}

TEST(HelixTest, TransverseDistanceFormula) {
  // d(t) = 2R sin(t/2), independent of charge.
  for (int charge : {1, -1}) {
    ParticleState s;
    s.pt = 2.0;
    s.phi0 = 1.1;
    s.charge = charge;
    Helix h(s, 2.0);
    for (double t : {0.1, 0.5, 1.0, 2.0}) {
      const HitPoint p = h.at(t);
      EXPECT_NEAR(p.r(), 2.0 * h.radius() * std::sin(t / 2.0),
                  1e-6 * h.radius());
    }
  }
}

TEST(HelixTest, LayerCrossingIsOnLayer) {
  ParticleState s;
  s.pt = 1.5;
  s.phi0 = -2.0;
  s.eta = 0.8;
  s.charge = -1;
  Helix h(s, 2.0);
  auto p = h.intersect_layer(500.0);
  ASSERT_TRUE(p.has_value());
  EXPECT_NEAR(p->r(), 500.0, 1e-6);
}

TEST(HelixTest, LowPtCurlsBeforeOuterLayer) {
  ParticleState s;
  s.pt = 0.1;  // R = 166.7mm, reach = 333mm
  Helix h(s, 2.0);
  EXPECT_TRUE(h.intersect_layer(300.0).has_value());
  EXPECT_FALSE(h.intersect_layer(400.0).has_value());
}

TEST(HelixTest, ZAdvancesWithEta) {
  ParticleState s;
  s.eta = 1.0;
  s.z0 = 0.0;
  Helix h(s, 2.0);
  auto t = h.turning_angle_at_radius(300.0);
  ASSERT_TRUE(t.has_value());
  const HitPoint p = h.at(*t);
  // z = R·t·sinh(η); with η=1 the hit z should be positive and ~arc*1.1752.
  EXPECT_NEAR(p.z, h.radius() * (*t) * std::sinh(1.0), 1e-6);
  EXPECT_GT(p.z, 0.0);
}

TEST(HelixTest, OppositeChargesBendOppositely) {
  ParticleState plus, minus;
  plus.charge = 1;
  minus.charge = -1;
  Helix hp(plus, 2.0), hm(minus, 2.0);
  auto t = hp.turning_angle_at_radius(200.0);
  ASSERT_TRUE(t.has_value());
  const HitPoint pp = hp.at(*t);
  const HitPoint pm = hm.at(*t);
  // Same radius, mirrored azimuth relative to φ0 = 0.
  EXPECT_NEAR(pp.y, -pm.y, 1e-6);
  EXPECT_NEAR(pp.x, pm.x, 1e-6);
}

TEST(HelixTest, InvalidInputsThrow) {
  ParticleState s;
  s.pt = 0.0;
  EXPECT_THROW(Helix(s, 2.0), Error);
  s.pt = 1.0;
  s.charge = 2;
  EXPECT_THROW(Helix(s, 2.0), Error);
}

// ---------- event generation ----------

DetectorConfig tiny_config() {
  DetectorConfig cfg;
  cfg.mean_particles = 30.0;
  cfg.noise_fraction = 0.05;
  return cfg;
}

TEST(EventGenTest, HitsLieOnLayers) {
  Rng rng(1);
  Event e = generate_event(tiny_config(), rng);
  ASSERT_GT(e.hits.size(), 0u);
  const auto& radii = tiny_config().layer_radii;
  for (const Hit& h : e.hits) {
    ASSERT_LT(h.layer, radii.size());
    // Smearing is ~0.5mm in rφ; radius stays within a few mm.
    EXPECT_NEAR(h.r(), radii[h.layer], 5.0);
    EXPECT_LE(std::fabs(h.z), tiny_config().barrel_half_length + 5.0);
  }
}

TEST(EventGenTest, TruthHitsAreLayerOrdered) {
  Rng rng(2);
  Event e = generate_event(tiny_config(), rng);
  for (const TruthParticle& p : e.particles) {
    for (std::size_t i = 0; i + 1 < p.hits.size(); ++i) {
      EXPECT_LT(e.hits[p.hits[i]].layer, e.hits[p.hits[i + 1]].layer);
      EXPECT_EQ(e.hits[p.hits[i]].particle, e.hits[p.hits[i + 1]].particle);
    }
  }
}

TEST(EventGenTest, LabelsMarkTrueSegmentsOnly) {
  Rng rng(3);
  Event e = generate_event(tiny_config(), rng);
  ASSERT_EQ(e.edge_labels.size(), e.graph.num_edges());
  // Every positively labelled edge must be a consecutive same-particle pair.
  std::set<std::pair<std::uint32_t, std::uint32_t>> true_segments;
  for (const TruthParticle& p : e.particles)
    for (std::size_t i = 0; i + 1 < p.hits.size(); ++i)
      true_segments.insert({p.hits[i], p.hits[i + 1]});
  std::size_t positives = 0;
  for (std::size_t i = 0; i < e.graph.num_edges(); ++i) {
    const Edge& edge = e.graph.edge(i);
    if (e.edge_labels[i]) {
      ++positives;
      EXPECT_TRUE(true_segments.count({edge.src, edge.dst}));
    }
  }
  EXPECT_GT(positives, 0u);
}

TEST(EventGenTest, MostTrueSegmentsCaptured) {
  // The connection windows should capture the bulk of truth segments
  // (graph-construction efficiency), or the GNN has nothing to learn.
  Rng rng(4);
  Event e = generate_event(tiny_config(), rng);
  std::size_t captured = 0, total = 0;
  for (const TruthParticle& p : e.particles) {
    for (std::size_t i = 0; i + 1 < p.hits.size(); ++i) {
      ++total;
      if (e.graph.find_edge(p.hits[i], p.hits[i + 1]) != Graph::kNoEdge)
        ++captured;
    }
  }
  ASSERT_GT(total, 0u);
  EXPECT_GT(static_cast<double>(captured) / total, 0.8);
}

TEST(EventGenTest, EdgesPointOutward) {
  Rng rng(5);
  Event e = generate_event(tiny_config(), rng);
  for (const Edge& edge : e.graph.edges())
    EXPECT_LT(e.hits[edge.src].layer, e.hits[edge.dst].layer);
}

TEST(EventGenTest, FeaturesFiniteAndShaped) {
  Rng rng(6);
  DetectorConfig cfg = tiny_config();
  cfg.node_feature_dim = 14;
  cfg.edge_feature_dim = 8;
  Event e = generate_event(cfg, rng);
  EXPECT_EQ(e.node_features.rows(), e.hits.size());
  EXPECT_EQ(e.node_features.cols(), 14u);
  EXPECT_EQ(e.edge_features.rows(), e.graph.num_edges());
  EXPECT_EQ(e.edge_features.cols(), 8u);
  EXPECT_TRUE(e.node_features.all_finite());
  EXPECT_TRUE(e.edge_features.all_finite());
}

TEST(EventGenTest, DeterministicGivenSeed) {
  Rng a(7), b(7);
  Event e1 = generate_event(tiny_config(), a);
  Event e2 = generate_event(tiny_config(), b);
  ASSERT_EQ(e1.hits.size(), e2.hits.size());
  ASSERT_EQ(e1.graph.num_edges(), e2.graph.num_edges());
  EXPECT_EQ(e1.node_features, e2.node_features);
  EXPECT_EQ(e1.edge_labels, e2.edge_labels);
}

TEST(EventGenTest, NoiseHitsPresent) {
  Rng rng(8);
  DetectorConfig cfg = tiny_config();
  cfg.noise_fraction = 0.3;
  Event e = generate_event(cfg, rng);
  std::size_t noise = 0;
  for (const Hit& h : e.hits) noise += (h.particle == Hit::kNoise);
  EXPECT_GT(noise, 0u);
}

TEST(EventGenTest, PositiveFractionReasonable) {
  Rng rng(9);
  Event e = generate_event(tiny_config(), rng);
  const double f = e.positive_edge_fraction();
  EXPECT_GT(f, 0.01);
  EXPECT_LT(f, 0.95);
}

// ---------- endcaps / displaced / duplicates ----------

DetectorConfig endcap_config() {
  DetectorConfig cfg = tiny_config();
  cfg.barrel_half_length = 1200.0;
  cfg.endcap_z = {1300, 1600, 1900};
  cfg.endcap_r_min = 40.0;
  cfg.endcap_r_max = 1000.0;
  cfg.eta_max = 3.5;  // forward tracks to populate the disks
  return cfg;
}

TEST(EndcapTest, DiskCrossingGeometry) {
  ParticleState s;
  s.pt = 1.0;
  s.eta = 2.5;
  s.z0 = 0.0;
  Helix h(s, 2.0);
  const auto p = h.intersect_disk(1500.0, 40.0, 1000.0);
  ASSERT_TRUE(p.has_value());
  EXPECT_NEAR(p->z, 1500.0, 1e-9);
  EXPECT_GE(p->r(), 40.0);
  EXPECT_LE(p->r(), 1000.0);
  // Backward disk is unreachable for a forward track.
  EXPECT_FALSE(h.intersect_disk(-1500.0, 40.0, 1000.0).has_value());
  // A central track never reaches z = 1500 within the first half turn.
  ParticleState central;
  central.eta = 0.0;
  EXPECT_FALSE(
      Helix(central, 2.0).intersect_disk(1500.0, 40.0, 1000.0).has_value());
}

TEST(EndcapTest, EndcapHitsAppearForForwardTracks) {
  Rng rng(20);
  DetectorConfig cfg = endcap_config();
  Event e = generate_event(cfg, rng);
  const std::size_t num_barrel = cfg.layer_radii.size();
  std::size_t disk_hits = 0;
  for (const Hit& h : e.hits) {
    if (h.layer >= num_barrel) {
      ++disk_hits;
      ASSERT_LT(h.layer, cfg.num_surfaces());
      // Disk hits sit exactly on a disk plane (z smearing is zero there).
      const std::size_t d = (h.layer - num_barrel) / 2;
      EXPECT_NEAR(std::fabs(h.z), cfg.endcap_z[d], 1e-3);
    }
  }
  EXPECT_GT(disk_hits, 0u);
}

TEST(EndcapTest, TruthSequencesFollowTrajectoryOrder) {
  Rng rng(21);
  DetectorConfig cfg = endcap_config();
  Event e = generate_event(cfg, rng);
  // Along any trajectory r is non-decreasing within the first half turn.
  for (const TruthParticle& p : e.particles)
    for (std::size_t i = 0; i + 1 < p.hits.size(); ++i)
      EXPECT_LE(e.hits[p.hits[i]].r(), e.hits[p.hits[i + 1]].r() + 1.0f);
}

TEST(EndcapTest, CaptureStaysHighWithEndcaps) {
  Rng rng(22);
  DetectorConfig cfg = endcap_config();
  Event e = generate_event(cfg, rng);
  std::size_t captured = 0, total = 0;
  for (const TruthParticle& p : e.particles)
    for (std::size_t i = 0; i + 1 < p.hits.size(); ++i) {
      ++total;
      if (e.graph.find_edge(p.hits[i], p.hits[i + 1]) != Graph::kNoEdge)
        ++captured;
    }
  ASSERT_GT(total, 0u);
  EXPECT_GT(static_cast<double>(captured) / total, 0.75);
}

TEST(DetectorFeaturesTest, DuplicateHitsProduced) {
  Rng rng(23);
  DetectorConfig cfg = tiny_config();
  cfg.duplicate_hit_probability = 0.5;
  Event e = generate_event(cfg, rng);
  // With 50% duplication some particle must own two hits on one surface.
  bool found_duplicate = false;
  for (const TruthParticle& p : e.particles)
    for (std::size_t i = 0; i + 1 < p.hits.size(); ++i)
      if (e.hits[p.hits[i]].layer == e.hits[p.hits[i + 1]].layer)
        found_duplicate = true;
  EXPECT_TRUE(found_duplicate);
}

TEST(DetectorFeaturesTest, DisplacedTracksWidenZ0) {
  DetectorConfig cfg = tiny_config();
  cfg.mean_particles = 400.0;
  cfg.displaced_fraction = 0.5;
  cfg.displaced_z0_sigma = 500.0;
  Rng rng(24);
  Event e = generate_event(cfg, rng);
  std::size_t wide = 0;
  for (const TruthParticle& p : e.particles)
    wide += (std::fabs(p.z0) > 150.0f);
  // Prompt σ=30 essentially never exceeds 150; displaced σ=500 often does.
  EXPECT_GT(wide, e.particles.size() / 8);
}

TEST(DetectorFeaturesTest, DisplacedTracksLoseCaptureAsExpected) {
  DetectorConfig cfg = tiny_config();
  cfg.mean_particles = 150.0;
  cfg.displaced_fraction = 0.5;
  Rng rng(25);
  Event e = generate_event(cfg, rng);
  std::size_t cap_prompt = 0, tot_prompt = 0, cap_disp = 0, tot_disp = 0;
  for (const TruthParticle& p : e.particles) {
    const bool displaced = std::fabs(p.z0) > 100.0f;
    for (std::size_t i = 0; i + 1 < p.hits.size(); ++i) {
      const bool hit =
          e.graph.find_edge(p.hits[i], p.hits[i + 1]) != Graph::kNoEdge;
      if (displaced) {
        ++tot_disp;
        cap_disp += hit;
      } else {
        ++tot_prompt;
        cap_prompt += hit;
      }
    }
  }
  ASSERT_GT(tot_prompt, 0u);
  if (tot_disp > 0) {
    // Graph construction points at the beam spot, so displaced tracks are
    // captured strictly less often — the documented physics trade-off.
    EXPECT_LT(static_cast<double>(cap_disp) / tot_disp,
              static_cast<double>(cap_prompt) / tot_prompt);
  }
}

// ---------- dataset ----------

TEST(DatasetTest, SplitSizes) {
  DetectorConfig cfg = tiny_config();
  Dataset ds = generate_dataset("t", cfg, 4, 2, 1, 42);
  EXPECT_EQ(ds.train.size(), 4u);
  EXPECT_EQ(ds.val.size(), 2u);
  EXPECT_EQ(ds.test.size(), 1u);
  EXPECT_EQ(ds.total_events(), 7u);
  EXPECT_GT(ds.avg_vertices(), 0.0);
  EXPECT_GT(ds.avg_edges(), 0.0);
}

TEST(DatasetTest, EventsAreDistinct) {
  DetectorConfig cfg = tiny_config();
  Dataset ds = generate_dataset("t", cfg, 2, 0, 0, 43);
  // Different RNG streams → different events (overwhelmingly likely).
  EXPECT_NE(ds.train[0].hits.size() * 1000 + ds.train[0].num_edges(),
            ds.train[1].hits.size() * 1000 + ds.train[1].num_edges());
}

TEST(DatasetTest, DeterministicGivenSeed) {
  DetectorConfig cfg = tiny_config();
  Dataset a = generate_dataset("t", cfg, 2, 1, 0, 44);
  Dataset b = generate_dataset("t", cfg, 2, 1, 0, 44);
  EXPECT_EQ(a.train[1].node_features, b.train[1].node_features);
  EXPECT_EQ(a.val[0].edge_labels, b.val[0].edge_labels);
}

// ---------- presets ----------

TEST(PresetsTest, FeatureDimsMatchTableI) {
  const DatasetSpec ex3 = ex3_spec(0.02);
  EXPECT_EQ(ex3.detector.node_feature_dim, 6u);
  EXPECT_EQ(ex3.detector.edge_feature_dim, 2u);
  EXPECT_EQ(ex3.mlp_hidden_layers, 2u);
  const DatasetSpec ctd = ctd_spec(0.002);
  EXPECT_EQ(ctd.detector.node_feature_dim, 14u);
  EXPECT_EQ(ctd.detector.edge_feature_dim, 8u);
  EXPECT_EQ(ctd.mlp_hidden_layers, 3u);
}

TEST(PresetsTest, CtdDenserThanEx3) {
  // At matched (small) scales, CTD-like events must have a higher
  // edges-per-vertex ratio than Ex3-like — the structural property that
  // drives the paper's memory argument.
  Rng rng(10);
  DetectorConfig ex3 = ex3_spec(0.05).detector;
  DetectorConfig ctd = ctd_spec(0.05 / 16.0 * 26.0 / 16.0).detector;
  // Normalise particle counts to similar magnitude for the ratio check.
  ctd.mean_particles = ex3.mean_particles;
  Rng r1(11), r2(12);
  Event e_ex3 = generate_event(ex3, r1);
  Event e_ctd = generate_event(ctd, r2);
  const double ratio_ex3 =
      static_cast<double>(e_ex3.num_edges()) / e_ex3.num_hits();
  const double ratio_ctd =
      static_cast<double>(e_ctd.num_edges()) / e_ctd.num_hits();
  EXPECT_GT(ratio_ctd, ratio_ex3);
}

}  // namespace
}  // namespace trkx
