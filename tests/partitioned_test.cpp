// Tests for the CAGNET-style 1D row-partitioned distributed kernels.

#include <gtest/gtest.h>

#include <cmath>

#include "dist/partitioned.hpp"
#include "graph/generators.hpp"
#include "sparse/spgemm.hpp"
#include "tensor/ops.hpp"

namespace trkx {
namespace {

TEST(PartitionTest, RowPartitionsCoverAndAreDisjoint) {
  for (int size : {1, 2, 3, 4, 7}) {
    for (std::size_t n : {0u, 1u, 5u, 16u, 17u}) {
      std::size_t covered = 0;
      std::size_t prev_end = 0;
      for (int r = 0; r < size; ++r) {
        const RowPartition p = partition_rows(n, r, size);
        EXPECT_EQ(p.begin, prev_end);
        EXPECT_LE(p.end, n);
        covered += p.count();
        prev_end = p.end;
      }
      EXPECT_EQ(covered, n);
    }
  }
}

TEST(PartitionTest, MakeShardSlicesConsistently) {
  Rng rng(1);
  Graph g = erdos_renyi(20, 0.2, rng);
  CsrMatrix a = g.symmetric_adjacency();
  Matrix x = Matrix::random_normal(20, 3, rng);
  const LocalShard shard = make_shard(a, x, 1, 3);
  EXPECT_EQ(shard.a_rows.rows(), shard.rows.count());
  EXPECT_EQ(shard.a_rows.cols(), 20u);
  EXPECT_EQ(shard.x_rows.rows(), shard.rows.count());
  for (std::size_t i = 0; i < shard.rows.count(); ++i)
    for (std::size_t j = 0; j < 3; ++j)
      EXPECT_EQ(shard.x_rows(i, j), x(shard.rows.begin + i, j));
}

class PartitionedSpmmRanks : public ::testing::TestWithParam<int> {};

TEST_P(PartitionedSpmmRanks, MatchesSerialSpmm) {
  const int p = GetParam();
  Rng rng(10 + p);
  Graph g = erdos_renyi(37, 0.15, rng);  // deliberately not divisible by p
  CsrMatrix a = g.symmetric_adjacency();
  Matrix x = Matrix::random_normal(37, 5, rng);
  const Matrix expected = spmm(a, x);

  DistRuntime rt(p);
  std::vector<Matrix> blocks(p);
  rt.run([&](Communicator& comm) {
    const LocalShard shard = make_shard(a, x, comm.rank(), comm.size());
    blocks[comm.rank()] = partitioned_spmm(comm, shard, 5);
  });
  // Stitch the row blocks back together.
  std::size_t row = 0;
  for (int r = 0; r < p; ++r) {
    for (std::size_t i = 0; i < blocks[r].rows(); ++i, ++row)
      for (std::size_t j = 0; j < 5; ++j)
        EXPECT_NEAR(blocks[r](i, j), expected(row, j), 1e-4f);
  }
  EXPECT_EQ(row, 37u);
}

INSTANTIATE_TEST_SUITE_P(Ranks, PartitionedSpmmRanks,
                         ::testing::Values(1, 2, 3, 4));

TEST(PartitionedTest, PowerIterationMatchesSerial) {
  Rng rng(20);
  Graph g = erdos_renyi(24, 0.25, rng);
  CsrMatrix a = g.symmetric_adjacency();
  Matrix x0 = Matrix::ones(24, 1);

  // Serial reference.
  Matrix serial = x0;
  for (int it = 0; it < 8; ++it) {
    serial = spmm(a, serial);
    double norm = 0.0;
    for (float v : serial.flat()) norm += static_cast<double>(v) * v;
    norm = std::sqrt(norm);
    for (float& v : serial.flat()) v /= static_cast<float>(norm);
  }

  const int p = 3;
  DistRuntime rt(p);
  std::vector<Matrix> blocks(p);
  rt.run([&](Communicator& comm) {
    const LocalShard shard = make_shard(a, x0, comm.rank(), comm.size());
    blocks[comm.rank()] =
        partitioned_power_iteration(comm, shard, 8);
  });
  std::size_t row = 0;
  for (int r = 0; r < p; ++r)
    for (std::size_t i = 0; i < blocks[r].rows(); ++i, ++row)
      EXPECT_NEAR(blocks[r](i, 0), serial(row, 0), 1e-4f);
}

TEST(PartitionedTest, AllGatherConcatenatesInRankOrder) {
  const int p = 3;
  DistRuntime rt(p);
  std::vector<std::vector<float>> results(p);
  rt.run([&](Communicator& comm) {
    // Rank r contributes r+1 values of value r.
    std::vector<float> local(static_cast<std::size_t>(comm.rank() + 1),
                             static_cast<float>(comm.rank()));
    results[comm.rank()] = comm.all_gather(
        std::span<const float>(local.data(), local.size()));
  });
  const std::vector<float> expected{0, 1, 1, 2, 2, 2};
  for (int r = 0; r < p; ++r) EXPECT_EQ(results[r], expected);
}

TEST(PartitionedTest, AllGatherSingleRankIsIdentity) {
  DistRuntime rt(1);
  rt.run([](Communicator& comm) {
    std::vector<float> local{1, 2, 3};
    EXPECT_EQ(comm.all_gather(std::span<const float>(local.data(), 3)),
              local);
  });
}

TEST(PartitionedTest, CommunicationVolumeScalesWithGraphNotModel) {
  // The CAGNET-vs-DDP argument: partitioned full-graph SpMM all-gathers
  // n×f floats per call, so its bytes grow with the graph; DDP's
  // all-reduce bytes are fixed by the parameter count.
  Rng rng(30);
  const int p = 2;
  for (std::size_t n : {32u, 128u}) {
    Graph g = erdos_renyi(n, 0.1, rng);
    CsrMatrix a = g.symmetric_adjacency();
    Matrix x = Matrix::random_normal(n, 4, rng);
    DistRuntime rt(p);
    rt.run([&](Communicator& comm) {
      const LocalShard shard = make_shard(a, x, comm.rank(), comm.size());
      (void)partitioned_spmm(comm, shard, 4);
    });
    EXPECT_EQ(rt.aggregate_stats().all_reduce_bytes,
              n * 4 * sizeof(float));
  }
}

}  // namespace
}  // namespace trkx
