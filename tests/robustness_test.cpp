// Failure-injection / degenerate-input tests across the stack: every
// public entry point must either handle the edge case or fail loudly with
// trkx::Error — never crash or silently corrupt.

#include <gtest/gtest.h>

#include "pipeline/evaluation.hpp"
#include "pipeline/gnn_train.hpp"
#include "pipeline/graph_construction.hpp"
#include "pipeline/track_building.hpp"
#include "sampling/matrix_shadow.hpp"
#include "sampling/shadow.hpp"
#include "sparse/sample.hpp"
#include "sparse/spgemm.hpp"

namespace trkx {
namespace {

// ---------- empty / tiny structures ----------

TEST(Robustness, EmptyGraph) {
  Graph g(0, {});
  EXPECT_EQ(g.num_vertices(), 0u);
  EXPECT_EQ(g.adjacency().nnz(), 0u);
  EXPECT_EQ(connected_components(g).count, 0u);
  EXPECT_DOUBLE_EQ(g.average_degree(), 0.0);
}

TEST(Robustness, VerticesWithoutEdges) {
  Graph g(5, {});
  EXPECT_EQ(connected_components(g).count, 5u);
  auto sub = induced_subgraph(g, {1, 3});
  EXPECT_EQ(sub.graph.num_vertices(), 2u);
  EXPECT_EQ(sub.graph.num_edges(), 0u);
}

TEST(Robustness, EmptyCsrOperations) {
  CsrMatrix a(0, 0);
  CsrMatrix b(0, 0);
  EXPECT_EQ(spgemm(a, b).nnz(), 0u);
  CsrMatrix c(3, 4);
  EXPECT_EQ(c.transpose().rows(), 4u);
  c.normalize_rows();  // all-empty rows: no-op
  EXPECT_EQ(c.nnz(), 0u);
}

TEST(Robustness, SampleRowsOnEmptyRows) {
  CsrMatrix m = CsrMatrix::from_triplets(3, 5, {{1, 2, 1.0f}});
  Rng rng(1);
  CsrMatrix s = sample_rows(m, 2, rng);
  EXPECT_EQ(s.row_nnz(0), 0u);
  EXPECT_EQ(s.row_nnz(1), 1u);
  EXPECT_EQ(s.row_nnz(2), 0u);
}

TEST(Robustness, MatrixEdgeShapes) {
  Matrix a(0, 0);
  EXPECT_TRUE(a.all_finite());
  EXPECT_EQ(a.sum(), 0.0);
  Matrix row(1, 4, 2.0f);
  EXPECT_EQ(colwise_sum(row), row);
  Matrix col(4, 1, 1.0f);
  EXPECT_EQ(rowwise_sum(col), col);
}

// ---------- samplers on adversarial graphs ----------

TEST(Robustness, ShadowOnSingletonGraph) {
  Graph g(1, {});
  ShadowSampler s(g, {.depth = 3, .fanout = 2});
  Rng rng(2);
  ShadowSample sample = s.sample({0}, rng);
  EXPECT_EQ(sample.sub.graph.num_vertices(), 1u);
  EXPECT_EQ(sample.sub.graph.num_edges(), 0u);
}

TEST(Robustness, MatrixShadowOnDisconnectedBatch) {
  Graph g(6, {{0, 1}});  // vertices 2..5 isolated
  MatrixShadowSampler s(g, {.depth = 2, .fanout = 2});
  Rng rng(3);
  auto samples = s.sample_bulk({{0, 2}, {4, 5}}, rng);
  ASSERT_EQ(samples.size(), 2u);
  // Component of vertex 2 is a singleton; component of 0 has the edge.
  EXPECT_EQ(samples[0].sub.graph.num_edges(), 1u);
  EXPECT_EQ(samples[1].sub.graph.num_edges(), 0u);
}

TEST(Robustness, ShadowWithSelfLoopGraph) {
  // Self loops are dropped from the walk graph but kept in the directed
  // adjacency; sampling must not crash or emit out-of-component edges.
  Graph g(3, {{0, 0}, {0, 1}, {1, 2}});
  ShadowSampler s(g, {.depth = 2, .fanout = 4});
  Rng rng(4);
  ShadowSample sample = s.sample({0}, rng);
  for (const Edge& e : sample.sub.graph.edges())
    EXPECT_EQ(sample.component_of[e.src], sample.component_of[e.dst]);
}

TEST(Robustness, SamplerRejectsOutOfRangeRoot) {
  Graph g = Graph(3, {{0, 1}});
  ShadowSampler s(g, {.depth = 1, .fanout = 1});
  Rng rng(5);
  EXPECT_THROW(s.sample({7}, rng), Error);
  MatrixShadowSampler m(g, {.depth = 1, .fanout = 1});
  EXPECT_THROW(m.sample({7}, rng), Error);
}

// ---------- training on degenerate events ----------

Event empty_event() {
  Event e;
  e.graph = Graph(0, {});
  e.node_features = Matrix(0, 6);
  e.edge_features = Matrix(0, 2);
  return e;
}

Event edgeless_event(std::size_t hits) {
  Event e;
  e.hits.resize(hits);
  e.graph = Graph(hits, {});
  e.node_features = Matrix(hits, 6, 0.1f);
  e.edge_features = Matrix(0, 2);
  e.edge_labels = {};
  return e;
}

IgnnConfig small_gnn() {
  IgnnConfig cfg;
  cfg.node_input_dim = 6;
  cfg.edge_input_dim = 2;
  cfg.hidden_dim = 8;
  cfg.num_layers = 1;
  cfg.mlp_hidden = 0;
  return cfg;
}

TEST(Robustness, TrainingSkipsEmptyAndEdgelessEvents) {
  DetectorConfig dc;
  dc.mean_particles = 10.0;
  Rng rng(6);
  std::vector<Event> train{empty_event(), edgeless_event(4),
                           generate_event(dc, rng)};
  std::vector<Event> val{generate_event(dc, rng)};
  GnnModel model(small_gnn(), 1);
  GnnTrainConfig cfg;
  cfg.epochs = 1;
  cfg.batch_size = 8;
  cfg.shadow = {.depth = 1, .fanout = 2};
  EXPECT_NO_THROW(
      train_shadow(model, train, val, cfg, SamplerKind::kMatrixBulk));
  EXPECT_NO_THROW(train_full_graph(model, train, val, cfg));
}

TEST(Robustness, EvaluateOnEmptyValSet) {
  GnnModel model(small_gnn(), 2);
  const BinaryMetrics m = evaluate_edges(model, {});
  EXPECT_EQ(m.total(), 0u);
  EXPECT_EQ(roc_auc(score_events(model, {})), 0.5);
}

TEST(Robustness, AutoPosWeightDegenerateLabels) {
  Event e = edgeless_event(3);
  EXPECT_FLOAT_EQ(auto_pos_weight({e}), 1.0f);
}

TEST(Robustness, TrackBuildingOnEdgelessEvent) {
  Event e = edgeless_event(5);
  auto tracks = build_tracks(e, {}, TrackBuildConfig{});
  EXPECT_TRUE(tracks.empty());
  auto metrics = score_tracks(e, tracks, TrackBuildConfig{});
  EXPECT_EQ(metrics.candidates, 0u);
}

TEST(Robustness, FrnnOnEmptyAndSinglePoint) {
  FrnnConfig cfg;
  EXPECT_EQ(build_frnn_graph(Matrix(0, 3), cfg).num_vertices(), 0u);
  EXPECT_EQ(build_frnn_graph(Matrix(1, 3), cfg).num_edges(), 0u);
}

TEST(Robustness, ZeroLayerGnnIsEdgeMlp) {
  IgnnConfig cfg = small_gnn();
  cfg.num_layers = 0;
  ParameterStore store;
  Rng rng(7);
  InteractionGnn gnn(store, cfg, rng);
  Graph g = Graph(3, {{0, 1}, {1, 2}});
  Matrix x(3, 6, 0.2f);
  Matrix y(2, 2, 0.3f);
  const auto probs = gnn.predict(x, y, g);
  ASSERT_EQ(probs.size(), 2u);
  // With identical edge features the two logits must be identical —
  // no node/graph information can leak in without message passing.
  EXPECT_FLOAT_EQ(probs[0], probs[1]);
}

TEST(Robustness, BceRejectsEmptyLogits) {
  Tape tape;
  Var z = tape.leaf(Matrix(0, 1), true);
  EXPECT_THROW(tape.bce_with_logits(z, {}), Error);
}

TEST(Robustness, MinibatchesOfEmptyVertexSet) {
  Rng rng(8);
  auto batches = make_minibatches(0, 16, rng);
  EXPECT_TRUE(batches.empty());
}

}  // namespace
}  // namespace trkx
