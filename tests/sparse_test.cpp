#include <gtest/gtest.h>

#include <map>
#include <set>

#include "sparse/csr.hpp"
#include "sparse/sample.hpp"
#include "sparse/spgemm.hpp"
#include "tensor/ops.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace trkx {
namespace {

CsrMatrix random_sparse(std::size_t rows, std::size_t cols, double density,
                        Rng& rng) {
  std::vector<Triplet> trips;
  for (std::uint32_t r = 0; r < rows; ++r)
    for (std::uint32_t c = 0; c < cols; ++c)
      if (rng.bernoulli(density))
        trips.push_back({r, c, rng.uniform(-1.0f, 1.0f)});
  return CsrMatrix::from_triplets(rows, cols, std::move(trips), false);
}

// ---------- construction ----------

TEST(CsrTest, EmptyMatrix) {
  CsrMatrix m(3, 4);
  EXPECT_EQ(m.rows(), 3u);
  EXPECT_EQ(m.cols(), 4u);
  EXPECT_EQ(m.nnz(), 0u);
  m.check_invariants();
}

TEST(CsrTest, FromTripletsSortsAndStores) {
  CsrMatrix m = CsrMatrix::from_triplets(
      3, 3, {{2, 1, 5.0f}, {0, 2, 1.0f}, {0, 0, 2.0f}});
  m.check_invariants();
  EXPECT_EQ(m.nnz(), 3u);
  EXPECT_FLOAT_EQ(m.at(0, 0), 2.0f);
  EXPECT_FLOAT_EQ(m.at(0, 2), 1.0f);
  EXPECT_FLOAT_EQ(m.at(2, 1), 5.0f);
  EXPECT_FLOAT_EQ(m.at(1, 1), 0.0f);
}

TEST(CsrTest, DuplicatesSummed) {
  CsrMatrix m = CsrMatrix::from_triplets(
      2, 2, {{0, 1, 1.0f}, {0, 1, 2.5f}});
  EXPECT_EQ(m.nnz(), 1u);
  EXPECT_FLOAT_EQ(m.at(0, 1), 3.5f);
}

TEST(CsrTest, DuplicatesRejectedWhenDisallowed) {
  EXPECT_THROW(CsrMatrix::from_triplets(2, 2, {{0, 1, 1.0f}, {0, 1, 2.0f}},
                                        false),
               Error);
}

TEST(CsrTest, OutOfRangeTripletThrows) {
  EXPECT_THROW(CsrMatrix::from_triplets(2, 2, {{2, 0, 1.0f}}), Error);
}

TEST(CsrTest, IdentityAndSelection) {
  CsrMatrix i = CsrMatrix::identity(4);
  EXPECT_TRUE(allclose(i.to_dense(), Matrix::identity(4)));
  CsrMatrix sel = CsrMatrix::selection(5, {3, 0, 3});
  EXPECT_EQ(sel.rows(), 3u);
  EXPECT_FLOAT_EQ(sel.at(0, 3), 1.0f);
  EXPECT_FLOAT_EQ(sel.at(1, 0), 1.0f);
  EXPECT_FLOAT_EQ(sel.at(2, 3), 1.0f);
}

TEST(CsrTest, DenseRoundTrip) {
  Rng rng(1);
  CsrMatrix m = random_sparse(6, 5, 0.3, rng);
  CsrMatrix back = CsrMatrix::from_dense(m.to_dense());
  EXPECT_TRUE(m == back);
}

TEST(CsrTest, TripletsRoundTrip) {
  Rng rng(2);
  CsrMatrix m = random_sparse(5, 5, 0.4, rng);
  CsrMatrix back = CsrMatrix::from_triplets(5, 5, m.to_triplets(), false);
  EXPECT_TRUE(m == back);
}

TEST(CsrTest, FromCsrValidates) {
  // row_ptr not matching nnz.
  EXPECT_THROW(CsrMatrix::from_csr(2, 2, {0, 1, 3}, {0}, {1.0f}), Error);
  // unsorted columns in a row.
  EXPECT_THROW(CsrMatrix::from_csr(1, 3, {0, 2}, {2, 0}, {1.0f, 1.0f}),
               Error);
}

// ---------- transforms ----------

TEST(CsrTest, TransposeMatchesDense) {
  Rng rng(3);
  CsrMatrix m = random_sparse(7, 4, 0.35, rng);
  EXPECT_TRUE(allclose(m.transpose().to_dense(), transpose(m.to_dense())));
  m.transpose().check_invariants();
}

TEST(CsrTest, SelectRows) {
  Rng rng(4);
  CsrMatrix m = random_sparse(6, 6, 0.4, rng);
  const std::vector<std::uint32_t> idx{4, 1, 1};
  CsrMatrix sel = m.select_rows(idx);
  sel.check_invariants();
  EXPECT_EQ(sel.rows(), 3u);
  Matrix expected = row_gather(m.to_dense(), idx);
  EXPECT_TRUE(allclose(sel.to_dense(), expected));
}

TEST(CsrTest, SelectColsRenumbers) {
  CsrMatrix m = CsrMatrix::from_triplets(
      2, 4, {{0, 0, 1.0f}, {0, 3, 2.0f}, {1, 2, 3.0f}});
  // Select columns {3, 0} in that order: new col 0 = old 3, new col 1 = old 0.
  CsrMatrix sel = m.select_cols({3, 0});
  sel.check_invariants();
  EXPECT_EQ(sel.cols(), 2u);
  EXPECT_FLOAT_EQ(sel.at(0, 0), 2.0f);
  EXPECT_FLOAT_EQ(sel.at(0, 1), 1.0f);
  EXPECT_FLOAT_EQ(sel.at(1, 0), 0.0f);
}

TEST(CsrTest, InducedMatchesDenseReference) {
  Rng rng(5);
  CsrMatrix m = random_sparse(8, 8, 0.4, rng);
  const std::vector<std::uint32_t> idx{6, 2, 5};
  CsrMatrix ind = m.induced(idx);
  Matrix d = m.to_dense();
  for (std::size_t i = 0; i < idx.size(); ++i)
    for (std::size_t j = 0; j < idx.size(); ++j)
      EXPECT_FLOAT_EQ(ind.at(i, j), d(idx[i], idx[j]));
}

TEST(CsrTest, NormalizeRows) {
  CsrMatrix m = CsrMatrix::from_triplets(
      2, 3, {{0, 0, 1.0f}, {0, 2, 3.0f}, {1, 1, 0.0f}});
  m.normalize_rows();
  EXPECT_FLOAT_EQ(m.at(0, 0), 0.25f);
  EXPECT_FLOAT_EQ(m.at(0, 2), 0.75f);
  EXPECT_FLOAT_EQ(m.at(1, 1), 0.0f);  // zero-sum row untouched
}

TEST(CsrTest, VstackMatchesConcatRows) {
  Rng rng(6);
  CsrMatrix a = random_sparse(3, 4, 0.4, rng);
  CsrMatrix b = random_sparse(2, 4, 0.4, rng);
  CsrMatrix s = CsrMatrix::vstack({&a, &b});
  s.check_invariants();
  Matrix da = a.to_dense(), db = b.to_dense();
  EXPECT_TRUE(allclose(s.to_dense(), concat_rows({&da, &db})));
}

TEST(CsrTest, VstackColumnMismatchThrows) {
  CsrMatrix a(2, 3), b(2, 4);
  EXPECT_THROW(CsrMatrix::vstack({&a, &b}), Error);
}

// ---------- SpGEMM / SpMM (parameterized) ----------

class SpgemmSizes
    : public ::testing::TestWithParam<std::tuple<int, int, int, double>> {};

TEST_P(SpgemmSizes, MatchesDense) {
  auto [m, k, n, density] = GetParam();
  Rng rng(m * 31 + k * 7 + n);
  CsrMatrix a = random_sparse(m, k, density, rng);
  CsrMatrix b = random_sparse(k, n, density, rng);
  CsrMatrix c = spgemm(a, b);
  c.check_invariants();
  EXPECT_TRUE(allclose(c.to_dense(), matmul(a.to_dense(), b.to_dense()),
                       1e-4f, 1e-3f));
}

TEST_P(SpgemmSizes, SpmmMatchesDense) {
  auto [m, k, n, density] = GetParam();
  Rng rng(m + k + n + 99);
  CsrMatrix a = random_sparse(m, k, density, rng);
  Matrix x = Matrix::random_normal(k, n, rng);
  EXPECT_TRUE(allclose(spmm(a, x), matmul(a.to_dense(), x), 1e-4f, 1e-3f));
}

INSTANTIATE_TEST_SUITE_P(
    Sizes, SpgemmSizes,
    ::testing::Values(std::make_tuple(1, 1, 1, 1.0),
                      std::make_tuple(4, 6, 5, 0.3),
                      std::make_tuple(10, 10, 10, 0.1),
                      std::make_tuple(20, 15, 25, 0.25),
                      std::make_tuple(32, 32, 32, 0.05),
                      std::make_tuple(8, 8, 8, 0.9)));

TEST(SpgemmTest, ShapeMismatchThrows) {
  CsrMatrix a(2, 3), b(4, 2);
  EXPECT_THROW(spgemm(a, b), Error);
}

TEST(SpgemmTest, SelectionMatricesExtractSubmatrix) {
  Rng rng(7);
  CsrMatrix a = random_sparse(9, 9, 0.35, rng);
  const std::vector<std::uint32_t> idx{1, 7, 3, 8};
  CsrMatrix via_spgemm = induced_via_spgemm(a, idx);
  CsrMatrix direct = a.induced(idx);
  EXPECT_TRUE(allclose(via_spgemm.to_dense(), direct.to_dense()));
}

TEST(SparseAddTest, MatchesDense) {
  Rng rng(8);
  CsrMatrix a = random_sparse(6, 6, 0.3, rng);
  CsrMatrix b = random_sparse(6, 6, 0.3, rng);
  CsrMatrix c = sparse_add(a, b);
  c.check_invariants();
  EXPECT_TRUE(allclose(c.to_dense(), add(a.to_dense(), b.to_dense())));
}

// ---------- row sampling ----------

TEST(SampleRowsTest, KeepsAllWhenRowSmall) {
  CsrMatrix m = CsrMatrix::from_triplets(
      2, 5, {{0, 1, 1.0f}, {0, 3, 1.0f}, {1, 0, 1.0f}});
  Rng rng(9);
  CsrMatrix s = sample_rows(m, 4, rng);
  EXPECT_EQ(s.row_cols(0), (std::vector<std::uint32_t>{1, 3}));
  EXPECT_EQ(s.row_cols(1), (std::vector<std::uint32_t>{0}));
}

TEST(SampleRowsTest, FanoutBoundAndSubset) {
  Rng rng(10);
  CsrMatrix m = random_sparse(20, 30, 0.5, rng);
  CsrMatrix norm = m;
  for (float& v : norm.values()) v = 1.0f;
  norm.normalize_rows();
  CsrMatrix s = sample_rows(norm, 3, rng);
  s.check_invariants();
  for (std::size_t r = 0; r < 20; ++r) {
    const auto orig = m.row_cols(r);
    const auto picked = s.row_cols(r);
    EXPECT_LE(picked.size(), 3u);
    EXPECT_EQ(picked.size(), std::min<std::size_t>(3, orig.size()));
    std::set<std::uint32_t> orig_set(orig.begin(), orig.end());
    for (auto c : picked) EXPECT_TRUE(orig_set.count(c));
  }
}

TEST(SampleRowsTest, UniformRowsSampleUniformly) {
  // One row with 6 uniform entries, fanout 2 → each column picked with
  // probability 1/3.
  CsrMatrix m = CsrMatrix::from_triplets(
      1, 6,
      {{0, 0, 1.f}, {0, 1, 1.f}, {0, 2, 1.f}, {0, 3, 1.f}, {0, 4, 1.f},
       {0, 5, 1.f}});
  m.normalize_rows();
  Rng rng(11);
  const int trials = 30000;
  std::vector<int> counts(6, 0);
  for (int t = 0; t < trials; ++t) {
    CsrMatrix s = sample_rows(m, 2, rng);
    for (auto c : s.row_cols(0)) ++counts[c];
  }
  const double expected = trials * 2.0 / 6.0;
  for (int c : counts) EXPECT_NEAR(c, expected, expected * 0.06);
}

TEST(SampleRowsTest, WeightedRowsFavourHeavyColumns) {
  CsrMatrix m = CsrMatrix::from_triplets(
      1, 3, {{0, 0, 8.0f}, {0, 1, 1.0f}, {0, 2, 1.0f}});
  m.normalize_rows();
  Rng rng(12);
  int heavy = 0;
  const int trials = 5000;
  for (int t = 0; t < trials; ++t) {
    CsrMatrix s = sample_rows(m, 1, rng);
    if (s.row_cols(0)[0] == 0) ++heavy;
  }
  EXPECT_GT(heavy, trials / 2);
}

TEST(SampleRowsTest, DeterministicGivenSeed) {
  Rng rng1(13), rng2(13);
  Rng mrng(14);
  CsrMatrix m = random_sparse(10, 20, 0.6, mrng);
  CsrMatrix s1 = sample_rows(m, 4, rng1);
  CsrMatrix s2 = sample_rows(m, 4, rng2);
  EXPECT_TRUE(s1 == s2);
}

// Regression: a TRKX_CHECK failure inside the OpenMP parallel sampler
// loop must surface as a catchable trkx::Error on the calling thread,
// not escape the region as std::terminate. The out-of-range frontier
// vertex trips the in-loop bounds check on whichever worker draws it.
TEST(SampleRowsTest, ParallelCheckFailureIsCatchable) {
  Rng mrng(15);
  CsrMatrix adj = random_sparse(16, 16, 0.4, mrng);
  std::vector<std::uint32_t> frontier(32);
  std::vector<std::uint32_t> group(32);
  for (std::uint32_t i = 0; i < 32; ++i) {
    frontier[i] = i % 16;
    group[i] = i / 8;  // four groups → four parallel chunks
  }
  frontier[19] = 999;  // past adj.rows(): throws mid-region
  std::vector<Rng> rngs;
  for (int g = 0; g < 4; ++g) rngs.emplace_back(100 + g);
  EXPECT_THROW(sample_neighbors_fused(adj, frontier, 3, group, rngs),
               Error);
}

// The fused sampler still works after a failed call: the barrier resets
// on rethrow and nothing is left poisoned.
TEST(SampleRowsTest, ParallelSamplerRecoversAfterFailure) {
  Rng mrng(16);
  CsrMatrix adj = random_sparse(12, 12, 0.5, mrng);
  std::vector<std::uint32_t> frontier{0, 1, 2, 3, 4, 5};
  std::vector<std::uint32_t> group{0, 0, 0, 1, 1, 1};
  std::vector<Rng> rngs;
  rngs.emplace_back(200);
  rngs.emplace_back(201);
  auto bad_frontier = frontier;
  bad_frontier[4] = 777;
  EXPECT_THROW(sample_neighbors_fused(adj, bad_frontier, 2, group, rngs),
               Error);
  std::vector<Rng> fresh;
  fresh.emplace_back(200);
  fresh.emplace_back(201);
  CsrMatrix s = sample_neighbors_fused(adj, frontier, 2, group, fresh);
  s.check_invariants();
  EXPECT_EQ(s.rows(), frontier.size());
}

}  // namespace
}  // namespace trkx
