// Dumps the trkx::env knob registry as JSON on stdout. Consumed by
// scripts/check_env_docs.py (ctest env_registry_docs) to prove the README
// knob table matches the registry, and available to any tooling that
// wants the machine-readable knob list.
#include <iostream>

#include "util/env.hpp"

int main() {
  // NOLINT(trkx-io): this tool's contract IS stdout JSON
  trkx::env::dump_registry_json(std::cout);
  return 0;
}
