#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "graph/generators.hpp"
#include "sampling/matrix_shadow.hpp"
#include "sampling/shadow.hpp"

namespace trkx {
namespace {

// ---------- make_minibatches ----------

TEST(MinibatchTest, PartitionCoversAllVerticesOnce) {
  Rng rng(1);
  auto batches = make_minibatches(103, 16, rng);
  EXPECT_EQ(batches.size(), 7u);
  std::set<std::uint32_t> seen;
  for (const auto& b : batches)
    for (auto v : b) EXPECT_TRUE(seen.insert(v).second);
  EXPECT_EQ(seen.size(), 103u);
  EXPECT_EQ(batches.back().size(), 103u % 16u);
}

TEST(MinibatchTest, ShuffledAcrossSeeds) {
  Rng a(2), b(3);
  auto ba = make_minibatches(50, 10, a);
  auto bb = make_minibatches(50, 10, b);
  EXPECT_NE(ba[0], bb[0]);
}

// ---------- reference ShaDow ----------

TEST(ShadowTest, WalkSetContainsRootAndRespectsBound) {
  Rng rng(4);
  Graph g = erdos_renyi(60, 0.1, rng);
  ShadowConfig cfg{.depth = 2, .fanout = 3};
  ShadowSampler sampler(g, cfg);
  for (std::uint32_t root = 0; root < 20; ++root) {
    auto set = sampler.walk_vertex_set(root, rng);
    EXPECT_TRUE(std::binary_search(set.begin(), set.end(), root));
    // |set| ≤ 1 + s + s² for d=2.
    EXPECT_LE(set.size(), 1u + 3u + 9u);
  }
}

TEST(ShadowTest, OneComponentPerBatchVertex) {
  Rng rng(5);
  Graph g = erdos_renyi(50, 0.15, rng);
  ShadowSampler sampler(g, {.depth = 2, .fanout = 3});
  const std::vector<std::uint32_t> batch{3, 17, 42, 8};
  ShadowSample s = sampler.sample(batch, rng);
  EXPECT_EQ(s.num_components(), 4u);
  EXPECT_EQ(s.component_of.size(), s.sub.graph.num_vertices());
  // Roots map back to the batch vertices.
  for (std::size_t i = 0; i < batch.size(); ++i)
    EXPECT_EQ(s.sub.vertex_map[s.roots[i]], batch[i]);
  // No edge crosses components.
  for (const Edge& e : s.sub.graph.edges())
    EXPECT_EQ(s.component_of[e.src], s.component_of[e.dst]);
  // Every component's vertex count matches component_of.
  std::vector<std::size_t> counts(4, 0);
  for (auto c : s.component_of) ++counts[c];
  for (auto c : counts) EXPECT_GE(c, 1u);
}

TEST(ShadowTest, SubgraphEdgesAreInducedFromParent) {
  Rng rng(6);
  Graph g = erdos_renyi(40, 0.2, rng);
  ShadowSampler sampler(g, {.depth = 2, .fanout = 4});
  ShadowSample s = sampler.sample({0, 10, 20}, rng);
  ASSERT_EQ(s.sub.edge_map.size(), s.sub.graph.num_edges());
  for (std::size_t e = 0; e < s.sub.graph.num_edges(); ++e) {
    const Edge& se = s.sub.graph.edge(e);
    const Edge& pe = g.edge(s.sub.edge_map[e]);
    EXPECT_EQ(s.sub.vertex_map[se.src], pe.src);
    EXPECT_EQ(s.sub.vertex_map[se.dst], pe.dst);
  }
  // Induced property within one component: every parent edge between two
  // same-component sampled vertices must appear.
  for (std::size_t comp = 0; comp < s.num_components(); ++comp) {
    std::vector<std::uint32_t> verts;
    for (std::size_t v = 0; v < s.sub.graph.num_vertices(); ++v)
      if (s.component_of[v] == comp) verts.push_back(s.sub.vertex_map[v]);
    std::set<std::uint32_t> vset(verts.begin(), verts.end());
    std::size_t expected = 0;
    for (const Edge& pe : g.edges())
      if (vset.count(pe.src) && vset.count(pe.dst)) ++expected;
    std::size_t actual = 0;
    for (std::size_t v = 0; v < s.sub.graph.num_vertices(); ++v) {
      if (s.component_of[v] != comp) continue;
    }
    for (std::size_t e = 0; e < s.sub.graph.num_edges(); ++e)
      if (s.component_of[s.sub.graph.edge(e).src] == comp) ++actual;
    EXPECT_EQ(actual, expected);
  }
}

TEST(ShadowTest, FullFanoutIsDeterministicLHopNeighborhood) {
  // With fanout ≥ max degree, the walk visits the entire d-hop
  // neighbourhood deterministically.
  Graph g = path_graph(10);
  ShadowSampler sampler(g, {.depth = 2, .fanout = 10});
  Rng rng(7);
  auto set = sampler.walk_vertex_set(5, rng);
  EXPECT_EQ(set, (std::vector<std::uint32_t>{3, 4, 5, 6, 7}));
}

TEST(ShadowTest, DepthOneTouchesOnlyNeighbors) {
  Graph g = cycle_graph(8);
  ShadowSampler sampler(g, {.depth = 1, .fanout = 10});
  Rng rng(8);
  auto set = sampler.walk_vertex_set(0, rng);
  EXPECT_EQ(set, (std::vector<std::uint32_t>{0, 1, 7}));
}

TEST(ShadowTest, IsolatedVertexYieldsSingleton) {
  Graph g(5, {{1, 2}});
  ShadowSampler sampler(g, {.depth = 3, .fanout = 2});
  Rng rng(9);
  auto set = sampler.walk_vertex_set(0, rng);
  EXPECT_EQ(set, (std::vector<std::uint32_t>{0}));
  ShadowSample s = sampler.sample({0}, rng);
  EXPECT_EQ(s.sub.graph.num_vertices(), 1u);
  EXPECT_EQ(s.sub.graph.num_edges(), 0u);
}

// ---------- matrix-based ShaDow ----------

TEST(MatrixShadowTest, FullFanoutMatchesReferenceExactly) {
  // With saturating fanout both samplers are deterministic and must agree.
  Rng rng(10);
  Graph g = erdos_renyi(30, 0.12, rng);
  ShadowConfig cfg{.depth = 2, .fanout = 64};
  ShadowSampler ref(g, cfg);
  MatrixShadowSampler mat(g, cfg);
  const std::vector<std::uint32_t> batch{1, 5, 9, 22};
  Rng r1(11), r2(12);
  ShadowSample a = ref.sample(batch, r1);
  ShadowSample b = mat.sample(batch, r2);
  EXPECT_EQ(a.sub.vertex_map, b.sub.vertex_map);
  EXPECT_EQ(a.sub.edge_map, b.sub.edge_map);
  EXPECT_EQ(a.roots, b.roots);
  EXPECT_EQ(a.component_of, b.component_of);
  ASSERT_EQ(a.sub.graph.num_edges(), b.sub.graph.num_edges());
  for (std::size_t e = 0; e < a.sub.graph.num_edges(); ++e)
    EXPECT_TRUE(a.sub.graph.edge(e) == b.sub.graph.edge(e));
}

TEST(MatrixShadowTest, FanoutBoundHolds) {
  Rng rng(13);
  Graph g = erdos_renyi(80, 0.15, rng);
  ShadowConfig cfg{.depth = 3, .fanout = 2};
  MatrixShadowSampler mat(g, cfg);
  ShadowSample s = mat.sample({4, 40}, rng);
  // Each component ≤ 1 + 2 + 4 + 8 vertices.
  std::vector<std::size_t> counts(2, 0);
  for (auto c : s.component_of) ++counts[c];
  for (auto c : counts) EXPECT_LE(c, 15u);
}

TEST(MatrixShadowTest, BulkEqualsConcatenatedStructure) {
  // Bulk sampling over k batches must produce the same *kind* of output
  // as k single calls: same component counts and root mapping, with all
  // vertex sets containing their roots.
  Rng rng(14);
  Graph g = erdos_renyi(60, 0.1, rng);
  ShadowConfig cfg{.depth = 2, .fanout = 3};
  MatrixShadowSampler mat(g, cfg);
  const std::vector<std::vector<std::uint32_t>> batches{
      {0, 1, 2}, {3, 4}, {5, 6, 7, 8}};
  Rng r(15);
  auto samples = mat.sample_bulk(batches, r);
  ASSERT_EQ(samples.size(), 3u);
  for (std::size_t k = 0; k < batches.size(); ++k) {
    EXPECT_EQ(samples[k].num_components(), batches[k].size());
    for (std::size_t i = 0; i < batches[k].size(); ++i)
      EXPECT_EQ(samples[k].sub.vertex_map[samples[k].roots[i]],
                batches[k][i]);
  }
}

TEST(MatrixShadowTest, FrontierMatrixMatchesVisitedSets) {
  Rng rng(16);
  Graph g = erdos_renyi(40, 0.15, rng);
  ShadowConfig cfg{.depth = 2, .fanout = 3};
  MatrixShadowSampler mat(g, cfg);
  const std::vector<std::uint32_t> batch{2, 7, 33};
  ShadowSample s = mat.sample(batch, rng);
  const CsrMatrix& f = mat.last_frontier();
  EXPECT_EQ(f.rows(), 3u);
  EXPECT_EQ(f.cols(), 40u);
  // Row i of F = vertex set of component i.
  for (std::size_t i = 0; i < 3; ++i) {
    std::vector<std::uint32_t> comp_verts;
    for (std::size_t v = 0; v < s.sub.graph.num_vertices(); ++v)
      if (s.component_of[v] == i) comp_verts.push_back(s.sub.vertex_map[v]);
    std::sort(comp_verts.begin(), comp_verts.end());
    EXPECT_EQ(f.row_cols(i), comp_verts);
  }
}

TEST(MatrixShadowTest, StatsAreAccumulated) {
  Rng rng(17);
  Graph g = erdos_renyi(50, 0.2, rng);
  MatrixShadowSampler mat(g, {.depth = 3, .fanout = 2});
  BulkSampleStats stats;
  (void)mat.sample_bulk({{0, 1}, {2, 3}}, rng, &stats);
  EXPECT_EQ(stats.spgemm_calls, 3u);  // one per level
  EXPECT_GE(stats.frontier_rows, 4u);
  EXPECT_GT(stats.sampled_nnz, 0u);
}

TEST(MatrixShadowTest, SampledNeighborsAreRealNeighbors) {
  Rng rng(18);
  Graph g = erdos_renyi(50, 0.1, rng);
  CsrMatrix sym = g.symmetric_adjacency();
  MatrixShadowSampler mat(g, {.depth = 1, .fanout = 3});
  for (std::uint32_t root = 0; root < 10; ++root) {
    ShadowSample s = mat.sample({root}, rng);
    for (std::uint32_t v : s.sub.vertex_map) {
      if (v == root) continue;
      EXPECT_GT(sym.at(root, v), 0.0f)
          << "vertex " << v << " is not a neighbour of " << root;
    }
  }
}

TEST(MatrixShadowTest, MarginalDistributionMatchesReference) {
  // Statistical equivalence on a star graph: root has 8 neighbours,
  // fanout 4 → each neighbour appears with probability 1/2 under both
  // implementations.
  std::vector<Edge> edges;
  for (std::uint32_t i = 1; i <= 8; ++i) edges.push_back({0, i});
  Graph g(9, edges);
  ShadowConfig cfg{.depth = 1, .fanout = 4};
  ShadowSampler ref(g, cfg);
  MatrixShadowSampler mat(g, cfg);
  const int trials = 8000;
  std::vector<int> ref_counts(9, 0), mat_counts(9, 0);
  Rng r1(19), r2(20);
  for (int t = 0; t < trials; ++t) {
    for (auto v : ref.walk_vertex_set(0, r1)) ++ref_counts[v];
    ShadowSample s = mat.sample({0}, r2);
    for (auto v : s.sub.vertex_map) ++mat_counts[v];
  }
  for (std::uint32_t v = 1; v <= 8; ++v) {
    EXPECT_NEAR(ref_counts[v], trials / 2, trials * 0.05);
    EXPECT_NEAR(mat_counts[v], trials / 2, trials * 0.05);
  }
}

TEST(MatrixShadowTest, GenericSpgemmPathMatchesFastPath) {
  // The literal SpGEMM formulation and the selection fast path must draw
  // identical samples from identical RNG streams.
  Rng rng(21);
  Graph g = erdos_renyi(50, 0.12, rng);
  ShadowConfig fast{.depth = 2, .fanout = 3, .generic_spgemm = false};
  ShadowConfig generic{.depth = 2, .fanout = 3, .generic_spgemm = true};
  MatrixShadowSampler m_fast(g, fast);
  MatrixShadowSampler m_generic(g, generic);
  const std::vector<std::vector<std::uint32_t>> batches{{1, 2, 3}, {10, 20}};
  Rng r1(22), r2(22);
  auto a = m_fast.sample_bulk(batches, r1);
  auto b = m_generic.sample_bulk(batches, r2);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t k = 0; k < a.size(); ++k) {
    EXPECT_EQ(a[k].sub.vertex_map, b[k].sub.vertex_map);
    EXPECT_EQ(a[k].sub.edge_map, b[k].sub.edge_map);
    EXPECT_EQ(a[k].roots, b[k].roots);
  }
}

TEST(MatrixShadowTest, InvalidConfigThrows) {
  Graph g = path_graph(4);
  EXPECT_THROW(MatrixShadowSampler(g, {.depth = 0, .fanout = 2}), Error);
  EXPECT_THROW(ShadowSampler(g, {.depth = 2, .fanout = 0}), Error);
}

}  // namespace
}  // namespace trkx
