#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "autograd/gradcheck.hpp"
#include "nn/mlp.hpp"
#include "nn/optimizer.hpp"

namespace trkx {
namespace {

// ---------- ParameterStore ----------

TEST(ParameterStoreTest, CreateAndFind) {
  ParameterStore store;
  Parameter& p = store.create("w", 2, 3);
  EXPECT_EQ(p.value.rows(), 2u);
  EXPECT_EQ(store.count(), 1u);
  EXPECT_EQ(store.find("w"), &p);
  EXPECT_EQ(store.find("missing"), nullptr);
  EXPECT_THROW(store.create("w", 1, 1), Error);
}

TEST(ParameterStoreTest, TotalSizeAndZeroGrad) {
  ParameterStore store;
  store.create("a", 2, 2).grad.fill(5.0f);
  store.create("b", 1, 3).grad.fill(2.0f);
  EXPECT_EQ(store.total_size(), 7u);
  store.zero_grad();
  for (const auto& p : store.params())
    for (float g : p.grad.flat()) EXPECT_EQ(g, 0.0f);
}

TEST(ParameterStoreTest, FlattenUnflattenGradsRoundTrip) {
  ParameterStore store;
  Rng rng(1);
  store.create("a", 2, 3).grad = Matrix::random_normal(2, 3, rng);
  store.create("b", 4, 1).grad = Matrix::random_normal(4, 1, rng);
  const auto flat = store.flatten_grads();
  ASSERT_EQ(flat.size(), 10u);
  // Round-trip through a scaled copy.
  auto scaled = flat;
  for (float& x : scaled) x *= 2.0f;
  store.unflatten_grads(scaled);
  const auto flat2 = store.flatten_grads();
  for (std::size_t i = 0; i < flat.size(); ++i)
    EXPECT_FLOAT_EQ(flat2[i], 2.0f * flat[i]);
}

TEST(ParameterStoreTest, FlattenValuesOrderIsStable) {
  ParameterStore store;
  store.create("a", 1, 2).value = Matrix{{1, 2}};
  store.create("b", 1, 2).value = Matrix{{3, 4}};
  const auto flat = store.flatten_values();
  EXPECT_EQ(flat, (std::vector<float>{1, 2, 3, 4}));
}

TEST(ParameterStoreTest, UnflattenSizeMismatchThrows) {
  ParameterStore store;
  store.create("a", 1, 2);
  EXPECT_THROW(store.unflatten_grads({1.0f}), Error);
}

TEST(ParameterStoreTest, SaveLoadRoundTrip) {
  ParameterStore a;
  Rng rng(2);
  a.create("x", 3, 3).value = Matrix::random_normal(3, 3, rng);
  a.create("y", 1, 5).value = Matrix::random_normal(1, 5, rng);
  std::stringstream ss;
  a.save(ss);

  ParameterStore b;
  b.create("x", 3, 3);
  b.create("y", 1, 5);
  b.load(ss);
  auto ita = a.params().begin();
  auto itb = b.params().begin();
  for (; ita != a.params().end(); ++ita, ++itb)
    EXPECT_EQ(ita->value, itb->value);
}

TEST(ParameterStoreTest, LoadRejectsWrongLayout) {
  ParameterStore a;
  a.create("x", 2, 2);
  std::stringstream ss;
  a.save(ss);
  ParameterStore b;
  b.create("different", 2, 2);
  EXPECT_THROW(b.load(ss), Error);
}

TEST(ParameterStoreTest, CopyValuesFrom) {
  ParameterStore a, b;
  a.create("x", 2, 2).value.fill(7.0f);
  b.create("x", 2, 2);
  b.copy_values_from(a);
  EXPECT_EQ(b.find("x")->value, a.find("x")->value);
}

// ---------- init ----------

TEST(InitTest, KaimingBounds) {
  Rng rng(3);
  Matrix w(64, 32);
  init_kaiming_uniform(w, rng);
  const float bound = std::sqrt(6.0f / 64.0f);
  for (float x : w.flat()) {
    EXPECT_GE(x, -bound);
    EXPECT_LE(x, bound);
  }
  EXPECT_GT(w.frobenius_norm(), 0.0);
}

TEST(InitTest, XavierBounds) {
  Rng rng(4);
  Matrix w(10, 30);
  init_xavier_uniform(w, rng);
  const float bound = std::sqrt(6.0f / 40.0f);
  for (float x : w.flat()) {
    EXPECT_GE(x, -bound);
    EXPECT_LE(x, bound);
  }
}

// ---------- Linear / MLP ----------

TEST(LinearTest, ForwardShapeAndValue) {
  ParameterStore store;
  Rng rng(5);
  Linear lin(store, "l", 3, 2, rng);
  EXPECT_EQ(store.count(), 2u);  // weight + bias
  store.find("l.weight")->value = Matrix{{1, 0}, {0, 1}, {1, 1}};
  store.find("l.bias")->value = Matrix{{10, 20}};
  TapeContext ctx;
  Var y = lin.forward(ctx, ctx.constant(Matrix{{1, 2, 3}}));
  EXPECT_EQ(y.value(), (Matrix{{14, 25}}));
}

TEST(LinearTest, WrongInputDimThrows) {
  ParameterStore store;
  Rng rng(6);
  Linear lin(store, "l", 3, 2, rng);
  TapeContext ctx;
  EXPECT_THROW(lin.forward(ctx, ctx.constant(Matrix(1, 4))), Error);
}

TEST(MlpTest, LayerCountMatchesConfig) {
  ParameterStore store;
  Rng rng(7);
  MlpConfig cfg;
  cfg.input_dim = 4;
  cfg.hidden_dim = 8;
  cfg.output_dim = 2;
  cfg.num_hidden = 3;
  Mlp mlp(store, "m", cfg, rng);
  EXPECT_EQ(mlp.num_linear_layers(), 4u);
  // 4 linears × 2 params.
  EXPECT_EQ(store.count(), 8u);
}

TEST(MlpTest, LayerNormAddsParams) {
  ParameterStore store;
  Rng rng(8);
  MlpConfig cfg;
  cfg.input_dim = 4;
  cfg.hidden_dim = 8;
  cfg.output_dim = 2;
  cfg.num_hidden = 2;
  cfg.layer_norm = true;
  Mlp mlp(store, "m", cfg, rng);
  EXPECT_EQ(store.count(), 6u + 4u);  // 3 linears ×2 + 2 LN ×2
}

TEST(MlpTest, OutputShape) {
  ParameterStore store;
  Rng rng(9);
  MlpConfig cfg;
  cfg.input_dim = 5;
  cfg.hidden_dim = 16;
  cfg.output_dim = 3;
  cfg.num_hidden = 2;
  cfg.layer_norm = true;
  Mlp mlp(store, "m", cfg, rng);
  TapeContext ctx;
  Rng drng(10);
  Var y = mlp.forward(ctx, ctx.constant(Matrix::random_normal(7, 5, drng)));
  EXPECT_EQ(y.rows(), 7u);
  EXPECT_EQ(y.cols(), 3u);
  EXPECT_TRUE(y.value().all_finite());
}

TEST(MlpTest, GradcheckThroughWholeNetwork) {
  // Perturb the *input*; parameters are fixed leaves inside scalar_fn.
  ParameterStore store;
  Rng rng(11);
  MlpConfig cfg;
  cfg.input_dim = 3;
  cfg.hidden_dim = 6;
  cfg.output_dim = 2;
  cfg.num_hidden = 1;
  cfg.hidden_activation = Activation::kTanh;
  cfg.layer_norm = true;
  Mlp mlp(store, "m", cfg, rng);
  Matrix x = Matrix::random_normal(4, 3, rng);
  auto result = gradcheck(
      [&](const std::vector<Matrix>& in, std::vector<Matrix>* grads) {
        TapeContext ctx;
        Var xv = ctx.tape().leaf(in[0], true);
        Var y = mlp.forward(ctx, xv);
        Var loss = ctx.tape().mean_square(y);
        const double v = loss.value()(0, 0);
        if (grads) {
          ctx.tape().backward(loss);
          grads->push_back(xv.grad());
        }
        return v;
      },
      {x});
  EXPECT_TRUE(result.passed) << result.max_abs_error;
}

TEST(MlpTest, ParameterGradientsFlowToStore) {
  ParameterStore store;
  Rng rng(12);
  MlpConfig cfg;
  cfg.input_dim = 2;
  cfg.hidden_dim = 4;
  cfg.output_dim = 1;
  cfg.num_hidden = 1;
  Mlp mlp(store, "m", cfg, rng);
  store.zero_grad();
  TapeContext ctx;
  Var y = mlp.forward(ctx, ctx.constant(Matrix{{1, 2}, {3, 4}}));
  Var loss = ctx.tape().mean_square(y);
  ctx.backward(loss);
  double grad_norm = 0.0;
  for (const auto& p : store.params())
    grad_norm += p.grad.frobenius_norm();
  EXPECT_GT(grad_norm, 0.0);
}

// ---------- optimizers ----------

TEST(SgdTest, PlainStepMath) {
  ParameterStore store;
  Parameter& p = store.create("w", 1, 2);
  p.value = Matrix{{1.0f, 2.0f}};
  p.grad = Matrix{{0.5f, -1.0f}};
  Sgd opt(store, SgdOptions{.lr = 0.1f});
  opt.step();
  EXPECT_NEAR(p.value(0, 0), 0.95f, 1e-6f);
  EXPECT_NEAR(p.value(0, 1), 2.1f, 1e-6f);
}

TEST(SgdTest, MomentumAccumulates) {
  ParameterStore store;
  Parameter& p = store.create("w", 1, 1);
  p.value = Matrix{{0.0f}};
  p.grad = Matrix{{1.0f}};
  Sgd opt(store, SgdOptions{.lr = 1.0f, .momentum = 0.5f});
  opt.step();  // v=1, w=-1
  opt.step();  // v=1.5, w=-2.5
  EXPECT_NEAR(p.value(0, 0), -2.5f, 1e-6f);
}

TEST(SgdTest, WeightDecayShrinks) {
  ParameterStore store;
  Parameter& p = store.create("w", 1, 1);
  p.value = Matrix{{10.0f}};
  p.grad = Matrix{{0.0f}};
  Sgd opt(store, SgdOptions{.lr = 0.1f, .weight_decay = 0.5f});
  opt.step();
  EXPECT_NEAR(p.value(0, 0), 10.0f - 0.1f * 0.5f * 10.0f, 1e-5f);
}

TEST(AdamTest, FirstStepIsLrSignedGradient) {
  ParameterStore store;
  Parameter& p = store.create("w", 1, 2);
  p.value = Matrix{{0.0f, 0.0f}};
  p.grad = Matrix{{3.0f, -0.01f}};
  Adam opt(store, AdamOptions{.lr = 0.1f});
  opt.step();
  // Adam's first step is ≈ -lr * sign(grad) regardless of magnitude.
  EXPECT_NEAR(p.value(0, 0), -0.1f, 1e-3f);
  EXPECT_NEAR(p.value(0, 1), 0.1f, 1e-3f);
}

TEST(AdamTest, ConvergesOnQuadratic) {
  // minimize f(w) = ||w - target||².
  ParameterStore store;
  Parameter& p = store.create("w", 1, 3);
  const Matrix target{{1.0f, -2.0f, 0.5f}};
  Adam opt(store, AdamOptions{.lr = 0.05f});
  for (int iter = 0; iter < 500; ++iter) {
    for (std::size_t j = 0; j < 3; ++j)
      p.grad(0, j) = 2.0f * (p.value(0, j) - target(0, j));
    opt.step();
  }
  EXPECT_TRUE(allclose(p.value, target, 1e-2f, 1e-2f));
}

TEST(OptimizerTest, ScaleGrads) {
  ParameterStore store;
  Parameter& p = store.create("w", 1, 2);
  p.grad = Matrix{{2.0f, 4.0f}};
  Sgd opt(store, SgdOptions{});
  opt.scale_grads(0.25f);
  EXPECT_EQ(p.grad, (Matrix{{0.5f, 1.0f}}));
}

TEST(OptimizerTest, ClipGradNorm) {
  ParameterStore store;
  Parameter& p = store.create("w", 1, 2);
  p.grad = Matrix{{3.0f, 4.0f}};  // norm 5
  Sgd opt(store, SgdOptions{});
  const double pre = opt.clip_grad_norm(1.0);
  EXPECT_NEAR(pre, 5.0, 1e-6);
  double post = 0.0;
  for (float g : p.grad.flat()) post += g * g;
  EXPECT_NEAR(std::sqrt(post), 1.0, 1e-4);
}

TEST(OptimizerTest, ClipNoopBelowThreshold) {
  ParameterStore store;
  Parameter& p = store.create("w", 1, 2);
  p.grad = Matrix{{0.3f, 0.4f}};
  Sgd opt(store, SgdOptions{});
  opt.clip_grad_norm(10.0);
  EXPECT_EQ(p.grad, (Matrix{{0.3f, 0.4f}}));
}

TEST(AdamTest, StateCheckpointResumesExactly) {
  // Train A for 2n steps; train B for n steps, checkpoint, restore into a
  // fresh optimizer, train n more: identical trajectories.
  auto make = [](ParameterStore& store) {
    store.create("w", 2, 3);
  };
  auto do_steps = [](ParameterStore& store, Adam& opt, int n, int offset) {
    for (int i = 0; i < n; ++i) {
      Rng rng(static_cast<std::uint64_t>(offset + i));
      store.params().front().grad = Matrix::random_normal(2, 3, rng);
      opt.step();
    }
  };
  ParameterStore sa;
  make(sa);
  Adam oa(sa, AdamOptions{.lr = 0.01f});
  do_steps(sa, oa, 10, 0);

  ParameterStore sb;
  make(sb);
  Adam ob1(sb, AdamOptions{.lr = 0.01f});
  do_steps(sb, ob1, 5, 0);
  std::stringstream state, values;
  ob1.save_state(state);
  sb.save(values);

  ParameterStore sc;
  make(sc);
  Adam oc(sc, AdamOptions{.lr = 0.01f});
  sc.load(values);
  oc.load_state(state);
  do_steps(sc, oc, 5, 5);
  EXPECT_EQ(sc.flatten_values(), sa.flatten_values());
}

TEST(AdamTest, LoadStateRejectsWrongLayout) {
  ParameterStore a;
  a.create("w", 2, 2);
  Adam oa(a, AdamOptions{});
  std::stringstream ss;
  oa.save_state(ss);
  ParameterStore b;
  b.create("w", 2, 2);
  b.create("extra", 1, 1);
  Adam ob(b, AdamOptions{});
  EXPECT_THROW(ob.load_state(ss), Error);
}

// ---------- training a tiny regression end to end ----------

TEST(TrainingSmoke, MlpFitsLinearFunction) {
  ParameterStore store;
  Rng rng(20);
  MlpConfig cfg;
  cfg.input_dim = 2;
  cfg.hidden_dim = 16;
  cfg.output_dim = 1;
  cfg.num_hidden = 1;
  cfg.hidden_activation = Activation::kTanh;
  Mlp mlp(store, "m", cfg, rng);
  Adam opt(store, AdamOptions{.lr = 1e-2f});

  Matrix x = Matrix::random_normal(64, 2, rng);
  Matrix target(64, 1);
  for (std::size_t i = 0; i < 64; ++i)
    target(i, 0) = 0.7f * x(i, 0) - 0.3f * x(i, 1);

  double first_loss = 0.0, last_loss = 0.0;
  for (int iter = 0; iter < 200; ++iter) {
    TapeContext ctx;
    Var pred = mlp.forward(ctx, ctx.constant(x));
    Var err = ctx.tape().sub(pred, ctx.constant(target));
    Var loss = ctx.tape().mean_square(err);
    if (iter == 0) first_loss = loss.value()(0, 0);
    last_loss = loss.value()(0, 0);
    opt.zero_grad();
    ctx.backward(loss);
    opt.step();
  }
  EXPECT_LT(last_loss, first_loss * 0.05);
}

}  // namespace
}  // namespace trkx
