#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "io/csv.hpp"
#include "io/event_io.hpp"

namespace trkx {
namespace {

Event make_event(std::uint64_t seed) {
  DetectorConfig cfg;
  cfg.mean_particles = 15.0;
  Rng rng(seed);
  return generate_event(cfg, rng);
}

bool events_equal(const Event& a, const Event& b) {
  if (a.hits.size() != b.hits.size()) return false;
  for (std::size_t i = 0; i < a.hits.size(); ++i) {
    if (a.hits[i].x != b.hits[i].x || a.hits[i].y != b.hits[i].y ||
        a.hits[i].z != b.hits[i].z || a.hits[i].layer != b.hits[i].layer ||
        a.hits[i].particle != b.hits[i].particle)
      return false;
  }
  if (a.particles.size() != b.particles.size()) return false;
  for (std::size_t i = 0; i < a.particles.size(); ++i)
    if (a.particles[i].hits != b.particles[i].hits ||
        a.particles[i].pt != b.particles[i].pt)
      return false;
  if (a.graph.num_vertices() != b.graph.num_vertices()) return false;
  if (!(a.graph.edges() == b.graph.edges())) return false;
  return a.edge_labels == b.edge_labels &&
         a.node_features == b.node_features &&
         a.edge_features == b.edge_features;
}

TEST(EventIoTest, StreamRoundTrip) {
  Event e = make_event(1);
  std::stringstream ss;
  save_event(ss, e);
  Event back = load_event(ss);
  EXPECT_TRUE(events_equal(e, back));
}

TEST(EventIoTest, FileRoundTripMultipleEvents) {
  std::vector<Event> events{make_event(2), make_event(3), make_event(4)};
  const std::string path = "/tmp/trkx_io_test_events.bin";
  save_events(path, events);
  auto back = load_events(path);
  ASSERT_EQ(back.size(), 3u);
  for (std::size_t i = 0; i < 3; ++i)
    EXPECT_TRUE(events_equal(events[i], back[i]));
  std::remove(path.c_str());
}

TEST(EventIoTest, BadMagicRejected) {
  std::stringstream ss;
  const std::uint32_t junk = 0xdeadbeef;
  ss.write(reinterpret_cast<const char*>(&junk), sizeof(junk));
  ss.write(reinterpret_cast<const char*>(&junk), sizeof(junk));
  EXPECT_THROW(load_event(ss), Error);
}

TEST(EventIoTest, TruncatedStreamRejected) {
  Event e = make_event(5);
  std::stringstream ss;
  save_event(ss, e);
  std::string data = ss.str();
  data.resize(data.size() / 2);
  std::stringstream truncated(data);
  EXPECT_THROW(load_event(truncated), Error);
}

TEST(EventIoTest, MissingFileThrows) {
  EXPECT_THROW(load_events("/tmp/definitely_missing_trkx_file.bin"), Error);
}

TEST(EventIoTest, CsvExportShape) {
  Event e = make_event(6);
  std::vector<float> scores(e.num_edges(), 0.25f);
  export_event_csv("/tmp/trkx_io_export", e, scores);
  std::ifstream hits("/tmp/trkx_io_export_hits.csv");
  std::string line;
  std::getline(hits, line);
  EXPECT_EQ(line, "hit_id,x,y,z,r,phi,eta,layer,particle");
  std::size_t hit_rows = 0;
  while (std::getline(hits, line)) ++hit_rows;
  EXPECT_EQ(hit_rows, e.hits.size());

  std::ifstream edges("/tmp/trkx_io_export_edges.csv");
  std::getline(edges, line);
  EXPECT_EQ(line, "edge_id,src,dst,label,score");
  std::size_t edge_rows = 0;
  while (std::getline(edges, line)) ++edge_rows;
  EXPECT_EQ(edge_rows, e.num_edges());
  std::remove("/tmp/trkx_io_export_hits.csv");
  std::remove("/tmp/trkx_io_export_edges.csv");
}

TEST(EventIoTest, CsvExportScoreSizeMismatchThrows) {
  Event e = make_event(7);
  EXPECT_THROW(export_event_csv("/tmp/trkx_io_bad", e, {0.5f}), Error);
}

TEST(CsvTest, WritesHeaderAndRows) {
  const std::string path = "/tmp/trkx_io_test.csv";
  {
    CsvWriter csv(path, {"a", "b", "c"});
    csv.row(std::vector<std::string>{"x", "y", "z"});
    csv.row(std::vector<double>{1.5, 2.0, 3.25});
  }
  std::ifstream is(path);
  std::string line;
  std::getline(is, line);
  EXPECT_EQ(line, "a,b,c");
  std::getline(is, line);
  EXPECT_EQ(line, "x,y,z");
  std::getline(is, line);
  EXPECT_EQ(line, "1.5,2,3.25");
  std::remove(path.c_str());
}

TEST(CsvTest, WrongColumnCountThrows) {
  const std::string path = "/tmp/trkx_io_test2.csv";
  CsvWriter csv(path, {"a", "b"});
  EXPECT_THROW(csv.row(std::vector<std::string>{"only-one"}), Error);
  std::remove(path.c_str());
}

TEST(CsvTest, FormatDouble) {
  EXPECT_EQ(format_double(1.23456789, 3), "1.23");
  EXPECT_EQ(format_double(1000000.0), "1e+06");
}

}  // namespace
}  // namespace trkx
