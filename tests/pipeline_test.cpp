#include <gtest/gtest.h>

#include <cmath>

#include <sstream>

#include "pipeline/pipeline.hpp"

namespace trkx {
namespace {

DetectorConfig tiny_detector() {
  DetectorConfig cfg;
  cfg.mean_particles = 25.0;
  cfg.noise_fraction = 0.05;
  return cfg;
}

std::vector<Event> tiny_events(std::size_t count, std::uint64_t seed) {
  std::vector<Event> events;
  Rng rng(seed);
  for (std::size_t i = 0; i < count; ++i) {
    Rng er = rng.split();
    events.push_back(generate_event(tiny_detector(), er));
  }
  return events;
}

// ---------- embedding ----------

TEST(EmbeddingTest, TrainingReducesLoss) {
  auto events = tiny_events(3, 1);
  EmbeddingConfig cfg;
  cfg.epochs = 6;
  cfg.pairs_per_event = 512;
  EmbeddingModel model(events[0].node_features.cols(), cfg);
  const auto losses = model.train(events);
  ASSERT_EQ(losses.size(), 6u);
  EXPECT_LT(losses.back(), losses.front() * 0.9);
}

TEST(EmbeddingTest, EmbedsToConfiguredDim) {
  auto events = tiny_events(1, 2);
  EmbeddingConfig cfg;
  cfg.embed_dim = 5;
  EmbeddingModel model(events[0].node_features.cols(), cfg);
  Matrix e = model.embed(events[0].node_features);
  EXPECT_EQ(e.rows(), events[0].hits.size());
  EXPECT_EQ(e.cols(), 5u);
  EXPECT_TRUE(e.all_finite());
}

TEST(EmbeddingTest, TrainedEmbeddingSeparatesPairs) {
  auto events = tiny_events(4, 3);
  EmbeddingConfig cfg;
  cfg.epochs = 10;
  EmbeddingModel model(events[0].node_features.cols(), cfg);
  model.train(events);
  const Event& ev = events[0];
  Matrix emb = model.embed(ev.node_features);
  auto dist = [&](std::uint32_t a, std::uint32_t b) {
    double d2 = 0.0;
    for (std::size_t j = 0; j < emb.cols(); ++j) {
      const double d = emb(a, j) - emb(b, j);
      d2 += d * d;
    }
    return std::sqrt(d2);
  };
  // Mean true-pair distance < mean random-pair distance.
  double pos_sum = 0.0;
  std::size_t pos_n = 0;
  for (const TruthParticle& p : ev.particles)
    for (std::size_t i = 0; i + 1 < p.hits.size(); ++i) {
      pos_sum += dist(p.hits[i], p.hits[i + 1]);
      ++pos_n;
    }
  Rng rng(4);
  double neg_sum = 0.0;
  const std::size_t neg_n = 500;
  for (std::size_t i = 0; i < neg_n; ++i)
    neg_sum += dist(rng.uniform_index(ev.hits.size()),
                    rng.uniform_index(ev.hits.size()));
  ASSERT_GT(pos_n, 0u);
  EXPECT_LT(pos_sum / pos_n, 0.5 * neg_sum / neg_n);
}

// ---------- FRNN graph construction ----------

class FrnnCases
    : public ::testing::TestWithParam<std::tuple<int, int, double>> {};

TEST_P(FrnnCases, GridMatchesBruteForce) {
  auto [n, dim, radius] = GetParam();
  Rng rng(static_cast<std::uint64_t>(n * 10 + dim));
  Matrix pts = Matrix::random_uniform(n, dim, rng, 0.0f, 2.0f);
  FrnnConfig cfg;
  cfg.radius = static_cast<float>(radius);
  cfg.max_neighbors = 1000;  // no truncation → exact comparison
  Graph a = build_frnn_graph(pts, cfg);
  Graph b = build_frnn_graph_bruteforce(pts, cfg);
  ASSERT_EQ(a.num_edges(), b.num_edges());
  for (std::size_t e = 0; e < a.num_edges(); ++e)
    EXPECT_TRUE(a.edge(e) == b.edge(e));
}

INSTANTIATE_TEST_SUITE_P(
    Cases, FrnnCases,
    ::testing::Values(std::make_tuple(50, 2, 0.3), std::make_tuple(100, 3, 0.4),
                      std::make_tuple(200, 4, 0.5), std::make_tuple(30, 6, 0.8),
                      std::make_tuple(10, 2, 10.0)));

TEST(FrnnTest, EdgesWithinRadius) {
  Rng rng(5);
  Matrix pts = Matrix::random_uniform(80, 3, rng);
  FrnnConfig cfg;
  cfg.radius = 0.25f;
  Graph g = build_frnn_graph(pts, cfg);
  for (const Edge& e : g.edges()) {
    double d2 = 0.0;
    for (std::size_t j = 0; j < 3; ++j) {
      const double d = pts(e.src, j) - pts(e.dst, j);
      d2 += d * d;
    }
    EXPECT_LE(std::sqrt(d2), 0.25 + 1e-6);
  }
}

TEST(FrnnTest, MaxNeighborsCaps) {
  // A dense cluster: every point within radius of every other.
  Matrix pts(20, 2, 0.0f);
  Rng rng(6);
  for (float& x : pts.flat()) x = rng.uniform(0.0f, 0.01f);
  FrnnConfig cfg;
  cfg.radius = 1.0f;
  cfg.max_neighbors = 3;
  Graph g = build_frnn_graph(pts, cfg);
  // Each ordered pair counted once at the lower index; per-query cap 3.
  EXPECT_LE(g.num_edges(), 20u * 3u);
}

TEST(FrnnTest, LayerOrientationRespected) {
  Matrix pts{{0, 0}, {0.1f, 0}, {0.2f, 0}};
  FrnnConfig cfg;
  cfg.radius = 0.15f;
  Graph g = build_frnn_graph(pts, cfg, {2, 1, 0});
  for (const Edge& e : g.edges()) EXPECT_GT(e.src, e.dst);  // layer asc
}

TEST(FrnnTest, RebuildEventGraphRelabelsTruth) {
  auto events = tiny_events(1, 7);
  Event& ev = events[0];
  // Identity "embedding": raw positions scaled — truth pairs are nearby.
  Matrix pos(ev.hits.size(), 3);
  for (std::size_t i = 0; i < ev.hits.size(); ++i) {
    pos(i, 0) = ev.hits[i].x / 100.0f;
    pos(i, 1) = ev.hits[i].y / 100.0f;
    pos(i, 2) = ev.hits[i].z / 100.0f;
  }
  FrnnConfig cfg;
  cfg.radius = 3.0f;
  FeatureScales scales;
  rebuild_event_graph(ev, pos, cfg, 2, scales);
  EXPECT_EQ(ev.edge_labels.size(), ev.graph.num_edges());
  EXPECT_EQ(ev.edge_features.rows(), ev.graph.num_edges());
  EXPECT_GT(ev.positive_edge_fraction(), 0.0);
}

// ---------- filter ----------

TEST(FilterTest, TrainingReducesLossAndPrunes) {
  auto events = tiny_events(3, 8);
  FilterConfig cfg;
  cfg.epochs = 8;
  FilterModel filter(events[0].node_features.cols(),
                     events[0].edge_features.cols(), cfg);
  const auto losses = filter.train(events);
  EXPECT_LT(losses.back(), losses.front());

  Event ev = events[0];
  const std::size_t before = ev.num_edges();
  const double pos_before = ev.positive_edge_fraction();
  const std::size_t removed = filter.apply(ev);
  EXPECT_EQ(ev.num_edges(), before - removed);
  EXPECT_EQ(ev.edge_labels.size(), ev.num_edges());
  EXPECT_EQ(ev.edge_features.rows(), ev.num_edges());
  if (removed > 0) {
    // Pruning fakes raises the positive fraction.
    EXPECT_GT(ev.positive_edge_fraction(), pos_before);
  }
}

TEST(FilterTest, ScoresAreProbabilities) {
  auto events = tiny_events(1, 9);
  FilterModel filter(events[0].node_features.cols(),
                     events[0].edge_features.cols(), FilterConfig{});
  const auto scores = filter.score(events[0]);
  ASSERT_EQ(scores.size(), events[0].num_edges());
  for (float s : scores) {
    EXPECT_GE(s, 0.0f);
    EXPECT_LE(s, 1.0f);
  }
}

// ---------- track building ----------

TEST(TrackBuildTest, PerfectScoresRecoverTracks) {
  auto events = tiny_events(1, 10);
  const Event& ev = events[0];
  // Oracle scores = truth labels.
  std::vector<float> scores(ev.num_edges());
  for (std::size_t e = 0; e < ev.num_edges(); ++e)
    scores[e] = ev.edge_labels[e] ? 1.0f : 0.0f;
  TrackBuildConfig cfg;
  auto tracks = build_tracks(ev, scores, cfg);
  auto metrics = score_tracks(ev, tracks, cfg);
  EXPECT_GT(metrics.reconstructable, 0u);
  EXPECT_GT(metrics.efficiency(), 0.85);
  EXPECT_LT(metrics.fake_rate(), 0.15);
}

TEST(TrackBuildTest, ZeroScoresYieldNoTracks) {
  auto events = tiny_events(1, 11);
  const Event& ev = events[0];
  std::vector<float> scores(ev.num_edges(), 0.0f);
  auto tracks = build_tracks(ev, scores, TrackBuildConfig{});
  EXPECT_TRUE(tracks.empty());
}

TEST(TrackBuildTest, KeepingAllEdgesIsNoBetterThanOracle) {
  // Keeping every candidate edge merges tracks through fake edges; the
  // result cannot beat oracle scores on efficiency and merges components
  // (fewer candidates than true tracks in a dense event).
  DetectorConfig dense = tiny_detector();
  dense.mean_particles = 150.0;
  Rng rng(12);
  Event ev = generate_event(dense, rng);
  TrackBuildConfig cfg;
  std::vector<float> all_on(ev.num_edges(), 1.0f);
  std::vector<float> oracle(ev.num_edges());
  for (std::size_t e = 0; e < ev.num_edges(); ++e)
    oracle[e] = ev.edge_labels[e] ? 1.0f : 0.0f;
  auto m_all = score_tracks(ev, build_tracks(ev, all_on, cfg), cfg);
  auto m_oracle = score_tracks(ev, build_tracks(ev, oracle, cfg), cfg);
  EXPECT_LE(m_all.efficiency(), m_oracle.efficiency());
  EXPECT_LT(m_all.candidates, m_oracle.candidates);
}

TEST(TrackBuildTest, MinHitsFilters) {
  Graph g(5, {{0, 1}, {2, 3}});
  Event ev;
  ev.hits.resize(5);
  ev.graph = g;
  ev.edge_labels.assign(2, 1);
  TrackBuildConfig cfg;
  cfg.min_hits = 3;
  auto tracks = build_tracks(ev, {1.0f, 1.0f}, cfg);
  EXPECT_TRUE(tracks.empty());  // components of size 2 are dropped
  cfg.min_hits = 2;
  tracks = build_tracks(ev, {1.0f, 1.0f}, cfg);
  EXPECT_EQ(tracks.size(), 2u);
}

TEST(TrackBuildTest, ScoreSizeMismatchThrows) {
  auto events = tiny_events(1, 13);
  EXPECT_THROW(build_tracks(events[0], {0.5f}, TrackBuildConfig{}), Error);
}

// ---------- GNN training modes ----------

GnnTrainConfig fast_train_config() {
  GnnTrainConfig cfg;
  cfg.epochs = 2;
  cfg.batch_size = 64;
  cfg.shadow = {.depth = 2, .fanout = 3};
  cfg.bulk_k = 2;
  cfg.evaluate_every_epoch = true;
  return cfg;
}

IgnnConfig fast_gnn_config(const Event& sample) {
  IgnnConfig cfg;
  cfg.node_input_dim = sample.node_features.cols();
  cfg.edge_input_dim = sample.edge_features.cols();
  cfg.hidden_dim = 16;
  cfg.num_layers = 2;
  cfg.mlp_hidden = 1;
  return cfg;
}

TEST(GnnTrainTest, AutoPosWeightReflectsImbalance) {
  auto events = tiny_events(2, 14);
  const float w = auto_pos_weight(events);
  EXPECT_GE(w, 1.0f);
  EXPECT_LE(w, 20.0f);
}

TEST(GnnTrainTest, FullGraphTrainingRunsAndRecords) {
  auto events = tiny_events(3, 15);
  auto val = tiny_events(1, 16);
  GnnModel model(fast_gnn_config(events[0]), 99);
  auto result = train_full_graph(model, events, val, fast_train_config());
  ASSERT_EQ(result.epochs.size(), 2u);
  EXPECT_GT(result.epochs[0].timers.get("train"), 0.0);
  EXPECT_EQ(result.skipped_graphs, 0u);
  EXPECT_GT(result.epochs.back().val.total(), 0u);
}

TEST(GnnTrainTest, FullGraphSkipsOversizedGraphs) {
  auto events = tiny_events(3, 17);
  auto val = tiny_events(1, 18);
  GnnTrainConfig cfg = fast_train_config();
  cfg.epochs = 1;
  cfg.max_edges = 1;  // everything is oversized
  GnnModel model(fast_gnn_config(events[0]), 99);
  auto result = train_full_graph(model, events, val, cfg);
  EXPECT_EQ(result.skipped_graphs, events.size());
  EXPECT_EQ(result.epochs[0].train_loss, 0.0);
}

class ShadowTrainModes : public ::testing::TestWithParam<SamplerKind> {};

TEST_P(ShadowTrainModes, LossDecreasesOverEpochs) {
  auto events = tiny_events(2, 19);
  auto val = tiny_events(1, 20);
  GnnTrainConfig cfg = fast_train_config();
  cfg.epochs = 3;
  GnnModel model(fast_gnn_config(events[0]), 100);
  auto result = train_shadow(model, events, val, cfg, GetParam());
  ASSERT_EQ(result.epochs.size(), 3u);
  EXPECT_LT(result.epochs.back().train_loss,
            result.epochs.front().train_loss);
  EXPECT_GT(result.epochs[0].timers.get("sample"), 0.0);
  EXPECT_GT(result.epochs[0].timers.get("train"), 0.0);
}

INSTANTIATE_TEST_SUITE_P(Kinds, ShadowTrainModes,
                         ::testing::Values(SamplerKind::kReference,
                                           SamplerKind::kMatrixBulk));

TEST(GnnTrainTest, EvaluateEdgesCountsAllValEdges) {
  auto events = tiny_events(1, 21);
  GnnModel model(fast_gnn_config(events[0]), 101);
  BinaryMetrics m = evaluate_edges(model, events);
  EXPECT_EQ(m.total(), events[0].num_edges());
}

TEST(GnnTrainTest, DdpMatchesSingleProcessStepCount) {
  auto events = tiny_events(2, 22);
  auto val = tiny_events(1, 23);
  GnnTrainConfig cfg = fast_train_config();
  cfg.epochs = 1;
  GnnModel model(fast_gnn_config(events[0]), 102);
  DistRuntime rt(2);
  auto result =
      train_shadow_ddp(model, events, val, cfg, rt, SamplerKind::kMatrixBulk);
  ASSERT_EQ(result.epochs.size(), 1u);
  EXPECT_GT(result.comm.all_reduce_calls, 0u);
  EXPECT_TRUE(std::isfinite(result.epochs[0].train_loss));
}

TEST(GnnTrainTest, DdpReplicasStayInSync) {
  // After DDP training the returned model must produce finite,
  // deterministic outputs (replica 0 copied back).
  auto events = tiny_events(2, 24);
  auto val = tiny_events(1, 25);
  GnnTrainConfig cfg = fast_train_config();
  cfg.epochs = 1;
  GnnModel m1(fast_gnn_config(events[0]), 103);
  GnnModel m2(fast_gnn_config(events[0]), 103);
  DistRuntime rt(2);
  train_shadow_ddp(m1, events, val, cfg, rt, SamplerKind::kReference);
  DistRuntime rt2(2);
  train_shadow_ddp(m2, events, val, cfg, rt2, SamplerKind::kReference);
  // Same seeds → identical final weights.
  EXPECT_EQ(m1.store.flatten_values(), m2.store.flatten_values());
}

TEST(GnnTrainTest, SyncStrategiesGiveSameModel) {
  auto events = tiny_events(2, 26);
  auto val = tiny_events(1, 27);
  GnnTrainConfig cfg = fast_train_config();
  cfg.epochs = 1;
  GnnModel m1(fast_gnn_config(events[0]), 104);
  GnnModel m2(fast_gnn_config(events[0]), 104);
  cfg.sync = SyncStrategy::kPerTensor;
  DistRuntime rt1(2);
  train_shadow_ddp(m1, events, val, cfg, rt1, SamplerKind::kReference);
  cfg.sync = SyncStrategy::kCoalesced;
  DistRuntime rt2(2);
  train_shadow_ddp(m2, events, val, cfg, rt2, SamplerKind::kReference);
  EXPECT_EQ(m1.store.flatten_values(), m2.store.flatten_values());
}

TEST(GnnTrainTest, EarlyStoppingTruncatesTraining) {
  auto events = tiny_events(2, 40);
  auto val = tiny_events(1, 41);
  GnnTrainConfig cfg = fast_train_config();
  cfg.epochs = 50;  // would take forever without early stop
  cfg.early_stop_patience = 1;
  GnnModel model(fast_gnn_config(events[0]), 200);
  auto result =
      train_shadow(model, events, val, cfg, SamplerKind::kMatrixBulk);
  EXPECT_LT(result.epochs.size(), 50u);
  EXPECT_GE(result.epochs.size(), 2u);  // needs ≥ patience+1 epochs
}

TEST(GnnTrainTest, EarlyStoppingWorksUnderDdp) {
  auto events = tiny_events(2, 42);
  auto val = tiny_events(1, 43);
  GnnTrainConfig cfg = fast_train_config();
  cfg.epochs = 30;
  cfg.early_stop_patience = 1;
  GnnModel model(fast_gnn_config(events[0]), 201);
  DistRuntime rt(2);
  auto result =
      train_shadow_ddp(model, events, val, cfg, rt, SamplerKind::kReference);
  EXPECT_LT(result.epochs.size(), 30u);
}

TEST(GnnTrainTest, SchedulerDrivesLearningRate) {
  // With a zero-after-step-0 schedule, epochs beyond the first change
  // nothing: final weights equal the weights after one epoch.
  auto events = tiny_events(1, 44);
  auto val = tiny_events(1, 45);
  GnnTrainConfig cfg = fast_train_config();
  cfg.evaluate_every_epoch = false;

  GnnModel one_epoch(fast_gnn_config(events[0]), 202);
  cfg.epochs = 1;
  train_shadow(one_epoch, events, val, cfg, SamplerKind::kReference);

  // Count steps in one epoch, then build a schedule that zeroes lr after.
  std::size_t steps_per_epoch = 0;
  {
    Rng rng(cfg.seed);
    std::vector<std::uint32_t> order(events.size());
    rng.shuffle(order);
    steps_per_epoch =
        make_minibatches(events[0].num_hits(), cfg.batch_size, rng).size();
  }
  GnnModel scheduled(fast_gnn_config(events[0]), 202);
  cfg.epochs = 3;
  cfg.scheduler = std::make_shared<StepDecayLr>(
      cfg.lr, 1e-30f, std::max<std::size_t>(steps_per_epoch, 1));
  train_shadow(scheduled, events, val, cfg, SamplerKind::kReference);
  // Not bitwise equal (Adam moments keep evolving with ~0 lr), but the
  // weights must be overwhelmingly dominated by the first epoch.
  const auto a = one_epoch.store.flatten_values();
  const auto b = scheduled.store.flatten_values();
  double diff = 0.0, norm = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    diff += std::fabs(a[i] - b[i]);
    norm += std::fabs(a[i]);
  }
  EXPECT_LT(diff / norm, 1e-3);
}

TEST(GnnTrainTest, KeepBestWeightsRestoresBestEpoch) {
  auto events = tiny_events(2, 48);
  auto val = tiny_events(1, 49);
  GnnTrainConfig cfg = fast_train_config();
  cfg.epochs = 4;
  cfg.keep_best_weights = true;
  GnnModel model(fast_gnn_config(events[0]), 300);
  auto result =
      train_shadow(model, events, val, cfg, SamplerKind::kMatrixBulk);
  // Final model evaluation must equal the selected epoch's metrics.
  ASSERT_LT(result.selected_epoch, result.epochs.size());
  const BinaryMetrics final_val = evaluate_edges(model, val);
  const BinaryMetrics& best = result.epochs[result.selected_epoch].val;
  EXPECT_EQ(final_val.true_positives, best.true_positives);
  EXPECT_EQ(final_val.false_positives, best.false_positives);
  // And the selected epoch is the argmax of F1 across epochs.
  for (const auto& e : result.epochs)
    EXPECT_LE(e.val.f1(), best.f1() + 1e-12);
}

TEST(PipelineTest, SaveLoadRoundTripPreservesReconstruction) {
  auto train = tiny_events(2, 46);
  auto val = tiny_events(1, 47);
  PipelineConfig cfg;
  cfg.embedding.epochs = 2;
  cfg.filter.epochs = 2;
  cfg.gnn.hidden_dim = 8;
  cfg.gnn.num_layers = 1;
  cfg.gnn.mlp_hidden = 1;
  cfg.gnn_train.epochs = 1;
  cfg.gnn_train.batch_size = 64;
  cfg.gnn_train.shadow = {.depth = 2, .fanout = 3};
  cfg.use_learned_graphs = false;
  TrackingPipeline original(train[0].node_features.cols(),
                            train[0].edge_features.cols(), cfg);
  original.fit(train, val);
  std::stringstream ss;
  original.save(ss);

  TrackingPipeline restored(train[0].node_features.cols(),
                            train[0].edge_features.cols(), cfg);
  restored.load(ss);
  const PipelineOutput a = original.reconstruct(val[0]);
  const PipelineOutput b = restored.reconstruct(val[0]);
  EXPECT_EQ(a.tracks.size(), b.tracks.size());
  EXPECT_EQ(a.metrics.matched, b.metrics.matched);
  EXPECT_EQ(a.edge_metrics.true_positives, b.edge_metrics.true_positives);
}

// ---------- full pipeline ----------

TEST(PipelineTest, FitAndReconstructEndToEnd) {
  auto train = tiny_events(3, 28);
  auto val = tiny_events(1, 29);
  PipelineConfig cfg;
  cfg.embedding.epochs = 3;
  cfg.filter.epochs = 3;
  cfg.gnn.hidden_dim = 16;
  cfg.gnn.num_layers = 2;
  cfg.gnn.mlp_hidden = 1;
  cfg.gnn_train.epochs = 2;
  cfg.gnn_train.batch_size = 64;
  cfg.gnn_train.shadow = {.depth = 2, .fanout = 3};
  cfg.use_learned_graphs = false;  // geometric graphs: the paper's regime
  TrackingPipeline pipeline(train[0].node_features.cols(),
                            train[0].edge_features.cols(), cfg);
  auto result = pipeline.fit(train, val);
  EXPECT_EQ(result.epochs.size(), 2u);
  PipelineOutput out = pipeline.reconstruct(val[0]);
  EXPECT_GT(out.metrics.reconstructable, 0u);
  EXPECT_GE(out.metrics.efficiency(), 0.0);
  EXPECT_GT(out.edge_metrics.total(), 0u);
}

TEST(PipelineTest, LearnedGraphModeRuns) {
  auto train = tiny_events(2, 30);
  auto val = tiny_events(1, 31);
  PipelineConfig cfg;
  cfg.embedding.epochs = 4;
  cfg.frnn.radius = 0.6f;
  cfg.filter.epochs = 2;
  cfg.gnn.hidden_dim = 8;
  cfg.gnn.num_layers = 1;
  cfg.gnn.mlp_hidden = 1;
  cfg.gnn_train.epochs = 1;
  cfg.gnn_train.batch_size = 64;
  cfg.gnn_train.shadow = {.depth = 2, .fanout = 3};
  cfg.use_learned_graphs = true;
  TrackingPipeline pipeline(train[0].node_features.cols(),
                            train[0].edge_features.cols(), cfg);
  auto result = pipeline.fit(train, val);
  EXPECT_EQ(result.epochs.size(), 1u);
  PipelineOutput out = pipeline.reconstruct(val[0]);
  EXPECT_GE(out.metrics.candidates, 0u);
}

}  // namespace
}  // namespace trkx
