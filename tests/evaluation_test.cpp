#include <gtest/gtest.h>

#include <cmath>

#include "pipeline/evaluation.hpp"

namespace trkx {
namespace {

ScoredEdges make_edges(std::initializer_list<std::pair<float, bool>> pairs) {
  ScoredEdges e;
  for (auto& [s, l] : pairs) e.add(s, l);
  return e;
}

// ---------- ROC AUC ----------

TEST(RocAucTest, PerfectSeparationIsOne) {
  auto e = make_edges({{0.9f, true}, {0.8f, true}, {0.2f, false},
                       {0.1f, false}});
  EXPECT_DOUBLE_EQ(roc_auc(e), 1.0);
}

TEST(RocAucTest, InvertedSeparationIsZero) {
  auto e = make_edges({{0.1f, true}, {0.9f, false}});
  EXPECT_DOUBLE_EQ(roc_auc(e), 0.0);
}

TEST(RocAucTest, RandomScoresNearHalf) {
  Rng rng(1);
  ScoredEdges e;
  for (int i = 0; i < 20000; ++i)
    e.add(rng.uniform(0.0f, 1.0f), rng.bernoulli(0.3));
  EXPECT_NEAR(roc_auc(e), 0.5, 0.02);
}

TEST(RocAucTest, TiesAveraged) {
  // Two positives and two negatives all with the same score → AUC 0.5.
  auto e = make_edges({{0.5f, true}, {0.5f, true}, {0.5f, false},
                       {0.5f, false}});
  EXPECT_DOUBLE_EQ(roc_auc(e), 0.5);
}

TEST(RocAucTest, DegenerateClassesGiveHalf) {
  EXPECT_DOUBLE_EQ(roc_auc(make_edges({{0.5f, true}})), 0.5);
  EXPECT_DOUBLE_EQ(roc_auc(make_edges({{0.5f, false}})), 0.5);
  EXPECT_DOUBLE_EQ(roc_auc(ScoredEdges{}), 0.5);
}

TEST(RocAucTest, KnownHandValue) {
  // scores: pos {0.8, 0.4}, neg {0.6, 0.2}. Pairs won: (0.8>0.6),(0.8>0.2),
  // (0.4<0.6 lost),(0.4>0.2) → 3/4.
  auto e = make_edges({{0.8f, true}, {0.4f, true}, {0.6f, false},
                       {0.2f, false}});
  EXPECT_DOUBLE_EQ(roc_auc(e), 0.75);
}

// ---------- threshold sweep ----------

TEST(ThresholdSweepTest, MatchesDirectComputation) {
  Rng rng(2);
  ScoredEdges e;
  for (int i = 0; i < 500; ++i)
    e.add(rng.uniform(0.0f, 1.0f), rng.bernoulli(0.4));
  const auto thresholds = uniform_thresholds(9);
  const auto sweep = threshold_sweep(e, thresholds);
  ASSERT_EQ(sweep.size(), 9u);
  for (const auto& point : sweep) {
    BinaryMetrics direct;
    for (std::size_t i = 0; i < e.size(); ++i)
      direct.add(e.scores[i] >= point.threshold, e.labels[i] != 0);
    EXPECT_EQ(point.metrics.true_positives, direct.true_positives);
    EXPECT_EQ(point.metrics.false_positives, direct.false_positives);
    EXPECT_EQ(point.metrics.true_negatives, direct.true_negatives);
    EXPECT_EQ(point.metrics.false_negatives, direct.false_negatives);
  }
}

TEST(ThresholdSweepTest, RecallMonotoneNonIncreasing) {
  Rng rng(3);
  ScoredEdges e;
  for (int i = 0; i < 300; ++i)
    e.add(rng.uniform(0.0f, 1.0f), rng.bernoulli(0.5));
  const auto sweep = threshold_sweep(e, uniform_thresholds(20));
  for (std::size_t i = 1; i < sweep.size(); ++i)
    EXPECT_LE(sweep[i].metrics.recall(), sweep[i - 1].metrics.recall());
}

TEST(ThresholdSweepTest, UniformThresholds) {
  const auto t = uniform_thresholds(4);
  ASSERT_EQ(t.size(), 4u);
  EXPECT_FLOAT_EQ(t[0], 0.2f);
  EXPECT_FLOAT_EQ(t[3], 0.8f);
}

TEST(ThresholdSweepTest, BestF1FindsSeparator) {
  // Perfectly separable at 0.5: best F1 threshold must sit in (0.4, 0.6].
  ScoredEdges e;
  Rng rng(4);
  for (int i = 0; i < 100; ++i) {
    e.add(rng.uniform(0.6f, 0.99f), true);
    e.add(rng.uniform(0.01f, 0.4f), false);
  }
  const auto best = best_f1_point(e, uniform_thresholds(19));
  EXPECT_GE(best.threshold, 0.4f);
  EXPECT_LE(best.threshold, 0.6f);
  EXPECT_DOUBLE_EQ(best.metrics.f1(), 1.0);
}

TEST(ThresholdSweepTest, ZeroThresholdsRejected) {
  EXPECT_THROW(uniform_thresholds(0), Error);
}

TEST(ThresholdSweepTest, UnsortedThresholdsRejected) {
  ScoredEdges e = make_edges({{0.5f, true}});
  EXPECT_THROW(threshold_sweep(e, {0.7f, 0.2f}), Error);
}

TEST(ThresholdSweepTest, EmptyEdgesGiveZeroCounts) {
  const auto sweep = threshold_sweep(ScoredEdges{}, uniform_thresholds(3));
  for (const auto& p : sweep) EXPECT_EQ(p.metrics.total(), 0u);
}

// ---------- model-level evaluation ----------

TEST(EvaluationTest, ScoreEventsPoolsAllEdges) {
  DetectorConfig cfg;
  cfg.mean_particles = 20.0;
  Rng rng(5);
  std::vector<Event> events;
  for (int i = 0; i < 2; ++i) {
    Rng er = rng.split();
    events.push_back(generate_event(cfg, er));
  }
  IgnnConfig gnn;
  gnn.node_input_dim = cfg.node_feature_dim;
  gnn.edge_input_dim = cfg.edge_feature_dim;
  gnn.hidden_dim = 8;
  gnn.num_layers = 1;
  gnn.mlp_hidden = 0;
  GnnModel model(gnn, 6);
  const ScoredEdges pooled = score_events(model, events);
  EXPECT_EQ(pooled.size(), events[0].num_edges() + events[1].num_edges());
  for (float s : pooled.scores) {
    EXPECT_GE(s, 0.0f);
    EXPECT_LE(s, 1.0f);
  }
}

TEST(EvaluationTest, TrainedModelAucAboveChance) {
  DetectorConfig cfg;
  cfg.mean_particles = 30.0;
  Rng rng(7);
  std::vector<Event> events;
  for (int i = 0; i < 2; ++i) {
    Rng er = rng.split();
    events.push_back(generate_event(cfg, er));
  }
  IgnnConfig gnn;
  gnn.node_input_dim = cfg.node_feature_dim;
  gnn.edge_input_dim = cfg.edge_feature_dim;
  gnn.hidden_dim = 16;
  gnn.num_layers = 2;
  gnn.mlp_hidden = 1;
  GnnModel model(gnn, 8);
  GnnTrainConfig tc;
  tc.epochs = 5;
  tc.batch_size = 64;
  tc.shadow = {.depth = 2, .fanout = 3};
  tc.evaluate_every_epoch = false;
  train_shadow(model, events, events, tc, SamplerKind::kMatrixBulk);
  EXPECT_GT(roc_auc(score_events(model, events)), 0.75);
}

TEST(EvaluationTest, EvaluateTrackingOracleVsUntrained) {
  DetectorConfig cfg;
  cfg.mean_particles = 25.0;
  Rng rng(9);
  std::vector<Event> events{generate_event(cfg, rng)};
  IgnnConfig gnn;
  gnn.node_input_dim = cfg.node_feature_dim;
  gnn.edge_input_dim = cfg.edge_feature_dim;
  gnn.hidden_dim = 8;
  gnn.num_layers = 1;
  gnn.mlp_hidden = 0;
  GnnModel model(gnn, 10);
  TrackBuildConfig track;
  const TrackingMetrics m = evaluate_tracking(model, events, track);
  EXPECT_GT(m.reconstructable, 0u);
  // Untrained model: efficiency is whatever it is, but the call must be
  // internally consistent.
  EXPECT_LE(m.matched, m.reconstructable);
  EXPECT_LE(m.fake_candidates, m.candidates);
}

}  // namespace
}  // namespace trkx
