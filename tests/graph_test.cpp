#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>
#include <tuple>

#include "graph/components.hpp"
#include "graph/generators.hpp"
#include "graph/graph.hpp"
#include "tensor/ops.hpp"

namespace trkx {
namespace {

// ---------- Graph ----------

TEST(GraphTest, BasicAccessors) {
  Graph g(4, {{0, 1}, {1, 2}, {2, 3}});
  EXPECT_EQ(g.num_vertices(), 4u);
  EXPECT_EQ(g.num_edges(), 3u);
  EXPECT_EQ(g.edge(1).src, 1u);
  EXPECT_EQ(g.src_indices(), (std::vector<std::uint32_t>{0, 1, 2}));
  EXPECT_EQ(g.dst_indices(), (std::vector<std::uint32_t>{1, 2, 3}));
}

TEST(GraphTest, OutOfRangeEdgeThrows) {
  EXPECT_THROW(Graph(2, {{0, 2}}), Error);
}

TEST(GraphTest, AdjacencyPattern) {
  Graph g(3, {{0, 1}, {2, 0}});
  Matrix a = g.adjacency().to_dense();
  EXPECT_EQ(a(0, 1), 1.0f);
  EXPECT_EQ(a(2, 0), 1.0f);
  EXPECT_EQ(a(1, 0), 0.0f);
}

TEST(GraphTest, SymmetricAdjacencyIsSymmetricAndBinary) {
  Rng rng(1);
  Graph g = erdos_renyi(15, 0.2, rng);
  CsrMatrix s = g.symmetric_adjacency();
  Matrix d = s.to_dense();
  for (std::size_t i = 0; i < 15; ++i) {
    EXPECT_EQ(d(i, i), 0.0f);  // no self loops
    for (std::size_t j = 0; j < 15; ++j) {
      EXPECT_EQ(d(i, j), d(j, i));
      EXPECT_TRUE(d(i, j) == 0.0f || d(i, j) == 1.0f);
    }
  }
}

TEST(GraphTest, FindEdge) {
  Graph g(3, {{0, 1}, {1, 2}});
  EXPECT_EQ(g.find_edge(0, 1), 0u);
  EXPECT_EQ(g.find_edge(1, 2), 1u);
  EXPECT_EQ(g.find_edge(1, 0), Graph::kNoEdge);
  EXPECT_EQ(g.find_edge(2, 2), Graph::kNoEdge);
}

TEST(GraphTest, Degrees) {
  Graph g(3, {{0, 1}, {0, 2}, {1, 2}});
  EXPECT_EQ(g.total_degrees(), (std::vector<std::uint32_t>{2, 2, 2}));
  EXPECT_DOUBLE_EQ(g.average_degree(), 2.0);
}

TEST(GraphTest, OutEdgesIndexSortedAndComplete) {
  Graph g(4, {{2, 1}, {0, 3}, {0, 1}, {2, 3}, {0, 2}});
  auto row0 = g.out_edges(0);
  ASSERT_EQ(row0.size(), 3u);
  // Sorted by destination.
  EXPECT_EQ(row0[0].dst, 1u);
  EXPECT_EQ(row0[1].dst, 2u);
  EXPECT_EQ(row0[2].dst, 3u);
  // Edge ids point back into edges().
  EXPECT_EQ(row0[0].edge, 2u);
  EXPECT_EQ(row0[1].edge, 4u);
  EXPECT_EQ(row0[2].edge, 1u);
  EXPECT_EQ(g.out_edges(1).size(), 0u);
  EXPECT_EQ(g.out_edges(3).size(), 0u);
  EXPECT_THROW(g.out_edges(4), Error);
}

TEST(GraphTest, FindEdgeParallelEdgesLowestWins) {
  Graph g(3, {{0, 1}, {0, 1}, {1, 2}});
  EXPECT_EQ(g.find_edge(0, 1), 0u);  // lowest index of the parallel pair
  EXPECT_EQ(g.find_edge(9, 0), Graph::kNoEdge);  // out-of-range is safe
}

// ---------- induced subgraph ----------

TEST(InducedSubgraphTest, KeepsOnlyInternalEdges) {
  Graph g(5, {{0, 1}, {1, 2}, {2, 3}, {3, 4}, {0, 4}});
  auto sub = induced_subgraph(g, {0, 1, 4});
  EXPECT_EQ(sub.graph.num_vertices(), 3u);
  ASSERT_EQ(sub.graph.num_edges(), 2u);  // (0,1) and (0,4)
  EXPECT_EQ(sub.edge_map, (std::vector<std::uint32_t>{0, 4}));
  // Remapped endpoints.
  EXPECT_EQ(sub.graph.edge(0).src, 0u);
  EXPECT_EQ(sub.graph.edge(0).dst, 1u);
  EXPECT_EQ(sub.graph.edge(1).src, 0u);
  EXPECT_EQ(sub.graph.edge(1).dst, 2u);
  EXPECT_EQ(sub.vertex_map, (std::vector<std::uint32_t>{0, 1, 4}));
}

TEST(InducedSubgraphTest, DuplicateVertexThrows) {
  Graph g(3, {});
  EXPECT_THROW(induced_subgraph(g, {1, 1}), Error);
}

TEST(InducedSubgraphTest, PreservesParentEdgeOrder) {
  Rng rng(2);
  Graph g = erdos_renyi(12, 0.3, rng);
  auto sub = induced_subgraph(g, {2, 3, 5, 7, 11});
  EXPECT_TRUE(std::is_sorted(sub.edge_map.begin(), sub.edge_map.end()));
  for (std::size_t e = 0; e < sub.graph.num_edges(); ++e) {
    const Edge& se = sub.graph.edge(e);
    const Edge& pe = g.edge(sub.edge_map[e]);
    EXPECT_EQ(sub.vertex_map[se.src], pe.src);
    EXPECT_EQ(sub.vertex_map[se.dst], pe.dst);
  }
}

TEST(DisjointUnionTest, OffsetsComponents) {
  Graph g(6, {{0, 1}, {2, 3}, {4, 5}});
  auto a = induced_subgraph(g, {0, 1});
  auto b = induced_subgraph(g, {4, 5});
  auto u = disjoint_union({a, b});
  EXPECT_EQ(u.graph.num_vertices(), 4u);
  ASSERT_EQ(u.graph.num_edges(), 2u);
  EXPECT_EQ(u.graph.edge(1).src, 2u);
  EXPECT_EQ(u.graph.edge(1).dst, 3u);
  EXPECT_EQ(u.vertex_map, (std::vector<std::uint32_t>{0, 1, 4, 5}));
  EXPECT_EQ(u.edge_map, (std::vector<std::uint32_t>{0, 2}));
}

// ---------- union-find ----------

TEST(UnionFindTest, BasicUnions) {
  UnionFind uf(5);
  EXPECT_EQ(uf.num_sets(), 5u);
  EXPECT_TRUE(uf.unite(0, 1));
  EXPECT_TRUE(uf.unite(1, 2));
  EXPECT_FALSE(uf.unite(0, 2));
  EXPECT_EQ(uf.num_sets(), 3u);
  EXPECT_EQ(uf.find(0), uf.find(2));
  EXPECT_NE(uf.find(0), uf.find(3));
}

TEST(UnionFindTest, OutOfRangeThrows) {
  UnionFind uf(3);
  EXPECT_THROW(uf.find(3), Error);
}

// ---------- connected components ----------

TEST(ComponentsTest, PathIsOneComponent) {
  Graph g = path_graph(5);
  Components c = connected_components(g);
  EXPECT_EQ(c.count, 1u);
}

TEST(ComponentsTest, MaskSplitsComponents) {
  Graph g = path_graph(5);
  // Drop the middle edge (1→2).
  Components c = connected_components(g, {1, 0, 1, 1});
  EXPECT_EQ(c.count, 2u);
  EXPECT_EQ(c.label[0], c.label[1]);
  EXPECT_EQ(c.label[2], c.label[4]);
  EXPECT_NE(c.label[1], c.label[2]);
}

TEST(ComponentsTest, IsolatedVerticesAreComponents) {
  Graph g(4, {{0, 1}});
  Components c = connected_components(g);
  EXPECT_EQ(c.count, 3u);
}

TEST(ComponentsTest, GroupsPartitionVertices) {
  Rng rng(3);
  Graph g = erdos_renyi(30, 0.05, rng);
  Components c = connected_components(g);
  auto groups = c.groups();
  std::size_t total = 0;
  for (const auto& grp : groups) total += grp.size();
  EXPECT_EQ(total, 30u);
  EXPECT_EQ(groups.size(), c.count);
}

class CcRandomGraphs : public ::testing::TestWithParam<std::tuple<int, double>> {
};

TEST_P(CcRandomGraphs, UnionFindMatchesBfs) {
  auto [n, p] = GetParam();
  Rng rng(static_cast<std::uint64_t>(n * 1000 + p * 100));
  Graph g = erdos_renyi(n, p, rng);
  Components a = connected_components(g);
  Components b = connected_components_bfs(g);
  ASSERT_EQ(a.count, b.count);
  // Labels may be permuted; check the partitions agree.
  std::map<std::uint32_t, std::uint32_t> relabel;
  for (std::size_t v = 0; v < g.num_vertices(); ++v) {
    auto it = relabel.find(a.label[v]);
    if (it == relabel.end())
      relabel[a.label[v]] = b.label[v];
    else
      EXPECT_EQ(it->second, b.label[v]);
  }
}

TEST_P(CcRandomGraphs, MaskedMatchesBfs) {
  auto [n, p] = GetParam();
  Rng rng(static_cast<std::uint64_t>(n * 77 + p * 10));
  Graph g = erdos_renyi(n, p, rng);
  std::vector<char> mask(g.num_edges());
  for (auto& m : mask) m = rng.bernoulli(0.5) ? 1 : 0;
  EXPECT_EQ(connected_components(g, mask).count,
            connected_components_bfs(g, mask).count);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, CcRandomGraphs,
    ::testing::Values(std::make_tuple(10, 0.05), std::make_tuple(30, 0.1),
                      std::make_tuple(50, 0.02), std::make_tuple(100, 0.01),
                      std::make_tuple(100, 0.2)));

TEST(ComponentsTest, CliquesCountedExactly) {
  Graph g = disjoint_cliques(4, 5);
  EXPECT_EQ(connected_components(g).count, 4u);
}

TEST(ComponentsTest, MaskSizeMismatchThrows) {
  Graph g = path_graph(3);
  EXPECT_THROW(connected_components(g, {1}), Error);
}

// ---------- generators ----------

TEST(GeneratorsTest, PathCycleGridShapes) {
  EXPECT_EQ(path_graph(6).num_edges(), 5u);
  EXPECT_EQ(cycle_graph(6).num_edges(), 6u);
  Graph grid = grid_graph(3, 4);
  EXPECT_EQ(grid.num_vertices(), 12u);
  EXPECT_EQ(grid.num_edges(), 3u * 3u + 2u * 4u);  // right + down edges
}

TEST(GeneratorsTest, RandomRegularOutDegree) {
  Rng rng(4);
  Graph g = random_regular_out(40, 5, rng);
  EXPECT_EQ(g.num_edges(), 200u);
  std::vector<int> out_deg(40, 0);
  for (const Edge& e : g.edges()) {
    EXPECT_NE(e.src, e.dst);
    ++out_deg[e.src];
  }
  for (int d : out_deg) EXPECT_EQ(d, 5);
  // No duplicate out-edges.
  std::set<std::pair<std::uint32_t, std::uint32_t>> seen;
  for (const Edge& e : g.edges())
    EXPECT_TRUE(seen.insert({e.src, e.dst}).second);
}

TEST(GeneratorsTest, ErdosRenyiDensity) {
  Rng rng(5);
  Graph g = erdos_renyi(100, 0.05, rng);
  const double expected = 100.0 * 99.0 * 0.05;
  EXPECT_NEAR(static_cast<double>(g.num_edges()), expected, expected * 0.25);
}

}  // namespace
}  // namespace trkx
