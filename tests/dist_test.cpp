#include <gtest/gtest.h>

#include <atomic>
#include <cmath>

#include "dist/communicator.hpp"
#include "dist/gradient_sync.hpp"
#include "tensor/ops.hpp"
#include "util/numerics.hpp"
#include "util/rng.hpp"

namespace trkx {
namespace {

// ---------- cost model ----------

TEST(CostModelTest, ZeroForSingleRank) {
  AllReduceCostModel m;
  EXPECT_EQ(m.seconds(1 << 20, 1), 0.0);
}

TEST(CostModelTest, LatencyDominatesSmallMessages) {
  AllReduceCostModel m;
  const double t_small = m.seconds(64, 4);
  // Latency term: 2·3·α = 90 µs; bandwidth term negligible.
  EXPECT_NEAR(t_small, 2 * 3 * m.alpha_seconds, 1e-8);
}

TEST(CostModelTest, BandwidthDominatesLargeMessages) {
  AllReduceCostModel m;
  const std::size_t bytes = 1ull << 30;
  const double t = m.seconds(bytes, 4);
  const double bw_term = 2.0 * 3.0 / 4.0 * bytes / m.beta_bytes_per_second;
  EXPECT_NEAR(t, bw_term, bw_term * 0.01);
}

TEST(CostModelTest, CoalescingWinsForManySmallTensors) {
  // 40 matrices of 64×64 floats: separate vs one fused call.
  AllReduceCostModel m;
  const std::size_t bytes_each = 64 * 64 * 4;
  const double separate = 40 * m.seconds(bytes_each, 4);
  const double fused = m.seconds(40 * bytes_each, 4);
  EXPECT_LT(fused, separate);
  EXPECT_GT(separate / fused, 2.0);
}

// ---------- runtime / all-reduce ----------

class AllReduceRanks : public ::testing::TestWithParam<int> {};

TEST_P(AllReduceRanks, SumsAcrossRanks) {
  const int p = GetParam();
  DistRuntime rt(p);
  std::vector<std::vector<float>> buffers(p);
  rt.run([&](Communicator& comm) {
    auto& buf = buffers[comm.rank()];
    buf.assign(100, 0.0f);
    for (std::size_t i = 0; i < buf.size(); ++i)
      buf[i] = static_cast<float>(comm.rank() + 1) * static_cast<float>(i);
    comm.all_reduce_sum(std::span<float>(buf.data(), buf.size()));
  });
  const float rank_sum = p * (p + 1) / 2.0f;
  for (int r = 0; r < p; ++r)
    for (std::size_t i = 0; i < 100; ++i)
      EXPECT_FLOAT_EQ(buffers[r][i], rank_sum * static_cast<float>(i));
}

TEST_P(AllReduceRanks, BitwiseIdenticalAcrossRanks) {
  const int p = GetParam();
  DistRuntime rt(p);
  std::vector<std::vector<float>> buffers(p);
  rt.run([&](Communicator& comm) {
    Rng rng(1000 + comm.rank());
    auto& buf = buffers[comm.rank()];
    buf.resize(257);  // deliberately not divisible by p
    for (float& x : buf) x = rng.uniform(-1.0f, 1.0f);
    comm.all_reduce_sum(std::span<float>(buf.data(), buf.size()));
  });
  for (int r = 1; r < p; ++r) EXPECT_EQ(buffers[r], buffers[0]);
}

TEST_P(AllReduceRanks, ScalarReduce) {
  const int p = GetParam();
  DistRuntime rt(p);
  std::vector<double> results(p);
  rt.run([&](Communicator& comm) {
    results[comm.rank()] = comm.all_reduce_scalar(comm.rank() + 1.0);
  });
  for (int r = 0; r < p; ++r)
    EXPECT_NEAR(results[r], p * (p + 1) / 2.0, 1e-6);
}

TEST_P(AllReduceRanks, Broadcast) {
  const int p = GetParam();
  DistRuntime rt(p);
  std::vector<std::vector<float>> buffers(p);
  rt.run([&](Communicator& comm) {
    auto& buf = buffers[comm.rank()];
    buf.assign(10, static_cast<float>(comm.rank()));
    comm.broadcast(std::span<float>(buf.data(), buf.size()), p - 1);
  });
  for (int r = 0; r < p; ++r)
    for (float x : buffers[r]) EXPECT_EQ(x, static_cast<float>(p - 1));
}

INSTANTIATE_TEST_SUITE_P(Ranks, AllReduceRanks, ::testing::Values(1, 2, 3, 4, 8));

TEST(DistRuntimeTest, StatsCountCallsAndBytes) {
  DistRuntime rt(2);
  rt.run([](Communicator& comm) {
    std::vector<float> buf(50, 1.0f);
    comm.all_reduce_sum(std::span<float>(buf.data(), buf.size()));
    comm.all_reduce_sum(std::span<float>(buf.data(), buf.size()));
  });
  const CommStats agg = rt.aggregate_stats();
  EXPECT_EQ(agg.all_reduce_calls, 2u);
  EXPECT_EQ(agg.all_reduce_bytes, 2u * 50u * sizeof(float));
  EXPECT_GT(agg.modeled_seconds, 0.0);
}

TEST(DistRuntimeTest, ExceptionPropagates) {
  DistRuntime rt(1);
  EXPECT_THROW(
      rt.run([](Communicator&) { throw Error("rank failure"); }), Error);
}

TEST(DistRuntimeTest, SequentialRunsReuseRuntime) {
  DistRuntime rt(2);
  for (int iter = 0; iter < 3; ++iter) {
    std::atomic<int> count{0};
    rt.run([&](Communicator& comm) {
      comm.barrier();
      ++count;
    });
    EXPECT_EQ(count.load(), 2);
  }
}

// ---------- gradient sync ----------

/// Fill a store with rank-dependent gradients.
void fill_grads(ParameterStore& store, int rank) {
  Rng rng(77 + rank);
  for (auto& p : store.params())
    p.grad = Matrix::random_normal(p.value.rows(), p.value.cols(), rng);
}

ParameterStore make_store() {
  ParameterStore s;
  s.create("a", 8, 8);
  s.create("b", 1, 8);
  s.create("c", 16, 4);
  return s;
}

class SyncStrategies : public ::testing::TestWithParam<SyncStrategy> {};

TEST_P(SyncStrategies, ProducesMeanGradient) {
  const int p = 4;
  DistRuntime rt(p);
  std::vector<ParameterStore> stores(p);
  for (auto& s : stores) {
    s.create("a", 8, 8);
    s.create("b", 1, 8);
    s.create("c", 16, 4);
  }
  rt.run([&](Communicator& comm) {
    fill_grads(stores[comm.rank()], comm.rank());
    synchronize_gradients(comm, stores[comm.rank()], GetParam());
  });
  // Expected mean gradient computed directly.
  std::vector<ParameterStore> refs(p);
  for (int r = 0; r < p; ++r) {
    refs[r].create("a", 8, 8);
    refs[r].create("b", 1, 8);
    refs[r].create("c", 16, 4);
    fill_grads(refs[r], r);
  }
  // Compare each parameter's synced grad against the rank-mean.
  for (std::size_t idx = 0; idx < 3; ++idx) {
    auto get = [&](ParameterStore& s, std::size_t i) -> Parameter& {
      auto it = s.params().begin();
      std::advance(it, i);
      return *it;
    };
    Matrix mean = get(refs[0], idx).grad;
    for (int r = 1; r < p; ++r) add_inplace(mean, get(refs[r], idx).grad);
    for (float& x : mean.flat()) x /= p;
    for (int r = 0; r < p; ++r)
      EXPECT_TRUE(allclose(get(stores[r], idx).grad, mean, 1e-5f, 1e-4f));
  }
}

TEST_P(SyncStrategies, SingleRankIsIdentityDividedByOne) {
  DistRuntime rt(1);
  ParameterStore store = make_store();
  fill_grads(store, 0);
  const auto before = store.flatten_grads();
  rt.run([&](Communicator& comm) {
    synchronize_gradients(comm, store, GetParam());
  });
  EXPECT_EQ(store.flatten_grads(), before);
}

INSTANTIATE_TEST_SUITE_P(Strategies, SyncStrategies,
                         ::testing::Values(SyncStrategy::kPerTensor,
                                           SyncStrategy::kCoalesced));

TEST(GradientSyncTest, CheckNumericsNamesPoisonedParameter) {
  const int p = 2;
  DistRuntime rt(p);
  std::vector<ParameterStore> stores(p);
  for (auto& s : stores) {
    s.create("w0", 2, 2);
    s.create("w1", 2, 2);
  }
  for (int r = 0; r < p; ++r)
    for (auto& param : stores[r].params())
      for (float& g : param.grad.flat()) g = 1.0f;
  // One rank contributes a NaN to w1; the all-reduce spreads it to every
  // replica, so the post-sync check fires on all ranks.
  auto it = stores[1].params().begin();
  std::advance(it, 1);
  it->grad.data()[0] = std::nanf("");
  set_check_numerics(true);
  try {
    rt.run([&](Communicator& comm) {
      synchronize_gradients(comm, stores[comm.rank()],
                            SyncStrategy::kPerTensor);
    });
    set_check_numerics(false);
    FAIL() << "expected trkx::Error naming the poisoned parameter";
  } catch (const Error& e) {
    set_check_numerics(false);
    EXPECT_NE(std::string(e.what()).find("parameter 'w1'"), std::string::npos)
        << e.what();
  }
}

TEST(GradientSyncTest, StrategiesAgreeWithEachOther) {
  const int p = 3;
  for (auto strategy : {SyncStrategy::kPerTensor, SyncStrategy::kCoalesced}) {
    DistRuntime rt(p);
    std::vector<ParameterStore> stores(p);
    for (auto& s : stores) {
      s.create("w", 6, 6);
      s.create("b", 1, 6);
    }
    rt.run([&](Communicator& comm) {
      fill_grads(stores[comm.rank()], comm.rank());
      synchronize_gradients(comm, stores[comm.rank()], strategy);
    });
    static std::vector<float> per_tensor_result;
    if (strategy == SyncStrategy::kPerTensor)
      per_tensor_result = stores[0].flatten_grads();
    else
      EXPECT_EQ(stores[0].flatten_grads(), per_tensor_result);
  }
}

TEST(GradientSyncTest, CoalescedUsesOneCall) {
  DistRuntime rt(2);
  std::vector<ParameterStore> stores(2);
  for (auto& s : stores) {
    s.create("a", 4, 4);
    s.create("b", 4, 4);
    s.create("c", 4, 4);
  }
  rt.run([&](Communicator& comm) {
    synchronize_gradients(comm, stores[comm.rank()], SyncStrategy::kCoalesced);
  });
  EXPECT_EQ(rt.aggregate_stats().all_reduce_calls, 1u);

  DistRuntime rt2(2);
  rt2.run([&](Communicator& comm) {
    synchronize_gradients(comm, stores[comm.rank()], SyncStrategy::kPerTensor);
  });
  EXPECT_EQ(rt2.aggregate_stats().all_reduce_calls, 3u);
}

TEST(GradientSyncTest, CoalescedModeledTimeIsLower) {
  // The paper's Section III-D claim, via the cost model: same bytes, fewer
  // α terms.
  DistRuntime rt_sep(4), rt_coal(4);
  std::vector<ParameterStore> s1(4), s2(4);
  for (int r = 0; r < 4; ++r) {
    for (int i = 0; i < 20; ++i) {
      s1[r].create("p" + std::to_string(i), 64, 64);
      s2[r].create("p" + std::to_string(i), 64, 64);
    }
  }
  rt_sep.run([&](Communicator& comm) {
    synchronize_gradients(comm, s1[comm.rank()], SyncStrategy::kPerTensor);
  });
  rt_coal.run([&](Communicator& comm) {
    synchronize_gradients(comm, s2[comm.rank()], SyncStrategy::kCoalesced);
  });
  EXPECT_LT(rt_coal.aggregate_stats().modeled_seconds,
            rt_sep.aggregate_stats().modeled_seconds);
}

}  // namespace
}  // namespace trkx
