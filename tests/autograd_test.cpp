#include <gtest/gtest.h>

#include <cmath>

#include "autograd/gradcheck.hpp"
#include "autograd/tape.hpp"
#include "util/numerics.hpp"
#include "util/rng.hpp"

namespace trkx {
namespace {

/// Helper: gradcheck a unary tape op through mean_square reduction.
template <typename OpFn>
GradcheckResult check_unary(OpFn op, std::size_t rows, std::size_t cols,
                            std::uint64_t seed) {
  Rng rng(seed);
  Matrix x = Matrix::random_normal(rows, cols, rng, 0.0f, 1.0f);
  return gradcheck(
      [&op](const std::vector<Matrix>& in, std::vector<Matrix>* grads) {
        Tape tape;
        Var x = tape.leaf(in[0], true);
        Var y = op(tape, x);
        Var loss = tape.mean_square(y);
        const double v = loss.value()(0, 0);
        if (grads) {
          tape.backward(loss);
          grads->push_back(x.grad());
        }
        return v;
      },
      {x});
}

TEST(TapeTest, LeafValueAndGradAccess) {
  Tape tape;
  Var x = tape.leaf(Matrix{{1, 2}}, true);
  EXPECT_EQ(x.value()(0, 1), 2.0f);
  EXPECT_TRUE(x.requires_grad());
  EXPECT_THROW(x.grad(), Error);  // before backward
}

TEST(TapeTest, BackwardOnNonScalarThrows) {
  Tape tape;
  Var x = tape.leaf(Matrix{{1, 2}}, true);
  EXPECT_THROW(tape.backward(x), Error);
}

TEST(TapeTest, BackwardTwiceThrows) {
  Tape tape;
  Var x = tape.leaf(Matrix{{1.0f}}, true);
  Var loss = tape.mean_square(x);
  tape.backward(loss);
  EXPECT_THROW(tape.backward(loss), Error);
}

TEST(TapeTest, NoGradForConstantBranch) {
  Tape tape;
  Var c = tape.leaf(Matrix{{1, 2}}, false);
  Var x = tape.leaf(Matrix{{3, 4}}, true);
  Var y = tape.add(c, x);
  Var loss = tape.mean_square(y);
  tape.backward(loss);
  EXPECT_FALSE(tape.has_grad(c));
  EXPECT_TRUE(tape.has_grad(x));
}

TEST(TapeTest, GradAccumulatesAcrossUses) {
  // loss = mean_square(x + x) = 4·mean(x²); dloss/dx = 8x/n.
  Tape tape;
  Matrix xv{{1.0f, 2.0f}};
  Var x = tape.leaf(xv, true);
  Var y = tape.add(x, x);
  Var loss = tape.mean_square(y);
  tape.backward(loss);
  EXPECT_NEAR(x.grad()(0, 0), 8.0f * 1.0f / 2.0f, 1e-5f);
  EXPECT_NEAR(x.grad()(0, 1), 8.0f * 2.0f / 2.0f, 1e-5f);
}

// ---------- gradchecks per op ----------

TEST(Gradcheck, Matmul) {
  Rng rng(1);
  Matrix a = Matrix::random_normal(3, 4, rng);
  Matrix b = Matrix::random_normal(4, 2, rng);
  auto result = gradcheck(
      [](const std::vector<Matrix>& in, std::vector<Matrix>* grads) {
        Tape tape;
        Var a = tape.leaf(in[0], true);
        Var b = tape.leaf(in[1], true);
        Var loss = tape.mean_square(tape.matmul(a, b));
        const double v = loss.value()(0, 0);
        if (grads) {
          tape.backward(loss);
          grads->push_back(a.grad());
          grads->push_back(b.grad());
        }
        return v;
      },
      {a, b});
  EXPECT_TRUE(result.passed) << "max abs err " << result.max_abs_error;
}

TEST(Gradcheck, LinearFused) {
  Rng rng(2);
  Matrix x = Matrix::random_normal(5, 3, rng);
  Matrix w = Matrix::random_normal(3, 4, rng);
  Matrix b = Matrix::random_normal(1, 4, rng);
  auto result = gradcheck(
      [](const std::vector<Matrix>& in, std::vector<Matrix>* grads) {
        Tape tape;
        Var x = tape.leaf(in[0], true);
        Var w = tape.leaf(in[1], true);
        Var b = tape.leaf(in[2], true);
        Var loss = tape.mean_square(tape.linear(x, w, b));
        const double v = loss.value()(0, 0);
        if (grads) {
          tape.backward(loss);
          grads->push_back(x.grad());
          grads->push_back(w.grad());
          grads->push_back(b.grad());
        }
        return v;
      },
      {x, w, b});
  EXPECT_TRUE(result.passed) << "max abs err " << result.max_abs_error;
}

TEST(Gradcheck, Relu) {
  // Shift away from 0 to avoid the kink.
  Rng rng(3);
  Matrix x = Matrix::random_normal(4, 4, rng, 0.0f, 1.0f);
  for (float& v : x.flat())
    if (std::fabs(v) < 0.05f) v += 0.2f;
  auto result = gradcheck(
      [](const std::vector<Matrix>& in, std::vector<Matrix>* grads) {
        Tape tape;
        Var x = tape.leaf(in[0], true);
        Var loss = tape.mean_square(tape.relu(x));
        const double v = loss.value()(0, 0);
        if (grads) {
          tape.backward(loss);
          grads->push_back(x.grad());
        }
        return v;
      },
      {x});
  EXPECT_TRUE(result.passed) << "max abs err " << result.max_abs_error;
}

TEST(Gradcheck, Tanh) {
  auto r = check_unary(
      [](Tape& t, Var x) { return t.tanh(x); }, 3, 5, 4);
  EXPECT_TRUE(r.passed) << r.max_abs_error;
}

TEST(Gradcheck, Sigmoid) {
  auto r = check_unary(
      [](Tape& t, Var x) { return t.sigmoid(x); }, 4, 3, 5);
  EXPECT_TRUE(r.passed) << r.max_abs_error;
}

TEST(Gradcheck, ScaleSubHadamard) {
  Rng rng(6);
  Matrix a = Matrix::random_normal(3, 3, rng);
  Matrix b = Matrix::random_normal(3, 3, rng);
  auto result = gradcheck(
      [](const std::vector<Matrix>& in, std::vector<Matrix>* grads) {
        Tape tape;
        Var a = tape.leaf(in[0], true);
        Var b = tape.leaf(in[1], true);
        Var y = tape.hadamard(tape.sub(a, b), tape.scale(a, 0.5f));
        Var loss = tape.mean_square(y);
        const double v = loss.value()(0, 0);
        if (grads) {
          tape.backward(loss);
          grads->push_back(a.grad());
          grads->push_back(b.grad());
        }
        return v;
      },
      {a, b});
  EXPECT_TRUE(result.passed) << result.max_abs_error;
}

TEST(Gradcheck, LayerNorm) {
  Rng rng(7);
  Matrix x = Matrix::random_normal(4, 6, rng, 0.0f, 2.0f);
  Matrix gamma = Matrix::random_normal(1, 6, rng, 1.0f, 0.2f);
  Matrix beta = Matrix::random_normal(1, 6, rng, 0.0f, 0.2f);
  auto result = gradcheck(
      [](const std::vector<Matrix>& in, std::vector<Matrix>* grads) {
        Tape tape;
        Var x = tape.leaf(in[0], true);
        Var g = tape.leaf(in[1], true);
        Var b = tape.leaf(in[2], true);
        Var loss = tape.mean_square(tape.layer_norm(x, g, b));
        const double v = loss.value()(0, 0);
        if (grads) {
          tape.backward(loss);
          grads->push_back(x.grad());
          grads->push_back(g.grad());
          grads->push_back(b.grad());
        }
        return v;
      },
      {x, gamma, beta});
  EXPECT_TRUE(result.passed) << result.max_abs_error;
}

TEST(Gradcheck, ConcatAndSlice) {
  Rng rng(8);
  Matrix a = Matrix::random_normal(3, 2, rng);
  Matrix b = Matrix::random_normal(3, 3, rng);
  auto result = gradcheck(
      [](const std::vector<Matrix>& in, std::vector<Matrix>* grads) {
        Tape tape;
        Var a = tape.leaf(in[0], true);
        Var b = tape.leaf(in[1], true);
        Var cat = tape.concat_cols({a, b, a});
        Var sl = tape.slice_cols(cat, 1, 5);
        Var loss = tape.mean_square(sl);
        const double v = loss.value()(0, 0);
        if (grads) {
          tape.backward(loss);
          grads->push_back(a.grad());
          grads->push_back(b.grad());
        }
        return v;
      },
      {a, b});
  EXPECT_TRUE(result.passed) << result.max_abs_error;
}

TEST(Gradcheck, ScaleRows) {
  Rng rng(13);
  Matrix rows = Matrix::random_normal(5, 4, rng);
  Matrix scalars = Matrix::random_normal(5, 1, rng);
  auto result = gradcheck(
      [](const std::vector<Matrix>& in, std::vector<Matrix>* grads) {
        Tape tape;
        Var r = tape.leaf(in[0], true);
        Var s = tape.leaf(in[1], true);
        Var loss = tape.mean_square(tape.scale_rows(r, s));
        const double v = loss.value()(0, 0);
        if (grads) {
          tape.backward(loss);
          grads->push_back(r.grad());
          grads->push_back(s.grad());
        }
        return v;
      },
      {rows, scalars});
  EXPECT_TRUE(result.passed) << result.max_abs_error;
}

TEST(TapeTest, ScaleRowsShapeMismatchThrows) {
  Tape tape;
  Var r = tape.leaf(Matrix(3, 2), false);
  Var s = tape.leaf(Matrix(2, 1), false);
  EXPECT_THROW(tape.scale_rows(r, s), Error);
}

TEST(Gradcheck, RowGatherAndSegmentSum) {
  Rng rng(9);
  Matrix x = Matrix::random_normal(5, 3, rng);
  const std::vector<std::uint32_t> idx{0, 4, 4, 2, 1, 0};
  auto result = gradcheck(
      [&idx](const std::vector<Matrix>& in, std::vector<Matrix>* grads) {
        Tape tape;
        Var x = tape.leaf(in[0], true);
        Var g = tape.row_gather(x, idx);
        Var s = tape.segment_sum(g, {1, 0, 1, 2, 2, 0}, 3);
        Var loss = tape.mean_square(s);
        const double v = loss.value()(0, 0);
        if (grads) {
          tape.backward(loss);
          grads->push_back(x.grad());
        }
        return v;
      },
      {x});
  EXPECT_TRUE(result.passed) << result.max_abs_error;
}

TEST(Gradcheck, BceWithLogits) {
  Rng rng(10);
  Matrix z = Matrix::random_normal(8, 1, rng);
  const std::vector<float> labels{1, 0, 1, 1, 0, 0, 1, 0};
  auto result = gradcheck(
      [&labels](const std::vector<Matrix>& in, std::vector<Matrix>* grads) {
        Tape tape;
        Var z = tape.leaf(in[0], true);
        Var loss = tape.bce_with_logits(z, labels);
        const double v = loss.value()(0, 0);
        if (grads) {
          tape.backward(loss);
          grads->push_back(z.grad());
        }
        return v;
      },
      {z});
  EXPECT_TRUE(result.passed) << result.max_abs_error;
}

TEST(Gradcheck, BceWithPosWeightAndSampleWeights) {
  Rng rng(11);
  Matrix z = Matrix::random_normal(6, 1, rng);
  const std::vector<float> labels{1, 0, 1, 0, 1, 0};
  const std::vector<float> weights{1.0f, 2.0f, 0.5f, 1.0f, 1.5f, 3.0f};
  auto result = gradcheck(
      [&](const std::vector<Matrix>& in, std::vector<Matrix>* grads) {
        Tape tape;
        Var z = tape.leaf(in[0], true);
        Var loss = tape.bce_with_logits(z, labels, weights, 4.0f);
        const double v = loss.value()(0, 0);
        if (grads) {
          tape.backward(loss);
          grads->push_back(z.grad());
        }
        return v;
      },
      {z});
  EXPECT_TRUE(result.passed) << result.max_abs_error;
}

TEST(Gradcheck, ContrastivePairLoss) {
  Rng rng(12);
  Matrix a = Matrix::random_normal(6, 4, rng);
  Matrix b = Matrix::random_normal(6, 4, rng);
  const std::vector<float> labels{1, 0, 1, 0, 0, 1};
  auto result = gradcheck(
      [&labels](const std::vector<Matrix>& in, std::vector<Matrix>* grads) {
        Tape tape;
        Var a = tape.leaf(in[0], true);
        Var b = tape.leaf(in[1], true);
        Var loss = tape.contrastive_pair_loss(a, b, labels, 1.5f);
        const double v = loss.value()(0, 0);
        if (grads) {
          tape.backward(loss);
          grads->push_back(a.grad());
          grads->push_back(b.grad());
        }
        return v;
      },
      {a, b});
  EXPECT_TRUE(result.passed) << result.max_abs_error;
}

// ---------- loss values against hand computations ----------

TEST(LossValues, BceMatchesManual) {
  Tape tape;
  Matrix z{{0.0f}, {2.0f}};
  Var zv = tape.leaf(z, true);
  const std::vector<float> labels{1.0f, 0.0f};
  Var loss = tape.bce_with_logits(zv, labels);
  // -log(σ(0)) = log 2; -log(1-σ(2)) = log(1+e²) - 0... manual:
  const double l0 = std::log(2.0);
  const double l1 = 2.0 + std::log1p(std::exp(-2.0));
  EXPECT_NEAR(loss.value()(0, 0), (l0 + l1) / 2.0, 1e-5);
}

TEST(LossValues, BceGradIsSigmoidMinusLabel) {
  Tape tape;
  Matrix z{{0.5f}, {-1.0f}};
  Var zv = tape.leaf(z, true);
  Var loss = tape.bce_with_logits(zv, {1.0f, 0.0f});
  tape.backward(loss);
  const float s0 = 1.0f / (1.0f + std::exp(-0.5f));
  const float s1 = 1.0f / (1.0f + std::exp(1.0f));
  EXPECT_NEAR(zv.grad()(0, 0), (s0 - 1.0f) / 2.0f, 1e-5f);
  EXPECT_NEAR(zv.grad()(1, 0), s1 / 2.0f, 1e-5f);
}

TEST(LossValues, ContrastiveZeroWhenPositivesCoincideAndNegativesFar) {
  Tape tape;
  Matrix a{{0, 0}, {5, 5}};
  Matrix b{{0, 0}, {-5, -5}};
  Var av = tape.leaf(a, true);
  Var bv = tape.leaf(b, true);
  Var loss = tape.contrastive_pair_loss(av, bv, {1.0f, 0.0f}, 1.0f);
  EXPECT_NEAR(loss.value()(0, 0), 0.0f, 1e-5f);
}

TEST(TapeTest, ActivationFloatsCounts) {
  Tape tape;
  Var x = tape.leaf(Matrix(10, 4), false);
  (void)tape.relu(x);
  EXPECT_EQ(tape.activation_floats(), 80u);
}

// ---------- randomized expression gradchecks ----------

/// Property sweep: random compositions of tape ops must all pass
/// gradcheck. Each parameter seeds a different random expression tree
/// built from the op set the IGNN uses.
class RandomExpressionGradcheck : public ::testing::TestWithParam<int> {};

TEST_P(RandomExpressionGradcheck, Passes) {
  const int seed = GetParam();
  Rng rng(static_cast<std::uint64_t>(seed) * 977 + 13);
  const std::size_t rows = 2 + rng.uniform_index(4);
  const std::size_t cols = 2 + rng.uniform_index(4);
  Matrix x = Matrix::random_normal(rows, cols, rng, 0.0f, 0.8f);
  Matrix w = Matrix::random_normal(cols, cols, rng, 0.0f, 0.5f);
  // Avoid ReLU kinks in the finite-difference sweep.
  for (float& v : x.flat())
    if (std::fabs(v) < 0.05f) v += 0.1f;

  const std::uint64_t recipe = rng.next_u64();
  auto build = [&](Tape& tape, Var xv, Var wv) {
    Var h = tape.matmul(xv, wv);
    std::uint64_t bits = recipe;
    for (int step = 0; step < 4; ++step) {
      switch (bits % 5) {
        case 0: h = tape.tanh(h); break;
        case 1: h = tape.sigmoid(h); break;
        case 2: h = tape.scale(tape.add(h, h), 0.5f); break;
        case 3: h = tape.hadamard(h, tape.sigmoid(h)); break;
        case 4: h = tape.concat_cols({h, h}); h = tape.slice_cols(h, 0, cols); break;
      }
      bits /= 5;
    }
    return tape.mean_square(h);
  };
  auto result = gradcheck(
      [&](const std::vector<Matrix>& in, std::vector<Matrix>* grads) {
        Tape tape;
        Var xv = tape.leaf(in[0], true);
        Var wv = tape.leaf(in[1], true);
        Var loss = build(tape, xv, wv);
        const double v = loss.value()(0, 0);
        if (grads) {
          tape.backward(loss);
          grads->push_back(xv.grad());
          grads->push_back(wv.grad());
        }
        return v;
      },
      {x, w});
  EXPECT_TRUE(result.passed)
      << "seed " << seed << " max abs err " << result.max_abs_error;
}

INSTANTIATE_TEST_SUITE_P(Sweep, RandomExpressionGradcheck,
                         ::testing::Range(0, 12));

TEST(TapeTest, SumOp) {
  Tape tape;
  Var x = tape.leaf(Matrix{{1, 2}, {3, 4}}, true);
  Var s = tape.sum(x);
  EXPECT_FLOAT_EQ(s.value()(0, 0), 10.0f);
  tape.backward(s);
  EXPECT_EQ(x.grad(), (Matrix{{1, 1}, {1, 1}}));
}

TEST(Gradcheck, Add) {
  Rng rng(131);
  Matrix a = Matrix::random_normal(3, 4, rng, 0.0f, 1.0f);
  Matrix b = Matrix::random_normal(3, 4, rng, 0.0f, 1.0f);
  auto result = gradcheck(
      [](const std::vector<Matrix>& in, std::vector<Matrix>* grads) {
        Tape tape;
        Var av = tape.leaf(in[0], true);
        Var bv = tape.leaf(in[1], true);
        Var loss = tape.mean_square(tape.add(av, bv));
        const double v = loss.value()(0, 0);
        if (grads) {
          tape.backward(loss);
          grads->push_back(av.grad());
          grads->push_back(bv.grad());
        }
        return v;
      },
      {a, b});
  EXPECT_TRUE(result.passed) << result.max_abs_error;
}

TEST(Gradcheck, Spmm) {
  Rng rng(137);
  // Fixed sparsity pattern including an empty row (vertex with no edges).
  const CsrMatrix a = CsrMatrix::from_triplets(
      4, 3, {{0, 0, 0.5f}, {0, 2, -1.5f}, {1, 1, 2.0f}, {3, 0, 1.0f}});
  Matrix x = Matrix::random_normal(3, 2, rng, 0.0f, 1.0f);
  auto result = gradcheck(
      [&a](const std::vector<Matrix>& in, std::vector<Matrix>* grads) {
        Tape tape;
        Var xv = tape.leaf(in[0], true);
        Var loss = tape.mean_square(tape.spmm(a, xv));
        const double v = loss.value()(0, 0);
        if (grads) {
          tape.backward(loss);
          grads->push_back(xv.grad());
        }
        return v;
      },
      {x});
  EXPECT_TRUE(result.passed) << result.max_abs_error;
}

TEST(Gradcheck, Sum) {
  Rng rng(139);
  Matrix x = Matrix::random_normal(3, 5, rng, 0.0f, 1.0f);
  auto result = gradcheck(
      [](const std::vector<Matrix>& in, std::vector<Matrix>* grads) {
        Tape tape;
        Var xv = tape.leaf(in[0], true);
        // Compose through tanh so the sum gradient is not trivially all-ones.
        Var loss = tape.sum(tape.tanh(xv));
        const double v = loss.value()(0, 0);
        if (grads) {
          tape.backward(loss);
          grads->push_back(xv.grad());
        }
        return v;
      },
      {x});
  EXPECT_TRUE(result.passed) << result.max_abs_error;
}

TEST(Gradcheck, MeanSquare) {
  Rng rng(149);
  Matrix x = Matrix::random_normal(4, 3, rng, 0.0f, 1.0f);
  auto result = gradcheck(
      [](const std::vector<Matrix>& in, std::vector<Matrix>* grads) {
        Tape tape;
        Var xv = tape.leaf(in[0], true);
        Var loss = tape.mean_square(xv);
        const double v = loss.value()(0, 0);
        if (grads) {
          tape.backward(loss);
          grads->push_back(xv.grad());
        }
        return v;
      },
      {x});
  EXPECT_TRUE(result.passed) << result.max_abs_error;
}

// ---------- TRKX_CHECK_NUMERICS ----------

/// RAII toggle so a throwing test body cannot leave the mode enabled for
/// later tests in the same process.
class ScopedCheckNumerics {
 public:
  explicit ScopedCheckNumerics(bool on) : prev_(check_numerics_enabled()) {
    set_check_numerics(on);
  }
  ~ScopedCheckNumerics() { set_check_numerics(prev_); }

 private:
  bool prev_;
};

TEST(CheckNumerics, OffByDefaultNanPassesSilently) {
  ASSERT_FALSE(check_numerics_enabled());
  Tape tape;
  Matrix bad{{1.0f, 2.0f}};
  bad(0, 1) = std::nanf("");
  Var x = tape.leaf(bad, true);
  Var loss = tape.mean_square(tape.tanh(x));
  tape.backward(loss);  // no throw: checks are opt-in
  EXPECT_TRUE(std::isnan(loss.value()(0, 0)));
}

TEST(CheckNumerics, ForwardNamesOffendingOp) {
  ScopedCheckNumerics guard(true);
  Tape tape;
  Matrix bad{{1.0f, 2.0f}};
  bad(0, 1) = std::nanf("");
  Var x = tape.leaf(bad, true);  // leaves are caller data, not checked
  try {
    tape.tanh(x);
    FAIL() << "expected trkx::Error from forward numerics check";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("forward output of 'tanh'"),
              std::string::npos)
        << e.what();
  }
}

TEST(CheckNumerics, BackwardNamesProducingAndReceivingOp) {
  Tape tape;
  Matrix bad{{0.5f, -0.25f}};
  bad(0, 1) = std::nanf("");
  // Record the graph with checks off so the NaN survives the forward pass
  // (tanh propagates it), then enable them for backward only.
  Var x = tape.leaf(bad, true);
  Var y = tape.tanh(x);
  Var loss = tape.mean_square(y);
  ScopedCheckNumerics guard(true);
  try {
    tape.backward(loss);
    FAIL() << "expected trkx::Error from backward numerics check";
  } catch (const Error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("non-finite gradient"), std::string::npos) << what;
    EXPECT_NE(what.find("backward of '"), std::string::npos) << what;
  }
}

TEST(CheckNumerics, CleanGraphPassesWithChecksOn) {
  ScopedCheckNumerics guard(true);
  Rng rng(151);
  Tape tape;
  Var x = tape.leaf(Matrix::random_normal(3, 3, rng, 0.0f, 1.0f), true);
  Var loss = tape.mean_square(tape.tanh(x));
  tape.backward(loss);
  EXPECT_TRUE(tape.has_grad(x));
}

}  // namespace
}  // namespace trkx
