#include <gtest/gtest.h>

#include <cmath>

#include "autograd/gradcheck.hpp"
#include "detector/generator.hpp"
#include "gnn/gcn.hpp"
#include "graph/generators.hpp"
#include "sparse/spgemm.hpp"
#include "nn/optimizer.hpp"
#include "util/stats.hpp"

namespace trkx {
namespace {

GcnConfig tiny_config() {
  GcnConfig cfg;
  cfg.node_input_dim = 3;
  cfg.edge_input_dim = 2;
  cfg.hidden_dim = 8;
  cfg.num_layers = 2;
  cfg.mlp_hidden = 1;
  return cfg;
}

// ---------- tape spmm op ----------

TEST(TapeSpmm, ForwardMatchesKernel) {
  Rng rng(1);
  Graph g = erdos_renyi(10, 0.3, rng);
  CsrMatrix a = g.symmetric_adjacency();
  Matrix x = Matrix::random_normal(10, 4, rng);
  Tape tape;
  Var xv = tape.leaf(x, false);
  Var y = tape.spmm(a, xv);
  EXPECT_TRUE(allclose(y.value(), spmm(a, x)));
}

TEST(TapeSpmm, Gradcheck) {
  Rng rng(2);
  Graph g = erdos_renyi(8, 0.3, rng);
  CsrMatrix a = g.symmetric_adjacency();
  Matrix x = Matrix::random_normal(8, 3, rng);
  auto result = gradcheck(
      [&a](const std::vector<Matrix>& in, std::vector<Matrix>* grads) {
        Tape tape;
        Var x = tape.leaf(in[0], true);
        Var loss = tape.mean_square(tape.spmm(a, x));
        const double v = loss.value()(0, 0);
        if (grads) {
          tape.backward(loss);
          grads->push_back(x.grad());
        }
        return v;
      },
      {x});
  EXPECT_TRUE(result.passed) << result.max_abs_error;
}

// ---------- normalized adjacency ----------

TEST(GcnTest, NormalizedAdjacencyIsSymmetricWithUnitSpectralBound) {
  Rng rng(3);
  Graph g = erdos_renyi(15, 0.2, rng);
  CsrMatrix a = GcnEdgeClassifier::normalized_adjacency(g);
  Matrix d = a.to_dense();
  for (std::size_t i = 0; i < 15; ++i) {
    EXPECT_GT(d(i, i), 0.0f);  // self loop present
    for (std::size_t j = 0; j < 15; ++j)
      EXPECT_NEAR(d(i, j), d(j, i), 1e-6f);
  }
  // Power iteration converges with eigenvalue ≤ 1 (Â is normalised).
  Matrix v = Matrix::ones(15, 1);
  double prev_norm = 0.0;
  for (int it = 0; it < 30; ++it) {
    v = spmm(a, v);
    double norm = 0.0;
    for (float x : v.flat()) norm += static_cast<double>(x) * x;
    prev_norm = std::sqrt(norm);
    for (float& x : v.flat()) x /= static_cast<float>(prev_norm);
  }
  EXPECT_LE(prev_norm, 1.0 + 1e-4);
}

TEST(GcnTest, NormalizedAdjacencyIsolatedVertexRow) {
  Graph g(3, {{0, 1}});
  CsrMatrix a = GcnEdgeClassifier::normalized_adjacency(g);
  // Vertex 2 only has its self loop with degree 1 → value 1.
  EXPECT_FLOAT_EQ(a.at(2, 2), 1.0f);
}

// ---------- model ----------

TEST(GcnTest, ForwardShape) {
  ParameterStore store;
  Rng rng(4);
  GcnEdgeClassifier gcn(store, tiny_config(), rng);
  Graph g = cycle_graph(7);
  Matrix x = Matrix::random_normal(7, 3, rng);
  Matrix y = Matrix::random_normal(7, 2, rng);
  const auto probs = gcn.predict(x, y, g);
  ASSERT_EQ(probs.size(), 7u);
  for (float p : probs) {
    EXPECT_GT(p, 0.0f);
    EXPECT_LT(p, 1.0f);
  }
}

TEST(GcnTest, CheaperPerParameterThanIgnnShapes) {
  // Structural check: the GCN's per-layer parameter block is a single h×h
  // matrix vs the IGNN's 6h→h / 4h→h MLPs.
  ParameterStore store;
  Rng rng(5);
  GcnConfig cfg = tiny_config();
  cfg.num_layers = 4;
  GcnEdgeClassifier gcn(store, cfg, rng);
  // encoder (2 linear ×2) + 4 layers ×2 + head (2 linear ×2).
  EXPECT_EQ(store.count(), 4u + 8u + 4u);
}

TEST(GcnTest, LearnsEdgeSignalAboveChance) {
  DetectorConfig dc;
  dc.mean_particles = 25.0;
  Rng rng(6);
  Event e = generate_event(dc, rng);
  GcnConfig cfg;
  cfg.node_input_dim = e.node_features.cols();
  cfg.edge_input_dim = e.edge_features.cols();
  cfg.hidden_dim = 16;
  cfg.num_layers = 2;
  ParameterStore store;
  Rng init(7);
  GcnEdgeClassifier gcn(store, cfg, init);
  Adam opt(store, AdamOptions{.lr = 3e-3f});
  const CsrMatrix norm_adj = GcnEdgeClassifier::normalized_adjacency(e.graph);
  std::vector<float> labels(e.edge_labels.begin(), e.edge_labels.end());
  const auto src = e.graph.src_indices();
  const auto dst = e.graph.dst_indices();

  double first = 0.0, last = 0.0;
  for (int iter = 0; iter < 60; ++iter) {
    TapeContext ctx;
    Var logits =
        gcn.forward(ctx, norm_adj, e.node_features, e.edge_features, src, dst);
    Var loss = ctx.tape().bce_with_logits(logits, labels);
    if (iter == 0) first = loss.value()(0, 0);
    last = loss.value()(0, 0);
    opt.zero_grad();
    ctx.backward(loss);
    opt.step();
  }
  EXPECT_LT(last, first * 0.8);

  // Above-chance classification.
  const auto probs = gcn.predict(e.node_features, e.edge_features, e.graph);
  BinaryMetrics m;
  for (std::size_t i = 0; i < probs.size(); ++i)
    m.add(probs[i] >= 0.5f, e.edge_labels[i] != 0);
  EXPECT_GT(m.f1(), 0.5);
}

TEST(GcnTest, InvalidConfigThrows) {
  ParameterStore store;
  Rng rng(8);
  GcnConfig cfg = tiny_config();
  cfg.node_input_dim = 0;
  EXPECT_THROW(GcnEdgeClassifier(store, cfg, rng), Error);
}

}  // namespace
}  // namespace trkx
