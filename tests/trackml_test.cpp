// Tests for TrackML-style CSV ingestion (io/trackml).

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <fstream>

#include "io/trackml.hpp"

namespace trkx {
namespace {

const char* kPrefix = "/tmp/trkx_trackml_test";

void write_file(const std::string& path, const std::string& content) {
  std::ofstream os(path);
  os << content;
}

void cleanup() {
  std::remove((std::string(kPrefix) + "-hits.csv").c_str());
  std::remove((std::string(kPrefix) + "-truth.csv").c_str());
}

/// Two 3-hit tracks moving outward plus one noise hit, hand-written in the
/// TrackML column layout (with extra columns and shuffled order to test
/// header-based matching).
void write_tiny_event() {
  write_file(std::string(kPrefix) + "-hits.csv",
             "hit_id,x,y,z,volume_id,layer_id,module_id\n"
             "1,32,0,5,8,2,101\n"
             "2,72,4,11,8,4,102\n"
             "3,116,10,18,8,6,103\n"
             "4,0,32,-7,8,2,104\n"
             "5,-4,72,-15,8,4,105\n"
             "6,-10,116,-24,8,6,106\n"
             "7,72,-40,300,8,4,107\n");  // noise
  write_file(std::string(kPrefix) + "-truth.csv",
             "hit_id,particle_id,tx,ty,tz,tpx,tpy,tpz,weight\n"
             "1,1001,32,0,5,1.2,0.1,0.2,1\n"
             "2,1001,72,4,11,1.2,0.1,0.2,1\n"
             "3,1001,116,10,18,1.2,0.1,0.2,1\n"
             "4,2002,0,32,-7,0.0,0.9,-0.3,1\n"
             "5,2002,-4,72,-15,0.0,0.9,-0.3,1\n"
             "6,2002,-10,116,-24,0.0,0.9,-0.3,1\n"
             "7,0,72,-40,300,0,0,0,1\n");
}

TEST(TrackmlTest, ReadsHitsTruthAndSurfaces) {
  write_tiny_event();
  TrackmlReadOptions opt;
  opt.build_graph = false;
  Event e = read_trackml_event(kPrefix, opt);
  ASSERT_EQ(e.num_hits(), 7u);
  ASSERT_EQ(e.particles.size(), 2u);
  // Surfaces compacted in encounter order: (8,2)->0, (8,4)->1, (8,6)->2.
  EXPECT_EQ(e.hits[0].layer, 0u);
  EXPECT_EQ(e.hits[1].layer, 1u);
  EXPECT_EQ(e.hits[2].layer, 2u);
  // Noise hit keeps kNoise.
  EXPECT_EQ(e.hits[6].particle, Hit::kNoise);
  // Kinematics from tpx/tpy/tpz.
  EXPECT_NEAR(e.particles[0].pt, std::hypot(1.2f, 0.1f), 1e-5f);
  EXPECT_NEAR(e.particles[1].phi0, std::atan2(0.9f, 0.0f), 1e-5f);
  // Hits ordered outward.
  for (const TruthParticle& p : e.particles)
    for (std::size_t i = 0; i + 1 < p.hits.size(); ++i)
      EXPECT_LT(e.hits[p.hits[i]].r(), e.hits[p.hits[i + 1]].r());
  cleanup();
}

TEST(TrackmlTest, BuildsGraphWithTruthLabels) {
  write_tiny_event();
  TrackmlReadOptions opt;
  opt.build_graph = true;
  opt.graph_config.window_dphi = 0.5;
  opt.graph_config.dphi_margin = -1.0;  // no curvature bound for toy data
  opt.graph_config.window_deta = 2.0;
  opt.graph_config.z0_cut = 200.0;
  Event e = read_trackml_event(kPrefix, opt);
  EXPECT_EQ(e.edge_labels.size(), e.num_edges());
  EXPECT_EQ(e.node_features.rows(), e.num_hits());
  // Both tracks' consecutive segments must be present and labelled true.
  std::size_t true_edges = 0;
  for (char l : e.edge_labels) true_edges += (l != 0);
  EXPECT_GE(true_edges, 4u);
  cleanup();
}

TEST(TrackmlTest, RoundTripThroughWriter) {
  DetectorConfig cfg;
  cfg.mean_particles = 20.0;
  Rng rng(1);
  Event original = generate_event(cfg, rng);
  write_trackml_event(kPrefix, original);

  TrackmlReadOptions opt;
  opt.graph_config = cfg;
  Event back = read_trackml_event(kPrefix, opt);
  ASSERT_EQ(back.num_hits(), original.num_hits());
  ASSERT_EQ(back.particles.size(), original.particles.size());
  // Hit coordinates survive (CSV text precision ~1e-4 relative).
  for (std::size_t i = 0; i < back.num_hits(); ++i) {
    EXPECT_NEAR(back.hits[i].x, original.hits[i].x,
                1e-3f * (1.0f + std::fabs(original.hits[i].x)));
    EXPECT_EQ(back.hits[i].particle == Hit::kNoise,
              original.hits[i].particle == Hit::kNoise);
  }
  // The rebuilt graph carries positive labels again.
  EXPECT_GT(back.positive_edge_fraction(), 0.0);
  cleanup();
}

TEST(TrackmlTest, MissingFileThrows) {
  EXPECT_THROW(read_trackml_event("/tmp/definitely_missing_trkx_trackml"),
               Error);
}

TEST(TrackmlTest, MissingColumnThrows) {
  write_file(std::string(kPrefix) + "-hits.csv", "hit_id,x,y\n1,1,2\n");
  write_file(std::string(kPrefix) + "-truth.csv",
             "hit_id,particle_id,tx,ty,tz,tpx,tpy,tpz,weight\n");
  EXPECT_THROW(read_trackml_event(kPrefix), Error);
  cleanup();
}

}  // namespace
}  // namespace trkx
