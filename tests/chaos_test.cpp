#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "detector/presets.hpp"
#include "io/event_io.hpp"
#include "obs/metrics.hpp"
#include "pipeline/checkpoint.hpp"
#include "pipeline/gnn_train.hpp"
#include "util/error.hpp"
#include "util/fault.hpp"

namespace trkx {
namespace {

namespace fs = std::filesystem;

/// Fault-injection chaos suite (ctest label: chaos). Every test arms the
/// global fault registry explicitly and disarms it on exit, so the rest
/// of the test binary — and every other binary — runs fault-free.
class ChaosTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    DatasetSpec spec = ex3_spec(0.05);
    dataset_ = std::make_unique<Dataset>(
        generate_dataset("ex3-chaos", spec.detector, 2, 1, 1, 777));
  }
  static void TearDownTestSuite() { dataset_.reset(); }
  static std::unique_ptr<Dataset> dataset_;

  void SetUp() override {
    fault::Registry::global().clear();
    dir_ = fs::temp_directory_path() /
           ("trkx_chaos_" + std::string(::testing::UnitTest::GetInstance()
                                            ->current_test_info()
                                            ->name()));
    fs::remove_all(dir_);
    fs::create_directories(dir_);
  }
  void TearDown() override {
    fault::Registry::global().clear();
    fs::remove_all(dir_);
  }

  static IgnnConfig gnn_config() {
    IgnnConfig cfg;
    cfg.node_input_dim = dataset_->train[0].node_features.cols();
    cfg.edge_input_dim = dataset_->train[0].edge_features.cols();
    cfg.hidden_dim = 16;
    cfg.num_layers = 2;
    cfg.mlp_hidden = 1;
    return cfg;
  }

  static GnnTrainConfig train_config(std::size_t epochs) {
    GnnTrainConfig cfg;
    cfg.epochs = epochs;
    cfg.batch_size = 128;
    cfg.shadow = {.depth = 2, .fanout = 4};
    cfg.bulk_k = 2;
    return cfg;
  }

  fs::path dir_;
};

std::unique_ptr<Dataset> ChaosTest::dataset_;

// ---------------------------------------------------------------------------
// Graceful degradation: I/O faults are retried, then quarantined, and the
// rest of the load continues.
// ---------------------------------------------------------------------------

TEST_F(ChaosTest, TransientIoErrorIsRetriedAndRecovers) {
  const std::string path = (dir_ / "events.bin").string();
  save_events(path, dataset_->train);
  // First read attempt fails, the retry succeeds.
  fault::Registry::global().arm_from_string("io.read_event:error:nth=1");
  IoRetryPolicy policy;
  policy.initial_backoff_ms = 0.1;
  const TolerantLoadResult result = load_events_tolerant(path, policy);
  EXPECT_EQ(result.events.size(), dataset_->train.size());
  EXPECT_EQ(result.quarantined, 0u);
  EXPECT_GE(result.retries, 1u);
}

TEST_F(ChaosTest, PersistentIoErrorQuarantinesEveryRecord) {
  const std::string path = (dir_ / "events.bin").string();
  save_events(path, dataset_->train);
  const auto before = metrics().counter("events.quarantined").value();
  fault::Registry::global().arm_from_string("io.read_event:error:every=1");
  IoRetryPolicy policy;
  policy.max_attempts = 2;
  policy.initial_backoff_ms = 0.1;
  const TolerantLoadResult result = load_events_tolerant(path, policy);
  EXPECT_TRUE(result.events.empty());
  EXPECT_EQ(result.quarantined, dataset_->train.size());
  EXPECT_EQ(result.quarantine_log.size(), result.quarantined);
  EXPECT_GE(metrics().counter("events.quarantined").value(),
            before + result.quarantined);
}

TEST_F(ChaosTest, IoDelayFaultOnlySlowsTheLoad) {
  const std::string path = (dir_ / "events.bin").string();
  save_events(path, dataset_->train);
  fault::Registry::global().arm_from_string("io.read_event:delay:every=1:ms=1");
  const TolerantLoadResult result = load_events_tolerant(path);
  EXPECT_EQ(result.events.size(), dataset_->train.size());
  EXPECT_EQ(result.quarantined, 0u);
  EXPECT_EQ(result.retries, 0u);
}

TEST_F(ChaosTest, CorruptRecordIsQuarantinedOthersSurvive) {
  const std::string path = (dir_ / "events.bin").string();
  save_events(path, dataset_->train);
  // Flip one byte near the end of the file: it lands inside the last
  // record's blob, so its CRC fails while earlier records stay intact.
  {
    std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
    f.seekg(0, std::ios::end);
    const std::streamoff size = f.tellg();
    f.seekp(size - 16);
    char byte = 0;
    f.seekg(size - 16);
    f.read(&byte, 1);
    byte = static_cast<char>(byte ^ 0x5a);
    f.seekp(size - 16);
    f.write(&byte, 1);
  }
  // The strict loader refuses the whole file...
  EXPECT_THROW(load_events(path), IoError);
  // ...the tolerant loader quarantines the bad record and keeps the rest.
  IoRetryPolicy policy;
  policy.max_attempts = 2;
  policy.initial_backoff_ms = 0.1;
  const TolerantLoadResult result = load_events_tolerant(path, policy);
  EXPECT_EQ(result.events.size(), dataset_->train.size() - 1);
  EXPECT_EQ(result.quarantined, 1u);
  ASSERT_EQ(result.quarantine_log.size(), 1u);
  // The quarantine message carries the file path for the operator.
  EXPECT_NE(result.quarantine_log[0].find("events.bin"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Checkpoint/resume: a killed run resumes bit-identically.
// ---------------------------------------------------------------------------

TEST_F(ChaosTest, CrashResumeReproducesTrajectoryBitIdentically) {
  GnnTrainConfig cfg = train_config(4);
  cfg.seed = 5;
  // Exercise the full set of checkpointed trainer state: LR schedule
  // (driven by the restored global_step), early stopping, and the
  // best-weights snapshot.
  cfg.scheduler = std::make_shared<StepDecayLr>(1e-3f, 0.5f, 8);
  cfg.keep_best_weights = true;
  cfg.early_stop_patience = 10;  // present but not expected to trigger

  // Reference: the uninterrupted run (checkpointing disabled — resuming
  // against it also proves checkpoint writes don't perturb training).
  GnnModel m_full(gnn_config(), 21);
  const TrainResult r_full = train_shadow(m_full, dataset_->train,
                                          dataset_->val, cfg,
                                          SamplerKind::kMatrixBulk);
  ASSERT_EQ(r_full.epochs.size(), 4u);

  // Interrupted run: the rank-kill fault fires at the top of epoch 2, so
  // checkpoints for epochs 0 and 1 are on disk.
  cfg.checkpoint_dir = (dir_ / "ckpt").string();
  fault::Registry::global().arm_from_string("train.epoch:rank-kill:nth=3");
  GnnModel m_int(gnn_config(), 21);
  EXPECT_THROW(train_shadow(m_int, dataset_->train, dataset_->val, cfg,
                            SamplerKind::kMatrixBulk),
               RankKilledError);
  fault::Registry::global().clear();
  EXPECT_EQ(fs::path(latest_checkpoint(cfg.checkpoint_dir))
                .filename()
                .string(),
            "ckpt-000002.ckpt");

  // Resume into a fresh model: epochs 2..3 run live, 0..1 come from the
  // checkpoint. Everything observable must match the uninterrupted run
  // exactly (same bits, not just approximately).
  cfg.resume = true;
  GnnModel m_res(gnn_config(), 21);
  const TrainResult r_res = train_shadow(m_res, dataset_->train,
                                         dataset_->val, cfg,
                                         SamplerKind::kMatrixBulk);
  ASSERT_EQ(r_res.epochs.size(), 4u);
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(r_res.epochs[i].train_loss, r_full.epochs[i].train_loss)
        << "epoch " << i;
    EXPECT_EQ(r_res.epochs[i].val.true_positives,
              r_full.epochs[i].val.true_positives) << "epoch " << i;
    EXPECT_EQ(r_res.epochs[i].val.false_positives,
              r_full.epochs[i].val.false_positives) << "epoch " << i;
    EXPECT_EQ(r_res.epochs[i].val.true_negatives,
              r_full.epochs[i].val.true_negatives) << "epoch " << i;
    EXPECT_EQ(r_res.epochs[i].val.false_negatives,
              r_full.epochs[i].val.false_negatives) << "epoch " << i;
  }
  EXPECT_EQ(r_res.selected_epoch, r_full.selected_epoch);
  EXPECT_EQ(m_res.store.flatten_values(), m_full.store.flatten_values());
}

TEST_F(ChaosTest, ResumeRejectsCheckpointFromDifferentConfig) {
  GnnTrainConfig cfg = train_config(2);
  cfg.checkpoint_dir = (dir_ / "ckpt").string();
  GnnModel model(gnn_config(), 22);
  train_shadow(model, dataset_->train, dataset_->val, cfg,
               SamplerKind::kMatrixBulk);
  ASSERT_NE(latest_checkpoint(cfg.checkpoint_dir), "");

  GnnTrainConfig other = cfg;
  other.resume = true;
  other.seed = cfg.seed + 1;  // different trajectory — must be refused
  GnnModel m2(gnn_config(), 22);
  EXPECT_THROW(train_shadow(m2, dataset_->train, dataset_->val, other,
                            SamplerKind::kMatrixBulk),
               CheckpointError);
}

// ---------------------------------------------------------------------------
// Distributed faults: a killed rank must not deadlock the survivors; they
// observe CommTimeoutError, write an emergency checkpoint, and unwind.
// ---------------------------------------------------------------------------

TEST_F(ChaosTest, DdpRankKillSurvivorsCheckpointThenResumeMatches) {
  GnnTrainConfig cfg = train_config(3);
  cfg.seed = 6;

  // Reference: uninterrupted 2-rank DDP run.
  GnnModel m_full(gnn_config(), 31);
  DistRuntime rt_full(2);
  const TrainResult r_full = train_shadow_ddp(m_full, dataset_->train,
                                              dataset_->val, cfg, rt_full,
                                              SamplerKind::kMatrixBulk);
  ASSERT_EQ(r_full.epochs.size(), 3u);

  // Kill rank 1 at the top of epoch 2. Rank 0 hits the aborted collective,
  // observes CommTimeoutError, writes the epoch-2 boundary checkpoint, and
  // the runtime rethrows the root cause.
  cfg.checkpoint_dir = (dir_ / "ckpt").string();
  fault::Registry::global().arm_from_string(
      "train.epoch:rank-kill:nth=3:rank=1");
  const auto emergencies_before =
      metrics().counter("checkpoint.emergency_writes").value();
  GnnModel m_int(gnn_config(), 31);
  DistRuntime rt_kill(2, {}, 5.0);  // comm timeout backstop: no deadlock
  EXPECT_THROW(train_shadow_ddp(m_int, dataset_->train, dataset_->val, cfg,
                                rt_kill, SamplerKind::kMatrixBulk),
               RankKilledError);
  fault::Registry::global().clear();
  EXPECT_GE(metrics().counter("checkpoint.emergency_writes").value(),
            emergencies_before + 1);
  EXPECT_EQ(fs::path(latest_checkpoint(cfg.checkpoint_dir))
                .filename()
                .string(),
            "ckpt-000002.ckpt");
  // The survivor recorded the typed timeout, not a hang or a crash.
  bool saw_timeout = false;
  try {
    if (rt_kill.rank_error(0)) std::rethrow_exception(rt_kill.rank_error(0));
  } catch (const CommTimeoutError&) {
    saw_timeout = true;
  }
  EXPECT_TRUE(saw_timeout);

  // Resume on a fresh runtime: the final trajectory matches the
  // uninterrupted DDP run bit for bit.
  cfg.resume = true;
  GnnModel m_res(gnn_config(), 31);
  DistRuntime rt_res(2);
  const TrainResult r_res = train_shadow_ddp(m_res, dataset_->train,
                                             dataset_->val, cfg, rt_res,
                                             SamplerKind::kMatrixBulk);
  ASSERT_EQ(r_res.epochs.size(), 3u);
  for (std::size_t i = 0; i < 3; ++i)
    EXPECT_EQ(r_res.epochs[i].train_loss, r_full.epochs[i].train_loss)
        << "epoch " << i;
  EXPECT_EQ(m_res.store.flatten_values(), m_full.store.flatten_values());
}

TEST_F(ChaosTest, CollectiveTimeoutPoisonsEveryRankWithoutDeadlock) {
  DistRuntime rt(2, {}, 0.15);
  const auto start = std::chrono::steady_clock::now();
  EXPECT_THROW(rt.run([&](Communicator& comm) {
                 if (comm.rank() == 1)
                   std::this_thread::sleep_for(
                       std::chrono::milliseconds(500));
                 comm.barrier();
               }),
               CommTimeoutError);
  const double waited =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  EXPECT_LT(waited, 5.0);  // unwound promptly, no deadlock
  // Every rank observed the typed timeout.
  for (int r = 0; r < 2; ++r) {
    bool timed_out = false;
    try {
      ASSERT_TRUE(rt.rank_error(r));
      std::rethrow_exception(rt.rank_error(r));
    } catch (const CommTimeoutError&) {
      timed_out = true;
    } catch (...) {
    }
    EXPECT_TRUE(timed_out) << "rank " << r;
  }

  // The runtime recovers for the next run(): the poisoned barrier is
  // replaced and collectives work again.
  std::atomic<int> ok{0};
  rt.run([&](Communicator& comm) {
    comm.barrier();
    ok.fetch_add(1);
  });
  EXPECT_EQ(ok.load(), 2);
}

TEST_F(ChaosTest, AllReduceFaultSiteKillsCollective) {
  // The dist.all_reduce site itself (armed via the same TRKX_FAULTS
  // grammar the CI chaos leg uses) aborts the peer cleanly.
  fault::Registry::global().arm_from_string(
      "dist.all_reduce:rank-kill:nth=2:rank=1");
  DistRuntime rt(2, {}, 5.0);
  std::vector<std::vector<float>> bufs(2, std::vector<float>(8, 1.0f));
  EXPECT_THROW(rt.run([&](Communicator& comm) {
                 auto& buf = bufs[static_cast<std::size_t>(comm.rank())];
                 for (int i = 0; i < 4; ++i)
                   comm.all_reduce_sum(
                       std::span<float>(buf.data(), buf.size()));
               }),
               RankKilledError);
  // Rank 0 survived with the typed timeout, not a deadlock.
  bool saw_timeout = false;
  try {
    if (rt.rank_error(0)) std::rethrow_exception(rt.rank_error(0));
  } catch (const CommTimeoutError&) {
    saw_timeout = true;
  } catch (...) {
  }
  EXPECT_TRUE(saw_timeout);
}

TEST_F(ChaosTest, RankDivergentCollectivePoisonsSurvivors) {
  // Rank divergence at a collective: an injected error makes rank 1
  // throw out of its dist.all_reduce call while rank 0 enters the
  // reduce — the exact hazard the trkx-collective-divergent analyzer
  // rule flags statically. The TimeoutBarrier must poison the survivor
  // (typed CommTimeoutError) instead of leaving it parked in the
  // barrier. Armed through TRKX_FAULTS + arm_from_env(), the operator
  // path the CI chaos leg exercises end-to-end.
  ASSERT_EQ(::setenv("TRKX_FAULTS", "dist.all_reduce:error:nth=1:rank=1", 1),
            0);
  fault::Registry::global().arm_from_env();
  ::unsetenv("TRKX_FAULTS");
  ASSERT_EQ(fault::Registry::global().armed_count(), 1u);

  DistRuntime rt(2, {}, 5.0);
  std::vector<std::vector<float>> bufs(2, std::vector<float>(8, 1.0f));
  // run() rethrows the root cause (the diverged rank), never the
  // survivors' secondary timeouts.
  EXPECT_THROW(rt.run([&](Communicator& comm) {
                 auto& buf = bufs[static_cast<std::size_t>(comm.rank())];
                 comm.all_reduce_sum(
                     std::span<float>(buf.data(), buf.size()));
               }),
               FaultInjectedError);
  EXPECT_EQ(fault::Registry::global().injected("dist.all_reduce"), 1u);

  // Rank 1 carries the injected root cause; surviving rank 0 was
  // poisoned with the typed collective timeout.
  bool rank1_injected = false;
  try {
    ASSERT_TRUE(rt.rank_error(1));
    std::rethrow_exception(rt.rank_error(1));
  } catch (const FaultInjectedError&) {
    rank1_injected = true;
  } catch (...) {
  }
  EXPECT_TRUE(rank1_injected);
  bool rank0_timed_out = false;
  try {
    ASSERT_TRUE(rt.rank_error(0));
    std::rethrow_exception(rt.rank_error(0));
  } catch (const CommTimeoutError&) {
    rank0_timed_out = true;
  } catch (...) {
  }
  EXPECT_TRUE(rank0_timed_out);

  // Disarmed, the same runtime recovers: the poisoned barrier is
  // replaced and the collective completes on both ranks.
  fault::Registry::global().clear();
  std::atomic<int> ok{0};
  rt.run([&](Communicator& comm) {
    auto& buf = bufs[static_cast<std::size_t>(comm.rank())];
    std::fill(buf.begin(), buf.end(), 1.0f);
    comm.all_reduce_sum(std::span<float>(buf.data(), buf.size()));
    if (buf[0] == 2.0f) ok.fetch_add(1);
  });
  EXPECT_EQ(ok.load(), 2);
}

}  // namespace
}  // namespace trkx
