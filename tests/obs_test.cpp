// Tests for the observability layer (src/obs): metrics registry, span
// tracer, PhaseSpan bridge, and the JSON exports.

#include <gtest/gtest.h>

#include <omp.h>

#include <sstream>
#include <thread>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/phase.hpp"
#include "obs/trace.hpp"
#include "util/thread_id.hpp"
#include "util/timer.hpp"

namespace trkx {
namespace {

// ---------- thread ids ----------

TEST(ThreadId, DenseAndStable) {
  const int mine = this_thread_id();
  EXPECT_EQ(this_thread_id(), mine);  // stable within a thread
  int other = -1;
  std::thread t([&] { other = this_thread_id(); });
  t.join();
  EXPECT_NE(other, mine);
  EXPECT_GE(other, 0);
}

// ---------- counters ----------

TEST(Metrics, CounterAccumulates) {
  Counter& c = metrics().counter("test.obs.counter_accumulates");
  c.reset();
  c.add();
  c.add(41);
  EXPECT_EQ(c.value(), 42u);
  c.reset();
  EXPECT_EQ(c.value(), 0u);
}

TEST(Metrics, CounterSameNameSameObject) {
  Counter& a = metrics().counter("test.obs.counter_identity");
  Counter& b = metrics().counter("test.obs.counter_identity");
  EXPECT_EQ(&a, &b);
}

TEST(Metrics, CounterConcurrentAddsFromOpenMP) {
  Counter& c = metrics().counter("test.obs.counter_omp");
  c.reset();
  const int n = 100000;
#pragma omp parallel for
  for (int i = 0; i < n; ++i) c.add();
  EXPECT_EQ(c.value(), static_cast<std::uint64_t>(n));
}

TEST(Metrics, CounterConcurrentAddsFromThreads) {
  Counter& c = metrics().counter("test.obs.counter_threads");
  c.reset();
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t)
    threads.emplace_back([&c] {
      for (int i = 0; i < 10000; ++i) c.add(2);
    });
  for (auto& t : threads) t.join();
  EXPECT_EQ(c.value(), 8u * 10000u * 2u);
}

// ---------- gauges ----------

TEST(Metrics, GaugeLastWriteWins) {
  Gauge& g = metrics().gauge("test.obs.gauge");
  g.set(1.5);
  g.set(-3.25);
  EXPECT_DOUBLE_EQ(g.value(), -3.25);
}

// ---------- histograms ----------

TEST(Metrics, HistogramStats) {
  Histogram& h =
      metrics().histogram("test.obs.hist_stats", {1.0, 2.0, 4.0, 8.0});
  h.reset();
  for (double v : {0.5, 1.5, 1.5, 3.0, 7.0, 20.0}) h.observe(v);
  const Histogram::Snapshot s = h.snapshot();
  EXPECT_EQ(s.count, 6u);
  EXPECT_DOUBLE_EQ(s.sum, 33.5);
  EXPECT_DOUBLE_EQ(s.min, 0.5);
  EXPECT_DOUBLE_EQ(s.max, 20.0);
  EXPECT_NEAR(s.mean(), 33.5 / 6.0, 1e-12);
  // bucket layout: (-inf,1] (1,2] (2,4] (4,8] (8,inf)
  ASSERT_EQ(s.buckets.size(), 5u);
  EXPECT_EQ(s.buckets[0], 1u);
  EXPECT_EQ(s.buckets[1], 2u);
  EXPECT_EQ(s.buckets[2], 1u);
  EXPECT_EQ(s.buckets[3], 1u);
  EXPECT_EQ(s.buckets[4], 1u);
}

TEST(Metrics, HistogramPercentilesWithinRange) {
  Histogram& h = metrics().histogram("test.obs.hist_pct");
  h.reset();
  for (int i = 1; i <= 1000; ++i) h.observe(i * 1e-3);  // 1ms .. 1s
  const Histogram::Snapshot s = h.snapshot();
  const double p50 = s.percentile(50);
  const double p99 = s.percentile(99);
  EXPECT_GE(p50, s.min);
  EXPECT_LE(p50, s.max);
  EXPECT_LT(p50, p99 + 1e-12);
  // Bucket interpolation is coarse (log-spaced edges), so allow slack.
  EXPECT_NEAR(p50, 0.5, 0.3);
  EXPECT_GT(p99, 0.5);
}

TEST(Metrics, HistogramEmptySnapshot) {
  Histogram& h = metrics().histogram("test.obs.hist_empty", {1.0});
  h.reset();
  const Histogram::Snapshot s = h.snapshot();
  EXPECT_EQ(s.count, 0u);
  EXPECT_DOUBLE_EQ(s.min, 0.0);
  EXPECT_DOUBLE_EQ(s.max, 0.0);
  EXPECT_DOUBLE_EQ(s.percentile(50), 0.0);
}

TEST(Metrics, HistogramConcurrentObserve) {
  Histogram& h = metrics().histogram("test.obs.hist_omp", {0.5});
  h.reset();
  const int n = 50000;
#pragma omp parallel for
  for (int i = 0; i < n; ++i) h.observe(i % 2 == 0 ? 0.25 : 0.75);
  const Histogram::Snapshot s = h.snapshot();
  EXPECT_EQ(s.count, static_cast<std::uint64_t>(n));
  EXPECT_EQ(s.buckets[0], static_cast<std::uint64_t>(n / 2));
  EXPECT_EQ(s.buckets[1], static_cast<std::uint64_t>(n / 2));
  EXPECT_DOUBLE_EQ(s.min, 0.25);
  EXPECT_DOUBLE_EQ(s.max, 0.75);
}

TEST(Metrics, ExponentialBoundsShape) {
  const auto b = Histogram::exponential_bounds(1e-3, 1.0, 1);
  ASSERT_EQ(b.size(), 4u);
  EXPECT_NEAR(b[0], 1e-3, 1e-12);
  EXPECT_NEAR(b[3], 1.0, 1e-9);
  EXPECT_TRUE(std::is_sorted(b.begin(), b.end()));
}

// ---------- registry export ----------

TEST(Metrics, WriteJsonContainsEntries) {
  metrics().counter("test.obs.json_counter").add(7);
  metrics().gauge("test.obs.json_gauge").set(2.5);
  metrics().histogram("test.obs.json_hist").observe(0.01);
  std::ostringstream os;
  metrics().write_json(os);
  const std::string s = os.str();
  EXPECT_NE(s.find("\"test.obs.json_counter\""), std::string::npos);
  EXPECT_NE(s.find("\"test.obs.json_gauge\": 2.5"), std::string::npos);
  EXPECT_NE(s.find("\"test.obs.json_hist\""), std::string::npos);
  EXPECT_NE(s.find("\"counters\""), std::string::npos);
  EXPECT_NE(s.find("\"histograms\""), std::string::npos);
}

TEST(Metrics, WriteCsvHasHeaderAndRows) {
  metrics().counter("test.obs.csv_counter").add(1);
  std::ostringstream os;
  metrics().write_csv(os);
  const std::string s = os.str();
  EXPECT_NE(s.find("kind,name,count,value"), std::string::npos);
  EXPECT_NE(s.find("counter,test.obs.csv_counter"), std::string::npos);
}

// ---------- tracing ----------

TEST(Trace, DisabledByDefaultRecordsNothing) {
  TraceSession session;
  EXPECT_FALSE(session.enabled());
  EXPECT_EQ(session.event_count(), 0u);
}

TEST(Trace, GlobalSpansAcrossThreads) {
  TraceSession& s = TraceSession::global();
  s.clear();
  s.start();
  {
    TRKX_TRACE_SPAN("test.main_span");
  }
  std::vector<std::thread> threads;
  for (int t = 0; t < 2; ++t)
    threads.emplace_back([] { TRKX_TRACE_SPAN("test.worker_span"); });
  for (auto& t : threads) t.join();
  s.stop();
  EXPECT_GE(s.event_count(), 3u);

  std::ostringstream os;
  s.write_json(os);
  const std::string json = os.str();
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"test.main_span\""), std::string::npos);
  EXPECT_NE(json.find("\"test.worker_span\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  s.clear();
  EXPECT_EQ(s.event_count(), 0u);
}

TEST(Trace, SpansDroppedWhileStopped) {
  TraceSession& s = TraceSession::global();
  s.clear();
  ASSERT_FALSE(s.enabled());
  {
    TRKX_TRACE_SPAN("test.dropped");
  }
  EXPECT_EQ(s.event_count(), 0u);
}

// ---------- PhaseSpan bridge ----------

TEST(PhaseSpanTest, FeedsTimersAndHistogram) {
  Histogram& h = metrics().histogram("phase.unit_phase_s");
  h.reset();
  PhaseTimers timers;
  {
    PhaseSpan span(timers, "unit_phase");
  }
  EXPECT_GT(timers.get("unit_phase"), 0.0);
  EXPECT_EQ(h.snapshot().count, 1u);
}

}  // namespace
}  // namespace trkx
