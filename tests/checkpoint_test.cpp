#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "nn/optimizer.hpp"
#include "nn/parameter.hpp"
#include "nn/scheduler.hpp"
#include "pipeline/checkpoint.hpp"
#include "pipeline/gnn_train.hpp"
#include "util/error.hpp"

namespace trkx {
namespace {

namespace fs = std::filesystem;

/// A tiny two-parameter store with deterministic, non-trivial values.
ParameterStore make_store() {
  ParameterStore store;
  Parameter& w = store.create("w", 3, 4);
  Parameter& b = store.create("b", 1, 4);
  for (std::size_t i = 0; i < w.size(); ++i)
    w.value.data()[i] = 0.25f * static_cast<float>(i) - 1.0f;
  for (std::size_t i = 0; i < b.size(); ++i)
    b.value.data()[i] = 0.5f - 0.125f * static_cast<float>(i);
  return store;
}

/// Deterministic pseudo-gradients, different per step.
void fill_grads(ParameterStore& store, int step) {
  for (Parameter& p : store.params())
    for (std::size_t i = 0; i < p.size(); ++i)
      p.grad.data()[i] =
          0.01f * static_cast<float>(i + 1) * static_cast<float>(step + 1);
}

class CheckpointTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("trkx_ckpt_test_" +
            std::string(::testing::UnitTest::GetInstance()
                            ->current_test_info()
                            ->name()));
    fs::remove_all(dir_);
    fs::create_directories(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }
  fs::path dir_;
};

TEST_F(CheckpointTest, AdamStateRoundTripIsBitExact) {
  ParameterStore a = make_store();
  Adam opt_a(a, AdamOptions{.lr = 1e-2f});
  for (int s = 0; s < 3; ++s) {
    fill_grads(a, s);
    opt_a.step();
  }
  std::stringstream ss;
  opt_a.save_state(ss);

  ParameterStore b = make_store();
  b.copy_values_from(a);  // same weights before resuming
  Adam opt_b(b, AdamOptions{.lr = 1e-2f});
  opt_b.load_state(ss);
  EXPECT_EQ(opt_b.steps_taken(), opt_a.steps_taken());

  // Identical moments + identical gradients must produce bitwise identical
  // parameter updates from here on.
  for (int s = 3; s < 6; ++s) {
    fill_grads(a, s);
    opt_a.step();
    fill_grads(b, s);
    opt_b.step();
  }
  EXPECT_EQ(a.flatten_values(), b.flatten_values());
}

TEST_F(CheckpointTest, AdamStateRejectsBadMagicAndVersion) {
  ParameterStore a = make_store();
  Adam opt(a, AdamOptions{});
  fill_grads(a, 0);
  opt.step();
  std::stringstream ss;
  opt.save_state(ss);
  std::string bytes = ss.str();

  // Flip the magic: not an Adam state at all.
  std::string bad_magic = bytes;
  bad_magic[0] = 'X';
  {
    ParameterStore s2 = make_store();
    Adam o2(s2, AdamOptions{});
    std::istringstream is(bad_magic);
    EXPECT_THROW(o2.load_state(is), CheckpointError);
  }
  // Bump the version field (bytes 4..8): future-format rejection.
  std::string bad_version = bytes;
  bad_version[4] = static_cast<char>(99);
  {
    ParameterStore s2 = make_store();
    Adam o2(s2, AdamOptions{});
    std::istringstream is(bad_version);
    EXPECT_THROW(o2.load_state(is), CheckpointError);
  }
}

TrainCheckpointState sample_state() {
  TrainCheckpointState st;
  st.fingerprint = 0xabcdef;
  st.next_epoch = 7;
  st.global_step = 123;
  st.rng_state = 0x123456789abcull;
  st.rng_have_spare = true;
  st.rng_spare = -0.75;
  st.early_best = 0.625;
  st.early_bad_epochs = 2;
  st.best_f1 = 0.5;
  st.best_epoch = 4;
  st.best_weights = {1.0f, -2.0f, 3.5f};
  st.epochs.push_back({0.9, 10, 2, 30, 4, 1.5});
  st.epochs.push_back({0.7, 12, 1, 31, 3, 1.25});
  return st;
}

void expect_state_eq(const TrainCheckpointState& a,
                     const TrainCheckpointState& b) {
  EXPECT_EQ(a.fingerprint, b.fingerprint);
  EXPECT_EQ(a.next_epoch, b.next_epoch);
  EXPECT_EQ(a.global_step, b.global_step);
  EXPECT_EQ(a.rng_state, b.rng_state);
  EXPECT_EQ(a.rng_have_spare, b.rng_have_spare);
  EXPECT_EQ(a.rng_spare, b.rng_spare);
  EXPECT_EQ(a.early_best, b.early_best);
  EXPECT_EQ(a.early_bad_epochs, b.early_bad_epochs);
  EXPECT_EQ(a.best_f1, b.best_f1);
  EXPECT_EQ(a.best_epoch, b.best_epoch);
  EXPECT_EQ(a.best_weights, b.best_weights);
  ASSERT_EQ(a.epochs.size(), b.epochs.size());
  for (std::size_t i = 0; i < a.epochs.size(); ++i) {
    EXPECT_EQ(a.epochs[i].train_loss, b.epochs[i].train_loss);
    EXPECT_EQ(a.epochs[i].tp, b.epochs[i].tp);
    EXPECT_EQ(a.epochs[i].fp, b.epochs[i].fp);
    EXPECT_EQ(a.epochs[i].tn, b.epochs[i].tn);
    EXPECT_EQ(a.epochs[i].fn, b.epochs[i].fn);
    EXPECT_EQ(a.epochs[i].wall_seconds, b.epochs[i].wall_seconds);
  }
}

TEST_F(CheckpointTest, SerializeDeserializeRoundTrip) {
  ParameterStore store = make_store();
  Adam opt(store, AdamOptions{});
  fill_grads(store, 0);
  opt.step();
  const std::vector<float> values = store.flatten_values();
  const std::string bytes =
      serialize_checkpoint(sample_state(), store, opt);

  ParameterStore restored = make_store();
  Adam ropt(restored, AdamOptions{});
  const TrainCheckpointState st =
      deserialize_checkpoint(bytes, restored, ropt);
  expect_state_eq(st, sample_state());
  EXPECT_EQ(restored.flatten_values(), values);
  EXPECT_EQ(ropt.steps_taken(), opt.steps_taken());
}

TEST_F(CheckpointTest, CorruptBytesAreRejectedBeforeLoading) {
  ParameterStore store = make_store();
  Adam opt(store, AdamOptions{});
  const std::string bytes =
      serialize_checkpoint(sample_state(), store, opt);

  ParameterStore victim = make_store();
  Adam vopt(victim, AdamOptions{});
  const std::vector<float> untouched = victim.flatten_values();

  std::string bad_magic = bytes;
  bad_magic[0] ^= 0x01;
  EXPECT_THROW(deserialize_checkpoint(bad_magic, victim, vopt),
               CheckpointError);

  std::string bad_version = bytes;
  bad_version[4] = static_cast<char>(42);
  EXPECT_THROW(deserialize_checkpoint(bad_version, victim, vopt),
               CheckpointError);

  // Flip one payload byte: the CRC check must reject it before any state
  // reaches the store.
  std::string bit_flip = bytes;
  bit_flip[bytes.size() / 2] ^= 0x40;
  EXPECT_THROW(deserialize_checkpoint(bit_flip, victim, vopt),
               CheckpointError);

  std::string truncated = bytes.substr(0, bytes.size() - 8);
  EXPECT_THROW(deserialize_checkpoint(truncated, victim, vopt),
               CheckpointError);

  // CRC rejection happens before deserialization, so the target store was
  // never written to.
  EXPECT_EQ(victim.flatten_values(), untouched);
}

TEST_F(CheckpointTest, WriteAndReadCheckpointFile) {
  ParameterStore store = make_store();
  Adam opt(store, AdamOptions{});
  fill_grads(store, 1);
  opt.step();
  const std::string path = checkpoint_path(dir_.string(), 7);
  EXPECT_EQ(fs::path(path).filename().string(), "ckpt-000007.ckpt");
  write_checkpoint(path, sample_state(), store, opt);

  ParameterStore restored = make_store();
  Adam ropt(restored, AdamOptions{});
  const TrainCheckpointState st = read_checkpoint(path, restored, ropt);
  expect_state_eq(st, sample_state());
  EXPECT_EQ(restored.flatten_values(), store.flatten_values());
}

TEST_F(CheckpointTest, ReadCheckpointMissingFileThrows) {
  ParameterStore store = make_store();
  Adam opt(store, AdamOptions{});
  EXPECT_THROW(read_checkpoint((dir_ / "absent.ckpt").string(), store, opt),
               CheckpointError);
}

TEST_F(CheckpointTest, AtomicWriteReplacesAndLeavesNoTempFiles) {
  const std::string path = (dir_ / "file.ckpt").string();
  atomic_write_file(path, "first");
  atomic_write_file(path, "second");
  std::ifstream is(path, std::ios::binary);
  std::string content((std::istreambuf_iterator<char>(is)),
                      std::istreambuf_iterator<char>());
  EXPECT_EQ(content, "second");
  std::size_t entries = 0;
  for (const auto& e : fs::directory_iterator(dir_)) {
    (void)e;
    ++entries;
  }
  EXPECT_EQ(entries, 1u);  // no .tmp leftovers
}

TEST_F(CheckpointTest, LatestCheckpointPicksHighestValidEpoch) {
  ParameterStore store = make_store();
  Adam opt(store, AdamOptions{});
  TrainCheckpointState st = sample_state();
  st.next_epoch = 1;
  write_checkpoint(checkpoint_path(dir_.string(), 1), st, store, opt);
  st.next_epoch = 3;
  write_checkpoint(checkpoint_path(dir_.string(), 3), st, store, opt);
  // A torn/garbage file with a plausible name must be skipped, not trusted
  // by filename.
  atomic_write_file(checkpoint_path(dir_.string(), 9), "garbage bytes");

  const std::string best = latest_checkpoint(dir_.string());
  EXPECT_EQ(fs::path(best).filename().string(), "ckpt-000003.ckpt");
}

TEST_F(CheckpointTest, LatestCheckpointOnMissingOrEmptyDir) {
  EXPECT_EQ(latest_checkpoint((dir_ / "nope").string()), "");
  EXPECT_EQ(latest_checkpoint(dir_.string()), "");
}

TEST_F(CheckpointTest, SchedulerAndEarlyStoppingStateRoundTrip) {
  ParameterStore store = make_store();
  Adam opt(store, AdamOptions{});
  const std::string bytes = serialize_checkpoint(sample_state(), store, opt);
  ParameterStore restored = make_store();
  Adam ropt(restored, AdamOptions{});
  const TrainCheckpointState st =
      deserialize_checkpoint(bytes, restored, ropt);

  // LR schedules are pure functions of the checkpointed global_step, so
  // restoring the cursor restores the schedule exactly.
  const StepDecayLr sched(0.1f, 0.5f, 10);
  EXPECT_EQ(st.global_step, 123u);
  EXPECT_EQ(sched.lr_at(st.global_step), sched.lr_at(123));

  // Early stopping continues from the restored (best, bad_epochs) pair:
  // one more non-improving epoch trips a patience of 3.
  EarlyStopping early(3);
  early.restore(st.early_best, st.early_bad_epochs);
  EXPECT_EQ(early.best(), 0.625);
  EXPECT_EQ(early.epochs_since_best(), 2u);
  EXPECT_FALSE(early.should_stop());
  early.update(0.5);
  EXPECT_TRUE(early.should_stop());
}

TEST_F(CheckpointTest, FingerprintSeparatesRunConfigurations) {
  GnnTrainConfig a;
  GnnTrainConfig b = a;
  EXPECT_EQ(checkpoint_fingerprint(a, SamplerKind::kMatrixBulk, 1),
            checkpoint_fingerprint(b, SamplerKind::kMatrixBulk, 1));
  b.seed = a.seed + 1;
  EXPECT_NE(checkpoint_fingerprint(a, SamplerKind::kMatrixBulk, 1),
            checkpoint_fingerprint(b, SamplerKind::kMatrixBulk, 1));
  EXPECT_NE(checkpoint_fingerprint(a, SamplerKind::kMatrixBulk, 1),
            checkpoint_fingerprint(a, SamplerKind::kReference, 1));
  EXPECT_NE(checkpoint_fingerprint(a, SamplerKind::kMatrixBulk, 1),
            checkpoint_fingerprint(a, SamplerKind::kMatrixBulk, 2));
}

}  // namespace
}  // namespace trkx
