// Tests for the node-wise and layer-wise samplers (the other two families
// of the paper's sampler taxonomy, §II-B).

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "graph/generators.hpp"
#include "sampling/layerwise.hpp"
#include "sampling/matrix_shadow.hpp"
#include "sampling/nodewise.hpp"

namespace trkx {
namespace {

// ---------- node-wise ----------

TEST(NodewiseTest, RespectsPerLevelFanouts) {
  Rng rng(1);
  Graph g = erdos_renyi(80, 0.2, rng);
  NodewiseSampler sampler(g, {.fanouts = {3, 2}});
  for (std::uint32_t root = 0; root < 10; ++root) {
    auto set = sampler.walk_vertex_set(root, rng);
    // |set| ≤ 1 + 3 + 3·2.
    EXPECT_LE(set.size(), 10u);
    EXPECT_TRUE(std::binary_search(set.begin(), set.end(), root));
  }
}

TEST(NodewiseTest, SingleLevelIsNeighborSample) {
  Graph g = cycle_graph(10);
  NodewiseSampler sampler(g, {.fanouts = {5}});
  Rng rng(2);
  auto set = sampler.walk_vertex_set(0, rng);
  EXPECT_EQ(set, (std::vector<std::uint32_t>{0, 1, 9}));
}

TEST(NodewiseTest, SampleProducesOneComponentPerRoot) {
  Rng rng(3);
  Graph g = erdos_renyi(60, 0.15, rng);
  NodewiseSampler sampler(g, {.fanouts = {4, 3}});
  const std::vector<std::uint32_t> batch{5, 15, 25};
  ShadowSample s = sampler.sample(batch, rng);
  EXPECT_EQ(s.num_components(), 3u);
  for (std::size_t i = 0; i < batch.size(); ++i)
    EXPECT_EQ(s.sub.vertex_map[s.roots[i]], batch[i]);
  for (const Edge& e : s.sub.graph.edges())
    EXPECT_EQ(s.component_of[e.src], s.component_of[e.dst]);
}

TEST(NodewiseTest, MatchesShadowWhenFanoutsEqual) {
  // Node-wise with equal fanouts at every level draws from the same
  // distribution as ShaDow with that fanout; with saturating fanouts both
  // are deterministic and identical.
  Rng rng(4);
  Graph g = erdos_renyi(40, 0.15, rng);
  NodewiseSampler nodewise(g, {.fanouts = {100, 100}});
  ShadowSampler shadow(g, {.depth = 2, .fanout = 100});
  Rng r1(5), r2(6);
  for (std::uint32_t root = 0; root < 10; ++root)
    EXPECT_EQ(nodewise.walk_vertex_set(root, r1),
              shadow.walk_vertex_set(root, r2));
}

TEST(NodewiseTest, RejectsEmptyFanouts) {
  Graph g = path_graph(4);
  EXPECT_THROW(NodewiseSampler(g, {.fanouts = {}}), Error);
  EXPECT_THROW(NodewiseSampler(g, {.fanouts = {2, 0}}), Error);
}

// ---------- layer-wise ----------

TEST(LayerwiseTest, BudgetBoundsVertexSet) {
  Rng rng(7);
  Graph g = erdos_renyi(200, 0.1, rng);
  LayerwiseSampler sampler(g, {.depth = 2, .budget = 16});
  std::vector<std::uint32_t> batch{1, 2, 3, 4, 5, 6, 7, 8};
  auto set = sampler.sample_vertex_set(batch, rng);
  // At most batch + depth × budget vertices.
  EXPECT_LE(set.size(), batch.size() + 2 * 16);
  for (std::uint32_t b : batch)
    EXPECT_TRUE(std::binary_search(set.begin(), set.end(), b));
}

TEST(LayerwiseTest, LinearGrowthWithDepthUnlikeNodewise) {
  Rng rng(8);
  Graph g = erdos_renyi(400, 0.08, rng);
  const std::vector<std::uint32_t> batch{0, 1, 2, 3};
  LayerwiseSampler shallow(g, {.depth = 1, .budget = 32});
  LayerwiseSampler deep(g, {.depth = 4, .budget = 32});
  Rng r1(9), r2(10);
  const auto s1 = shallow.sample_vertex_set(batch, r1);
  const auto s4 = deep.sample_vertex_set(batch, r2);
  // Depth-4 set is at most 4 budgets larger — linear, not exponential.
  EXPECT_LE(s4.size(), batch.size() + 4 * 32);
  EXPECT_GE(s4.size(), s1.size());
}

TEST(LayerwiseTest, SampleIsSingleSharedComponentStructure) {
  Rng rng(11);
  Graph g = erdos_renyi(100, 0.12, rng);
  LayerwiseSampler sampler(g, {.depth = 2, .budget = 24});
  const std::vector<std::uint32_t> batch{10, 20, 30};
  ShadowSample s = sampler.sample(batch, rng);
  EXPECT_EQ(s.roots.size(), 3u);
  for (std::size_t i = 0; i < batch.size(); ++i)
    EXPECT_EQ(s.sub.vertex_map[s.roots[i]], batch[i]);
  for (auto c : s.component_of) EXPECT_EQ(c, 0u);
  // Edge maps point at real parent edges.
  for (std::size_t e = 0; e < s.sub.graph.num_edges(); ++e) {
    const Edge& se = s.sub.graph.edge(e);
    const Edge& pe = g.edge(s.sub.edge_map[e]);
    EXPECT_EQ(s.sub.vertex_map[se.src], pe.src);
    EXPECT_EQ(s.sub.vertex_map[se.dst], pe.dst);
  }
}

TEST(LayerwiseTest, ImportanceFavoursHighConnectivity) {
  // Hub-and-spokes: the hub connects to every batch vertex, so it has the
  // highest frontier multiplicity and must (essentially) always be drawn.
  std::vector<Edge> edges;
  const std::uint32_t hub = 0;
  for (std::uint32_t i = 1; i <= 20; ++i) edges.push_back({hub, i});
  // Extra sparse ring so there are other candidates.
  for (std::uint32_t i = 1; i < 20; ++i) edges.push_back({i, i + 1});
  Graph g(21, edges);
  LayerwiseSampler sampler(g, {.depth = 1, .budget = 3});
  Rng rng(12);
  int hub_drawn = 0;
  int spoke_drawn = 0;  // vertex 6: weight-1 ring neighbour of batch vertex 5
  const int trials = 600;
  for (int t = 0; t < trials; ++t) {
    const auto set = sampler.sample_vertex_set({5, 10, 15}, rng);
    if (std::binary_search(set.begin(), set.end(), hub)) ++hub_drawn;
    if (std::binary_search(set.begin(), set.end(), 6u)) ++spoke_drawn;
  }
  EXPECT_GT(hub_drawn, trials / 2);
  EXPECT_GT(hub_drawn, spoke_drawn * 3 / 2);
}

TEST(LayerwiseTest, SmallGraphKeepsEverything) {
  Graph g = path_graph(5);
  LayerwiseSampler sampler(g, {.depth = 3, .budget = 100});
  Rng rng(13);
  auto set = sampler.sample_vertex_set({2}, rng);
  EXPECT_EQ(set.size(), 5u);  // whole path reachable in 3 levels
}

TEST(LayerwiseTest, InvalidConfigThrows) {
  Graph g = path_graph(4);
  EXPECT_THROW(LayerwiseSampler(g, {.depth = 0, .budget = 4}), Error);
  EXPECT_THROW(LayerwiseSampler(g, {.depth = 1, .budget = 0}), Error);
}

// ---------- cross-family comparison (the taxonomy's point) ----------

TEST(SamplerFamiliesTest, ReceptiveFieldOrdering) {
  // On a dense graph with generous parameters:
  //   layer-wise (budget-bounded)  ≤  shadow/node-wise (fanout-bounded)
  Rng rng(14);
  Graph g = erdos_renyi(300, 0.15, rng);
  const std::vector<std::uint32_t> batch{1, 2, 3, 4, 5, 6, 7, 8};

  ShadowSampler shadow(g, {.depth = 3, .fanout = 6});
  LayerwiseSampler layerwise(g, {.depth = 3, .budget = 32});
  Rng r1(15), r2(16);
  std::size_t shadow_verts = shadow.sample(batch, r1).sub.graph.num_vertices();
  std::size_t layer_verts =
      layerwise.sample(batch, r2).sub.graph.num_vertices();
  EXPECT_LT(layer_verts, shadow_verts);
}

// ---------- invariants across graph families ----------

enum class GraphFamily { kPath, kCycle, kGrid, kCliques, kErdos };

Graph make_family(GraphFamily family, Rng& rng) {
  switch (family) {
    case GraphFamily::kPath: return path_graph(40);
    case GraphFamily::kCycle: return cycle_graph(40);
    case GraphFamily::kGrid: return grid_graph(6, 7);
    case GraphFamily::kCliques: return disjoint_cliques(8, 5);
    case GraphFamily::kErdos: return erdos_renyi(40, 0.12, rng);
  }
  TRKX_CHECK(false);
}

class SamplerInvariants : public ::testing::TestWithParam<GraphFamily> {};

TEST_P(SamplerInvariants, AllFamiliesProduceValidSamples) {
  Rng rng(99);
  Graph g = make_family(GetParam(), rng);
  const std::vector<std::uint32_t> batch{0, 5, 11, 20, 33};

  ShadowSampler shadow(g, {.depth = 2, .fanout = 3});
  NodewiseSampler nodewise(g, {.fanouts = {3, 2}});
  LayerwiseSampler layerwise(g, {.depth = 2, .budget = 12});

  auto validate = [&](const ShadowSample& s, bool per_root_components) {
    // Vertex maps point into the parent; roots resolve to batch vertices.
    for (std::uint32_t v : s.sub.vertex_map) EXPECT_LT(v, g.num_vertices());
    ASSERT_EQ(s.roots.size(), batch.size());
    for (std::size_t i = 0; i < batch.size(); ++i)
      EXPECT_EQ(s.sub.vertex_map[s.roots[i]], batch[i]);
    // Edge maps are consistent with the parent's endpoints.
    for (std::size_t e = 0; e < s.sub.graph.num_edges(); ++e) {
      const Edge& se = s.sub.graph.edge(e);
      const Edge& pe = g.edge(s.sub.edge_map[e]);
      EXPECT_EQ(s.sub.vertex_map[se.src], pe.src);
      EXPECT_EQ(s.sub.vertex_map[se.dst], pe.dst);
    }
    if (per_root_components) {
      for (const Edge& e : s.sub.graph.edges())
        EXPECT_EQ(s.component_of[e.src], s.component_of[e.dst]);
    }
  };

  Rng r1(1), r2(2), r3(3);
  validate(shadow.sample(batch, r1), true);
  validate(nodewise.sample(batch, r2), true);
  validate(layerwise.sample(batch, r3), false);
}

TEST_P(SamplerInvariants, MatrixShadowMatchesReferenceStructure) {
  Rng rng(100);
  Graph g = make_family(GetParam(), rng);
  ShadowConfig cfg{.depth = 2, .fanout = 100};  // saturating → deterministic
  ShadowSampler ref(g, cfg);
  MatrixShadowSampler mat(g, cfg);
  const std::vector<std::uint32_t> batch{1, 7, 19};
  Rng r1(4), r2(5);
  ShadowSample a = ref.sample(batch, r1);
  ShadowSample b = mat.sample(batch, r2);
  EXPECT_EQ(a.sub.vertex_map, b.sub.vertex_map);
  EXPECT_EQ(a.sub.edge_map, b.sub.edge_map);
}

INSTANTIATE_TEST_SUITE_P(Families, SamplerInvariants,
                         ::testing::Values(GraphFamily::kPath,
                                           GraphFamily::kCycle,
                                           GraphFamily::kGrid,
                                           GraphFamily::kCliques,
                                           GraphFamily::kErdos));

// ---------- isolated vertices (zero-degree rows) ----------

// A triangle on {0,1,2} plus three isolated vertices {3,4,5}. Real hit
// graphs contain noise hits with no edges; sampling one must degrade to a
// singleton component, never divide by a zero degree.
Graph triangle_with_isolates() {
  return Graph(6, {{0, 1}, {1, 2}, {0, 2}});
}

void expect_singleton_component(const ShadowSample& s, std::size_t component,
                                std::uint32_t parent_vertex) {
  const std::uint32_t root = s.roots[component];
  EXPECT_EQ(s.sub.vertex_map[root], parent_vertex);
  EXPECT_EQ(s.component_of[root], component);
  std::size_t members = 0;
  for (std::uint32_t c : s.component_of) members += (c == component);
  EXPECT_EQ(members, 1u);
  for (const Edge& e : s.sub.graph.edges()) {
    EXPECT_NE(e.src, root);
    EXPECT_NE(e.dst, root);
  }
}

TEST(IsolatedVertexTest, ShadowProducesSingletonComponent) {
  Graph g = triangle_with_isolates();
  ShadowSampler sampler(g, {.depth = 2, .fanout = 3});
  Rng rng(61);
  ShadowSample s = sampler.sample({3, 0, 4}, rng);
  ASSERT_EQ(s.num_components(), 3u);
  expect_singleton_component(s, 0, 3);
  expect_singleton_component(s, 2, 4);
  // The connected root still expands into the triangle.
  std::size_t triangle_members = 0;
  for (std::uint32_t c : s.component_of) triangle_members += (c == 1);
  EXPECT_EQ(triangle_members, 3u);
}

TEST(IsolatedVertexTest, NodewiseProducesSingletonComponent) {
  Graph g = triangle_with_isolates();
  NodewiseSampler sampler(g, {.fanouts = {3, 2}});
  Rng rng(62);
  ShadowSample s = sampler.sample({5, 1}, rng);
  ASSERT_EQ(s.num_components(), 2u);
  expect_singleton_component(s, 0, 5);
}

TEST(IsolatedVertexTest, MatrixShadowMatchesReferenceOnIsolates) {
  Graph g = triangle_with_isolates();
  const ShadowConfig cfg{.depth = 2, .fanout = 3};
  for (bool generic : {false, true}) {
    ShadowConfig c = cfg;
    c.generic_spgemm = generic;
    MatrixShadowSampler sampler(g, c);
    Rng rng(63);
    ShadowSample s = sampler.sample({4, 2, 3}, rng);
    ASSERT_EQ(s.num_components(), 3u);
    expect_singleton_component(s, 0, 4);
    expect_singleton_component(s, 2, 3);
  }
}

TEST(IsolatedVertexTest, LayerwiseKeepsIsolatedBatchVertices) {
  Graph g = triangle_with_isolates();
  LayerwiseSampler sampler(g, {.depth = 2, .budget = 4});
  Rng rng(64);
  // Batch of only isolated vertices: every level's frontier is empty.
  ShadowSample s = sampler.sample({3, 5}, rng);
  ASSERT_EQ(s.roots.size(), 2u);
  EXPECT_EQ(s.sub.vertex_map[s.roots[0]], 3u);
  EXPECT_EQ(s.sub.vertex_map[s.roots[1]], 5u);
  EXPECT_TRUE(s.sub.graph.edges().empty());
  // Mixed batch: isolated root survives alongside the triangle.
  Rng rng2(65);
  ShadowSample mixed = sampler.sample({4, 0}, rng2);
  ASSERT_EQ(mixed.roots.size(), 2u);
  EXPECT_EQ(mixed.sub.vertex_map[mixed.roots[0]], 4u);
}

TEST(IsolatedVertexTest, AllEdgelessGraphSamplesEveryFamily) {
  // Degenerate limit: no edges anywhere. Every sampler must still return
  // well-formed singleton components.
  Graph g(4, {});
  Rng rng(66);
  ShadowSample a = ShadowSampler(g, {.depth = 2, .fanout = 2}).sample({0, 3}, rng);
  EXPECT_EQ(a.num_components(), 2u);
  ShadowSample b = NodewiseSampler(g, {.fanouts = {2}}).sample({1}, rng);
  EXPECT_EQ(b.num_components(), 1u);
  ShadowSample c =
      MatrixShadowSampler(g, {.depth = 2, .fanout = 2}).sample({2}, rng);
  EXPECT_EQ(c.num_components(), 1u);
  ShadowSample d =
      LayerwiseSampler(g, {.depth = 2, .budget = 2}).sample({0, 1}, rng);
  EXPECT_EQ(d.roots.size(), 2u);
  EXPECT_TRUE(d.sub.graph.edges().empty());
}

}  // namespace
}  // namespace trkx
