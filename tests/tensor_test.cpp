#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "tensor/matrix.hpp"
#include "tensor/ops.hpp"
#include "util/rng.hpp"

namespace trkx {
namespace {

Matrix naive_matmul(const Matrix& a, const Matrix& b) {
  Matrix c(a.rows(), b.cols(), 0.0f);
  for (std::size_t i = 0; i < a.rows(); ++i)
    for (std::size_t j = 0; j < b.cols(); ++j)
      for (std::size_t k = 0; k < a.cols(); ++k)
        c(i, j) += a(i, k) * b(k, j);
  return c;
}

// ---------- Matrix basics ----------

TEST(MatrixTest, ConstructionAndAccess) {
  Matrix m(3, 4, 1.5f);
  EXPECT_EQ(m.rows(), 3u);
  EXPECT_EQ(m.cols(), 4u);
  EXPECT_EQ(m.size(), 12u);
  EXPECT_EQ(m.at(2, 3), 1.5f);
  m.at(1, 2) = -2.0f;
  EXPECT_EQ(m(1, 2), -2.0f);
}

TEST(MatrixTest, InitializerList) {
  Matrix m{{1, 2, 3}, {4, 5, 6}};
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  EXPECT_EQ(m(1, 2), 6.0f);
}

TEST(MatrixTest, RaggedInitializerThrows) {
  EXPECT_THROW((Matrix{{1, 2}, {3}}), Error);
}

TEST(MatrixTest, OutOfRangeAtThrows) {
  Matrix m(2, 2);
  EXPECT_THROW(m.at(2, 0), Error);
  EXPECT_THROW(m.at(0, 2), Error);
}

TEST(MatrixTest, Identity) {
  Matrix i = Matrix::identity(3);
  for (std::size_t r = 0; r < 3; ++r)
    for (std::size_t c = 0; c < 3; ++c)
      EXPECT_EQ(i(r, c), r == c ? 1.0f : 0.0f);
}

TEST(MatrixTest, RandomUniformInRange) {
  Rng rng(1);
  Matrix m = Matrix::random_uniform(10, 10, rng, -2.0f, 3.0f);
  for (float x : m.flat()) {
    EXPECT_GE(x, -2.0f);
    EXPECT_LT(x, 3.0f);
  }
}

TEST(MatrixTest, RandomNormalMoments) {
  Rng rng(2);
  Matrix m = Matrix::random_normal(100, 100, rng, 1.0f, 2.0f);
  double sum = 0.0;
  for (float x : m.flat()) sum += x;
  EXPECT_NEAR(sum / m.size(), 1.0, 0.05);
}

TEST(MatrixTest, NormsAndSums) {
  Matrix m{{3, 4}, {0, 0}};
  EXPECT_DOUBLE_EQ(m.frobenius_norm(), 5.0);
  EXPECT_EQ(m.abs_max(), 4.0f);
  EXPECT_DOUBLE_EQ(m.sum(), 7.0);
}

TEST(MatrixTest, AllFinite) {
  Matrix m(2, 2, 1.0f);
  EXPECT_TRUE(m.all_finite());
  m(0, 0) = std::nanf("");
  EXPECT_FALSE(m.all_finite());
  m(0, 0) = INFINITY;
  EXPECT_FALSE(m.all_finite());
}

TEST(MatrixTest, RowSpan) {
  Matrix m{{1, 2}, {3, 4}};
  auto r = m.row(1);
  ASSERT_EQ(r.size(), 2u);
  EXPECT_EQ(r[0], 3.0f);
  r[1] = 9.0f;
  EXPECT_EQ(m(1, 1), 9.0f);
}

// ---------- matmul family (parameterized over shapes) ----------

class MatmulShapes
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(MatmulShapes, MatchesNaive) {
  auto [m, k, n] = GetParam();
  Rng rng(m * 100 + k * 10 + n);
  Matrix a = Matrix::random_normal(m, k, rng);
  Matrix b = Matrix::random_normal(k, n, rng);
  EXPECT_TRUE(allclose(matmul(a, b), naive_matmul(a, b), 1e-4f, 1e-3f));
}

TEST_P(MatmulShapes, TransposedVariantsMatch) {
  auto [m, k, n] = GetParam();
  Rng rng(m + k + n);
  Matrix a = Matrix::random_normal(m, k, rng);
  Matrix b = Matrix::random_normal(k, n, rng);
  // A·B == (Aᵀ)ᵀ·B == A·(Bᵀ)ᵀ through the fused variants.
  Matrix ref = matmul(a, b);
  EXPECT_TRUE(allclose(matmul_nt(a, transpose(b)), ref, 1e-4f, 1e-3f));
  EXPECT_TRUE(allclose(matmul_tn(transpose(a), b), ref, 1e-4f, 1e-3f));
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, MatmulShapes,
    ::testing::Values(std::make_tuple(1, 1, 1), std::make_tuple(2, 3, 4),
                      std::make_tuple(7, 5, 3), std::make_tuple(16, 16, 16),
                      std::make_tuple(1, 64, 1), std::make_tuple(33, 1, 17),
                      std::make_tuple(65, 70, 129)));

TEST(OpsTest, MatmulShapeMismatchThrows) {
  Matrix a(2, 3), b(4, 2);
  EXPECT_THROW(matmul(a, b), Error);
}

TEST(OpsTest, TransposeInvolution) {
  Rng rng(3);
  Matrix a = Matrix::random_normal(5, 7, rng);
  EXPECT_EQ(transpose(transpose(a)), a);
}

// ---------- elementwise ----------

TEST(OpsTest, AddSubHadamardScale) {
  Matrix a{{1, 2}, {3, 4}};
  Matrix b{{5, 6}, {7, 8}};
  EXPECT_EQ(add(a, b), (Matrix{{6, 8}, {10, 12}}));
  EXPECT_EQ(sub(b, a), (Matrix{{4, 4}, {4, 4}}));
  EXPECT_EQ(hadamard(a, b), (Matrix{{5, 12}, {21, 32}}));
  EXPECT_EQ(scale(a, 2.0f), (Matrix{{2, 4}, {6, 8}}));
}

TEST(OpsTest, InplaceVariants) {
  Matrix a{{1, 1}};
  add_inplace(a, Matrix{{2, 3}});
  EXPECT_EQ(a, (Matrix{{3, 4}}));
  axpy_inplace(a, 0.5f, Matrix{{2, 2}});
  EXPECT_EQ(a, (Matrix{{4, 5}}));
}

TEST(OpsTest, ShapeMismatchThrows) {
  Matrix a(2, 2), b(2, 3);
  EXPECT_THROW(add(a, b), Error);
  EXPECT_THROW(add_inplace(a, b), Error);
}

TEST(OpsTest, RowBroadcastAndColSum) {
  Matrix a{{1, 2}, {3, 4}};
  Matrix row{{10, 20}};
  EXPECT_EQ(add_row_broadcast(a, row), (Matrix{{11, 22}, {13, 24}}));
  EXPECT_EQ(colwise_sum(a), (Matrix{{4, 6}}));
  EXPECT_EQ(rowwise_sum(a), (Matrix{{3}, {7}}));
}

TEST(OpsTest, ApplyAndApply2) {
  Matrix a{{-1, 2}};
  EXPECT_EQ(apply(a, [](float x) { return x * x; }), (Matrix{{1, 4}}));
  EXPECT_EQ(apply2(a, a, [](float x, float y) { return x + y; }),
            (Matrix{{-2, 4}}));
}

// ---------- concat / slice ----------

TEST(OpsTest, ConcatColsRoundTripsWithSlice) {
  Rng rng(4);
  Matrix a = Matrix::random_normal(3, 2, rng);
  Matrix b = Matrix::random_normal(3, 5, rng);
  Matrix c = Matrix::random_normal(3, 1, rng);
  Matrix cat = concat_cols({&a, &b, &c});
  EXPECT_EQ(cat.cols(), 8u);
  EXPECT_EQ(slice_cols(cat, 0, 2), a);
  EXPECT_EQ(slice_cols(cat, 2, 5), b);
  EXPECT_EQ(slice_cols(cat, 7, 1), c);
}

TEST(OpsTest, ConcatRowsRoundTripsWithSlice) {
  Rng rng(5);
  Matrix a = Matrix::random_normal(2, 3, rng);
  Matrix b = Matrix::random_normal(4, 3, rng);
  Matrix cat = concat_rows({&a, &b});
  EXPECT_EQ(cat.rows(), 6u);
  EXPECT_EQ(slice_rows(cat, 0, 2), a);
  EXPECT_EQ(slice_rows(cat, 2, 4), b);
}

TEST(OpsTest, ConcatColsRowMismatchThrows) {
  Matrix a(2, 2), b(3, 2);
  EXPECT_THROW(concat_cols({&a, &b}), Error);
}

TEST(OpsTest, SliceOutOfRangeThrows) {
  Matrix a(2, 4);
  EXPECT_THROW(slice_cols(a, 3, 2), Error);
  EXPECT_THROW(slice_rows(a, 1, 2), Error);
}

// ---------- gather / scatter / segment ----------

TEST(OpsTest, RowGather) {
  Matrix x{{1, 2}, {3, 4}, {5, 6}};
  Matrix g = row_gather(x, {2, 0, 2});
  EXPECT_EQ(g, (Matrix{{5, 6}, {1, 2}, {5, 6}}));
}

TEST(OpsTest, RowGatherOutOfRangeThrows) {
  Matrix x(2, 2);
  EXPECT_THROW(row_gather(x, {2}), Error);
}

TEST(OpsTest, RowScatterAddAccumulates) {
  Matrix dst(3, 2, 0.0f);
  Matrix src{{1, 1}, {2, 2}, {3, 3}};
  row_scatter_add(dst, {1, 1, 0}, src);
  EXPECT_EQ(dst, (Matrix{{3, 3}, {3, 3}, {0, 0}}));
}

TEST(OpsTest, SegmentSumIsGatherAdjoint) {
  // <segment_sum(y, idx), x> == <y, row_gather(x, idx)> for all x, y.
  Rng rng(6);
  const std::vector<std::uint32_t> idx{0, 2, 2, 1, 0};
  Matrix y = Matrix::random_normal(5, 3, rng);
  Matrix x = Matrix::random_normal(4, 3, rng);
  Matrix s = segment_sum(y, idx, 4);
  double lhs = 0.0, rhs = 0.0;
  for (std::size_t i = 0; i < s.size(); ++i)
    lhs += s.data()[i] * x.data()[i];
  Matrix g = row_gather(x, idx);
  for (std::size_t i = 0; i < g.size(); ++i)
    rhs += g.data()[i] * y.data()[i];
  EXPECT_NEAR(lhs, rhs, 1e-4);
}

TEST(OpsTest, SegmentSumValues) {
  Matrix y{{1, 0}, {2, 0}, {4, 1}};
  Matrix s = segment_sum(y, {1, 1, 0}, 3);
  EXPECT_EQ(s, (Matrix{{4, 1}, {3, 0}, {0, 0}}));
}

// ---------- comparisons ----------

TEST(OpsTest, AllcloseToleratesSmallError) {
  Matrix a{{1.0f, 2.0f}};
  Matrix b{{1.0f + 5e-6f, 2.0f}};
  EXPECT_TRUE(allclose(a, b));
  Matrix c{{1.1f, 2.0f}};
  EXPECT_FALSE(allclose(a, c));
  EXPECT_FALSE(allclose(a, Matrix(1, 3)));
}

TEST(OpsTest, MaxAbsDiff) {
  Matrix a{{1, 2}}, b{{1.5f, 1.0f}};
  EXPECT_FLOAT_EQ(max_abs_diff(a, b), 1.0f);
}

}  // namespace
}  // namespace trkx
