#include <gtest/gtest.h>

#include <cmath>

#include "nn/scheduler.hpp"

namespace trkx {
namespace {

TEST(ConstantLrTest, AlwaysSame) {
  ConstantLr s(0.01f);
  EXPECT_FLOAT_EQ(s.lr_at(0), 0.01f);
  EXPECT_FLOAT_EQ(s.lr_at(1000000), 0.01f);
}

TEST(StepDecayTest, HalvesEveryInterval) {
  StepDecayLr s(1.0f, 0.5f, 10);
  EXPECT_FLOAT_EQ(s.lr_at(0), 1.0f);
  EXPECT_FLOAT_EQ(s.lr_at(9), 1.0f);
  EXPECT_FLOAT_EQ(s.lr_at(10), 0.5f);
  EXPECT_FLOAT_EQ(s.lr_at(25), 0.25f);
}

TEST(StepDecayTest, RejectsBadArgs) {
  EXPECT_THROW(StepDecayLr(0.0f, 0.5f, 10), Error);
  EXPECT_THROW(StepDecayLr(1.0f, 1.5f, 10), Error);
  EXPECT_THROW(StepDecayLr(1.0f, 0.5f, 0), Error);
}

TEST(CosineTest, EndpointsAndMidpoint) {
  CosineLr s(1.0f, 0.1f, 100);
  EXPECT_FLOAT_EQ(s.lr_at(0), 1.0f);
  EXPECT_NEAR(s.lr_at(50), 0.55f, 1e-5f);
  EXPECT_FLOAT_EQ(s.lr_at(100), 0.1f);
  EXPECT_FLOAT_EQ(s.lr_at(500), 0.1f);  // clamped after the horizon
}

TEST(CosineTest, MonotoneDecreasing) {
  CosineLr s(1.0f, 0.0f, 50);
  for (std::size_t t = 1; t <= 50; ++t)
    EXPECT_LE(s.lr_at(t), s.lr_at(t - 1) + 1e-7f);
}

TEST(WarmupTest, RampsThenDefers) {
  auto inner = std::make_shared<ConstantLr>(0.8f);
  WarmupLr s(inner, 4);
  EXPECT_FLOAT_EQ(s.lr_at(0), 0.2f);
  EXPECT_FLOAT_EQ(s.lr_at(1), 0.4f);
  EXPECT_FLOAT_EQ(s.lr_at(3), 0.8f);
  EXPECT_FLOAT_EQ(s.lr_at(4), 0.8f);
  EXPECT_FLOAT_EQ(s.lr_at(100), 0.8f);
}

TEST(WarmupTest, ComposesWithDecay) {
  auto inner = std::make_shared<StepDecayLr>(1.0f, 0.1f, 10);
  WarmupLr s(inner, 5);
  EXPECT_LT(s.lr_at(0), 1.0f);       // ramping
  EXPECT_FLOAT_EQ(s.lr_at(5), 1.0f); // inner step 0
  EXPECT_FLOAT_EQ(s.lr_at(15), 0.1f);  // inner step 10
}

TEST(SchedulerTest, AppliesToOptimizer) {
  ParameterStore store;
  store.create("w", 1, 1);
  Adam opt(store, AdamOptions{.lr = 123.0f});
  CosineLr s(1.0f, 0.0f, 10);
  s.apply(opt, 0);
  EXPECT_FLOAT_EQ(opt.learning_rate(), 1.0f);
  s.apply(opt, 10);
  EXPECT_FLOAT_EQ(opt.learning_rate(), 0.0f);
}

TEST(SchedulerTest, ScheduledTrainingChangesTrajectory) {
  // Decaying lr must give a different (and here: closer) endpoint than a
  // huge constant lr on a quadratic.
  auto run = [](bool scheduled) {
    ParameterStore store;
    Parameter& p = store.create("w", 1, 1);
    p.value(0, 0) = 10.0f;
    Sgd opt(store, SgdOptions{.lr = 1.1f});  // overshoots: |1 - 2*1.1| > 1
    StepDecayLr sched(1.1f, 0.5f, 5);
    for (std::size_t t = 0; t < 40; ++t) {
      if (scheduled) sched.apply(opt, t);
      p.grad(0, 0) = 2.0f * p.value(0, 0);  // f = w²
      opt.step();
    }
    return std::fabs(p.value(0, 0));
  };
  EXPECT_LT(run(true), run(false));
}

TEST(EarlyStoppingTest, StopsAfterPatience) {
  EarlyStopping es(2);
  EXPECT_TRUE(es.update(0.5));
  EXPECT_FALSE(es.should_stop());
  EXPECT_FALSE(es.update(0.4));
  EXPECT_FALSE(es.should_stop());
  EXPECT_FALSE(es.update(0.45));
  EXPECT_TRUE(es.should_stop());
  EXPECT_DOUBLE_EQ(es.best(), 0.5);
}

TEST(EarlyStoppingTest, ImprovementResetsCounter) {
  EarlyStopping es(2);
  es.update(0.5);
  es.update(0.4);
  EXPECT_TRUE(es.update(0.6));
  EXPECT_EQ(es.epochs_since_best(), 0u);
  EXPECT_FALSE(es.should_stop());
}

TEST(EarlyStoppingTest, MinDeltaIgnoresTinyGains) {
  EarlyStopping es(1, 0.1);
  es.update(0.5);
  EXPECT_FALSE(es.update(0.55));  // within min_delta → not an improvement
  EXPECT_TRUE(es.should_stop());
}

}  // namespace
}  // namespace trkx
