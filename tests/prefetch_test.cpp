// Tests for the sampler↔trainer overlap pipeline and its supporting
// pieces: PrefetchQueue, TensorPool, the balanced shard_batch partition,
// parallel evaluate_edges, and — the load-bearing property — bit-identical
// pipelined vs serial training for both sampler kinds.

#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <numeric>
#include <thread>
#include <vector>

#include "pipeline/gnn_train.hpp"
#include "tensor/pool.hpp"
#include "util/prefetch.hpp"
#include "util/thread_pool.hpp"

namespace trkx {
namespace {

// ---------- PrefetchQueue ----------

TEST(PrefetchQueueTest, ResultsMatchInlineProduction) {
  ThreadPool pool(2);
  const std::size_t n = 37;
  auto produce = [](std::size_t i) { return i * i + 1; };
  PrefetchQueue<std::size_t> queue(&pool, 3, n, produce);
  for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(queue.get(i), i * i + 1);
  EXPECT_EQ(queue.stats().gets, n);
  EXPECT_EQ(queue.stats().inline_runs, 0u);
}

TEST(PrefetchQueueTest, DepthZeroRunsEverythingInline) {
  ThreadPool pool(2);
  std::atomic<int> produced{0};
  auto produce = [&](std::size_t i) {
    ++produced;
    return static_cast<int>(i) * 3;
  };
  PrefetchQueue<int> queue(&pool, 0, 5, produce);
  EXPECT_EQ(produced.load(), 0);  // nothing runs ahead of consumption
  for (std::size_t i = 0; i < 5; ++i) EXPECT_EQ(queue.get(i), static_cast<int>(i) * 3);
  EXPECT_EQ(produced.load(), 5);
  EXPECT_EQ(queue.stats().inline_runs, 5u);
}

TEST(PrefetchQueueTest, NullPoolRunsInlineRegardlessOfDepth) {
  auto produce = [](std::size_t i) { return static_cast<int>(i) + 7; };
  PrefetchQueue<int> queue(nullptr, 4, 3, produce);
  for (std::size_t i = 0; i < 3; ++i) EXPECT_EQ(queue.get(i), static_cast<int>(i) + 7);
  EXPECT_EQ(queue.stats().inline_runs, 3u);
}

TEST(PrefetchQueueTest, NeverRunsMoreThanDepthAhead) {
  ThreadPool pool(4);
  std::atomic<std::size_t> produced{0};
  std::atomic<std::size_t> consumed{0};
  std::atomic<std::size_t> max_ahead{0};
  auto produce = [&](std::size_t i) {
    const std::size_t ahead = produced.fetch_add(1) + 1 - consumed.load();
    std::size_t seen = max_ahead.load();
    while (ahead > seen && !max_ahead.compare_exchange_weak(seen, ahead)) {
    }
    return i;
  };
  const std::size_t depth = 2;
  PrefetchQueue<std::size_t> queue(&pool, depth, 30, produce);
  for (std::size_t i = 0; i < 30; ++i) {
    EXPECT_EQ(queue.get(i), i);
    ++consumed;
  }
  // In-flight production can never exceed the configured look-ahead.
  EXPECT_LE(max_ahead.load(), depth + 1);
}

TEST(PrefetchQueueTest, AbandonedMidSequenceDrainsCleanly) {
  ThreadPool pool(2);
  std::atomic<int> produced{0};
  {
    auto produce = [&](std::size_t i) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
      ++produced;
      return i;
    };
    PrefetchQueue<std::size_t> queue(&pool, 4, 100, produce);
    (void)queue.get(0);
    (void)queue.get(1);
    // Destructor must wait for in-flight tasks, not crash or leak.
  }
  EXPECT_GE(produced.load(), 2);
  EXPECT_LE(produced.load(), 7);  // 2 consumed + at most depth+1 in flight
}

// ---------- TensorPool ----------

TEST(TensorPoolTest, RecyclesFreedBuffersWithinThread) {
  const bool was_enabled = TensorPool::enabled();
  TensorPool::set_enabled(true);
  TensorPool::clear_thread_cache();
  TensorPool::reset_stats();

  void* a = TensorPool::acquire(1000);
  ASSERT_NE(a, nullptr);
  TensorPool::release(a, 1000);
  // Same bucket (1024) → must be served from the free list.
  void* b = TensorPool::acquire(600);
  EXPECT_EQ(b, a);
  TensorPool::release(b, 600);

  const auto s = TensorPool::stats();
  EXPECT_GE(s.hits, 1u);
  EXPECT_GE(s.returns, 2u);
  EXPECT_GT(s.hit_rate(), 0.0);

  TensorPool::clear_thread_cache();
  TensorPool::set_enabled(was_enabled);
}

TEST(TensorPoolTest, DisabledPoolStillAllocates) {
  const bool was_enabled = TensorPool::enabled();
  TensorPool::set_enabled(false);
  TensorPool::clear_thread_cache();

  void* a = TensorPool::acquire(512);
  ASSERT_NE(a, nullptr);
  std::memset(a, 0xab, 512);
  TensorPool::release(a, 512);
  void* b = TensorPool::acquire(512);
  ASSERT_NE(b, nullptr);
  TensorPool::release(b, 512);

  TensorPool::set_enabled(was_enabled);
}

TEST(TensorPoolTest, ZeroByteAcquireReturnsNull) {
  EXPECT_EQ(TensorPool::acquire(0), nullptr);
  TensorPool::release(nullptr, 0);  // no-op
}

TEST(TensorPoolTest, ClearThreadCacheDropsCachedBytes) {
  const bool was_enabled = TensorPool::enabled();
  TensorPool::set_enabled(true);
  TensorPool::clear_thread_cache();

  void* a = TensorPool::acquire(4096);
  TensorPool::release(a, 4096);
  EXPECT_GE(TensorPool::stats().bytes_cached, 4096u);
  TensorPool::clear_thread_cache();
  EXPECT_EQ(TensorPool::stats().bytes_cached, 0u);

  TensorPool::set_enabled(was_enabled);
}

TEST(TensorPoolTest, PooledBuffersMigrateAcrossThreads) {
  // Produce on one thread, free on another — the pattern the prefetch
  // pipeline creates. Must not crash or double count cached bytes.
  const bool was_enabled = TensorPool::enabled();
  TensorPool::set_enabled(true);
  void* p = nullptr;
  std::thread producer([&] { p = TensorPool::acquire(2048); });
  producer.join();
  ASSERT_NE(p, nullptr);
  TensorPool::release(p, 2048);  // freed on this thread's cache
  void* q = TensorPool::acquire(2048);
  EXPECT_EQ(q, p);  // recycled from this thread's free list
  TensorPool::release(q, 2048);
  TensorPool::clear_thread_cache();
  TensorPool::set_enabled(was_enabled);
}

// ---------- shard_batch ----------

TEST(ShardBatchTest, ShardsExactlyPartitionForAllSizes) {
  for (std::size_t n = 0; n <= 33; ++n) {
    std::vector<std::uint32_t> batch(n);
    std::iota(batch.begin(), batch.end(), 100u);
    for (int world = 1; world <= 8; ++world) {
      std::vector<std::uint32_t> merged;
      std::size_t max_size = 0;
      std::size_t min_size = n + 1;
      for (int rank = 0; rank < world; ++rank) {
        const auto shard = shard_batch(batch, rank, world);
        merged.insert(merged.end(), shard.begin(), shard.end());
        max_size = std::max(max_size, shard.size());
        min_size = std::min(min_size, shard.size());
      }
      // Concatenated shards reproduce the batch exactly, in order.
      EXPECT_EQ(merged, batch) << "n=" << n << " world=" << world;
      // Balanced: sizes differ by at most one.
      EXPECT_LE(max_size - min_size, 1u) << "n=" << n << " world=" << world;
    }
  }
}

TEST(ShardBatchTest, SmallBatchesYieldEmptyTrailingShards) {
  const std::vector<std::uint32_t> batch{7, 8, 9};
  for (int rank = 0; rank < 5; ++rank) {
    const auto shard = shard_batch(batch, rank, 5);
    if (rank < 3)
      ASSERT_EQ(shard.size(), 1u);
    else
      EXPECT_TRUE(shard.empty());
  }
}

TEST(ShardBatchTest, InvalidRankThrows) {
  const std::vector<std::uint32_t> batch{1, 2, 3};
  EXPECT_THROW(shard_batch(batch, -1, 2), Error);
  EXPECT_THROW(shard_batch(batch, 2, 2), Error);
  EXPECT_THROW(shard_batch(batch, 0, 0), Error);
}

// ---------- training fixtures ----------

DetectorConfig tiny_detector() {
  DetectorConfig cfg;
  cfg.mean_particles = 25.0;
  cfg.noise_fraction = 0.05;
  return cfg;
}

std::vector<Event> tiny_events(std::size_t count, std::uint64_t seed) {
  std::vector<Event> events;
  Rng rng(seed);
  for (std::size_t i = 0; i < count; ++i) {
    Rng er = rng.split();
    events.push_back(generate_event(tiny_detector(), er));
  }
  return events;
}

GnnTrainConfig fast_train_config() {
  GnnTrainConfig cfg;
  cfg.epochs = 2;
  cfg.batch_size = 64;
  cfg.shadow = {.depth = 2, .fanout = 3};
  cfg.bulk_k = 2;
  cfg.evaluate_every_epoch = true;
  return cfg;
}

IgnnConfig fast_gnn_config(const Event& sample) {
  IgnnConfig cfg;
  cfg.node_input_dim = sample.node_features.cols();
  cfg.edge_input_dim = sample.edge_features.cols();
  cfg.hidden_dim = 16;
  cfg.num_layers = 2;
  cfg.mlp_hidden = 1;
  return cfg;
}

// ---------- evaluate_edges ----------

TEST(EvaluateEdgesTest, ParallelMatchesSerialExactly) {
  auto events = tiny_events(4, 41);
  GnnModel model(fast_gnn_config(events[0]), 7);
  const BinaryMetrics serial = evaluate_edges(model, events, 0.5f, 1);
  const BinaryMetrics parallel = evaluate_edges(model, events, 0.5f, 4);
  EXPECT_EQ(serial.true_positives, parallel.true_positives);
  EXPECT_EQ(serial.false_positives, parallel.false_positives);
  EXPECT_EQ(serial.false_negatives, parallel.false_negatives);
  EXPECT_EQ(serial.true_negatives, parallel.true_negatives);
  EXPECT_GT(serial.total(), 0u);
}

// ---------- pipelined vs serial determinism ----------

class PipelinedDeterminism : public ::testing::TestWithParam<SamplerKind> {};

TEST_P(PipelinedDeterminism, PrefetchDepthDoesNotChangeTraining) {
  auto events = tiny_events(2, 51);
  auto val = tiny_events(1, 52);

  auto run = [&](std::size_t depth, std::size_t threads) {
    GnnTrainConfig cfg = fast_train_config();
    cfg.epochs = 3;
    cfg.prefetch_depth = depth;
    cfg.prefetch_threads = threads;
    GnnModel model(fast_gnn_config(events[0]), 123);
    TrainResult r = train_shadow(model, events, val, cfg, GetParam());
    return std::make_pair(std::move(r), model.store.flatten_values());
  };

  const auto [serial, serial_weights] = run(0, 1);
  const auto [pipelined, pipelined_weights] = run(2, 1);
  const auto [deep, deep_weights] = run(4, 2);

  ASSERT_EQ(serial.epochs.size(), pipelined.epochs.size());
  for (std::size_t e = 0; e < serial.epochs.size(); ++e) {
    // Bit-identical loss trajectory: the per-stream RNG scheme must make
    // the pipeline invisible to the math.
    EXPECT_EQ(serial.epochs[e].train_loss, pipelined.epochs[e].train_loss)
        << "epoch " << e;
    EXPECT_EQ(serial.epochs[e].train_loss, deep.epochs[e].train_loss)
        << "epoch " << e;
    EXPECT_EQ(serial.epochs[e].val.true_positives, pipelined.epochs[e].val.true_positives);
    EXPECT_EQ(serial.epochs[e].val.false_positives, pipelined.epochs[e].val.false_positives);
    EXPECT_EQ(serial.epochs[e].val.false_negatives, pipelined.epochs[e].val.false_negatives);
    EXPECT_EQ(serial.epochs[e].val.true_negatives, pipelined.epochs[e].val.true_negatives);
  }
  ASSERT_EQ(serial_weights.size(), pipelined_weights.size());
  for (std::size_t i = 0; i < serial_weights.size(); ++i) {
    ASSERT_EQ(serial_weights[i], pipelined_weights[i]) << "weight " << i;
    ASSERT_EQ(serial_weights[i], deep_weights[i]) << "weight " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Kinds, PipelinedDeterminism,
                         ::testing::Values(SamplerKind::kReference,
                                           SamplerKind::kMatrixBulk));

TEST(PipelinedDeterminism2, DdpPipelinedMatchesDdpSerial) {
  auto events = tiny_events(2, 61);
  auto val = tiny_events(1, 62);

  auto run = [&](std::size_t depth) {
    GnnTrainConfig cfg = fast_train_config();
    cfg.prefetch_depth = depth;
    GnnModel model(fast_gnn_config(events[0]), 321);
    DistRuntime rt(2);
    TrainResult r =
        train_shadow_ddp(model, events, val, cfg, rt, SamplerKind::kMatrixBulk);
    return std::make_pair(std::move(r), model.store.flatten_values());
  };

  const auto [serial, serial_weights] = run(0);
  const auto [pipelined, pipelined_weights] = run(2);
  ASSERT_EQ(serial.epochs.size(), pipelined.epochs.size());
  for (std::size_t e = 0; e < serial.epochs.size(); ++e)
    EXPECT_EQ(serial.epochs[e].train_loss, pipelined.epochs[e].train_loss);
  EXPECT_EQ(serial_weights, pipelined_weights);
}

TEST(PrefetchTrainingTest, StallTimerIsRecordedWhenPipelined) {
  auto events = tiny_events(1, 71);
  auto val = tiny_events(1, 72);
  GnnTrainConfig cfg = fast_train_config();
  cfg.epochs = 1;
  cfg.prefetch_depth = 2;
  GnnModel model(fast_gnn_config(events[0]), 5);
  TrainResult r =
      train_shadow(model, events, val, cfg, SamplerKind::kReference);
  // The bucket exists (possibly ~0 if the producer always kept up).
  EXPECT_GE(r.epochs[0].timers.get("prefetch_stall"), 0.0);
  EXPECT_GT(r.epochs[0].timers.get("sample"), 0.0);
}

}  // namespace
}  // namespace trkx
