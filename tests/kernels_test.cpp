#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <vector>

#include "autograd/gradcheck.hpp"
#include "autograd/tape.hpp"
#include "sparse/csr.hpp"
#include "tensor/kernels/kernels.hpp"
#include "tensor/matrix.hpp"
#include "util/rng.hpp"

namespace trkx {
namespace {

// Sizes chosen to exercise the 16-lane main loop, the 8-lane loop, and
// every scalar-tail length at least once.
const std::size_t kSizes[] = {1, 3, 7, 8, 9, 15, 16, 17, 31, 64, 100, 8205};

std::vector<float> random_vec(std::size_t n, Rng& rng, float lo = -2.0f,
                              float hi = 2.0f) {
  std::vector<float> v(n);
  for (float& x : v) x = rng.uniform(lo, hi);
  return v;
}

bool bitwise_equal(const std::vector<float>& a, const std::vector<float>& b) {
  return a.size() == b.size() &&
         std::memcmp(a.data(), b.data(), a.size() * sizeof(float)) == 0;
}

/// Relative-error check for the reassociated (ULP-bounded) kernels: the
/// AVX2 result must agree with scalar to within a tight bound that only
/// accounts for reassociating a length-k float reduction.
void expect_close(const std::vector<float>& ref, const std::vector<float>& got,
                  std::size_t k, const char* what) {
  ASSERT_EQ(ref.size(), got.size());
  const float tol =
      1e-6f * std::sqrt(static_cast<float>(k > 0 ? k : 1)) * 8.0f;
  for (std::size_t i = 0; i < ref.size(); ++i) {
    const float denom = std::max(1.0f, std::fabs(ref[i]));
    ASSERT_LE(std::fabs(ref[i] - got[i]) / denom, tol)
        << what << " diverged at " << i << ": " << ref[i] << " vs " << got[i];
  }
}

#define SKIP_WITHOUT_AVX2()                                   \
  do {                                                        \
    if (!kernels::host_has_avx2())                            \
      GTEST_SKIP() << "host lacks AVX2+FMA; nothing to compare"; \
  } while (0)

// ---------- dispatch ----------

TEST(KernelDispatch, ActiveTableResolves) {
  const kernels::KernelTable& t = kernels::active();
  ASSERT_NE(t.name, nullptr);
  EXPECT_TRUE(std::strcmp(t.name, "scalar") == 0 ||
              std::strcmp(t.name, "avx2") == 0);
  if (!kernels::host_has_avx2()) {
    EXPECT_STREQ(t.name, "scalar");
  }
}

TEST(KernelDispatch, SetModeRepointsActive) {
  const kernels::SimdMode before = kernels::mode();
  kernels::set_mode(kernels::SimdMode::kScalar);
  EXPECT_STREQ(kernels::active().name, "scalar");
  if (kernels::host_has_avx2()) {
    kernels::set_mode(kernels::SimdMode::kAvx2);
    EXPECT_STREQ(kernels::active().name, "avx2");
  }
  kernels::set_mode(before);
}

TEST(KernelDispatch, ScalarTableIsScalar) {
  EXPECT_STREQ(kernels::scalar_table().name, "scalar");
  EXPECT_STREQ(kernels::avx2_table().name, "avx2");
}

// ---------- bit-identical kernels ----------

TEST(KernelEquivalence, ElementwiseBitIdentical) {
  SKIP_WITHOUT_AVX2();
  const kernels::KernelTable& sc = kernels::scalar_table();
  const kernels::KernelTable& vx = kernels::avx2_table();
  Rng rng(7);
  for (std::size_t n : kSizes) {
    const auto a = random_vec(n, rng);
    const auto b = random_vec(n, rng);
    std::vector<float> o1(n), o2(n);

    sc.ew_add(a.data(), b.data(), o1.data(), n);
    vx.ew_add(a.data(), b.data(), o2.data(), n);
    EXPECT_TRUE(bitwise_equal(o1, o2)) << "ew_add n=" << n;

    sc.ew_sub(a.data(), b.data(), o1.data(), n);
    vx.ew_sub(a.data(), b.data(), o2.data(), n);
    EXPECT_TRUE(bitwise_equal(o1, o2)) << "ew_sub n=" << n;

    sc.ew_mul(a.data(), b.data(), o1.data(), n);
    vx.ew_mul(a.data(), b.data(), o2.data(), n);
    EXPECT_TRUE(bitwise_equal(o1, o2)) << "ew_mul n=" << n;

    sc.ew_scale(a.data(), 0.37f, o1.data(), n);
    vx.ew_scale(a.data(), 0.37f, o2.data(), n);
    EXPECT_TRUE(bitwise_equal(o1, o2)) << "ew_scale n=" << n;

    auto i1 = a, i2 = a;
    sc.ew_add_inplace(i1.data(), b.data(), n);
    vx.ew_add_inplace(i2.data(), b.data(), n);
    EXPECT_TRUE(bitwise_equal(i1, i2)) << "ew_add_inplace n=" << n;

    i1 = a;
    i2 = a;
    sc.ew_axpy(i1.data(), -1.29f, b.data(), n);
    vx.ew_axpy(i2.data(), -1.29f, b.data(), n);
    EXPECT_TRUE(bitwise_equal(i1, i2)) << "ew_axpy n=" << n;
  }
}

TEST(KernelEquivalence, GatherScatterBitIdentical) {
  SKIP_WITHOUT_AVX2();
  const kernels::KernelTable& sc = kernels::scalar_table();
  const kernels::KernelTable& vx = kernels::avx2_table();
  Rng rng(11);
  for (std::size_t cols : {1u, 5u, 16u, 33u}) {
    const std::size_t src_rows = 40, n_idx = 70;
    const auto x = random_vec(src_rows * cols, rng);
    std::vector<std::uint32_t> idx(n_idx);
    for (auto& i : idx)
      i = static_cast<std::uint32_t>(rng.uniform() * src_rows) % src_rows;

    std::vector<float> g1(n_idx * cols), g2(n_idx * cols);
    sc.row_gather(x.data(), idx.data(), g1.data(), n_idx, cols);
    vx.row_gather(x.data(), idx.data(), g2.data(), n_idx, cols);
    EXPECT_TRUE(bitwise_equal(g1, g2)) << "row_gather cols=" << cols;

    // Scatter with colliding indices: accumulation order must match.
    std::vector<float> d1(src_rows * cols, 0.25f), d2(src_rows * cols, 0.25f);
    const auto src = random_vec(n_idx * cols, rng);
    sc.row_scatter_add(d1.data(), idx.data(), src.data(), n_idx, cols);
    vx.row_scatter_add(d2.data(), idx.data(), src.data(), n_idx, cols);
    EXPECT_TRUE(bitwise_equal(d1, d2)) << "row_scatter_add cols=" << cols;
  }
}

TEST(KernelEquivalence, ColwiseSumBitIdentical) {
  SKIP_WITHOUT_AVX2();
  Rng rng(13);
  for (std::size_t cols : {1u, 7u, 8u, 19u, 64u}) {
    const std::size_t rows = 37;
    const auto a = random_vec(rows * cols, rng);
    std::vector<float> o1(cols, 0.0f), o2(cols, 0.0f);
    kernels::scalar_table().colwise_sum(a.data(), o1.data(), rows, cols);
    kernels::avx2_table().colwise_sum(a.data(), o2.data(), rows, cols);
    EXPECT_TRUE(bitwise_equal(o1, o2)) << "colwise_sum cols=" << cols;
  }
}

TEST(KernelEquivalence, AdamUpdateBitIdentical) {
  SKIP_WITHOUT_AVX2();
  Rng rng(17);
  const kernels::AdamStep step{1e-3f, 0.9f,  0.999f, 1e-8f,
                               1e-2f, 10.0f, 1000.1f};
  for (std::size_t n : kSizes) {
    auto w1 = random_vec(n, rng);
    auto g = random_vec(n, rng);
    auto m1 = random_vec(n, rng, -0.1f, 0.1f);
    auto v1 = random_vec(n, rng, 0.0f, 0.1f);
    auto w2 = w1, m2 = m1, v2 = v1;
    kernels::scalar_table().adam_update(w1.data(), g.data(), m1.data(),
                                        v1.data(), n, step);
    kernels::avx2_table().adam_update(w2.data(), g.data(), m2.data(),
                                      v2.data(), n, step);
    EXPECT_TRUE(bitwise_equal(w1, w2)) << "adam w n=" << n;
    EXPECT_TRUE(bitwise_equal(m1, m2)) << "adam m n=" << n;
    EXPECT_TRUE(bitwise_equal(v1, v2)) << "adam v n=" << n;
  }
}

// ---------- ULP-bounded kernels ----------

TEST(KernelEquivalence, GemmFamilyClose) {
  SKIP_WITHOUT_AVX2();
  const kernels::KernelTable& sc = kernels::scalar_table();
  const kernels::KernelTable& vx = kernels::avx2_table();
  Rng rng(19);
  for (auto [m, k, n] : {std::tuple<std::size_t, std::size_t, std::size_t>{
                             3, 5, 7},
                         {16, 64, 32},
                         {33, 100, 17},
                         {1, 1, 1}}) {
    const auto a = random_vec(m * k, rng);
    const auto b = random_vec(k * n, rng);
    std::vector<float> c1(m * n, 0.0f), c2(m * n, 0.0f);
    sc.gemm(a.data(), b.data(), c1.data(), m, k, n);
    vx.gemm(a.data(), b.data(), c2.data(), m, k, n);
    expect_close(c1, c2, k, "gemm");

    const auto bt = random_vec(n * k, rng);
    std::vector<float> d1(m * n), d2(m * n);
    sc.gemm_nt(a.data(), bt.data(), d1.data(), m, k, n);
    vx.gemm_nt(a.data(), bt.data(), d2.data(), m, k, n);
    expect_close(d1, d2, k, "gemm_nt");

    const auto at = random_vec(k * m, rng);
    std::vector<float> e1(m * n, 0.0f), e2(m * n, 0.0f);
    sc.gemm_tn(at.data(), b.data(), e1.data(), m, k, n);
    vx.gemm_tn(at.data(), b.data(), e2.data(), m, k, n);
    expect_close(e1, e2, k, "gemm_tn");
  }
}

TEST(KernelEquivalence, SpmmClose) {
  SKIP_WITHOUT_AVX2();
  Rng rng(23);
  const std::size_t rows = 50, cols = 40, f = 17;
  std::vector<Triplet> trips;
  for (std::size_t i = 0; i < rows; ++i)
    for (std::size_t j = 0; j < cols; ++j)
      if (rng.uniform() < 0.15)
        trips.push_back({static_cast<std::uint32_t>(i),
                         static_cast<std::uint32_t>(j),
                         rng.uniform(-1.0f, 1.0f)});
  const CsrMatrix a = CsrMatrix::from_triplets(rows, cols, trips);
  const auto x = random_vec(cols * f, rng);
  std::vector<float> y1(rows * f, 0.0f), y2(rows * f, 0.0f);
  kernels::scalar_table().spmm(a.row_ptr().data(), a.col_idx().data(),
                               a.values().data(), x.data(), y1.data(), rows,
                               f);
  kernels::avx2_table().spmm(a.row_ptr().data(), a.col_idx().data(),
                             a.values().data(), x.data(), y2.data(), rows, f);
  expect_close(y1, y2, cols, "spmm");
}

TEST(KernelEquivalence, ReductionsAndLayerNormClose) {
  SKIP_WITHOUT_AVX2();
  const kernels::KernelTable& sc = kernels::scalar_table();
  const kernels::KernelTable& vx = kernels::avx2_table();
  Rng rng(29);
  for (std::size_t cols : {1u, 9u, 64u, 131u}) {
    const std::size_t rows = 23;
    const auto x = random_vec(rows * cols, rng);
    std::vector<float> r1(rows), r2(rows);
    sc.rowwise_sum(x.data(), r1.data(), rows, cols);
    vx.rowwise_sum(x.data(), r2.data(), rows, cols);
    expect_close(r1, r2, cols, "rowwise_sum");

    const auto gamma = random_vec(cols, rng, 0.5f, 1.5f);
    const auto beta = random_vec(cols, rng);
    std::vector<float> y1(rows * cols), y2(rows * cols);
    std::vector<float> xh1(rows * cols), xh2(rows * cols);
    std::vector<float> is1(rows), is2(rows);
    sc.layer_norm_fwd(x.data(), gamma.data(), beta.data(), y1.data(),
                      xh1.data(), is1.data(), rows, cols, 1e-5f);
    vx.layer_norm_fwd(x.data(), gamma.data(), beta.data(), y2.data(),
                      xh2.data(), is2.data(), rows, cols, 1e-5f);
    expect_close(y1, y2, cols, "layer_norm_fwd y");
    expect_close(is1, is2, cols, "layer_norm_fwd inv_std");

    const auto dy = random_vec(rows * cols, rng);
    std::vector<float> dx1(rows * cols), dx2(rows * cols);
    sc.layer_norm_bwd_dx(dy.data(), gamma.data(), xh1.data(), is1.data(),
                         dx1.data(), rows, cols);
    vx.layer_norm_bwd_dx(dy.data(), gamma.data(), xh2.data(), is2.data(),
                         dx2.data(), rows, cols);
    expect_close(dx1, dx2, cols, "layer_norm_bwd_dx");
  }
}

// ---------- gradcheck through each dispatch path ----------

/// The representative tape program: matmul + layer_norm + sigmoid +
/// mean_square touches gemm, gemm_nt/tn (backward), layer_norm fwd/bwd,
/// and the elementwise kernels.
GradcheckResult gradcheck_network() {
  Rng rng(31);
  Matrix x = Matrix::random_normal(6, 5, rng);
  Matrix w = Matrix::random_normal(5, 4, rng);
  Matrix gamma = Matrix::random_normal(1, 4, rng, 1.0f, 0.1f);
  Matrix beta = Matrix::random_normal(1, 4, rng, 0.0f, 0.1f);
  return gradcheck(
      [](const std::vector<Matrix>& in, std::vector<Matrix>* grads) {
        Tape tape;
        Var x = tape.leaf(in[0], true);
        Var w = tape.leaf(in[1], true);
        Var gamma = tape.leaf(in[2], true);
        Var beta = tape.leaf(in[3], true);
        Var h = tape.layer_norm(tape.matmul(x, w), gamma, beta, 1e-5f);
        Var loss = tape.mean_square(tape.sigmoid(h));
        const double v = loss.value()(0, 0);
        if (grads) {
          tape.backward(loss);
          grads->push_back(x.grad());
          grads->push_back(w.grad());
          grads->push_back(gamma.grad());
          grads->push_back(beta.grad());
        }
        return v;
      },
      {x, w, gamma, beta});
}

TEST(KernelGradcheck, ScalarPath) {
  const kernels::SimdMode before = kernels::mode();
  kernels::set_mode(kernels::SimdMode::kScalar);
  const auto result = gradcheck_network();
  kernels::set_mode(before);
  EXPECT_TRUE(result.passed) << "max abs err " << result.max_abs_error;
}

TEST(KernelGradcheck, Avx2Path) {
  SKIP_WITHOUT_AVX2();
  const kernels::SimdMode before = kernels::mode();
  kernels::set_mode(kernels::SimdMode::kAvx2);
  const auto result = gradcheck_network();
  kernels::set_mode(before);
  EXPECT_TRUE(result.passed) << "max abs err " << result.max_abs_error;
}

}  // namespace
}  // namespace trkx
