#include <gtest/gtest.h>

#include <cstdint>
#include <utility>
#include <vector>

#include "tensor/matrix.hpp"
#include "tensor/ops.hpp"
#include "tensor/plan.hpp"
#include "tensor/pool.hpp"

namespace trkx {
namespace {

/// Every test starts from a clean planner: no cached plans, zeroed
/// counters. (Arena byte accounting is left to the planner itself —
/// clear_thread_plans frees idle arenas.)
class MemPlanTest : public ::testing::Test {
 protected:
  void SetUp() override {
    MemoryPlanner::clear_thread_plans();
    MemoryPlanner::reset_stats();
    MemoryPlanner::set_enabled(true);
  }
  void TearDown() override {
    MemoryPlanner::clear_thread_plans();
    MemoryPlanner::set_enabled(true);
  }
};

/// A step-like workload: transient tensors born and released in scope.
/// Returns the data pointer of the largest transient so replays can be
/// checked for stable arena placement.
const float* run_step(std::uint64_t sig, std::size_t n) {
  MemoryPlanner::Scope scope(sig);
  Matrix a(n, n, 1.0f);
  Matrix b(n, n, 2.0f);
  Matrix c = add(a, b);
  Matrix d = hadamard(c, a);
  EXPECT_FLOAT_EQ(d(0, 0), 3.0f);
  return d.data();
}

TEST_F(MemPlanTest, FingerprintIsShapeSensitive) {
  const auto f1 = MemoryPlanner::fingerprint({64, 128, 3});
  const auto f2 = MemoryPlanner::fingerprint({64, 128, 4});
  const auto f3 = MemoryPlanner::fingerprint({64, 128, 3});
  EXPECT_NE(f1, f2);
  EXPECT_EQ(f1, f3);
}

TEST_F(MemPlanTest, RecordThenReplayServesFromArena) {
  const auto sig = MemoryPlanner::fingerprint({1});
  run_step(sig, 64);  // record
  EXPECT_EQ(MemoryPlanner::stats().plan_reuses, 0u);

  const float* p1 = run_step(sig, 64);  // first replay
  EXPECT_EQ(MemoryPlanner::stats().plan_reuses, 1u);
  EXPECT_GT(MemoryPlanner::stats().arena_bytes, 0u);

  const float* p2 = run_step(sig, 64);  // second replay
  EXPECT_EQ(MemoryPlanner::stats().plan_reuses, 2u);
  // Planned buffers live at fixed arena offsets: replays place the same
  // tensor at the same address, which a pool free list does not promise.
  EXPECT_EQ(p1, p2);
  EXPECT_EQ(MemoryPlanner::stats().replans, 0u);
}

TEST_F(MemPlanTest, ShapeChangeUnderSameSignatureFallsBack) {
  const auto sig = MemoryPlanner::fingerprint({2});
  run_step(sig, 48);  // record at 48x48
  run_step(sig, 48);  // replay cleanly
  EXPECT_EQ(MemoryPlanner::stats().plan_reuses, 1u);

  // Same signature, different shapes: the replay must detect the size
  // mismatch, retire the plan, and serve the step from the pool with
  // correct results.
  run_step(sig, 96);
  EXPECT_EQ(MemoryPlanner::stats().replans, 1u);
  EXPECT_EQ(MemoryPlanner::stats().plan_reuses, 1u);

  // The signature records fresh on next sight and replays again.
  run_step(sig, 96);
  run_step(sig, 96);
  EXPECT_EQ(MemoryPlanner::stats().plan_reuses, 2u);
}

TEST_F(MemPlanTest, EscapingTensorStaysPoolServed) {
  const auto sig = MemoryPlanner::fingerprint({3});
  Matrix kept;
  {
    MemoryPlanner::Scope scope(sig);
    Matrix tmp(32, 32, 1.0f);
    Matrix sq = hadamard(tmp, tmp);
    kept = std::move(sq);  // outlives the scope => escape
  }
  // Replay twice; the escaping buffer must come from the pool each time
  // (it outlives the plan), while transients go to the arena.
  std::vector<Matrix> survivors;
  for (int i = 0; i < 2; ++i) {
    MemoryPlanner::Scope scope(sig);
    Matrix tmp(32, 32, 2.0f);
    Matrix sq = hadamard(tmp, tmp);
    survivors.push_back(std::move(sq));
  }
  EXPECT_EQ(MemoryPlanner::stats().plan_reuses, 2u);
  EXPECT_FLOAT_EQ(kept(0, 0), 1.0f);
  for (const Matrix& m : survivors) EXPECT_FLOAT_EQ(m(0, 0), 4.0f);
  // Escaped buffers must remain valid and releasable after the plans
  // are dropped and their arenas freed.
  MemoryPlanner::clear_thread_plans();
  EXPECT_FLOAT_EQ(kept(31, 31), 1.0f);
  for (const Matrix& m : survivors) EXPECT_FLOAT_EQ(m(31, 31), 4.0f);
}

TEST_F(MemPlanTest, DisabledPlannerNeverPlans) {
  MemoryPlanner::set_enabled(false);
  const auto sig = MemoryPlanner::fingerprint({4});
  run_step(sig, 32);
  run_step(sig, 32);
  const auto stats = MemoryPlanner::stats();
  EXPECT_EQ(stats.plan_reuses, 0u);
  EXPECT_EQ(stats.replans, 0u);
}

TEST_F(MemPlanTest, NestedScopesAreInert) {
  const auto sig = MemoryPlanner::fingerprint({5});
  for (int i = 0; i < 3; ++i) {
    MemoryPlanner::Scope outer(sig);
    MemoryPlanner::Scope inner(MemoryPlanner::fingerprint({6}));  // inert
    Matrix a(16, 16, 1.0f);
    Matrix b = scale(a, 2.0f);
    EXPECT_FLOAT_EQ(b(0, 0), 2.0f);
  }
  // Only the outer signature ever planned: two clean replays.
  EXPECT_EQ(MemoryPlanner::stats().plan_reuses, 2u);
}

TEST_F(MemPlanTest, ClearThreadPlansReleasesArenas) {
  const auto sig = MemoryPlanner::fingerprint({7});
  run_step(sig, 64);
  run_step(sig, 64);
  EXPECT_GT(MemoryPlanner::stats().arena_bytes, 0u);
  MemoryPlanner::clear_thread_plans();
  EXPECT_EQ(MemoryPlanner::stats().arena_bytes, 0u);
}

TEST_F(MemPlanTest, PoolStillTracksItsOwnTraffic) {
  // Pool gauges must stay meaningful alongside the planner: pool-served
  // allocations still count hits/misses, and planner traffic does not
  // corrupt the pool's accounting.
  const auto sig = MemoryPlanner::fingerprint({8});
  TensorPool::reset_stats();
  run_step(sig, 64);
  run_step(sig, 64);
  const TensorPool::Stats pstats = TensorPool::stats();
  // The recording step at minimum went through the pool.
  EXPECT_GT(pstats.hits + pstats.misses, 0u);
}

}  // namespace
}  // namespace trkx
