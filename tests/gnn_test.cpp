#include <gtest/gtest.h>

#include <cmath>

#include "autograd/gradcheck.hpp"
#include "gnn/interaction_gnn.hpp"
#include "graph/generators.hpp"

namespace trkx {
namespace {

IgnnConfig tiny_config() {
  IgnnConfig cfg;
  cfg.node_input_dim = 3;
  cfg.edge_input_dim = 2;
  cfg.hidden_dim = 8;
  cfg.num_layers = 2;
  cfg.mlp_hidden = 1;
  cfg.layer_norm = false;
  return cfg;
}

TEST(IgnnTest, ForwardShapeIsEdgeLogits) {
  ParameterStore store;
  Rng rng(1);
  InteractionGnn gnn(store, tiny_config(), rng);
  Graph g = cycle_graph(6);
  Matrix x = Matrix::random_normal(6, 3, rng);
  Matrix y = Matrix::random_normal(6, 2, rng);
  TapeContext ctx;
  Var logits = gnn.forward(ctx, x, y, g);
  EXPECT_EQ(logits.rows(), 6u);
  EXPECT_EQ(logits.cols(), 1u);
  EXPECT_TRUE(logits.value().all_finite());
}

TEST(IgnnTest, PredictIsSigmoidOfLogits) {
  ParameterStore store;
  Rng rng(2);
  InteractionGnn gnn(store, tiny_config(), rng);
  Graph g = path_graph(5);
  Matrix x = Matrix::random_normal(5, 3, rng);
  Matrix y = Matrix::random_normal(4, 2, rng);
  const auto probs = gnn.predict(x, y, g);
  ASSERT_EQ(probs.size(), 4u);
  for (float p : probs) {
    EXPECT_GT(p, 0.0f);
    EXPECT_LT(p, 1.0f);
  }
  TapeContext ctx;
  Var logits = gnn.forward(ctx, x, y, g);
  for (std::size_t e = 0; e < 4; ++e) {
    const float z = logits.value()(e, 0);
    EXPECT_NEAR(probs[e], 1.0f / (1.0f + std::exp(-z)), 1e-5f);
  }
}

TEST(IgnnTest, ParameterCountScalesWithLayers) {
  Rng rng(3);
  IgnnConfig c1 = tiny_config();
  c1.num_layers = 2;
  ParameterStore s1;
  InteractionGnn g1(s1, c1, rng);
  IgnnConfig c2 = tiny_config();
  c2.num_layers = 4;
  ParameterStore s2;
  Rng rng2(3);
  InteractionGnn g2(s2, c2, rng2);
  EXPECT_GT(s2.count(), s1.count());
}

TEST(IgnnTest, SharedWeightsReduceParameters) {
  Rng rng(4);
  IgnnConfig base = tiny_config();
  base.num_layers = 6;
  ParameterStore s_distinct;
  InteractionGnn g_distinct(s_distinct, base, rng);
  IgnnConfig shared = base;
  shared.shared_weights = true;
  ParameterStore s_shared;
  Rng rng2(4);
  InteractionGnn g_shared(s_shared, shared, rng2);
  EXPECT_LT(s_shared.total_size(), s_distinct.total_size());
}

TEST(IgnnTest, ParameterGradientsMatchNumericOnTinyGraph) {
  // Real gradcheck: perturb one weight matrix of the classifier and
  // compare the analytic parameter gradient against finite differences.
  ParameterStore store;
  Rng rng(6);
  IgnnConfig cfg = tiny_config();
  cfg.hidden_dim = 4;
  cfg.num_layers = 1;
  cfg.mlp_hidden = 0;  // linear MLPs keep the check fast
  InteractionGnn gnn(store, cfg, rng);
  Graph g(3, {{0, 1}, {1, 2}});
  Matrix x = Matrix::random_normal(3, 3, rng, 0.0f, 0.5f);
  Matrix y = Matrix::random_normal(2, 2, rng, 0.0f, 0.5f);
  const std::vector<float> labels{1.0f, 0.0f};

  auto loss_value = [&]() {
    TapeContext ctx;
    Var logits = gnn.forward(ctx, x, y, g);
    Var loss = ctx.tape().bce_with_logits(logits, labels);
    return static_cast<double>(loss.value()(0, 0));
  };

  // Analytic gradients.
  store.zero_grad();
  {
    TapeContext ctx;
    Var logits = gnn.forward(ctx, x, y, g);
    Var loss = ctx.tape().bce_with_logits(logits, labels);
    ctx.backward(loss);
  }

  const float eps = 1e-3f;
  for (auto& p : store.params()) {
    // Spot-check a handful of coordinates per parameter.
    const std::size_t stride = std::max<std::size_t>(1, p.size() / 3);
    for (std::size_t i = 0; i < p.size(); i += stride) {
      const float orig = p.value.data()[i];
      p.value.data()[i] = orig + eps;
      const double fp = loss_value();
      p.value.data()[i] = orig - eps;
      const double fm = loss_value();
      p.value.data()[i] = orig;
      const double numeric = (fp - fm) / (2.0 * eps);
      EXPECT_NEAR(p.grad.data()[i], numeric, 5e-3 + 0.05 * std::fabs(numeric))
          << "param " << p.name << " index " << i;
    }
  }
}

TEST(IgnnTest, EdgePermutationEquivariance) {
  // Reordering the edge list permutes the logits identically.
  ParameterStore store;
  Rng rng(7);
  InteractionGnn gnn(store, tiny_config(), rng);
  Graph g(4, {{0, 1}, {1, 2}, {2, 3}, {0, 3}});
  Matrix x = Matrix::random_normal(4, 3, rng);
  Matrix y = Matrix::random_normal(4, 2, rng);
  TapeContext c1;
  Var l1 = gnn.forward(c1, x, y, g);

  Graph g2(4, {{2, 3}, {0, 1}, {0, 3}, {1, 2}});
  
  Matrix y2 = row_gather(y, {2, 0, 3, 1});
  TapeContext c2;
  Var l2 = gnn.forward(c2, x, y2, g2);
  // l2[0] corresponds to edge (2,3) = g edge 2, etc.
  EXPECT_NEAR(l2.value()(0, 0), l1.value()(2, 0), 1e-4f);
  EXPECT_NEAR(l2.value()(1, 0), l1.value()(0, 0), 1e-4f);
  EXPECT_NEAR(l2.value()(2, 0), l1.value()(3, 0), 1e-4f);
  EXPECT_NEAR(l2.value()(3, 0), l1.value()(1, 0), 1e-4f);
}

TEST(IgnnTest, DisjointComponentsAreIndependent) {
  // The logits of a component do not depend on other components — the
  // property ShaDow training relies on when batching components together.
  ParameterStore store;
  Rng rng(8);
  InteractionGnn gnn(store, tiny_config(), rng);
  Graph g1 = path_graph(4);
  Matrix x1 = Matrix::random_normal(4, 3, rng);
  Matrix y1 = Matrix::random_normal(3, 2, rng);
  TapeContext c1;
  Var solo = gnn.forward(c1, x1, y1, g1);

  // Same component plus an unrelated second component appended.
  Graph g2(7, {{0, 1}, {1, 2}, {2, 3}, {4, 5}, {5, 6}});
  Matrix x2(7, 3);
  for (std::size_t i = 0; i < 4; ++i)
    for (std::size_t j = 0; j < 3; ++j) x2(i, j) = x1(i, j);
  for (std::size_t i = 4; i < 7; ++i)
    for (std::size_t j = 0; j < 3; ++j)
      x2(i, j) = static_cast<float>(rng.normal());
  Matrix y2(5, 2);
  for (std::size_t i = 0; i < 3; ++i)
    for (std::size_t j = 0; j < 2; ++j) y2(i, j) = y1(i, j);
  for (std::size_t i = 3; i < 5; ++i)
    for (std::size_t j = 0; j < 2; ++j)
      y2(i, j) = static_cast<float>(rng.normal());
  TapeContext c2;
  Var joint = gnn.forward(c2, x2, y2, g2);
  for (std::size_t e = 0; e < 3; ++e)
    EXPECT_NEAR(joint.value()(e, 0), solo.value()(e, 0), 1e-4f);
}

TEST(IgnnTest, ActivationEstimateGrowsWithGraph) {
  IgnnConfig cfg = tiny_config();
  const std::size_t small = ignn_activation_estimate(cfg, 100, 300);
  const std::size_t large = ignn_activation_estimate(cfg, 1000, 3000);
  EXPECT_GT(large, small * 9);
  cfg.num_layers *= 2;
  EXPECT_GT(ignn_activation_estimate(cfg, 100, 300), small);
}

TEST(IgnnTest, AttentionGatingChangesOutputsAndAddsParams) {
  Rng rng(11);
  IgnnConfig plain = tiny_config();
  IgnnConfig gated = tiny_config();
  gated.attention = true;
  ParameterStore s_plain, s_gated;
  Rng r1(11), r2(11);
  InteractionGnn g_plain(s_plain, plain, r1);
  InteractionGnn g_gated(s_gated, gated, r2);
  EXPECT_GT(s_gated.count(), s_plain.count());

  Graph g = cycle_graph(6);
  Matrix x = Matrix::random_normal(6, 3, rng);
  Matrix y = Matrix::random_normal(6, 2, rng);
  const auto p1 = g_plain.predict(x, y, g);
  const auto p2 = g_gated.predict(x, y, g);
  bool differ = false;
  for (std::size_t i = 0; i < p1.size(); ++i)
    if (std::fabs(p1[i] - p2[i]) > 1e-6f) differ = true;
  EXPECT_TRUE(differ);
}

TEST(IgnnTest, AttentionGradientsMatchNumeric) {
  ParameterStore store;
  Rng rng(12);
  IgnnConfig cfg = tiny_config();
  cfg.hidden_dim = 4;
  cfg.num_layers = 1;
  cfg.mlp_hidden = 0;
  cfg.attention = true;
  InteractionGnn gnn(store, cfg, rng);
  Graph g(3, {{0, 1}, {1, 2}});
  Matrix x = Matrix::random_normal(3, 3, rng, 0.0f, 0.5f);
  Matrix y = Matrix::random_normal(2, 2, rng, 0.0f, 0.5f);
  const std::vector<float> labels{1.0f, 0.0f};
  auto loss_value = [&]() {
    TapeContext ctx;
    Var logits = gnn.forward(ctx, x, y, g);
    Var loss = ctx.tape().bce_with_logits(logits, labels);
    return static_cast<double>(loss.value()(0, 0));
  };
  store.zero_grad();
  {
    TapeContext ctx;
    Var logits = gnn.forward(ctx, x, y, g);
    Var loss = ctx.tape().bce_with_logits(logits, labels);
    ctx.backward(loss);
  }
  const float eps = 1e-3f;
  for (auto& p : store.params()) {
    const std::size_t stride = std::max<std::size_t>(1, p.size() / 2);
    for (std::size_t i = 0; i < p.size(); i += stride) {
      const float orig = p.value.data()[i];
      p.value.data()[i] = orig + eps;
      const double fp = loss_value();
      p.value.data()[i] = orig - eps;
      const double fm = loss_value();
      p.value.data()[i] = orig;
      const double numeric = (fp - fm) / (2.0 * eps);
      EXPECT_NEAR(p.grad.data()[i], numeric, 5e-3 + 0.05 * std::fabs(numeric))
          << "param " << p.name << " index " << i;
    }
  }
}

TEST(IgnnTest, InvalidConfigThrows) {
  ParameterStore store;
  Rng rng(9);
  IgnnConfig cfg = tiny_config();
  cfg.node_input_dim = 0;
  EXPECT_THROW(InteractionGnn(store, cfg, rng), Error);
}

TEST(IgnnTest, WrongFeatureWidthThrows) {
  ParameterStore store;
  Rng rng(10);
  InteractionGnn gnn(store, tiny_config(), rng);
  Graph g = path_graph(3);
  TapeContext ctx;
  EXPECT_THROW(
      gnn.forward(ctx, Matrix(3, 5), Matrix(2, 2), g), Error);
}

}  // namespace
}  // namespace trkx
