#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <future>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "detector/generator.hpp"
#include "nn/optimizer.hpp"
#include "pipeline/checkpoint.hpp"
#include "serve/server.hpp"
#include "util/fault.hpp"
#include "util/rng.hpp"

namespace trkx {
namespace {

namespace fs = std::filesystem;

/// Serving-layer suite (ctest labels: chaos, tsan-stress). One tiny
/// learned-graph pipeline is trained once per binary; each test that needs
/// a warm replica reconstructs a pipeline from the saved bytes (cheap)
/// instead of re-training. Fault-site tests arm the global registry
/// explicitly and disarm it again, chaos_test-style.
class ServeTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    DetectorConfig detector;
    detector.mean_particles = 8;
    detector.noise_fraction = 0.05;
    Rng rng(23);
    std::vector<Event> train;
    for (int i = 0; i < 2; ++i) {
      Rng er = rng.split();
      train.push_back(generate_event(detector, er));
    }
    for (int i = 0; i < 3; ++i) {
      Rng er = rng.split();
      payloads_.push_back(generate_event(detector, er));
    }
    cfg_.embedding.epochs = 2;
    cfg_.frnn.radius = 0.6f;
    cfg_.filter.epochs = 2;
    cfg_.gnn.hidden_dim = 8;
    cfg_.gnn.num_layers = 1;
    cfg_.gnn.mlp_hidden = 1;
    cfg_.gnn_train.epochs = 1;
    cfg_.gnn_train.batch_size = 64;
    cfg_.gnn_train.shadow = {.depth = 2, .fanout = 3};
    cfg_.gnn_train.evaluate_every_epoch = false;
    cfg_.use_learned_graphs = true;
    node_dim_ = train[0].node_features.cols();
    edge_dim_ = train[0].edge_features.cols();
    TrackingPipeline pipeline(node_dim_, edge_dim_, cfg_);
    pipeline.fit(train, {train.back()});
    std::ostringstream os;
    pipeline.save(os);
    model_bytes_ = os.str();
  }
  static void TearDownTestSuite() {
    payloads_.clear();
    model_bytes_.clear();
  }

  void SetUp() override { fault::Registry::global().clear(); }
  void TearDown() override { fault::Registry::global().clear(); }

  static std::unique_ptr<TrackingPipeline> make_pipeline() {
    auto p = std::make_unique<TrackingPipeline>(node_dim_, edge_dim_, cfg_);
    std::istringstream is(model_bytes_);
    p->load(is);
    return p;
  }

  static std::unique_ptr<serve::ReplicaSet> make_replicas() {
    auto replicas =
        std::make_unique<serve::ReplicaSet>(node_dim_, edge_dim_, cfg_);
    replicas->install(make_pipeline(), "warm");
    return replicas;
  }

  /// Write one valid checkpoint (epoch cursor `epoch`) into `dir`.
  static std::string write_ckpt(const fs::path& dir, std::uint64_t epoch) {
    auto p = make_pipeline();
    Adam opt(p->gnn().store, AdamOptions{});
    const std::string path = checkpoint_path(dir.string(), epoch);
    write_checkpoint(path, TrainCheckpointState{}, p->gnn().store, opt);
    return path;
  }

  static fs::path fresh_dir(const std::string& tag) {
    const fs::path dir = fs::temp_directory_path() / ("trkx_serve_" + tag);
    fs::remove_all(dir);
    fs::create_directories(dir);
    return dir;
  }

  static PipelineConfig cfg_;
  static std::size_t node_dim_, edge_dim_;
  static std::vector<Event> payloads_;
  static std::string model_bytes_;
};

PipelineConfig ServeTest::cfg_;
std::size_t ServeTest::node_dim_ = 0;
std::size_t ServeTest::edge_dim_ = 0;
std::vector<Event> ServeTest::payloads_;
std::string ServeTest::model_bytes_;

// ---------------------------------------------------------------------------
// Deadline semantics.

TEST_F(ServeTest, DeadlineUnboundedByDefault) {
  serve::Deadline d;
  EXPECT_FALSE(d.bounded());
  EXPECT_FALSE(d.expired());
  EXPECT_EQ(d.overshoot_ms(), 0.0);
  // after_ms(0) means "no budget", matching TRKX_SERVE_DEADLINE_MS=0.
  EXPECT_FALSE(serve::Deadline::after_ms(0).bounded());
  EXPECT_TRUE(serve::Deadline::after_ms(5).bounded());
}

TEST_F(ServeTest, DeadlineExpiresAndReportsOvershoot) {
  const auto past =
      serve::Deadline::Clock::now() - std::chrono::milliseconds(5);
  serve::Deadline d = serve::Deadline::at(past);
  EXPECT_TRUE(d.expired());
  EXPECT_GT(d.overshoot_ms(), 0.0);
  EXPECT_FALSE(serve::Deadline::after_ms(60'000).expired());
}

// ---------------------------------------------------------------------------
// AdmissionQueue: bounded, typed rejection, priority lanes, shed, close.

serve::Request make_request(std::uint64_t id, serve::Priority prio) {
  return serve::Request(id, prio, serve::Deadline{}, Event{});
}

TEST_F(ServeTest, QueueRejectsWhenFullWithTypedError) {
  serve::AdmissionQueue q(2);
  q.push(make_request(1, serve::Priority::kNormal));
  q.push(make_request(2, serve::Priority::kNormal));
  EXPECT_EQ(q.depth(), 2u);
  EXPECT_EQ(q.occupancy(), 1.0);
  EXPECT_THROW(q.push(make_request(3, serve::Priority::kNormal)),
               serve::OverloadError);
  EXPECT_EQ(q.depth(), 2u);  // the rejected request was not enqueued
}

TEST_F(ServeTest, QueuePopsHighestPriorityFirstFifoWithin) {
  serve::AdmissionQueue q(8);
  q.push(make_request(1, serve::Priority::kLow));
  q.push(make_request(2, serve::Priority::kNormal));
  q.push(make_request(3, serve::Priority::kHigh));
  q.push(make_request(4, serve::Priority::kHigh));
  std::vector<std::uint64_t> order;
  for (int i = 0; i < 4; ++i) order.push_back(q.pop(100)->id);
  EXPECT_EQ(order, (std::vector<std::uint64_t>{3, 4, 2, 1}));
  EXPECT_FALSE(q.pop(1).has_value());  // empty: timeout, not a hang
}

TEST_F(ServeTest, QueueShedFailsPromisesOldestFirst) {
  serve::AdmissionQueue q(8);
  serve::Request low = make_request(1, serve::Priority::kLow);
  std::future<serve::ServeResult> low_future = low.result.get_future();
  q.push(std::move(low));
  q.push(make_request(2, serve::Priority::kHigh));
  EXPECT_EQ(q.shed(serve::Priority::kLow, 8), 1u);
  EXPECT_THROW(low_future.get(), serve::OverloadError);
  EXPECT_EQ(q.depth(), 1u);  // the kHigh request survived the shed
  EXPECT_EQ(q.pop(100)->id, 2u);
}

TEST_F(ServeTest, QueueCloseRejectsPushesAndDrains) {
  serve::AdmissionQueue q(4);
  q.push(make_request(1, serve::Priority::kNormal));
  q.close();
  EXPECT_TRUE(q.closed());
  EXPECT_THROW(q.push(make_request(2, serve::Priority::kNormal)),
               serve::ServerStoppedError);
  EXPECT_EQ(q.pop(0)->id, 1u);        // queued work stays poppable
  EXPECT_FALSE(q.pop(0).has_value()); // closed + drained: immediate nullopt
}

// ---------------------------------------------------------------------------
// DegradeController: hysteresis ladder + stage-plan mapping.

TEST_F(ServeTest, DegradeLadderEscalatesAndRecoversWithHysteresis) {
  serve::DegradeConfig cfg;
  cfg.high = 0.8;
  cfg.low = 0.2;
  cfg.ewma_alpha = 1.0;  // no smoothing: the test drives raw occupancy
  cfg.sustain = 2;
  serve::DegradeController ladder(cfg);
  EXPECT_EQ(ladder.update(0.9), 0);  // one reading is not sustained
  EXPECT_EQ(ladder.update(0.9), 1);  // second consecutive: escalate
  EXPECT_EQ(ladder.update(0.9), 1);  // counter reset: needs 2 more
  EXPECT_EQ(ladder.update(0.9), 2);
  EXPECT_EQ(ladder.update(0.5), 2);  // mid-band: no movement either way
  EXPECT_EQ(ladder.update(0.1), 2);
  EXPECT_EQ(ladder.update(0.1), 1);  // sustained low: step back down
  EXPECT_EQ(ladder.transitions(), 3u);
}

TEST_F(ServeTest, DegradePlanMapsLevelsToStageChanges) {
  serve::DegradeConfig cfg;
  cfg.high = 0.5;
  cfg.low = 0.1;
  cfg.ewma_alpha = 1.0;
  cfg.sustain = 1;
  cfg.coarse_filter_scale = 4.0f;
  serve::DegradeController ladder(cfg);
  EXPECT_FALSE(ladder.plan().shed_low);
  ladder.update(1.0);  // -> 1: shed-low
  serve::StagePlan p1 = ladder.plan();
  EXPECT_TRUE(p1.shed_low);
  EXPECT_FALSE(p1.skip_fit);
  ladder.update(1.0);  // -> 2: + skip-fit
  EXPECT_TRUE(ladder.plan().skip_fit);
  EXPECT_EQ(ladder.plan().filter_threshold_scale, 1.0f);
  ladder.update(1.0);  // -> 3: + coarse filter
  serve::StagePlan p3 = ladder.plan();
  EXPECT_EQ(p3.level, 3);
  EXPECT_EQ(p3.filter_threshold_scale, 4.0f);
  ladder.update(1.0);  // max_level: no further escalation
  EXPECT_EQ(ladder.level(), 3);
}

// ---------------------------------------------------------------------------
// ServeServer end-to-end.

TEST_F(ServeTest, ServesRequestsEndToEnd) {
  auto replicas = make_replicas();
  serve::ServeConfig cfg;
  cfg.workers = 2;
  cfg.queue_depth = 8;
  serve::ServeServer server(*replicas, cfg);
  const serve::ServeCounters before = server.counters();
  server.start();
  std::vector<std::future<serve::ServeResult>> futures;
  for (const Event& e : payloads_)
    futures.push_back(server.submit(e, serve::Priority::kNormal));
  for (auto& f : futures) {
    const serve::ServeResult r = f.get();
    EXPECT_GT(r.tracks.size(), 0u);
    EXPECT_FALSE(r.fit_skipped);
    EXPECT_EQ(r.degrade_level, 0);
    EXPECT_EQ(r.replica_generation, 1u);
    EXPECT_EQ(r.retries, 0u);
    EXPECT_GT(r.latency_seconds, 0.0);
    EXPECT_GE(r.latency_seconds, r.total_seconds());  // includes queue wait
  }
  server.stop();
  const serve::ServeCounters after = server.counters();
  EXPECT_EQ(after.accepted - before.accepted, payloads_.size());
  EXPECT_EQ(after.completed - before.completed, payloads_.size());
  EXPECT_EQ(after.failed, before.failed);
}

TEST_F(ServeTest, SubmitOnStoppedServerThrowsTyped) {
  auto replicas = make_replicas();
  serve::ServeConfig cfg;
  cfg.workers = 1;
  serve::ServeServer server(*replicas, cfg);
  // Never started:
  EXPECT_THROW(server.submit(payloads_[0], serve::Priority::kNormal),
               serve::ServerStoppedError);
  server.start();
  server.stop();
  EXPECT_THROW(server.submit(payloads_[0], serve::Priority::kNormal),
               serve::ServerStoppedError);
}

TEST_F(ServeTest, BackpressureRejectsBurstBeyondQueue) {
  // One worker pinned down by a delay fault + a depth-2 queue: a burst of
  // submits must get fast OverloadError rejections, not unbounded queueing.
  fault::Registry::global().arm_from_string("serve.stage:delay:every=1:ms=40");
  auto replicas = make_replicas();
  serve::ServeConfig cfg;
  cfg.workers = 1;
  cfg.queue_depth = 2;
  serve::ServeServer server(*replicas, cfg);
  const serve::ServeCounters before = server.counters();
  server.start();
  std::vector<std::future<serve::ServeResult>> futures;
  std::size_t rejected = 0;
  for (int i = 0; i < 10; ++i) {
    try {
      futures.push_back(
          server.submit(payloads_[static_cast<std::size_t>(i) %
                                  payloads_.size()],
                        serve::Priority::kNormal));
    } catch (const serve::OverloadError&) {
      ++rejected;
    }
  }
  EXPECT_GT(rejected, 0u);
  for (auto& f : futures) EXPECT_NO_THROW(f.get());  // accepted work finishes
  server.stop();
  const serve::ServeCounters after = server.counters();
  EXPECT_EQ(after.rejected_queue_full - before.rejected_queue_full, rejected);
  EXPECT_EQ(after.accepted - before.accepted, futures.size());
}

TEST_F(ServeTest, PreExpiredDeadlineAbandonedInQueue) {
  auto replicas = make_replicas();
  serve::ServeConfig cfg;
  cfg.workers = 1;
  serve::ServeServer server(*replicas, cfg);
  const serve::ServeCounters before = server.counters();
  server.start();
  auto f = server.submit(payloads_[0], serve::Priority::kNormal,
                         serve::Deadline::at(serve::Deadline::Clock::now()));
  EXPECT_THROW(f.get(), serve::DeadlineExceededError);
  server.stop();
  const serve::ServeCounters after = server.counters();
  EXPECT_GE(after.deadline_expired - before.deadline_expired, 1u);
  EXPECT_GE(after.failed - before.failed, 1u);
}

TEST_F(ServeTest, DeadlineAbandonmentBetweenStagesChaos) {
  // Every stage attempt sleeps 30 ms against a 5 ms budget: the request
  // must be abandoned at an inter-stage check with the typed error — the
  // worker survives to serve the next (unbounded) request.
  fault::Registry::global().arm_from_string("serve.stage:delay:every=1:ms=30");
  auto replicas = make_replicas();
  serve::ServeConfig cfg;
  cfg.workers = 1;
  serve::ServeServer server(*replicas, cfg);
  server.start();
  auto doomed = server.submit(payloads_[0], serve::Priority::kNormal,
                              serve::Deadline::after_ms(5));
  EXPECT_THROW(doomed.get(), serve::DeadlineExceededError);
  fault::Registry::global().clear();
  auto fine = server.submit(payloads_[1], serve::Priority::kNormal);
  EXPECT_NO_THROW(fine.get());
  server.stop();
}

TEST_F(ServeTest, StageFaultRetriedThenSucceedsChaos) {
  fault::Registry::global().arm_from_string("serve.stage:error:nth=1");
  auto replicas = make_replicas();
  serve::ServeConfig cfg;
  cfg.workers = 1;
  cfg.retry_budget = 1;
  serve::ServeServer server(*replicas, cfg);
  const serve::ServeCounters before = server.counters();
  server.start();
  const serve::ServeResult r =
      server.submit(payloads_[0], serve::Priority::kNormal).get();
  EXPECT_EQ(r.retries, 1u);
  EXPECT_GT(r.tracks.size(), 0u);
  server.stop();
  const serve::ServeCounters after = server.counters();
  EXPECT_EQ(after.retries - before.retries, 1u);
  EXPECT_EQ(after.retries_exhausted, before.retries_exhausted);
}

TEST_F(ServeTest, PersistentStageFaultExhaustsRetriesChaos) {
  fault::Registry::global().arm_from_string("serve.stage:error:every=1");
  auto replicas = make_replicas();
  serve::ServeConfig cfg;
  cfg.workers = 1;
  cfg.retry_budget = 2;
  serve::ServeServer server(*replicas, cfg);
  const serve::ServeCounters before = server.counters();
  server.start();
  auto f = server.submit(payloads_[0], serve::Priority::kNormal);
  EXPECT_THROW(f.get(), serve::RetryExhaustedError);
  // The worker absorbed the failure; the server still serves fault-free
  // requests afterwards.
  fault::Registry::global().clear();
  EXPECT_NO_THROW(server.submit(payloads_[1], serve::Priority::kNormal).get());
  server.stop();
  const serve::ServeCounters after = server.counters();
  EXPECT_EQ(after.retries - before.retries, 2u);  // budget fully spent
  EXPECT_GE(after.retries_exhausted - before.retries_exhausted, 1u);
  EXPECT_GE(after.failed - before.failed, 1u);
}

TEST_F(ServeTest, SlowStageTimesOutChaos) {
  // 30 ms injected stage delay against a 5 ms per-stage budget with no
  // retries: the attempt "succeeds" but blows its budget -> typed
  // StageTimeoutError (the post-hoc timeout treats it as a failed attempt).
  fault::Registry::global().arm_from_string("serve.stage:delay:nth=1:ms=30");
  auto replicas = make_replicas();
  serve::ServeConfig cfg;
  cfg.workers = 1;
  cfg.retry_budget = 0;
  cfg.stage_timeout_ms = 5;
  serve::ServeServer server(*replicas, cfg);
  const serve::ServeCounters before = server.counters();
  server.start();
  auto f = server.submit(payloads_[0], serve::Priority::kNormal);
  EXPECT_THROW(f.get(), serve::StageTimeoutError);
  server.stop();
  const serve::ServeCounters after = server.counters();
  EXPECT_GE(after.stage_timeouts - before.stage_timeouts, 1u);
}

TEST_F(ServeTest, AdmitFaultIsFastTypedRejectionChaos) {
  fault::Registry::global().arm_from_string("serve.admit:error:nth=1");
  auto replicas = make_replicas();
  serve::ServeConfig cfg;
  cfg.workers = 1;
  serve::ServeServer server(*replicas, cfg);
  const serve::ServeCounters before = server.counters();
  server.start();
  EXPECT_THROW(server.submit(payloads_[0], serve::Priority::kNormal),
               serve::OverloadError);
  // nth=1 consumed: the very next submit is admitted and served.
  EXPECT_NO_THROW(server.submit(payloads_[0], serve::Priority::kNormal).get());
  server.stop();
  const serve::ServeCounters after = server.counters();
  EXPECT_EQ(after.rejected_admit_fault - before.rejected_admit_fault, 1u);
}

TEST_F(ServeTest, DegradationLadderShedsLowAndSkipsFit) {
  // sustain=1 + high=0 makes every submit escalate one level, so the
  // ladder walks normal -> shed-low -> skip-fit deterministically without
  // needing real sustained overload in a unit test.
  auto replicas = make_replicas();
  serve::ServeConfig cfg;
  cfg.workers = 1;
  cfg.queue_depth = 8;
  cfg.degrade.high = 0.0;
  cfg.degrade.low = -1.0;
  cfg.degrade.ewma_alpha = 1.0;
  cfg.degrade.sustain = 1;
  serve::ServeServer server(*replicas, cfg);
  const serve::ServeCounters before = server.counters();
  server.start();
  // Two submits: level goes 1 then 2 (admission updates the ladder).
  auto f1 = server.submit(payloads_[0], serve::Priority::kNormal);
  auto f2 = server.submit(payloads_[1], serve::Priority::kNormal);
  EXPECT_NO_THROW(f1.get());
  const serve::ServeResult r2 = f2.get();
  EXPECT_GE(server.degrade_level(), 1);
  EXPECT_GE(server.degrade_transitions(), 1u);
  // At level >= 1 low-priority admission is shed with a typed error.
  EXPECT_THROW(server.submit(payloads_[0], serve::Priority::kLow),
               serve::OverloadError);
  // By the second request the plan was at skip-fit: tracks, no fits.
  EXPECT_TRUE(r2.fit_skipped);
  EXPECT_TRUE(r2.fits.empty());
  EXPECT_GT(r2.tracks.size(), 0u);
  server.stop();
  const serve::ServeCounters after = server.counters();
  EXPECT_GE(after.rejected_shed_low - before.rejected_shed_low, 1u);
  EXPECT_GE(after.fit_skipped - before.fit_skipped, 1u);
}

// ---------------------------------------------------------------------------
// Replica reload: atomic swap, corrupt-checkpoint survival, fault site.

TEST_F(ServeTest, ReloadSwapsGenerationFromValidCheckpoint) {
  const fs::path dir = fresh_dir("reload_ok");
  const std::string path = write_ckpt(dir, 1);
  auto replicas = make_replicas();
  EXPECT_EQ(replicas->generation(), 1u);
  EXPECT_TRUE(replicas->reload_from_checkpoint_file(path));
  EXPECT_EQ(replicas->generation(), 2u);
  EXPECT_EQ(replicas->reloads_ok(), 1u);
  EXPECT_EQ(replicas->acquire()->source, path);
  fs::remove_all(dir);
}

TEST_F(ServeTest, CorruptCheckpointKeepsOldReplicaServing) {
  const fs::path dir = fresh_dir("reload_corrupt");
  const fs::path bad = dir / "ckpt-0000000007.ckpt";
  std::ofstream(bad.string(), std::ios::binary) << "not a checkpoint";
  auto replicas = make_replicas();
  const auto old = replicas->acquire();
  EXPECT_FALSE(replicas->reload_from_checkpoint_file(bad.string()));
  EXPECT_EQ(replicas->generation(), 1u);
  EXPECT_EQ(replicas->reloads_failed(), 1u);
  EXPECT_EQ(replicas->acquire().get(), old.get());  // same replica object
  // Directory scan: the torn "newest" file is skipped and the older valid
  // checkpoint swaps in — a torn write costs nothing but the scan.
  write_ckpt(dir, 3);
  EXPECT_TRUE(replicas->reload_from_checkpoint_dir(dir.string()));
  EXPECT_EQ(replicas->generation(), 2u);
  fs::remove_all(dir);
}

TEST_F(ServeTest, ReloadFaultSiteKeepsOldReplicaChaos) {
  const fs::path dir = fresh_dir("reload_fault");
  const std::string path = write_ckpt(dir, 1);
  fault::Registry::global().arm_from_string(
      "serve.checkpoint_reload:error:nth=1");
  auto replicas = make_replicas();
  EXPECT_FALSE(replicas->reload_from_checkpoint_file(path));
  EXPECT_EQ(replicas->generation(), 1u);
  EXPECT_EQ(replicas->reloads_failed(), 1u);
  // The fault was one-shot: the retried reload succeeds.
  EXPECT_TRUE(replicas->reload_from_checkpoint_file(path));
  EXPECT_EQ(replicas->generation(), 2u);
  fs::remove_all(dir);
}

TEST_F(ServeTest, ReloadWhileServingKeepsEveryRequestValid) {
  // tsan-stress: requests and reloads race; every future must resolve to
  // a result from *some* complete replica (generation 1..N), never crash.
  const fs::path dir = fresh_dir("reload_race");
  const std::string path = write_ckpt(dir, 1);
  auto replicas = make_replicas();
  serve::ServeConfig cfg;
  cfg.workers = 2;
  cfg.queue_depth = 8;
  serve::ServeServer server(*replicas, cfg);
  server.start();
  std::atomic<bool> done{false};
  std::thread reloader([&] {
    while (!done.load()) {
      ASSERT_TRUE(replicas->reload_from_checkpoint_file(path));
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  });
  std::size_t served = 0;
  for (int i = 0; i < 24; ++i) {
    try {
      const serve::ServeResult r =
          server.submit(payloads_[static_cast<std::size_t>(i) %
                                  payloads_.size()],
                        serve::Priority::kNormal)
              .get();
      EXPECT_GE(r.replica_generation, 1u);
      ++served;
    } catch (const serve::OverloadError&) {
      // acceptable under racing load on a small queue
    }
  }
  done.store(true);
  reloader.join();
  server.stop();
  EXPECT_GT(served, 0u);
  EXPECT_GT(replicas->generation(), 1u);
  fs::remove_all(dir);
}

}  // namespace
}  // namespace trkx
