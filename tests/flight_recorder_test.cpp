// Tests for the performance flight recorder (src/obs): RunManifest
// provenance stamps, manifest embedding in the metrics / trace exports,
// and the MetricsSnapshotter time-series JSONL stream.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>

#include "obs/manifest.hpp"
#include "obs/metrics.hpp"
#include "obs/snapshot.hpp"
#include "obs/trace.hpp"
#include "util/error.hpp"

namespace trkx {
namespace {

// ---------- run manifest ----------

TEST(RunManifest, CollectFillsEnvironment) {
  const RunManifest m = RunManifest::collect("flight_test");
  EXPECT_EQ(m.schema, "trkx-manifest-v1");
  EXPECT_EQ(m.tool, "flight_test");
  EXPECT_FALSE(m.git_sha.empty());
  EXPECT_FALSE(m.compiler.empty());
  EXPECT_GE(m.hardware_threads, 1);
  EXPECT_GE(m.omp_max_threads, 1);
  EXPECT_GT(m.unix_time_s, 0u);
}

TEST(RunManifest, JsonCarriesEveryField) {
  RunManifest m = RunManifest::collect("flight_json");
  m.config_fingerprint = 0xabcdefu;
  const std::string json = m.to_json();
  for (const char* key :
       {"\"schema\"", "\"tool\"", "\"git_sha\"", "\"build_type\"",
        "\"compiler\"", "\"hostname\"", "\"hardware_threads\"",
        "\"omp_max_threads\"", "\"tracing_compiled\"", "\"unix_time_s\"",
        "\"config_fingerprint\""}) {
    EXPECT_NE(json.find(key), std::string::npos) << key;
  }
  EXPECT_NE(json.find("trkx-manifest-v1"), std::string::npos);
}

TEST(RunManifest, ToolAndFingerprintGlobalsRoundTrip) {
  set_run_tool("flight_tool");
  set_run_fingerprint(42);
  EXPECT_EQ(run_tool(), "flight_tool");
  EXPECT_EQ(run_fingerprint(), 42u);
  const RunManifest m = RunManifest::collect();
  EXPECT_EQ(m.tool, "flight_tool");
  EXPECT_EQ(m.config_fingerprint, 42u);
  set_run_fingerprint(0);
}

TEST(RunManifest, MetricsJsonEmbedsManifest) {
  metrics().counter("test.flight.json_count").add(3);
  std::ostringstream os;
  metrics().write_json(os, /*with_manifest=*/true);
  const std::string json = os.str();
  EXPECT_NE(json.find("\"manifest\""), std::string::npos);
  EXPECT_NE(json.find("trkx-manifest-v1"), std::string::npos);
  EXPECT_NE(json.find("test.flight.json_count"), std::string::npos);
}

TEST(RunManifest, TraceExportEmbedsManifest) {
  TraceSession& s = TraceSession::global();
  s.clear();
  s.start();
  {
    TRKX_TRACE_SPAN("test.flight.span");
  }
  s.stop();
  std::ostringstream os;
  s.write_json(os);
  const std::string json = os.str();
  EXPECT_NE(json.find("\"metadata\""), std::string::npos);
  EXPECT_NE(json.find("\"manifest\""), std::string::npos);
  EXPECT_NE(json.find("trkx-manifest-v1"), std::string::npos);
  s.clear();
}

// ---------- time-series snapshotter ----------

TEST(Snapshotter, SampleLineHasAllSections) {
  metrics().counter("test.flight.events").add(5);
  metrics().gauge("test.flight.gauge").set(1.5);
  Histogram& h = metrics().histogram("test.flight.hist");
  h.reset();
  for (int i = 1; i <= 10; ++i) h.observe(i * 0.01);

  MetricsSnapshotter snap;
  std::ostringstream os;
  snap.sample_to(os);
  const std::string line = os.str();
  // One JSONL line per sample: exactly one trailing newline.
  EXPECT_EQ(std::count(line.begin(), line.end(), '\n'), 1);
  for (const char* key : {"\"t_ms\"", "\"counters\"", "\"gauges\"",
                          "\"rates\"", "\"histograms\""}) {
    EXPECT_NE(line.find(key), std::string::npos) << key;
  }
  EXPECT_NE(line.find("test.flight.events"), std::string::npos);
  EXPECT_NE(line.find("test.flight.gauge"), std::string::npos);
  EXPECT_NE(line.find("\"p50\""), std::string::npos);
  EXPECT_NE(line.find("\"p95\""), std::string::npos);
  EXPECT_NE(line.find("\"p99\""), std::string::npos);
}

TEST(Snapshotter, SecondSampleDerivesRates) {
  MetricsSnapshotter snap;
  // The counter must exist before the warmup tick: rates are derived
  // only for counters with a previous-tick value.
  Counter& c = metrics().counter("test.flight.rate_src");
  std::ostringstream warmup;
  snap.sample_to(warmup);  // establishes the previous-tick counter values
  c.add(1000);
  std::ostringstream os;
  snap.sample_to(os);
  const std::string line = os.str();
  const std::size_t rates = line.find("\"rates\"");
  ASSERT_NE(rates, std::string::npos);
  // The bumped counter must appear inside the rates object with a
  // non-zero value (1000 events over a ~microsecond tick).
  const std::size_t pos = line.find("\"test.flight.rate_src\"", rates);
  EXPECT_NE(pos, std::string::npos);
}

TEST(Snapshotter, ProcessGaugesPopulated) {
  MetricsSnapshotter::sample_process_gauges();
  const MetricsRegistry::Dump dump = metrics().dump();
  double rss = -1.0;
  double peak = -1.0;
  for (const auto& [name, v] : dump.gauges) {
    if (name == "process.rss_bytes") rss = v;
    if (name == "process.peak_rss_bytes") peak = v;
  }
  ASSERT_GE(rss, 0.0);  // gauge exists
  ASSERT_GE(peak, 0.0);
#if defined(__linux__)
  EXPECT_GT(rss, 0.0);
  EXPECT_GT(peak, 0.0);
#endif
}

TEST(Snapshotter, SamplerHookPublishesGauge) {
  MetricsSnapshotter snap;
  snap.add_sampler("hook", [] {
    metrics().gauge("test.flight.hook_gauge").set(7.0);
  });
  std::ostringstream os;
  snap.sample_to(os);
  EXPECT_NE(os.str().find("\"test.flight.hook_gauge\": 7"),
            std::string::npos);
  // Re-registering the same name replaces the hook rather than stacking.
  snap.add_sampler("hook", [] {
    metrics().gauge("test.flight.hook_gauge").set(9.0);
  });
  std::ostringstream os2;
  snap.sample_to(os2);
  EXPECT_NE(os2.str().find("\"test.flight.hook_gauge\": 9"),
            std::string::npos);
}

TEST(Snapshotter, StartStopWritesManifestHeaderThenSamples) {
  const std::string path = "flight_recorder_ts.jsonl";
  MetricsSnapshotter snap;
  MetricsSnapshotter::Options opt;
  opt.path = path;
  opt.period_ms = 10;
  snap.start(opt);
  EXPECT_TRUE(snap.running());
  metrics().counter("test.flight.live").add(1);
  std::this_thread::sleep_for(std::chrono::milliseconds(40));
  snap.stop();
  EXPECT_FALSE(snap.running());
  EXPECT_GE(snap.samples(), 1u);

  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::string first;
  ASSERT_TRUE(static_cast<bool>(std::getline(in, first)));
  EXPECT_EQ(first.find("{\"manifest\""), 0u);
  EXPECT_NE(first.find("trkx-manifest-v1"), std::string::npos);
  std::uint64_t data_lines = 0;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    ++data_lines;
    EXPECT_EQ(line.find("{\"t_ms\""), 0u);
  }
  EXPECT_EQ(data_lines, snap.samples());
  std::remove(path.c_str());
}

TEST(Snapshotter, StartWithoutPathFails) {
  MetricsSnapshotter snap;
  MetricsSnapshotter::Options opt;  // no path
  EXPECT_THROW(snap.start(opt), std::exception);
  EXPECT_FALSE(snap.running());
}

TEST(Snapshotter, SamplingThreadExceptionSurfacesInStop) {
  // A sampler hook that throws kills the sampling thread's tick. The
  // run_loop exception barrier must capture it (not std::terminate) and
  // stop() rethrows it on the caller.
  const std::string path = "flight_recorder_throw.jsonl";
  MetricsSnapshotter snap;
  snap.add_sampler("bomb", [] {
    throw Error("sampler hook exploded");
  });
  MetricsSnapshotter::Options opt;
  opt.path = path;
  opt.period_ms = 5;
  snap.start(opt);
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  EXPECT_THROW(snap.stop(), Error);
  // The barrier cleared on rethrow: the snapshotter is reusable.
  EXPECT_FALSE(snap.running());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace trkx
