#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <vector>

#include "obs/metrics.hpp"
#include "util/error.hpp"
#include "util/fault.hpp"

namespace trkx {
namespace {

/// Every test starts and ends with a disarmed registry so fault state
/// never leaks between tests (the registry is process-global).
class FaultTest : public ::testing::Test {
 protected:
  void SetUp() override { fault::Registry::global().clear(); }
  void TearDown() override {
    fault::Registry::global().clear();
    ::unsetenv("TRKX_FAULTS");
  }
};

TEST_F(FaultTest, ParseMinimalClauseFiresOnFirstCall) {
  const fault::Spec spec = fault::parse_spec("io.read_event:error");
  EXPECT_EQ(spec.site, "io.read_event");
  EXPECT_EQ(spec.kind, fault::Kind::kError);
  EXPECT_EQ(spec.nth, 1u);  // no explicit trigger → first call
  EXPECT_EQ(spec.every, 0u);
  EXPECT_EQ(spec.prob, 0.0);
  EXPECT_EQ(spec.rank, -1);
}

TEST_F(FaultTest, ParseAllKeys) {
  const fault::Spec spec =
      fault::parse_spec("dist.all_reduce:rank-kill:nth=4:rank=1");
  EXPECT_EQ(spec.site, "dist.all_reduce");
  EXPECT_EQ(spec.kind, fault::Kind::kRankKill);
  EXPECT_EQ(spec.nth, 4u);
  EXPECT_EQ(spec.rank, 1);

  const fault::Spec delay =
      fault::parse_spec("io.read_event:delay:every=2:ms=25");
  EXPECT_EQ(delay.kind, fault::Kind::kDelay);
  EXPECT_EQ(delay.every, 2u);
  EXPECT_EQ(delay.delay_ms, 25u);

  const fault::Spec prob =
      fault::parse_spec("sampler.bulk_sample:error:prob=0.5:seed=7");
  EXPECT_EQ(prob.prob, 0.5);
  EXPECT_EQ(prob.seed, 7u);
}

TEST_F(FaultTest, ParseRejectsMalformedClauses) {
  EXPECT_THROW(fault::parse_spec("no_kind"), Error);
  EXPECT_THROW(fault::parse_spec(":error"), Error);
  EXPECT_THROW(fault::parse_spec("site:explode"), Error);
  EXPECT_THROW(fault::parse_spec("site:error:nth"), Error);
  EXPECT_THROW(fault::parse_spec("site:error:nth=abc"), Error);
  EXPECT_THROW(fault::parse_spec("site:error:prob=1.5"), Error);
  EXPECT_THROW(fault::parse_spec("site:error:bogus=1"), Error);
}

TEST_F(FaultTest, KindNames) {
  EXPECT_STREQ(fault::kind_name(fault::Kind::kError), "error");
  EXPECT_STREQ(fault::kind_name(fault::Kind::kDelay), "delay");
  EXPECT_STREQ(fault::kind_name(fault::Kind::kRankKill), "rank-kill");
}

TEST_F(FaultTest, UnarmedInjectIsNoOp) {
  EXPECT_EQ(fault::Registry::global().armed_count(), 0u);
  EXPECT_NO_THROW(fault::inject("io.read_event"));
  EXPECT_EQ(fault::Registry::global().total_injected(), 0u);
}

TEST_F(FaultTest, NthTriggerFiresExactlyOnce) {
  auto& reg = fault::Registry::global();
  reg.arm_from_string("site.a:error:nth=3");
  EXPECT_EQ(reg.armed_count(), 1u);
  EXPECT_NO_THROW(fault::inject("site.a"));
  EXPECT_NO_THROW(fault::inject("site.a"));
  EXPECT_THROW(fault::inject("site.a"), FaultInjectedError);
  // Past the nth call the site is healthy again.
  EXPECT_NO_THROW(fault::inject("site.a"));
  EXPECT_EQ(reg.injected("site.a"), 1u);
  EXPECT_EQ(reg.total_injected(), 1u);
}

TEST_F(FaultTest, EveryTriggerFiresPeriodically) {
  auto& reg = fault::Registry::global();
  reg.arm_from_string("site.b:error:every=2");
  std::size_t fired = 0;
  for (int i = 0; i < 6; ++i) {
    try {
      fault::inject("site.b");
    } catch (const FaultInjectedError&) {
      ++fired;
    }
  }
  EXPECT_EQ(fired, 3u);  // calls 2, 4, 6
  EXPECT_EQ(reg.injected("site.b"), 3u);
}

TEST_F(FaultTest, ProbabilityTriggerIsSeededAndDeterministic) {
  auto& reg = fault::Registry::global();
  reg.arm_from_string("site.c:error:prob=0.5:seed=42");
  std::vector<bool> first;
  for (int i = 0; i < 32; ++i) {
    try {
      fault::inject("site.c");
      first.push_back(false);
    } catch (const FaultInjectedError&) {
      first.push_back(true);
    }
  }
  // Re-arm with the same seed: the firing pattern must repeat exactly.
  reg.clear();
  reg.arm_from_string("site.c:error:prob=0.5:seed=42");
  for (int i = 0; i < 32; ++i) {
    bool hit = false;
    try {
      fault::inject("site.c");
    } catch (const FaultInjectedError&) {
      hit = true;
    }
    EXPECT_EQ(hit, first[static_cast<std::size_t>(i)]) << "call " << i;
  }
  // p=0.5 over 32 draws: both outcomes must occur (deterministic given
  // the seed, so this cannot flake).
  EXPECT_NE(std::count(first.begin(), first.end(), true), 0);
  EXPECT_NE(std::count(first.begin(), first.end(), false), 0);
}

TEST_F(FaultTest, RankScopedSpecOnlyFiresOnThatRank) {
  auto& reg = fault::Registry::global();
  reg.arm_from_string("site.d:rank-kill:nth=1:rank=1");
  EXPECT_NO_THROW(fault::inject("site.d", 0));
  EXPECT_NO_THROW(fault::inject("site.d", 2));
  // Non-matching ranks do not consume the call counter.
  EXPECT_THROW(fault::inject("site.d", 1), RankKilledError);
}

TEST_F(FaultTest, DelayKindSleepsInsteadOfThrowing) {
  auto& reg = fault::Registry::global();
  reg.arm_from_string("site.e:delay:nth=1:ms=1");
  EXPECT_NO_THROW(fault::inject("site.e"));
  EXPECT_EQ(reg.injected("site.e"), 1u);
}

TEST_F(FaultTest, ArmFromStringArmsEverySemicolonClause) {
  auto& reg = fault::Registry::global();
  reg.arm_from_string("a:error:nth=1;b:delay:ms=1;c:rank-kill:nth=2");
  EXPECT_EQ(reg.armed_count(), 3u);
}

TEST_F(FaultTest, ArmFromEnvReadsTrkxFaults) {
  ::setenv("TRKX_FAULTS", "env.site:error:nth=1", 1);
  auto& reg = fault::Registry::global();
  reg.arm_from_env();
  EXPECT_EQ(reg.armed_count(), 1u);
  EXPECT_THROW(fault::inject("env.site"), FaultInjectedError);
}

TEST_F(FaultTest, ArmFromEnvWithUnsetVariableIsNoOp) {
  ::unsetenv("TRKX_FAULTS");
  fault::Registry::global().arm_from_env();
  EXPECT_EQ(fault::Registry::global().armed_count(), 0u);
}

TEST_F(FaultTest, InjectionBumpsObsCounters) {
  // Touching the registry installs the fault → metrics observer.
  auto& injected = metrics().counter("fault.injected");
  const std::uint64_t before = injected.value();
  fault::Registry::global().arm_from_string("site.f:error:nth=1");
  EXPECT_THROW(fault::inject("site.f"), FaultInjectedError);
  EXPECT_EQ(injected.value(), before + 1);
  EXPECT_GE(metrics().counter("fault.injected.site.f").value(), 1u);
  EXPECT_GE(metrics().counter("fault.injected.kind.error").value(), 1u);
}

TEST_F(FaultTest, ErrorTypesFormAHierarchy) {
  // Typed failures: callers can catch the broad Error or the exact kind.
  EXPECT_THROW(throw FaultInjectedError("x"), Error);
  EXPECT_THROW(throw RankKilledError("x"), Error);
  EXPECT_THROW(throw CommTimeoutError("x"), CommError);
  EXPECT_THROW(throw CheckpointError("x"), Error);
  EXPECT_THROW(throw IoError("x"), Error);
}

}  // namespace
}  // namespace trkx
