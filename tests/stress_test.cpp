// Contended-path stress tests, labelled tsan-stress in CMake so the TSan
// leg of the sanitizer matrix (scripts/check_static.sh --tsan) runs them
// under -fsanitize=thread. Each test drives a shared-state component from
// several threads at once: these are the schedules where a missing
// happens-before edge in PrefetchQueue, TensorPool, the obs registry, or
// the DDP gradient sync would surface as a TSan report.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <deque>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "dist/communicator.hpp"
#include "dist/gradient_sync.hpp"
#include "graph/generators.hpp"
#include "nn/parameter.hpp"
#include "sampling/matrix_shadow.hpp"
#include "obs/metrics.hpp"
#include "obs/snapshot.hpp"
#include "obs/trace.hpp"
#include "tensor/pool.hpp"
#include "util/annotations.hpp"
#include "util/log.hpp"
#include "util/prefetch.hpp"
#include "util/thread_pool.hpp"
#include "util/timer.hpp"

namespace trkx {
namespace {

// Keep schedules contended but wall-clock cheap: TSan slows execution
// 5-15x and the CI box may have a single core.
#if defined(__SANITIZE_THREAD__)
constexpr int kIters = 200;
#else
constexpr int kIters = 1000;
#endif

// ---------- PrefetchQueue ----------

TEST(PrefetchStressTest, ConsumerAbandonsMidSequenceRepeatedly) {
  ThreadPool pool(4);
  for (int round = 0; round < 8; ++round) {
    std::atomic<int> live_producers{0};
    std::atomic<int> produced{0};
    auto produce = [&](std::size_t i) {
      ++live_producers;
      std::this_thread::sleep_for(std::chrono::microseconds(50));
      ++produced;
      --live_producers;
      return static_cast<int>(i) * 3;
    };
    {
      PrefetchQueue<int> queue(&pool, 4, 64, produce);
      // Consume a prefix only; the destructor must drain every in-flight
      // producer before the callback (and `produced`) go out of scope.
      for (std::size_t i = 0; i < 8; ++i)
        EXPECT_EQ(queue.get(i), static_cast<int>(i) * 3);
    }
    EXPECT_EQ(live_producers.load(), 0);
    EXPECT_GE(produced.load(), 8);
  }
}

TEST(PrefetchStressTest, PooledBuffersMigrateProducerToConsumer) {
  ThreadPool pool(4);
  const std::size_t n = 96;
  // Producers allocate through TensorPool on pool threads; the consumer
  // frees on the main thread — the cross-thread free-list migration path.
  auto produce = [](std::size_t i) {
    std::vector<float, PoolAllocator<float>> v(256 + i);
    for (std::size_t j = 0; j < v.size(); ++j)
      v[j] = static_cast<float>(i + j);
    return v;
  };
  PrefetchQueue<std::vector<float, PoolAllocator<float>>> queue(&pool, 6, n,
                                                                produce);
  for (std::size_t i = 0; i < n; ++i) {
    auto v = queue.get(i);
    ASSERT_EQ(v.size(), 256 + i);
    EXPECT_FLOAT_EQ(v[i % v.size()],
                    static_cast<float>(i + i % v.size()));
  }
}

// ---------- TensorPool ----------

TEST(TensorPoolStressTest, AcquireReleaseChurnAcrossThreads) {
  const int kThreads = 4;
  std::vector<std::thread> threads;
  std::atomic<bool> failed{false};
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([t, &failed] {
      const std::size_t sizes[] = {64, 300, 1024, 5000, 70000};
      for (int i = 0; i < kIters; ++i) {
        const std::size_t bytes =
            sizes[static_cast<std::size_t>(i + t) % 5];
        void* p = TensorPool::acquire(bytes);
        if (p == nullptr) {
          failed = true;
          return;
        }
        // Touch first/last byte: poisoned or foreign memory traps here.
        auto* bp = static_cast<unsigned char*>(p);
        bp[0] = static_cast<unsigned char>(t);
        bp[bytes - 1] = static_cast<unsigned char>(i);
        if (bp[0] != static_cast<unsigned char>(t)) failed = true;
        TensorPool::release(p, bytes);
      }
      TensorPool::clear_thread_cache();
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_FALSE(failed.load());
}

TEST(TensorPoolStressTest, StatsReadersRaceChurningWriters) {
  std::atomic<bool> stop{false};
  std::thread reader([&stop] {
    while (!stop.load()) {
      TensorPool::Stats s = TensorPool::stats();
      // hits/misses are monotone per thread; the merged view must never
      // go "negative" (they are unsigned — just consume the values).
      (void)s.hit_rate();
    }
  });
  std::vector<std::thread> writers;
  for (int t = 0; t < 3; ++t) {
    writers.emplace_back([] {
      for (int i = 0; i < kIters; ++i) {
        void* p = TensorPool::acquire(512);
        TensorPool::release(p, 512);
      }
      TensorPool::clear_thread_cache();
    });
  }
  for (auto& w : writers) w.join();
  stop = true;
  reader.join();
  TensorPool::reset_stats();
  TensorPool::Stats s = TensorPool::stats();
  EXPECT_EQ(s.hits + s.misses, 0u);
}

// ---------- Metrics registry ----------

TEST(MetricsStressTest, ConcurrentWritersAndExporters) {
  MetricsRegistry reg;
  std::atomic<bool> stop{false};
  std::vector<std::thread> writers;
  for (int t = 0; t < 4; ++t) {
    writers.emplace_back([&reg, t] {
      Counter& c = reg.counter("stress.count");
      Gauge& g = reg.gauge("stress.gauge");
      Histogram& h = reg.histogram("stress.hist");
      for (int i = 0; i < kIters; ++i) {
        c.add(1);
        g.set(static_cast<double>(t));
        h.observe(1e-4 * (i + 1));
        // Registry lookups race creation of fresh names too.
        reg.counter("stress.count." + std::to_string(i % 7)).add(1);
      }
    });
  }
  std::thread exporter([&reg, &stop] {
    while (!stop.load()) {
      std::ostringstream os;
      reg.write_json(os);
      std::ostringstream cs;
      reg.write_csv(cs);
    }
  });
  for (auto& w : writers) w.join();
  stop = true;
  exporter.join();
  EXPECT_EQ(reg.counter("stress.count").value(),
            static_cast<std::uint64_t>(4 * kIters));
  Histogram::Snapshot snap = reg.histogram("stress.hist").snapshot();
  EXPECT_EQ(snap.count, static_cast<std::uint64_t>(4 * kIters));
}

// The flight-recorder schedule: hot paths bump the global registry while
// the snapshotter thread scrapes it into time-series lines and sampler
// hooks are (re)registered concurrently. This is exactly what a training
// run with TRKX_TIMESERIES enabled does.
TEST(MetricsStressTest, SnapshotterRacesWritersAndHookRegistration) {
  MetricsSnapshotter snap;
  std::atomic<bool> stop{false};
  std::atomic<int> writers_done{0};
  std::vector<std::thread> writers;
  for (int t = 0; t < 3; ++t) {
    writers.emplace_back([t, &writers_done] {
      Counter& c = metrics().counter("stress.snap.count");
      Histogram& h = metrics().histogram("stress.snap.hist");
      for (int i = 0; i < kIters; ++i) {
        c.add(1);
        h.observe(1e-5 * (i + 1));
        metrics().gauge("stress.snap.g" + std::to_string(t)).set(i);
      }
      ++writers_done;
    });
  }
  std::thread registrar([&snap, &stop] {
    int gen = 0;
    while (!stop.load()) {
      snap.add_sampler("hook", [gen] {
        metrics().gauge("stress.snap.hook").set(gen);
      });
      ++gen;
    }
  });
  std::uint64_t lines = 0;
  while (writers_done.load() < 3 || lines < 5) {
    std::ostringstream os;
    snap.sample_to(os);
    ++lines;
  }
  stop = true;
  for (auto& w : writers) w.join();
  registrar.join();
  EXPECT_GE(snap.samples(), 5u);
  EXPECT_EQ(metrics().counter("stress.snap.count").value(),
            static_cast<std::uint64_t>(3 * kIters));
}

// Witness for the lock order documented in DESIGN.md §6j (and checked
// statically by the trkx-analyze lock-order pass): the snapshotter never
// holds its mutex_ while entering MetricsRegistry — hooks, dump() and
// stream writes all run with the snapshotter lock released. This drives
// both mutexes from every direction at once — full start/stop lifecycle,
// registry writers, a hook that re-enters the registry from the sampling
// thread, control-plane polls, and a synchronous sample_to() — so a
// future nesting in either direction surfaces as a TSan report on this
// schedule instead of a rare production deadlock.
TEST(MetricsStressTest, SnapshotterAndRegistryLockOrderWitness) {
  const std::string path =
      ::testing::TempDir() + "/trkx_lock_order_witness.jsonl";
  std::atomic<bool> stop{false};
  std::vector<std::thread> writers;
  for (int t = 0; t < 2; ++t) {
    writers.emplace_back([&stop] {
      while (!stop.load()) {
        metrics().counter("stress.order.count").add(1);
        metrics().gauge("stress.order.gauge").set(1.0);
        void* p = TensorPool::acquire(256);
        TensorPool::release(p, 256);
      }
      TensorPool::clear_thread_cache();
    });
  }
  for (int round = 0; round < 4; ++round) {
    MetricsSnapshotter snap;
    snap.add_sampler("bridge", [] {
      // Runs on the sampling thread with the snapshotter lock released;
      // re-entering the registry here is the documented (only) direction.
      metrics().gauge("stress.order.hook").set(static_cast<double>(
          metrics().counter("stress.order.count").value()));
    });
    snap.add_sampler("pool", [] {
      // The gnn_train bridge: pool internals -> registry gauge, on the
      // sampling thread — the third lock domain in the certified order.
      const TensorPool::Stats s = TensorPool::stats();
      metrics().gauge("stress.order.pool").set(s.hit_rate());
    });
    snap.start({.path = path, .period_ms = 1});
    for (int i = 0; i < 50; ++i) {
      // Control plane cycles the snapshotter lock while the sampling
      // thread alternates it against the registry lock...
      (void)snap.running();
      (void)snap.samples();
      snap.add_sampler("bridge2",
                       [] { metrics().gauge("stress.order.hook2").set(1.0); });
      // ...and this thread takes the registry lock on its own.
      std::ostringstream os;
      metrics().write_json(os);
    }
    std::ostringstream os;
    snap.sample_to(os);  // synchronous sample racing the thread's ticks
    snap.stop();
    EXPECT_GE(snap.samples(), 1u);
  }
  stop = true;
  for (auto& w : writers) w.join();
  std::remove(path.c_str());
}

// ---------- Trace session ----------

TEST(TraceStressTest, RecordersRaceExportAndClear) {
  TraceSession session;
  session.start();
  std::atomic<bool> stop{false};
  std::vector<std::thread> recorders;
  for (int t = 0; t < 3; ++t) {
    recorders.emplace_back([&session] {
      for (int i = 0; i < kIters; ++i) {
        const std::uint64_t t0 = session.now_ns();
        session.record("stress_span", "stress", t0, session.now_ns());
      }
    });
  }
  std::thread exporter([&session, &stop] {
    while (!stop.load()) {
      std::ostringstream os;
      session.write_json(os);
      (void)session.event_count();
    }
  });
  std::thread clearer([&session, &stop] {
    while (!stop.load()) {
      session.clear();
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  });
  for (auto& r : recorders) r.join();
  stop = true;
  exporter.join();
  clearer.join();
  session.stop();
}

// ---------- PhaseTimers ----------

TEST(PhaseTimersStressTest, ConcurrentAddAndMerge) {
  PhaseTimers total;
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&total] {
      PhaseTimers local;
      for (int i = 0; i < kIters; ++i) {
        local.add("sample", 0.001);
        total.add("direct", 0.001);  // contended path
      }
      total.merge(local);  // merge path
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_NEAR(total.get("sample"), 4 * kIters * 0.001, 1e-6 * kIters);
  EXPECT_NEAR(total.get("direct"), 4 * kIters * 0.001, 1e-6 * kIters);
}

// ---------- Log sink ----------

TEST(LogStressTest, ConcurrentLinesAndSinkSwaps) {
  const std::string path =
      ::testing::TempDir() + "/trkx_log_stress.txt";
  set_log_file(path);
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([t] {
      for (int i = 0; i < kIters / 10; ++i)
        TRKX_INFO << "stress t" << t << " i" << i;
    });
  }
  // Swap the sink while writers are live (file -> stderr default -> file).
  set_log_sink(nullptr);
  set_log_file(path);
  for (auto& th : threads) th.join();
  set_log_sink(nullptr);
  std::remove(path.c_str());
}

// ---------- 2-rank DDP gradient sync ----------

TEST(DistStressTest, TwoRankGradientSyncBothStrategies) {
  for (SyncStrategy strategy :
       {SyncStrategy::kPerTensor, SyncStrategy::kCoalesced}) {
    DistRuntime runtime(2);
    runtime.run([strategy](Communicator& comm) {
      ParameterStore store;
      Parameter& w1 = store.create("w1", 8, 8);
      Parameter& w2 = store.create("w2", 3, 5);
      for (int iter = 0; iter < 50; ++iter) {
        const float base =
            static_cast<float>(comm.rank() + 1) * (iter + 1);
        for (std::size_t i = 0; i < w1.grad.size(); ++i)
          w1.grad.data()[i] = base;
        for (std::size_t i = 0; i < w2.grad.size(); ++i)
          w2.grad.data()[i] = -base;
        synchronize_gradients(comm, store, strategy);
        // Mean over ranks 1 and 2 of base = 1.5 * (iter+1).
        const float expect = 1.5f * (iter + 1);
        ASSERT_FLOAT_EQ(w1.grad.data()[0], expect);
        ASSERT_FLOAT_EQ(w2.grad.data()[0], -expect);
      }
    });
  }
}

TEST(DistStressTest, ConcurrentCollectivesInterleaveCleanly) {
  DistRuntime runtime(2);
  runtime.run([](Communicator& comm) {
    for (int iter = 0; iter < 100; ++iter) {
      std::vector<float> buf(64, static_cast<float>(comm.rank() + 1));
      comm.all_reduce_sum(buf);
      ASSERT_FLOAT_EQ(buf[0], 3.0f);  // 1 + 2
      const double total = comm.all_reduce_scalar(1.0);
      ASSERT_DOUBLE_EQ(total, 2.0);
      std::vector<float> local(
          static_cast<std::size_t>(comm.rank()) + 1,
          static_cast<float>(comm.rank()));
      std::vector<float> gathered = comm.all_gather(local);
      ASSERT_EQ(gathered.size(), 3u);  // 1 + 2 elements
    }
  });
}

// ---------- MatrixShadowSampler ----------

// Regression for a race TSan caught in the pipelined-determinism tests:
// prefetch workers share one sampler, and every sample_bulk() call stores
// the last_frontier_ cache through a const method. The concurrent
// CsrMatrix move-assignments tore until the cache went behind
// frontier_mutex_; this drives the same schedule directly.
TEST(ShadowSamplerStressTest, SharedSamplerConcurrentBulkSampling) {
  Rng graph_rng(99);
  const Graph g = erdos_renyi(64, 0.12, graph_rng);
  const ShadowConfig cfg{.depth = 2, .fanout = 3};
  const MatrixShadowSampler sampler(g, cfg);
  constexpr int kThreads = 4;
  const int rounds = kIters / 20;  // sampling dwarfs the other loop bodies
  std::atomic<std::size_t> total{0};
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&sampler, &total, rounds, t] {
      Rng rng(1000 + t);
      for (int i = 0; i < rounds; ++i)
        total += sampler.sample_bulk({{0, 1, 2}, {3, 4}}, rng).size();
    });
  }
  // Reader races the writers through the locked accessor; the frontier is
  // either empty (no call finished yet) or stacked over the 5 roots.
  std::thread reader([&sampler, rounds] {
    for (int i = 0; i < rounds; ++i) {
      const CsrMatrix f = sampler.last_frontier();
      EXPECT_TRUE(f.rows() == 0 || f.rows() == 5u);
    }
  });
  for (auto& w : workers) w.join();
  reader.join();
  EXPECT_EQ(total.load(), static_cast<std::size_t>(kThreads) * rounds * 2);
}

}  // namespace
}  // namespace trkx
