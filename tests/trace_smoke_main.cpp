// End-to-end observability smoke: runs a tiny 2-rank DDP training with the
// tracer live (once per sync strategy), writes trace_smoke.json and
// metrics_smoke.json into the working directory, and self-checks the
// acceptance properties the unit tests can't see:
//
//   - the trace contains sample/forward/backward/allreduce/eval spans
//     emitted from at least two distinct threads (rank threads),
//   - per-tensor and coalesced all-reduce moved the same bytes but
//     coalesced issued fewer calls.
//
// Not a gtest binary: ctest runs it directly, and scripts/check_trace.py
// then validates the emitted JSON as a FIXTURES_REQUIRED step.

#include <cstdio>
#include <set>
#include <sstream>
#include <string>

#include "detector/presets.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "pipeline/gnn_train.hpp"

using namespace trkx;

namespace {

int g_failures = 0;

void check(bool ok, const char* what) {
  if (!ok) {
    std::fprintf(stderr, "FAIL: %s\n", what);
    ++g_failures;
  }
}

}  // namespace

int main() {
  DatasetSpec spec = ex3_spec(0.03);
  Dataset data =
      generate_dataset(spec.name, spec.detector, /*train=*/2, 1, 0, 17);

  IgnnConfig gnn;
  gnn.node_input_dim = spec.detector.node_feature_dim;
  gnn.edge_input_dim = spec.detector.edge_feature_dim;
  gnn.hidden_dim = 16;
  gnn.num_layers = 2;
  gnn.mlp_hidden = 1;

  GnnTrainConfig cfg;
  cfg.epochs = 2;
  cfg.batch_size = 64;
  cfg.shadow = {.depth = 2, .fanout = 3};
  cfg.bulk_k = 2;
  cfg.seed = 11;

  TraceSession& session = TraceSession::global();
  session.clear();
  metrics().reset();
  session.start();
  for (SyncStrategy sync :
       {SyncStrategy::kPerTensor, SyncStrategy::kCoalesced}) {
    cfg.sync = sync;
    GnnModel model(gnn, cfg.seed);
    DistRuntime runtime(2);
    train_shadow_ddp(model, data.train, data.val, cfg, runtime,
                     SamplerKind::kMatrixBulk);
  }
  session.stop();

  session.write_json("trace_smoke.json");
  MetricsRegistry::global().write_json("metrics_smoke.json");
  std::printf("wrote trace_smoke.json (%zu events) and metrics_smoke.json\n",
              session.event_count());

  check(session.event_count() > 0, "trace recorded events");

  // Spot-check the JSON itself for the Figure 3 phase names and ≥2 thread
  // ids (check_trace.py repeats this with a real JSON parser).
  std::ostringstream os;
  session.write_json(os);
  const std::string json = os.str();
  for (const char* name :
       {"\"sample\"", "\"forward\"", "\"backward\"", "\"allreduce\"",
        "\"eval\"", "\"epoch\""})
    check(json.find(name) != std::string::npos, name);
  std::set<std::string> tids;
  for (std::size_t pos = json.find("\"tid\":"); pos != std::string::npos;
       pos = json.find("\"tid\":", pos + 1)) {
    const std::size_t begin = pos + 6;
    tids.insert(json.substr(begin, json.find_first_of(",}", begin) - begin));
  }
  check(tids.size() >= 2, "spans from >= 2 threads");

  // Paper §III-D: coalescing changes the call pattern, not the volume.
  const std::uint64_t pt_calls =
      metrics().counter("allreduce.per_tensor.calls").value();
  const std::uint64_t co_calls =
      metrics().counter("allreduce.coalesced.calls").value();
  const std::uint64_t pt_bytes =
      metrics().counter("allreduce.per_tensor.bytes").value();
  const std::uint64_t co_bytes =
      metrics().counter("allreduce.coalesced.bytes").value();
  std::printf("allreduce per-tensor: %llu calls %llu bytes\n",
              static_cast<unsigned long long>(pt_calls),
              static_cast<unsigned long long>(pt_bytes));
  std::printf("allreduce coalesced : %llu calls %llu bytes\n",
              static_cast<unsigned long long>(co_calls),
              static_cast<unsigned long long>(co_bytes));
  check(pt_calls > 0 && co_calls > 0, "both strategies ran");
  check(co_calls < pt_calls, "coalesced issues fewer all-reduce calls");
  check(pt_bytes == co_bytes, "both strategies move the same bytes");

  if (g_failures > 0) {
    std::fprintf(stderr, "%d check(s) failed\n", g_failures);
    return 1;
  }
  std::printf("trace smoke OK\n");
  return 0;
}
