#include <gtest/gtest.h>

#include <cmath>

#include "detector/helix.hpp"
#include "pipeline/gnn_train.hpp"
#include "pipeline/track_fit.hpp"

namespace trkx {
namespace {

/// Build an event holding one ideal (noise-free) helix track.
Event ideal_track_event(const ParticleState& state, double b_field,
                        const std::vector<double>& radii) {
  Event event;
  Helix helix(state, b_field);
  TruthParticle truth;
  truth.pt = static_cast<float>(state.pt);
  truth.phi0 = static_cast<float>(state.phi0);
  truth.eta = static_cast<float>(state.eta);
  truth.z0 = static_cast<float>(state.z0);
  truth.charge = state.charge;
  for (std::size_t l = 0; l < radii.size(); ++l) {
    const auto p = helix.intersect_layer(radii[l]);
    if (!p) break;
    Hit h;
    h.x = static_cast<float>(p->x);
    h.y = static_cast<float>(p->y);
    h.z = static_cast<float>(p->z);
    h.layer = static_cast<std::uint32_t>(l);
    h.particle = 0;
    truth.hits.push_back(static_cast<std::uint32_t>(event.hits.size()));
    event.hits.push_back(h);
  }
  event.particles.push_back(truth);
  event.graph = Graph(event.hits.size(), {});
  return event;
}

TrackCandidate candidate_of_all_hits(const Event& e) {
  TrackCandidate c;
  for (std::uint32_t i = 0; i < e.hits.size(); ++i) c.hits.push_back(i);
  c.matched_particle = 0;
  c.majority_fraction = 1.0;
  return c;
}

const std::vector<double> kRadii{32, 72, 116, 172, 260, 360, 500};

class FitParams
    : public ::testing::TestWithParam<std::tuple<double, double, int>> {};

TEST_P(FitParams, RecoversHelixParameters) {
  auto [pt, eta, charge] = GetParam();
  ParticleState s;
  s.pt = pt;
  s.phi0 = 0.9;
  s.eta = eta;
  s.z0 = 12.0;
  s.charge = charge;
  Event e = ideal_track_event(s, 2.0, kRadii);
  ASSERT_GE(e.hits.size(), 3u);
  const auto fit = fit_track(e, candidate_of_all_hits(e), 2.0);
  ASSERT_TRUE(fit.has_value());
  EXPECT_NEAR(fit->pt, pt, pt * 0.02);
  EXPECT_NEAR(fit->phi0, 0.9, 0.02);
  EXPECT_NEAR(fit->eta, eta, 0.03);
  EXPECT_NEAR(fit->z0, 12.0, 1.0);
  EXPECT_EQ(fit->charge, charge);
  EXPECT_LT(fit->circle_chi2, 1e-3f);
  EXPECT_LT(fit->line_chi2, 1e-2f);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, FitParams,
    ::testing::Values(std::make_tuple(0.6, 0.0, 1),
                      std::make_tuple(1.0, 1.2, -1),
                      std::make_tuple(2.5, -0.8, 1),
                      std::make_tuple(5.0, 2.0, -1),
                      std::make_tuple(0.8, -1.5, -1)));

TEST(TrackFitTest, TooFewHitsRejected) {
  ParticleState s;
  Event e = ideal_track_event(s, 2.0, {32, 72});
  TrackCandidate c = candidate_of_all_hits(e);
  EXPECT_FALSE(fit_track(e, c, 2.0).has_value());
}

TEST(TrackFitTest, SmearedHitsStillCloseAndChi2Grows) {
  ParticleState s;
  s.pt = 1.5;
  s.phi0 = -1.1;
  s.eta = 0.5;
  s.charge = 1;
  Event e = ideal_track_event(s, 2.0, kRadii);
  Rng rng(3);
  for (Hit& h : e.hits) {
    h.x += static_cast<float>(rng.normal(0.0, 0.5));
    h.y += static_cast<float>(rng.normal(0.0, 0.5));
    h.z += static_cast<float>(rng.normal(0.0, 1.0));
  }
  const auto fit = fit_track(e, candidate_of_all_hits(e), 2.0);
  ASSERT_TRUE(fit.has_value());
  EXPECT_NEAR(fit->pt, 1.5, 0.25);
  EXPECT_GT(fit->circle_chi2, 1e-4f);
}

TEST(TrackFitTest, EvaluateFitsAggregates) {
  Rng rng(4);
  // Build an event with several ideal tracks and fit them all.
  Event event;
  std::vector<TrackCandidate> candidates;
  for (int i = 0; i < 5; ++i) {
    ParticleState s;
    s.pt = 0.7 + 0.5 * i;
    s.phi0 = rng.uniform(-3.0f, 3.0f);
    s.eta = rng.uniform(-1.5f, 1.5f);
    s.z0 = rng.normal(0.0, 20.0);
    s.charge = rng.bernoulli(0.5) ? 1 : -1;
    Event single = ideal_track_event(s, 2.0, kRadii);
    TrackCandidate c;
    const auto base = static_cast<std::uint32_t>(event.hits.size());
    for (std::uint32_t h = 0; h < single.hits.size(); ++h) {
      Hit hit = single.hits[h];
      hit.particle = i;
      event.hits.push_back(hit);
      c.hits.push_back(base + h);
    }
    TruthParticle t = single.particles[0];
    for (auto& hh : t.hits) hh += base;
    event.particles.push_back(t);
    c.matched_particle = i;
    candidates.push_back(c);
  }
  event.graph = Graph(event.hits.size(), {});
  const FitResolution res = evaluate_fits(event, candidates, 2.0);
  EXPECT_EQ(res.fitted, 5u);
  EXPECT_EQ(res.failed, 0u);
  EXPECT_LT(std::fabs(res.pt_bias), 0.05);
  EXPECT_LT(res.pt_resolution, 0.05);
  EXPECT_EQ(res.charge_correct_fraction, 1.0);
  EXPECT_LT(res.z0_resolution, 2.0);
}

TEST(TrackFitTest, UnmatchedCandidatesIgnored) {
  ParticleState s;
  Event e = ideal_track_event(s, 2.0, kRadii);
  TrackCandidate c = candidate_of_all_hits(e);
  c.matched_particle = -1;
  const FitResolution res = evaluate_fits(e, {c}, 2.0);
  EXPECT_EQ(res.fitted, 0u);
}

TEST(TrackFitTest, MemoryBudgetSkipLogic) {
  // fits_memory_budget respects both the edge cap and the byte budget.
  DetectorConfig cfg;
  cfg.mean_particles = 15.0;
  Rng rng(5);
  Event e = generate_event(cfg, rng);
  IgnnConfig gnn;
  gnn.node_input_dim = cfg.node_feature_dim;
  gnn.edge_input_dim = cfg.edge_feature_dim;
  gnn.hidden_dim = 64;
  gnn.num_layers = 8;
  GnnTrainConfig tc;
  EXPECT_TRUE(fits_memory_budget(tc, gnn, e));
  tc.max_edges = 1;
  EXPECT_FALSE(fits_memory_budget(tc, gnn, e));
  tc.max_edges = std::numeric_limits<std::size_t>::max();
  tc.memory_budget_bytes = 1;  // nothing fits a 1-byte GPU
  EXPECT_FALSE(fits_memory_budget(tc, gnn, e));
  tc.memory_budget_bytes = full_graph_memory_estimate(gnn, e) + 1;
  EXPECT_TRUE(fits_memory_budget(tc, gnn, e));
}

}  // namespace
}  // namespace trkx
