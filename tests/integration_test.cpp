#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "detector/presets.hpp"
#include "pipeline/gnn_train.hpp"

namespace trkx {
namespace {

/// A small but non-trivial Ex3-like dataset shared across integration
/// tests (generated once; ~1.5k hits per event).
class IntegrationFixture : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    DatasetSpec spec = ex3_spec(0.08);  // ≈ 105 particles/event
    dataset_ = std::make_unique<Dataset>(
        generate_dataset("ex3-int", spec.detector, 4, 2, 1, 12345));
  }
  static void TearDownTestSuite() { dataset_.reset(); }
  static std::unique_ptr<Dataset> dataset_;

  static IgnnConfig gnn_config() {
    IgnnConfig cfg;
    cfg.node_input_dim = dataset_->train[0].node_features.cols();
    cfg.edge_input_dim = dataset_->train[0].edge_features.cols();
    cfg.hidden_dim = 24;
    cfg.num_layers = 3;
    cfg.mlp_hidden = 1;
    return cfg;
  }

  static GnnTrainConfig train_config(std::size_t epochs) {
    GnnTrainConfig cfg;
    cfg.epochs = epochs;
    cfg.batch_size = 128;
    cfg.shadow = {.depth = 2, .fanout = 4};
    cfg.bulk_k = 4;
    return cfg;
  }
};

std::unique_ptr<Dataset> IntegrationFixture::dataset_;

TEST_F(IntegrationFixture, DatasetHasExpectedShape) {
  EXPECT_EQ(dataset_->train.size(), 4u);
  EXPECT_GT(dataset_->avg_vertices(), 300.0);
  EXPECT_GT(dataset_->avg_edges(), dataset_->avg_vertices());
}

TEST_F(IntegrationFixture, ShadowTrainingLearnsSignal) {
  GnnModel model(gnn_config(), 7);
  auto result = train_shadow(model, dataset_->train, dataset_->val,
                             train_config(4), SamplerKind::kMatrixBulk);
  // After a few epochs the model must beat chance on validation edges:
  // recall and precision both clearly above the positive base rate.
  const auto& last = result.last().val;
  EXPECT_GT(last.recall(), 0.5);
  EXPECT_GT(last.precision(), 0.5);
  EXPECT_LT(result.last().train_loss, result.epochs.front().train_loss);
}

TEST_F(IntegrationFixture, SamplerKindsReachSimilarQuality) {
  // Core paper claim support: our matrix/bulk ShaDow does not degrade
  // precision/recall relative to the reference ShaDow implementation.
  GnnModel ref_model(gnn_config(), 8);
  GnnModel mat_model(gnn_config(), 8);
  auto ref = train_shadow(ref_model, dataset_->train, dataset_->val,
                          train_config(3), SamplerKind::kReference);
  auto mat = train_shadow(mat_model, dataset_->train, dataset_->val,
                          train_config(3), SamplerKind::kMatrixBulk);
  const double ref_f1 = ref.last().val.f1();
  const double mat_f1 = mat.last().val.f1();
  EXPECT_NEAR(mat_f1, ref_f1, 0.15);
}

TEST_F(IntegrationFixture, TrainingIsDeterministicGivenSeed) {
  GnnModel m1(gnn_config(), 9);
  GnnModel m2(gnn_config(), 9);
  auto cfg = train_config(1);
  auto r1 = train_shadow(m1, dataset_->train, dataset_->val, cfg,
                         SamplerKind::kMatrixBulk);
  auto r2 = train_shadow(m2, dataset_->train, dataset_->val, cfg,
                         SamplerKind::kMatrixBulk);
  EXPECT_EQ(m1.store.flatten_values(), m2.store.flatten_values());
  EXPECT_DOUBLE_EQ(r1.last().train_loss, r2.last().train_loss);
}

TEST_F(IntegrationFixture, DdpProducesWorkingModel) {
  GnnModel model(gnn_config(), 10);
  DistRuntime rt(2);
  auto result = train_shadow_ddp(model, dataset_->train, dataset_->val,
                                 train_config(2), rt,
                                 SamplerKind::kMatrixBulk);
  EXPECT_EQ(result.epochs.size(), 2u);
  EXPECT_GT(result.comm.all_reduce_calls, 0u);
  const BinaryMetrics final_val = evaluate_edges(model, dataset_->val);
  EXPECT_GT(final_val.recall(), 0.3);
}

TEST_F(IntegrationFixture, FullGraphVsMinibatchBothLearn) {
  GnnModel full_model(gnn_config(), 11);
  GnnModel mini_model(gnn_config(), 11);
  auto cfg = train_config(3);
  auto full = train_full_graph(full_model, dataset_->train, dataset_->val, cfg);
  auto mini = train_shadow(mini_model, dataset_->train, dataset_->val, cfg,
                           SamplerKind::kMatrixBulk);
  EXPECT_GT(full.last().val.recall(), 0.3);
  EXPECT_GT(mini.last().val.recall(), 0.3);
}

TEST_F(IntegrationFixture, ModelSerializationPreservesPredictions) {
  GnnModel model(gnn_config(), 12);
  train_shadow(model, dataset_->train, dataset_->val, train_config(1),
               SamplerKind::kMatrixBulk);
  const Event& ev = dataset_->test[0];
  const auto before = model.gnn->predict(ev.node_features, ev.edge_features,
                                         ev.graph);
  std::stringstream ss;
  model.store.save(ss);
  GnnModel restored(gnn_config(), 999);  // different init
  restored.store.load(ss);
  const auto after = restored.gnn->predict(ev.node_features,
                                           ev.edge_features, ev.graph);
  ASSERT_EQ(before.size(), after.size());
  for (std::size_t i = 0; i < before.size(); ++i)
    EXPECT_NEAR(before[i], after[i], 1e-6f);
}

}  // namespace
}  // namespace trkx
