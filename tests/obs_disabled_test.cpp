// Compiled with TRKX_TRACING=0 (see tests/CMakeLists.txt): verifies that
// the span macro compiles away to a no-op — nothing is recorded even with
// the session started — while metrics stay fully functional. Together with
// obs_test.cpp this keeps both sides of the compile-time gate building.

#include <gtest/gtest.h>

#include "obs/metrics.hpp"
#include "obs/phase.hpp"
#include "obs/trace.hpp"
#include "util/timer.hpp"

#if TRKX_TRACING
#error "obs_disabled_test must be compiled with TRKX_TRACING=0"
#endif

namespace trkx {
namespace {

TEST(TraceDisabled, SpanMacroIsNoOp) {
  TraceSession& s = TraceSession::global();
  s.clear();
  s.start();
  {
    TRKX_TRACE_SPAN("compiled.out", "test");
  }
  s.stop();
  EXPECT_EQ(s.event_count(), 0u);
}

TEST(TraceDisabled, ScopeObjectStillDropsEvents) {
  // Direct TraceScope use (not via the macro) also records nothing: the
  // compile-time gate lives inside the scope itself.
  TraceSession& s = TraceSession::global();
  s.clear();
  s.start();
  {
    TraceScope scope("direct.scope", "test");
  }
  s.stop();
  EXPECT_EQ(s.event_count(), 0u);
}

TEST(TraceDisabled, MetricsStillWork) {
  Counter& c = metrics().counter("test.disabled.counter");
  c.reset();
  c.add(3);
  EXPECT_EQ(c.value(), 3u);
}

TEST(TraceDisabled, PhaseSpanStillFeedsTimers) {
  // The PhaseTimers/metrics half of PhaseSpan must survive tracing being
  // compiled out — Figure 3 phase splits don't depend on the tracer.
  PhaseTimers timers;
  {
    PhaseSpan span(timers, "disabled_phase");
  }
  EXPECT_GT(timers.get("disabled_phase"), 0.0);
  EXPECT_EQ(TraceSession::global().event_count(), 0u);
}

}  // namespace
}  // namespace trkx
