#!/usr/bin/env python3
"""Validate a unified bench JSON artifact (bench/bench_json.hpp).

Usage:
    check_bench_json.py BENCH.json [--bench NAME]
                        [--require-metrics a,b,c] [--min-series N]
                        [--require-params a,b]

Expected shape:

    {"bench": "<name>",
     "series": [{"name": "<series>",
                 "params": {"<key>": "<string value>", ...},
                 "metrics": {"<key>": <number or null>, ...}}, ...]}

Every series must carry a non-empty name, params must map strings to
strings, and metrics must map strings to numbers (null marks a non-finite
measurement). Optional flags pin the bench name, require metric/param keys
on every series, and set a minimum series count. Exits 0 on success, 1
with one message per violation otherwise.
"""

import argparse
import json
import sys


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("artifact", help="path to bench JSON")
    parser.add_argument("--bench", default="", help="expected bench name")
    parser.add_argument(
        "--require-metrics",
        default="",
        help="comma-separated metric keys every series must carry",
    )
    parser.add_argument(
        "--require-params",
        default="",
        help="comma-separated param keys every series must carry",
    )
    parser.add_argument(
        "--min-series", type=int, default=1, help="minimum series count"
    )
    args = parser.parse_args()

    errors = []
    try:
        with open(args.artifact, encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as exc:
        print(f"error: cannot parse {args.artifact}: {exc}", file=sys.stderr)
        return 1

    if not isinstance(doc, dict):
        errors.append("top level is not an object")
        doc = {}
    bench = doc.get("bench")
    if not isinstance(bench, str) or not bench:
        errors.append('"bench" must be a non-empty string')
    elif args.bench and bench != args.bench:
        errors.append(f'"bench" is {bench!r}, expected {args.bench!r}')

    series = doc.get("series")
    if not isinstance(series, list):
        errors.append('"series" must be a list')
        series = []
    if len(series) < args.min_series:
        errors.append(
            f"expected at least {args.min_series} series, got {len(series)}"
        )

    want_metrics = [k for k in args.require_metrics.split(",") if k]
    want_params = [k for k in args.require_params.split(",") if k]
    for i, s in enumerate(series):
        where = f"series[{i}]"
        if not isinstance(s, dict):
            errors.append(f"{where} is not an object")
            continue
        name = s.get("name")
        if not isinstance(name, str) or not name:
            errors.append(f'{where}: "name" must be a non-empty string')
        else:
            where = f"series[{i}] ({name})"
        params = s.get("params")
        if not isinstance(params, dict):
            errors.append(f'{where}: "params" must be an object')
            params = {}
        for k, v in params.items():
            if not isinstance(v, str):
                errors.append(f"{where}: param {k!r} is not a string")
        metrics = s.get("metrics")
        if not isinstance(metrics, dict):
            errors.append(f'{where}: "metrics" must be an object')
            metrics = {}
        for k, v in metrics.items():
            if not (v is None or isinstance(v, (int, float))):
                errors.append(f"{where}: metric {k!r} is not a number")
        for k in want_metrics:
            if k not in metrics:
                errors.append(f"{where}: missing required metric {k!r}")
        for k in want_params:
            if k not in params:
                errors.append(f"{where}: missing required param {k!r}")

    for e in errors:
        print(f"error: {e}", file=sys.stderr)
    if not errors:
        n = len(series)
        print(f"{args.artifact}: OK ({n} series)")
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main())
