#!/usr/bin/env python3
"""Validate a unified bench JSON artifact (bench/bench_json.hpp).

Usage:
    check_bench_json.py BENCH.json [--bench NAME]
                        [--require-metrics a,b,c] [--min-series N]
                        [--require-params a,b] [--require-manifest]
    check_bench_json.py --selftest

Expected shape (schema v2; v1 artifacts without the schema/manifest keys
are still accepted so older committed baselines keep validating):

    {"schema": "trkx-bench-v2",
     "bench": "<name>",
     "manifest": {"schema": "trkx-manifest-v1", "git_sha": "...",
                  "tool": "...", "hardware_threads": N, ...},
     "series": [{"name": "<series>",
                 "params": {"<key>": "<string value>", ...},
                 "metrics": {"<key>": <number or null>, ...}}, ...]}

Every series must carry a non-empty name, params must map strings to
strings, and metrics must map strings to numbers (null marks a non-finite
measurement). A v2 artifact must carry a well-formed manifest block;
--require-manifest rejects v1 artifacts outright. Optional flags pin the
bench name, require metric/param keys on every series, and set a minimum
series count. --selftest validates the embedded golden fixtures (valid v1,
valid v2, and known-bad mutations) and exits non-zero if the validator's
verdict on any of them changes. Exits 0 on success, 1 with one message per
violation otherwise.
"""

import argparse
import copy
import json
import sys

KNOWN_SCHEMAS = ("trkx-bench-v2",)
MANIFEST_SCHEMA = "trkx-manifest-v1"

# Golden fixtures for --selftest: one canonical artifact per schema
# version plus mutations that must each produce at least one error.
GOLDEN_V2 = {
    "schema": "trkx-bench-v2",
    "bench": "sparse",
    "manifest": {
        "schema": "trkx-manifest-v1",
        "tool": "sparse",
        "git_sha": "0123abcd4567",
        "build_type": "Release",
        "compiler": "12.2.0",
        "hostname": "ci",
        "hardware_threads": 1,
        "omp_max_threads": 1,
        "tracing_compiled": 1,
        "unix_time_s": 1786000000,
        "config_fingerprint": "9a1b2c3d4e5f",
    },
    "series": [
        {
            "name": "BM_SampleRows/4096",
            "params": {"benchmark": "BM_SampleRows/4096"},
            "metrics": {"real_time_ms_median": 1.25, "bad_sample": None},
        }
    ],
}

GOLDEN_V1 = {
    "bench": "fig3_epoch_time",
    "series": [
        {
            "name": "CTD/pipelined/p1",
            "params": {"dataset": "CTD", "impl": "pipelined"},
            "metrics": {"epoch_s_median": 0.42},
        }
    ],
}


def validate(doc, bench="", require_metrics=(), require_params=(),
             min_series=1, require_manifest=False):
    """Return the list of violations for one parsed artifact."""
    errors = []
    if not isinstance(doc, dict):
        return ["top level is not an object"]

    schema = doc.get("schema")
    is_v2 = schema is not None
    if is_v2 and schema not in KNOWN_SCHEMAS:
        errors.append(f'unknown "schema" {schema!r}')
        is_v2 = False
    if require_manifest and not is_v2:
        errors.append('artifact is schema v1 but a manifest is required')

    name = doc.get("bench")
    if not isinstance(name, str) or not name:
        errors.append('"bench" must be a non-empty string')
    elif bench and name != bench:
        errors.append(f'"bench" is {name!r}, expected {bench!r}')

    if is_v2:
        errors.extend(validate_manifest(doc.get("manifest")))

    series = doc.get("series")
    if not isinstance(series, list):
        errors.append('"series" must be a list')
        series = []
    if len(series) < min_series:
        errors.append(
            f"expected at least {min_series} series, got {len(series)}"
        )

    for i, s in enumerate(series):
        where = f"series[{i}]"
        if not isinstance(s, dict):
            errors.append(f"{where} is not an object")
            continue
        sname = s.get("name")
        if not isinstance(sname, str) or not sname:
            errors.append(f'{where}: "name" must be a non-empty string')
        else:
            where = f"series[{i}] ({sname})"
        params = s.get("params")
        if not isinstance(params, dict):
            errors.append(f'{where}: "params" must be an object')
            params = {}
        for k, v in params.items():
            if not isinstance(v, str):
                errors.append(f"{where}: param {k!r} is not a string")
        metrics = s.get("metrics")
        if not isinstance(metrics, dict):
            errors.append(f'{where}: "metrics" must be an object')
            metrics = {}
        for k, v in metrics.items():
            if not (v is None or isinstance(v, (int, float))):
                errors.append(f"{where}: metric {k!r} is not a number")
        for k in require_metrics:
            if k not in metrics:
                errors.append(f"{where}: missing required metric {k!r}")
        for k in require_params:
            if k not in params:
                errors.append(f"{where}: missing required param {k!r}")
    return errors


def validate_manifest(manifest):
    """Violations for a v2 artifact's manifest block."""
    if not isinstance(manifest, dict):
        return ['v2 artifact: "manifest" must be an object']
    errors = []
    if manifest.get("schema") != MANIFEST_SCHEMA:
        errors.append(
            f'manifest schema is {manifest.get("schema")!r}, '
            f"expected {MANIFEST_SCHEMA!r}"
        )
    for key in ("tool", "git_sha", "build_type", "compiler", "hostname"):
        if not isinstance(manifest.get(key), str) or not manifest.get(key):
            errors.append(f"manifest: {key!r} must be a non-empty string")
    for key in ("hardware_threads", "omp_max_threads", "unix_time_s"):
        if not isinstance(manifest.get(key), int):
            errors.append(f"manifest: {key!r} must be an integer")
    return errors


def selftest() -> int:
    """Exercise the validator against golden fixtures; 0 if all verdicts
    match expectations."""
    failures = []

    def expect(label, doc, want_clean, **kwargs):
        errs = validate(doc, **kwargs)
        if want_clean and errs:
            failures.append(f"{label}: expected clean, got {errs}")
        elif not want_clean and not errs:
            failures.append(f"{label}: expected violations, got none")

    expect("golden v2", GOLDEN_V2, True, bench="sparse",
           require_metrics=["real_time_ms_median"], require_manifest=True)
    expect("golden v1", GOLDEN_V1, True, bench="fig3_epoch_time")
    expect("v1 with manifest required", GOLDEN_V1, False,
           require_manifest=True)

    bad = copy.deepcopy(GOLDEN_V2)
    bad["schema"] = "trkx-bench-v9"
    expect("unknown schema", bad, False)

    bad = copy.deepcopy(GOLDEN_V2)
    del bad["manifest"]
    expect("v2 without manifest", bad, False)

    bad = copy.deepcopy(GOLDEN_V2)
    bad["manifest"]["git_sha"] = ""
    expect("empty git_sha", bad, False)

    bad = copy.deepcopy(GOLDEN_V2)
    bad["manifest"]["hardware_threads"] = "one"
    expect("non-integer hardware_threads", bad, False)

    bad = copy.deepcopy(GOLDEN_V2)
    bad["series"][0]["metrics"]["real_time_ms_median"] = "fast"
    expect("string metric", bad, False)

    bad = copy.deepcopy(GOLDEN_V2)
    bad["series"] = []
    expect("empty series", bad, False)

    bad = copy.deepcopy(GOLDEN_V2)
    bad["series"][0]["params"]["benchmark"] = 7
    expect("non-string param", bad, False)

    for f in failures:
        print(f"selftest failure: {f}", file=sys.stderr)
    if not failures:
        print("check_bench_json selftest: OK")
    return 1 if failures else 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("artifact", nargs="?", help="path to bench JSON")
    parser.add_argument("--bench", default="", help="expected bench name")
    parser.add_argument(
        "--require-metrics",
        default="",
        help="comma-separated metric keys every series must carry",
    )
    parser.add_argument(
        "--require-params",
        default="",
        help="comma-separated param keys every series must carry",
    )
    parser.add_argument(
        "--min-series", type=int, default=1, help="minimum series count"
    )
    parser.add_argument(
        "--require-manifest",
        action="store_true",
        help="reject v1 artifacts (schema v2 with manifest required)",
    )
    parser.add_argument(
        "--selftest",
        action="store_true",
        help="validate the embedded golden fixtures and exit",
    )
    args = parser.parse_args()

    if args.selftest:
        return selftest()
    if not args.artifact:
        parser.error("artifact path required (or --selftest)")

    try:
        with open(args.artifact, encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as exc:
        print(f"error: cannot parse {args.artifact}: {exc}", file=sys.stderr)
        return 1

    errors = validate(
        doc,
        bench=args.bench,
        require_metrics=[k for k in args.require_metrics.split(",") if k],
        require_params=[k for k in args.require_params.split(",") if k],
        min_series=args.min_series,
        require_manifest=args.require_manifest,
    )
    for e in errors:
        print(f"error: {e}", file=sys.stderr)
    if not errors:
        print(f"{args.artifact}: OK ({len(doc.get('series', []))} series)")
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main())
