#!/usr/bin/env bash
# ci_matrix.sh — run the full correctness/config matrix with distinct
# build dirs and emit a machine-readable summary.
#
# Configurations:
#   release      RelWithDebInfo build + full ctest suite (tier-1 gate)
#   simd         full ctest suite re-run against the release build with
#                the kernel dispatch pinned (TRKX_SIMD=scalar, then
#                TRKX_SIMD=avx2 when the host supports it) — every test
#                must pass on both tables, not just the auto-resolved one
#   asan-ubsan   TRKX_SANITIZE=address;undefined, suite minus perf-smoke
#                (the memory planner's arena is default-on, so ASan also
#                covers plan record/replay and arena guard bands)
#   tsan-stress  TRKX_SANITIZE=thread, tsan-stress labelled tests
#   chaos        fault-injection leg: chaos-labelled ctest suite, then a
#                TRKX_FAULTS matrix (I/O error, delay, rank-kill) driven
#                end-to-end through the example binaries, asserting exit
#                codes, emergency checkpoints, and clean resume
#   analyze      trkx-analyze (fixture selftest + all passes over the
#                real tree, including the cross-TU lock-order /
#                throw-boundary / env-registry / collective-consistency /
#                hot-path / rng-stream passes); the run is gated against
#                the committed baseline (scripts/analyze/baseline.json)
#                and also emits SARIF to build-ci/analyze.sarif; the
#                summary carries the total findings count and a per-pass
#                findings_by_pass map, and the leg dumps the cross-TU
#                fact database to build-ci/facts.json unconditionally,
#                as its own gated step
#   lint-tidy    scripts/lint.py (+ headers) and clang-tidy if installed
#   serve        serving robustness leg: trkx-serve driven end-to-end
#                under a TRKX_FAULTS matrix (transient/persistent stage
#                faults, admission faults, overload, corrupt-checkpoint
#                reload), asserting exit codes and the serve.* counter
#                contract on stdout; the summary carries the baseline
#                run's counters map
#   perf         scripts/trkx-bench quick profile against the release
#                build, gated by scripts/check_regression.py against the
#                committed BENCH_PR10.json trajectory; the summary carries
#                the regression count and per-bench verdicts
#
# Usage:
#   scripts/ci_matrix.sh [--only NAME[,NAME...]] [--out SUMMARY.json]
#
# Each configuration builds under build-ci/<name>; logs live next to the
# binaries. The summary JSON (default build-ci/ci_summary.json) follows
# the schema validated by scripts/check_ci_summary.py — the same
# artifact-plus-validator pattern as the bench JSON — so downstream
# tooling can gate on it without scraping logs. Exit code: number of
# failed configurations.

set -u
cd "$(dirname "$0")/.."

JOBS="${TRKX_JOBS:-$(nproc)}"
SUPP="$PWD/scripts/sanitizers"
OUT="build-ci/ci_summary.json"
ONLY=""
while [ "$#" -gt 0 ]; do
  case "$1" in
    --only) ONLY="$2"; shift 2 ;;
    --out) OUT="$2"; shift 2 ;;
    *) echo "usage: $0 [--only name,name] [--out summary.json]" >&2; exit 2 ;;
  esac
done

export ASAN_OPTIONS="halt_on_error=1:detect_leaks=1"
export LSAN_OPTIONS="suppressions=$SUPP/lsan.supp"
export UBSAN_OPTIONS="halt_on_error=1:print_stacktrace=1:suppressions=$SUPP/ubsan.supp"
export TSAN_OPTIONS="halt_on_error=1:suppressions=$SUPP/tsan.supp"

mkdir -p build-ci
NAMES=() STATUSES=() SECONDS_LIST=() DETAILS=() FINDINGS_LIST=()
REGRESSIONS_LIST=() VERDICTS_LIST=() BY_PASS_LIST=() COUNTERS_LIST=()

record() {  # record <name> <status> <seconds> <detail> [findings]
            #        [regressions] [verdicts-json] [findings-by-pass-json]
            #        [counters-json]
  NAMES+=("$1"); STATUSES+=("$2"); SECONDS_LIST+=("$3"); DETAILS+=("$4")
  FINDINGS_LIST+=("${5:-}")
  REGRESSIONS_LIST+=("${6:-}"); VERDICTS_LIST+=("${7:-}")
  BY_PASS_LIST+=("${8:-}"); COUNTERS_LIST+=("${9:-}")
  printf '[ci-matrix] %-12s %-5s (%ss) %s\n' "$1" "$2" "$3" "$4"
}

wants() {
  [ -z "$ONLY" ] && return 0
  case ",$ONLY," in *",$1,"*) return 0 ;; *) return 1 ;; esac
}

build_and_test() {  # build_and_test <name> <ctest-args...> -- <cmake-args...>
  local name="$1"; shift
  local ctest_args=()
  while [ "$#" -gt 0 ] && [ "$1" != "--" ]; do ctest_args+=("$1"); shift; done
  [ "$#" -gt 0 ] && shift
  local dir="build-ci/$name"
  local t0 t1
  t0=$(date +%s)
  mkdir -p "$dir"
  if ! cmake -B "$dir" -S . "$@" > "$dir/configure.log" 2>&1; then
    record "$name" fail "$(( $(date +%s) - t0 ))" "configure: $dir/configure.log"
    return 1
  fi
  if ! cmake --build "$dir" -j "$JOBS" > "$dir/build.log" 2>&1; then
    record "$name" fail "$(( $(date +%s) - t0 ))" "build: $dir/build.log"
    return 1
  fi
  if ! (cd "$dir" &&
        ctest --output-on-failure -j "$JOBS" "${ctest_args[@]}" \
          > ctest.log 2>&1); then
    record "$name" fail "$(( $(date +%s) - t0 ))" "ctest: $dir/ctest.log"
    return 1
  fi
  t1=$(date +%s)
  record "$name" pass "$((t1 - t0))" "$dir"
}

if wants release; then
  build_and_test release -- -DCMAKE_BUILD_TYPE=RelWithDebInfo
fi

if wants simd; then
  # One build, the suite run once per pinned dispatch table. TRKX_SIMD
  # overrides the auto cpuid resolution, so this proves the scalar and
  # AVX2 kernel tables both pass every test — equivalence beyond the
  # targeted ULP tests in kernels_test. Hosts without AVX2+FMA run the
  # scalar lap only (TRKX_SIMD=avx2 would be a fatal config error there).
  t0=$(date +%s)
  dir=build-ci/simd
  status=pass detail="$dir"
  mkdir -p "$dir"
  if cmake -B "$dir" -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo \
       > "$dir/configure.log" 2>&1 &&
     cmake --build "$dir" -j "$JOBS" > "$dir/build.log" 2>&1; then
    (cd "$dir" && TRKX_SIMD=scalar ctest --output-on-failure -j "$JOBS" \
       > ctest-scalar.log 2>&1) ||
      { status=fail; detail="ctest: $dir/ctest-scalar.log"; }
    if grep -q avx2 /proc/cpuinfo 2> /dev/null; then
      (cd "$dir" && TRKX_SIMD=avx2 ctest --output-on-failure -j "$JOBS" \
         > ctest-avx2.log 2>&1) ||
        { status=fail; detail="ctest: $dir/ctest-avx2.log"; }
    else
      echo "[ci-matrix] simd: host lacks AVX2, scalar lap only"
    fi
  else
    status=fail detail="build: $dir/build.log"
  fi
  record simd "$status" "$(( $(date +%s) - t0 ))" "$detail"
fi

if wants asan-ubsan; then
  build_and_test asan-ubsan -LE perf-smoke -- \
    "-DTRKX_SANITIZE=address;undefined" \
    -DTRKX_BUILD_BENCHES=OFF -DTRKX_BUILD_EXAMPLES=OFF
fi

if wants tsan-stress; then
  build_and_test tsan-stress -L tsan-stress -- -DTRKX_SANITIZE=thread \
    -DTRKX_BUILD_BENCHES=OFF -DTRKX_BUILD_EXAMPLES=OFF
fi

if wants chaos; then
  t0=$(date +%s)
  dir=build-ci/chaos
  chaos_log="$dir/chaos.log"
  status=pass
  mkdir -p "$dir"
  if cmake -B "$dir" -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo \
       -DTRKX_BUILD_BENCHES=OFF > "$dir/configure.log" 2>&1 &&
     cmake --build "$dir" -j "$JOBS" > "$dir/build.log" 2>&1; then
    # Deterministic in-test fault matrix first: crash/resume bit-equality,
    # rank-kill propagation, collective timeouts, I/O retry + quarantine.
    (cd "$dir" && ctest --output-on-failure -j "$JOBS" -L chaos \
       > ctest.log 2>&1) || status=fail
    # Then the same failure modes end-to-end through the example binaries,
    # armed via TRKX_FAULTS exactly as an operator would.
    ex="$dir/examples/minibatch_training"
    dex="$dir/examples/distributed_training"
    ck="$dir/chaos-ckpt"
    rm -rf "$ck"
    : > "$chaos_log"
    chaos_run() {  # chaos_run <expect:ok|fail> <faults> <cmd...>
      local expect="$1" faults="$2"; shift 2
      echo "== TRKX_FAULTS='$faults' $*" >> "$chaos_log"
      local rc=0
      TRKX_FAULTS="$faults" "$@" >> "$chaos_log" 2>&1 || rc=$?
      if { [ "$expect" = ok ] && [ "$rc" -ne 0 ]; } ||
         { [ "$expect" = fail ] && [ "$rc" -eq 0 ]; }; then
        echo "== FAIL: expected $expect, got exit $rc" >> "$chaos_log"
        status=fail
      fi
    }
    # Transient I/O fault: the tolerant loader retries and the run
    # completes (the log shows nonzero retries in the event-cache line).
    chaos_run ok "io.read_event:error:nth=1" \
      "$ex" --scale 0.02 --epochs 2 --event-cache "$dir/chaos-events.bin" \
      --checkpoint-dir "$ck/io"
    # Injected latency only slows the load; results are unaffected.
    chaos_run ok "io.read_event:delay:ms=20:every=3" \
      "$ex" --scale 0.02 --epochs 2 --event-cache "$dir/chaos-events.bin" \
      --checkpoint-dir "$ck/delay"
    # Rank-kill mid-train: nonzero exit with a checkpoint left behind...
    chaos_run fail "train.epoch:rank-kill:nth=2" \
      "$ex" --scale 0.02 --epochs 3 --checkpoint-dir "$ck/kill"
    if [ ! -e "$ck/kill/ckpt-000001.ckpt" ]; then
      echo "== FAIL: no checkpoint after rank-kill" >> "$chaos_log"
      status=fail
    fi
    # ...and a fault-free rerun resumes it to completion.
    chaos_run ok "" \
      "$ex" --scale 0.02 --epochs 3 --checkpoint-dir "$ck/kill" --resume
    # Dead DDP rank: survivors hit the collective timeout instead of
    # deadlocking, flush an emergency checkpoint, and exit nonzero.
    chaos_run fail "train.epoch:rank-kill:nth=2:rank=1" \
      "$dex" --ranks 2 --scale 0.02 --epochs 3 --checkpoint-dir "$ck/ddp" \
      --comm-timeout-ms 5000
    chaos_run ok "" \
      "$dex" --ranks 2 --scale 0.02 --epochs 3 --checkpoint-dir "$ck/ddp" \
      --resume
  else
    status=fail
  fi
  record chaos "$status" "$(( $(date +%s) - t0 ))" "$chaos_log"
fi

if wants serve; then
  # Serving robustness: the failure modes that must degrade, not kill.
  # Every run asserts the exit code AND the serve.* counter contract the
  # driver prints on stdout — an injected fault that silently stopped
  # being counted fails the leg even if the process exits 0.
  t0=$(date +%s)
  dir=build-ci/serve
  serve_log="$dir/serve.log"
  status=pass counters=""
  mkdir -p "$dir"
  if cmake -B "$dir" -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo \
       -DTRKX_BUILD_BENCHES=OFF -DTRKX_BUILD_EXAMPLES=OFF \
       > "$dir/configure.log" 2>&1 &&
     cmake --build "$dir" -j "$JOBS" --target trkx-serve \
       > "$dir/build.log" 2>&1; then
    srv="$dir/src/serve/trkx-serve"
    ck="$dir/serve-ckpt"
    rm -rf "$ck"
    : > "$serve_log"
    run_idx=0
    serve_run() {  # serve_run <expect:ok|fail> <faults> <asserts> <args...>
      # <asserts>: space-separated grep -E patterns that must ALL match
      # the run's stdout (the serve.<counter>=<value> contract).
      local expect="$1" faults="$2" asserts="$3"; shift 3
      run_idx=$((run_idx + 1))
      local out="$dir/run-$run_idx.out" rc=0 pat
      echo "== [$run_idx] TRKX_FAULTS='$faults' trkx-serve $*" >> "$serve_log"
      TRKX_FAULTS="$faults" "$srv" "$@" > "$out" 2>> "$serve_log" || rc=$?
      cat "$out" >> "$serve_log"
      if { [ "$expect" = ok ] && [ "$rc" -ne 0 ]; } ||
         { [ "$expect" = fail ] && [ "$rc" -eq 0 ]; }; then
        echo "== FAIL: expected $expect, got exit $rc" >> "$serve_log"
        status=fail
      fi
      for pat in $asserts; do
        if ! grep -Eq "$pat" "$out"; then
          echo "== FAIL: counter assert '$pat' not satisfied" >> "$serve_log"
          status=fail
        fi
      done
    }
    # Baseline, fault-free: everything accepted completes, and the warm
    # model + a first checkpoint are left behind for the later runs.
    serve_run ok "" \
      "serve.completed=[1-9] serve.failed=0 serve.exit=ok" \
      --events 10 --train 2 --save-model "$dir/model.bin" \
      --checkpoint-dir "$ck" --write-checkpoint
    # Transient stage fault: retried within budget, the request completes.
    serve_run ok "serve.stage:error:nth=3" \
      "serve.retry=[1-9] serve.retry.exhausted=0 serve.exit=ok" \
      --events 8 --model "$dir/model.bin"
    # Admission fault: one fast typed rejection, the rest serve normally.
    serve_run ok "serve.admit:error:nth=2" \
      "serve.rejected.admit_fault=1 serve.submit.rejected=[1-9] serve.exit=ok" \
      --events 8 --model "$dir/model.bin"
    # Persistent stage fault: every request fails *typed* (retry budget
    # exhausted per request), yet the server drains and exits cleanly —
    # degraded, not dead.
    serve_run ok "serve.stage:error:every=1" \
      "serve.retry.exhausted=[1-9] serve.result.failed=[1-9] serve.exit=ok" \
      --events 6 --model "$dir/model.bin"
    # Overload: 1 worker, depth-1 queue, full-speed submission — the
    # bounded queue sheds with OverloadError instead of queueing.
    serve_run ok "" \
      "serve.rejected.queue_full=[1-9] serve.completed=[1-9] serve.exit=ok" \
      --events 24 --workers 1 --queue-depth 1 --model "$dir/model.bin"
    # Corrupt newest checkpoint: the reload scan skips it and swaps in the
    # older valid one.
    printf 'torn write garbage' > "$ck/ckpt-000099.ckpt"
    serve_run ok "" \
      "serve.reload.ok=[1-9] serve.exit=ok" \
      --events 6 --model "$dir/model.bin" --checkpoint-dir "$ck" \
      --reload-every 3
    # Injected reload fault: every reload fails, the original replica
    # keeps serving (generation stays 1).
    serve_run ok "serve.checkpoint_reload:error:every=1" \
      "serve.reload.fail=[1-9] serve.replica.generation=1 serve.exit=ok" \
      --events 6 --model "$dir/model.bin" --checkpoint-dir "$ck" \
      --reload-every 2
    counters=$(python3 - "$dir/run-1.out" << 'EOF'
import json, sys
c = {}
for line in open(sys.argv[1]):
    key, _, value = line.strip().partition("=")
    if key.startswith("serve.") and value.isdigit():
        c[key] = int(value)
print(json.dumps(c))
EOF
    ) || status=fail
  else
    status=fail
    serve_log="$dir/build.log"
  fi
  record serve "$status" "$(( $(date +%s) - t0 ))" "$serve_log" \
    "" "" "" "" "$counters"
fi

if wants perf; then
  t0=$(date +%s)
  dir=build-ci/perf
  perf_log="$dir/perf.log"
  status=pass regressions="" verdicts=""
  mkdir -p "$dir"
  if cmake -B "$dir" -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo \
       > "$dir/configure.log" 2>&1 &&
     cmake --build "$dir" -j "$JOBS" > "$dir/build.log" 2>&1; then
    if python3 scripts/trkx-bench --build-dir "$dir" --profile quick \
         --out "$dir/BENCH.json" > "$perf_log" 2>&1; then
      python3 scripts/check_regression.py BENCH_PR10.json "$dir/BENCH.json" \
        --report "$dir/regression.json" >> "$perf_log" 2>&1 || status=fail
      if [ -f "$dir/regression.json" ]; then
        regressions=$(python3 -c "import json; \
print(json.load(open('$dir/regression.json'))['regressions'])")
        verdicts=$(python3 -c "import json; \
print(json.dumps(json.load(open('$dir/regression.json'))['verdicts']))")
      fi
    else
      status=fail
    fi
  else
    status=fail
    perf_log="$dir/build.log"
  fi
  record perf "$status" "$(( $(date +%s) - t0 ))" "$perf_log" "" \
    "$regressions" "$verdicts"
fi

if wants analyze; then
  t0=$(date +%s)
  analyze_log=build-ci/analyze.log
  status=pass
  python3 scripts/analyze/selftest.py > "$analyze_log" 2>&1 || status=fail
  # The phase-1 fact database is archived unconditionally, as its own
  # gated step (empty --passes), so a pass failure can't leave CI
  # without the facts needed to debug it.
  python3 scripts/trkx-analyze --root . --passes '' \
    --facts-out build-ci/facts.json \
    >> "$analyze_log" 2>&1 || status=fail
  # One run over the real tree: all passes (per-file + cross-TU), the
  # per-pass finding counts for the summary, SARIF for code-scanning
  # upload, and the committed-baseline gate (empty today; the ratchet
  # for adopting a new pass against known debt).
  python3 scripts/trkx-analyze --root . \
    --counts-out build-ci/analyze_counts.json \
    --sarif build-ci/analyze.sarif \
    --baseline scripts/analyze/baseline.json \
    >> "$analyze_log" 2>&1 || status=fail
  # Findings print one per line as "path:line: [rule] message".
  findings=$(grep -c ': \[[a-z-]*\] ' "$analyze_log" || true)
  by_pass=""
  [ -f build-ci/analyze_counts.json ] && \
    by_pass=$(cat build-ci/analyze_counts.json)
  record analyze "$status" "$(( $(date +%s) - t0 ))" "$analyze_log" \
    "$findings" "" "" "$by_pass"
fi

if wants lint-tidy; then
  t0=$(date +%s)
  lint_log=build-ci/lint.log
  if python3 scripts/lint.py --check-headers --compiler "${CXX:-c++}" \
       > "$lint_log" 2>&1; then
    if command -v clang-tidy > /dev/null 2>&1; then
      if bash scripts/check_static.sh --tidy >> "$lint_log" 2>&1; then
        record lint-tidy pass "$(( $(date +%s) - t0 ))" "$lint_log"
      else
        record lint-tidy fail "$(( $(date +%s) - t0 ))" "$lint_log"
      fi
    else
      record lint-tidy pass "$(( $(date +%s) - t0 ))" \
        "lint only (clang-tidy not installed)"
    fi
  else
    record lint-tidy fail "$(( $(date +%s) - t0 ))" "$lint_log"
  fi
fi

# ---- summary JSON ----
FAILED=0
{
  printf '{\n  "schema": "trkx-ci-summary-v6",\n'
  printf '  "jobs": %s,\n' "$JOBS"
  printf '  "configs": [\n'
  for i in "${!NAMES[@]}"; do
    [ "${STATUSES[$i]}" = fail ] && FAILED=$((FAILED + 1))
    extra=""
    [ -n "${FINDINGS_LIST[$i]}" ] && extra=", \"findings\": ${FINDINGS_LIST[$i]}"
    [ -n "${REGRESSIONS_LIST[$i]}" ] && \
      extra="$extra, \"regressions\": ${REGRESSIONS_LIST[$i]}"
    [ -n "${VERDICTS_LIST[$i]}" ] && \
      extra="$extra, \"verdicts\": ${VERDICTS_LIST[$i]}"
    [ -n "${BY_PASS_LIST[$i]}" ] && \
      extra="$extra, \"findings_by_pass\": ${BY_PASS_LIST[$i]}"
    [ -n "${COUNTERS_LIST[$i]}" ] && \
      extra="$extra, \"counters\": ${COUNTERS_LIST[$i]}"
    printf '    {"name": "%s", "status": "%s", "seconds": %s, "detail": "%s"%s}%s\n' \
      "${NAMES[$i]}" "${STATUSES[$i]}" "${SECONDS_LIST[$i]}" \
      "${DETAILS[$i]}" "$extra" \
      "$([ "$i" -lt $(( ${#NAMES[@]} - 1 )) ] && echo ,)"
  done
  printf '  ],\n'
  if [ "$FAILED" -eq 0 ]; then
    printf '  "overall": "pass"\n'
  else
    printf '  "overall": "fail"\n'
  fi
  printf '}\n'
} > "$OUT"

python3 scripts/check_ci_summary.py "$OUT" || exit 1
echo "[ci-matrix] summary: $OUT ($FAILED failed)"
exit "$FAILED"
