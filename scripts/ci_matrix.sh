#!/usr/bin/env bash
# ci_matrix.sh — run the full correctness/config matrix with distinct
# build dirs and emit a machine-readable summary.
#
# Configurations:
#   release      RelWithDebInfo build + full ctest suite (tier-1 gate)
#   asan-ubsan   TRKX_SANITIZE=address;undefined, suite minus perf-smoke
#   tsan-stress  TRKX_SANITIZE=thread, tsan-stress labelled tests
#   analyze      trkx-analyze (fixture selftest + all passes over the
#                real tree); the summary carries its findings count
#   lint-tidy    scripts/lint.py (+ headers) and clang-tidy if installed
#
# Usage:
#   scripts/ci_matrix.sh [--only NAME[,NAME...]] [--out SUMMARY.json]
#
# Each configuration builds under build-ci/<name>; logs live next to the
# binaries. The summary JSON (default build-ci/ci_summary.json) follows
# the schema validated by scripts/check_ci_summary.py — the same
# artifact-plus-validator pattern as the bench JSON — so downstream
# tooling can gate on it without scraping logs. Exit code: number of
# failed configurations.

set -u
cd "$(dirname "$0")/.."

JOBS="${TRKX_JOBS:-$(nproc)}"
SUPP="$PWD/scripts/sanitizers"
OUT="build-ci/ci_summary.json"
ONLY=""
while [ "$#" -gt 0 ]; do
  case "$1" in
    --only) ONLY="$2"; shift 2 ;;
    --out) OUT="$2"; shift 2 ;;
    *) echo "usage: $0 [--only name,name] [--out summary.json]" >&2; exit 2 ;;
  esac
done

export ASAN_OPTIONS="halt_on_error=1:detect_leaks=1"
export LSAN_OPTIONS="suppressions=$SUPP/lsan.supp"
export UBSAN_OPTIONS="halt_on_error=1:print_stacktrace=1:suppressions=$SUPP/ubsan.supp"
export TSAN_OPTIONS="halt_on_error=1:suppressions=$SUPP/tsan.supp"

mkdir -p build-ci
NAMES=() STATUSES=() SECONDS_LIST=() DETAILS=() FINDINGS_LIST=()

record() {  # record <name> <status> <seconds> <detail> [findings]
  NAMES+=("$1"); STATUSES+=("$2"); SECONDS_LIST+=("$3"); DETAILS+=("$4")
  FINDINGS_LIST+=("${5:-}")
  printf '[ci-matrix] %-12s %-5s (%ss) %s\n' "$1" "$2" "$3" "$4"
}

wants() {
  [ -z "$ONLY" ] && return 0
  case ",$ONLY," in *",$1,"*) return 0 ;; *) return 1 ;; esac
}

build_and_test() {  # build_and_test <name> <ctest-args...> -- <cmake-args...>
  local name="$1"; shift
  local ctest_args=()
  while [ "$#" -gt 0 ] && [ "$1" != "--" ]; do ctest_args+=("$1"); shift; done
  [ "$#" -gt 0 ] && shift
  local dir="build-ci/$name"
  local t0 t1
  t0=$(date +%s)
  mkdir -p "$dir"
  if ! cmake -B "$dir" -S . "$@" > "$dir/configure.log" 2>&1; then
    record "$name" fail "$(( $(date +%s) - t0 ))" "configure: $dir/configure.log"
    return 1
  fi
  if ! cmake --build "$dir" -j "$JOBS" > "$dir/build.log" 2>&1; then
    record "$name" fail "$(( $(date +%s) - t0 ))" "build: $dir/build.log"
    return 1
  fi
  if ! (cd "$dir" &&
        ctest --output-on-failure -j "$JOBS" "${ctest_args[@]}" \
          > ctest.log 2>&1); then
    record "$name" fail "$(( $(date +%s) - t0 ))" "ctest: $dir/ctest.log"
    return 1
  fi
  t1=$(date +%s)
  record "$name" pass "$((t1 - t0))" "$dir"
}

if wants release; then
  build_and_test release -- -DCMAKE_BUILD_TYPE=RelWithDebInfo
fi

if wants asan-ubsan; then
  build_and_test asan-ubsan -LE perf-smoke -- \
    "-DTRKX_SANITIZE=address;undefined" \
    -DTRKX_BUILD_BENCHES=OFF -DTRKX_BUILD_EXAMPLES=OFF
fi

if wants tsan-stress; then
  build_and_test tsan-stress -L tsan-stress -- -DTRKX_SANITIZE=thread \
    -DTRKX_BUILD_BENCHES=OFF -DTRKX_BUILD_EXAMPLES=OFF
fi

if wants analyze; then
  t0=$(date +%s)
  analyze_log=build-ci/analyze.log
  status=pass
  python3 scripts/analyze/selftest.py > "$analyze_log" 2>&1 || status=fail
  python3 scripts/trkx-analyze --root . >> "$analyze_log" 2>&1 || status=fail
  # Findings print one per line as "path:line: [rule] message".
  findings=$(grep -c ': \[[a-z-]*\] ' "$analyze_log" || true)
  record analyze "$status" "$(( $(date +%s) - t0 ))" "$analyze_log" \
    "$findings"
fi

if wants lint-tidy; then
  t0=$(date +%s)
  lint_log=build-ci/lint.log
  if python3 scripts/lint.py --check-headers --compiler "${CXX:-c++}" \
       > "$lint_log" 2>&1; then
    if command -v clang-tidy > /dev/null 2>&1; then
      if bash scripts/check_static.sh --tidy >> "$lint_log" 2>&1; then
        record lint-tidy pass "$(( $(date +%s) - t0 ))" "$lint_log"
      else
        record lint-tidy fail "$(( $(date +%s) - t0 ))" "$lint_log"
      fi
    else
      record lint-tidy pass "$(( $(date +%s) - t0 ))" \
        "lint only (clang-tidy not installed)"
    fi
  else
    record lint-tidy fail "$(( $(date +%s) - t0 ))" "$lint_log"
  fi
fi

# ---- summary JSON ----
FAILED=0
{
  printf '{\n  "schema": "trkx-ci-summary-v2",\n'
  printf '  "jobs": %s,\n' "$JOBS"
  printf '  "configs": [\n'
  for i in "${!NAMES[@]}"; do
    [ "${STATUSES[$i]}" = fail ] && FAILED=$((FAILED + 1))
    extra=""
    [ -n "${FINDINGS_LIST[$i]}" ] && extra=", \"findings\": ${FINDINGS_LIST[$i]}"
    printf '    {"name": "%s", "status": "%s", "seconds": %s, "detail": "%s"%s}%s\n' \
      "${NAMES[$i]}" "${STATUSES[$i]}" "${SECONDS_LIST[$i]}" \
      "${DETAILS[$i]}" "$extra" \
      "$([ "$i" -lt $(( ${#NAMES[@]} - 1 )) ] && echo ,)"
  done
  printf '  ],\n'
  if [ "$FAILED" -eq 0 ]; then
    printf '  "overall": "pass"\n'
  else
    printf '  "overall": "fail"\n'
  fi
  printf '}\n'
} > "$OUT"

python3 scripts/check_ci_summary.py "$OUT" || exit 1
echo "[ci-matrix] summary: $OUT ($FAILED failed)"
exit "$FAILED"
