#!/usr/bin/env python3
"""Noise-aware perf regression gate over bench JSON artifacts.

Usage:
    check_regression.py BASELINE CURRENT [CURRENT...]
                        [--threshold 0.5] [--min-value 1e-6]
                        [--benches a,b] [--report out.json]
    check_regression.py --selftest

BASELINE is a committed trkx-bench trajectory (scripts/trkx-bench). Each
CURRENT may be another trajectory or a loose per-bench v1/v2 artifact
(bench/bench_json.hpp); benches are matched by name, then series by name,
then metrics by key — only pairs present on both sides are compared, so a
bench gaining or losing series never fails the gate by itself.

Direction is inferred from the metric name: time/stall/bytes-like metrics
must not grow, rate/quality-like metrics must not shrink, anything
unrecognised is informational only. A comparison fails when the current
value degrades by more than the relative threshold. Noise guards:

  * metrics whose baseline magnitude is below --min-value are skipped
    (relative noise on near-zero timings is unbounded);
  * when both sides carry a sibling "<metric>_stddev" from repeated runs,
    the allowed band widens by 2*stddev/|baseline| on top of the
    threshold (min-repeat variance).

The default threshold is deliberately generous (50%) because CI runs on
shared 1-core containers; TRKX_REGRESSION_THRESHOLD overrides it without
touching ctest wiring. --report writes a machine-readable verdict map
consumed by scripts/ci_matrix.sh for the ci_summary perf leg. Exits 1 on
any regression, 0 otherwise. --selftest runs the embedded pass/fail
fixtures and exits non-zero if the comparator's verdicts drift.
"""

import argparse
import json
import math
import os
import sys

LOWER_BETTER = ("_s", "_ms", "_us", "_ns", "_seconds", "_s_median",
                "_bytes", "_mb", "_gb")
LOWER_TOKENS = ("time", "stall", "latency", "seconds", "bytes")
HIGHER_TOKENS = ("per_sec", "per_second", "throughput", "speedup",
                 "hit_rate", "f1", "auc", "precision", "recall",
                 "events_kept", "edge_fraction")


def direction(metric):
    """'lower' | 'higher' | None (informational) for a metric name."""
    low = metric.lower()
    if low.endswith("_stddev"):
        return None
    for tok in HIGHER_TOKENS:
        if tok in low:
            return "higher"
    if low.endswith(LOWER_BETTER):
        return "lower"
    for tok in LOWER_TOKENS:
        if tok in low:
            return "lower"
    return None


def as_benches(doc):
    """{bench name: artifact} from a trajectory or a loose artifact."""
    if not isinstance(doc, dict):
        return {}
    if isinstance(doc.get("benches"), list):
        return {b.get("bench", f"#{i}"): b
                for i, b in enumerate(doc["benches"])
                if isinstance(b, dict)}
    if "bench" in doc:
        return {doc["bench"]: doc}
    return {}


def series_map(artifact):
    out = {}
    for s in artifact.get("series", []):
        if isinstance(s, dict) and isinstance(s.get("name"), str):
            out[s["name"]] = s.get("metrics", {}) or {}
    return out


def compare(baseline, current, threshold, min_value):
    """Compare two {bench: artifact} maps.

    Returns (regressions, verdicts, n_compared): regressions is a list of
    human-readable strings, verdicts maps bench name -> "pass"|"fail".
    """
    regressions = []
    verdicts = {}
    n_compared = 0
    for bench, base_art in baseline.items():
        cur_art = current.get(bench)
        if cur_art is None:
            continue
        verdicts.setdefault(bench, "pass")
        base_series = series_map(base_art)
        cur_series = series_map(cur_art)
        for sname, base_metrics in base_series.items():
            cur_metrics = cur_series.get(sname)
            if cur_metrics is None:
                continue
            for metric, base_val in base_metrics.items():
                cur_val = cur_metrics.get(metric)
                sense = direction(metric)
                if sense is None:
                    continue
                if not isinstance(base_val, (int, float)) or \
                        not isinstance(cur_val, (int, float)):
                    continue
                if not (math.isfinite(base_val) and math.isfinite(cur_val)):
                    continue
                if abs(base_val) < min_value:
                    continue
                n_compared += 1
                # Widen the band by repeat variance when both sides
                # carry it.
                allowed = threshold
                bs = base_metrics.get(metric + "_stddev")
                cs = cur_metrics.get(metric + "_stddev")
                if isinstance(bs, (int, float)) and \
                        isinstance(cs, (int, float)):
                    allowed += 2.0 * max(bs, cs) / abs(base_val)
                if sense == "lower":
                    limit = base_val * (1.0 + allowed)
                    bad = cur_val > limit
                else:
                    limit = base_val * (1.0 - allowed)
                    bad = cur_val < limit
                if bad:
                    verdicts[bench] = "fail"
                    regressions.append(
                        f"{bench}/{sname}/{metric}: {cur_val:.6g} vs "
                        f"baseline {base_val:.6g} "
                        f"(allowed {'<=' if sense == 'lower' else '>='} "
                        f"{limit:.6g}, {sense} is better)"
                    )
    return regressions, verdicts, n_compared


def load(path):
    with open(path, encoding="utf-8") as f:
        return json.load(f)


def selftest() -> int:
    """Pass/fail fixtures for the comparator itself."""
    base = {"schema": "trkx-bench-trajectory-v1", "benches": [{
        "bench": "demo",
        "series": [
            {"name": "a", "metrics": {"epoch_s_median": 1.0,
                                      "throughput_per_sec": 100.0,
                                      "mystery_units": 5.0}},
            {"name": "noisy", "metrics": {"step_s": 1.0,
                                          "step_s_stddev": 0.4}},
            {"name": "tiny", "metrics": {"blip_s": 1e-9}},
        ],
    }]}
    failures = []

    def run(label, cur, want_regressions, threshold=0.5):
        regs, verdicts, _ = compare(as_benches(base), as_benches(cur),
                                    threshold, 1e-6)
        got = len(regs)
        if (got > 0) != (want_regressions > 0) or got != want_regressions:
            failures.append(
                f"{label}: expected {want_regressions} regressions, "
                f"got {got}: {regs} (verdicts {verdicts})")

    identical = json.loads(json.dumps(base))
    run("identical trajectories pass", identical, 0)

    slower = json.loads(json.dumps(base))
    slower["benches"][0]["series"][0]["metrics"]["epoch_s_median"] = 1.8
    run("time regression fails", slower, 1)

    faster = json.loads(json.dumps(base))
    faster["benches"][0]["series"][0]["metrics"]["epoch_s_median"] = 0.3
    run("time improvement passes", faster, 0)

    thrpt = json.loads(json.dumps(base))
    thrpt["benches"][0]["series"][0]["metrics"]["throughput_per_sec"] = 40.0
    run("throughput drop fails", thrpt, 1)

    mystery = json.loads(json.dumps(base))
    mystery["benches"][0]["series"][0]["metrics"]["mystery_units"] = 500.0
    run("unrecognised metric is informational", mystery, 0)

    # 1.8x with stddev 0.4 on both sides: band = 0.5 + 2*0.4 = 1.3 -> ok.
    noisy = json.loads(json.dumps(base))
    noisy["benches"][0]["series"][1]["metrics"]["step_s"] = 1.8
    run("repeat variance widens the band", noisy, 0)

    tiny = json.loads(json.dumps(base))
    tiny["benches"][0]["series"][2]["metrics"]["blip_s"] = 1e-3
    run("sub-min-value baselines are skipped", tiny, 0)

    loose = {"bench": "demo", "series": [
        {"name": "a", "metrics": {"epoch_s_median": 9.9}}]}
    run("loose v1 artifact matched by bench name", loose, 1)

    for f in failures:
        print(f"selftest failure: {f}", file=sys.stderr)
    if not failures:
        print("check_regression selftest: OK")
    return 1 if failures else 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline", nargs="?",
                        help="committed trajectory JSON")
    parser.add_argument("current", nargs="*",
                        help="trajectory or per-bench artifacts to gate")
    parser.add_argument("--threshold", type=float,
                        default=float(os.environ.get(
                            "TRKX_REGRESSION_THRESHOLD", "0.5")),
                        help="relative degradation allowed (0.5 = 50%%)")
    parser.add_argument("--min-value", type=float, default=1e-6,
                        help="skip metrics with |baseline| below this")
    parser.add_argument("--benches", default="",
                        help="comma-separated subset to gate")
    parser.add_argument("--report", default="",
                        help="write per-bench verdict JSON here")
    parser.add_argument("--selftest", action="store_true",
                        help="run the embedded pass/fail fixtures")
    args = parser.parse_args()

    if args.selftest:
        return selftest()
    if not args.baseline or not args.current:
        parser.error("BASELINE and at least one CURRENT required "
                     "(or --selftest)")

    try:
        baseline = as_benches(load(args.baseline))
    except (OSError, json.JSONDecodeError) as exc:
        print(f"error: cannot parse {args.baseline}: {exc}",
              file=sys.stderr)
        return 1
    current = {}
    for path in args.current:
        try:
            current.update(as_benches(load(path)))
        except (OSError, json.JSONDecodeError) as exc:
            print(f"error: cannot parse {path}: {exc}", file=sys.stderr)
            return 1

    subset = [b for b in args.benches.split(",") if b]
    if subset:
        baseline = {k: v for k, v in baseline.items() if k in subset}

    regressions, verdicts, n = compare(baseline, current,
                                       args.threshold, args.min_value)
    if args.report:
        with open(args.report, "w", encoding="utf-8") as f:
            json.dump({"threshold": args.threshold,
                       "compared": n,
                       "regressions": len(regressions),
                       "verdicts": verdicts}, f, indent=1)
            f.write("\n")

    for r in regressions:
        print(f"REGRESSION: {r}", file=sys.stderr)
    matched = sum(1 for b in baseline if b in current)
    print(f"check_regression: {matched} benches matched, {n} metrics "
          f"compared, {len(regressions)} regression(s) at "
          f"threshold {args.threshold:.0%}")
    if matched == 0:
        print("error: no benches matched between baseline and current",
              file=sys.stderr)
        return 1
    return 1 if regressions else 0


if __name__ == "__main__":
    sys.exit(main())
