#!/usr/bin/env bash
# check_static.sh — single entry point for the trkx correctness gate.
#
# Runs, in order (skip/select with flags):
#   lint        scripts/lint.py + standalone-header compile check
#   analyze     trkx-analyze: fixture selftest + every pass — per-file
#               (omp-sharing, layering, numeric-safety, kernel-dispatch,
#               conventions) and cross-TU (lock-order, throw-boundary,
#               env-registry, collective-consistency, hot-path,
#               rng-stream); dumps the fact database to
#               build-check/facts.json as its own gated step
#   tidy        clang-tidy over src/ (skipped with a note if not installed)
#   tsa         Clang -Wthread-safety -Werror build (skipped without clang)
#   asan        ASan+UBSan build, full test suite (minus perf-smoke)
#   tsan        TSan build, tsan-stress labelled tests
#
# Usage:
#   scripts/check_static.sh            # everything applicable
#   scripts/check_static.sh --lint --analyze --asan
#   TRKX_JOBS=8 scripts/check_static.sh --tsan
#
# Build trees go under build-check/<leg> so they never disturb ./build.
# Exit code: number of failed legs (0 = gate passed).

set -u
cd "$(dirname "$0")/.."

JOBS="${TRKX_JOBS:-$(nproc)}"
SUPP="$PWD/scripts/sanitizers"
RUN_LINT=0 RUN_ANALYZE=0 RUN_TIDY=0 RUN_TSA=0 RUN_ASAN=0 RUN_TSAN=0
if [ "$#" -eq 0 ]; then
  RUN_LINT=1 RUN_ANALYZE=1 RUN_TIDY=1 RUN_TSA=1 RUN_ASAN=1 RUN_TSAN=1
fi
for arg in "$@"; do
  case "$arg" in
    --lint) RUN_LINT=1 ;;
    --analyze) RUN_ANALYZE=1 ;;
    --tidy) RUN_TIDY=1 ;;
    --tsa) RUN_TSA=1 ;;
    --asan) RUN_ASAN=1 ;;
    --tsan) RUN_TSAN=1 ;;
    --all) RUN_LINT=1 RUN_ANALYZE=1 RUN_TIDY=1 RUN_TSA=1 RUN_ASAN=1 RUN_TSAN=1 ;;
    *) echo "usage: $0 [--lint] [--analyze] [--tidy] [--tsa] [--asan]" \
            "[--tsan] [--all]" >&2
       exit 2 ;;
  esac
done

FAILURES=0
note() { printf '\n=== %s ===\n' "$*"; }
fail() { echo "FAIL: $*" >&2; FAILURES=$((FAILURES + 1)); }

# Sanitizer runtime options. halt_on_error turns any report into a test
# failure; the suppression files silence known libgomp runtime noise only
# (policy: scripts/sanitizers/*.supp headers).
export ASAN_OPTIONS="halt_on_error=1:detect_leaks=1:strict_string_checks=1"
export LSAN_OPTIONS="suppressions=$SUPP/lsan.supp"
export UBSAN_OPTIONS="halt_on_error=1:print_stacktrace=1:suppressions=$SUPP/ubsan.supp"
export TSAN_OPTIONS="halt_on_error=1:second_deadlock_stack=1:suppressions=$SUPP/tsan.supp"

configure_and_test() {
  # configure_and_test <leg> <ctest-args...> -- <cmake-args...>
  local leg="$1"; shift
  local ctest_args=()
  while [ "$#" -gt 0 ] && [ "$1" != "--" ]; do ctest_args+=("$1"); shift; done
  [ "$#" -gt 0 ] && shift  # drop --
  local dir="build-check/$leg"
  mkdir -p "$dir"
  cmake -B "$dir" -S . -DTRKX_BUILD_BENCHES=OFF -DTRKX_BUILD_EXAMPLES=OFF \
        "$@" > "$dir/configure.log" 2>&1 ||
    { fail "$leg: configure (see $dir/configure.log)"; return 1; }
  cmake --build "$dir" -j "$JOBS" > "$dir/build.log" 2>&1 ||
    { fail "$leg: build (see $dir/build.log)"; tail -30 "$dir/build.log"; return 1; }
  (cd "$dir" && ctest --output-on-failure -j "$JOBS" "${ctest_args[@]}") ||
    { fail "$leg: tests"; return 1; }
}

if [ "$RUN_LINT" -eq 1 ]; then
  note "lint (scripts/lint.py + standalone headers)"
  python3 scripts/lint.py --check-headers --compiler "${CXX:-c++}" ||
    fail "lint"
fi

if [ "$RUN_ANALYZE" -eq 1 ]; then
  note "trkx-analyze (selftest + per-file and cross-TU passes)"
  python3 scripts/analyze/selftest.py || fail "analyze-selftest"
  mkdir -p build-check
  # The fact-DB dump is its own gated step (empty --passes runs no
  # passes): a failed dump fails the leg even when every pass is clean,
  # and a pass failure can't mask a missing archive.
  python3 scripts/trkx-analyze --root . --passes '' \
    --facts-out build-check/facts.json || fail "trkx-analyze facts dump"
  python3 scripts/trkx-analyze --root . || fail "trkx-analyze"
fi

if [ "$RUN_TIDY" -eq 1 ]; then
  note "clang-tidy"
  if command -v clang-tidy > /dev/null 2>&1; then
    dir=build-check/tidy
    mkdir -p "$dir"
    cmake -B "$dir" -S . -DCMAKE_EXPORT_COMPILE_COMMANDS=ON \
          -DTRKX_BUILD_BENCHES=OFF -DTRKX_BUILD_EXAMPLES=OFF \
          > "$dir/configure.log" 2>&1 ||
      { fail "tidy: configure"; }
    if [ -f "$dir/compile_commands.json" ]; then
      mapfile -t tidy_sources < <(find src -name '*.cpp' | sort)
      clang-tidy -p "$dir" --quiet "${tidy_sources[@]}" || fail "clang-tidy"
    fi
  else
    echo "clang-tidy not installed — skipped (lint.py covers the trkx-* rules)"
  fi
fi

if [ "$RUN_TSA" -eq 1 ]; then
  note "Clang thread-safety analysis build"
  if command -v clang++ > /dev/null 2>&1; then
    configure_and_test tsa -R '^$' -- -DCMAKE_CXX_COMPILER=clang++ ||
      true  # build is the check; the empty -R runs no tests
  else
    echo "clang++ not installed — skipped (annotations compile as no-ops" \
         "under GCC; run this leg on a machine with clang)"
  fi
fi

if [ "$RUN_ASAN" -eq 1 ]; then
  note "ASan+UBSan: full test suite"
  configure_and_test asan-ubsan -LE perf-smoke -- \
    "-DTRKX_SANITIZE=address;undefined" || true
fi

if [ "$RUN_TSAN" -eq 1 ]; then
  note "TSan: tsan-stress labelled tests"
  configure_and_test tsan -L tsan-stress -- -DTRKX_SANITIZE=thread || true
fi

note "summary"
if [ "$FAILURES" -eq 0 ]; then
  echo "check_static: all selected legs passed"
else
  echo "check_static: $FAILURES leg(s) FAILED" >&2
fi
exit "$FAILURES"
