#!/usr/bin/env python3
"""Validate the README TRKX_* knob table against the trkx::env registry.

The registry in src/util/env.cpp is the single source of truth for every
runtime environment knob; the README carries a human-readable table of
the same rows between `<!-- trkx-env-table:begin -->` and
`<!-- trkx-env-table:end -->` markers. This script proves the two agree
(same knob set, same defaults, same doc strings), so docs cannot drift
from code. Wired into ctest as `env_registry_docs`.

Usage:
    check_env_docs.py --registry REGISTRY.json --readme README.md
    check_env_docs.py --dump-bin build/tests/env_dump --readme README.md
    check_env_docs.py --dump-bin ... --print     # regenerate the table

The registry JSON is what src/util/env.cpp's dump_registry_json() emits
(the `env_dump` binary prints it): a list of {"name", "default", "doc"}
objects. --print writes the canonical markdown table to stdout — paste it
between the README markers after editing the registry.
"""

import argparse
import json
import re
import subprocess
import sys

BEGIN = "<!-- trkx-env-table:begin -->"
END = "<!-- trkx-env-table:end -->"
ROW = re.compile(
    r"^\|\s*`(?P<name>TRKX_\w+)`\s*\|\s*(?:`(?P<default>[^`]*)`|\*\(unset\)\*)"
    r"\s*\|\s*(?P<doc>.*?)\s*\|$"
)


def load_registry(args):
    if args.registry:
        with open(args.registry, encoding="utf-8") as f:
            return json.load(f)
    out = subprocess.run([args.dump_bin], capture_output=True, text=True,
                         check=True)
    return json.loads(out.stdout)


def render_table(registry):
    lines = [
        "| Knob | Default | What it does |",
        "| --- | --- | --- |",
    ]
    for k in sorted(registry, key=lambda k: k["name"]):
        default = f"`{k['default']}`" if k["default"] else "*(unset)*"
        lines.append(f"| `{k['name']}` | {default} | {k['doc']} |")
    return "\n".join(lines)


def parse_readme_table(text):
    """-> {name: (default, doc)} from the marked README region."""
    if BEGIN not in text or END not in text:
        return None
    region = text.split(BEGIN, 1)[1].split(END, 1)[0]
    rows = {}
    for line in region.splitlines():
        line = line.strip()
        m = ROW.match(line)
        if not m:
            continue
        default = m.group("default")
        if default is None:
            default = ""
        rows[m.group("name")] = (default, m.group("doc"))
    return rows


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    src = parser.add_mutually_exclusive_group(required=True)
    src.add_argument("--registry", help="registry JSON file")
    src.add_argument("--dump-bin", help="env_dump binary to run")
    parser.add_argument("--readme", help="README.md to validate")
    parser.add_argument("--print", action="store_true", dest="print_table",
                        help="print the canonical table and exit")
    args = parser.parse_args()

    registry = load_registry(args)
    if args.print_table:
        print(render_table(registry))
        return 0
    if not args.readme:
        print("error: --readme required unless --print", file=sys.stderr)
        return 2

    with open(args.readme, encoding="utf-8") as f:
        text = f.read()
    rows = parse_readme_table(text)
    errors = []
    if rows is None:
        errors.append(
            f"README is missing the {BEGIN} / {END} markers")
        rows = {}

    reg = {k["name"]: (k["default"], k["doc"]) for k in registry}
    for name in sorted(set(reg) - set(rows)):
        errors.append(f"knob {name} is registered but missing from the "
                      "README table")
    for name in sorted(set(rows) - set(reg)):
        errors.append(f"README documents {name}, which is not in the "
                      "trkx::env registry")
    for name in sorted(set(reg) & set(rows)):
        if reg[name][0] != rows[name][0]:
            errors.append(
                f"{name}: default mismatch — registry says "
                f"{reg[name][0]!r}, README says {rows[name][0]!r}")
        if reg[name][1] != rows[name][1]:
            errors.append(
                f"{name}: doc mismatch — registry says {reg[name][1]!r}, "
                f"README says {rows[name][1]!r}")

    for e in errors:
        print(f"error: {e}", file=sys.stderr)
    if errors:
        print("hint: regenerate with check_env_docs.py --dump-bin ... "
              "--print", file=sys.stderr)
        return 1
    print(f"env docs OK ({len(reg)} knobs, README table matches registry)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
