#!/usr/bin/env python3
"""Plot the CSV series emitted by the bench harness.

Usage:
    python3 scripts/plot_results.py [result_dir] [output_dir]

Reads (any that exist):
    fig3_epoch_time.csv      -> fig3_epoch_time.png
    fig4_convergence.csv     -> fig4_convergence.png
    batchsize_ablation.csv   -> batchsize_ablation.png
    memory_wall.csv          -> memory_wall.png

Only matplotlib is required; every plot degrades gracefully when its CSV
is missing.
"""

import csv
import os
import sys
from collections import defaultdict


def read_csv(path):
    with open(path, newline="") as f:
        return list(csv.DictReader(f))


def plot_fig4(rows, out):
    import matplotlib.pyplot as plt

    modes = sorted({r["mode"] for r in rows})
    fig, axes = plt.subplots(1, 2, figsize=(10, 4), sharex=True)
    for metric, ax in zip(("precision", "recall"), axes):
        for mode in modes:
            pts = [(int(r["epoch"]), float(r[metric])) for r in rows
                   if r["mode"] == mode]
            pts.sort()
            ax.plot([p[0] for p in pts], [p[1] for p in pts], marker="o",
                    label=mode)
        ax.set_xlabel("epoch")
        ax.set_ylabel(f"validation {metric}")
        ax.grid(alpha=0.3)
    axes[0].legend()
    fig.suptitle("Figure 4: convergence on Ex3-like data")
    fig.tight_layout()
    fig.savefig(out, dpi=150)
    print(f"wrote {out}")


def plot_fig3(rows, out):
    import matplotlib.pyplot as plt

    datasets = sorted({r["dataset"] for r in rows})
    fig, axes = plt.subplots(1, len(datasets), figsize=(5 * len(datasets), 4))
    if len(datasets) == 1:
        axes = [axes]
    for ds, ax in zip(datasets, axes):
        series = defaultdict(list)
        for r in rows:
            if r["dataset"] != ds:
                continue
            series[r["impl"]].append((int(r["ranks"]), float(r["epoch_s"])))
        for impl, pts in sorted(series.items()):
            pts.sort()
            ax.plot([p[0] for p in pts], [p[1] for p in pts], marker="s",
                    label=impl)
        ax.set_title(ds)
        ax.set_xlabel("ranks (P)")
        ax.set_ylabel("epoch time [s]")
        ax.set_xscale("log", base=2)
        ax.grid(alpha=0.3)
        ax.legend()
    fig.suptitle("Figure 3: epoch time across process counts")
    fig.tight_layout()
    fig.savefig(out, dpi=150)
    print(f"wrote {out}")


def plot_batchsize(rows, out):
    import matplotlib.pyplot as plt

    labels = [r["batch"] for r in rows]
    f1 = [float(r["f1"]) for r in rows]
    fig, ax = plt.subplots(figsize=(6, 4))
    ax.bar(labels, f1)
    ax.set_xlabel("batch size")
    ax.set_ylabel("final validation F1")
    ax.set_title("Batch size vs convergence quality")
    ax.grid(alpha=0.3, axis="y")
    fig.tight_layout()
    fig.savefig(out, dpi=150)
    print(f"wrote {out}")


def plot_memory_wall(rows, out):
    import matplotlib.pyplot as plt

    budget = [float(r["budget_mb"]) for r in rows]
    frac = [float(r["edge_fraction_kept"]) for r in rows]
    fig, ax = plt.subplots(figsize=(6, 4))
    ax.plot(budget, frac, marker="o")
    ax.set_xlabel("simulated device memory [MB]")
    ax.set_ylabel("fraction of labelled edges trainable")
    ax.set_title("Full-graph memory wall (CTD-like)")
    ax.grid(alpha=0.3)
    fig.tight_layout()
    fig.savefig(out, dpi=150)
    print(f"wrote {out}")


def main():
    src = sys.argv[1] if len(sys.argv) > 1 else "."
    dst = sys.argv[2] if len(sys.argv) > 2 else src
    os.makedirs(dst, exist_ok=True)
    jobs = [
        ("fig4_convergence.csv", plot_fig4, "fig4_convergence.png"),
        ("fig3_epoch_time.csv", plot_fig3, "fig3_epoch_time.png"),
        ("batchsize_ablation.csv", plot_batchsize, "batchsize_ablation.png"),
        ("memory_wall.csv", plot_memory_wall, "memory_wall.png"),
    ]
    for csv_name, fn, png_name in jobs:
        path = os.path.join(src, csv_name)
        if not os.path.exists(path):
            print(f"skip {csv_name} (not found)")
            continue
        fn(read_csv(path), os.path.join(dst, png_name))


if __name__ == "__main__":
    main()
