#!/usr/bin/env python3
"""Validate a Chrome trace-event JSON file emitted by TraceSession.

Usage:
    check_trace.py TRACE.json [--require-names a,b,c] [--min-threads N]
                   [--min-events N]

Checks that the file is well-formed trace-event JSON (the format accepted
by chrome://tracing and https://ui.perfetto.dev): a top-level object with a
"traceEvents" list, where every event carries name/ph/ts/pid/tid and every
complete ("ph":"X") event carries a non-negative dur. Optional flags assert
the presence of specific span names (e.g. the Figure 3 phases
sample,forward,backward,allreduce,eval) and a minimum number of distinct
thread ids. Exits 0 on success, 1 with a message per violation otherwise.
"""

import argparse
import json
import sys


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("trace", help="path to trace JSON")
    parser.add_argument(
        "--require-names",
        default="",
        help="comma-separated span names that must appear",
    )
    parser.add_argument(
        "--min-threads",
        type=int,
        default=1,
        help="minimum number of distinct tids",
    )
    parser.add_argument(
        "--min-events", type=int, default=1, help="minimum event count"
    )
    args = parser.parse_args()

    errors = []
    try:
        with open(args.trace, encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        print(f"FAIL: cannot parse {args.trace}: {e}", file=sys.stderr)
        return 1

    if not isinstance(doc, dict) or not isinstance(
        doc.get("traceEvents"), list
    ):
        print(
            "FAIL: top level must be an object with a 'traceEvents' list",
            file=sys.stderr,
        )
        return 1

    events = doc["traceEvents"]
    names, tids = set(), set()
    for i, ev in enumerate(events):
        where = f"traceEvents[{i}]"
        if not isinstance(ev, dict):
            errors.append(f"{where}: not an object")
            continue
        for key in ("name", "ph", "ts", "pid", "tid"):
            if key not in ev:
                errors.append(f"{where}: missing '{key}'")
        if not isinstance(ev.get("ts"), (int, float)) or ev.get("ts", 0) < 0:
            errors.append(f"{where}: 'ts' must be a non-negative number")
        if ev.get("ph") == "X":
            dur = ev.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                errors.append(
                    f"{where}: complete event needs non-negative 'dur'"
                )
        if isinstance(ev.get("name"), str):
            names.add(ev["name"])
        tids.add(ev.get("tid"))

    if len(events) < args.min_events:
        errors.append(f"only {len(events)} events, need >= {args.min_events}")
    if len(tids) < args.min_threads:
        errors.append(
            f"only {len(tids)} distinct tids ({sorted(map(str, tids))}), "
            f"need >= {args.min_threads}"
        )
    for required in filter(None, args.require_names.split(",")):
        if required not in names:
            errors.append(f"required span name '{required}' not found")

    for e in errors:
        print(f"FAIL: {e}", file=sys.stderr)
    if errors:
        return 1
    print(
        f"OK: {len(events)} events, {len(tids)} threads, "
        f"{len(names)} span names"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
