#!/usr/bin/env python3
"""Project lint: enforce trkx repo invariants over src/ (and tests/).

Usage:
    lint.py [--root DIR] [--check-headers] [--compiler CXX] [--list-rules]

Rules (suppress a finding by putting NOLINT(<rule>) in a comment on the
offending line or the line directly above it):

    trkx-raw-rng      no std::mt19937 / std::default_random_engine /
                      rand() outside src/util/rng.* — all randomness flows
                      through trkx::Rng so runs stay reproducible and the
                      prefetch pipeline stays bit-identical to serial.
    trkx-io           no std::cout / std::cerr / printf-family outside
                      src/util/log.* — diagnostics go through TRKX_LOG so
                      every line carries a timestamp + thread id and obeys
                      the per-rank sink. (bench/ and examples/ are exempt:
                      their stdout IS the artifact.)
    trkx-naked-new    no naked `new` — ownership goes through containers
                      or std::make_unique/make_shared. Intentional leaks
                      (obs singletons) and friend-ctor factories carry
                      NOLINT with a reason.
    trkx-omp-critical every `#pragma omp critical` needs an adjacent
                      comment justifying the serialisation — criticals in
                      bulk-sampling kernels are exactly what the paper's
                      scaling fight is against.
    trkx-std-mutex    no raw std::mutex/std::lock_guard/std::unique_lock
                      in src/ outside util/annotations.hpp — use the
                      annotated trkx::Mutex/LockGuard/UniqueLock so Clang
                      thread-safety analysis sees every lock site.
    trkx-using-std    no `using namespace std;`.

--check-headers additionally compiles every header under src/ standalone
(one synthetic TU per header) to prove self-containment. Exits 0 when
clean, 1 with one "file:line: [rule] message" per finding otherwise.
"""

import argparse
import os
import re
import subprocess
import sys
import tempfile

RULES = {
    "trkx-raw-rng": "raw std RNG outside util/rng (use trkx::Rng)",
    "trkx-io": "direct stdout/stderr outside util/log (use TRKX_LOG)",
    "trkx-naked-new": "naked new (use containers or make_unique)",
    "trkx-omp-critical": "omp critical without a justifying comment",
    "trkx-std-mutex": "raw std mutex type (use annotated trkx::Mutex)",
    "trkx-using-std": "using namespace std",
}

RAW_RNG = re.compile(
    r"std::mt19937|std::default_random_engine|std::minstd_rand|"
    r"(?<![\w.:])s?rand\s*\("
)
DIRECT_IO = re.compile(
    r"std::cout|std::cerr|(?<![\w:])(?:printf|fprintf|puts|fputs)\s*\("
)
NAKED_NEW = re.compile(r"(?<![\w:.])new\s+[A-Za-z_(]")
OMP_CRITICAL = re.compile(r"#\s*pragma\s+omp\s.*\bcritical\b")
STD_MUTEX = re.compile(
    r"std::(?:mutex|shared_mutex|recursive_mutex|lock_guard|unique_lock|"
    r"scoped_lock|condition_variable)\b"
)
USING_STD = re.compile(r"\busing\s+namespace\s+std\b")
COMMENT = re.compile(r"//|/\*")


def is_exempt(rel, rule):
    rel = rel.replace(os.sep, "/")
    if rule == "trkx-raw-rng":
        return rel.startswith("src/util/rng")
    if rule == "trkx-io":
        return rel.startswith("src/util/log")
    if rule == "trkx-std-mutex":
        # The wrapper itself, and tests (which may exercise raw primitives).
        return rel == "src/util/annotations.hpp" or rel.startswith("tests/")
    return False


def has_nolint(lines, idx, rule):
    for line in (lines[idx], lines[idx - 1] if idx > 0 else ""):
        if "NOLINT" in line and rule in line:
            return True
        if re.search(r"NOLINT(?!\()", line):  # bare NOLINT: blanket
            return True
    return False


def strip_strings(line):
    """Blank out string/char literals so rules don't fire inside them."""
    return re.sub(r'"(?:[^"\\]|\\.)*"|\'(?:[^\'\\]|\\.)*\'', '""', line)


def lint_file(root, rel, findings):
    path = os.path.join(root, rel)
    with open(path, encoding="utf-8") as f:
        lines = f.read().splitlines()
    in_block_comment = False
    for i, raw in enumerate(lines):
        line = raw
        if in_block_comment:
            if "*/" in line:
                line = line.split("*/", 1)[1]
                in_block_comment = False
            else:
                continue
        if "/*" in line and "*/" not in line.split("/*", 1)[1]:
            in_block_comment = True
        code = strip_strings(line.split("//", 1)[0])
        checks = [
            ("trkx-raw-rng", RAW_RNG),
            ("trkx-io", DIRECT_IO),
            ("trkx-naked-new", NAKED_NEW),
            ("trkx-std-mutex", STD_MUTEX),
            ("trkx-using-std", USING_STD),
        ]
        for rule, pattern in checks:
            if not pattern.search(code):
                continue
            if is_exempt(rel, rule) or has_nolint(lines, i, rule):
                continue
            findings.append((rel, i + 1, rule, RULES[rule]))
        if OMP_CRITICAL.search(line):
            prev = lines[i - 1] if i > 0 else ""
            if not (COMMENT.search(line) or COMMENT.search(prev)):
                if not has_nolint(lines, i, "trkx-omp-critical"):
                    findings.append(
                        (rel, i + 1, "trkx-omp-critical",
                         RULES["trkx-omp-critical"])
                    )


def iter_sources(root, subdirs, exts):
    for sub in subdirs:
        base = os.path.join(root, sub)
        for dirpath, _, files in os.walk(base):
            for name in sorted(files):
                if os.path.splitext(name)[1] in exts:
                    yield os.path.relpath(
                        os.path.join(dirpath, name), root
                    )


def check_headers(root, compiler, findings):
    """Compile each src/ header standalone: missing transitive includes
    surface as failures here instead of as include-order landmines."""
    headers = sorted(iter_sources(root, ["src"], {".hpp"}))
    flags = ["-std=c++20", "-fsyntax-only", "-fopenmp",
             "-I", os.path.join(root, "src")]
    failed = 0
    for rel in headers:
        with tempfile.NamedTemporaryFile(
            "w", suffix=".cpp", delete=False
        ) as tu:
            include = rel.replace(os.sep, "/").removeprefix("src/")
            tu.write(f'#include "{include}"\n')
            tu.write(f'#include "{include}"\n')  # include-guard check
            tu_path = tu.name
        try:
            proc = subprocess.run(
                [compiler, *flags, tu_path],
                capture_output=True,
                text=True,
                check=False,
            )
            if proc.returncode != 0:
                failed += 1
                first = proc.stderr.strip().splitlines()
                detail = first[0] if first else "compile failed"
                findings.append(
                    (rel, 1, "trkx-header-standalone",
                     f"header does not compile standalone: {detail}")
                )
        finally:
            os.unlink(tu_path)
    print(f"lint: {len(headers) - failed}/{len(headers)} headers "
          "self-contained")


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--root", default=None,
                        help="repo root (default: script's parent dir)")
    parser.add_argument("--check-headers", action="store_true",
                        help="also compile every src/ header standalone")
    parser.add_argument("--compiler",
                        default=os.environ.get("CXX", "c++"),
                        help="compiler for --check-headers")
    parser.add_argument("--list-rules", action="store_true")
    args = parser.parse_args()

    if args.list_rules:
        for rule, desc in RULES.items():
            print(f"{rule}: {desc}")
        return 0

    root = args.root or os.path.dirname(
        os.path.dirname(os.path.abspath(__file__))
    )
    findings = []
    sources = list(
        iter_sources(root, ["src", "tests"], {".hpp", ".cpp"})
    )
    for rel in sources:
        lint_file(root, rel, findings)
    if args.check_headers:
        check_headers(root, args.compiler, findings)

    for rel, line, rule, msg in findings:
        print(f"{rel}:{line}: [{rule}] {msg}", file=sys.stderr)
    if findings:
        print(f"lint: {len(findings)} finding(s) over "
              f"{len(sources)} files", file=sys.stderr)
        return 1
    print(f"lint: OK ({len(sources)} files)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
