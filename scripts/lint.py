#!/usr/bin/env python3
"""Project lint: the trkx convention rules over src/ and tests/.

Since PR 4 this is a thin wrapper over the analyzer's ``conventions``
pass (scripts/analyze/conventions.py) — the rules, the NOLINT
convention, the CLI, and the ``project_lint`` ctest name are unchanged;
only the implementation moved. Run ``trkx-analyze --list-rules`` for
the full rule catalogue across all passes.
"""

import argparse
import os
import sys

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

from analyze import conventions  # noqa: E402
from analyze.common import SourceTree  # noqa: E402


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--root", default=None,
                        help="repo root (default: script's parent dir)")
    parser.add_argument("--check-headers", action="store_true",
                        help="also compile every src/ header standalone")
    parser.add_argument("--compiler",
                        default=os.environ.get("CXX", "c++"),
                        help="compiler for --check-headers")
    parser.add_argument("--list-rules", action="store_true")
    args = parser.parse_args()

    if args.list_rules:
        for rule, desc in conventions.RULES.items():
            print(f"{rule}: {desc}")
        return 0

    root = args.root or os.path.dirname(
        os.path.dirname(os.path.abspath(__file__))
    )
    tree = SourceTree(root, ("src", "tests"))
    findings = conventions.run(tree)
    if args.check_headers:
        conventions.check_headers(root, args.compiler, findings)

    n_files = sum(1 for _ in tree.rel_paths())
    for f in sorted(findings, key=lambda f: (f.path, f.line, f.rule)):
        print(str(f), file=sys.stderr)
    if findings:
        print(f"lint: {len(findings)} finding(s) over "
              f"{n_files} files", file=sys.stderr)
        return 1
    print(f"lint: OK ({n_files} files)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
