"""kernel-dispatch pass: hot-loop kernels stay behind the dispatch table.

PR 7 moved every multiply-accumulate hot loop (GEMM family, SpMM,
reductions, Adam) into ``src/tensor/kernels/``, where each kernel exists
twice — scalar reference and AVX2 — behind the runtime-dispatched
``kernels::active()`` table. A hand-rolled ``c[i] += a[i] * b[i]`` loop
anywhere else silently reintroduces a scalar hot path that the SIMD
tables, the equivalence tests, and the roofline bench never see.

Rules:

    trkx-kernel-dispatch   indexed multiply-accumulate (``x[...] += .. *
                           ..`` / ``x(...) += .. * ..``) outside
                           ``src/tensor/kernels/`` — route it through
                           ``kernels::active()`` or add a NOLINT stating
                           why no contiguous-row kernel applies (e.g.
                           Gustavson's column-indexed sparse accumulator
                           in spgemm.cpp).

Detection is deliberately narrow — the left side must be an indexed
element (``]`` or ``)`` before the ``+=``) and the right side must
contain a genuine multiply (an operand character before the ``*``, so
pointer dereferences like ``+= *p`` do not fire). Scalar reductions into
a plain accumulator (``sum += a[i] * b[i]``) are left alone: those are
loss/metric folds, not the O(n·f) kernels the dispatch layer owns.
"""

import os
import re

from .common import Finding

RULES = {
    "trkx-kernel-dispatch":
        "hand-rolled multiply-accumulate outside src/tensor/kernels/ "
        "(route through kernels::active() or NOLINT with a reason)",
}

# "x[...] +=" or "x(...) +=" followed by a multiply whose left operand is
# a value (word char, ']' or ')') — not a unary dereference.
MUL_ACC = re.compile(r"[\]\)]\s*\+=\s*[^;]*?[\w\)\]]\s*\*")


def is_exempt(rel):
    rel = rel.replace(os.sep, "/")
    # The kernel layer itself is the one legitimate home for these loops.
    return rel.startswith("src/tensor/kernels/")


def run(tree):
    findings = []
    for sf in tree.files():
        if is_exempt(sf.rel):
            continue
        for i, code in enumerate(sf.code):
            if not MUL_ACC.search(code):
                continue
            if sf.has_nolint(i, "trkx-kernel-dispatch"):
                continue
            findings.append(Finding(
                sf.rel, i + 1, "trkx-kernel-dispatch",
                RULES["trkx-kernel-dispatch"]))
    return findings
