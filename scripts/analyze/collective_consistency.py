"""collective-consistency pass: every rank must execute the same
sequence of collectives, or the laggards deadlock.

Phase 2 of the cross-TU analyzer (see facts.py). A Communicator
collective (all_reduce / broadcast / barrier / all_gather) is a
rendezvous: a rank that skips one leaves its peers blocked until the
TimeoutBarrier poisons them — and silently deadlocked without one.
This pass joins the collective call sites with the per-function branch
model and reports:

    trkx-collective-divergent   a collective that only some ranks can
                                reach: it sits in the arm of a branch
                                whose condition mentions the rank, or
                                after a rank-dependent conditional
                                early exit, or in one arm of a
                                data-dependent branch whose other arm
                                runs a different collective sequence.
    trkx-collective-unguarded   a collective inside a try block whose
                                catch-all handler swallows (neither
                                rethrows nor aborts a TimeoutBarrier):
                                a throwing rank skips the rendezvous
                                silently instead of unwinding into the
                                poison path.

Branch conditions are classified textually: *rank-dependent* if the
condition mentions the rank (``rank``/``is_root``/``root``),
*uniform* if after erasing config fields (``config.x``), the
communicator handle itself, and literals nothing identifiable remains
— every rank computes the same value, so differing arms are fine.
Everything else is *data-dependent*: rank-local values that may
disagree across ranks.

The Communicator implementation files are exempt: root-rank asymmetry
inside broadcast/all_gather is the protocol, not a bug. Elsewhere the
precision policy from PR 8 applies — tighten the model before
sprinkling NOLINTs, and keep intentional rank-guards (with a reason)
visible as suppressions.
"""

import re

from . import facts
from .common import Finding

RULES = {
    "trkx-collective-divergent": "collective reachable by only some "
                                 "ranks (rank-dependent branch/exit or "
                                 "divergent branch arms)",
    "trkx-collective-unguarded": "collective inside a try whose "
                                 "catch-all swallows instead of "
                                 "rethrowing/aborting the barrier",
}

RANK_DEP = re.compile(r"(?<![\w.])(?:rank|world_rank|is_root|root)\b")

# Atoms erased before deciding a condition is rank-uniform: config
# fields are broadcast-identical by construction, the communicator
# handle is either set on every worker rank or on none, and literals
# are literals.
UNIFORM_STRIP = (
    re.compile(r"\b\w+\s*\.\s*comm\b"),
    re.compile(r"\bconfig\s*\.\s*\w+"),
    re.compile(r"\bcomm\b"),
    re.compile(r"\b(?:nullptr|true|false)\b"),
    re.compile(r"\b\d[\w.]*\b"),
)


def _is_uniform(cond):
    c = cond
    for rx in UNIFORM_STRIP:
        c = rx.sub("", c)
    return not re.search(r"[A-Za-z_]\w*", c)


def _exempt(rel):
    return "communicator" in rel.replace("\\", "/")


def _call_collectives(proj, ff, callee, is_method):
    """{kind: path} of collectives this call site can reach."""
    cands, _ = proj.targets(ff, callee, is_method)
    if is_method and len(cands) != 1:
        return {}
    out = {}
    for t in cands:
        for kind, path in proj.collectives_reached(t).items():
            out.setdefault(kind, path)
    return out


def _sites(proj, ff):
    """Every line of ff that executes a collective: direct sites plus
    call sites whose closure reaches one. Returns (line, kind, via)."""
    out = [(li, kind, None) for kind, li in ff.collectives]
    for callee, li, is_method in ff.calls:
        for kind, path in _call_collectives(proj, ff, callee,
                                            is_method).items():
            out.append((li, kind, path))
    return out


def _innermost_arm(ff, li):
    """(branch, 'then'|'else') of the innermost branch arm containing
    line li, or (None, None)."""
    best = None
    for b in ff.branches:
        for arm, ext in (("then", b.then_ext), ("else", b.else_ext)):
            if ext is not None and ext[0] <= li <= ext[1]:
                if best is None or ext[0] > best[2]:
                    best = (b, arm, ext[0])
    return (best[0], best[1]) if best else (None, None)


def run(tree):
    proj = facts.Project.for_tree(tree)
    findings = []
    emitted = set()

    def emit(file, li, rule, msg):
        sf = tree.file(file)
        if sf.has_nolint(li, rule):
            return
        key = (file, li, rule)
        if key in emitted:
            return
        emitted.add(key)
        findings.append(Finding(file, li + 1, rule, msg))

    for ff in proj.functions:
        if _exempt(ff.file):
            continue
        sites = _sites(proj, ff)
        if sites:
            # (1) collective under a rank-dependent branch arm.
            for li, kind, via in sorted(sites):
                b, arm = _innermost_arm(ff, li)
                if b is not None and RANK_DEP.search(b.cond):
                    how = f" (via {via})" if via else ""
                    emit(ff.file, li, "trkx-collective-divergent",
                         f"{kind}{how} under rank-dependent condition "
                         f"'{b.cond}' in {ff.qual}; only some ranks "
                         "reach this rendezvous")
            # (2) collective after a rank-dependent conditional exit.
            for b in ff.branches:
                if not RANK_DEP.search(b.cond):
                    continue
                for arm_ext, has_exit in ((b.then_ext, b.exit_then),
                                          (b.else_ext, b.exit_else)):
                    if arm_ext is None or not has_exit:
                        continue
                    for li, kind, via in sorted(sites):
                        if li > arm_ext[1]:
                            how = f" (via {via})" if via else ""
                            emit(ff.file, li, "trkx-collective-divergent",
                                 f"{kind}{how} after rank-dependent "
                                 f"early exit under '{b.cond}' in "
                                 f"{ff.qual}; exited ranks never "
                                 "arrive")
            # (3) data-dependent branch whose arms run different
            # collective sequences.
            for b in ff.branches:
                if RANK_DEP.search(b.cond) or _is_uniform(b.cond):
                    continue
                then_kinds = sorted({k for li, k, _ in sites
                                     if b.then_ext[0] <= li
                                     <= b.then_ext[1]})
                if b.else_ext is None:
                    else_kinds = []
                else:
                    else_kinds = sorted({k for li, k, _ in sites
                                         if b.else_ext[0] <= li
                                         <= b.else_ext[1]})
                if then_kinds != else_kinds and (then_kinds or
                                                 else_kinds):
                    emit(ff.file, b.line, "trkx-collective-divergent",
                         f"branch on data-dependent '{b.cond}' in "
                         f"{ff.qual} runs different collectives per "
                         f"arm (then: {then_kinds or ['none']}, else: "
                         f"{else_kinds or ['none']}); ranks that "
                         "disagree on the condition deadlock")
            # (4) collective under a swallowing catch-all.
            for (ts, te), swallows in zip(ff.catch_extents,
                                          ff.catch_swallows):
                if not swallows:
                    continue
                for li, kind, via in sorted(sites):
                    if ts <= li <= te:
                        how = f" (via {via})" if via else ""
                        emit(ff.file, li, "trkx-collective-unguarded",
                             f"{kind}{how} inside a try whose "
                             "catch-all swallows; a throwing rank "
                             "skips the rendezvous silently — rethrow "
                             "or abort() the TimeoutBarrier in the "
                             "handler")
    return findings
