"""throw-boundary pass: exceptions must not cross OpenMP or thread edges.

Phase 2 of the cross-TU analyzer (see facts.py). An exception that
propagates out of an OpenMP parallel region or out of a thread entry
function hits a ``noexcept`` boundary and calls ``std::terminate`` —
the whole process dies with no catchable error, which in a long
training run means losing hours of work to one malformed event.

    trkx-throw-omp     a statement inside ``#pragma omp parallel``
                       whose execution can throw (directly or through
                       any callee, resolved cross-TU) without an
                       enclosing catch-all or trkx::ExceptionBarrier
                       ``run()`` callback; also a region that uses a
                       barrier but never calls ``rethrow()`` afterwards
                       (the error would be silently swallowed).
    trkx-throw-thread  a ``std::thread`` launch (or emplace_back into a
                       thread vector) whose entry path can throw with
                       no barrier between the throw and the thread
                       boundary.

The sanctioned shape is src/util/parallel_guard.hpp: wrap the loop
body in ``barrier.run([&] { ... })``, poll ``barrier.cancelled()`` to
short-circuit remaining iterations, and call ``barrier.rethrow()`` on
the spawning thread after the join / region end.

The throw model covers ``throw``, TRKX_CHECK / TRKX_CHECK_MSG,
``throw_check_failure`` and ``rethrow_exception``; std::bad_alloc is
excluded by policy. Call resolution is by simple name (same class
first), so a region calling only opaque third-party code is invisible
— under-approximation by design.
"""

from . import facts
from .common import Finding

RULES = {
    "trkx-throw-omp": "throwing path inside an OpenMP parallel region "
                      "without an exception barrier (std::terminate)",
    "trkx-throw-thread": "thread entry path can throw with no barrier "
                         "before the thread boundary (std::terminate)",
}


def _in_any(li, extents):
    return any(s <= li <= e for s, e in extents)


def _region_findings(tree, proj, ff):
    out = []
    sf = tree.file(ff.file)
    guards = ff.guard_extents(proj.barrier_names)
    for pragma_line, body_end in ff.omp_regions:
        if sf.has_nolint(pragma_line, "trkx-throw-omp"):
            continue
        region = (pragma_line + 1, body_end)
        path = None
        for li in ff.throw_lines:
            if region[0] <= li <= region[1] and not _in_any(li, guards):
                path = f"direct throw at line {li + 1}"
                break
        if path is None:
            for callee, li, is_method in ff.calls:
                if not (region[0] <= li <= region[1]) or _in_any(li, guards):
                    continue
                sub = proj.call_throws(ff, callee, is_method)
                if sub:
                    path = f"call at line {li + 1} throws via {sub}"
                    break
        if path:
            out.append(Finding(
                ff.file, pragma_line + 1, "trkx-throw-omp",
                f"omp parallel region in {ff.qual} can throw ({path}); "
                "wrap the body in ExceptionBarrier::run and rethrow() "
                "after the region"))
            continue
        # Region uses a barrier but the captured error is never
        # surfaced: rethrow() must follow the region in this function.
        region_runs = [(recv, s, e) for recv, s, e in ff.run_extents
                       if region[0] <= s <= region[1]
                       and (recv in proj.barrier_names
                            or recv.rstrip("_").endswith("barrier"))]
        if region_runs and not any(li > body_end for li in ff.rethrow_lines):
            out.append(Finding(
                ff.file, pragma_line + 1, "trkx-throw-omp",
                f"omp parallel region in {ff.qual} captures exceptions in "
                f"'{region_runs[0][0]}' but never calls rethrow() after "
                "the region — errors are silently swallowed"))
    return out


def _thread_findings(tree, proj, ff):
    out = []
    sf = tree.file(ff.file)
    for li, recv, callees in ff.thread_sites:
        if recv != "std::thread" and recv not in proj.thread_vec_names:
            continue  # emplace_back into something that isn't threads
        if sf.has_nolint(li, "trkx-throw-thread"):
            continue
        for callee, is_method in callees:
            hit = proj.call_throws(ff, callee, is_method)
            if hit:
                out.append(Finding(
                    ff.file, li + 1, "trkx-throw-thread",
                    f"thread entry '{callee}' can throw (via {hit}); an "
                    "escaping exception terminates the process — capture "
                    "it with ExceptionBarrier and rethrow() at join"))
                break
    return out


def run(tree):
    proj = facts.Project.for_tree(tree)
    findings = []
    for ff in proj.functions:
        findings.extend(_region_findings(tree, proj, ff))
        findings.extend(_thread_findings(tree, proj, ff))
    return findings
