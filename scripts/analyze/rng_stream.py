"""rng-stream pass: sampling randomness must come from keyed streams.

Phase 2 of the cross-TU analyzer (see facts.py). The bit-identical
resume contract (PR 5) and the overlap-safe prefetcher (PR 2) both
rest on one invariant: every random draw that shapes training data is
a pure function of a ``(rank, epoch, event, batch)`` stream key via
``Rng::stream(...)``. A *sequential* Rng — seeded once and advanced
draw by draw — makes the draw depend on global draw order, so any
reordering (prefetch depth, worker count, resume point) silently
changes the data. This pass walks RNG provenance and reports:

    trkx-rng-stream   sampling/training code consuming sequential RNG
                      state: a sequential Rng defined and consumed in
                      sampling/training scope, a draw on a sequential
                      Rng member there, or a sequential Rng handed
                      from anywhere in src/ to a callee that draws
                      from its Rng& parameter.

Provenance origins (facts.RNG_DEF and friends): ``stream`` (keyed),
``split`` (chased back to its source), ``param`` (the caller decides —
samplers taking ``Rng&`` are clean by design), ``seq`` (sequential
construction), ``member`` (draws on an unknown ``name_`` receiver).
Scope for in-place definitions is src/sampling/ plus any file whose
name mentions training; elsewhere only the hand-off to a drawing
callee is flagged, so utility code that owns a private Rng for
non-sampling purposes stays quiet. Intentional sequential state
(e.g. an epoch-boundary shuffle checkpointed for resume) is a NOLINT
with the contract spelled out.
"""

import os

from . import facts
from .common import Finding

RULES = {
    "trkx-rng-stream": "sampling/training code consumes sequential "
                       "Rng state instead of a (rank,epoch,event,"
                       "batch) Rng::stream key",
}

SEQUENTIAL = ("seq", "member")


def _in_scope(rel):
    r = rel.replace("\\", "/")
    return r.startswith("src/sampling/") or "train" in os.path.basename(r)


def run(tree):
    proj = facts.Project.for_tree(tree)
    findings = []
    emitted = set()

    def emit(file, li, msg):
        sf = tree.file(file)
        if sf.has_nolint(li, "trkx-rng-stream"):
            return
        if (file, li) in emitted:
            return
        emitted.add((file, li))
        findings.append(Finding(file, li + 1, "trkx-rng-stream", msg))

    for ff in proj.functions:
        if _in_scope(ff.file):
            # Sequential Rng defined here and actually consumed
            # (drawn from or handed onward).
            used = {var for var, _m, _li in ff.rng_draws}
            used.update(var for _c, var, _li, _m in ff.rng_pass)
            for var, (origin, _src, li) in sorted(ff.rng_defs.items()):
                if var not in used:
                    continue
                if proj.rng_origin(ff, var) == "seq" and origin != "param":
                    emit(ff.file, li,
                         f"sequential Rng '{var}' in {ff.qual}; derive "
                         "it from Rng::stream(seed, rank, epoch, "
                         "event, batch)")
            # Draws on a sequential member Rng.
            for var, meth, li in ff.rng_draws:
                if proj.rng_origin(ff, var) == "member":
                    emit(ff.file, li,
                         f"draw {var}.{meth}() consumes sequential "
                         f"member Rng state in {ff.qual}; thread a "
                         "keyed Rng::stream through instead")
        else:
            # Hand-off: a sequential Rng passed to a callee that draws
            # from its Rng& parameter (sampling by another name).
            for callee, var, li, is_method in ff.rng_pass:
                if proj.rng_origin(ff, var) not in SEQUENTIAL:
                    continue
                cands, _ = proj.targets(ff, callee, is_method)
                if is_method and len(cands) != 1:
                    continue
                hit = None
                for t in cands:
                    if (t.file.replace("\\", "/").startswith(
                            "src/sampling/") or proj.rng_param_draws(t)):
                        hit = t
                        break
                if hit is not None:
                    emit(ff.file, li,
                         f"sequential Rng '{var}' handed to "
                         f"{hit.qual} which draws from it; pass a "
                         "keyed Rng::stream instead")
    return findings
