"""SARIF 2.1.0 emission for trkx-analyze findings.

One run, one driver ("trkx-analyze"), one rule entry per declared rule
across the passes that ran, one result per finding. Paths are emitted
repo-relative with a SRCROOT uriBaseId so editors and GitHub code
scanning can anchor them. Everything trkx-analyze reports is a gating
defect, so every result is level "error".

``validate`` re-checks the structural invariants the consumers rely on
(version string, rule-id cross references, 1-based regions); the
selftest runs it on a file emitted over the fixture tree so the format
cannot rot unnoticed.
"""

import json

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = "https://json.schemastore.org/sarif-2.1.0.json"


def to_sarif(findings, rules):
    """Build the SARIF document: findings is a list of common.Finding,
    rules a {rule_id: description} dict covering every finding."""
    rule_ids = sorted(rules)
    index = {rid: i for i, rid in enumerate(rule_ids)}
    return {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [{
            "tool": {"driver": {
                "name": "trkx-analyze",
                "informationUri":
                    "https://github.com/trkx/trkx#static-analysis",
                "rules": [{
                    "id": rid,
                    "shortDescription": {"text": rules[rid]},
                } for rid in rule_ids],
            }},
            "originalUriBaseIds": {"SRCROOT": {"uri": "file:///"}},
            "results": [{
                "ruleId": f.rule,
                "ruleIndex": index[f.rule],
                "level": "error",
                "message": {"text": f.message},
                "locations": [{
                    "physicalLocation": {
                        "artifactLocation": {
                            "uri": f.path.replace("\\", "/"),
                            "uriBaseId": "SRCROOT",
                        },
                        "region": {"startLine": f.line},
                    },
                }],
            } for f in findings],
        }],
    }


def write(path, findings, rules):
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(to_sarif(findings, rules), fh, indent=1, sort_keys=True)
        fh.write("\n")


def validate(doc):
    """Raise ValueError if doc is not the SARIF shape we emit."""
    def need(cond, what):
        if not cond:
            raise ValueError(f"sarif: {what}")

    need(doc.get("version") == SARIF_VERSION, "version != 2.1.0")
    need(isinstance(doc.get("runs"), list) and len(doc["runs"]) == 1,
         "expected exactly one run")
    run = doc["runs"][0]
    driver = run.get("tool", {}).get("driver", {})
    need(driver.get("name") == "trkx-analyze", "driver name missing")
    rule_list = driver.get("rules")
    need(isinstance(rule_list, list), "driver.rules missing")
    ids = []
    for r in rule_list:
        need(isinstance(r.get("id"), str) and r["id"], "rule without id")
        need(r.get("shortDescription", {}).get("text"),
             f"rule {r.get('id')} without description")
        ids.append(r["id"])
    need(ids == sorted(ids), "rules not sorted by id")
    need(len(ids) == len(set(ids)), "duplicate rule ids")
    for res in run.get("results", []):
        need(res.get("ruleId") in ids,
             f"result ruleId {res.get('ruleId')!r} not declared")
        need(ids[res.get("ruleIndex", -1)] == res["ruleId"],
             "ruleIndex does not match ruleId")
        need(res.get("level") == "error", "result level != error")
        need(res.get("message", {}).get("text"), "result without message")
        locs = res.get("locations")
        need(isinstance(locs, list) and len(locs) == 1,
             "result without exactly one location")
        phys = locs[0].get("physicalLocation", {})
        uri = phys.get("artifactLocation", {}).get("uri", "")
        need(bool(uri) and "\\" not in uri, "bad artifact uri")
        line = phys.get("region", {}).get("startLine")
        need(isinstance(line, int) and line >= 1,
             "region.startLine must be 1-based")
