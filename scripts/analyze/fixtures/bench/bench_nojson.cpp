// Seeded violation: a bench that prints a table but never registers with
// the unified JSON writer -> trkx-bench-json fires at line 1.

#include <cstdio>

int main() {
  std::printf("results: 42\n");  // printf is fine in bench/ — only the
  return 0;                      // missing JSON registration is flagged
}
