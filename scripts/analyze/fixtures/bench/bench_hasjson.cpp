// Clean counterpart: references the unified writer, so trkx-bench-json
// stays silent (and the printf below proves the other conventions rules
// do not run in bench/).

#include <cstdio>

// #include "bench_json.hpp" stand-in for the fixture tree:
struct BenchJsonWriter;

int main() {
  std::printf("results: 42\n");
  return 0;
}
