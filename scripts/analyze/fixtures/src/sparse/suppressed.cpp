// Seeded violations suppressed with NOLINT(<rule>): reason — this file
// must contribute ZERO findings; it verifies suppression is honoured.
#include <cstddef>
#include <cstdio>

namespace trkx {

void fixture_suppressed(float* data, std::size_t n, float inv_scale) {
  // NOLINT(trkx-io): fixture verifies NOLINT suppression is honoured
  printf("n=%zu\n", n);
#pragma omp parallel for schedule(static)  // NOLINT(omp-default-none): fixture
  for (std::size_t i = 0; i < n; ++i) data[i] *= inv_scale;
}

float fixture_ratio(float num, float den) {
  // NOLINT(trkx-div-guard): fixture — caller guarantees den != 0
  return num / den;
}

}  // namespace trkx
