// Seeded throw-boundary fixtures: three OpenMP parallel regions with a
// throwing body. Only the middle one follows the sanctioned shape
// (ExceptionBarrier::run around the body + rethrow() after the region);
// the first has no barrier at all, the third captures but never
// rethrows — both must flag trkx-throw-omp.

namespace trkx {

void scatter_unguarded(std::vector<float>& out, std::size_t n) {
#pragma omp parallel for default(none) shared(out, n)
  for (std::size_t i = 0; i < n; ++i) {
    TRKX_CHECK(i < out.size());
    out[i] = 1.0f;
  }
}

void scatter_guarded(std::vector<float>& out, std::size_t n) {
  ExceptionBarrier barrier;
#pragma omp parallel for default(none) shared(out, n, barrier)
  for (std::size_t i = 0; i < n; ++i) {
    barrier.run([&, i] {
      TRKX_CHECK(i < out.size());
      out[i] = 1.0f;
    });
  }
  barrier.rethrow();
}

void scatter_swallowed(std::vector<float>& out, std::size_t n) {
  ExceptionBarrier barrier;
#pragma omp parallel for default(none) shared(out, n, barrier)
  for (std::size_t i = 0; i < n; ++i) {
    barrier.run([&, i] {
      TRKX_CHECK(i < out.size());
      out[i] = 1.0f;
    });
  }
  // seeded: no barrier.rethrow() after the region — the captured
  // exception is silently dropped.
}

}  // namespace trkx
