// Definition of the fixture hot entry point: the seeded alloc/block
// sites are NOT here — they sit two call hops down, in
// src/tensor/hot_helper.cpp, so the finding requires the cross-TU hot
// closure. Also calls the suppressed warmup (hot_suppressed.cpp).
namespace trkx {

class Matrix;

Matrix fixture_scratch_alloc(const Matrix& input);
void fixture_warm_cache();

Matrix fixture_stage_two(const Matrix& input) {
  fixture_warm_cache();
  return fixture_scratch_alloc(input);
}

Matrix fixture_infer(const Matrix& input) {
  return fixture_stage_two(input);
}

}  // namespace trkx
