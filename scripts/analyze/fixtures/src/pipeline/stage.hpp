#pragma once

// Clean header; the include target for the seeded layer-order violations.
