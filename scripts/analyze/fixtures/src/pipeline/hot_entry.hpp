// Declares the fixture hot entry point; the closure it opens reaches an
// allocation and a blocking op two call hops away in src/tensor/.
#pragma once

namespace trkx {

class Matrix;

TRKX_HOT Matrix fixture_infer(const Matrix& input);

}  // namespace trkx
