// Seeded rng-stream hand-off: this TU is outside sampling scope, but it
// feeds a *sequential* Rng into the sampler defined in
// src/sampling/raw_sampler.cpp — the cross-TU half of the rule.
namespace trkx {

class Rng;

std::size_t fixture_sample_edges(std::size_t n, Rng& rng);

std::size_t fixture_feed_sampler(std::size_t n) {
  Rng rng(7);
  return fixture_sample_edges(n, rng);  // seeded: trkx-rng-stream (hand-off)
}

}  // namespace trkx
