// Seeded trkx-atomic-write violation: a checkpoint file opened directly
// with std::ofstream instead of going through atomic_write_file, so a
// crash mid-write could leave a torn .ckpt that resume would then trust.
#include <fstream>
#include <string>

namespace trkx {

void fixture_write_checkpoint(const std::string& dir) {
  std::ofstream os(dir + "/ckpt-000001.ckpt", std::ios::binary);
  os << "payload";
}

}  // namespace trkx
