#pragma once

// Seeded layer-unknown violation: "mystery" is absent from the layer map.
