// Hot-path violations suppressed with NOLINT(<rule>): reason — reached
// from the fixture hot entry point but must contribute ZERO findings.
#include <memory>

namespace trkx {

void fixture_warm_cache() {
  // NOLINT(trkx-hot-alloc): fixture — first-call warmup cache
  auto cache = std::make_unique<int[]>(8);
  (void)cache;
  // NOLINT(trkx-hot-block): fixture — startup settle, not steady state
  std::this_thread::sleep_for(std::chrono::milliseconds(1));
}

}  // namespace trkx
