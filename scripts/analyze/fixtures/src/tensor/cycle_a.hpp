#pragma once

#include "tensor/cycle_b.hpp"  // seeded layer-cycle (with cycle_b.hpp)
