// Seeded violation for the kernel-dispatch pass: a hand-rolled GEMM
// multiply-accumulate loop that bypasses kernels::active(). The scalar
// fold into `norm` must NOT fire (plain accumulator, not an indexed
// element), and the suppressed line proves NOLINT is honoured.
#include <cstddef>

namespace trkx {

void bad_matmul(const float* a, const float* b, float* c, std::size_t m,
                std::size_t k, std::size_t n) {
  for (std::size_t i = 0; i < m; ++i)
    for (std::size_t j = 0; j < n; ++j)
      for (std::size_t p = 0; p < k; ++p)
        c[i * n + j] += a[i * k + p] * b[p * n + j];
}

float ok_scalar_fold(const float* a, const float* b, std::size_t n) {
  float norm = 0.0f;
  for (std::size_t i = 0; i < n; ++i) norm += a[i] * b[i];
  return norm;
}

void ok_suppressed(float* acc, const float* v, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i)
    // NOLINT(trkx-kernel-dispatch): fixture proves suppression works
    acc[i] += v[i] * 2.0f;
}

}  // namespace trkx
