// Bottom of the fixture hot closure: a heap allocation and a blocking
// sleep, both reached from fixture_infer() two call hops away.
#include <memory>

namespace trkx {

class Matrix;

void fixture_settle() {
  std::this_thread::sleep_for(std::chrono::milliseconds(1));  // seeded: trkx-hot-block
}

Matrix fixture_scratch_alloc(const Matrix& input) {
  auto scratch = std::make_unique<float[]>(64);  // seeded: trkx-hot-alloc
  (void)scratch;
  fixture_settle();
  return input;
}

}  // namespace trkx
