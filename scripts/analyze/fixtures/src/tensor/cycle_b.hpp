#pragma once

#include "tensor/cycle_a.hpp"  // seeded layer-cycle (with cycle_a.hpp)
