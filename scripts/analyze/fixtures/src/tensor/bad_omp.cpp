// Seeded omp-sharing violations. Line numbers are pinned by
// fixtures/expected.txt — edit both together.
#include <cstddef>

namespace trkx {

void fixture_no_default(float* data, std::size_t n, float s) {
#pragma omp parallel for schedule(static)
  for (std::size_t i = 0; i < n; ++i) data[i] *= s;
}

void fixture_missing_clause(float* dst, const float* src, std::size_t n,
                            float bias) {
#pragma omp parallel for default(none) shared(dst, src) firstprivate(n)
  for (std::size_t i = 0; i < n; ++i) dst[i] = src[i] + bias;
}

void fixture_unused_clause(float* dst, std::size_t n, float stale) {
#pragma omp parallel for default(none) shared(dst) firstprivate(n, stale)
  for (std::size_t i = 0; i < n; ++i) dst[i] = 1.0f;
}

void fixture_shared_write(const float* data, std::size_t n, double* out) {
  double total = 0.0;
#pragma omp parallel for default(none) shared(data, total) firstprivate(n)
  for (std::size_t i = 0; i < n; ++i) total += data[i];
  *out = total;
}

}  // namespace trkx
