// Seeded thread-boundary fixtures: a thread entry that can throw with
// no barrier (flags trkx-throw-thread) next to the two sanctioned
// shapes (a catch-all inside the entry, and a non-throwing entry).

namespace trkx {

void risky_entry() {
  TRKX_CHECK(false);
}

void safe_entry() {
  try {
    TRKX_CHECK(false);
  } catch (...) {
  }
}

void spawn_unguarded() {
  std::vector<std::thread> workers;
  workers.emplace_back([] { risky_entry(); });  // seeded: trkx-throw-thread
  for (auto& w : workers) w.join();
}

void spawn_guarded() {
  std::thread worker([] { safe_entry(); });
  worker.join();
}

}  // namespace trkx
