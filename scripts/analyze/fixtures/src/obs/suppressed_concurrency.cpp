// NOLINT-suppression proofs for the cross-TU passes: every violation
// below carries a NOLINT(<rule>): reason, so this file must contribute
// ZERO findings to the selftest — it is the "suppression works" half of
// the fixture corpus for lock-order, throw-boundary, and env-registry.
#include "util/fixture_locks.hpp"

namespace trkx {

void suppressed_inversion() {
  LockGuard pool(g_pool_mutex);
  // NOLINT(trkx-lock-order): fixture proof that site suppression works
  LockGuard stats(g_stats_mutex);
  (void)stats;
  (void)pool;
}

void suppressed_blocking(std::ostream& os) {
  LockGuard stats(g_stats_mutex);
  // NOLINT(trkx-lock-blocking): flush under lock is deliberate here
  os.flush();
  (void)stats;
}

void suppressed_region(std::vector<float>& out, std::size_t n) {
  // NOLINT(trkx-throw-omp): fixture proof that region suppression works
#pragma omp parallel for default(none) shared(out, n)
  for (std::size_t i = 0; i < n; ++i) {
    TRKX_CHECK(i < out.size());
    out[i] = 0.0f;
  }
}

void suppressed_thread() {
  std::vector<std::thread> workers;
  // NOLINT(trkx-throw-thread): fixture proof of launch-site suppression
  workers.emplace_back([] { risky_entry(); });
  for (auto& w : workers) w.join();
}

const char* suppressed_env() {
  // NOLINT(trkx-env-direct): fixture proof of getenv-site suppression
  return std::getenv("TRKX_FIXTURE_MODE");
}

long suppressed_unregistered() {
  // NOLINT(trkx-env-unregistered): fixture proof of accessor suppression
  return env::get_int("TRKX_FIXTURE_BOGUS");
}

}  // namespace trkx
