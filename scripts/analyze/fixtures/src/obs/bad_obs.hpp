#pragma once

#include "pipeline/stage.hpp"  // seeded layer-order: obs may include only util
