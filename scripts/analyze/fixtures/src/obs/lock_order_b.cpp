// The other half of the seeded cross-TU lock-order inversion: this TU
// holds g_pool_mutex while calling log_stats(), which acquires
// g_stats_mutex in src/util/lock_order_a.cpp — the opposite order from
// update_stats() there. Neither TU is wrong in isolation; only the
// joined lock graph has the cycle.
#include "util/fixture_locks.hpp"

namespace trkx {

void drain_pool() {
  LockGuard pool(g_pool_mutex);
  log_stats();  // seeded: trkx-lock-order (acquires g_stats_mutex)
  (void)pool;
}

}  // namespace trkx
