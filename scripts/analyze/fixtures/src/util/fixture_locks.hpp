// Shared mutex declarations for the cross-TU lock-order fixtures.
// Two TUs (src/util/lock_order_a.cpp and src/obs/lock_order_b.cpp)
// acquire these in opposite orders — the inversion is only visible to
// a pass that joins facts across files.
#pragma once

namespace trkx {

struct Mutex {};

extern Mutex g_stats_mutex;
extern Mutex g_pool_mutex;

void update_stats();
void log_stats();

}  // namespace trkx
