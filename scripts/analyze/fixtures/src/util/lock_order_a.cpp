// Half of the seeded cross-TU lock-order inversion: this TU acquires
// g_stats_mutex BEFORE g_pool_mutex. The other half (src/obs/
// lock_order_b.cpp) holds g_pool_mutex while calling log_stats() below,
// closing the cycle through the call graph.
#include "util/fixture_locks.hpp"

namespace trkx {

Mutex g_stats_mutex;
Mutex g_pool_mutex;

void update_stats() {
  LockGuard stats(g_stats_mutex);
  LockGuard pool(g_pool_mutex);  // seeded: trkx-lock-order (cycle)
  (void)pool;
  (void)stats;
}

// Acquires g_stats_mutex on behalf of callers; drain_pool() in the obs
// TU calls this while holding g_pool_mutex.
void log_stats() {
  LockGuard stats(g_stats_mutex);
  (void)stats;
}

// Seeded: a stream flush while the stats lock is held.
void slow_flush(std::ostream& os) {
  LockGuard stats(g_stats_mutex);
  os.flush();  // seeded: trkx-lock-blocking
  (void)stats;
}

}  // namespace trkx
