#pragma once

#include "pipeline/stage.hpp"  // seeded layer-order: util must not see pipeline
