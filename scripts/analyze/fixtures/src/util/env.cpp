// Fixture mirror of the trkx::env knob registry. The env-registry pass
// path-matches src/util/env.cpp and parses the kKnobs rows below as the
// registered set for this tree — accessor calls elsewhere in the
// fixtures are validated against exactly these names.

namespace trkx::env {
namespace {

constexpr Knob kKnobs[] = {
    {"TRKX_FIXTURE_LIMIT", "8", "Fixture knob: iteration cap"},
    {"TRKX_FIXTURE_MODE", "auto", "Fixture knob: dispatch mode"},
};

}  // namespace
}  // namespace trkx::env
