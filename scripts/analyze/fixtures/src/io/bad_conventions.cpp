// Seeded conventions (project-lint) violations.
#include <cstdio>
#include <mutex>
#include <random>

namespace trkx {

using namespace std;

void fixture_report(int value) {
  printf("%d\n", value);
}

int fixture_draw() {
  std::mt19937 gen(42);
  return static_cast<int>(gen());
}

int* fixture_alloc() {
  return new int(7);
}

std::mutex fixture_lock;

void fixture_critical() {
#pragma omp critical
  {
  }
}

}  // namespace trkx
