// Seeded env-registry fixtures: a direct getenv of a TRKX_* knob (must
// route through trkx::env) and an accessor naming a knob the registry
// does not declare, next to a clean registered accessor call.

namespace trkx {

const char* direct_read() {
  return std::getenv("TRKX_FIXTURE_MODE");  // seeded: trkx-env-direct
}

long unregistered_read() {
  return env::get_int("TRKX_FIXTURE_BOGUS");  // seeded: trkx-env-unregistered
}

std::string registered_read() {
  return env::get_string("TRKX_FIXTURE_MODE");
}

}  // namespace trkx
