// Seeded rng-stream violations in sampling scope, plus the clean
// Rng&-parameter idiom (samplers never own randomness) and a
// suppression proof.
namespace trkx {

class Rng;

std::size_t fixture_pick_index(std::size_t n) {
  Rng rng(12345);  // seeded: trkx-rng-stream (sequential def in sampling)
  return rng.uniform_index(n);
}

float fixture_member_jitter() {
  return rng_.normal();  // seeded: trkx-rng-stream (member draw)
}

// Clean by design: randomness comes in as a parameter, the caller keys it.
std::size_t fixture_sample_edges(std::size_t n, Rng& rng) {
  return rng.uniform_index(n);
}

std::size_t fixture_legacy_shuffle(std::size_t n) {
  // NOLINT(trkx-rng-stream): fixture — legacy corpus order, checkpointed
  Rng rng(99);
  return rng.uniform_index(n);
}

}  // namespace trkx
