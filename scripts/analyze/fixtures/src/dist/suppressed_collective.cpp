// Seeded collective violations suppressed with NOLINT(<rule>): reason —
// this file must contribute ZERO findings (suppression proof per rule).
namespace trkx {

class Communicator;

void fixture_root_only_reduce(Communicator& comm, int rank, float x) {
  if (rank == 0) {
    // NOLINT(trkx-collective-divergent): fixture — root-only rendezvous
    comm.all_reduce_sum(x);
  }
}

void fixture_swallow_with_cover(Communicator& comm, float x) {
  try {
    // NOLINT(trkx-collective-unguarded): fixture — peer side has timeout
    comm.all_reduce_sum(x);
  } catch (...) {
  }
}

}  // namespace trkx
