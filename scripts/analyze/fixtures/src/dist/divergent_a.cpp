// Seeded collective-consistency violations. The first case is the
// mandated two-TU shape: this TU only calls reduce_partial() under a
// rank guard; the collective itself lives in divergent_b.cpp, so
// neither TU is flaggable alone.
namespace trkx {

class Communicator;

void reduce_partial(Communicator& comm);

void fixture_rank_guarded_reduce(Communicator& comm, int rank) {
  if (rank == 0) {
    reduce_partial(comm);  // seeded: trkx-collective-divergent (via helper)
  }
}

void fixture_early_exit_reduce(Communicator& comm, int rank, float x) {
  if (rank != 0) {
    return;
  }
  comm.all_reduce_sum(x);  // seeded: trkx-collective-divergent (early exit)
}

// seeded below: the branch arms run different collective kinds under a
// data-dependent (rank-local) condition.
void fixture_arm_mismatch(Communicator& comm, float local_loss) {
  if (local_loss > 0.5f) {
    comm.all_reduce_sum(local_loss);
  } else {
    comm.barrier();
  }
}

void fixture_swallowed_reduce(Communicator& comm, float x) {
  try {
    comm.all_reduce_sum(x);  // seeded: trkx-collective-unguarded
  } catch (...) {
  }
}

}  // namespace trkx
