// Helper half of the two-TU divergent-collective case: the collective
// here is unconditional, so this TU contributes no finding on its own —
// the divergence only exists at the rank-guarded call in divergent_a.cpp.
namespace trkx {

class Communicator;

void reduce_partial(Communicator& comm) {
  float local = 1.0f;
  comm.all_reduce_sum(local);
  (void)comm;
}

}  // namespace trkx
