// Seeded numeric-safety violations.
#include <cmath>
#include <cstddef>
#include <cstdint>

namespace trkx {

float fixture_mean(float total, float count) {
  return total / count;  // seeded trkx-div-guard
}

float fixture_boltzmann(float energy) {
  return std::exp(energy);  // seeded trkx-exp-log
}

std::uint32_t fixture_edge_id(std::size_t base, std::size_t offset) {
  return static_cast<std::uint32_t>(base + offset);  // seeded trkx-narrow-cast
}

}  // namespace trkx
