// Seeded violation for trkx-hot-root: a serve-module request path with
// no TRKX_HOT entry point anywhere in the module — the hot-path pass
// must notice that its alloc/block discipline has silently stopped
// covering the serving layer.

namespace trkx::serve {

int cold_request_path(int request_id) { return request_id + 1; }

}  // namespace trkx::serve
