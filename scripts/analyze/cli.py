"""trkx-analyze CLI: run the analysis passes over the repo and report
findings as ``file:line: [rule] message`` (exit 1 when any survive).

Usage:
    trkx-analyze [--root DIR] [--passes a,b,...] [--list-rules]
                 [--check-headers] [--compiler CXX] [--sarif FILE]
                 [--baseline FILE]

Passes and their scopes:

    omp-sharing     src/            OpenMP data-sharing clauses
    layering        src/            include DAG layer order + cycles
    numeric-safety  src/            divisions, exp/log, narrowing casts
    kernel-dispatch src/            multiply-accumulate hot loops must
                    route through the kernels::active() dispatch table
    conventions     src/ + tests/ + bench/   the original project-lint
                    rules, plus the bench JSON-registration rule
    lock-order      src/            cross-TU lock-acquisition graph:
                    order inversions, blocking ops under locks
    throw-boundary  src/            throwing paths inside OpenMP
                    regions / thread entries without a barrier
    env-registry    src/ + bench/ + examples/   TRKX_* knobs must route
                    through the trkx::env registry
    collective-consistency  src/    every rank must reach the same
                    collective sequence; divergent branches and
                    swallowing handlers around collectives
    hot-path        src/            TRKX_HOT inference closure stays
                    free of heap allocation and blocking ops
    rng-stream      src/            sampling randomness must derive
                    from (rank,epoch,event,batch) Rng::stream keys

All passes from lock-order down are *cross-TU*: they run over per-file
facts (scripts/analyze/facts.py) joined into a whole-program index.
``--facts-out FILE`` dumps that fact database as JSON for offline
inspection (a failed dump is itself a failure — CI archives it).

``--sarif FILE`` additionally writes the findings as SARIF 2.1.0 for
editors and code scanning. ``--baseline FILE`` loads a committed
baseline (schema trkx-analyze-baseline-v1) and gates only on findings
not already recorded there — the ratchet for adopting a new pass on a
tree with known, triaged debt.

Suppression: ``NOLINT(<rule>): reason`` on the offending line or the
line directly above it; bare ``NOLINT`` blankets the line.
"""

import argparse
import json
import os
import sys

from . import (collective_consistency, conventions, env_registry, facts,
               hot_path, kernel_dispatch, layering, lock_order,
               numeric_safety, omp_sharing, rng_stream, sarif,
               throw_boundary)
from .common import SourceTree

# pass name -> (module, subdirs it runs over)
PASSES = {
    "omp-sharing": (omp_sharing, ("src",)),
    "layering": (layering, ("src",)),
    "numeric-safety": (numeric_safety, ("src",)),
    "kernel-dispatch": (kernel_dispatch, ("src",)),
    "conventions": (conventions, ("src", "tests", "bench")),
    "lock-order": (lock_order, ("src",)),
    "throw-boundary": (throw_boundary, ("src",)),
    "env-registry": (env_registry, ("src", "bench", "examples")),
    "collective-consistency": (collective_consistency, ("src",)),
    "hot-path": (hot_path, ("src",)),
    "rng-stream": (rng_stream, ("src",)),
}

BASELINE_SCHEMA = "trkx-analyze-baseline-v1"


def load_baseline(path):
    """{(path, line, rule)} from a committed baseline file."""
    with open(path, encoding="utf-8") as f:
        doc = json.load(f)
    if doc.get("schema") != BASELINE_SCHEMA:
        raise ValueError(f"baseline schema {doc.get('schema')!r} != "
                         f"{BASELINE_SCHEMA!r}")
    out = set()
    for entry in doc.get("findings", []):
        out.add((entry["path"], int(entry["line"]), entry["rule"]))
    return out


def default_root():
    """scripts/analyze/cli.py -> repo root two levels up from scripts/."""
    return os.path.dirname(os.path.dirname(
        os.path.dirname(os.path.abspath(__file__))))


def main(argv=None):
    parser = argparse.ArgumentParser(
        prog="trkx-analyze", description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("--root", default=None,
                        help="repo root (default: the tree containing "
                             "this script)")
    parser.add_argument("--passes", default=",".join(PASSES),
                        help="comma-separated pass names "
                             f"(default: all = {','.join(PASSES)})")
    parser.add_argument("--list-rules", action="store_true",
                        help="print every rule with its description")
    parser.add_argument("--check-headers", action="store_true",
                        help="also compile every src/ header standalone "
                             "(conventions pass)")
    parser.add_argument("--compiler",
                        default=os.environ.get("CXX", "c++"),
                        help="compiler for --check-headers")
    parser.add_argument("--facts-out", default=None, metavar="FILE",
                        help="dump the cross-TU fact database (src/) as "
                             "JSON to FILE ('-' for stdout)")
    parser.add_argument("--counts-out", default=None, metavar="FILE",
                        help="write per-pass finding counts as a JSON "
                             "object (feeds the ci_matrix summary)")
    parser.add_argument("--sarif", default=None, metavar="FILE",
                        help="also write findings as SARIF 2.1.0")
    parser.add_argument("--baseline", default=None, metavar="FILE",
                        help="gate only on findings absent from this "
                             f"committed baseline ({BASELINE_SCHEMA})")
    args = parser.parse_args(argv)

    if args.list_rules:
        for name, (mod, _) in PASSES.items():
            for rule, desc in mod.RULES.items():
                print(f"{name}/{rule}: {desc}")
        return 0

    names = [p.strip() for p in args.passes.split(",") if p.strip()]
    unknown = [p for p in names if p not in PASSES]
    if unknown:
        print(f"trkx-analyze: unknown pass(es): {', '.join(unknown)} "
              f"(known: {', '.join(PASSES)})", file=sys.stderr)
        return 2

    root = args.root or default_root()
    trees = {}
    findings = []
    counts = {}
    n_files = 0
    for name in names:
        mod, subdirs = PASSES[name]
        if subdirs not in trees:
            trees[subdirs] = SourceTree(root, subdirs)
        tree = trees[subdirs]
        pass_findings = mod.run(tree)
        counts[name] = len(pass_findings)
        findings.extend(pass_findings)
    if args.check_headers and "conventions" in names:
        conventions.check_headers(root, args.compiler, findings)
    if args.facts_out:
        # A failed dump must fail the run even with zero findings:
        # CI archives this file, and a silently missing archive is a
        # debugging dead end.
        try:
            tree = trees.setdefault(("src",), SourceTree(root, ("src",)))
            payload = facts.Project.for_tree(tree).to_json()
            if args.facts_out == "-":
                print(payload)
            else:
                with open(args.facts_out, "w", encoding="utf-8") as f:
                    f.write(payload + "\n")
        except (OSError, ValueError) as exc:
            print(f"trkx-analyze: facts dump to {args.facts_out!r} "
                  f"failed: {exc}", file=sys.stderr)
            return 2
    if args.counts_out:
        try:
            with open(args.counts_out, "w", encoding="utf-8") as f:
                json.dump(counts, f, sort_keys=True)
                f.write("\n")
        except OSError as exc:
            print(f"trkx-analyze: counts dump to {args.counts_out!r} "
                  f"failed: {exc}", file=sys.stderr)
            return 2
    for tree in trees.values():
        n_files = max(n_files, sum(1 for _ in tree.rel_paths()))

    findings.sort(key=lambda f: (f.path, f.line, f.rule))
    if args.sarif:
        rules = {}
        for name in names:
            rules.update(PASSES[name][0].RULES)
        try:
            sarif.write(args.sarif, findings, rules)
        except OSError as exc:
            print(f"trkx-analyze: sarif dump to {args.sarif!r} "
                  f"failed: {exc}", file=sys.stderr)
            return 2

    baselined = 0
    if args.baseline:
        try:
            known = load_baseline(args.baseline)
        except (OSError, ValueError, KeyError, json.JSONDecodeError) as exc:
            print(f"trkx-analyze: cannot load baseline "
                  f"{args.baseline!r}: {exc}", file=sys.stderr)
            return 2
        kept = [f for f in findings
                if (f.path, f.line, f.rule) not in known]
        baselined = len(findings) - len(kept)
        findings = kept

    for f in findings:
        print(str(f), file=sys.stderr)
    suffix = f" ({baselined} baselined)" if baselined else ""
    if findings:
        print(f"trkx-analyze: {len(findings)} finding(s) "
              f"[{', '.join(names)}] over {n_files} files{suffix}",
              file=sys.stderr)
        return 1
    print(f"trkx-analyze: OK [{', '.join(names)}] "
          f"({n_files} files){suffix}")
    return 0
