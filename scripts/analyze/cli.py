"""trkx-analyze CLI: run the analysis passes over the repo and report
findings as ``file:line: [rule] message`` (exit 1 when any survive).

Usage:
    trkx-analyze [--root DIR] [--passes a,b,...] [--list-rules]
                 [--check-headers] [--compiler CXX]

Passes and their scopes:

    omp-sharing     src/            OpenMP data-sharing clauses
    layering        src/            include DAG layer order + cycles
    numeric-safety  src/            divisions, exp/log, narrowing casts
    kernel-dispatch src/            multiply-accumulate hot loops must
                    route through the kernels::active() dispatch table
    conventions     src/ + tests/ + bench/   the original project-lint
                    rules, plus the bench JSON-registration rule
    lock-order      src/            cross-TU lock-acquisition graph:
                    order inversions, blocking ops under locks
    throw-boundary  src/            throwing paths inside OpenMP
                    regions / thread entries without a barrier
    env-registry    src/ + bench/ + examples/   TRKX_* knobs must route
                    through the trkx::env registry

The last three are *cross-TU* passes: they run over per-file facts
(scripts/analyze/facts.py) joined into a whole-program index.
``--facts-out FILE`` dumps that fact database as JSON for offline
inspection.

Suppression: ``NOLINT(<rule>): reason`` on the offending line or the
line directly above it; bare ``NOLINT`` blankets the line.
"""

import argparse
import json
import os
import sys

from . import (conventions, env_registry, facts, kernel_dispatch, layering,
               lock_order, numeric_safety, omp_sharing, throw_boundary)
from .common import SourceTree

# pass name -> (module, subdirs it runs over)
PASSES = {
    "omp-sharing": (omp_sharing, ("src",)),
    "layering": (layering, ("src",)),
    "numeric-safety": (numeric_safety, ("src",)),
    "kernel-dispatch": (kernel_dispatch, ("src",)),
    "conventions": (conventions, ("src", "tests", "bench")),
    "lock-order": (lock_order, ("src",)),
    "throw-boundary": (throw_boundary, ("src",)),
    "env-registry": (env_registry, ("src", "bench", "examples")),
}


def default_root():
    """scripts/analyze/cli.py -> repo root two levels up from scripts/."""
    return os.path.dirname(os.path.dirname(
        os.path.dirname(os.path.abspath(__file__))))


def main(argv=None):
    parser = argparse.ArgumentParser(
        prog="trkx-analyze", description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("--root", default=None,
                        help="repo root (default: the tree containing "
                             "this script)")
    parser.add_argument("--passes", default=",".join(PASSES),
                        help="comma-separated pass names "
                             f"(default: all = {','.join(PASSES)})")
    parser.add_argument("--list-rules", action="store_true",
                        help="print every rule with its description")
    parser.add_argument("--check-headers", action="store_true",
                        help="also compile every src/ header standalone "
                             "(conventions pass)")
    parser.add_argument("--compiler",
                        default=os.environ.get("CXX", "c++"),
                        help="compiler for --check-headers")
    parser.add_argument("--facts-out", default=None, metavar="FILE",
                        help="dump the cross-TU fact database (src/) as "
                             "JSON to FILE ('-' for stdout)")
    parser.add_argument("--counts-out", default=None, metavar="FILE",
                        help="write per-pass finding counts as a JSON "
                             "object (feeds the ci_matrix summary)")
    args = parser.parse_args(argv)

    if args.list_rules:
        for name, (mod, _) in PASSES.items():
            for rule, desc in mod.RULES.items():
                print(f"{name}/{rule}: {desc}")
        return 0

    names = [p.strip() for p in args.passes.split(",") if p.strip()]
    unknown = [p for p in names if p not in PASSES]
    if unknown:
        print(f"trkx-analyze: unknown pass(es): {', '.join(unknown)} "
              f"(known: {', '.join(PASSES)})", file=sys.stderr)
        return 2

    root = args.root or default_root()
    trees = {}
    findings = []
    counts = {}
    n_files = 0
    for name in names:
        mod, subdirs = PASSES[name]
        if subdirs not in trees:
            trees[subdirs] = SourceTree(root, subdirs)
        tree = trees[subdirs]
        pass_findings = mod.run(tree)
        counts[name] = len(pass_findings)
        findings.extend(pass_findings)
    if args.check_headers and "conventions" in names:
        conventions.check_headers(root, args.compiler, findings)
    if args.facts_out:
        tree = trees.setdefault(("src",), SourceTree(root, ("src",)))
        payload = facts.Project.for_tree(tree).to_json()
        if args.facts_out == "-":
            print(payload)
        else:
            with open(args.facts_out, "w", encoding="utf-8") as f:
                f.write(payload + "\n")
    if args.counts_out:
        with open(args.counts_out, "w", encoding="utf-8") as f:
            json.dump(counts, f, sort_keys=True)
            f.write("\n")
    for tree in trees.values():
        n_files = max(n_files, sum(1 for _ in tree.rel_paths()))

    findings.sort(key=lambda f: (f.path, f.line, f.rule))
    for f in findings:
        print(str(f), file=sys.stderr)
    if findings:
        print(f"trkx-analyze: {len(findings)} finding(s) "
              f"[{', '.join(names)}] over {n_files} files",
              file=sys.stderr)
        return 1
    print(f"trkx-analyze: OK [{', '.join(names)}] ({n_files} files)")
    return 0
