"""env-registry pass: every TRKX_* knob goes through trkx::env.

Phase 2 of the cross-TU analyzer (see facts.py), though this one needs
no call graph — its cross-TU fact is the knob registry itself: the
``kKnobs`` table in src/util/env.cpp is the single source of truth for
which TRKX_* environment variables exist, their defaults, and their
one-line docs (scripts/check_env_docs.py validates the README table
against the same rows).

    trkx-env-direct        a direct ``getenv`` naming a TRKX_* variable
                           anywhere outside src/util/env.cpp. Direct
                           reads bypass registration, defaulting, and
                           the documentation contract — route through
                           trkx::env::get_* / is_set instead.
    trkx-env-unregistered  a trkx::env accessor call naming a knob the
                           registry does not declare (it would throw
                           trkx::Error at runtime; the analyzer catches
                           it at review time).

The registry is parsed from the raw (comment-preserving) lines of
src/util/env.cpp: one ``{"TRKX_NAME", ...`` row per knob. If the
registry file is absent from the analyzed tree the registered set is
empty and every accessor call flags — a loud failure beats a silent
pass.
"""

import re

from .common import Finding

RULES = {
    "trkx-env-direct": "direct getenv of a TRKX_* knob outside the "
                       "trkx::env registry (src/util/env.cpp)",
    "trkx-env-unregistered": "trkx::env accessor names a knob missing "
                             "from the kKnobs registry table",
}

REGISTRY_FILE = "src/util/env.cpp"
KNOB_ROW = re.compile(r'\{\s*"(TRKX_\w+)"')
GETENV = re.compile(r"(?<![\w:])(?:std::)?getenv\s*\(")
ACCESSOR = re.compile(
    r"\benv\s*::\s*(?:raw|is_set|is_registered|get_string|get_int"
    r"|get_double|get_bool)\s*\(\s*\"(TRKX_\w+)\"")
TRKX_LITERAL = re.compile(r'"(TRKX_\w+)"')


def _registered(tree):
    knobs = set()
    for rel in tree.rel_paths():
        if rel != REGISTRY_FILE:
            continue
        for line in tree.file(rel).raw:
            m = KNOB_ROW.search(line)
            if m:
                knobs.add(m.group(1))
    return knobs


def run(tree):
    knobs = _registered(tree)
    findings = []
    for sf in tree.files():
        if sf.rel == REGISTRY_FILE:
            continue
        for li, code in enumerate(sf.code):
            if GETENV.search(code) and TRKX_LITERAL.search(sf.raw[li]):
                if not sf.has_nolint(li, "trkx-env-direct"):
                    name = TRKX_LITERAL.search(sf.raw[li]).group(1)
                    findings.append(Finding(
                        sf.rel, li + 1, "trkx-env-direct",
                        f"direct getenv(\"{name}\") bypasses the trkx::env "
                        "registry; use trkx::env::get_* / is_set"))
                continue  # don't double-flag the same line as unregistered
            # Accessor calls: the literal lives in raw (code blanks
            # string contents), the call shape in either.
            for m in ACCESSOR.finditer(sf.raw[li]):
                name = m.group(1)
                if name in knobs:
                    continue
                if sf.has_nolint(li, "trkx-env-unregistered"):
                    continue
                findings.append(Finding(
                    sf.rel, li + 1, "trkx-env-unregistered",
                    f"knob \"{name}\" is not declared in the kKnobs table "
                    f"({REGISTRY_FILE}); the accessor throws at runtime — "
                    "register the knob (name, default, doc) first"))
    return findings
