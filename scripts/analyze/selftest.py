#!/usr/bin/env python3
"""Self-test for trkx-analyze: run every pass over the seeded-violation
fixture tree (scripts/analyze/fixtures/) and compare the findings against
the golden list (fixtures/expected.txt).

Two failure modes are caught:

  * a pass stops detecting a seeded violation (regression in detection),
  * a pass starts reporting something new on the fixtures (false positive
    drift — the fixtures double as a "no noise" corpus via the NOLINT
    suppression file, which must contribute zero findings).

The golden list must also exercise every rule every pass declares, so a
new rule cannot land without a fixture proving it fires.

Exit status: 0 on exact match, 1 otherwise (one diff line per mismatch).
"""

import os
import sys

sys.path.insert(0, os.path.dirname(os.path.dirname(os.path.abspath(__file__))))

from analyze import (conventions, env_registry, kernel_dispatch, layering,
                     lock_order, numeric_safety, omp_sharing, throw_boundary)
from analyze.common import SourceTree

PASSES = (omp_sharing, layering, numeric_safety, kernel_dispatch, conventions,
          lock_order, throw_boundary, env_registry)


def load_expected(path):
    expected = set()
    with open(path, encoding="utf-8") as f:
        for raw in f:
            line = raw.strip()
            if not line or line.startswith("#"):
                continue
            # "<path>:<line>: <rule>"
            loc, rule = line.rsplit(": ", 1)
            rel, lineno = loc.rsplit(":", 1)
            expected.add((rel, int(lineno), rule))
    return expected


def main():
    here = os.path.dirname(os.path.abspath(__file__))
    fixtures = os.path.join(here, "fixtures")
    expected = load_expected(os.path.join(fixtures, "expected.txt"))

    tree = SourceTree(fixtures, ("src", "bench"))
    actual = set()
    for mod in PASSES:
        for f in mod.run(tree):
            actual.add((f.path, f.line, f.rule))

    ok = True
    for rel, lineno, rule in sorted(expected - actual):
        print(f"MISSED (seeded but not detected): {rel}:{lineno}: {rule}")
        ok = False
    for rel, lineno, rule in sorted(actual - expected):
        print(f"UNEXPECTED (not in golden list): {rel}:{lineno}: {rule}")
        ok = False

    # Every declared rule must be exercised by at least one seeded finding.
    declared = set()
    for mod in PASSES:
        declared.update(mod.RULES)
    exercised = {rule for _, _, rule in expected}
    for rule in sorted(declared - exercised):
        print(f"UNCOVERED (rule has no seeded fixture): {rule}")
        ok = False

    if ok:
        print(f"analyze-selftest: OK ({len(expected)} seeded findings, "
              f"{len(declared)} rules exercised)")
        return 0
    return 1


if __name__ == "__main__":
    sys.exit(main())
