#!/usr/bin/env python3
"""Self-test for trkx-analyze: run every pass over the seeded-violation
fixture tree (scripts/analyze/fixtures/) and compare the findings against
the golden list (fixtures/expected.txt).

Two failure modes are caught:

  * a pass stops detecting a seeded violation (regression in detection),
  * a pass starts reporting something new on the fixtures (false positive
    drift — the fixtures double as a "no noise" corpus via the NOLINT
    suppression file, which must contribute zero findings).

The golden list must also exercise every rule every pass declares, so a
new rule cannot land without a fixture proving it fires.

Beyond the exact match, the selftest also round-trips the findings
through the SARIF 2.1.0 emitter (structure validated, one result per
golden finding) and through the CLI's --baseline gate (a baseline of
exactly the golden findings must turn exit 1 into exit 0).

Exit status: 0 on exact match, 1 otherwise (one diff line per mismatch).
"""

import contextlib
import io
import json
import os
import sys
import tempfile

sys.path.insert(0, os.path.dirname(os.path.dirname(os.path.abspath(__file__))))

from analyze import (cli, collective_consistency, conventions, env_registry,
                     hot_path, kernel_dispatch, layering, lock_order,
                     numeric_safety, omp_sharing, rng_stream, sarif,
                     throw_boundary)
from analyze.common import SourceTree

PASSES = (omp_sharing, layering, numeric_safety, kernel_dispatch, conventions,
          lock_order, throw_boundary, env_registry, collective_consistency,
          hot_path, rng_stream)


def load_expected(path):
    expected = set()
    with open(path, encoding="utf-8") as f:
        for raw in f:
            line = raw.strip()
            if not line or line.startswith("#"):
                continue
            # "<path>:<line>: <rule>"
            loc, rule = line.rsplit(": ", 1)
            rel, lineno = loc.rsplit(":", 1)
            expected.add((rel, int(lineno), rule))
    return expected


def main():
    here = os.path.dirname(os.path.abspath(__file__))
    fixtures = os.path.join(here, "fixtures")
    expected = load_expected(os.path.join(fixtures, "expected.txt"))

    tree = SourceTree(fixtures, ("src", "bench"))
    actual = set()
    findings = []
    for mod in PASSES:
        for f in mod.run(tree):
            actual.add((f.path, f.line, f.rule))
            findings.append(f)

    ok = True
    for rel, lineno, rule in sorted(expected - actual):
        print(f"MISSED (seeded but not detected): {rel}:{lineno}: {rule}")
        ok = False
    for rel, lineno, rule in sorted(actual - expected):
        print(f"UNEXPECTED (not in golden list): {rel}:{lineno}: {rule}")
        ok = False

    # Every declared rule must be exercised by at least one seeded finding.
    declared = set()
    for mod in PASSES:
        declared.update(mod.RULES)
    exercised = {rule for _, _, rule in expected}
    for rule in sorted(declared - exercised):
        print(f"UNCOVERED (rule has no seeded fixture): {rule}")
        ok = False

    # SARIF round trip: emit the fixture findings, re-read, validate.
    rules = {}
    for mod in PASSES:
        rules.update(mod.RULES)
    findings.sort(key=lambda f: (f.path, f.line, f.rule))
    fd, sarif_path = tempfile.mkstemp(suffix=".sarif")
    os.close(fd)
    try:
        sarif.write(sarif_path, findings, rules)
        with open(sarif_path, encoding="utf-8") as f:
            doc = json.load(f)
        sarif.validate(doc)
        n_results = len(doc["runs"][0]["results"])
        if n_results != len(findings):
            print(f"SARIF: {n_results} results != {len(findings)} findings")
            ok = False
    except (ValueError, KeyError, OSError) as exc:
        print(f"SARIF: emitted file failed validation: {exc}")
        ok = False
    finally:
        os.unlink(sarif_path)

    # Baseline gate: the CLI over the fixture tree exits 1 bare, and 0
    # once every golden finding is recorded in a baseline file.
    fd, bl_path = tempfile.mkstemp(suffix=".json")
    os.close(fd)
    try:
        with open(bl_path, "w", encoding="utf-8") as f:
            json.dump({"schema": cli.BASELINE_SCHEMA,
                       "findings": [{"path": p, "line": li, "rule": r}
                                    for p, li, r in sorted(expected)]}, f)
        sink = io.StringIO()
        with contextlib.redirect_stderr(sink), \
                contextlib.redirect_stdout(sink):
            bare = cli.main(["--root", fixtures])
            gated = cli.main(["--root", fixtures, "--baseline", bl_path])
        if bare != 1:
            print(f"BASELINE: bare CLI run over fixtures exited {bare}, "
                  "expected 1")
            ok = False
        if gated != 0:
            print(f"BASELINE: baselined CLI run exited {gated}, expected 0")
            ok = False
    finally:
        os.unlink(bl_path)

    if ok:
        print(f"analyze-selftest: OK ({len(expected)} seeded findings, "
              f"{len(declared)} rules exercised, sarif+baseline verified)")
        return 0
    return 1


if __name__ == "__main__":
    sys.exit(main())
