"""trkx-analyze: multi-pass static analysis for the trkx source tree.

Passes (each a module with ``RULES`` and ``run(tree) -> [Finding]``):

    omp_sharing     OpenMP data-sharing clause completeness
    layering        #include DAG layer order + cycle detection
    numeric_safety  unguarded division, unclamped exp/log, narrowing casts
    conventions     the original project lint rules (RNG, IO, new, mutex)

Run ``python3 -m analyze`` from scripts/ or use scripts/trkx-analyze.
"""
