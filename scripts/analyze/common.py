"""Shared infrastructure for the trkx-analyze passes.

A *pass* is a module exposing

    RULES: dict[str, str]            rule-name -> one-line description
    run(tree: SourceTree) -> list[Finding]

Findings print as ``file:line: [rule] message`` — the same shape the
project lint has always used — and are suppressed site-by-site with the
PR-3 convention: a ``NOLINT(<rule>): reason`` comment on the offending
line or the line directly above it. A bare ``NOLINT`` (no rule) is a
blanket suppression for the line.
"""

import os
import re
from dataclasses import dataclass

IDENT = re.compile(r"[A-Za-z_]\w*(?:::~?[A-Za-z_]\w*)*")

# C++ keywords plus tokens the passes must never mistake for variables.
KEYWORDS = frozenset("""
    alignas alignof and and_eq asm auto bitand bitor bool break case catch
    char char8_t char16_t char32_t class co_await co_return co_yield compl
    concept const consteval constexpr constinit const_cast continue decltype
    default delete do double dynamic_cast else enum explicit export extern
    false float for friend goto if inline int long mutable namespace new
    noexcept not not_eq nullptr operator or or_eq private protected public
    register reinterpret_cast requires return short signed sizeof static
    static_assert static_cast struct switch template this thread_local throw
    true try typedef typeid typename union unsigned using virtual void
    volatile wchar_t while xor xor_eq
    size_t uint8_t uint16_t uint32_t uint64_t int8_t int16_t int32_t int64_t
    ptrdiff_t uintptr_t intptr_t
""".split())


@dataclass(frozen=True)
class Finding:
    path: str       # repo-relative, '/'-separated
    line: int       # 1-based
    rule: str
    message: str

    def __str__(self):
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


class SourceFile:
    """One source file with raw lines and comment/string-stripped lines.

    ``code[i]`` is line i with block comments, line comments, and
    string/char literal *contents* blanked, so regex rules never fire
    inside text. ``raw[i]`` keeps the original line (NOLINT lives in
    comments, so suppression checks read raw).
    """

    def __init__(self, rel, text):
        self.rel = rel.replace(os.sep, "/")
        self.raw = text.splitlines()
        self.code = _strip_comments_and_strings(self.raw)

    def has_nolint(self, idx, rule):
        """NOLINT(<rule>) — or bare NOLINT — on line idx or the line above."""
        for line in (self.raw[idx], self.raw[idx - 1] if idx > 0 else ""):
            if "NOLINT" in line and rule in line:
                return True
            if re.search(r"NOLINT(?!\()", line):
                return True
        return False


def _strip_comments_and_strings(lines):
    out = []
    in_block = False
    for raw in lines:
        line = raw
        if in_block:
            if "*/" in line:
                pre = " " * (line.index("*/") + 2)
                line = pre + line.split("*/", 1)[1]
                in_block = False
            else:
                out.append("")
                continue
        # Blank string/char literal contents first so // inside a string
        # is not taken for a comment.
        line = re.sub(r'"(?:[^"\\]|\\.)*"', '""', line)
        line = re.sub(r"'(?:[^'\\]|\\.)*'", "''", line)
        if "/*" in line:
            head, tail = line.split("/*", 1)
            if "*/" in tail:
                line = head + " " * (len(tail.split("*/", 1)[0]) + 4) + \
                    tail.split("*/", 1)[1]
            else:
                line = head
                in_block = True
        line = line.split("//", 1)[0]
        out.append(line)
    return out


class SourceTree:
    """Lazy loader for the repo's C++ sources under the given subdirs."""

    def __init__(self, root, subdirs=("src",), exts=(".hpp", ".cpp")):
        self.root = root
        self.subdirs = tuple(subdirs)
        self.exts = frozenset(exts)
        self._cache = {}

    def rel_paths(self):
        for sub in self.subdirs:
            base = os.path.join(self.root, sub)
            for dirpath, _, files in os.walk(base):
                for name in sorted(files):
                    if os.path.splitext(name)[1] in self.exts:
                        yield os.path.relpath(
                            os.path.join(dirpath, name), self.root
                        ).replace(os.sep, "/")

    def file(self, rel):
        if rel not in self._cache:
            with open(os.path.join(self.root, rel), encoding="utf-8") as f:
                self._cache[rel] = SourceFile(rel, f.read())
        return self._cache[rel]

    def files(self):
        for rel in self.rel_paths():
            yield self.file(rel)


def identifiers(text):
    """All identifier tokens in text, qualified names kept whole
    (``std::max`` is one token)."""
    return IDENT.findall(text)


def root_identifiers(expr):
    """Plain variable-looking identifiers in an expression: drops
    keywords, namespace-qualified names, ALL_CAPS macros, and kCamel
    constants."""
    out = []
    for tok in identifiers(expr):
        if "::" in tok or tok in KEYWORDS:
            continue
        if tok.isupper() or re.fullmatch(r"k[A-Z]\w*", tok):
            continue
        out.append(tok)
    return out
