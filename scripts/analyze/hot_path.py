"""hot-path pass: the inference stages must not allocate or block.

Phase 2 of the cross-TU analyzer (see facts.py). The five inference
stage entry points (embed -> filter -> gnn predict -> build_tracks ->
fit_track) carry a ``TRKX_HOT`` annotation (util/annotations.hpp).
Everything in their transitive call closure is *hot*: a p50 latency
budget lives or dies on these frames, and the planner/pool machinery
(PR 7) exists precisely so steady-state inference touches no
allocator. This pass walks the closure and reports:

    trkx-hot-alloc   a heap allocation (new / malloc family /
                     make_unique / make_shared) reachable from a hot
                     entry point outside the TensorPool/MemoryPlanner
                     front doors — route it through the pool, or hoist
                     it to setup.
    trkx-hot-block   a strong blocking operation (join / sleep /
                     file IO / collective / condvar wait) reachable
                     from a hot entry point. ``parallel_for`` /
                     ``wait_all`` are exempt: blocking on the worker
                     pool is synchronous compute, not a stall.

std::vector growth is exempt by the same policy that excludes
bad_alloc from the throw model; the sanctioned allocation front doors
(src/tensor/pool.*, src/tensor/plan.*) are exempt as the place where
allocation is *supposed* to happen. Hot propagation follows the PR-8
resolution discipline: plain calls propagate to every candidate,
explicit-receiver method calls only when resolution is unambiguous.
One-time setup inside a hot frame (first-call warmup, cache fill) is a
NOLINT with a reason, not a model change.
"""

from . import facts
from .common import Finding

RULES = {
    "trkx-hot-alloc": "heap allocation on a TRKX_HOT inference path "
                      "outside the pool/planner front doors",
    "trkx-hot-block": "blocking operation (join/sleep/IO/collective/"
                      "pool-wait) on a TRKX_HOT inference path",
    "trkx-hot-root": "a latency-critical module declares no TRKX_HOT "
                     "entry point, so its request path escapes this pass",
}

# Allocation front doors: the pool and planner own allocation; flagging
# their internals would flag the fix.
FRONT_DOORS = ("src/tensor/pool.", "src/tensor/plan.")

# Modules whose request/stage entry points must be TRKX_HOT-annotated.
# Without a root the closure walk never sees the module, and the
# alloc/block discipline silently stops applying to it — the serving
# request path (ServeServer::run_request) joined the pipeline stages
# under this contract in PR 10.
REQUIRED_HOT_MODULES = ("src/pipeline/", "src/serve/")


def _exempt(rel):
    r = rel.replace("\\", "/")
    return any(r.startswith(d) for d in FRONT_DOORS)


def run(tree):
    proj = facts.Project.for_tree(tree)
    findings = []
    for module in REQUIRED_HOT_MODULES:
        members = sorted(rel for rel in proj.files
                         if rel.replace("\\", "/").startswith(module))
        if not members:
            continue  # module absent from this tree (e.g. fixture subsets)
        if not any(proj.files[rel].hot_decls for rel in members):
            findings.append(Finding(
                members[0], 1, "trkx-hot-root",
                f"module {module} declares no TRKX_HOT entry point; "
                "annotate its request-path entry so the hot-path "
                "alloc/block discipline covers it"))
    hot = proj.hot_paths()
    for ff, path in sorted(hot.values(),
                           key=lambda fp: (fp[0].file, fp[0].start)):
        if _exempt(ff.file):
            continue
        sf = tree.file(ff.file)
        for kind, li in ff.allocs:
            if sf.has_nolint(li, "trkx-hot-alloc"):
                continue
            findings.append(Finding(
                ff.file, li + 1, "trkx-hot-alloc",
                f"{kind} on hot path {path}; route through TensorPool/"
                "MemoryPlanner or hoist to setup"))
        for kind, strength, li, _ in ff.blocking:
            if strength != "strong" or kind == "pool-wait":
                continue
            if sf.has_nolint(li, "trkx-hot-block"):
                continue
            findings.append(Finding(
                ff.file, li + 1, "trkx-hot-block",
                f"{kind} on hot path {path}; inference frames must "
                "not stall"))
    return findings
