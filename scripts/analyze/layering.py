"""layering pass: enforce the src/ module layer order over the #include
DAG.

The architecture stacks (DESIGN.md §6f):

    layer 0   util
    layer 1   tensor
    layer 2   sparse
    layer 3   graph, autograd
    layer 4   detector, nn
    layer 5   io, gnn, sampling
    layer 6   dist
    layer 7   pipeline
    layer 8   serve

plus ``obs``, the observability spine: importable from any layer, itself
allowed to include only ``util``. An include from module A to module B is
legal iff B sits on a strictly lower layer than A (or B is obs/A's own
module). Same-layer cross-module includes (graph <-> autograd,
gnn <-> sampling, ...) are deliberately illegal: siblings stay
independent.

Rules:

    layer-order     include edge points sideways or upward in the stack
    layer-cycle     the file-level include graph has a cycle
    layer-unknown   a src/ module missing from the layer map (the map
                    must grow with the tree, consciously)
"""

import os
import re

from .common import Finding

RULES = {
    "layer-order": "include edge violates the module layer order",
    "layer-cycle": "include cycle between src/ files",
    "layer-unknown": "src/ module not present in the layer map",
}

LAYERS = {
    "util": 0,
    "tensor": 1,
    "sparse": 2,
    "graph": 3,
    "autograd": 3,
    "detector": 4,
    "nn": 4,
    "io": 5,
    "gnn": 5,
    "sampling": 5,
    "dist": 6,
    "pipeline": 7,
    "serve": 8,
}
# The observability spine: anyone may include it; it may include only util.
OBS = "obs"
OBS_MAY_INCLUDE = {"util"}

INCLUDE = re.compile(r'^\s*#\s*include\s+"([^"]+)"')


def module_of(rel):
    """src/tensor/ops.hpp -> tensor; include "tensor/ops.hpp" -> tensor."""
    parts = rel.split("/")
    if parts[0] == "src":
        parts = parts[1:]
    return parts[0] if len(parts) > 1 else None


def _include_edges(tree):
    """[(from_rel, line_idx, include_target_rel)] with targets normalised
    to src/-relative paths; silently skips system/header includes that do
    not resolve inside src/."""
    known = set(tree.rel_paths())
    edges = []
    for sf in tree.files():
        if not sf.rel.startswith("src/"):
            continue
        for i, raw in enumerate(sf.raw):
            # Include targets are string literals, which the stripped view
            # blanks — read raw, but require the stripped line to still be
            # a preprocessor line so commented-out includes don't count.
            m = INCLUDE.match(raw)
            if not m or not sf.code[i].lstrip().startswith("#"):
                continue
            target = "src/" + m.group(1)
            if target in known:
                edges.append((sf.rel, i, target))
    return edges


def _cycles(adj):
    """Detect cycles with iterative DFS; returns one representative path
    per cycle found (deduplicated by vertex set)."""
    WHITE, GREY, BLACK = 0, 1, 2
    color = {v: WHITE for v in adj}
    found = []
    seen_sets = set()
    for start in sorted(adj):
        if color[start] != WHITE:
            continue
        stack = [(start, iter(sorted(adj[start])))]
        path = [start]
        color[start] = GREY
        while stack:
            node, it = stack[-1]
            advanced = False
            for nxt in it:
                if nxt not in color:
                    continue
                if color[nxt] == GREY:
                    cyc = tuple(path[path.index(nxt):] + [nxt])
                    key = frozenset(cyc)
                    if key not in seen_sets:
                        seen_sets.add(key)
                        found.append(cyc)
                elif color[nxt] == WHITE:
                    color[nxt] = GREY
                    path.append(nxt)
                    stack.append((nxt, iter(sorted(adj[nxt]))))
                    advanced = True
                    break
            if not advanced:
                color[node] = BLACK
                path.pop()
                stack.pop()
    return found


def run(tree):
    findings = []
    edges = _include_edges(tree)

    # Unknown modules: every directory under src/ must be placed.
    seen_modules = {module_of(rel) for rel in tree.rel_paths()
                    if rel.startswith("src/")}
    seen_modules.discard(None)
    for mod in sorted(seen_modules):
        if mod != OBS and mod not in LAYERS:
            findings.append(Finding(
                f"src/{mod}", 1, "layer-unknown",
                f"module '{mod}' is not in the layer map — add it to "
                "scripts/analyze/layering.py (and DESIGN.md §6f)"))

    for src_rel, line_idx, dst_rel in edges:
        a, b = module_of(src_rel), module_of(dst_rel)
        if a == b or a is None or b is None:
            continue
        sf = tree.file(src_rel)
        if b == OBS:
            continue  # obs is importable from everywhere
        if a == OBS:
            if b not in OBS_MAY_INCLUDE:
                if not sf.has_nolint(line_idx, "layer-order"):
                    findings.append(Finding(
                        src_rel, line_idx + 1, "layer-order",
                        f"obs may include only util, not '{b}'"))
            continue
        if a not in LAYERS or b not in LAYERS:
            continue  # already reported as layer-unknown
        if LAYERS[b] >= LAYERS[a]:
            if not sf.has_nolint(line_idx, "layer-order"):
                findings.append(Finding(
                    src_rel, line_idx + 1, "layer-order",
                    f"'{a}' (layer {LAYERS[a]}) must not include '{b}' "
                    f"(layer {LAYERS[b]}): the order is util -> tensor -> "
                    "sparse -> graph/autograd -> detector/nn -> "
                    "io/gnn/sampling -> dist -> pipeline -> serve"))

    adj = {}
    for src_rel, _, dst_rel in edges:
        adj.setdefault(src_rel, set()).add(dst_rel)
        adj.setdefault(dst_rel, set())
    for cyc in _cycles(adj):
        findings.append(Finding(
            cyc[0], 1, "layer-cycle",
            "include cycle: " + " -> ".join(cyc)))
    return findings
