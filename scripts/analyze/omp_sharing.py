"""omp-sharing pass: every OpenMP ``parallel`` construct in src/ must say
exactly what it shares.

Rules:

    omp-default-none    every ``#pragma omp parallel`` / ``parallel for``
                        carries ``default(none)`` with explicit
                        shared/firstprivate/private/reduction clauses, so
                        a new variable capture is a compile break plus a
                        review item, never a silent race.
    omp-missing-clause  an identifier referenced in the region body is
                        covered by no sharing clause (the compiler catches
                        most of these under default(none); the pass also
                        reports them source-side with context).
    omp-unused-clause   a clause lists a variable the region never
                        touches — stale clauses hide real captures.
    omp-shared-write    a shared variable is written inside the region
                        without a reduction, an ``omp atomic``/``critical``
                        wrapper, or a per-iteration index proving the
                        writes target disjoint elements.

Heuristics (documented limits, tuned to this repo's style):
  * CamelCase identifiers are types, ``kCamel``/ALL_CAPS are constants,
    ``trailing_underscore_`` names are members — none can appear in
    sharing clauses, so they are skipped.
  * Writes hidden behind function calls (``f(x[i])`` mutating through a
    reference parameter) are invisible; the grouped-RNG sampler relies on
    this and documents why it is safe.
"""

import re

from . import common
from .common import Finding, KEYWORDS

RULES = {
    "omp-default-none": "omp parallel without default(none) + explicit "
                        "sharing clauses",
    "omp-missing-clause": "variable referenced in parallel region but "
                          "covered by no sharing clause",
    "omp-unused-clause": "sharing clause names a variable the region "
                         "never references",
    "omp-shared-write": "shared variable written without reduction/"
                        "atomic/critical/per-iteration-index "
                        "justification",
}

PRAGMA = re.compile(r"^\s*#\s*pragma\s+omp\b(.*)$")
CLAUSE = re.compile(
    r"\b(default|shared|firstprivate|private|lastprivate|reduction|linear|"
    r"schedule|num_threads|collapse|if|proc_bind|ordered|nowait)\b"
    r"\s*(?:\(((?:[^()]|\([^()]*\))*)\))?"
)
TOKEN = re.compile(
    r"[A-Za-z_]\w*(?:::~?[A-Za-z_]\w*)*"
    r"|->|\+\+|--|\+=|-=|\*=|/=|%=|&=|\|=|\^=|<<=|>>=|==|!=|<=|>=|&&|\|\|"
    r"|<<|>>|\d[\w.+-]*|."
)
TYPE_KEYWORDS = frozenset(
    "auto float double int bool char unsigned signed long short void".split()
)
MUTATORS = frozenset(
    "push_back emplace_back pop_back insert emplace erase clear resize "
    "reserve assign swap push pop shrink_to_fit".split()
)
DECL_BOUNDARY = frozenset([";", "{", "}", "(", ",", "const", "constexpr",
                           "static", None])


def _join_pragma(sf, idx):
    """Return (full pragma text, last line index) honouring backslash
    continuations."""
    text = ""
    i = idx
    while i < len(sf.code):
        line = sf.code[i].rstrip()
        if line.endswith("\\"):
            text += line[:-1] + " "
            i += 1
        else:
            text += line
            break
    return text, i


def parse_clauses(pragma_text):
    """-> (directive words, {clause: [vars]}) for one omp pragma."""
    body = PRAGMA.match(pragma_text).group(1)
    first = CLAUSE.search(body)
    directive = body[: first.start()] if first else body
    clauses = {}
    for m in CLAUSE.finditer(body):
        name, args = m.group(1), m.group(2) or ""
        if name == "reduction" and ":" in args:
            args = args.split(":", 1)[1]
        clauses.setdefault(name, []).extend(
            a.strip() for a in args.split(",") if a.strip()
        )
    return directive.split(), clauses


def _region_lines(sf, start):
    """Lines (idx, code) of the structured block following a pragma:
    either the balanced {...} block or the single statement (a for loop's
    body counts as part of its statement)."""
    paren = 0
    brace = 0
    seen_brace = False
    lines = []
    for i in range(start, len(sf.code)):
        line = sf.code[i]
        lines.append((i, line))
        for ch in line:
            if ch == "(":
                paren += 1
            elif ch == ")":
                paren -= 1
            elif ch == "{":
                brace += 1
                seen_brace = True
            elif ch == "}":
                brace -= 1
                if seen_brace and brace == 0:
                    return lines
            elif ch == ";" and paren == 0 and not seen_brace:
                return lines
    return lines


def _tokens(code_lines):
    toks = []
    for idx, line in code_lines:
        if line.lstrip().startswith("#"):
            continue  # nested pragmas are not C++ code
        for m in TOKEN.finditer(line):
            t = m.group(0)
            if not t.isspace():
                toks.append((t, idx))
    return toks


def _declared(tokens):
    """Identifiers declared inside the region, plus the tokens that acted
    as type names in those declarations."""
    declared = set()
    types = set()
    n = len(tokens)

    def tok(i):
        return tokens[i][0] if 0 <= i < n else None

    i = 0
    while i < n:
        t = tok(i)
        prev = tok(i - 1)
        is_type = (t in TYPE_KEYWORDS) or (
            re.fullmatch(r"[A-Za-z_]\w*(?:::[A-Za-z_]\w*)*", t or "")
            and t not in KEYWORDS
            and prev in DECL_BOUNDARY
        )
        if is_type:
            j = i + 1
            # template argument list on the type
            if tok(j) == "<":
                depth = 1
                j += 1
                while j < n and depth:
                    depth += {"<": 1, ">": -1}.get(tok(j), 0)
                    j += 1
            # auto [a, b] structured bindings
            if t == "auto" and tok(j) == "[":
                j += 1
                while j < n and tok(j) != "]":
                    if re.fullmatch(r"[A-Za-z_]\w*", tok(j)):
                        declared.add(tok(j))
                    j += 1
                i = j + 1
                continue
            while tok(j) in ("&", "*", "const"):
                j += 1
            name = tok(j)
            if (
                name
                and re.fullmatch(r"[A-Za-z_]\w*", name)
                and name not in KEYWORDS
                and tok(j + 1) in ("=", ";", ",", "(", "{", ":", ")")
            ):
                declared.add(name)
                if t not in TYPE_KEYWORDS:
                    types.add(t)
                # comma-separated declarator list: `double a = 1, b = 2;`
                k = j + 1
                depth = 0
                while k < n:
                    c = tok(k)
                    if c in ("(", "[", "{"):
                        depth += 1
                    elif c in (")", "]", "}"):
                        if depth == 0:
                            break
                        depth -= 1
                    elif c == ";" and depth == 0:
                        break
                    elif c == "," and depth == 0 and \
                            re.fullmatch(r"[A-Za-z_]\w*", tok(k + 1) or ""):
                        declared.add(tok(k + 1))
                        k += 1
                    k += 1
                i = j + 1
                continue
        i += 1
    return declared, types


def _usages(tokens, declared, types):
    """Identifier -> first line it is used as a plain variable."""
    used = {}
    n = len(tokens)
    for i, (t, line) in enumerate(tokens):
        if not re.fullmatch(r"[A-Za-z_]\w*", t):
            continue
        if t in KEYWORDS or t in declared or t in types:
            continue
        if t.isupper() or re.fullmatch(r"k[A-Z]\w*", t):
            continue  # macro / constexpr constant
        if re.fullmatch(r"[A-Z]\w*", t):
            continue  # CamelCase: a type in this codebase
        if t.endswith("_"):
            continue  # member of the enclosing class (implicit this)
        prev = tokens[i - 1][0] if i > 0 else None
        nxt = tokens[i + 1][0] if i + 1 < n else None
        if prev in (".", "->", "::"):
            continue  # member access — the base object is the capture
        if nxt == "(":
            continue  # function call (callables in clauses still count
            # as "used" via the textual unused-clause check)
        used.setdefault(t, line)
    return used


def _critical_spans(region):
    """Line-index spans of `#pragma omp critical` blocks inside region."""
    spans = []
    for k, (idx, line) in enumerate(region):
        if re.search(r"#\s*pragma\s+omp\s.*\bcritical\b", line):
            depth = 0
            started = False
            for idx2, line2 in region[k + 1:]:
                depth += line2.count("{") - line2.count("}")
                if "{" in line2:
                    started = True
                if started and depth <= 0:
                    spans.append((idx, idx2))
                    break
                if not started and ";" in line2:
                    spans.append((idx, idx2))
                    break
    return spans


WRITE = None  # built per-variable


def _write_findings(sf, region, var, declared, loop_line):
    """Write sites of shared `var` lacking a disjointness justification.
    Returns list of (line_idx, kind)."""
    out = []
    crit = _critical_spans(region)
    direct = re.compile(
        rf"(?:\+\+|--)\s*{var}\b|\b{var}\s*(?:\+\+|--|(?:[-+*/%|&^]|<<|>>)?="
        rf"(?!=))"
    )
    indexed = re.compile(rf"\b{var}\s*(\[[^\]]*\]|\(((?:[^()]|\([^()]*\))*)\))"
                        rf"\s*(?:(?:[-+*/%|&^]|<<|>>)?=(?!=)|\.\s*(\w+)\s*\()")
    bare_mut = re.compile(rf"\b{var}\s*\.\s*(\w+)\s*\(")
    for idx, line in region:
        if line.lstrip().startswith("#"):
            continue
        justified_by_sync = (
            idx > 0
            and re.search(r"#\s*pragma\s+omp\s.*\batomic\b", sf.code[idx - 1])
        ) or any(lo <= idx <= hi for lo, hi in crit)
        m = indexed.search(line)
        if m:
            index_expr = m.group(1)
            method = m.group(3)
            if method is not None and method not in MUTATORS:
                pass  # e.g. x(i, j).size() — not a write
            else:
                idx_ids = set(common.root_identifiers(index_expr))
                if idx_ids & declared:
                    continue  # distinct per-iteration element
                if not justified_by_sync:
                    out.append((idx, "element write indexed by no "
                                     "region-local variable"))
            continue
        m = bare_mut.search(line)
        if m and m.group(1) in MUTATORS:
            if not justified_by_sync:
                out.append((idx, f"mutating call .{m.group(1)}()"))
            continue
        if direct.search(line) and not justified_by_sync:
            out.append((idx, "direct assignment"))
    del loop_line
    return out


def run(tree):
    findings = []
    for sf in tree.files():
        for i, code in enumerate(sf.code):
            m = PRAGMA.match(code)
            if not m:
                continue
            text, last = _join_pragma(sf, i)
            directive, clauses = parse_clauses(text)
            if not directive or directive[0] != "parallel":
                continue  # `omp for`/`critical`/... inherit from parallel

            def emit(rule, msg, line=i):
                if not sf.has_nolint(line, rule):
                    findings.append(Finding(sf.rel, line + 1, rule, msg))

            if clauses.get("default") != ["none"]:
                emit("omp-default-none",
                     "parallel region must carry default(none) with "
                     "explicit shared/firstprivate/reduction clauses")
                continue  # clause cross-checks assume default(none) intent

            region = _region_lines(sf, last + 1)
            toks = _tokens(region)
            declared, types = _declared(toks)
            covered = set()
            for c in ("shared", "firstprivate", "private", "lastprivate",
                      "reduction", "linear"):
                covered.update(clauses.get(c, []))

            used = _usages(toks, declared, types)
            for var, line in sorted(used.items(), key=lambda kv: kv[1]):
                if var not in covered:
                    emit("omp-missing-clause",
                         f"'{var}' is referenced in the parallel region "
                         "but appears in no sharing clause", line)
            body_text = "\n".join(line for _, line in region)
            for var in sorted(covered):
                if not re.search(rf"\b{re.escape(var)}\b", body_text):
                    emit("omp-unused-clause",
                         f"'{var}' is listed in a sharing clause but "
                         "never referenced in the region")

            writable = set(clauses.get("shared", []))
            exempt = set(clauses.get("reduction", [])) | set(
                clauses.get("firstprivate", [])) | set(
                clauses.get("private", [])) | set(
                clauses.get("lastprivate", []))
            for var in sorted(writable - exempt):
                for line, kind in _write_findings(sf, region, var, declared,
                                                 i):
                    emit("omp-shared-write",
                         f"shared '{var}' written in parallel region "
                         f"({kind}); use reduction/atomic/critical or "
                         "index by the loop variable", line)
    return findings
