"""lock-order pass: whole-program lock-acquisition discipline.

Phase 2 of the cross-TU analyzer (see facts.py). Builds the global
lock-acquisition graph — an edge A -> B wherever lock B is acquired
while A is held, either directly in one function or transitively
through a call — and reports:

    trkx-lock-order     an acquisition edge that participates in a
                        cycle of the global graph (two code paths
                        disagree about acquisition order — a deadlock
                        waiting for the right interleaving), including
                        self-edges (re-acquiring a non-recursive
                        trkx::Mutex already held on this path).
    trkx-lock-blocking  a blocking operation performed while a lock is
                        held: condvar waits on *other* locks, joins,
                        sleeps, file I/O and collectives (transitively,
                        through calls), plus log macros and stream
                        flushes (directly only). Blocking under a lock
                        turns every reader of that lock into a hostage
                        of the slow operation.

Exemption: ``cv.wait(lock)`` releases exactly the UniqueLock it is
passed, so a wait on the innermost held lock is the sanctioned condvar
idiom and is not flagged — but waiting while an *outer* different lock
is held still is.

Lock identity is heuristic (documented in facts.lock_id): class-
qualified members, global ``g_*`` mutexes, file-scoped everything else.
Distinct instances of one class share an identity — like Clang TSA,
instance aliasing is out of scope; NOLINT with a reason where ordering
is proven by construction (e.g. address-ordered double acquisition).
"""

from . import facts
from .common import Finding

RULES = {
    "trkx-lock-order": "lock acquisition order inverted between two "
                       "code paths (cycle in the project lock graph)",
    "trkx-lock-blocking": "blocking operation (wait/join/sleep/IO/"
                          "collective/log) while holding a lock",
}


def _edges(proj):
    """{(A, B): [(file, line, how)]} — B acquired while A held."""
    edges = {}

    def add(a, b, file, line, how):
        sites = edges.setdefault((a, b), [])
        if (file, line, how) not in sites:
            sites.append((file, line, how))

    for ff in proj.functions:
        for acq in ff.locks:
            held = facts.lock_id(acq.expr, ff)
            for other in ff.locks:
                if other is acq or not (
                        acq.line < other.line <= acq.scope_end):
                    continue
                add(held, facts.lock_id(other.expr, ff),
                    ff.file, other.line, "nested acquisition")
            for callee, li, is_method in ff.calls:
                if not (acq.line < li <= acq.scope_end):
                    continue
                for lid, path in proj.call_locks(
                        ff, callee, is_method).items():
                    add(held, lid, ff.file, li, f"via {path}")
    return edges


def _cycle_edges(edges):
    adj = {}
    for a, b in edges:
        adj.setdefault(a, set()).add(b)

    reach_memo = {}

    def reaches(src, dst):
        key = (src, dst)
        if key in reach_memo:
            return reach_memo[key]
        seen = set()
        stack = [src]
        found = False
        while stack:
            node = stack.pop()
            if node == dst:
                found = True
                break
            if node in seen:
                continue
            seen.add(node)
            stack.extend(adj.get(node, ()))
        reach_memo[key] = found
        return found

    return {(a, b) for a, b in edges if a == b or reaches(b, a)}


def run(tree):
    proj = facts.Project.for_tree(tree)
    findings = []

    edges = _edges(proj)
    for (a, b) in sorted(_cycle_edges(edges)):
        for file, line, how in edges[(a, b)]:
            sf = tree.file(file)
            if sf.has_nolint(line, "trkx-lock-order"):
                continue
            if a == b:
                msg = (f"'{a}' re-acquired while already held ({how}); "
                       "trkx::Mutex is non-recursive — this deadlocks")
            else:
                msg = (f"'{b}' acquired while '{a}' is held ({how}), but "
                       "another path acquires them in the opposite order")
            findings.append(Finding(file, line + 1, "trkx-lock-order", msg))

    for ff in proj.functions:
        for acq in ff.locks:
            held = facts.lock_id(acq.expr, ff)
            # Direct blocking sites under this lock.
            for kind, strength, li, lockvar in ff.blocking:
                if not (acq.line < li <= acq.scope_end):
                    continue
                if kind == "condvar-wait" and lockvar == acq.var:
                    continue  # the wait releases exactly this lock
                sf = tree.file(ff.file)
                if sf.has_nolint(li, "trkx-lock-blocking"):
                    continue
                findings.append(Finding(
                    ff.file, li + 1, "trkx-lock-blocking",
                    f"{kind} while holding '{held}' in {ff.qual}; "
                    "move it outside the lock scope"))
            # Calls under this lock that transitively block.
            for callee, li, is_method in ff.calls:
                if not (acq.line < li <= acq.scope_end):
                    continue
                sub = proj.call_blocks(ff, callee, is_method)
                if not sub:
                    continue
                sf = tree.file(ff.file)
                if not sf.has_nolint(li, "trkx-lock-blocking"):
                    findings.append(Finding(
                        ff.file, li + 1, "trkx-lock-blocking",
                        f"call blocks ({sub[0]} via {sub[1]}) while "
                        f"holding '{held}'"))
    return findings
