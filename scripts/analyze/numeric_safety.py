"""numeric-safety pass: the float hazards that corrupt minibatch numerics
silently — division by a possibly-zero degree, exp/log of an unclamped
argument, and size_t -> uint32 truncation past 4Gi vertices.

Rules:

    trkx-div-guard    division whose divisor is neither a constant nor
                      provably nonzero at the site: no epsilon floor
                      (``x + 1e-12``, ``std::max(d, eps)``), no same-line
                      zero-test ternary, and no TRKX_CHECK / if-guard on
                      the divisor within the preceding window.
    trkx-exp-log      std::exp / std::log whose argument carries no
                      clamp (fabs/min/max/clamp), no same-line sign
                      test, and no guard on the argument nearby —
                      exp overflows float past ~88, log(0) is -inf.
    trkx-narrow-cast  static_cast<std::uint32_t>(computed expression)
                      with no TRKX_CHECK mentioning the operand nearby.
                      Casts of plain identifiers are accepted: graph
                      vertex ids are uint32 by construction; it is the
                      *arithmetic* results that outgrow the type.

Justified sites use ``NOLINT(<rule>): reason`` (PR-3 convention). The
guard window is ``GUARD_WINDOW`` lines — a deliberate approximation; a
guard further away than that wants the NOLINT + reason anyway, so a
reviewer can see the justification next to the hazard.
"""

import re

from .common import KEYWORDS, Finding, identifiers, root_identifiers

RULES = {
    "trkx-div-guard": "division by a value not provably nonzero "
                      "(guard it, floor it with an epsilon, or NOLINT "
                      "with a reason)",
    "trkx-exp-log": "exp/log of an unclamped argument",
    "trkx-narrow-cast": "size_t->uint32 narrowing of a computed value "
                        "outside a TRKX_CHECKed bound",
}

GUARD_WINDOW = 12

NUMBER = re.compile(r"^\s*[+-]?(\d+\.?\d*|\.\d+)([eE][+-]?\d+)?[fFuUlL]*\s*$")
CLAMP = re.compile(r"\b(fabs|abs|labs|max|min|clamp)\s*\(|\bsizeof\b")
EPSILON_ID = re.compile(r"\b\w*(eps|epsilon)\w*\b", re.IGNORECASE)
COMPARISON = re.compile(r"==|!=|<=|>=|(?<![<>])[<>](?![<>=])|\.empty\s*\(")
CAST32 = re.compile(r"static_cast<\s*std::uint32_t\s*>\s*\(")
EXPLOG = re.compile(r"(?:\bstd::|(?<![\w:.]))(exp|log)\s*\(")


def _balanced(text, start):
    """text[start] == '(' -> contents up to the matching ')', or None."""
    depth = 0
    for i in range(start, len(text)):
        if text[i] == "(":
            depth += 1
        elif text[i] == ")":
            depth -= 1
            if depth == 0:
                return text[start + 1:i]
    return None


def _operand_after(text, pos):
    """The first primary expression starting at text[pos:] — a literal, a
    parenthesised expression, or an id/call/subscript/member chain."""
    i = pos
    n = len(text)
    while i < n and text[i].isspace():
        i += 1
    if i >= n:
        return ""
    start = i
    m = re.match(r"[+-]?(\d+\.?\d*|\.\d+)([eE][+-]?\d+)?[fFuUlL]*", text[i:])
    if m:
        return text[start:start + m.end()]
    if text[i] == "(":
        inner = _balanced(text, i)
        return "(" + (inner or "") + ")"
    while i < n:
        m = re.match(r"(?:static_cast|dynamic_cast|const_cast)\s*<[^<>]*"
                     r"(?:<[^<>]*>)?[^<>]*>", text[i:])
        if m:
            i += m.end()
            continue
        m = re.match(r"[A-Za-z_]\w*(?:::[A-Za-z_]\w*)*", text[i:])
        if m:
            i += m.end()
        elif text[i] == "(":
            inner = _balanced(text, i)
            if inner is None:
                break
            i += len(inner) + 2
        elif text[i] == "[":
            depth = 0
            j = i
            while j < n:
                depth += {"[": 1, "]": -1}.get(text[j], 0)
                j += 1
                if depth == 0:
                    break
            i = j
        elif text[i] == "." and i + 1 < n and (text[i + 1].isalpha()
                                               or text[i + 1] == "_"):
            i += 1
        elif text[i:i + 2] == "->":
            i += 2
        else:
            break
    return text[start:i]


def _has_nonzero_literal(expr):
    return re.search(r"\b0*[1-9]\d*\.?\d*|\b0?\.\d*[1-9]|\d[eE][+-]?\d", expr)


def _divisor_is_safe(expr):
    if NUMBER.match(expr):
        return not re.fullmatch(r"\s*[+-]?0*\.?0*[fFuUlL]*\s*", expr)
    if CLAMP.search(expr):
        return True
    if EPSILON_ID.search(expr):
        return True
    # (x + <positive literal>): epsilon-floor / off-by-one headroom idiom.
    if "+" in expr and _has_nonzero_literal(expr):
        return True
    # Every identifier is an ALL_CAPS macro or kCamel constant (M_PI,
    # kTile, ...): a named compile-time constant, not runtime data.
    if not root_identifiers(expr):
        named = [t for t in identifiers(expr)
                 if t not in ("static_cast", "std") and t not in KEYWORDS]
        if named and all(t.isupper() or re.fullmatch(r"k[A-Z]\w*", t)
                         for t in named):
            return True
    return False


def _guarded_nearby(sf, idx, ids, *, window=GUARD_WINDOW):
    """A TRKX_CHECK / comparison-if / max-floor mentioning one of `ids`
    within `window` lines above (function-boundary approximation)."""
    if not ids:
        return False
    pat = re.compile(r"\b(" + "|".join(re.escape(i) for i in ids) + r")\b")
    for j in range(idx, max(-1, idx - window - 1), -1):
        line = sf.code[j]
        if not pat.search(line):
            continue
        if "TRKX_CHECK" in line or "assert" in line:
            return True
        if re.search(r"\b(if|while)\s*\(", line) and COMPARISON.search(line):
            return True
        if re.search(r"=\s*std::(max|min|clamp)\s*\(", line):
            return True
        if re.search(r"\?\s*", line) and COMPARISON.search(line) \
                and j != idx:
            return True
    return False


def _same_line_ternary_guard(code, pos, ids):
    """`cond ? a : b` where cond (before pos) compares one of ids."""
    head = code[:pos]
    q = head.rfind("?")
    if q < 0:
        return False
    cond = head[:q]
    if not COMPARISON.search(cond):
        return False
    pat = re.compile(r"\b(" + "|".join(re.escape(i) for i in ids) + r")\b")
    return bool(pat.search(cond)) if ids else False


def _check_divisions(sf, findings):
    for idx, code in enumerate(sf.code):
        if code.lstrip().startswith("#"):
            continue
        for m in re.finditer(r"/=?", code):
            if m.group(0) == "/=":
                divisor = _operand_after(code, m.end())
            else:
                prev = code[:m.start()].rstrip()
                if prev.endswith(("*", "/")) or not prev:
                    continue  # part of a comment remnant or operator
                divisor = _operand_after(code, m.end())
            if not divisor.strip():
                continue
            if _divisor_is_safe(divisor):
                continue
            ids = root_identifiers(divisor)
            if not ids:
                # No plain identifiers: member/constant divisor — treat
                # qualified/member names as the id set for guard lookup.
                ids = re.findall(r"[A-Za-z_]\w*", divisor)
                ids = [i for i in ids if i not in ("static_cast", "std",
                                                   "float", "double", "int",
                                                   "size_t")]
            if _same_line_ternary_guard(code, m.start(), ids):
                continue
            if _guarded_nearby(sf, idx, ids):
                continue
            if sf.has_nolint(idx, "trkx-div-guard"):
                continue
            findings.append(Finding(
                sf.rel, idx + 1, "trkx-div-guard",
                f"divisor '{divisor.strip()}' is not provably nonzero "
                "here — guard it, floor it with an epsilon, or NOLINT "
                "with the invariant"))


def _check_explog(sf, findings):
    for idx, code in enumerate(sf.code):
        for m in EXPLOG.finditer(code):
            paren = code.find("(", m.end() - 1)
            arg = _balanced(code, paren)
            if arg is None:
                arg = code[paren + 1:]
            if NUMBER.match(arg or ""):
                continue
            if CLAMP.search(arg or ""):
                continue
            ids = root_identifiers(arg or "")
            if _same_line_ternary_guard(code, m.start(), ids):
                continue
            if _guarded_nearby(sf, idx, ids):
                continue
            if sf.has_nolint(idx, "trkx-exp-log"):
                continue
            fn = m.group(1)
            findings.append(Finding(
                sf.rel, idx + 1, "trkx-exp-log",
                f"{fn}({arg.strip() if arg else '...'}) has no clamp on "
                "its argument — float exp overflows past ~88, log(0) is "
                "-inf; clamp or guard the input"))


def _check_narrowing(sf, findings):
    for idx, code in enumerate(sf.code):
        for m in CAST32.finditer(code):
            paren = code.find("(", m.end() - 1)
            arg = _balanced(sf_text_from(sf, idx, paren), 0)
            if arg is None:
                continue
            computed = bool(re.search(r"[+\-*/%]|\w\s*\(", arg))
            if not computed:
                continue
            ids = root_identifiers(arg)
            if _guarded_nearby(sf, idx, ids, window=8):
                continue
            if sf.has_nolint(idx, "trkx-narrow-cast"):
                continue
            findings.append(Finding(
                sf.rel, idx + 1, "trkx-narrow-cast",
                f"static_cast<std::uint32_t>({arg.strip()}) narrows a "
                "computed value — TRKX_CHECK the bound or NOLINT with "
                "the invariant"))


def sf_text_from(sf, idx, col):
    """Line idx from column col, plus following lines joined — lets a
    cast's argument span a line break."""
    parts = [sf.code[idx][col:]]
    for j in range(idx + 1, min(idx + 4, len(sf.code))):
        parts.append(sf.code[j])
    return "\n".join(parts)


def run(tree):
    findings = []
    for sf in tree.files():
        _check_divisions(sf, findings)
        _check_explog(sf, findings)
        _check_narrowing(sf, findings)
    return findings
