"""conventions pass: the original project-lint invariants, folded into
the analyzer as its fourth pass.  ``scripts/lint.py`` (and the
``project_lint`` ctest) now delegate here, so every existing NOLINT
suppression and call site keeps working unchanged.

Rules:

    trkx-raw-rng      no std::mt19937 / std::default_random_engine /
                      rand() outside src/util/rng.* — all randomness flows
                      through trkx::Rng so runs stay reproducible and the
                      prefetch pipeline stays bit-identical to serial.
    trkx-io           no std::cout / std::cerr / printf-family outside
                      src/util/log.* — diagnostics go through TRKX_LOG.
    trkx-naked-new    no naked `new` — ownership goes through containers
                      or std::make_unique/make_shared.
    trkx-omp-critical every `#pragma omp critical` needs an adjacent
                      justifying comment.
    trkx-std-mutex    no raw std::mutex/lock types in src/ outside
                      util/annotations.hpp — use annotated trkx::Mutex.
    trkx-using-std    no `using namespace std;`.
    trkx-atomic-write no direct std::ofstream/fopen of a checkpoint
                      (*.ckpt / manifest) path outside the atomic-rename
                      helper in src/pipeline/checkpoint.cpp — a crash
                      mid-write must never leave a torn checkpoint that
                      resume would then trust.
    trkx-bench-json   every bench/bench_*.cpp must register with the
                      unified JSON writer (bench_json.hpp /
                      bench_gb_json.hpp) so new benchmarks join the perf
                      trajectory instead of printing a table no tooling
                      can gate on.  bench/ files are exempt from the
                      other conventions rules (benches legitimately
                      printf their tables).
"""

import os
import re
import subprocess
import tempfile

from .common import Finding

RULES = {
    "trkx-raw-rng": "raw std RNG outside util/rng (use trkx::Rng)",
    "trkx-io": "direct stdout/stderr outside util/log (use TRKX_LOG)",
    "trkx-naked-new": "naked new (use containers or make_unique)",
    "trkx-omp-critical": "omp critical without a justifying comment",
    "trkx-std-mutex": "raw std mutex type (use annotated trkx::Mutex)",
    "trkx-using-std": "using namespace std",
    "trkx-atomic-write":
        "checkpoint path opened directly (use atomic_write_file)",
    "trkx-bench-json":
        "bench does not emit the unified JSON artifact "
        "(use bench_json.hpp / bench_gb_json.hpp)",
}

RAW_RNG = re.compile(
    r"std::mt19937|std::default_random_engine|std::minstd_rand|"
    r"(?<![\w.:])s?rand\s*\("
)
DIRECT_IO = re.compile(
    r"std::cout|std::cerr|(?<![\w:])(?:printf|fprintf|puts|fputs)\s*\("
)
NAKED_NEW = re.compile(r"(?<![\w:.])new\s+[A-Za-z_(]")
OMP_CRITICAL = re.compile(r"#\s*pragma\s+omp\s.*\bcritical\b")
STD_MUTEX = re.compile(
    r"std::(?:mutex|shared_mutex|recursive_mutex|lock_guard|unique_lock|"
    r"scoped_lock|condition_variable)\b"
)
USING_STD = re.compile(r"\busing\s+namespace\s+std\b")
DIRECT_FILE_OPEN = re.compile(r"std::ofstream\b|(?<![\w:])fopen\s*\(")
CKPT_PATH = re.compile(r"\.ckpt|manifest", re.IGNORECASE)
COMMENT = re.compile(r"//|/\*")
BENCH_JSON_REF = re.compile(
    r"bench_json\.hpp|bench_gb_json\.hpp|BenchJsonWriter|gb_json_main")

PATTERN_RULES = [
    ("trkx-raw-rng", RAW_RNG),
    ("trkx-io", DIRECT_IO),
    ("trkx-naked-new", NAKED_NEW),
    ("trkx-std-mutex", STD_MUTEX),
    ("trkx-using-std", USING_STD),
]


def is_exempt(rel, rule):
    rel = rel.replace(os.sep, "/")
    if rule == "trkx-raw-rng":
        return rel.startswith("src/util/rng")
    if rule == "trkx-io":
        return rel.startswith("src/util/log")
    if rule == "trkx-std-mutex":
        # The wrapper itself, and tests (which may exercise raw primitives).
        return rel == "src/util/annotations.hpp" or rel.startswith("tests/")
    if rule == "trkx-atomic-write":
        # The atomic-rename helper is the one legitimate writer.
        return rel == "src/pipeline/checkpoint.cpp"
    return False


def run(tree):
    findings = []
    for sf in tree.files():
        rel = sf.rel.replace(os.sep, "/")
        if rel.startswith("bench/"):
            # Benches print human tables by design; the only conventions
            # rule that applies there is trkx-bench-json.
            name = rel.rsplit("/", 1)[-1]
            if (name.startswith("bench_") and name.endswith(".cpp")
                    and not any(BENCH_JSON_REF.search(raw)
                                for raw in sf.raw)
                    and not sf.has_nolint(0, "trkx-bench-json")):
                findings.append(Finding(
                    sf.rel, 1, "trkx-bench-json",
                    RULES["trkx-bench-json"]))
            continue
        for i, code in enumerate(sf.code):
            for rule, pattern in PATTERN_RULES:
                if not pattern.search(code):
                    continue
                if is_exempt(sf.rel, rule) or sf.has_nolint(i, rule):
                    continue
                findings.append(Finding(sf.rel, i + 1, rule, RULES[rule]))
            # trkx-atomic-write reads the raw line: the ".ckpt"/manifest
            # evidence lives inside a string literal, which the stripped
            # view blanks out.
            if (DIRECT_FILE_OPEN.search(code) and CKPT_PATH.search(sf.raw[i])
                    and not is_exempt(sf.rel, "trkx-atomic-write")
                    and not sf.has_nolint(i, "trkx-atomic-write")):
                findings.append(Finding(
                    sf.rel, i + 1, "trkx-atomic-write",
                    RULES["trkx-atomic-write"]))
            # The critical-justification rule reads raw lines: the
            # justification *is* a comment.
            if OMP_CRITICAL.search(sf.raw[i]):
                prev = sf.raw[i - 1] if i > 0 else ""
                if not (COMMENT.search(sf.raw[i]) or COMMENT.search(prev)):
                    if not sf.has_nolint(i, "trkx-omp-critical"):
                        findings.append(Finding(
                            sf.rel, i + 1, "trkx-omp-critical",
                            RULES["trkx-omp-critical"]))
    return findings


def check_headers(root, compiler, findings):
    """Compile each src/ header standalone (twice, for the include-guard
    check): missing transitive includes surface here instead of as
    include-order landmines."""
    headers = []
    for dirpath, _, files in os.walk(os.path.join(root, "src")):
        for name in sorted(files):
            if name.endswith(".hpp"):
                headers.append(os.path.relpath(
                    os.path.join(dirpath, name), root).replace(os.sep, "/"))
    headers.sort()
    flags = ["-std=c++20", "-fsyntax-only", "-fopenmp",
             "-I", os.path.join(root, "src")]
    failed = 0
    for rel in headers:
        with tempfile.NamedTemporaryFile(
            "w", suffix=".cpp", delete=False
        ) as tu:
            include = rel.removeprefix("src/")
            tu.write(f'#include "{include}"\n')
            tu.write(f'#include "{include}"\n')  # include-guard check
            tu_path = tu.name
        try:
            proc = subprocess.run(
                [compiler, *flags, tu_path],
                capture_output=True,
                text=True,
                check=False,
            )
            if proc.returncode != 0:
                failed += 1
                first = proc.stderr.strip().splitlines()
                detail = first[0] if first else "compile failed"
                findings.append(Finding(
                    rel, 1, "trkx-header-standalone",
                    f"header does not compile standalone: {detail}"))
        finally:
            os.unlink(tu_path)
    print(f"lint: {len(headers) - failed}/{len(headers)} headers "
          "self-contained")
