"""facts.py — phase 1 of the cross-TU analyzer: per-file fact extraction.

trkx-analyze's original passes are per-file: each looks at one
translation unit in isolation. The concurrency and resource-flow
properties the lock-order / throw-boundary passes check are not like
that: a lock-order inversion is two TUs disagreeing about acquisition
order, and a throw inside an OpenMP region is only fatal because of
what its *callees* do. This module extracts per-file facts once —

  * function definitions (name, enclosing class, line extent),
  * call sites (a simple-name call graph),
  * lock acquisitions (trkx::LockGuard / UniqueLock) with brace-scope
    extents and the guarded mutex expression,
  * throw sites (throw / TRKX_CHECK / TRKX_CHECK_MSG /
    rethrow_exception) and guard extents that stop propagation
    (try { } catch (...) blocks and ExceptionBarrier::run callbacks),
  * blocking operations (condvar waits, joins, sleeps, file I/O,
    collectives, log macros) with a strong/weak classification,
  * OpenMP ``parallel`` regions and thread-entry launch sites,

— and builds the whole-program index (Project) that phase-2 passes
query: simple-name call resolution plus memoised transitive closures
for "which locks does calling F acquire", "can calling F throw", and
"does calling F block".

PR 9 adds three more fact kinds for the dataflow passes:

  * collective call sites (all_reduce / broadcast / barrier /
    all_gather) together with a *branch model* of the enclosing
    function: every ``if``/``else`` extent with its condition text,
    loop extents, and conditional early exits (return/continue/break)
    — what the collective-consistency pass needs to decide whether a
    collective executes on every rank,
  * allocation sites (``new`` / malloc-family / make_unique /
    make_shared) — the hot-path pass flags these outside the
    TensorPool / MemoryPlanner front doors,
  * RNG provenance: every ``Rng`` definition with its origin
    (``Rng::stream(...)`` keyed, ``split()`` of another stream,
    sequential seed construction, ``Rng&`` parameter), every draw
    site, and every call that hands an Rng to a callee — the
    rng-stream pass walks these to prove sampling randomness derives
    from a (rank, epoch, event, batch) stream key,

plus ``TRKX_HOT`` annotations (util/annotations.hpp) naming the
inference-stage entry points whose call closure must stay free of
heap allocation and blocking, and catch-handler classification
(does the handler rethrow/abort, or swallow?) for the
collective-unguarded rule.

Facts are regex-level, like every trkx-analyze pass: no compiler, no
AST. Extraction is tuned to this repo's idiom (annotated lock wrappers,
TRKX_* macros) and errs toward under-approximation, with NOLINT as the
escape hatch for the rest. Heap exhaustion (std::bad_alloc) is excluded
from the throw model by policy — otherwise every region that touches a
vector would flag.
"""

import bisect
import json
import re
from collections import deque

from .common import KEYWORDS
from .omp_sharing import PRAGMA, _join_pragma, _region_lines, parse_clauses

CONTROL = frozenset(
    "if for while switch catch return sizeof alignof decltype".split())

# Method names owned by the standard library (atomics, smart pointers,
# containers, condvars, streams). A call with an explicit receiver
# (``x.load()``) whose name is on this list never resolves into the
# project call graph: ``armed_.load()`` must not resolve to
# ``ParameterStore::load``. Project-owned wrappers of these shapes
# (CondVar::wait, stream flushes) are caught textually by the BLOCKING
# and CV_WAIT regexes, which do not depend on resolution.
STD_METHODS = frozenset("""
    load store exchange fetch_add fetch_sub compare_exchange_weak
    compare_exchange_strong reset release get swap at find count insert
    erase begin end size empty clear data c_str str front back push pop
    push_back pop_back emplace emplace_back resize reserve fill
    wait wait_for wait_until notify_one notify_all
    lock unlock try_lock join detach joinable
    open close good fail eof flush tie native
""".split())

FUNC_CAND = re.compile(r"(~?[A-Za-z_]\w*(?:\s*::\s*~?[A-Za-z_]\w*)*)\s*\(")
CLASS_DECL = re.compile(
    r"\b(?:class|struct)\s+(?:TRKX_\w+\s*(?:\([^()]*\))?\s*)?([A-Za-z_]\w*)")
CALL = re.compile(r"((?:[A-Za-z_]\w*::)*[A-Za-z_]\w*)\s*\(")
LOCK = re.compile(r"\b(LockGuard|UniqueLock)\s+(\w+)\s*[({]\s*([^;{}]*?)\s*[)}]")
CV_WAIT = re.compile(r"(\w+)\s*\.\s*wait(?:_for|_until)?\s*\(\s*(\w+)?")
THROW = re.compile(
    r"(?<![\w.])throw\b|\bTRKX_CHECK(?:_MSG)?\s*\(|\bthrow_check_failure\b"
    r"|\brethrow_exception\s*\(")
RETHROW_BARE = re.compile(r"(?<![\w.])throw\s*;")
CATCH_ALL = re.compile(r"\bcatch\s*\(\s*(?:\.\.\.|const\s+std::exception\b)")
RUN_CALL = re.compile(r"(\w+)\s*\.\s*run\s*\(")
RETHROW_CALL = re.compile(r"\w+\s*\.\s*rethrow\s*\(")
BARRIER_DECL = re.compile(r"\bExceptionBarrier\s+(\w+)")
THREAD_NEW = re.compile(r"\bstd::thread\s*[({]")
EMPLACE = re.compile(r"(\w+)\s*\.\s*emplace_back\s*\(")
THREAD_VEC_DECL = re.compile(r"\bstd::vector\s*<\s*std::thread\s*>\s+(\w+)")

# Blocking operations. "strong" kinds propagate through the call graph
# (calling a function that transitively blocks is itself blocking);
# "weak" kinds (log macros, stream flushes) are flagged only when they
# appear directly under a lock — the transitive version would be noise.
BLOCKING = (
    ("join", "strong", re.compile(r"\.\s*join\s*\(")),
    ("sleep", "strong", re.compile(r"\bsleep_(?:for|until)\s*\(")),
    ("file-io", "strong", re.compile(
        r"\bstd::[oi]?fstream\b|(?<![\w:])(?:fopen|fread|fwrite|fsync)"
        r"\s*\(")),
    ("collective", "strong", re.compile(
        r"\b(?:all_reduce|all_gather|arrive_and_wait)\s*\(")),
    ("pool-wait", "strong", re.compile(r"\b(?:parallel_for|wait_all)\s*\(")),
    ("flush", "weak", re.compile(r"\.\s*flush\s*\(\s*\)")),
    ("log", "weak", re.compile(r"\bTRKX_(?:INFO|WARN|ERROR|DEBUG)\b")),
)

# Collective call sites. The lookbehind permits an explicit receiver
# (``comm.all_reduce_sum(...)``) but rejects identifier tails
# (``add_row_broadcast``). all_reduce_* variants collapse to one kind:
# the consistency property is "same sequence of collective kinds on
# every rank", and sum-vs-scalar is a payload detail.
COLLECTIVE = re.compile(
    r"(?<![\w:])(all_reduce_sum|all_reduce_scalar|all_reduce|all_gather|"
    r"broadcast|barrier|arrive_and_wait)\s*\(")
COLLECTIVE_KIND = {"all_reduce_sum": "all_reduce",
                   "all_reduce_scalar": "all_reduce",
                   "arrive_and_wait": "barrier"}

# Heap-allocation sites for the hot-path pass. std::vector growth is
# excluded by the same policy that excludes bad_alloc from the throw
# model; TensorPool / MemoryPlanner internals are exempted at the pass
# level as the sanctioned front doors.
ALLOC_SITES = (
    ("new", re.compile(r"(?<![\w:.])new\s+[A-Za-z_(]")),
    ("malloc", re.compile(r"(?<![\w:.])(?:malloc|calloc|realloc)\s*\(")),
    ("make_unique", re.compile(r"\bmake_unique\s*<")),
    ("make_shared", re.compile(r"\bmake_shared\s*<")),
)

# RNG provenance. A definition's origin is one of: "stream" (keyed
# Rng::stream), "split" (derived from another var — chase the source),
# "seq" (sequential seed construction), "param" (Rng& argument — the
# caller decides). Draws on an unknown ``name_`` receiver resolve to
# "member" (sequential object state).
RNG_DEF = re.compile(r"(?<![\w:])Rng\s+([a-z_]\w*)\s*(?=[({=;])")
RNG_VEC_DEF = re.compile(r"\bstd::vector\s*<\s*Rng\s*>\s+(\w+)")
RNG_PARAM = re.compile(
    r"(?:\bstd::vector\s*<\s*Rng\s*>|(?<![\w:])Rng)\s*&\s*(\w+)")
RNG_STREAM = re.compile(r"\bRng::stream\s*\(")
RNG_SPLIT_FROM = re.compile(r"(\w+)\s*(?:\[[^\]]*\]\s*)?\.\s*split\s*\(")
RNG_VEC_PUSH = re.compile(
    r"(\w+)\s*\.\s*(?:push_back|emplace_back)\s*\(\s*(\w+)\s*\.\s*split\s*\(")
RNG_DRAW_METHODS = frozenset(
    "uniform uniform_index normal poisson bernoulli shuffle "
    "sample_without_replacement next_u64 split".split())
RNG_DRAW = re.compile(
    r"(\w+)\s*(?:\[[^\]]*\]\s*)?\.\s*(uniform|uniform_index|normal|"
    r"poisson|bernoulli|shuffle|sample_without_replacement|next_u64|"
    r"split)\s*\(")

# Hot-path annotation (util/annotations.hpp): marks an inference-stage
# entry point whose transitive call closure must stay allocation- and
# blocking-free.
HOT = re.compile(r"\bTRKX_HOT\b")

# Branch model tokens for the collective-consistency pass.
IF_TOKEN = re.compile(r"(?<![\w.])if\s*\(")
LOOP_TOKEN = re.compile(r"(?<![\w.])(?:for|while)\s*\(")
EXIT_TOKEN = re.compile(r"(?<![\w.])(?:return|continue|break)\b")


def _match(text, i, open_ch, close_ch):
    """Index of the bracket closing text[i] (which must be open_ch)."""
    depth = 0
    n = len(text)
    while i < n:
        c = text[i]
        if c == open_ch:
            depth += 1
        elif c == close_ch:
            depth -= 1
            if depth == 0:
                return i
        i += 1
    return None


def _scan_init_list(text, i):
    """Skip a constructor member-init list starting after ':'; return the
    index of the body '{' or None."""
    n = len(text)
    while i < n:
        c = text[i]
        if c.isspace() or c == ",":
            i += 1
            continue
        m = re.match(r"[A-Za-z_]\w*", text[i:])
        if not m:
            return None
        i += m.end()
        while i < n and text[i].isspace():
            i += 1
        if i < n and text[i] == "<":
            close = _match(text, i, "<", ">")
            if close is None:
                return None
            i = close + 1
            while i < n and text[i].isspace():
                i += 1
        if i >= n or text[i] not in "({":
            return None
        close = _match(text, i, text[i], ")" if text[i] == "(" else "}")
        if close is None:
            return None
        i = close + 1
        while i < n and text[i].isspace():
            i += 1
        if i < n and text[i] == "{":
            return i
    return None


def _find_body_open(text, i):
    """Scan past declaration decorations (const, noexcept, trailing
    return, TRKX_* attribute macros, member-init list) to the body '{';
    None if this turns out to be a declaration or expression."""
    n = len(text)
    while i < n:
        c = text[i]
        if c.isspace():
            i += 1
        elif c == "{":
            return i
        elif c in ";=":
            return None
        elif c == ":":
            if i + 1 < n and text[i + 1] == ":":
                i += 2
            else:
                return _scan_init_list(text, i + 1)
        elif c == "(":
            close = _match(text, i, "(", ")")
            if close is None:
                return None
            i = close + 1
        elif c == "<":
            close = _match(text, i, "<", ">")
            if close is None:
                return None
            i = close + 1
        elif c == "-" and i + 1 < n and text[i + 1] == ">":
            i += 2
        elif c == "[":
            close = _match(text, i, "[", "]")
            if close is None:
                return None
            i = close + 1
        elif c.isalnum() or c in "_&*,":
            i += 1
        else:
            return None
    return None


class Acq:
    """One lock acquisition with its brace-scope line extent."""

    __slots__ = ("kind", "var", "expr", "line", "scope_end")

    def __init__(self, kind, var, expr, line, scope_end):
        self.kind = kind
        self.var = var
        self.expr = expr
        self.line = line            # 0-based
        self.scope_end = scope_end  # 0-based inclusive


class Branch:
    """One ``if`` with its condition text and arm extents (0-based,
    inclusive). ``exit_then``/``exit_else`` record whether the arm
    contains a conditional early exit (return/continue/break)."""

    __slots__ = ("cond", "line", "then_ext", "else_ext",
                 "exit_then", "exit_else")

    def __init__(self, cond, line, then_ext, else_ext,
                 exit_then, exit_else):
        self.cond = cond
        self.line = line
        self.then_ext = then_ext
        self.else_ext = else_ext
        self.exit_then = exit_then
        self.exit_else = exit_else


class FunctionFacts:
    __slots__ = ("file", "name", "qual", "cls", "start", "end",
                 "calls", "locks", "throw_lines", "blocking",
                 "omp_regions", "thread_sites", "run_extents",
                 "rethrow_lines", "catch_extents", "has_bare_rethrow",
                 "collectives", "allocs", "branches", "loops",
                 "rng_defs", "rng_draws", "rng_pass", "catch_swallows")

    def __init__(self, file, name, cls, start, end):
        self.file = file
        self.name = name
        self.cls = cls
        self.qual = f"{cls}::{name}" if cls else name
        self.start = start  # 0-based header line
        self.end = end      # 0-based last body line
        self.calls = []         # (callee, line, is_method)
        self.locks = []         # [Acq]
        self.throw_lines = []   # [line]
        self.blocking = []      # (kind, strength, line, cv_lockvar|None)
        self.omp_regions = []   # (pragma_line, body_end_line)
        self.thread_sites = []  # (line, receiver, [(callee, is_method)])
        self.run_extents = []   # (receiver, start_line, end_line)
        self.rethrow_lines = []
        self.catch_extents = []  # (start_line, end_line) of guarded try
        self.has_bare_rethrow = False
        self.collectives = []   # (kind, line)
        self.allocs = []        # (kind, line)
        self.branches = []      # [Branch]
        self.loops = []         # (start_line, end_line)
        self.rng_defs = {}      # var -> (origin, split_src|None, line)
        self.rng_draws = []     # (var, method, line)
        self.rng_pass = []      # (callee, var, line, is_method)
        self.catch_swallows = []  # bool, parallel to catch_extents

    def guard_extents(self, barrier_names):
        """Line extents within which a throw cannot escape this function:
        try blocks with a catch-all handler, plus ExceptionBarrier::run
        callback arguments."""
        extents = list(self.catch_extents)
        for recv, s, e in self.run_extents:
            if recv in barrier_names or recv.rstrip("_").endswith("barrier"):
                extents.append((s, e))
        return extents


class FileFacts:
    __slots__ = ("rel", "functions", "barrier_decls", "thread_vec_decls",
                 "hot_decls")

    def __init__(self, rel):
        self.rel = rel
        self.functions = []
        self.barrier_decls = set()
        self.thread_vec_decls = set()
        self.hot_decls = set()  # quals of TRKX_HOT-annotated declarations


def _line_offsets(code):
    starts = []
    off = 0
    for line in code:
        starts.append(off)
        off += len(line) + 1
    return starts


def _line_end_depths(code):
    depths = []
    d = 0
    for line in code:
        d += line.count("{") - line.count("}")
        depths.append(d)
    return depths


def _class_extents(text):
    out = []
    for m in CLASS_DECL.finditer(text):
        i = m.end()
        n = len(text)
        # scan to '{' (body) or ';' (forward decl), skipping base clause
        while i < n and text[i] not in "{;":
            if text[i] == "(":  # macro args in the decl
                close = _match(text, i, "(", ")")
                if close is None:
                    break
                i = close + 1
            else:
                i += 1
        if i >= n or text[i] != "{":
            continue
        close = _match(text, i, "{", "}")
        if close is not None:
            out.append((m.group(1), i, close))
    return out


def _scan_functions(sf):
    """Find function definitions (incl. out-of-line members and in-class
    methods; lambdas are flattened into their enclosing function)."""
    text = "\n".join(sf.code)
    starts = _line_offsets(sf.code)

    def line_of(pos):
        return bisect.bisect_right(starts, pos) - 1

    classes = _class_extents(text)
    funcs = []
    resume = 0
    for m in FUNC_CAND.finditer(text):
        if m.start() < resume:
            continue
        # Destructors keep their '~': ``new X()`` / ``X(...)`` call sites
        # must resolve to the constructor only, never the destructor —
        # conflating them drags shutdown paths (stop/join in ~X) into
        # every closure that constructs an X.
        name = re.sub(r"\s+", "", m.group(1))
        short = name.rsplit("::", 1)[-1]
        bare = short.lstrip("~")
        if bare in KEYWORDS or bare in CONTROL or bare.isupper():
            continue
        j = m.start(1) - 1
        while j >= 0 and text[j] in " \t":
            j -= 1
        if j >= 0 and (text[j] == "." or
                       (text[j] == ">" and j > 0 and text[j - 1] == "-")):
            continue  # method call, not a definition
        paren = text.index("(", m.end(1))
        close = _match(text, paren, "(", ")")
        if close is None:
            continue
        body_open = _find_body_open(text, close + 1)
        if body_open is None:
            continue
        body_close = _match(text, body_open, "{", "}")
        if body_close is None:
            body_close = len(text) - 1
        cls = ""
        if "::" in name:
            cls = name.rsplit("::", 1)[0].rsplit("::", 1)[-1]
        else:
            best = None
            for cname, copen, cclose in classes:
                if copen < m.start() < cclose:
                    if best is None or copen > best[1]:
                        best = (cname, copen)
            if best:
                cls = best[0]
        funcs.append(FunctionFacts(sf.rel, short, cls,
                                   line_of(m.start()), line_of(body_close)))
        resume = body_close
    return funcs


def _paren_extent_lines(sf, line, col):
    """(start_line, end_line) of the balanced paren group opening at
    sf.code[line][col]."""
    depth = 0
    for li in range(line, len(sf.code)):
        s = sf.code[li][col:] if li == line else sf.code[li]
        for ch in s:
            if ch == "(":
                depth += 1
            elif ch == ")":
                depth -= 1
                if depth == 0:
                    return line, li
    return line, len(sf.code) - 1


def _block_extent(sf, start):
    """Last line of the brace block starting at/after `start`."""
    depth = 0
    seen = False
    for li in range(start, len(sf.code)):
        for ch in sf.code[li]:
            if ch == "{":
                depth += 1
                seen = True
            elif ch == "}":
                depth -= 1
                if seen and depth == 0:
                    return li
        if not seen and ";" in sf.code[li]:
            return li
    return len(sf.code) - 1


def _call_kind(code, start):
    """Classify a CALL match at code[start]: 'method' (explicit receiver
    other than this), 'call' (plain, qualified, or this->), or None for
    declarations — ``Type name(...)`` where the token before the name is
    a non-keyword identifier or a template close is a variable with a
    paren initializer, not a call."""
    j = start - 1
    while j >= 0 and code[j] in " \t":
        j -= 1
    if j < 0:
        return "call"
    c = code[j]
    if c == "." or (c == ">" and j > 0 and code[j - 1] == "-"):
        k = j - (1 if c == "." else 2)
        while k >= 0 and code[k] in " \t":
            k -= 1
        e = k
        while k >= 0 and (code[k].isalnum() or code[k] == "_"):
            k -= 1
        return "call" if code[k + 1:e + 1] == "this" else "method"
    if c == ">":
        return None  # `std::vector<T> name(...)` declaration
    if c.isalnum() or c == "_":
        k = j
        while k >= 0 and (code[k].isalnum() or code[k] == "_"):
            k -= 1
        if code[k + 1:j + 1] not in KEYWORDS | CONTROL:
            return None  # `Type name(...)` declaration
    return "call"


def _stmt_extent(text, i):
    """(start, end_exclusive) character span of the statement beginning
    at/after text[i]: a braced block, an if/else chain (so an ``else
    if`` arm covers the whole nested chain), or a plain statement up to
    its ';'."""
    n = len(text)
    while i < n and text[i].isspace():
        i += 1
    if i >= n:
        return i, i
    if text[i] == "{":
        close = _match(text, i, "{", "}")
        return i, (close + 1 if close is not None else n)
    if re.match(r"if\b", text[i:]):
        p = text.find("(", i)
        if p == -1:
            return i, n
        close = _match(text, p, "(", ")")
        if close is None:
            return i, n
        _, e = _stmt_extent(text, close + 1)
        j = e
        while j < n and text[j].isspace():
            j += 1
        if (text[j:j + 4] == "else"
                and not (j + 4 < n
                         and (text[j + 4].isalnum() or text[j + 4] == "_"))):
            _, e = _stmt_extent(text, j + 4)
        return i, e
    depth_close = {"(": ")", "{": "}", "[": "]"}
    j = i
    while j < n:
        c = text[j]
        if c in depth_close:
            close = _match(text, j, c, depth_close[c])
            if close is None:
                return i, n
            j = close + 1
            continue
        if c == ";":
            return i, j + 1
        if c == "}":
            return i, j  # ran off the enclosing block
        j += 1
    return i, n


def _extract_branches(sf, ff, text, starts):
    """Populate ff.branches / ff.loops from the joined file text."""
    def line_of(pos):
        return bisect.bisect_right(starts, pos) - 1

    lo = starts[ff.start]
    hi = starts[ff.end] + len(sf.code[ff.end])
    n = len(text)
    for m in IF_TOKEN.finditer(text, lo, hi):
        p = text.find("(", m.start())
        close = _match(text, p, "(", ")")
        if close is None:
            continue
        cond = re.sub(r"\s+", " ", text[p + 1:close]).strip()
        ts, te = _stmt_extent(text, close + 1)
        es = ee = None
        j = te
        while j < n and text[j].isspace():
            j += 1
        if (text[j:j + 4] == "else"
                and not (j + 4 < n
                         and (text[j + 4].isalnum() or text[j + 4] == "_"))):
            es, ee = _stmt_extent(text, j + 4)
        then_ext = (line_of(ts), line_of(max(ts, te - 1)))
        else_ext = (None if es is None
                    else (line_of(es), line_of(max(es, ee - 1))))
        exit_then = bool(EXIT_TOKEN.search(text, ts, te))
        exit_else = (bool(EXIT_TOKEN.search(text, es, ee))
                     if es is not None else False)
        ff.branches.append(Branch(cond, line_of(m.start()), then_ext,
                                  else_ext, exit_then, exit_else))
    for m in LOOP_TOKEN.finditer(text, lo, hi):
        p = text.find("(", m.start())
        close = _match(text, p, "(", ")")
        if close is None:
            continue
        s, e = _stmt_extent(text, close + 1)
        ff.loops.append((line_of(s), line_of(max(s, e - 1))))


def _handler_swallows(sf, blk_end):
    """True if the catch-all handler whose try block ends at blk_end
    neither rethrows nor aborts — i.e. it swallows the exception, which
    silently skips any collective the unwound path would have reached."""
    window = "\n".join(sf.code[blk_end:min(blk_end + 40, len(sf.code))])
    m = re.search(r"\bcatch\s*\(", window)
    if not m:
        return False
    p = window.find("(", m.start())
    close = _match(window, p, "(", ")")
    if close is None:
        return False
    b = window.find("{", close)
    if b == -1:
        return False
    bclose = _match(window, b, "{", "}")
    body = window[b:bclose] if bclose is not None else window[b:]
    return not re.search(r"(?<![\w.])throw\b|\brethrow|\babort\s*\(", body)


def _extract_function_body(sf, ff, end_depths):
    # Rng& parameters: scanned from the signature lines before the body
    # so defs precede draws/passes lexically, as in the source.
    for li in range(ff.start, min(ff.start + 3, ff.end) + 1):
        for m in RNG_PARAM.finditer(sf.code[li]):
            ff.rng_defs.setdefault(m.group(1), ("param", None, li))
    lines = range(ff.start, ff.end + 1)
    for li in lines:
        code = sf.code[li]
        if code.lstrip().startswith("#"):
            continue
        for m in RNG_DEF.finditer(code):
            if li == ff.start:
                continue  # `Rng make_rng(...)` return type, not a def
            rest = code[m.end(1):]
            if RNG_STREAM.search(rest):
                origin = ("stream", None, li)
            else:
                sm = RNG_SPLIT_FROM.search(rest)
                origin = (("split", sm.group(1), li) if sm
                          else ("seq", None, li))
            ff.rng_defs.setdefault(m.group(1), origin)
        for m in RNG_VEC_DEF.finditer(code):
            ff.rng_defs.setdefault(m.group(1), ("seq", None, li))
        for m in RNG_VEC_PUSH.finditer(code):
            if m.group(1) in ff.rng_defs:
                ff.rng_defs[m.group(1)] = ("split", m.group(2), li)
        for m in RNG_DRAW.finditer(code):
            ff.rng_draws.append((m.group(1), m.group(2), li))
        for m in CALL.finditer(code):
            callee = m.group(1)
            short = callee.rsplit("::", 1)[-1]
            if short in KEYWORDS or short in CONTROL or short.isupper():
                continue
            kind = _call_kind(code, m.start(1))
            if kind is None:
                continue
            ff.calls.append((callee, li, kind == "method"))
            if ff.rng_defs and short not in RNG_DRAW_METHODS \
                    and short not in ("Rng", "stream"):
                # Which Rng vars this call receives (same-line args only
                # — an under-approximation by policy).
                paren = m.end() - 1
                close = None
                depth = 0
                for idx in range(paren, len(code)):
                    if code[idx] == "(":
                        depth += 1
                    elif code[idx] == ")":
                        depth -= 1
                        if depth == 0:
                            close = idx
                            break
                seg = code[paren:close] if close else code[paren:]
                for var in ff.rng_defs:
                    if re.search(rf"(?<![\w.]){re.escape(var)}\b", seg):
                        ff.rng_pass.append((callee, var, li,
                                            kind == "method"))
        for m in LOCK.finditer(code):
            depth = end_depths[li]
            scope_end = ff.end
            for lj in range(li + 1, ff.end + 1):
                if end_depths[lj] < depth:
                    scope_end = lj
                    break
            ff.locks.append(Acq(m.group(1), m.group(2), m.group(3),
                                li, scope_end))
        if THROW.search(code):
            ff.throw_lines.append(li)
        if RETHROW_BARE.search(code):
            ff.has_bare_rethrow = True
        m = CV_WAIT.search(code)
        if m:
            ff.blocking.append(("condvar-wait", "strong", li, m.group(2)))
        for kind, strength, rx in BLOCKING:
            if rx.search(code):
                ff.blocking.append((kind, strength, li, None))
        for m in RUN_CALL.finditer(code):
            paren = code.index("(", m.end(0) - 1)
            s, e = _paren_extent_lines(sf, li, paren)
            ff.run_extents.append((m.group(1), s, e))
        if RETHROW_CALL.search(code):
            ff.rethrow_lines.append(li)
        if li != ff.start:
            for m in COLLECTIVE.finditer(code):
                if _call_kind(code, m.start(1)) is None:
                    continue
                name = m.group(1)
                ff.collectives.append((COLLECTIVE_KIND.get(name, name), li))
        for kind, rx in ALLOC_SITES:
            if rx.search(code):
                ff.allocs.append((kind, li))
        if re.search(r"(?<!\w)try\b", code):
            blk_end = _block_extent(sf, li)
            tail = "\n".join(sf.code[blk_end:min(blk_end + 4, len(sf.code))])
            if CATCH_ALL.search(tail) or CATCH_ALL.search(code):
                ff.catch_extents.append((li, blk_end))
                ff.catch_swallows.append(_handler_swallows(sf, blk_end))
        if THREAD_NEW.search(code) or EMPLACE.search(code):
            recv = "std::thread" if THREAD_NEW.search(code) else \
                EMPLACE.search(code).group(1)
            mm = THREAD_NEW.search(code) or EMPLACE.search(code)
            try:
                paren = code.index("(", mm.start())
            except ValueError:
                continue
            s, e = _paren_extent_lines(sf, li, paren)
            callees = []
            for lj in range(s, e + 1):
                seg = sf.code[lj]
                for cm in CALL.finditer(seg):
                    cshort = cm.group(1).rsplit("::", 1)[-1]
                    if (cshort in KEYWORDS or cshort in CONTROL
                            or cshort.isupper()
                            or cshort in ("thread", "emplace_back")):
                        continue
                    ckind = _call_kind(seg, cm.start(1))
                    if ckind is None:
                        continue
                    callees.append((cshort, ckind == "method"))
            ff.thread_sites.append((li, recv, callees))


def extract_file(sf):
    fx = FileFacts(sf.rel)
    fx.functions = _scan_functions(sf)
    end_depths = _line_end_depths(sf.code)
    text = "\n".join(sf.code)
    starts = _line_offsets(sf.code)
    for ff in fx.functions:
        _extract_function_body(sf, ff, end_depths)
        _extract_branches(sf, ff, text, starts)
    fx.barrier_decls.update(BARRIER_DECL.findall(text))
    fx.thread_vec_decls.update(THREAD_VEC_DECL.findall(text))
    # TRKX_HOT-annotated declarations (the definition may live in
    # another TU; Project seeds the hot closure by qualified name).
    classes = _class_extents(text)
    for m in HOT.finditer(text):
        hline = bisect.bisect_right(starts, m.start()) - 1
        if sf.code[hline].lstrip().startswith("#"):
            continue  # the macro's own #define
        window_end = starts[min(hline + 2, len(sf.code) - 1)] + \
            len(sf.code[min(hline + 2, len(sf.code) - 1)])
        mm = FUNC_CAND.search(text, m.end(), window_end)
        if not mm:
            continue
        name = re.sub(r"\s+", "", mm.group(1)).rsplit("::", 1)[-1]
        name = name.lstrip("~")
        if name in KEYWORDS or name in CONTROL or name.isupper():
            continue
        cls = ""
        best = None
        for cname, copen, cclose in classes:
            if copen < m.start() < cclose:
                if best is None or copen > best[1]:
                    best = (cname, copen)
        if best:
            cls = best[0]
        fx.hot_decls.add(f"{cls}::{name}" if cls else name)
    # OpenMP parallel regions, assigned to the containing function.
    for i, code in enumerate(sf.code):
        if not PRAGMA.match(code):
            continue
        pragma_text, last = _join_pragma(sf, i)
        directive, _ = parse_clauses(pragma_text)
        if not directive or directive[0] != "parallel":
            continue
        region = _region_lines(sf, last + 1)
        body_end = region[-1][0] if region else last
        owner = None
        for ff in fx.functions:
            if ff.start <= i <= ff.end:
                if owner is None or ff.start > owner.start:
                    owner = ff
        if owner is not None:
            owner.omp_regions.append((i, body_end))
    return fx


class Project:
    """Whole-program index over per-file facts, with memoised closures."""

    _cache = {}

    def __init__(self, tree):
        self.tree = tree
        self.files = {}
        self.functions = []
        self.by_short = {}
        self.by_qual = {}
        self.barrier_names = set()
        self.thread_vec_names = set()
        self.hot_roots = set()
        for sf in tree.files():
            fx = extract_file(sf)
            self.files[sf.rel] = fx
            self.barrier_names.update(fx.barrier_decls)
            self.thread_vec_names.update(fx.thread_vec_decls)
            self.hot_roots.update(fx.hot_decls)
            for ff in fx.functions:
                self.functions.append(ff)
                self.by_short.setdefault(ff.name, []).append(ff)
                self.by_qual.setdefault(ff.qual, []).append(ff)
        self._throws = {}
        self._locks = {}
        self._blocks = {}
        self._colls = {}
        self._rngp = {}
        self._hot = None

    @classmethod
    def for_tree(cls, tree):
        key = id(tree)
        if key not in cls._cache:
            cls._cache[key] = cls(tree)
        return cls._cache[key]

    # -- resolution ----------------------------------------------------

    def resolve(self, ff, name, limit=4):
        """Candidate definitions for a call to `name` from inside `ff`.
        Same-class members win; otherwise all same-short-name functions
        (capped) — a deliberate over-approximation."""
        name = name.strip()
        if "::" in name:
            short = name.rsplit("::", 1)[-1]
            cands = self.by_qual.get(name) or self.by_short.get(short, [])
            return cands[:limit]
        if ff is not None and ff.cls:
            q = f"{ff.cls}::{name}"
            if q in self.by_qual:
                return self.by_qual[q][:limit]
        return self.by_short.get(name, [])[:limit]

    def targets(self, ff, callee, is_method):
        """(candidates, unanimous) for one call site. Method calls with
        a std-owned name never resolve, and the rest skip the same-class
        shortcut (the receiver is explicitly NOT this) and require
        *every* short-name candidate to agree before a property
        propagates — the receiver's type is unknown, so ``a.cols()``
        matching both Matrix::cols and the throwing Var::cols proves
        nothing."""
        short = callee.rsplit("::", 1)[-1]
        if is_method:
            if short in STD_METHODS:
                return [], False
            cands = [t for t in self.by_short.get(short, [])[:4]
                     if t is not ff]
            return cands, len(cands) > 1
        cands = [t for t in self.resolve(ff, callee) if t is not ff]
        return cands, False

    def call_throws(self, ff, callee, is_method):
        """Example path if this call site can raise, else None."""
        cands, unanimous = self.targets(ff, callee, is_method)
        paths = [self.throws(t) for t in cands]
        hits = [p for p in paths if p]
        if not hits or (unanimous and len(hits) < len(paths)):
            return None
        return hits[0]

    def call_locks(self, ff, callee, is_method):
        """{lock_id: path} this call site can acquire."""
        cands, unanimous = self.targets(ff, callee, is_method)
        dicts = [self.locks_acquired(t) for t in cands]
        if not dicts:
            return {}
        if unanimous:
            common = set(dicts[0])
            for d in dicts[1:]:
                common &= set(d)
            return {lid: dicts[0][lid] for lid in common}
        out = {}
        for d in dicts:
            for lid, path in d.items():
                out.setdefault(lid, path)
        return out

    def call_blocks(self, ff, callee, is_method):
        """Example (kind, path) if this call site can block, else None."""
        cands, unanimous = self.targets(ff, callee, is_method)
        results = [self.blocks(t) for t in cands]
        hits = [r for r in results if r]
        if not hits or (unanimous and len(hits) < len(results)):
            return None
        return hits[0]

    # -- transitive closures -------------------------------------------

    def _unguarded(self, ff, lines):
        guards = ff.guard_extents(self.barrier_names)
        return [li for li in lines
                if not any(s <= li <= e for s, e in guards)]

    def throws(self, ff, _stack=None):
        """Example path string if calling ff can raise, else None.
        Propagation stops at guard extents (catch-all / barrier.run)."""
        key = id(ff)
        if key in self._throws:
            return self._throws[key]
        stack = _stack if _stack is not None else set()
        if key in stack:
            return None
        stack.add(key)
        result = None
        if self._unguarded(ff, ff.throw_lines):
            result = ff.qual
        else:
            guards = ff.guard_extents(self.barrier_names)
            for callee, li, is_method in ff.calls:
                if any(s <= li <= e for s, e in guards):
                    continue
                cands, unanimous = self.targets(ff, callee, is_method)
                paths = [self.throws(t, stack) for t in cands]
                hits = [p for p in paths if p]
                if hits and not (unanimous and len(hits) < len(paths)):
                    result = f"{ff.qual} -> {hits[0]}"
                    break
        stack.discard(key)
        self._throws[key] = result
        return result

    def locks_acquired(self, ff, _stack=None):
        """{lock_id: path} for every lock calling ff can acquire."""
        key = id(ff)
        if key in self._locks:
            return self._locks[key]
        stack = _stack if _stack is not None else set()
        if key in stack:
            return {}
        stack.add(key)
        out = {}
        for acq in ff.locks:
            out.setdefault(lock_id(acq.expr, ff), ff.qual)
        for callee, li, is_method in ff.calls:
            cands, unanimous = self.targets(ff, callee, is_method)
            dicts = [self.locks_acquired(t, stack) for t in cands]
            if not dicts:
                continue
            if unanimous:
                common = set(dicts[0])
                for d in dicts[1:]:
                    common &= set(d)
                for lid in common:
                    out.setdefault(lid, f"{ff.qual} -> {dicts[0][lid]}")
            else:
                for d in dicts:
                    for lid, path in d.items():
                        out.setdefault(lid, f"{ff.qual} -> {path}")
        stack.discard(key)
        self._locks[key] = out
        return out

    def blocks(self, ff, _stack=None):
        """Example (kind, path) if calling ff can block (strong kinds
        only), else None."""
        key = id(ff)
        if key in self._blocks:
            return self._blocks[key]
        stack = _stack if _stack is not None else set()
        if key in stack:
            return None
        stack.add(key)
        result = None
        for kind, strength, li, _ in ff.blocking:
            if strength == "strong":
                result = (kind, ff.qual)
                break
        if result is None:
            for callee, li, is_method in ff.calls:
                cands, unanimous = self.targets(ff, callee, is_method)
                subs = [self.blocks(t, stack) for t in cands]
                hits = [s for s in subs if s]
                if hits and not (unanimous and len(hits) < len(subs)):
                    result = (hits[0][0], f"{ff.qual} -> {hits[0][1]}")
                    break
        stack.discard(key)
        self._blocks[key] = result
        return result

    def collectives_reached(self, ff, _stack=None):
        """{collective_kind: path} reachable by calling ff. The
        Communicator implementation itself contributes nothing: callers
        see their own textual call site (``comm.all_reduce_sum(...)``)
        via the COLLECTIVE regex, and walking into the implementation
        would conflate the internal barrier/exchange sequence with the
        caller-visible kind. Ambiguous method calls (multiple
        candidates) do not propagate — a wrong resolution here would
        mark arbitrary callers rank-divergent."""
        if "communicator" in ff.file.replace("\\", "/"):
            return {}
        key = id(ff)
        if key in self._colls:
            return self._colls[key]
        stack = _stack if _stack is not None else set()
        if key in stack:
            return {}
        stack.add(key)
        out = {}
        for kind, li in ff.collectives:
            out.setdefault(kind, ff.qual)
        for callee, li, is_method in ff.calls:
            cands, unanimous = self.targets(ff, callee, is_method)
            if is_method and len(cands) != 1:
                continue
            for t in cands:
                for k, path in self.collectives_reached(t, stack).items():
                    out.setdefault(k, f"{ff.qual} -> {path}")
        stack.discard(key)
        self._colls[key] = out
        return out

    def hot_paths(self):
        """{id(ff): (ff, path)} for every function in the transitive
        call closure of the TRKX_HOT-annotated entry points. Plain
        calls propagate to every candidate; explicit-receiver method
        calls only when resolution is unambiguous (one candidate) — a
        mis-resolved receiver would drag unrelated code into the hot
        set."""
        if self._hot is not None:
            return self._hot
        seeds = []
        for q in sorted(self.hot_roots):
            cands = self.by_qual.get(q)
            if not cands:
                cands = self.by_short.get(q.rsplit("::", 1)[-1], [])
            seeds.extend(cands)
        hot = {}
        dq = deque((ff, ff.qual) for ff in seeds)
        while dq:
            ff, path = dq.popleft()
            if id(ff) in hot:
                continue
            hot[id(ff)] = (ff, path)
            for callee, li, is_method in ff.calls:
                cands, _ = self.targets(ff, callee, is_method)
                if is_method and len(cands) != 1:
                    continue
                for t in cands:
                    if id(t) not in hot:
                        dq.append((t, f"{path} -> {t.qual}"))
        self._hot = hot
        return hot

    def rng_origin(self, ff, var):
        """Terminal origin of an Rng variable in ff: 'stream', 'seq',
        'param', 'member', or 'unknown' — chasing split() derivations
        back to their source."""
        seen = set()
        while True:
            if var in seen:
                return "unknown"
            seen.add(var)
            d = ff.rng_defs.get(var)
            if d is None:
                return "member" if var.endswith("_") else "unknown"
            origin, src, _li = d
            if origin == "split" and src:
                var = src
                continue
            return origin

    def rng_param_draws(self, ff, _stack=None):
        """True if calling ff consumes randomness from one of its own
        Rng& parameters — directly, or by forwarding the parameter to a
        callee that does."""
        key = id(ff)
        if key in self._rngp:
            return self._rngp[key]
        stack = _stack if _stack is not None else set()
        if key in stack:
            return False
        stack.add(key)
        result = False
        for var, _method, _li in ff.rng_draws:
            if self.rng_origin(ff, var) == "param":
                result = True
                break
        if not result:
            for callee, var, li, is_method in ff.rng_pass:
                if self.rng_origin(ff, var) != "param":
                    continue
                cands, _ = self.targets(ff, callee, is_method)
                if is_method and len(cands) != 1:
                    continue
                if any(self.rng_param_draws(t, stack) for t in cands):
                    result = True
                    break
        stack.discard(key)
        self._rngp[key] = result
        return result

    # -- serialization -------------------------------------------------

    def to_json(self):
        files = {}
        for rel, fx in sorted(self.files.items()):
            files[rel] = {
                "functions": [{
                    "name": ff.name, "qual": ff.qual, "class": ff.cls,
                    "start": ff.start + 1, "end": ff.end + 1,
                    "calls": [[c, li + 1, m] for c, li, m in ff.calls],
                    "locks": [{
                        "kind": a.kind, "var": a.var, "mutex": a.expr,
                        "id": lock_id(a.expr, ff),
                        "line": a.line + 1, "scope_end": a.scope_end + 1,
                    } for a in ff.locks],
                    "throw_lines": [li + 1 for li in ff.throw_lines],
                    "blocking": [[k, s, li + 1]
                                 for k, s, li, _ in ff.blocking],
                    "omp_regions": [[s + 1, e + 1]
                                    for s, e in ff.omp_regions],
                    "thread_sites": [[li + 1, recv,
                                      [c for c, _ in callees]]
                                     for li, recv, callees
                                     in ff.thread_sites],
                    "collectives": [[k, li + 1]
                                    for k, li in ff.collectives],
                    "allocs": [[k, li + 1] for k, li in ff.allocs],
                    "branches": [{
                        "cond": b.cond, "line": b.line + 1,
                        "then": [b.then_ext[0] + 1, b.then_ext[1] + 1],
                        "else": (None if b.else_ext is None else
                                 [b.else_ext[0] + 1, b.else_ext[1] + 1]),
                        "exit_then": b.exit_then,
                        "exit_else": b.exit_else,
                    } for b in ff.branches],
                    "loops": [[s + 1, e + 1] for s, e in ff.loops],
                    "rng_defs": {var: {"origin": o, "from": src,
                                       "line": li + 1}
                                 for var, (o, src, li)
                                 in sorted(ff.rng_defs.items())},
                    "rng_draws": [[var, meth, li + 1]
                                  for var, meth, li in ff.rng_draws],
                    "rng_pass": [[callee, var, li + 1]
                                 for callee, var, li, _m in ff.rng_pass],
                } for ff in fx.functions],
            }
        return json.dumps({
            "schema": "trkx-facts-v2",
            "barrier_names": sorted(self.barrier_names),
            "thread_vector_members": sorted(self.thread_vec_names),
            "hot_roots": sorted(self.hot_roots),
            "files": files,
        }, indent=1, sort_keys=True)


def lock_id(expr, ff):
    """Canonical cross-TU identity for a mutex expression.

    Members (trailing underscore) are qualified by the enclosing class —
    the same class's methods in .hpp and .cpp agree. ``g_``-prefixed
    globals are project-global by name. Everything else (locals, fields
    of local structs) is file-scoped, which under-approximates aliasing
    across files but keeps false cycles out."""
    e = expr.strip().replace("this->", "")
    m = re.search(r"([A-Za-z_]\w*)\s*$", e)
    name = m.group(1) if m else e
    if name.startswith("g_"):
        return name
    if name.endswith("_") and ff.cls:
        return f"{ff.cls}::{name}"
    return f"{ff.file}::{name}"
