#!/usr/bin/env python3
"""Validate a trkx CI-matrix summary JSON (scripts/ci_matrix.sh output).

Usage:
    check_ci_summary.py SUMMARY.json [--require-configs a,b]
                        [--require-overall pass]

Expected shape (schema v6; v5/v4/v3/v2 artifacts are still accepted):

    {"schema": "trkx-ci-summary-v6",
     "jobs": <int>,
     "configs": [{"name": "<config>", "status": "pass"|"fail",
                  "seconds": <number>, "detail": "<string>",
                  "findings": <non-negative int, optional>,
                  "findings_by_pass": {"<pass>": <int>, ...} optional,
                  "regressions": <non-negative int, optional>,
                  "verdicts": {"<bench>": "pass"|"fail", ...} optional,
                  "counters": {"serve.accepted": <int>, ...} optional},
                 ...],
     "overall": "pass"|"fail"}

v2 added the optional per-config "findings" count (the static-analysis
legs report how many analyzer findings they saw; 0 on a clean tree).
v3 adds the perf leg's optional "regressions" count and per-bench
"verdicts" map (scripts/check_regression.py --report output).
v4 adds the analyze leg's optional "findings_by_pass" map: one
non-negative count per trkx-analyze pass (per-file and cross-TU), so a
new noisy pass is visible in the summary, not just the total.
v5 requires the analyze config's "findings_by_pass" (when present) to
cover the phase-3 dataflow passes (collective-consistency, hot-path,
rng-stream) — a summary claiming v5 can't silently drop them from the
pass roster.
v6 adds the serve leg's "counters" map (the serve.* failure-mode
accounting printed by trkx-serve); a v6 serve config must carry it and
it must cover the admission/retry counters, so a summary claiming v6
can't drop the serving contract.

Mirrors scripts/check_bench_json.py: schema violations are listed one per
line and the exit code gates CI. --require-configs pins which matrix legs
must be present; --require-overall fails validation unless the overall
status matches.
"""

import argparse
import json
import sys

SCHEMAS = ("trkx-ci-summary-v6", "trkx-ci-summary-v5", "trkx-ci-summary-v4",
           "trkx-ci-summary-v3", "trkx-ci-summary-v2")

# Passes a v5 analyze leg's findings_by_pass must cover (the phase-3
# dataflow passes introduced alongside the v5 schema bump).
V5_ANALYZE_PASSES = ("collective-consistency", "hot-path", "rng-stream")
# v5 requirements carry into v6 and later.
V5_SCHEMAS = ("trkx-ci-summary-v6", "trkx-ci-summary-v5")

# Counters a v6 serve leg must report (the serving failure-mode contract).
V6_SERVE_COUNTERS = ("serve.accepted", "serve.completed",
                     "serve.rejected.queue_full", "serve.retry")


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("artifact", help="path to summary JSON")
    parser.add_argument(
        "--require-configs",
        default="",
        help="comma-separated config names that must be present",
    )
    parser.add_argument(
        "--require-overall",
        default="",
        choices=["", "pass", "fail"],
        help="fail validation unless overall matches",
    )
    args = parser.parse_args()

    errors = []
    try:
        with open(args.artifact, encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as exc:
        print(f"error: cannot parse {args.artifact}: {exc}", file=sys.stderr)
        return 1

    if not isinstance(doc, dict):
        errors.append("top level is not an object")
        doc = {}
    if doc.get("schema") not in SCHEMAS:
        errors.append(
            f'"schema" must be one of {list(SCHEMAS)}, '
            f'got {doc.get("schema")!r}'
        )
    if not isinstance(doc.get("jobs"), int) or doc.get("jobs", 0) < 1:
        errors.append('"jobs" must be a positive integer')

    configs = doc.get("configs")
    if not isinstance(configs, list) or not configs:
        errors.append('"configs" must be a non-empty list')
        configs = []
    seen = set()
    any_fail = False
    for i, c in enumerate(configs):
        where = f"configs[{i}]"
        if not isinstance(c, dict):
            errors.append(f"{where} is not an object")
            continue
        name = c.get("name")
        if not isinstance(name, str) or not name:
            errors.append(f'{where}: "name" must be a non-empty string')
        else:
            where = f"configs[{i}] ({name})"
            if name in seen:
                errors.append(f"{where}: duplicate config name")
            seen.add(name)
        status = c.get("status")
        if status not in ("pass", "fail"):
            errors.append(f'{where}: "status" must be "pass" or "fail"')
        any_fail = any_fail or status == "fail"
        if not isinstance(c.get("seconds"), (int, float)):
            errors.append(f'{where}: "seconds" must be a number')
        if not isinstance(c.get("detail"), str):
            errors.append(f'{where}: "detail" must be a string')
        for key in ("findings", "regressions"):
            value = c.get(key)
            if value is not None and (
                not isinstance(value, int)
                or isinstance(value, bool)
                or value < 0
            ):
                errors.append(
                    f'{where}: {key!r} must be a non-negative integer '
                    "when present"
                )
        by_pass = c.get("findings_by_pass")
        if by_pass is not None:
            if not isinstance(by_pass, dict) or not by_pass:
                errors.append(
                    f'{where}: "findings_by_pass" must be a non-empty '
                    "object when present"
                )
            else:
                for pass_name, n in by_pass.items():
                    if (not isinstance(n, int) or isinstance(n, bool)
                            or n < 0):
                        errors.append(
                            f"{where}: findings_by_pass[{pass_name!r}] "
                            "must be a non-negative integer"
                        )
                if (doc.get("schema") in V5_SCHEMAS
                        and name == "analyze"):
                    for required in V5_ANALYZE_PASSES:
                        if required not in by_pass:
                            errors.append(
                                f"{where}: v5 findings_by_pass must "
                                f"include the {required!r} pass"
                            )
        serve_counters = c.get("counters")
        if serve_counters is not None:
            if not isinstance(serve_counters, dict):
                errors.append(f'{where}: "counters" must be an object')
                serve_counters = {}
            for counter, n in serve_counters.items():
                if not isinstance(n, int) or isinstance(n, bool) or n < 0:
                    errors.append(
                        f"{where}: counters[{counter!r}] must be a "
                        "non-negative integer"
                    )
        if doc.get("schema") == "trkx-ci-summary-v6" and name == "serve":
            if serve_counters is None:
                errors.append(
                    f'{where}: a v6 serve config must carry "counters"'
                )
            else:
                for required in V6_SERVE_COUNTERS:
                    if required not in serve_counters:
                        errors.append(
                            f"{where}: v6 serve counters must include "
                            f"{required!r}"
                        )
        verdicts = c.get("verdicts")
        if verdicts is not None:
            if not isinstance(verdicts, dict):
                errors.append(f'{where}: "verdicts" must be an object')
            else:
                for bench, verdict in verdicts.items():
                    if verdict not in ("pass", "fail"):
                        errors.append(
                            f'{where}: verdict for {bench!r} must be '
                            '"pass" or "fail"'
                        )

    overall = doc.get("overall")
    if overall not in ("pass", "fail"):
        errors.append('"overall" must be "pass" or "fail"')
    elif (overall == "pass") == any_fail:
        errors.append(
            f'"overall" is {overall!r} but config statuses say '
            f'{"fail" if any_fail else "pass"}'
        )
    if args.require_overall and overall != args.require_overall:
        errors.append(
            f'"overall" is {overall!r}, required {args.require_overall!r}'
        )
    for name in [n for n in args.require_configs.split(",") if n]:
        if name not in seen:
            errors.append(f"missing required config {name!r}")

    for e in errors:
        print(f"error: {e}", file=sys.stderr)
    if not errors:
        print(f"{args.artifact}: OK ({len(configs)} configs, {overall})")
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main())
