// Distributed data-parallel GNN training on simulated ranks.
//
//   ./distributed_training [--ranks 4] [--scale 0.06] [--epochs 3]
//       [--trace-out trace.json] [--metrics-out metrics.json]
//
// Trains the Interaction GNN with ShaDow minibatches sharded across P
// thread-backed ranks (the stand-in for one-process-per-GPU DDP), once
// with per-tensor all-reduce and once with the paper's coalesced
// all-reduce, and prints the communication statistics side by side.
// On this machine ranks share one CPU, so wall-clock numbers show
// correctness overheads only; the modelled column projects the α–β cost
// of the same call pattern on NVLink-class hardware (paper Section IV-A).

#include <cstdio>

#include "detector/presets.hpp"
#include "obs/report.hpp"
#include "pipeline/gnn_train.hpp"
#include "util/cli.hpp"

using namespace trkx;

int main(int argc, char** argv) {
  ArgParser args(argc, argv);
  ObsExport obs(args);  // --trace-out / --metrics-out
  const int ranks = args.get_int("ranks", 4);
  const double scale = args.get_double("scale", 0.06);
  const std::size_t epochs = static_cast<std::size_t>(args.get_int("epochs", 3));

  DatasetSpec spec = ex3_spec(scale);
  Dataset data =
      generate_dataset(spec.name, spec.detector, /*train=*/4, 1, 0, 33);

  IgnnConfig gnn;
  gnn.node_input_dim = spec.detector.node_feature_dim;
  gnn.edge_input_dim = spec.detector.edge_feature_dim;
  gnn.hidden_dim = 64;  // paper hidden dim → realistic parameter count
  gnn.num_layers = 4;
  gnn.mlp_hidden = 1;

  GnnTrainConfig cfg;
  cfg.epochs = epochs;
  cfg.batch_size = 256;
  cfg.shadow = {.depth = 2, .fanout = 4};
  cfg.bulk_k = 4;
  cfg.seed = 5;

  std::printf("model: %zu parameter matrices, %zu floats total\n",
              GnnModel(gnn, cfg.seed).store.count(),
              GnnModel(gnn, cfg.seed).store.total_size());

  for (SyncStrategy sync :
       {SyncStrategy::kPerTensor, SyncStrategy::kCoalesced}) {
    cfg.sync = sync;
    GnnModel model(gnn, cfg.seed);
    DistRuntime runtime(ranks);
    TrainResult result = train_shadow_ddp(model, data.train, data.val, cfg,
                                          runtime, SamplerKind::kMatrixBulk);
    const char* name =
        sync == SyncStrategy::kPerTensor ? "per-tensor" : "coalesced ";
    std::printf(
        "\n[%s] P=%d  final val P %.4f R %.4f\n", name, ranks,
        result.last().val.precision(), result.last().val.recall());
    std::printf("  all-reduce calls      %zu\n", result.comm.all_reduce_calls);
    std::printf("  all-reduce bytes      %.1f MB\n",
                result.comm.all_reduce_bytes / 1e6);
    std::printf("  measured comm time    %.3f s (threads on one CPU)\n",
                result.comm.measured_seconds);
    std::printf("  modelled NVLink time  %.4f s (alpha-beta ring model)\n",
                result.comm.modeled_seconds);
    std::printf("  epoch wall times     ");
    for (const auto& e : result.epochs) std::printf(" %.2fs", e.wall_seconds);
    std::printf("\n");
  }
  std::printf(
      "\nThe coalesced strategy issues one all-reduce per step instead of "
      "one per\nparameter matrix: same bytes, a fraction of the latency "
      "terms.\n");
  return 0;
}
