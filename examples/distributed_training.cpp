// Distributed data-parallel GNN training on simulated ranks.
//
//   ./distributed_training [--ranks 4] [--scale 0.06] [--epochs 3]
//       [--trace-out trace.json] [--metrics-out metrics.json]
//       [--checkpoint-dir DIR] [--resume] [--comm-timeout-ms MS]
//
// Trains the Interaction GNN with ShaDow minibatches sharded across P
// thread-backed ranks (the stand-in for one-process-per-GPU DDP), once
// with per-tensor all-reduce and once with the paper's coalesced
// all-reduce, and prints the communication statistics side by side.
// On this machine ranks share one CPU, so wall-clock numbers show
// correctness overheads only; the modelled column projects the α–β cost
// of the same call pattern on NVLink-class hardware (paper Section IV-A).
//
// Fault-tolerant mode: with --checkpoint-dir only the coalesced strategy
// runs (one run owns the checkpoint directory) and a resumable checkpoint
// is written every epoch. --comm-timeout-ms bounds every collective: if a
// rank dies (e.g. a TRKX_FAULTS rank-kill spec), the survivors observe
// CommTimeoutError instead of deadlocking, write an emergency checkpoint,
// and the process exits nonzero — rerun with --resume to continue.

#include <cstdio>

#include "detector/presets.hpp"
#include "obs/report.hpp"
#include "pipeline/gnn_train.hpp"
#include "util/cli.hpp"
#include "util/error.hpp"
#include "util/fault.hpp"

using namespace trkx;

int main(int argc, char** argv) {
  ArgParser args(argc, argv);
  ObsExport obs(args);  // --trace-out / --metrics-out
  fault::Registry::global().arm_from_env();  // TRKX_FAULTS chaos specs
  const int ranks = args.get_int("ranks", 4);
  const double scale = args.get_double("scale", 0.06);
  const std::size_t epochs = static_cast<std::size_t>(args.get_int("epochs", 3));
  const std::string checkpoint_dir = args.get("checkpoint-dir", "");
  // -1 defers to the TRKX_COMM_TIMEOUT_MS environment variable; 0 = none.
  const double comm_timeout_seconds =
      args.get_double("comm-timeout-ms", -1.0) / 1000.0;

  DatasetSpec spec = ex3_spec(scale);
  Dataset data =
      generate_dataset(spec.name, spec.detector, /*train=*/4, 1, 0, 33);

  IgnnConfig gnn;
  gnn.node_input_dim = spec.detector.node_feature_dim;
  gnn.edge_input_dim = spec.detector.edge_feature_dim;
  gnn.hidden_dim = 64;  // paper hidden dim → realistic parameter count
  gnn.num_layers = 4;
  gnn.mlp_hidden = 1;

  GnnTrainConfig cfg;
  cfg.epochs = epochs;
  cfg.batch_size = 256;
  cfg.shadow = {.depth = 2, .fanout = 4};
  cfg.bulk_k = 4;
  cfg.seed = 5;
  cfg.checkpoint_dir = checkpoint_dir;
  cfg.resume = args.get_bool("resume", false);

  std::printf("model: %zu parameter matrices, %zu floats total\n",
              GnnModel(gnn, cfg.seed).store.count(),
              GnnModel(gnn, cfg.seed).store.total_size());

  // One strategy owns a checkpoint directory (the fingerprint covers the
  // sync strategy), so fault-tolerant mode runs coalesced only.
  std::vector<SyncStrategy> strategies;
  if (checkpoint_dir.empty()) {
    strategies = {SyncStrategy::kPerTensor, SyncStrategy::kCoalesced};
  } else {
    strategies = {SyncStrategy::kCoalesced};
    std::printf("fault-tolerant mode: coalesced only, checkpoints in %s%s\n",
                checkpoint_dir.c_str(), cfg.resume ? " (resuming)" : "");
  }

  try {
    for (SyncStrategy sync : strategies) {
      cfg.sync = sync;
      GnnModel model(gnn, cfg.seed);
      DistRuntime runtime(ranks, {}, comm_timeout_seconds);
      TrainResult result = train_shadow_ddp(model, data.train, data.val, cfg,
                                            runtime,
                                            SamplerKind::kMatrixBulk);
      const char* name =
          sync == SyncStrategy::kPerTensor ? "per-tensor" : "coalesced ";
      std::printf(
          "\n[%s] P=%d  final val P %.4f R %.4f\n", name, ranks,
          result.last().val.precision(), result.last().val.recall());
      std::printf("  all-reduce calls      %zu\n",
                  result.comm.all_reduce_calls);
      std::printf("  all-reduce bytes      %.1f MB\n",
                  result.comm.all_reduce_bytes / 1e6);
      std::printf("  measured comm time    %.3f s (threads on one CPU)\n",
                  result.comm.measured_seconds);
      std::printf("  modelled NVLink time  %.4f s (alpha-beta ring model)\n",
                  result.comm.modeled_seconds);
      std::printf("  epoch wall times     ");
      for (const auto& e : result.epochs)
        std::printf(" %.2fs", e.wall_seconds);
      std::printf("\n");
    }
  } catch (const Error& e) {
    // A dead rank or collective timeout unwinds every rank cleanly; the
    // survivors have already flushed an emergency checkpoint, so the run
    // is resumable with --resume.
    std::fprintf(stderr, "fatal: %s\n", e.what());
    return 1;
  }
  if (checkpoint_dir.empty()) {
    std::printf(
        "\nThe coalesced strategy issues one all-reduce per step instead of "
        "one per\nparameter matrix: same bytes, a fraction of the latency "
        "terms.\n");
  }
  return 0;
}
