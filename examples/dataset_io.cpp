// Dataset tooling: generate → persist → reload → analyse.
//
//   ./dataset_io [--out /tmp/trkx_ex3.bin] [--scale 0.05] [--events 6]
//
// Generates an Ex3-like dataset, writes it to a binary file, reads it
// back, verifies the round trip, prints summary statistics, and exports
// the first event as analysis CSVs (hits + labelled edges with the scores
// of a briefly-trained GNN). This mirrors the workflow of working with
// the paper's on-disk event files.

#include <cstdio>

#include "detector/presets.hpp"
#include "io/event_io.hpp"
#include "io/trackml.hpp"
#include "pipeline/evaluation.hpp"
#include "util/cli.hpp"

using namespace trkx;

int main(int argc, char** argv) {
  ArgParser args(argc, argv);
  const std::string out = args.get("out", "/tmp/trkx_ex3.bin");
  const double scale = args.get_double("scale", 0.05);
  const std::size_t n = static_cast<std::size_t>(args.get_int("events", 6));

  DatasetSpec spec = ex3_spec(scale);
  Dataset data = generate_dataset(spec.name, spec.detector, n, 1, 0, 101);

  save_events(out, data.train);
  std::printf("wrote %zu events to %s\n", data.train.size(), out.c_str());

  const auto loaded = load_events(out);
  std::printf("reloaded %zu events\n", loaded.size());
  bool identical = loaded.size() == data.train.size();
  for (std::size_t i = 0; identical && i < loaded.size(); ++i)
    identical = loaded[i].node_features == data.train[i].node_features &&
                loaded[i].edge_labels == data.train[i].edge_labels;
  std::printf("round trip identical: %s\n", identical ? "yes" : "NO");

  std::printf("\nper-event summary:\n%-7s %-9s %-9s %-11s %-9s\n", "event",
              "hits", "edges", "pos-frac", "tracks");
  for (std::size_t i = 0; i < loaded.size(); ++i) {
    std::size_t reconstructable = 0;
    for (const TruthParticle& p : loaded[i].particles)
      reconstructable += (p.hits.size() >= 3);
    std::printf("%-7zu %-9zu %-9zu %-11.4f %-9zu\n", i, loaded[i].num_hits(),
                loaded[i].num_edges(), loaded[i].positive_edge_fraction(),
                reconstructable);
  }

  // Quick GNN so the exported edge CSV carries meaningful scores.
  IgnnConfig gnn;
  gnn.node_input_dim = spec.detector.node_feature_dim;
  gnn.edge_input_dim = spec.detector.edge_feature_dim;
  gnn.hidden_dim = 16;
  gnn.num_layers = 2;
  gnn.mlp_hidden = 1;
  GnnModel model(gnn, 7);
  GnnTrainConfig tc;
  tc.epochs = 2;
  tc.batch_size = 128;
  tc.shadow = {.depth = 2, .fanout = 4};
  tc.evaluate_every_epoch = false;
  train_shadow(model, loaded, data.val, tc, SamplerKind::kMatrixBulk);

  const Event& first = loaded.front();
  const auto scores =
      model.gnn->predict(first.node_features, first.edge_features, first.graph);
  export_event_csv("/tmp/trkx_event0", first, scores);
  std::printf(
      "\nexported /tmp/trkx_event0_hits.csv and /tmp/trkx_event0_edges.csv\n");

  // TrackML round trip: write the event in challenge format and ingest it
  // back through the external-data path (candidate graph rebuilt from the
  // CSV hits + truth).
  write_trackml_event("/tmp/trkx_tml_event0", first);
  TrackmlReadOptions tml;
  tml.graph_config = spec.detector;
  const Event reread = read_trackml_event("/tmp/trkx_tml_event0", tml);
  std::printf("TrackML round trip: %zu hits -> %zu hits, %zu particles, "
              "%zu candidate edges (pos frac %.3f)\n",
              first.num_hits(), reread.num_hits(), reread.particles.size(),
              reread.num_edges(), reread.positive_edge_fraction());
  std::printf("edge-score AUC on that event: %.4f\n", [&] {
    ScoredEdges se;
    for (std::size_t e = 0; e < scores.size(); ++e)
      se.add(scores[e], first.edge_labels[e] != 0);
    return roc_auc(se);
  }());
  return 0;
}
