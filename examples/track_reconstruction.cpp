// End-to-end track reconstruction on an Ex3-like dataset.
//
//   ./track_reconstruction [--scale 0.08] [--train 8] [--epochs 5]
//                          [--save model.bin] [--load model.bin]
//                          [--deadline-ms 0]
//
// Trains every pipeline stage on synthetic Ex3-like events (the sparse
// dataset of the paper's Table I, scaled for CPU), evaluates track-level
// physics metrics on held-out events, and optionally round-trips the GNN
// weights through disk.
//
// With --deadline-ms N the test events run through the serving layer
// (src/serve) with a per-event wall-clock budget: an event that blows the
// budget fails with a *typed* DeadlineExceededError and the program exits
// with code 2 and a readable message — not an unchecked exception.

#include <cstdio>
#include <fstream>
#include <future>
#include <memory>
#include <vector>

#include "detector/presets.hpp"
#include "pipeline/pipeline.hpp"
#include "pipeline/track_fit.hpp"
#include "serve/server.hpp"
#include "util/cli.hpp"
#include "util/log.hpp"

using namespace trkx;

namespace {

/// Serve-mode evaluation: each test event becomes one request with a
/// per-request deadline. Returns the process exit code.
int run_with_deadline(std::unique_ptr<TrackingPipeline> pipeline,
                      const PipelineConfig& cfg, const DatasetSpec& spec,
                      const std::vector<Event>& test, std::size_t node_dim,
                      std::size_t edge_dim, long deadline_ms) {
  serve::ServeConfig serve_cfg;
  serve_cfg.workers = 1;
  serve_cfg.queue_depth = test.size() + 1;
  serve_cfg.default_deadline_ms = deadline_ms;
  serve_cfg.b_field_tesla = spec.detector.b_field;
  serve::ReplicaSet replicas(node_dim, edge_dim, cfg);
  replicas.install(std::move(pipeline), "example");
  serve::ServeServer server(replicas, serve_cfg);
  server.start();

  std::printf("\ntest-set reconstruction (deadline %ld ms/event):\n",
              deadline_ms);
  std::vector<std::future<serve::ServeResult>> futures;
  futures.reserve(test.size());
  for (const Event& event : test)
    futures.push_back(server.submit(event, serve::Priority::kNormal));
  int exit_code = 0;
  for (std::future<serve::ServeResult>& f : futures) {
    try {
      const serve::ServeResult r = f.get();
      std::printf("  event: %4zu candidates, %4zu fits, %.1f ms\n",
                  r.tracks.size(), r.fits.size(), r.total_seconds() * 1e3);
    } catch (const serve::DeadlineExceededError& e) {
      std::printf("  event: DEADLINE EXCEEDED — %s\n", e.what());
      exit_code = 2;  // typed failure, reported and mapped to an exit code
    }
  }
  server.stop();
  return exit_code;
}

}  // namespace

int main(int argc, char** argv) {
  ArgParser args(argc, argv);
  const double scale = args.get_double("scale", 0.08);
  const std::size_t n_train = static_cast<std::size_t>(args.get_int("train", 8));
  const std::size_t epochs = static_cast<std::size_t>(args.get_int("epochs", 5));
  const std::uint64_t seed = static_cast<std::uint64_t>(args.get_int("seed", 11));
  const long deadline_ms = args.get_int("deadline-ms", 0);

  DatasetSpec spec = ex3_spec(scale);
  Dataset data = generate_dataset(spec.name, spec.detector, n_train, 2, 2, seed);
  std::printf("dataset %s (scale %.3f): avg %.0f vertices, %.0f edges\n",
              spec.name.c_str(), scale, data.avg_vertices(), data.avg_edges());

  PipelineConfig cfg;
  cfg.embedding.epochs = 5;
  cfg.filter.epochs = 4;
  cfg.gnn.hidden_dim = 32;
  cfg.gnn.num_layers = 4;
  cfg.gnn.mlp_hidden = spec.mlp_hidden_layers - 1;  // Table I MLP depth
  cfg.gnn_train.epochs = epochs;
  cfg.gnn_train.batch_size = 256;
  cfg.gnn_train.shadow = {.depth = 3, .fanout = 6};  // paper hyperparams
  cfg.gnn_train.bulk_k = 4;
  cfg.gnn_train.keep_best_weights = true;  // model selection on val F1
  cfg.use_learned_graphs = false;

  auto pipeline = std::make_unique<TrackingPipeline>(
      spec.detector.node_feature_dim, spec.detector.edge_feature_dim, cfg);

  if (args.has("load")) {
    std::ifstream is(args.get("load", ""), std::ios::binary);
    TRKX_CHECK_MSG(is.good(), "cannot open model file");
    pipeline->gnn().store.load(is);
    std::printf("loaded GNN weights from %s\n", args.get("load", "").c_str());
  } else {
    TrainResult fit = pipeline->fit(data.train, data.val);
    std::printf("\nper-epoch validation metrics:\n");
    std::printf("%-8s %-10s %-10s %-10s\n", "epoch", "loss", "precision",
                "recall");
    for (std::size_t e = 0; e < fit.epochs.size(); ++e)
      std::printf("%-8zu %-10.4f %-10.4f %-10.4f\n", e,
                  fit.epochs[e].train_loss, fit.epochs[e].val.precision(),
                  fit.epochs[e].val.recall());
  }

  if (args.has("save")) {
    std::ofstream os(args.get("save", ""), std::ios::binary);
    pipeline->gnn().store.save(os);
    std::printf("saved GNN weights to %s\n", args.get("save", "").c_str());
  }

  if (deadline_ms > 0) {
    return run_with_deadline(std::move(pipeline), cfg, spec, data.test,
                             spec.detector.node_feature_dim,
                             spec.detector.edge_feature_dim, deadline_ms);
  }

  std::printf("\ntest-set reconstruction:\n");
  TrackingMetrics total;
  BinaryMetrics edge_total;
  FitResolution fits;
  std::size_t fit_events = 0;
  for (const Event& event : data.test) {
    PipelineOutput out = pipeline->reconstruct(event);
    total.merge(out.metrics);
    edge_total.merge(out.edge_metrics);
    // Fit helix parameters to the matched candidates and accumulate the
    // physics resolutions (stage beyond the paper: parameter estimation).
    const FitResolution res =
        evaluate_fits(event, out.tracks, spec.detector.b_field);
    fits.fitted += res.fitted;
    fits.failed += res.failed;
    fits.pt_resolution += res.pt_resolution;
    fits.z0_resolution += res.z0_resolution;
    fits.charge_correct_fraction += res.charge_correct_fraction;
    ++fit_events;
    std::printf("  event: %4zu candidates, efficiency %.3f, fake rate %.3f\n",
                out.tracks.size(), out.metrics.efficiency(),
                out.metrics.fake_rate());
  }
  std::printf("\noverall: efficiency %.3f  fake rate %.3f  "
              "edge precision %.3f  edge recall %.3f\n",
              total.efficiency(), total.fake_rate(), edge_total.precision(),
              edge_total.recall());
  if (fit_events > 0 && fits.fitted > 0) {
    const double n = static_cast<double>(fit_events);
    std::printf("track fits: %zu fitted, pt resolution %.1f%%, z0 "
                "resolution %.2f mm, charge correct %.1f%%\n",
                fits.fitted, 100.0 * fits.pt_resolution / n,
                fits.z0_resolution / n,
                100.0 * fits.charge_correct_fraction / n);
  }
  return 0;
}
