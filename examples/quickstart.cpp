// Quickstart: run the five-stage Exa.TrkX-style tracking pipeline on one
// synthetic collision event.
//
//   ./quickstart [--particles 40] [--epochs 2] [--seed 7]
//
// The example trains a small pipeline on a handful of events, then
// reconstructs an unseen event and prints the candidate tracks next to the
// truth. Runtime is a few seconds.

#include <cstdio>

#include "pipeline/pipeline.hpp"
#include "util/cli.hpp"
#include "util/log.hpp"

using namespace trkx;

int main(int argc, char** argv) {
  ArgParser args(argc, argv);
  const double particles = args.get_double("particles", 40.0);
  const std::size_t epochs = static_cast<std::size_t>(args.get_int("epochs", 2));
  const std::uint64_t seed = static_cast<std::uint64_t>(args.get_int("seed", 7));

  // 1. Simulate a small detector dataset: helical tracks through ten
  //    barrel layers (plus forward endcap disks with --endcaps), hit
  //    smearing, noise, candidate-edge graphs, truth.
  DetectorConfig detector;
  detector.mean_particles = particles;
  if (args.get_bool("endcaps", false)) {
    detector.barrel_half_length = 1200.0;
    detector.endcap_z = {1300, 1600, 1900};
    detector.eta_max = 3.5;
  }
  Dataset data = generate_dataset("quickstart", detector, /*train=*/4,
                                  /*val=*/1, /*test=*/1, seed);

  // 2. Configure the pipeline: embedding MLP → FRNN graph → filter MLP →
  //    Interaction GNN (ShaDow minibatch training) → track building.
  PipelineConfig cfg;
  cfg.embedding.epochs = 4;
  cfg.filter.epochs = 3;
  cfg.gnn.hidden_dim = 32;
  cfg.gnn.num_layers = 3;
  cfg.gnn.mlp_hidden = 1;
  cfg.gnn_train.epochs = epochs;
  cfg.gnn_train.batch_size = 128;
  cfg.gnn_train.shadow = {.depth = 2, .fanout = 4};
  cfg.use_learned_graphs = false;  // train the GNN on the candidate graphs

  TrackingPipeline pipeline(detector.node_feature_dim,
                            detector.edge_feature_dim, cfg);

  std::printf("training pipeline on %zu events...\n", data.train.size());
  TrainResult fit = pipeline.fit(data.train, data.val);
  std::printf("GNN val precision %.3f  recall %.3f after %zu epochs\n",
              fit.last().val.precision(), fit.last().val.recall(),
              fit.epochs.size());

  // 3. Reconstruct an unseen event.
  const Event& event = data.test[0];
  PipelineOutput out = pipeline.reconstruct(event);
  std::printf("\nevent: %zu hits, %zu candidate edges, %zu true particles\n",
              event.num_hits(), event.num_edges(), event.particles.size());
  std::printf("reconstructed %zu track candidates\n", out.tracks.size());
  std::printf("  efficiency  %.3f  (%zu / %zu reconstructable particles)\n",
              out.metrics.efficiency(), out.metrics.matched,
              out.metrics.reconstructable);
  std::printf("  fake rate   %.3f\n", out.metrics.fake_rate());
  std::printf("  edge P/R    %.3f / %.3f\n", out.edge_metrics.precision(),
              out.edge_metrics.recall());

  std::printf("\nfirst candidates (hit chains):\n");
  for (std::size_t i = 0; i < std::min<std::size_t>(5, out.tracks.size());
       ++i) {
    const TrackCandidate& t = out.tracks[i];
    std::printf("  #%zu [%zu hits, matched particle %d, purity %.2f]:",
                i, t.hits.size(), t.matched_particle, t.majority_fraction);
    for (std::uint32_t h : t.hits) std::printf(" %u", h);
    std::printf("\n");
  }
  return 0;
}
