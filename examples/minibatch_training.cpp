// The paper's core comparison (Figure 4, scaled down): train the same
// Interaction GNN three ways on Ex3-like events and print the per-epoch
// validation precision/recall curves:
//
//   full-graph  — the original Exa.TrkX regime (one step per event graph)
//   shadow-ref  — ShaDow minibatch sampling, reference per-batch sampler
//   shadow-bulk — ShaDow with matrix-based bulk sampling (this paper)
//
//   ./minibatch_training [--scale 0.08] [--epochs 8] [--batch 256]
//       [--trace-out trace.json] [--metrics-out metrics.json]

#include <cstdio>

#include "detector/presets.hpp"
#include "obs/report.hpp"
#include "pipeline/gnn_train.hpp"
#include "util/cli.hpp"

using namespace trkx;

int main(int argc, char** argv) {
  ArgParser args(argc, argv);
  ObsExport obs(args);  // --trace-out / --metrics-out
  const double scale = args.get_double("scale", 0.08);
  const std::size_t epochs = static_cast<std::size_t>(args.get_int("epochs", 8));
  const std::size_t batch = static_cast<std::size_t>(args.get_int("batch", 256));

  DatasetSpec spec = ex3_spec(scale);
  Dataset data =
      generate_dataset(spec.name, spec.detector, /*train=*/6, 2, 0, 21);

  IgnnConfig gnn;
  gnn.node_input_dim = spec.detector.node_feature_dim;
  gnn.edge_input_dim = spec.detector.edge_feature_dim;
  gnn.hidden_dim = 32;
  gnn.num_layers = 4;
  gnn.mlp_hidden = spec.mlp_hidden_layers - 1;

  GnnTrainConfig cfg;
  cfg.epochs = epochs;
  cfg.batch_size = batch;
  cfg.shadow = {.depth = 3, .fanout = 6};
  cfg.bulk_k = 4;
  cfg.seed = 42;

  struct Run {
    const char* name;
    TrainResult result;
  };
  std::vector<Run> runs;

  {
    GnnModel model(gnn, cfg.seed);
    runs.push_back({"full-graph",
                    train_full_graph(model, data.train, data.val, cfg)});
  }
  {
    GnnModel model(gnn, cfg.seed);
    runs.push_back({"shadow-ref",
                    train_shadow(model, data.train, data.val, cfg,
                                 SamplerKind::kReference)});
  }
  {
    GnnModel model(gnn, cfg.seed);
    runs.push_back({"shadow-bulk",
                    train_shadow(model, data.train, data.val, cfg,
                                 SamplerKind::kMatrixBulk)});
  }

  std::printf("\nvalidation precision per epoch:\n%-8s", "epoch");
  for (const Run& r : runs) std::printf(" %-12s", r.name);
  std::printf("\n");
  for (std::size_t e = 0; e < epochs; ++e) {
    std::printf("%-8zu", e);
    for (const Run& r : runs)
      std::printf(" %-12.4f", r.result.epochs[e].val.precision());
    std::printf("\n");
  }
  std::printf("\nvalidation recall per epoch:\n%-8s", "epoch");
  for (const Run& r : runs) std::printf(" %-12s", r.name);
  std::printf("\n");
  for (std::size_t e = 0; e < epochs; ++e) {
    std::printf("%-8zu", e);
    for (const Run& r : runs)
      std::printf(" %-12.4f", r.result.epochs[e].val.recall());
    std::printf("\n");
  }

  std::printf("\ntotals:\n");
  for (const Run& r : runs) {
    std::printf("  %-12s %6.2fs total  (sample %5.2fs, train %5.2fs)  "
                "final P %.4f R %.4f\n",
                r.name, r.result.total_seconds,
                r.result.total_phase("sample"), r.result.total_phase("train"),
                r.result.last().val.precision(), r.result.last().val.recall());
  }
  return 0;
}
