// The paper's core comparison (Figure 4, scaled down): train the same
// Interaction GNN three ways on Ex3-like events and print the per-epoch
// validation precision/recall curves:
//
//   full-graph  — the original Exa.TrkX regime (one step per event graph)
//   shadow-ref  — ShaDow minibatch sampling, reference per-batch sampler
//   shadow-bulk — ShaDow with matrix-based bulk sampling (this paper)
//
//   ./minibatch_training [--scale 0.08] [--epochs 8] [--batch 256]
//       [--trace-out trace.json] [--metrics-out metrics.json]
//       [--event-cache events.bin] [--checkpoint-dir DIR] [--resume]
//       [--checkpoint-every N]
//
// Fault-tolerant mode: with --checkpoint-dir the example trains only the
// shadow-bulk configuration (one run owns the checkpoint directory),
// writing a resumable checkpoint every N epochs; --resume continues from
// the newest one bit-identically. --event-cache round-trips the generated
// events through the v2 on-disk container with the tolerant loader, so
// injected I/O faults (TRKX_FAULTS) demonstrate retry + quarantine.
// Faults armed via TRKX_FAULTS abort the run with a nonzero exit after
// the trainer has written its emergency checkpoint.

#include <cstdio>

#include "detector/presets.hpp"
#include "io/event_io.hpp"
#include "obs/report.hpp"
#include "pipeline/gnn_train.hpp"
#include "util/cli.hpp"
#include "util/error.hpp"
#include "util/fault.hpp"

using namespace trkx;

int main(int argc, char** argv) {
  ArgParser args(argc, argv);
  ObsExport obs(args);  // --trace-out / --metrics-out
  fault::Registry::global().arm_from_env();  // TRKX_FAULTS chaos specs
  const double scale = args.get_double("scale", 0.08);
  const std::size_t epochs = static_cast<std::size_t>(args.get_int("epochs", 8));
  const std::size_t batch = static_cast<std::size_t>(args.get_int("batch", 256));
  const std::string event_cache = args.get("event-cache", "");
  const std::string checkpoint_dir = args.get("checkpoint-dir", "");

  DatasetSpec spec = ex3_spec(scale);
  Dataset data =
      generate_dataset(spec.name, spec.detector, /*train=*/6, 2, 0, 21);

  IgnnConfig gnn;
  gnn.node_input_dim = spec.detector.node_feature_dim;
  gnn.edge_input_dim = spec.detector.edge_feature_dim;
  gnn.hidden_dim = 32;
  gnn.num_layers = 4;
  gnn.mlp_hidden = spec.mlp_hidden_layers - 1;

  GnnTrainConfig cfg;
  cfg.epochs = epochs;
  cfg.batch_size = batch;
  cfg.shadow = {.depth = 3, .fanout = 6};
  cfg.bulk_k = 4;
  cfg.seed = 42;
  cfg.checkpoint_dir = checkpoint_dir;
  cfg.checkpoint_every =
      static_cast<std::size_t>(args.get_int("checkpoint-every", 1));
  cfg.resume = args.get_bool("resume", false);

  try {
    if (!event_cache.empty()) {
      // Round-trip the training events through the on-disk container with
      // the degraded-mode loader: corrupt/faulted records are retried,
      // then quarantined, and training proceeds on the survivors.
      save_events(event_cache, data.train);
      TolerantLoadResult loaded = load_events_tolerant(event_cache);
      std::printf("event cache: %zu loaded, %zu quarantined, %zu retries\n",
                  loaded.events.size(), loaded.quarantined, loaded.retries);
      if (loaded.events.empty())
        throw IoError("event cache quarantined every record");
      data.train = std::move(loaded.events);
    }

    struct Run {
      const char* name;
      TrainResult result;
    };
    std::vector<Run> runs;

    if (checkpoint_dir.empty()) {
      GnnModel model(gnn, cfg.seed);
      runs.push_back({"full-graph",
                      train_full_graph(model, data.train, data.val, cfg)});
      GnnModel ref_model(gnn, cfg.seed);
      runs.push_back({"shadow-ref",
                      train_shadow(ref_model, data.train, data.val, cfg,
                                   SamplerKind::kReference)});
    } else {
      std::printf("fault-tolerant mode: shadow-bulk only, checkpoints in %s"
                  "%s\n",
                  checkpoint_dir.c_str(), cfg.resume ? " (resuming)" : "");
    }
    {
      GnnModel model(gnn, cfg.seed);
      runs.push_back({"shadow-bulk",
                      train_shadow(model, data.train, data.val, cfg,
                                   SamplerKind::kMatrixBulk)});
    }

    std::printf("\nvalidation precision per epoch:\n%-8s", "epoch");
    for (const Run& r : runs) std::printf(" %-12s", r.name);
    std::printf("\n");
    for (std::size_t e = 0; e < epochs; ++e) {
      std::printf("%-8zu", e);
      for (const Run& r : runs)
        std::printf(" %-12.4f", r.result.epochs[e].val.precision());
      std::printf("\n");
    }
    std::printf("\nvalidation recall per epoch:\n%-8s", "epoch");
    for (const Run& r : runs) std::printf(" %-12s", r.name);
    std::printf("\n");
    for (std::size_t e = 0; e < epochs; ++e) {
      std::printf("%-8zu", e);
      for (const Run& r : runs)
        std::printf(" %-12.4f", r.result.epochs[e].val.recall());
      std::printf("\n");
    }

    std::printf("\ntotals:\n");
    for (const Run& r : runs) {
      std::printf("  %-12s %6.2fs total  (sample %5.2fs, train %5.2fs)  "
                  "final P %.4f R %.4f\n",
                  r.name, r.result.total_seconds,
                  r.result.total_phase("sample"), r.result.total_phase("train"),
                  r.result.last().val.precision(),
                  r.result.last().val.recall());
    }
  } catch (const Error& e) {
    // Typed failures (injected faults, comm timeouts, quarantined-out
    // datasets) exit nonzero after the trainer has flushed any emergency
    // checkpoint — rerun with --resume to continue.
    std::fprintf(stderr, "fatal: %s\n", e.what());
    return 1;
  }
  return 0;
}
