// Serving-path load test: offered-load sweep against the src/serve
// inference server, including past saturation — the robustness claim is
// not "the server is fast" but "the accepted-request p99 stays bounded
// when the offered load is 2x what the workers can drain", because the
// bounded admission queue and the degradation ladder shed the excess
// instead of queueing it.
//
//   ./bench_serving [--requests 48] [--mean-particles 8] [--workers 2]
//                   [--queue-depth 3] [--json-out serving.json]
//                   [--assert-p99-ratio 0]
//
// Phase 1 calibrates the per-event service time closed-loop (one request
// in flight), sizing the offered-load points at 0.5x / 1x / 2x the
// measured saturation throughput. Phase 2 replays each point open-loop:
// the submitter paces on the offered schedule and never blocks on
// completions, exactly like an upstream event stream. Accepted-request
// latency percentiles are measured submit-to-completion, so queueing
// delay is included; rejections (full queue) are counted, not timed.
//
// --assert-p99-ratio R turns the bench into a self-checking gate: exit 1
// unless p99(2x) <= R * p99(0.5x) — the ctest serving_bounded_p99 runs
// this at perf-smoke scale.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <future>
#include <memory>
#include <optional>
#include <thread>
#include <vector>

#include "bench_json.hpp"
#include "serve/server.hpp"
#include "util/cli.hpp"
#include "util/log.hpp"
#include "util/rng.hpp"

using namespace trkx;

namespace {

using Clock = std::chrono::steady_clock;

double pctl(std::vector<double> v, double p) {
  if (v.empty()) return 0.0;
  std::sort(v.begin(), v.end());
  const double idx = p * static_cast<double>(v.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(idx);
  const std::size_t hi = std::min(lo + 1, v.size() - 1);
  const double frac = idx - static_cast<double>(lo);
  return v[lo] + (v[hi] - v[lo]) * frac;
}

struct LoadPoint {
  double factor = 0.0;       ///< offered load / saturation throughput
  double offered_rps = 0.0;
  double wall_s = 0.0;
  double throughput_rps = 0.0;  ///< completed / wall
  double p50_ms = 0.0, p95_ms = 0.0, p99_ms = 0.0;
  std::uint64_t submitted = 0, rejected = 0, completed = 0, failed = 0;
};

LoadPoint run_point(serve::ServeServer& server,
                    const std::vector<Event>& payloads, double factor,
                    double offered_rps, int n_requests,
                    std::int64_t deadline_ms) {
  LoadPoint out;
  out.factor = factor;
  out.offered_rps = offered_rps;
  std::vector<std::optional<std::future<serve::ServeResult>>> futures(
      static_cast<std::size_t>(n_requests));
  const auto t0 = Clock::now();
  for (int i = 0; i < n_requests; ++i) {
    // Open-loop: pace on the offered schedule, never on completions.
    std::this_thread::sleep_until(
        t0 + std::chrono::duration_cast<Clock::duration>(
                 std::chrono::duration<double>(i / offered_rps)));
    const std::size_t idx = static_cast<std::size_t>(i);
    ++out.submitted;
    try {
      futures[idx] = server.submit(
          payloads[idx % payloads.size()], serve::Priority::kNormal,
          serve::Deadline::after_ms(deadline_ms));
    } catch (const Error&) {
      ++out.rejected;  // fast typed rejection is the success mode here
    }
  }
  std::vector<double> latencies_ms;
  latencies_ms.reserve(futures.size());
  for (std::size_t i = 0; i < futures.size(); ++i) {
    if (!futures[i].has_value()) continue;
    try {
      // latency_seconds is stamped by the worker at completion time, so
      // collecting futures in submission order cannot inflate the tail.
      const serve::ServeResult r = futures[i]->get();
      latencies_ms.push_back(r.latency_seconds * 1e3);
      ++out.completed;
    } catch (const Error&) {
      ++out.failed;  // deadline-abandoned under overload: typed, counted
    }
  }
  out.wall_s = std::chrono::duration<double>(Clock::now() - t0).count();
  out.throughput_rps =
      out.wall_s > 0.0 ? static_cast<double>(out.completed) / out.wall_s : 0.0;
  out.p50_ms = pctl(latencies_ms, 0.50);
  out.p95_ms = pctl(latencies_ms, 0.95);
  out.p99_ms = pctl(latencies_ms, 0.99);
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  set_log_level(LogLevel::kWarn);
  ArgParser args(argc, argv);
  const int n_requests = args.get_int("requests", 48);
  const double mean_particles = args.get_double("mean-particles", 8.0);
  const double assert_ratio = args.get_double("assert-p99-ratio", 0.0);

  // Fixture: tiny learned-graph pipeline, warm replica.
  DetectorConfig detector;
  detector.mean_particles = mean_particles;
  detector.noise_fraction = 0.05;
  Rng rng(17);
  std::vector<Event> train, payloads;
  for (int i = 0; i < 2; ++i) {
    Rng er = rng.split();
    train.push_back(generate_event(detector, er));
  }
  for (int i = 0; i < 4; ++i) {
    Rng er = rng.split();
    payloads.push_back(generate_event(detector, er));
  }
  PipelineConfig cfg;
  cfg.embedding.epochs = 2;
  cfg.frnn.radius = 0.6f;
  cfg.filter.epochs = 2;
  cfg.gnn.hidden_dim = 8;
  cfg.gnn.num_layers = 1;
  cfg.gnn.mlp_hidden = 1;
  cfg.gnn_train.epochs = 1;
  cfg.gnn_train.batch_size = 64;
  cfg.gnn_train.shadow = {.depth = 2, .fanout = 3};
  cfg.gnn_train.evaluate_every_epoch = false;
  cfg.use_learned_graphs = true;
  const std::size_t node_dim = train[0].node_features.cols();
  const std::size_t edge_dim = train[0].edge_features.cols();
  auto pipeline = std::make_unique<TrackingPipeline>(node_dim, edge_dim, cfg);
  pipeline->fit(train, {train.back()});

  serve::ReplicaSet replicas(node_dim, edge_dim, cfg);
  replicas.install(std::move(pipeline), "bench");

  serve::ServeConfig serve_cfg;
  serve_cfg.workers = args.get_int("workers", 2);
  serve_cfg.queue_depth =
      static_cast<std::size_t>(args.get_int("queue-depth", 3));
  serve_cfg.b_field_tesla = detector.b_field;
  serve::ServeServer server(replicas, serve_cfg);
  server.start();

  // Phase 1: closed-loop calibration — one request in flight, so the
  // median latency is the per-event service time.
  std::vector<double> calib_ms;
  for (int i = 0; i < 8; ++i) {
    const auto t0 = Clock::now();
    server.submit(payloads[static_cast<std::size_t>(i) % payloads.size()],
                  serve::Priority::kNormal)
        .get();
    calib_ms.push_back(
        std::chrono::duration<double, std::milli>(Clock::now() - t0).count());
  }
  const double service_ms = pctl(calib_ms, 0.5);
  const double saturation_rps =
      static_cast<double>(serve_cfg.workers) * 1e3 / service_ms;
  std::printf("calibration: service %.2f ms/event -> saturation %.1f req/s\n",
              service_ms, saturation_rps);

  BenchJsonWriter json("serving");
  std::printf("%-8s %-12s %-12s %-9s %-9s %-9s %-22s\n", "load", "offered/s",
              "completed/s", "p50[ms]", "p95[ms]", "p99[ms]",
              "acc/rej/fail");
  std::vector<LoadPoint> points;
  // The 0.5x point runs with a loose deadline (4x service); the measured
  // p99 there then sizes the overload points' deadline at 2x that p99.
  // This makes the 3x acceptance bound structural: an accepted overload
  // request can overshoot its deadline by at most one stage (the checks
  // sit between stages), so p99(2x) <= 2*p99(0.5x) + one service time
  // <= 3*p99(0.5x).
  std::int64_t deadline_ms =
      std::max<std::int64_t>(2, static_cast<std::int64_t>(4.0 * service_ms));
  for (double factor : {0.5, 1.0, 2.0}) {
    const LoadPoint p =
        run_point(server, payloads, factor, factor * saturation_rps,
                  n_requests, deadline_ms);
    if (factor == 0.5 && p.p99_ms > 0.0) {
      deadline_ms = std::max<std::int64_t>(
          2, static_cast<std::int64_t>(2.0 * p.p99_ms));
      std::printf("  (overload deadline set to %lld ms = 2 x p99 at 0.5x)\n",
                  static_cast<long long>(deadline_ms));
    }
    std::printf("%-8.2f %-12.1f %-12.1f %-9.2f %-9.2f %-9.2f "
                "%llu/%llu/%llu\n",
                p.factor, p.offered_rps, p.throughput_rps, p.p50_ms, p.p95_ms,
                p.p99_ms, static_cast<unsigned long long>(p.completed),
                static_cast<unsigned long long>(p.rejected),
                static_cast<unsigned long long>(p.failed));
    json.series("load_" + std::to_string(factor).substr(0, 3))
        .param("load_factor", std::to_string(factor))
        .param("workers", static_cast<long long>(serve_cfg.workers))
        .param("queue_depth",
               static_cast<long long>(serve_cfg.queue_depth))
        .param("requests", static_cast<long long>(n_requests))
        .metric("offered_rps", p.offered_rps)
        .metric("throughput_rps", p.throughput_rps)
        .metric("p50_ms", p.p50_ms)
        .metric("p95_ms", p.p95_ms)
        .metric("p99_ms", p.p99_ms)
        .metric("completed", static_cast<double>(p.completed))
        .metric("rejected", static_cast<double>(p.rejected))
        .metric("failed", static_cast<double>(p.failed));
    points.push_back(p);
  }
  // The calibration series carries the closed-loop (one in flight,
  // load_factor 0) numbers in the same shape as the load points so the
  // schema check can require the metric set uniformly.
  json.series("calibration")
      .param("load_factor", "0")
      .param("workers", static_cast<long long>(serve_cfg.workers))
      .param("queue_depth", static_cast<long long>(serve_cfg.queue_depth))
      .param("mean_particles", std::to_string(mean_particles))
      .metric("service_ms", service_ms)
      .metric("saturation_rps", saturation_rps)
      .metric("throughput_rps", 1e3 / service_ms)
      .metric("p50_ms", pctl(calib_ms, 0.50))
      .metric("p95_ms", pctl(calib_ms, 0.95))
      .metric("p99_ms", pctl(calib_ms, 0.99));
  server.stop();
  json.write(BenchJsonWriter::resolve_path(args.get("json-out", "")));

  if (assert_ratio > 0.0) {
    // The acceptance gate: at 2x saturation the server must still be
    // serving (completed > 0) and the accepted p99 must stay within
    // assert_ratio of the uncontended p99 — shedding, not queueing.
    const LoadPoint& low = points.front();
    const LoadPoint& high = points.back();
    const double ratio =
        low.p99_ms > 0.0 ? high.p99_ms / low.p99_ms : 0.0;
    std::printf("p99 ratio (2.0x / 0.5x) = %.2f (gate %.2f), completed at "
                "2.0x = %llu\n",
                ratio, assert_ratio,
                static_cast<unsigned long long>(high.completed));
    if (high.completed == 0 || ratio > assert_ratio) {
      std::printf("FAIL: serving tail latency not bounded under overload\n");
      return 1;
    }
    std::printf("OK: bounded p99 under 2x overload\n");
  }
  return 0;
}
