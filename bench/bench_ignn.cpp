// Ablation A4: Interaction GNN forward/backward cost and activation
// memory versus graph size — the "memory wall" (paper §III-B) that makes
// full-graph Exa.TrkX training skip large events, and the motivation for
// minibatch ShaDow training.

#include <benchmark/benchmark.h>

#include "bench_gb_json.hpp"

#include "detector/presets.hpp"
#include "pipeline/gnn_train.hpp"

namespace trkx {
namespace {

IgnnConfig bench_gnn(std::size_t node_dim, std::size_t edge_dim,
                     std::size_t layers) {
  IgnnConfig cfg;
  cfg.node_input_dim = node_dim;
  cfg.edge_input_dim = edge_dim;
  cfg.hidden_dim = 64;  // paper hidden dim
  cfg.num_layers = layers;
  cfg.mlp_hidden = 1;
  return cfg;
}

Event event_of_scale(double scale) {
  DatasetSpec spec = ex3_spec(scale);
  Rng rng(static_cast<std::uint64_t>(scale * 1e4) + 3);
  return generate_event(spec.detector, rng);
}

/// Full-graph forward+backward cost as the event grows — the quantity
/// that blows past GPU memory in the original pipeline.
void BM_IgnnFullGraphStep(benchmark::State& state) {
  const double scale = static_cast<double>(state.range(0)) / 100.0;
  Event e = event_of_scale(scale);
  GnnModel model(bench_gnn(e.node_features.cols(), e.edge_features.cols(), 4),
                 1);
  Adam opt(model.store, AdamOptions{});
  std::vector<float> labels(e.edge_labels.begin(), e.edge_labels.end());
  std::size_t activation_floats = 0;
  for (auto _ : state) {
    TapeContext ctx;
    Var logits = model.gnn->forward(ctx, e.node_features, e.edge_features,
                                    e.graph);
    Var loss = ctx.tape().bce_with_logits(logits, labels);
    opt.zero_grad();
    ctx.backward(loss);
    opt.step();
    activation_floats = ctx.tape().activation_floats();
    benchmark::DoNotOptimize(loss);
  }
  state.counters["vertices"] = static_cast<double>(e.num_hits());
  state.counters["edges"] = static_cast<double>(e.num_edges());
  state.counters["activation_MB"] =
      static_cast<double>(activation_floats) * 4.0 / 1e6;
}
BENCHMARK(BM_IgnnFullGraphStep)->Arg(2)->Arg(5)->Arg(10)->Iterations(3)
    ->Unit(benchmark::kMillisecond);

/// Minibatch step cost is bounded by the sampled receptive field, not the
/// event size: the ShaDow guarantee.
void BM_IgnnShadowStep(benchmark::State& state) {
  const double scale = static_cast<double>(state.range(0)) / 100.0;
  Event e = event_of_scale(scale);
  GnnModel model(bench_gnn(e.node_features.cols(), e.edge_features.cols(), 4),
                 1);
  Adam opt(model.store, AdamOptions{});
  MatrixShadowSampler sampler(e.graph, {.depth = 2, .fanout = 4});
  Rng rng(7);
  Rng batch_rng(8);
  auto batches = make_minibatches(e.num_hits(), 128, batch_rng);
  std::size_t activation_floats = 0;
  std::size_t bi = 0;
  for (auto _ : state) {
    const auto& batch = batches[bi++ % batches.size()];
    ShadowSample s = sampler.sample(batch, rng);
    Matrix nf = row_gather(e.node_features, s.sub.vertex_map);
    Matrix ef = row_gather(e.edge_features, s.sub.edge_map);
    std::vector<float> labels;
    labels.reserve(s.sub.edge_map.size());
    for (auto em : s.sub.edge_map)
      labels.push_back(e.edge_labels[em] ? 1.0f : 0.0f);
    if (labels.empty()) continue;
    TapeContext ctx;
    Var logits = model.gnn->forward(ctx, nf, ef, s.sub.graph);
    Var loss = ctx.tape().bce_with_logits(logits, labels);
    opt.zero_grad();
    ctx.backward(loss);
    opt.step();
    activation_floats = ctx.tape().activation_floats();
    benchmark::DoNotOptimize(loss);
  }
  state.counters["event_vertices"] = static_cast<double>(e.num_hits());
  state.counters["activation_MB"] =
      static_cast<double>(activation_floats) * 4.0 / 1e6;
}
BENCHMARK(BM_IgnnShadowStep)->Arg(2)->Arg(5)->Arg(10)->Iterations(5)
    ->Unit(benchmark::kMillisecond);

/// Depth scaling of the IGNN itself.
void BM_IgnnLayers(benchmark::State& state) {
  Event e = event_of_scale(0.03);
  GnnModel model(bench_gnn(e.node_features.cols(), e.edge_features.cols(),
                           static_cast<std::size_t>(state.range(0))),
                 1);
  for (auto _ : state) {
    auto scores = model.gnn->predict(e.node_features, e.edge_features,
                                     e.graph);
    benchmark::DoNotOptimize(scores);
  }
}
BENCHMARK(BM_IgnnLayers)->Arg(2)->Arg(4)->Arg(8)->Iterations(3)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace trkx

int main(int argc, char** argv) {
  return trkx::gb_json_main(argc, argv, "ignn");
}
