// Figure 4 reproduction: validation precision/recall convergence on Ex3
// for (a) full-graph training — the original Exa.TrkX regime, (b) ShaDow
// minibatch training with the reference per-batch sampler (the "PyG
// implementation" stand-in), and (c) ShaDow with our matrix-based bulk
// sampler.
//
// Paper claims to reproduce in shape:
//   * minibatch ShaDow converges to HIGHER precision and recall than
//     full-graph training;
//   * our implementation's curves track the reference implementation's
//     curves (no degradation from bulk sampling).
//
// Defaults are CPU-sized (scale 0.05, 6 train graphs, 10 epochs, 4-layer
// hidden-32 GNN); pass --scale/--epochs/--hidden/--layers to enlarge
// toward the paper's configuration (scale 1, 80 graphs, 30 epochs,
// hidden 64, 8 layers, batch 256, d=3, s=6).
//
//   ./bench_fig4_convergence [--scale 0.05] [--train 6] [--epochs 10]
//       [--batch 256] [--hidden 32] [--layers 4] [--depth 3] [--fanout 6]

#include <cstdio>

#include "bench_json.hpp"
#include "detector/presets.hpp"
#include "io/csv.hpp"
#include "pipeline/gnn_train.hpp"
#include "util/cli.hpp"
#include "util/log.hpp"

using namespace trkx;

int main(int argc, char** argv) {
  set_log_level(LogLevel::kWarn);
  ArgParser args(argc, argv);
  const double scale = args.get_double("scale", 0.05);
  const std::size_t n_train = static_cast<std::size_t>(args.get_int("train", 6));
  const std::size_t epochs = static_cast<std::size_t>(args.get_int("epochs", 10));

  // The paper's Figure 4 uses Ex3; --dataset ctd runs the same comparison
  // on the dense CTD-like preset.
  DatasetSpec spec = args.get("dataset", "ex3") == "ctd"
                         ? ctd_spec(scale / 16.0)
                         : ex3_spec(scale);
  Dataset data = generate_dataset(spec.name, spec.detector, n_train, 2, 0, 77);
  std::printf("=== Figure 4: convergence on Ex3-like data ===\n");
  std::printf("scale %.3f: %zu train graphs, avg %.0f vertices / %.0f edges\n\n",
              scale, n_train, data.avg_vertices(), data.avg_edges());

  IgnnConfig gnn;
  gnn.node_input_dim = spec.detector.node_feature_dim;
  gnn.edge_input_dim = spec.detector.edge_feature_dim;
  gnn.hidden_dim = static_cast<std::size_t>(args.get_int("hidden", 32));
  gnn.num_layers = static_cast<std::size_t>(args.get_int("layers", 4));
  gnn.mlp_hidden = spec.mlp_hidden_layers - 1;

  GnnTrainConfig cfg;
  cfg.epochs = epochs;
  cfg.batch_size = static_cast<std::size_t>(args.get_int("batch", 256));
  cfg.shadow.depth = static_cast<std::size_t>(args.get_int("depth", 3));
  cfg.shadow.fanout = static_cast<std::size_t>(args.get_int("fanout", 6));
  cfg.bulk_k = 4;
  cfg.seed = 42;

  struct Curve {
    const char* name;
    TrainResult result;
  };
  std::vector<Curve> curves;
  {
    GnnModel model(gnn, cfg.seed);
    std::printf("training full-graph...\n");
    curves.push_back(
        {"full-graph", train_full_graph(model, data.train, data.val, cfg)});
  }
  {
    GnnModel model(gnn, cfg.seed);
    std::printf("training shadow (reference sampler, PyG stand-in)...\n");
    curves.push_back({"shadow-pyg", train_shadow(model, data.train, data.val,
                                                 cfg, SamplerKind::kReference)});
  }
  {
    GnnModel model(gnn, cfg.seed);
    std::printf("training shadow (matrix bulk sampler, ours)...\n");
    curves.push_back({"shadow-ours",
                      train_shadow(model, data.train, data.val, cfg,
                                   SamplerKind::kMatrixBulk)});
  }

  CsvWriter csv("fig4_convergence.csv",
                {"epoch", "mode", "precision", "recall", "loss"});
  std::printf("\n%-7s | %-23s | %-23s | %-23s\n", "", curves[0].name,
              curves[1].name, curves[2].name);
  std::printf("%-7s | %-11s %-11s | %-11s %-11s | %-11s %-11s\n", "epoch",
              "precision", "recall", "precision", "recall", "precision",
              "recall");
  for (std::size_t e = 0; e < epochs; ++e) {
    std::printf("%-7zu", e);
    for (const Curve& c : curves) {
      const auto& m = c.result.epochs[e].val;
      std::printf(" | %-11.4f %-11.4f", m.precision(), m.recall());
      csv.row(std::vector<std::string>{
          std::to_string(e), c.name, format_double(m.precision()),
          format_double(m.recall()),
          format_double(c.result.epochs[e].train_loss)});
    }
    std::printf("\n");
  }

  BenchJsonWriter json("fig4_convergence");
  for (const Curve& c : curves) {
    const auto& last = c.result.last().val;
    json.series(c.name)
        .param("mode", c.name)
        .metric("final_precision", last.precision())
        .metric("final_recall", last.recall())
        .metric("final_f1", last.f1())
        .metric("total_seconds", c.result.total_seconds);
  }
  const std::string json_path =
      BenchJsonWriter::resolve_path(args.get("json-out", ""));
  if (json.write(json_path))
    std::printf("bench JSON written to %s\n", json_path.c_str());

  const auto& full = curves[0].result.last().val;
  const auto& pyg = curves[1].result.last().val;
  const auto& ours = curves[2].result.last().val;
  std::printf("\npaper-shape checks:\n");
  std::printf("  minibatch beats full-graph precision: %s (%.4f vs %.4f)\n",
              ours.precision() > full.precision() ? "YES" : "no",
              ours.precision(), full.precision());
  std::printf("  minibatch beats full-graph recall:    %s (%.4f vs %.4f)\n",
              ours.recall() > full.recall() ? "YES" : "no", ours.recall(),
              full.recall());
  std::printf("  ours tracks reference (|dF1| < 0.1):  %s (F1 %.4f vs %.4f)\n",
              std::abs(ours.f1() - pyg.f1()) < 0.1 ? "YES" : "no", ours.f1(),
              pyg.f1());
  std::printf("series written to fig4_convergence.csv\n");
  return 0;
}
