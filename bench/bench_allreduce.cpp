// Ablation A1: separate vs coalesced gradient all-reduce (paper §III-D).
//
// The Interaction GNN holds dozens of small f×f parameter matrices (one
// per MLP layer); the baseline DDP issues one all-reduce per matrix, ours
// flattens them into one call. These benchmarks measure the real
// shared-memory runtime (per-call synchronisation costs) across rank and
// matrix counts; the analytically modelled NVLink times are reported as
// counters.

// Alongside the google-benchmark table, main() dumps the global metrics
// registry (allreduce.{per_tensor,coalesced}.{calls,bytes} counters fed by
// synchronize_gradients) to allreduce.metrics.json so the perf trajectory
// can track the per-tensor vs coalesced call pattern across PRs.

#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench_gb_json.hpp"
#include "dist/communicator.hpp"
#include "dist/gradient_sync.hpp"
#include "gnn/interaction_gnn.hpp"
#include "obs/metrics.hpp"

namespace trkx {
namespace {

/// Build a store shaped like an IGNN with `layers` message-passing layers
/// of hidden size `f` (2 MLPs per layer plus encoders/classifier).
ParameterStore ignn_like_store(std::size_t layers, std::size_t f) {
  ParameterStore s;
  std::size_t id = 0;
  auto mlp = [&](std::size_t in) {
    s.create("w" + std::to_string(id), in, f);
    s.create("b" + std::to_string(id), 1, f);
    ++id;
  };
  mlp(14);      // node encoder
  mlp(8);       // edge encoder
  for (std::size_t l = 0; l < layers; ++l) {
    mlp(6 * f);  // edge MLP
    mlp(4 * f);  // node MLP
  }
  mlp(f);  // classifier
  return s;
}

void run_sync(benchmark::State& state, SyncStrategy strategy) {
  const int ranks = static_cast<int>(state.range(0));
  const std::size_t layers = static_cast<std::size_t>(state.range(1));
  DistRuntime rt(ranks);
  std::vector<ParameterStore> stores;
  for (int r = 0; r < ranks; ++r)
    stores.push_back(ignn_like_store(layers, 64));
  for (auto& s : stores)
    for (auto& p : s.params()) p.grad.fill(1.0f);

  for (auto _ : state) {
    rt.run([&](Communicator& comm) {
      synchronize_gradients(comm, stores[static_cast<std::size_t>(comm.rank())],
                            strategy);
    });
  }
  const CommStats agg = rt.aggregate_stats();
  state.counters["calls_per_iter"] = static_cast<double>(
      agg.all_reduce_calls / std::max<std::size_t>(1, state.iterations()));
  state.counters["modeled_us_per_iter"] =
      agg.modeled_seconds * 1e6 / static_cast<double>(state.iterations());
  state.counters["params"] =
      static_cast<double>(stores[0].total_size());
}

void BM_AllReducePerTensor(benchmark::State& state) {
  run_sync(state, SyncStrategy::kPerTensor);
}
void BM_AllReduceCoalesced(benchmark::State& state) {
  run_sync(state, SyncStrategy::kCoalesced);
}

BENCHMARK(BM_AllReducePerTensor)
    ->ArgsProduct({{2, 4}, {2, 8}})
    ->Iterations(200)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_AllReduceCoalesced)
    ->ArgsProduct({{2, 4}, {2, 8}})
    ->Iterations(200)
    ->Unit(benchmark::kMillisecond);

/// Raw all-reduce bandwidth across buffer sizes (single call).
void BM_AllReduceBuffer(benchmark::State& state) {
  const int ranks = 4;
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  DistRuntime rt(ranks);
  std::vector<std::vector<float>> bufs(ranks, std::vector<float>(n, 1.0f));
  for (auto _ : state) {
    rt.run([&](Communicator& comm) {
      comm.all_reduce_sum(std::span<float>(
          bufs[static_cast<std::size_t>(comm.rank())].data(), n));
    });
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n * sizeof(float)));
}
BENCHMARK(BM_AllReduceBuffer)->Range(1 << 10, 1 << 20)
    ->Iterations(300)
    ->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace trkx

int main(int argc, char** argv) {
  const int rc = trkx::gb_json_main(
      argc, argv, "allreduce", [](trkx::BenchJsonWriter& json) {
        // Carry the registry's call-pattern counters into the artifact so
        // the trajectory tracks per-tensor vs coalesced across PRs.
        const auto dump = trkx::MetricsRegistry::global().dump();
        auto& s = json.series("allreduce.registry");
        s.param("source", "metrics_registry");
        for (const auto& [name, value] : dump.counters)
          if (name.rfind("allreduce.", 0) == 0)
            s.metric(name, static_cast<double>(value));
      });
  const char* path = "allreduce.metrics.json";
  trkx::MetricsRegistry::global().write_json(path);
  std::printf("metrics written to %s\n", path);
  return rc;
}
