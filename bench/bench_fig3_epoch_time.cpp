// Figure 3 reproduction: epoch time across process counts for the
// Exa.TrkX GNN stage, comparing
//
//   baseline — reference per-batch ShaDow ("PyG implementation") with
//              per-tensor all-reduce, vs
//   ours     — matrix-based bulk ShaDow sampling with coalesced all-reduce
//
// on CTD-like and Ex3-like data, with the sampling / training /
// all-reduce time split the paper plots. As in the paper, the bulk batch
// count k grows with the number of ranks (more aggregate memory).
//
// Substitution note (DESIGN.md §2): ranks are threads on one CPU, so
// epoch wall time does not shrink with P here; the per-rank sampling and
// training times (which do shrink — each rank handles batch/P vertices)
// and the all-reduce call pattern carry the paper's comparison. The
// modelled all-reduce column projects the measured call pattern onto the
// paper's NVLink α–β parameters.
//
//   ./bench_fig3_epoch_time [--ex3-scale 0.05] [--ctd-scale 0.004]
//       [--train 2] [--epochs 1] [--batch 256] [--hidden 32] [--layers 4]
//       [--max-ranks 4] [--trace-out trace.json]
//       [--metrics-out fig3_epoch_time.metrics.json]
//
// Alongside the CSV it always dumps the global metrics registry (phase
// histograms, all-reduce call/byte counters) so the perf trajectory can
// track the sampling/compute/comms split across PRs.

#include <cstdio>

#include "detector/presets.hpp"
#include "io/csv.hpp"
#include "obs/report.hpp"
#include "pipeline/gnn_train.hpp"
#include "util/cli.hpp"
#include "util/log.hpp"

using namespace trkx;

namespace {

struct RunConfig {
  const char* impl;  // "baseline" or "ours"
  SamplerKind sampler;
  SyncStrategy sync;
};

void run_dataset(const char* name, const Dataset& data, const IgnnConfig& gnn,
                 GnnTrainConfig cfg, const std::vector<int>& rank_counts,
                 CsvWriter& csv) {
  std::printf("\n--- %s: avg %.0f vertices / %.0f edges per graph ---\n",
              name, data.avg_vertices(), data.avg_edges());
  std::printf("%-9s %-3s %-3s | %-9s %-9s %-11s %-11s | %-9s\n", "impl", "P",
              "k", "sample[s]", "train[s]", "allred[s]", "allred-mdl",
              "epoch[s]");

  const RunConfig runs[] = {
      {"baseline", SamplerKind::kReference, SyncStrategy::kPerTensor},
      {"ours", SamplerKind::kMatrixBulk, SyncStrategy::kCoalesced},
  };
  for (const RunConfig& run : runs) {
    for (int p : rank_counts) {
      GnnTrainConfig c = cfg;
      c.sync = run.sync;
      // The paper samples more minibatches in bulk as aggregate GPU
      // memory grows with P.
      c.bulk_k = run.sampler == SamplerKind::kMatrixBulk
                     ? static_cast<std::size_t>(2 * p)
                     : 1;
      c.evaluate_every_epoch = false;
      GnnModel model(gnn, c.seed);
      TrainResult r;
      if (p == 1) {
        r = train_shadow(model, data.train, data.val, c, run.sampler);
      } else {
        DistRuntime rt(p);
        r = train_shadow_ddp(model, data.train, data.val, c, rt, run.sampler);
      }
      // Per-epoch means.
      const double n = static_cast<double>(r.epochs.size());
      const double sample = r.total_phase("sample") / n;
      const double train = r.total_phase("train") / n;
      const double allred = r.total_phase("allreduce") / n;
      const double modeled = r.comm.modeled_seconds / n;
      double epoch_wall = 0.0;
      for (const auto& e : r.epochs) epoch_wall += e.wall_seconds / n;
      std::printf("%-9s %-3d %-3zu | %-9.3f %-9.3f %-11.3f %-11.5f | %-9.3f\n",
                  run.impl, p, c.bulk_k, sample, train, allred, modeled,
                  epoch_wall);
      csv.row(std::vector<std::string>{
          name, run.impl, std::to_string(p), std::to_string(c.bulk_k),
          format_double(sample), format_double(train), format_double(allred),
          format_double(modeled), format_double(epoch_wall)});
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  set_log_level(LogLevel::kWarn);
  ArgParser args(argc, argv);
  ObsExport obs(args.get("trace-out", ""),
                args.get("metrics-out", "fig3_epoch_time.metrics.json"));
  const double ex3_scale = args.get_double("ex3-scale", 0.05);
  const double ctd_scale = args.get_double("ctd-scale", 0.004);
  const std::size_t n_train = static_cast<std::size_t>(args.get_int("train", 2));
  const int max_ranks = args.get_int("max-ranks", 4);

  GnnTrainConfig cfg;
  cfg.epochs = static_cast<std::size_t>(args.get_int("epochs", 1));
  cfg.batch_size = static_cast<std::size_t>(args.get_int("batch", 256));
  cfg.shadow = {.depth = 2, .fanout = 4};  // CPU-sized (paper: d=3, s=6)
  cfg.seed = 9;

  std::vector<int> ranks;
  for (int p = 1; p <= max_ranks; p *= 2) ranks.push_back(p);

  std::printf("=== Figure 3: epoch time across process counts ===\n");
  CsvWriter csv("fig3_epoch_time.csv",
                {"dataset", "impl", "ranks", "bulk_k", "sample_s", "train_s",
                 "allreduce_s", "allreduce_modeled_s", "epoch_s"});

  {
    DatasetSpec spec = ctd_spec(ctd_scale);
    Dataset data =
        generate_dataset(spec.name, spec.detector, n_train, 1, 0, 31);
    IgnnConfig gnn;
    gnn.node_input_dim = spec.detector.node_feature_dim;
    gnn.edge_input_dim = spec.detector.edge_feature_dim;
    gnn.hidden_dim = static_cast<std::size_t>(args.get_int("hidden", 32));
    gnn.num_layers = static_cast<std::size_t>(args.get_int("layers", 4));
    gnn.mlp_hidden = spec.mlp_hidden_layers - 1;
    run_dataset("CTD", data, gnn, cfg, ranks, csv);
  }
  {
    DatasetSpec spec = ex3_spec(ex3_scale);
    Dataset data =
        generate_dataset(spec.name, spec.detector, n_train, 1, 0, 32);
    IgnnConfig gnn;
    gnn.node_input_dim = spec.detector.node_feature_dim;
    gnn.edge_input_dim = spec.detector.edge_feature_dim;
    gnn.hidden_dim = static_cast<std::size_t>(args.get_int("hidden", 32));
    gnn.num_layers = static_cast<std::size_t>(args.get_int("layers", 4));
    gnn.mlp_hidden = spec.mlp_hidden_layers - 1;
    run_dataset("Ex3", data, gnn, cfg, ranks, csv);
  }

  std::printf(
      "\nReading the table: 'ours' vs 'baseline' at equal P shows the "
      "paper's two levers —\nbulk sampling cuts sample[s], the coalesced "
      "all-reduce cuts the modelled all-reduce\ntime (fewer latency "
      "terms; measured thread time also drops with fewer barrier\nrounds). "
      "Per-rank sample/train times shrink with P (1/P of each batch per "
      "rank).\n");
  obs.flush();
  std::printf("series written to fig3_epoch_time.csv, metrics to %s\n",
              obs.metrics_path().c_str());
  return 0;
}
