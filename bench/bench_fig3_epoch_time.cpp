// Figure 3 reproduction: epoch time across process counts for the
// Exa.TrkX GNN stage, comparing
//
//   baseline — reference per-batch ShaDow ("PyG implementation") with
//              per-tensor all-reduce, vs
//   ours     — matrix-based bulk ShaDow sampling with coalesced all-reduce
//
// on CTD-like and Ex3-like data, with the sampling / training /
// all-reduce time split the paper plots. As in the paper, the bulk batch
// count k grows with the number of ranks (more aggregate memory).
//
// Substitution note (DESIGN.md §2): ranks are threads on one CPU, so
// epoch wall time does not shrink with P here; the per-rank sampling and
// training times (which do shrink — each rank handles batch/P vertices)
// and the all-reduce call pattern carry the paper's comparison. The
// modelled all-reduce column projects the measured call pattern onto the
// paper's NVLink α–β parameters.
//
//   ./bench_fig3_epoch_time [--ex3-scale 0.05] [--ctd-scale 0.004]
//       [--train 2] [--epochs 1] [--batch 256] [--hidden 32] [--layers 4]
//       [--max-ranks 4] [--prefetch 2] [--trace-out trace.json]
//       [--metrics-out fig3_epoch_time.metrics.json]
//       [--json-out BENCH_fig3.json]
//
// Every configuration runs twice, with the sampler↔trainer prefetch
// pipeline off (prefetch_depth=0, the serial reference) and on, so the
// table and the JSON artifact carry the overlap speedup directly.
//
// Alongside the CSV it always dumps the global metrics registry (phase
// histograms, all-reduce call/byte counters) so the perf trajectory can
// track the sampling/compute/comms split across PRs. With --json-out (or
// TRKX_BENCH_JSON) it also writes the unified BENCH_fig3.json artifact of
// per-phase medians validated by scripts/check_bench_json.py.

#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench_json.hpp"
#include "detector/presets.hpp"
#include "io/csv.hpp"
#include "obs/report.hpp"
#include "pipeline/gnn_train.hpp"
#include "util/cli.hpp"
#include "util/log.hpp"

using namespace trkx;

namespace {

struct RunConfig {
  const char* impl;  // "baseline" or "ours"
  SamplerKind sampler;
  SyncStrategy sync;
};

double median(std::vector<double> v) {
  if (v.empty()) return 0.0;
  std::sort(v.begin(), v.end());
  const std::size_t m = v.size() / 2;
  return v.size() % 2 == 1 ? v[m] : 0.5 * (v[m - 1] + v[m]);
}

/// Median over epochs of one phase bucket.
double phase_median(const TrainResult& r, const char* phase) {
  std::vector<double> v;
  v.reserve(r.epochs.size());
  for (const auto& e : r.epochs) v.push_back(e.timers.get(phase));
  return median(std::move(v));
}

void run_dataset(const char* name, const Dataset& data, const IgnnConfig& gnn,
                 GnnTrainConfig cfg, const std::vector<int>& rank_counts,
                 CsvWriter& csv, BenchJsonWriter& json) {
  std::printf("\n--- %s: avg %.0f vertices / %.0f edges per graph ---\n",
              name, data.avg_vertices(), data.avg_edges());
  std::printf("%-9s %-3s %-3s %-3s | %-9s %-9s %-11s %-11s %-9s | %-9s %s\n",
              "impl", "P", "k", "pf", "sample[s]", "train[s]", "allred[s]",
              "allred-mdl", "stall[s]", "epoch[s]", "speedup");

  const RunConfig runs[] = {
      {"baseline", SamplerKind::kReference, SyncStrategy::kPerTensor},
      {"ours", SamplerKind::kMatrixBulk, SyncStrategy::kCoalesced},
  };
  // Prefetch off first, then on: the serial epoch time is the reference
  // the pipelined run's speedup column divides.
  std::vector<std::size_t> depths{0};
  if (cfg.prefetch_depth > 0) depths.push_back(cfg.prefetch_depth);

  for (const RunConfig& run : runs) {
    for (int p : rank_counts) {
      double serial_epoch = 0.0;
      for (std::size_t pf : depths) {
        GnnTrainConfig c = cfg;
        c.sync = run.sync;
        c.prefetch_depth = pf;
        // The paper samples more minibatches in bulk as aggregate GPU
        // memory grows with P.
        c.bulk_k = run.sampler == SamplerKind::kMatrixBulk
                       ? static_cast<std::size_t>(2 * p)
                       : 1;
        c.evaluate_every_epoch = false;
        GnnModel model(gnn, c.seed);
        TrainResult r;
        if (p == 1) {
          r = train_shadow(model, data.train, data.val, c, run.sampler);
        } else {
          DistRuntime rt(p);
          r = train_shadow_ddp(model, data.train, data.val, c, rt,
                               run.sampler);
        }
        // Per-epoch medians. "sample" spans the sampler proper; "gather"
        // is the feature-matrix assembly the producer also hides.
        const double sample =
            phase_median(r, "sample") + phase_median(r, "gather");
        const double train = phase_median(r, "train");
        const double allred = phase_median(r, "allreduce");
        const double stall = phase_median(r, "prefetch_stall");
        const double modeled =
            r.comm.modeled_seconds / static_cast<double>(r.epochs.size());
        std::vector<double> walls;
        for (const auto& e : r.epochs) walls.push_back(e.wall_seconds);
        const double epoch_wall = median(std::move(walls));
        if (pf == 0) serial_epoch = epoch_wall;
        const double speedup =
            pf > 0 && epoch_wall > 0.0 ? serial_epoch / epoch_wall : 1.0;
        std::printf(
            "%-9s %-3d %-3zu %-3zu | %-9.3f %-9.3f %-11.3f %-11.5f %-9.3f | "
            "%-9.3f %.2fx\n",
            run.impl, p, c.bulk_k, pf, sample, train, allred, modeled, stall,
            epoch_wall, speedup);
        csv.row(std::vector<std::string>{
            name, run.impl, std::to_string(p), std::to_string(c.bulk_k),
            std::to_string(pf), format_double(sample), format_double(train),
            format_double(allred), format_double(modeled),
            format_double(stall), format_double(epoch_wall)});
        auto& s = json.series(std::string(name) + "/" + run.impl + "/p" +
                              std::to_string(p) + "/pf" + std::to_string(pf));
        s.param("dataset", name)
            .param("impl", run.impl)
            .param("ranks", static_cast<long long>(p))
            .param("bulk_k", static_cast<long long>(c.bulk_k))
            .param("prefetch_depth", static_cast<long long>(pf));
        s.metric("sample_s_median", sample)
            .metric("train_s_median", train)
            .metric("allreduce_s_median", allred)
            .metric("allreduce_modeled_s_median", modeled)
            .metric("prefetch_stall_s_median", stall)
            .metric("epoch_s_median", epoch_wall);
        if (pf > 0) s.metric("speedup_vs_serial", speedup);
      }
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  set_log_level(LogLevel::kWarn);
  ArgParser args(argc, argv);
  ObsExport obs(args.get("trace-out", ""),
                args.get("metrics-out", "fig3_epoch_time.metrics.json"));
  const double ex3_scale = args.get_double("ex3-scale", 0.05);
  const double ctd_scale = args.get_double("ctd-scale", 0.004);
  const std::size_t n_train = static_cast<std::size_t>(args.get_int("train", 2));
  const int max_ranks = args.get_int("max-ranks", 4);

  GnnTrainConfig cfg;
  cfg.epochs = static_cast<std::size_t>(args.get_int("epochs", 1));
  cfg.batch_size = static_cast<std::size_t>(args.get_int("batch", 256));
  // CPU-sized sampling default; pass --shadow-depth 3 --shadow-fanout 6
  // for the paper config (much larger subgraphs, so training dominates).
  cfg.shadow = {
      .depth = static_cast<std::size_t>(args.get_int("shadow-depth", 2)),
      .fanout = static_cast<std::size_t>(args.get_int("shadow-fanout", 4))};
  cfg.seed = 9;
  cfg.prefetch_depth = static_cast<std::size_t>(args.get_int("prefetch", 2));

  std::vector<int> ranks;
  for (int p = 1; p <= max_ranks; p *= 2) ranks.push_back(p);

  std::printf("=== Figure 3: epoch time across process counts ===\n");
  CsvWriter csv("fig3_epoch_time.csv",
                {"dataset", "impl", "ranks", "bulk_k", "prefetch_depth",
                 "sample_s", "train_s", "allreduce_s", "allreduce_modeled_s",
                 "prefetch_stall_s", "epoch_s"});
  BenchJsonWriter json("fig3_epoch_time");

  {
    DatasetSpec spec = ctd_spec(ctd_scale);
    Dataset data =
        generate_dataset(spec.name, spec.detector, n_train, 1, 0, 31);
    IgnnConfig gnn;
    gnn.node_input_dim = spec.detector.node_feature_dim;
    gnn.edge_input_dim = spec.detector.edge_feature_dim;
    gnn.hidden_dim = static_cast<std::size_t>(args.get_int("hidden", 32));
    gnn.num_layers = static_cast<std::size_t>(args.get_int("layers", 4));
    gnn.mlp_hidden = spec.mlp_hidden_layers - 1;
    run_dataset("CTD", data, gnn, cfg, ranks, csv, json);
  }
  {
    DatasetSpec spec = ex3_spec(ex3_scale);
    Dataset data =
        generate_dataset(spec.name, spec.detector, n_train, 1, 0, 32);
    IgnnConfig gnn;
    gnn.node_input_dim = spec.detector.node_feature_dim;
    gnn.edge_input_dim = spec.detector.edge_feature_dim;
    gnn.hidden_dim = static_cast<std::size_t>(args.get_int("hidden", 32));
    gnn.num_layers = static_cast<std::size_t>(args.get_int("layers", 4));
    gnn.mlp_hidden = spec.mlp_hidden_layers - 1;
    run_dataset("Ex3", data, gnn, cfg, ranks, csv, json);
  }

  std::printf(
      "\nReading the table: 'ours' vs 'baseline' at equal P shows the "
      "paper's two levers —\nbulk sampling cuts sample[s], the coalesced "
      "all-reduce cuts the modelled all-reduce\ntime (fewer latency "
      "terms; measured thread time also drops with fewer barrier\nrounds). "
      "Per-rank sample/train times shrink with P (1/P of each batch per "
      "rank).\n");
  obs.flush();
  std::printf("series written to fig3_epoch_time.csv, metrics to %s\n",
              obs.metrics_path().c_str());
  const std::string json_path =
      BenchJsonWriter::resolve_path(args.get("json-out", ""));
  if (json.write(json_path))
    std::printf("bench JSON written to %s\n", json_path.c_str());
  return 0;
}
