// Unified machine-readable benchmark artifact.
//
// Every bench that opts in accepts --json-out <path> (with the
// TRKX_BENCH_JSON environment variable as fallback, so CI can redirect
// artifacts without touching per-bench flags) and writes schema v2:
//
//   {"schema": "trkx-bench-v2",
//    "bench": "<name>",
//    "manifest": {... RunManifest: git sha, build type, host, threads ...},
//    "series": [{"name": "<series>",
//                "params": {"<key>": "<value>", ...},
//                "metrics": {"<key>": <number>, ...}}, ...]}
//
// scripts/check_bench_json.py validates this shape (perf-smoke label; v1
// artifacts without schema/manifest keys are still accepted for older
// baselines), and scripts/trkx-bench merges the per-bench artifacts into
// the committed BENCH_*.json perf trajectory that
// scripts/check_regression.py gates against.

#pragma once

#include <cmath>
#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "obs/manifest.hpp"
#include "util/env.hpp"
#include "util/error.hpp"

namespace trkx {

/// Collects named series of (params, metrics) and dumps them as JSON.
class BenchJsonWriter {
 public:
  struct Series {
    std::string name;
    std::vector<std::pair<std::string, std::string>> params;
    std::vector<std::pair<std::string, double>> metrics;

    Series& param(const std::string& key, const std::string& value) {
      params.emplace_back(key, value);
      return *this;
    }
    Series& param(const std::string& key, long long value) {
      return param(key, std::to_string(value));
    }
    Series& metric(const std::string& key, double value) {
      metrics.emplace_back(key, value);
      return *this;
    }
  };

  explicit BenchJsonWriter(std::string bench) : bench_(std::move(bench)) {}

  /// Output path: the --json-out value if given, else $TRKX_BENCH_JSON,
  /// else "" (disabled).
  static std::string resolve_path(const std::string& cli_value) {
    if (!cli_value.empty()) return cli_value;
    return env::get_string("TRKX_BENCH_JSON");
  }

  Series& series(const std::string& name) {
    series_.push_back(Series{name, {}, {}});
    return series_.back();
  }

  /// Write the artifact; no-op (returns false) when path is empty.
  bool write(const std::string& path) const {
    if (path.empty()) return false;
    std::FILE* f = std::fopen(path.c_str(), "w");
    TRKX_CHECK_MSG(f != nullptr, "cannot open bench JSON output: " + path);
    const std::string stamp = RunManifest::collect(bench_).to_json();
    std::fprintf(f,
                 "{\"schema\": \"trkx-bench-v2\", \"bench\": %s,\n"
                 " \"manifest\": %s,\n \"series\": [",
                 quote(bench_).c_str(), stamp.c_str());
    for (std::size_t i = 0; i < series_.size(); ++i) {
      const Series& s = series_[i];
      std::fprintf(f, "%s\n  {\"name\": %s, \"params\": {",
                   i == 0 ? "" : ",", quote(s.name).c_str());
      for (std::size_t j = 0; j < s.params.size(); ++j)
        std::fprintf(f, "%s%s: %s", j == 0 ? "" : ", ",
                     quote(s.params[j].first).c_str(),
                     quote(s.params[j].second).c_str());
      std::fprintf(f, "}, \"metrics\": {");
      for (std::size_t j = 0; j < s.metrics.size(); ++j) {
        std::fprintf(f, "%s%s: ", j == 0 ? "" : ", ",
                     quote(s.metrics[j].first).c_str());
        const double v = s.metrics[j].second;
        if (std::isfinite(v))
          std::fprintf(f, "%.9g", v);
        else
          std::fprintf(f, "null");  // non-finite is not valid JSON
      }
      std::fprintf(f, "}}");
    }
    std::fprintf(f, "\n]}\n");
    std::fclose(f);
    return true;
  }

 private:
  static std::string quote(const std::string& s) {
    std::string out = "\"";
    for (char c : s) {
      switch (c) {
        case '"': out += "\\\""; break;
        case '\\': out += "\\\\"; break;
        case '\n': out += "\\n"; break;
        case '\t': out += "\\t"; break;
        default:
          if (static_cast<unsigned char>(c) < 0x20) {
            char buf[8];
            std::snprintf(buf, sizeof(buf), "\\u%04x", c);
            out += buf;
          } else {
            out += c;
          }
      }
    }
    out += '"';
    return out;
  }

  std::string bench_;
  std::vector<Series> series_;
};

}  // namespace trkx
