// Ablation A10: why the paper uses minibatch DDP rather than CAGNET-style
// full-graph model/graph parallelism at Exa.TrkX graph sizes.
//
// Full-graph 1D-partitioned training all-gathers the n×f feature matrix
// once per GNN layer per direction (communication grows with the GRAPH),
// while minibatch DDP all-reduces the gradients once per step
// (communication fixed by the MODEL). This bench measures both patterns
// with the in-process runtime and reports measured plus α–β-modelled
// NVLink times across event sizes.
//
//   ./bench_distributed_modes [--ranks 4] [--hidden 64] [--layers 8]

#include <cstdio>

#include "bench_json.hpp"
#include "detector/presets.hpp"
#include "dist/partitioned.hpp"
#include "gnn/interaction_gnn.hpp"
#include "io/csv.hpp"
#include "pipeline/gnn_train.hpp"
#include "util/cli.hpp"
#include "util/log.hpp"

using namespace trkx;

int main(int argc, char** argv) {
  set_log_level(LogLevel::kWarn);
  ArgParser args(argc, argv);
  const int ranks = args.get_int("ranks", 4);
  const std::size_t hidden =
      static_cast<std::size_t>(args.get_int("hidden", 64));
  const std::size_t layers =
      static_cast<std::size_t>(args.get_int("layers", 8));

  std::printf("=== Ablation: DDP vs 1D-partitioned full-graph comms ===\n");
  std::printf("P=%d, hidden %zu, %zu GNN layers\n\n", ranks, hidden, layers);

  // The DDP side: gradient bytes per step = model size, independent of n.
  IgnnConfig gnn;
  gnn.node_input_dim = 6;
  gnn.edge_input_dim = 2;
  gnn.hidden_dim = hidden;
  gnn.num_layers = layers;
  gnn.mlp_hidden = 1;
  GnnModel model(gnn, 1);
  const std::size_t model_bytes = model.store.total_size() * sizeof(float);
  AllReduceCostModel cost;
  const double ddp_modeled = cost.seconds(model_bytes, ranks);

  CsvWriter csv("distributed_modes.csv",
                {"vertices", "partitioned_bytes_per_step",
                 "partitioned_modeled_s", "ddp_bytes_per_step",
                 "ddp_modeled_s"});
  std::printf("%-10s | %-16s %-14s | %-14s %-12s\n", "vertices",
              "1D bytes/step", "1D modeled[s]", "DDP bytes/step",
              "DDP modeled[s]");
  BenchJsonWriter json("distributed_modes");

  for (double scale : {0.01, 0.04, 0.16}) {
    DatasetSpec spec = ex3_spec(scale);
    Rng rng(static_cast<std::uint64_t>(scale * 1e4));
    Event e = generate_event(spec.detector, rng);
    CsrMatrix a = e.graph.symmetric_adjacency();
    Matrix x = Matrix::random_normal(e.num_hits(), hidden, rng);

    DistRuntime rt(ranks);
    rt.run([&](Communicator& comm) {
      const LocalShard shard = make_shard(a, x, comm.rank(), comm.size());
      // One forward pass = `layers` all-gathers (backward doubles it; we
      // report forward only).
      for (std::size_t l = 0; l < layers; ++l)
        (void)partitioned_spmm(comm, shard, hidden);
    });
    const CommStats stats = rt.aggregate_stats();
    std::printf("%-10zu | %-16zu %-14.5f | %-14zu %-12.5f\n", e.num_hits(),
                stats.all_reduce_bytes, stats.modeled_seconds, model_bytes,
                ddp_modeled);
    csv.row(std::vector<double>{static_cast<double>(e.num_hits()),
                                static_cast<double>(stats.all_reduce_bytes),
                                stats.modeled_seconds,
                                static_cast<double>(model_bytes),
                                ddp_modeled});
    json.series("vertices=" + std::to_string(e.num_hits()))
        .param("vertices", static_cast<long long>(e.num_hits()))
        .metric("partitioned_bytes_per_step",
                static_cast<double>(stats.all_reduce_bytes))
        .metric("partitioned_modeled_s", stats.modeled_seconds)
        .metric("ddp_bytes_per_step", static_cast<double>(model_bytes))
        .metric("ddp_modeled_s", ddp_modeled);
  }
  // Projection to paper-scale CTD: n = 330.7K vertices.
  const std::size_t paper_bytes =
      330700ull * hidden * sizeof(float) * layers;
  std::printf(
      "\nprojection at full-scale CTD (330.7K vertices): 1D partitioned "
      "moves %.2f GB per\nforward pass vs DDP's fixed %.2f MB per step — "
      "the gap that motivates minibatch\nDDP for particle-graph GNNs.\n",
      paper_bytes / 1e9, model_bytes / 1e6);
  std::printf("series written to distributed_modes.csv\n");
  const std::string json_path =
      BenchJsonWriter::resolve_path(args.get("json-out", ""));
  if (json.write(json_path))
    std::printf("bench JSON written to %s\n", json_path.c_str());
  return 0;
}
