// Ablation A7: architecture/design choices called out in DESIGN.md —
// each trained briefly on the same Ex3-like data and compared on final
// validation quality and parameter count:
//
//   base            — distinct per-layer MLPs, LayerNorm, auto pos_weight
//   shared-weights  — one MLP pair shared across message-passing layers
//   no-layernorm    — LayerNorm disabled in every MLP
//   pos-weight-1    — unweighted BCE (ignores class imbalance)
//   depth-2 / depth-6 — message-passing depth sweep around the base (4)
//
//   ./bench_ablation_arch [--scale 0.04] [--train 4] [--epochs 5]

#include <cstdio>

#include "bench_json.hpp"
#include "detector/presets.hpp"
#include "gnn/gcn.hpp"
#include "io/csv.hpp"
#include "pipeline/evaluation.hpp"
#include "util/cli.hpp"
#include "util/log.hpp"

using namespace trkx;

namespace {

struct Variant {
  const char* name;
  IgnnConfig gnn;
  GnnTrainConfig train;
};

}  // namespace

int main(int argc, char** argv) {
  set_log_level(LogLevel::kWarn);
  ArgParser args(argc, argv);
  const double scale = args.get_double("scale", 0.04);
  const std::size_t n_train = static_cast<std::size_t>(args.get_int("train", 4));
  const std::size_t epochs = static_cast<std::size_t>(args.get_int("epochs", 5));

  DatasetSpec spec = ex3_spec(scale);
  Dataset data = generate_dataset(spec.name, spec.detector, n_train, 2, 0, 66);
  std::printf("=== Ablation: architecture choices (Ex3-like, %zu epochs) ===\n\n",
              epochs);

  IgnnConfig base_gnn;
  base_gnn.node_input_dim = spec.detector.node_feature_dim;
  base_gnn.edge_input_dim = spec.detector.edge_feature_dim;
  base_gnn.hidden_dim = 32;
  base_gnn.num_layers = 4;
  base_gnn.mlp_hidden = 1;
  base_gnn.layer_norm = true;

  GnnTrainConfig base_train;
  base_train.epochs = epochs;
  base_train.batch_size = 128;
  base_train.shadow = {.depth = 2, .fanout = 4};
  base_train.bulk_k = 4;
  base_train.seed = 19;
  base_train.evaluate_every_epoch = false;

  std::vector<Variant> variants;
  variants.push_back({"base", base_gnn, base_train});
  {
    Variant v{"shared-weights", base_gnn, base_train};
    v.gnn.shared_weights = true;
    variants.push_back(v);
  }
  {
    Variant v{"no-layernorm", base_gnn, base_train};
    v.gnn.layer_norm = false;
    variants.push_back(v);
  }
  {
    Variant v{"pos-weight-1", base_gnn, base_train};
    v.train.pos_weight = 1.0f;
    variants.push_back(v);
  }
  {
    // No message passing at all: an MLP on encoded edge features. The gap
    // to "base" quantifies what graph context buys.
    Variant v{"no-msg-passing", base_gnn, base_train};
    v.gnn.num_layers = 0;
    variants.push_back(v);
  }
  {
    // Attention-gated aggregation (extension beyond the paper).
    Variant v{"attention", base_gnn, base_train};
    v.gnn.attention = true;
    variants.push_back(v);
  }
  {
    Variant v{"depth-2", base_gnn, base_train};
    v.gnn.num_layers = 2;
    variants.push_back(v);
  }
  {
    Variant v{"depth-6", base_gnn, base_train};
    v.gnn.num_layers = 6;
    variants.push_back(v);
  }

  CsvWriter csv("arch_ablation.csv",
                {"variant", "params", "precision", "recall", "f1", "auc",
                 "train_seconds"});
  BenchJsonWriter json("ablation_arch");
  std::printf("%-16s %-9s %-10s %-10s %-10s %-10s %-9s\n", "variant",
              "params", "precision", "recall", "F1", "AUC", "time[s]");
  for (const Variant& v : variants) {
    GnnModel model(v.gnn, v.train.seed);
    TrainResult r = train_shadow(model, data.train, data.val, v.train,
                                 SamplerKind::kMatrixBulk);
    const BinaryMetrics val = evaluate_edges(model, data.val);
    const double auc = roc_auc(score_events(model, data.val));
    std::printf("%-16s %-9zu %-10.4f %-10.4f %-10.4f %-10.4f %-9.1f\n",
                v.name, model.store.total_size(), val.precision(),
                val.recall(), val.f1(), auc, r.total_seconds);
    csv.row(std::vector<std::string>{
        v.name, std::to_string(model.store.total_size()),
        format_double(val.precision()), format_double(val.recall()),
        format_double(val.f1()), format_double(auc),
        format_double(r.total_seconds)});
    json.series(v.name)
        .param("variant", v.name)
        .metric("params", static_cast<double>(model.store.total_size()))
        .metric("f1", val.f1())
        .metric("auc", auc)
        .metric("train_seconds", r.total_seconds);
  }
  // Model-family baseline: a GCN edge classifier (no per-edge hidden
  // state), trained full-graph for the same wall-clock scale.
  {
    GcnConfig gcn_cfg;
    gcn_cfg.node_input_dim = spec.detector.node_feature_dim;
    gcn_cfg.edge_input_dim = spec.detector.edge_feature_dim;
    gcn_cfg.hidden_dim = 32;
    gcn_cfg.num_layers = 4;
    ParameterStore store;
    Rng rng(base_train.seed);
    GcnEdgeClassifier gcn(store, gcn_cfg, rng);
    Adam opt(store, AdamOptions{.lr = 3e-3f});
    const float pos_weight = auto_pos_weight(data.train);
    WallTimer timer;
    for (std::size_t epoch = 0; epoch < epochs * 4; ++epoch) {
      for (const Event& e : data.train) {
        const CsrMatrix norm_adj =
            GcnEdgeClassifier::normalized_adjacency(e.graph);
        std::vector<float> labels(e.edge_labels.begin(), e.edge_labels.end());
        TapeContext ctx;
        Var logits = gcn.forward(ctx, norm_adj, e.node_features,
                                 e.edge_features, e.graph.src_indices(),
                                 e.graph.dst_indices());
        Var loss =
            ctx.tape().bce_with_logits(logits, labels, {}, pos_weight);
        opt.zero_grad();
        ctx.backward(loss);
        opt.step();
      }
    }
    BinaryMetrics val;
    ScoredEdges scored;
    for (const Event& e : data.val) {
      const auto probs =
          gcn.predict(e.node_features, e.edge_features, e.graph);
      for (std::size_t i = 0; i < probs.size(); ++i) {
        val.add(probs[i] >= 0.5f, e.edge_labels[i] != 0);
        scored.add(probs[i], e.edge_labels[i] != 0);
      }
    }
    std::printf("%-16s %-9zu %-10.4f %-10.4f %-10.4f %-10.4f %-9.1f\n",
                "gcn-baseline", store.total_size(), val.precision(),
                val.recall(), val.f1(), roc_auc(scored), timer.seconds());
    csv.row(std::vector<std::string>{
        "gcn-baseline", std::to_string(store.total_size()),
        format_double(val.precision()), format_double(val.recall()),
        format_double(val.f1()), format_double(roc_auc(scored)),
        format_double(timer.seconds())});
    json.series("gcn-baseline")
        .param("variant", "gcn-baseline")
        .metric("params", static_cast<double>(store.total_size()))
        .metric("f1", val.f1())
        .metric("auc", roc_auc(scored))
        .metric("train_seconds", timer.seconds());
  }

  std::printf("\nseries written to arch_ablation.csv\n");
  const std::string json_path =
      BenchJsonWriter::resolve_path(args.get("json-out", ""));
  if (json.write(json_path))
    std::printf("bench JSON written to %s\n", json_path.c_str());
  return 0;
}
