// Shared main() body for google-benchmark binaries that emit the unified
// bench JSON artifact (bench_json.hpp).
//
// Usage — a gb bench defines its BENCHMARK()s and then:
//
//   int main(int argc, char** argv) {
//     return trkx::gb_json_main(argc, argv, "sampling");
//   }
//
// gb_json_main peels --json-out off the arg list before google-benchmark
// validates it, runs the selected benchmarks under a capturing console
// reporter, and — when --json-out or TRKX_BENCH_JSON is set — writes one
// series per benchmark: the median per-iteration real time in
// milliseconds plus every user counter. This is what makes every
// microbenchmark a citizen of the perf trajectory (scripts/trkx-bench,
// scripts/check_regression.py) with zero per-bench plumbing.

#pragma once

#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdio>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "bench_json.hpp"

namespace trkx {

/// Console reporter that additionally captures every per-repetition run
/// so the JSON artifact can carry medians instead of a single sample.
class GbCaptureReporter : public benchmark::ConsoleReporter {
 public:
  struct Captured {
    std::vector<double> real_time_ms;        // per repetition
    std::map<std::string, double> counters;  // last repetition wins
  };

  void ReportRuns(const std::vector<Run>& reports) override {
    for (const Run& run : reports) {
      if (run.run_type != Run::RT_Iteration) continue;
      Captured& c = captured_[run.benchmark_name()];
      // Adjusted real time is per-iteration, in the run's time unit;
      // normalise to milliseconds.
      const double t =
          run.GetAdjustedRealTime() *
          benchmark::GetTimeUnitMultiplier(benchmark::kMillisecond) /
          benchmark::GetTimeUnitMultiplier(run.time_unit);
      c.real_time_ms.push_back(t);
      for (const auto& [name, counter] : run.counters)
        c.counters[name] = counter.value;
    }
    ConsoleReporter::ReportRuns(reports);
  }

  const std::map<std::string, Captured>& captured() const {
    return captured_;
  }

 private:
  std::map<std::string, Captured> captured_;
};

inline double gb_median(std::vector<double> v) {
  if (v.empty()) return 0.0;
  std::sort(v.begin(), v.end());
  const std::size_t m = v.size() / 2;
  return v.size() % 2 == 1 ? v[m] : 0.5 * (v[m - 1] + v[m]);
}

/// The shared main() body described in the header comment. `extra_series`
/// (optional) lets a bench append non-gb series (e.g. registry-derived
/// counters) before the artifact is written.
inline int gb_json_main(
    int argc, char** argv, const std::string& bench_name,
    const std::function<void(BenchJsonWriter&)>& extra_series = {}) {
  // Peel our flag off before google-benchmark validates the arg list.
  std::string json_out;
  std::vector<char*> keep;
  for (int i = 0; i < argc; ++i) {
    const std::string a = argv[i];
    if (a.rfind("--json-out=", 0) == 0) {
      json_out = a.substr(11);
    } else if (a == "--json-out" && i + 1 < argc) {
      json_out = argv[++i];
    } else {
      keep.push_back(argv[i]);
    }
  }
  int kept = static_cast<int>(keep.size());
  benchmark::Initialize(&kept, keep.data());
  if (benchmark::ReportUnrecognizedArguments(kept, keep.data())) return 1;
  set_run_tool("bench_" + bench_name);
  GbCaptureReporter reporter;
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();

  const std::string path = BenchJsonWriter::resolve_path(json_out);
  if (path.empty()) return 0;
  BenchJsonWriter json(bench_name);
  for (const auto& [name, run] : reporter.captured()) {
    auto& s = json.series(name);
    s.param("benchmark", name);
    s.metric("real_time_ms_median", gb_median(run.real_time_ms));
    for (const auto& [cname, value] : run.counters) s.metric(cname, value);
  }
  if (extra_series) extra_series(json);
  json.write(path);
  std::printf("bench JSON written to %s\n", path.c_str());
  return 0;
}

}  // namespace trkx
