// Ablation A9: end-to-end inference cost of the five-stage pipeline —
// the deployment-side metric (events/second and per-stage share) that
// complements the paper's training-side Figure 3.

#include <benchmark/benchmark.h>

#include "bench_gb_json.hpp"

#include "pipeline/pipeline.hpp"
#include "pipeline/track_fit.hpp"

namespace trkx {
namespace {

struct Fixture {
  DetectorConfig detector;
  std::vector<Event> events;
  std::unique_ptr<TrackingPipeline> pipeline;

  explicit Fixture(double particles) {
    detector.mean_particles = particles;
    Rng rng(static_cast<std::uint64_t>(particles) + 9);
    std::vector<Event> train;
    for (int i = 0; i < 2; ++i) {
      Rng er = rng.split();
      train.push_back(generate_event(detector, er));
    }
    for (int i = 0; i < 3; ++i) {
      Rng er = rng.split();
      events.push_back(generate_event(detector, er));
    }
    PipelineConfig cfg;
    cfg.embedding.epochs = 2;
    cfg.filter.epochs = 2;
    cfg.gnn.hidden_dim = 32;
    cfg.gnn.num_layers = 4;
    cfg.gnn.mlp_hidden = 1;
    cfg.gnn_train.epochs = 1;
    cfg.gnn_train.batch_size = 128;
    cfg.gnn_train.shadow = {.depth = 2, .fanout = 4};
    cfg.gnn_train.evaluate_every_epoch = false;
    cfg.use_learned_graphs = false;
    pipeline = std::make_unique<TrackingPipeline>(
        detector.node_feature_dim, detector.edge_feature_dim, cfg);
    pipeline->fit(train, {train.back()});
  }
};

Fixture& fixture_for(double particles) {
  static std::map<double, std::unique_ptr<Fixture>> cache;
  auto it = cache.find(particles);
  if (it == cache.end())
    it = cache.emplace(particles, std::make_unique<Fixture>(particles)).first;
  return *it->second;
}

void BM_PipelineReconstruct(benchmark::State& state) {
  Fixture& f = fixture_for(static_cast<double>(state.range(0)));
  std::size_t i = 0;
  for (auto _ : state) {
    const PipelineOutput out =
        f.pipeline->reconstruct(f.events[i++ % f.events.size()]);
    benchmark::DoNotOptimize(out);
  }
  state.counters["avg_hits"] = static_cast<double>(f.events[0].num_hits());
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_PipelineReconstruct)->Arg(30)->Arg(100)->Iterations(5)
    ->Unit(benchmark::kMillisecond);

void BM_GnnInferenceOnly(benchmark::State& state) {
  Fixture& f = fixture_for(static_cast<double>(state.range(0)));
  const Event& e = f.events[0];
  for (auto _ : state) {
    auto scores = f.pipeline->gnn().gnn->predict(e.node_features,
                                                 e.edge_features, e.graph);
    benchmark::DoNotOptimize(scores);
  }
  state.counters["edges"] = static_cast<double>(e.num_edges());
}
BENCHMARK(BM_GnnInferenceOnly)->Arg(30)->Arg(100)->Iterations(5)
    ->Unit(benchmark::kMillisecond);

void BM_TrackBuildOnly(benchmark::State& state) {
  Fixture& f = fixture_for(100.0);
  const Event& e = f.events[0];
  const auto scores = f.pipeline->gnn().gnn->predict(e.node_features,
                                                     e.edge_features, e.graph);
  TrackBuildConfig cfg;
  for (auto _ : state) {
    auto tracks = build_tracks(e, scores, cfg);
    benchmark::DoNotOptimize(tracks);
  }
}
BENCHMARK(BM_TrackBuildOnly)->Iterations(50)->Unit(benchmark::kMicrosecond);

void BM_TrackFitOnly(benchmark::State& state) {
  Fixture& f = fixture_for(100.0);
  const Event& e = f.events[0];
  const auto scores = f.pipeline->gnn().gnn->predict(e.node_features,
                                                     e.edge_features, e.graph);
  const auto tracks = build_tracks(e, scores, TrackBuildConfig{});
  for (auto _ : state) {
    for (const auto& t : tracks) {
      auto fit = fit_track(e, t, f.detector.b_field);
      benchmark::DoNotOptimize(fit);
    }
  }
  state.counters["tracks"] = static_cast<double>(tracks.size());
}
BENCHMARK(BM_TrackFitOnly)->Iterations(50)->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace trkx

int main(int argc, char** argv) {
  return trkx::gb_json_main(argc, argv, "inference");
}
