// Ablation A8: the GPU memory wall that motivates the paper (§III-B).
//
// Full-graph training must skip events whose activation footprint exceeds
// device memory, losing training data; ShaDow minibatch training never
// skips because its footprint is bounded by the sampled receptive field.
// This bench sweeps a simulated device-memory budget over CTD-like events
// (the dense dataset where the paper observed skipping) and reports what
// fraction of events — and of labelled edges — survives.
//
//   ./bench_memory_wall [--scale 0.01] [--events 12] [--hidden 64]
//                       [--layers 8]

#include <algorithm>
#include <cstdio>

#include "bench_json.hpp"
#include "detector/presets.hpp"
#include "io/csv.hpp"
#include "pipeline/gnn_train.hpp"
#include "sampling/matrix_shadow.hpp"
#include "util/cli.hpp"
#include "util/log.hpp"

using namespace trkx;

int main(int argc, char** argv) {
  set_log_level(LogLevel::kWarn);
  ArgParser args(argc, argv);
  const double scale = args.get_double("scale", 0.01);
  const std::size_t n_events =
      static_cast<std::size_t>(args.get_int("events", 12));

  DatasetSpec spec = ctd_spec(scale);
  std::vector<Event> events;
  Rng rng(71);
  for (std::size_t i = 0; i < n_events; ++i) {
    Rng er = rng.split();
    events.push_back(generate_event(spec.detector, er));
  }

  IgnnConfig gnn;
  gnn.node_input_dim = spec.detector.node_feature_dim;
  gnn.edge_input_dim = spec.detector.edge_feature_dim;
  gnn.hidden_dim = static_cast<std::size_t>(args.get_int("hidden", 64));
  gnn.num_layers = static_cast<std::size_t>(args.get_int("layers", 8));
  gnn.mlp_hidden = spec.mlp_hidden_layers - 1;

  std::printf("=== Ablation: the full-graph memory wall (CTD-like) ===\n");
  std::printf("%zu events; IGNN hidden %zu, %zu layers (paper config)\n\n",
              events.size(), gnn.hidden_dim, gnn.num_layers);

  // Per-event footprint distribution.
  std::vector<std::size_t> footprint;
  std::size_t total_edges = 0;
  for (const Event& e : events) {
    footprint.push_back(full_graph_memory_estimate(gnn, e));
    total_edges += e.num_edges();
  }
  std::printf("per-event full-graph footprint: min %.1f MB, max %.1f MB\n\n",
              *std::min_element(footprint.begin(), footprint.end()) / 1e6,
              *std::max_element(footprint.begin(), footprint.end()) / 1e6);

  CsvWriter csv("memory_wall.csv",
                {"budget_mb", "events_kept", "events_total",
                 "edge_fraction_kept"});
  std::printf("%-12s %-14s %-18s\n", "budget[MB]", "events kept",
              "labelled edges kept");
  BenchJsonWriter json("memory_wall");
  // Sweep budgets across the footprint distribution: midpoints between
  // consecutive event footprints (plus the extremes) so every transition
  // shows up.
  std::vector<std::size_t> sorted_fp = footprint;
  std::sort(sorted_fp.begin(), sorted_fp.end());
  std::vector<double> budgets{static_cast<double>(sorted_fp.front()) / 2e6};
  for (std::size_t i = 0; i + 1 < sorted_fp.size(); ++i)
    budgets.push_back((static_cast<double>(sorted_fp[i]) +
                       static_cast<double>(sorted_fp[i + 1])) /
                      2e6);
  budgets.push_back(static_cast<double>(sorted_fp.back()) * 1.05 / 1e6);
  for (double budget_mb : budgets) {
    GnnTrainConfig cfg;
    cfg.memory_budget_bytes =
        static_cast<std::size_t>(budget_mb * 1e6);
    std::size_t kept = 0, kept_edges = 0;
    for (std::size_t i = 0; i < events.size(); ++i) {
      if (fits_memory_budget(cfg, gnn, events[i])) {
        ++kept;
        kept_edges += events[i].num_edges();
      }
    }
    const double edge_frac =
        static_cast<double>(kept_edges) / static_cast<double>(total_edges);
    std::printf("%-12.1f %zu / %-10zu %-18.3f\n", budget_mb, kept,
                events.size(), edge_frac);
    csv.row(std::vector<double>{budget_mb, static_cast<double>(kept),
                                static_cast<double>(events.size()),
                                edge_frac});
    char label[32];
    std::snprintf(label, sizeof label, "budget=%.1fMB", budget_mb);
    json.series(label)
        .param("budget_mb", format_double(budget_mb))
        .metric("events_kept", static_cast<double>(kept))
        .metric("edge_fraction_kept", edge_frac);
  }

  // ShaDow comparison: sample an actual batch-256 subgraph from the
  // largest event and measure its footprint — bounded by the receptive
  // field, not the event, so minibatch training never skips.
  const auto largest = std::max_element(
      events.begin(), events.end(), [](const Event& a, const Event& b) {
        return a.num_edges() < b.num_edges();
      });
  MatrixShadowSampler sampler(largest->graph, {.depth = 3, .fanout = 6});
  Rng srng(5);
  auto batches = make_minibatches(largest->num_hits(), 256, srng);
  const ShadowSample sample = sampler.sample(batches.front(), srng);
  const std::size_t shadow_bytes =
      ignn_activation_estimate(gnn, sample.sub.graph.num_vertices(),
                               sample.sub.graph.num_edges()) *
      sizeof(float) * 3;
  std::printf(
      "\nShaDow minibatch footprint on the largest event (batch 256, d=3, "
      "s=6):\n%.1f MB (%zu vertices, %zu edges) — bounded by the sampled "
      "receptive field\nand INDEPENDENT of event size, so no events are "
      "ever skipped.\n",
      shadow_bytes / 1e6, sample.sub.graph.num_vertices(),
      sample.sub.graph.num_edges());
  // Projection to the paper's full-scale CTD events (Table I averages):
  const std::size_t paper_fp =
      ignn_activation_estimate(gnn, 330700, 6900000) * sizeof(float) * 3;
  std::printf(
      "projection: a full-scale CTD event (330.7K vertices, 6.9M edges) "
      "needs %.0f GB\nfor full-graph training — far beyond a 40 GB A100, "
      "while the ShaDow batch\nfootprint above is unchanged. This is the "
      "skipping the paper reports.\n",
      paper_fp / 1e9);
  json.series("shadow_footprint")
      .param("batch", "256")
      .metric("shadow_mb", shadow_bytes / 1e6)
      .metric("paper_fullgraph_gb", paper_fp / 1e9);
  std::printf("series written to memory_wall.csv\n");
  const std::string json_path =
      BenchJsonWriter::resolve_path(args.get("json-out", ""));
  if (json.write(json_path))
    std::printf("bench JSON written to %s\n", json_path.c_str());
  return 0;
}
