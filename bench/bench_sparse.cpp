// Ablation A3: sparse kernel microbenchmarks — the primitives the
// matrix-based sampler is built from (SpGEMM, SpMM, selection, transpose,
// row sampling).

#include <benchmark/benchmark.h>

#include "bench_gb_json.hpp"

#include "graph/generators.hpp"
#include "sparse/sample.hpp"
#include "sparse/spgemm.hpp"

namespace trkx {
namespace {

CsrMatrix random_graph_adjacency(std::size_t n, std::size_t degree,
                                 std::uint64_t seed) {
  Rng rng(seed);
  return random_regular_out(n, degree, rng).symmetric_adjacency();
}

void BM_Spgemm_QA(benchmark::State& state) {
  // The sampler's hot product: a (rows × n) one-nonzero-per-row Q times
  // the adjacency.
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const std::size_t q_rows = 1024;
  CsrMatrix a = random_graph_adjacency(n, 8, 1);
  Rng rng(2);
  std::vector<std::uint32_t> roots;
  for (std::size_t i = 0; i < q_rows; ++i)
    roots.push_back(static_cast<std::uint32_t>(rng.uniform_index(n)));
  CsrMatrix q = CsrMatrix::selection(n, roots);
  for (auto _ : state) {
    CsrMatrix p = spgemm(q, a);
    benchmark::DoNotOptimize(p);
  }
  state.counters["nnz_out"] = static_cast<double>(spgemm(q, a).nnz());
}
BENCHMARK(BM_Spgemm_QA)->Arg(1 << 12)->Arg(1 << 14)->Arg(1 << 16)
    ->Unit(benchmark::kMillisecond);

void BM_SpgemmSquare(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  CsrMatrix a = random_graph_adjacency(n, 6, 3);
  for (auto _ : state) {
    CsrMatrix c = spgemm(a, a);
    benchmark::DoNotOptimize(c);
  }
}
BENCHMARK(BM_SpgemmSquare)->Arg(1 << 10)->Arg(1 << 12)
    ->Unit(benchmark::kMillisecond);

void BM_Spmm(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  CsrMatrix a = random_graph_adjacency(n, 8, 4);
  Rng rng(5);
  Matrix x = Matrix::random_normal(n, 64, rng);
  for (auto _ : state) {
    Matrix y = spmm(a, x);
    benchmark::DoNotOptimize(y);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(a.nnz() * 64));
}
BENCHMARK(BM_Spmm)->Arg(1 << 12)->Arg(1 << 14)->Unit(benchmark::kMillisecond);

void BM_Transpose(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  CsrMatrix a = random_graph_adjacency(n, 8, 6);
  for (auto _ : state) {
    CsrMatrix t = a.transpose();
    benchmark::DoNotOptimize(t);
  }
}
BENCHMARK(BM_Transpose)->Arg(1 << 12)->Arg(1 << 14)
    ->Unit(benchmark::kMillisecond);

void BM_InducedDirect(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  CsrMatrix a = random_graph_adjacency(n, 8, 7);
  Rng rng(8);
  auto idx = rng.sample_without_replacement(static_cast<std::uint32_t>(n), 64);
  for (auto _ : state) {
    CsrMatrix s = a.induced(idx);
    benchmark::DoNotOptimize(s);
  }
}
BENCHMARK(BM_InducedDirect)->Arg(1 << 12)->Arg(1 << 14)
    ->Unit(benchmark::kMicrosecond);

void BM_InducedViaSpgemm(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  CsrMatrix a = random_graph_adjacency(n, 8, 7);
  Rng rng(8);
  auto idx = rng.sample_without_replacement(static_cast<std::uint32_t>(n), 64);
  for (auto _ : state) {
    CsrMatrix s = induced_via_spgemm(a, idx);
    benchmark::DoNotOptimize(s);
  }
}
BENCHMARK(BM_InducedViaSpgemm)->Arg(1 << 12)->Arg(1 << 14)
    ->Unit(benchmark::kMicrosecond);

void BM_SampleRows(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  CsrMatrix a = random_graph_adjacency(n, 16, 9);
  a.normalize_rows();
  Rng rng(10);
  for (auto _ : state) {
    CsrMatrix s = sample_rows(a, 6, rng);
    benchmark::DoNotOptimize(s);
  }
}
BENCHMARK(BM_SampleRows)->Arg(1 << 12)->Arg(1 << 14)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace trkx

int main(int argc, char** argv) {
  return trkx::gb_json_main(argc, argv, "sparse");
}
