// Ablation A6: the sampler taxonomy of §II-B — node-wise (GraphSAGE
// family), layer-wise (LADIES family), and subgraph (ShaDow) sampling —
// compared on sampling cost, receptive-field size, and edge coverage on
// an Ex3-like event graph.
//
// With --json-out <path> (or TRKX_BENCH_JSON) the per-benchmark times and
// counters are also written as a BENCH_samplers.json artifact in the
// unified schema validated by scripts/check_bench_json.py.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "bench_gb_json.hpp"
#include "detector/presets.hpp"
#include "sampling/layerwise.hpp"
#include "sampling/matrix_shadow.hpp"
#include "sampling/nodewise.hpp"
#include "sampling/shadow.hpp"

namespace trkx {
namespace {

const Event& test_event() {
  static const Event event = [] {
    DatasetSpec spec = ex3_spec(0.15);
    Rng rng(5);
    return generate_event(spec.detector, rng);
  }();
  return event;
}

std::vector<std::uint32_t> one_batch(const Event& e) {
  Rng rng(17);
  return make_minibatches(e.num_hits(), 256, rng).front();
}

void record_sample(benchmark::State& state, const ShadowSample& s) {
  state.counters["vertices"] = static_cast<double>(s.sub.graph.num_vertices());
  state.counters["edges"] = static_cast<double>(s.sub.graph.num_edges());
}

void BM_FamilyShadow(benchmark::State& state) {
  const Event& e = test_event();
  const auto batch = one_batch(e);
  ShadowSampler sampler(e.graph,
                        {.depth = static_cast<std::size_t>(state.range(0)),
                         .fanout = 6});
  Rng rng(23);
  ShadowSample last;
  for (auto _ : state) {
    last = sampler.sample(batch, rng);
    benchmark::DoNotOptimize(last);
  }
  record_sample(state, last);
}
BENCHMARK(BM_FamilyShadow)->Arg(2)->Arg(3)->Iterations(20)
    ->Unit(benchmark::kMillisecond);

void BM_FamilyNodewise(benchmark::State& state) {
  const Event& e = test_event();
  const auto batch = one_batch(e);
  std::vector<std::size_t> fanouts(static_cast<std::size_t>(state.range(0)),
                                   6);
  NodewiseSampler sampler(e.graph, {.fanouts = fanouts});
  Rng rng(23);
  ShadowSample last;
  for (auto _ : state) {
    last = sampler.sample(batch, rng);
    benchmark::DoNotOptimize(last);
  }
  record_sample(state, last);
}
BENCHMARK(BM_FamilyNodewise)->Arg(2)->Arg(3)->Iterations(20)
    ->Unit(benchmark::kMillisecond);

void BM_FamilyLayerwise(benchmark::State& state) {
  const Event& e = test_event();
  const auto batch = one_batch(e);
  LayerwiseSampler sampler(
      e.graph, {.depth = static_cast<std::size_t>(state.range(0)),
                .budget = 512});
  Rng rng(23);
  ShadowSample last;
  for (auto _ : state) {
    last = sampler.sample(batch, rng);
    benchmark::DoNotOptimize(last);
  }
  record_sample(state, last);
}
BENCHMARK(BM_FamilyLayerwise)->Arg(2)->Arg(3)->Iterations(20)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace trkx

int main(int argc, char** argv) {
  return trkx::gb_json_main(argc, argv, "samplers");
}
