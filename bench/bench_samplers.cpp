// Ablation A6: the sampler taxonomy of §II-B — node-wise (GraphSAGE
// family), layer-wise (LADIES family), and subgraph (ShaDow) sampling —
// compared on sampling cost, receptive-field size, and edge coverage on
// an Ex3-like event graph.
//
// With --json-out <path> (or TRKX_BENCH_JSON) the per-benchmark times and
// counters are also written as a BENCH_samplers.json artifact in the
// unified schema validated by scripts/check_bench_json.py.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "bench_json.hpp"
#include "detector/presets.hpp"
#include "sampling/layerwise.hpp"
#include "sampling/matrix_shadow.hpp"
#include "sampling/nodewise.hpp"
#include "sampling/shadow.hpp"

namespace trkx {
namespace {

const Event& test_event() {
  static const Event event = [] {
    DatasetSpec spec = ex3_spec(0.15);
    Rng rng(5);
    return generate_event(spec.detector, rng);
  }();
  return event;
}

std::vector<std::uint32_t> one_batch(const Event& e) {
  Rng rng(17);
  return make_minibatches(e.num_hits(), 256, rng).front();
}

void record_sample(benchmark::State& state, const ShadowSample& s) {
  state.counters["vertices"] = static_cast<double>(s.sub.graph.num_vertices());
  state.counters["edges"] = static_cast<double>(s.sub.graph.num_edges());
}

void BM_FamilyShadow(benchmark::State& state) {
  const Event& e = test_event();
  const auto batch = one_batch(e);
  ShadowSampler sampler(e.graph,
                        {.depth = static_cast<std::size_t>(state.range(0)),
                         .fanout = 6});
  Rng rng(23);
  ShadowSample last;
  for (auto _ : state) {
    last = sampler.sample(batch, rng);
    benchmark::DoNotOptimize(last);
  }
  record_sample(state, last);
}
BENCHMARK(BM_FamilyShadow)->Arg(2)->Arg(3)->Iterations(20)
    ->Unit(benchmark::kMillisecond);

void BM_FamilyNodewise(benchmark::State& state) {
  const Event& e = test_event();
  const auto batch = one_batch(e);
  std::vector<std::size_t> fanouts(static_cast<std::size_t>(state.range(0)),
                                   6);
  NodewiseSampler sampler(e.graph, {.fanouts = fanouts});
  Rng rng(23);
  ShadowSample last;
  for (auto _ : state) {
    last = sampler.sample(batch, rng);
    benchmark::DoNotOptimize(last);
  }
  record_sample(state, last);
}
BENCHMARK(BM_FamilyNodewise)->Arg(2)->Arg(3)->Iterations(20)
    ->Unit(benchmark::kMillisecond);

void BM_FamilyLayerwise(benchmark::State& state) {
  const Event& e = test_event();
  const auto batch = one_batch(e);
  LayerwiseSampler sampler(
      e.graph, {.depth = static_cast<std::size_t>(state.range(0)),
                .budget = 512});
  Rng rng(23);
  ShadowSample last;
  for (auto _ : state) {
    last = sampler.sample(batch, rng);
    benchmark::DoNotOptimize(last);
  }
  record_sample(state, last);
}
BENCHMARK(BM_FamilyLayerwise)->Arg(2)->Arg(3)->Iterations(20)
    ->Unit(benchmark::kMillisecond);

}  // namespace

namespace {

/// Console reporter that additionally captures every per-repetition run
/// so main() can dump medians into the unified bench JSON artifact.
class CaptureReporter : public benchmark::ConsoleReporter {
 public:
  struct Captured {
    std::vector<double> real_time_ms;            // per repetition
    std::map<std::string, double> counters;      // last repetition wins
  };

  void ReportRuns(const std::vector<Run>& reports) override {
    for (const Run& run : reports) {
      if (run.run_type != Run::RT_Iteration) continue;
      Captured& c = captured_[run.benchmark_name()];
      // Adjusted real time is per-iteration, in the run's time unit;
      // normalise to milliseconds.
      const double t = run.GetAdjustedRealTime() *
                       benchmark::GetTimeUnitMultiplier(benchmark::kMillisecond) /
                       benchmark::GetTimeUnitMultiplier(run.time_unit);
      c.real_time_ms.push_back(t);
      for (const auto& [name, counter] : run.counters)
        c.counters[name] = counter.value;
    }
    ConsoleReporter::ReportRuns(reports);
  }

  const std::map<std::string, Captured>& captured() const { return captured_; }

 private:
  std::map<std::string, Captured> captured_;
};

double median(std::vector<double> v) {
  if (v.empty()) return 0.0;
  std::sort(v.begin(), v.end());
  const std::size_t m = v.size() / 2;
  return v.size() % 2 == 1 ? v[m] : 0.5 * (v[m - 1] + v[m]);
}

}  // namespace
}  // namespace trkx

int main(int argc, char** argv) {
  // Peel our flags off before google-benchmark validates the arg list.
  std::string json_out;
  std::vector<char*> keep;
  for (int i = 0; i < argc; ++i) {
    const std::string a = argv[i];
    if (a.rfind("--json-out=", 0) == 0) {
      json_out = a.substr(11);
    } else if (a == "--json-out" && i + 1 < argc) {
      json_out = argv[++i];
    } else {
      keep.push_back(argv[i]);
    }
  }
  int kept = static_cast<int>(keep.size());
  benchmark::Initialize(&kept, keep.data());
  if (benchmark::ReportUnrecognizedArguments(kept, keep.data())) return 1;
  trkx::CaptureReporter reporter;
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();

  const std::string path = trkx::BenchJsonWriter::resolve_path(json_out);
  if (path.empty()) return 0;
  trkx::BenchJsonWriter json("samplers");
  for (const auto& [name, run] : reporter.captured()) {
    auto& s = json.series(name);
    s.param("benchmark", name);
    s.metric("real_time_ms_median", trkx::median(run.real_time_ms));
    for (const auto& [cname, value] : run.counters) s.metric(cname, value);
  }
  json.write(path);
  std::printf("bench JSON written to %s\n", path.c_str());
  return 0;
}
