// Ablation A5: batch-size sweep for ShaDow minibatch training.
//
// The paper's §III-B motivation: small-batch SGD generalises better than
// the effectively huge batches of full-graph training (Keskar et al.).
// This harness trains the same GNN at several batch sizes (full-graph as
// the "batch = whole event" extreme) and reports final validation
// precision/recall/F1 plus time per epoch.
//
//   ./bench_batchsize [--scale 0.04] [--train 4] [--epochs 6]
//                     [--json-out batchsize.json]

#include <cstdio>

#include "bench_json.hpp"
#include "detector/presets.hpp"
#include "io/csv.hpp"
#include "pipeline/evaluation.hpp"
#include "util/cli.hpp"
#include "util/log.hpp"

using namespace trkx;

int main(int argc, char** argv) {
  set_log_level(LogLevel::kWarn);
  ArgParser args(argc, argv);
  const double scale = args.get_double("scale", 0.04);
  const std::size_t n_train = static_cast<std::size_t>(args.get_int("train", 4));
  const std::size_t epochs = static_cast<std::size_t>(args.get_int("epochs", 6));

  DatasetSpec spec = ex3_spec(scale);
  Dataset data = generate_dataset(spec.name, spec.detector, n_train, 2, 0, 55);
  std::printf("=== Ablation: batch size vs convergence (Ex3-like) ===\n");
  std::printf("%zu graphs, avg %.0f vertices, %zu epochs\n\n", n_train,
              data.avg_vertices(), epochs);

  IgnnConfig gnn;
  gnn.node_input_dim = spec.detector.node_feature_dim;
  gnn.edge_input_dim = spec.detector.edge_feature_dim;
  gnn.hidden_dim = 32;
  gnn.num_layers = 3;
  gnn.mlp_hidden = 1;

  CsvWriter csv("batchsize_ablation.csv",
                {"batch", "precision", "recall", "f1", "auc",
                 "seconds_per_epoch"});
  std::printf("%-12s %-10s %-10s %-10s %-10s %-10s\n", "batch", "precision",
              "recall", "F1", "AUC", "s/epoch");
  BenchJsonWriter json("batchsize");

  for (std::size_t batch : {64u, 128u, 256u, 512u}) {
    GnnTrainConfig cfg;
    cfg.epochs = epochs;
    cfg.batch_size = batch;
    cfg.shadow = {.depth = 2, .fanout = 4};
    cfg.bulk_k = 4;
    cfg.seed = 13;
    cfg.evaluate_every_epoch = false;
    GnnModel model(gnn, cfg.seed);
    TrainResult r = train_shadow(model, data.train, data.val, cfg,
                                 SamplerKind::kMatrixBulk);
    const BinaryMetrics val = evaluate_edges(model, data.val);
    const double auc = roc_auc(score_events(model, data.val));
    const double spe = r.total_seconds / static_cast<double>(epochs);
    std::printf("%-12zu %-10.4f %-10.4f %-10.4f %-10.4f %-10.2f\n", batch,
                val.precision(), val.recall(), val.f1(), auc, spe);
    csv.row(std::vector<double>{static_cast<double>(batch), val.precision(),
                                val.recall(), val.f1(), auc, spe});
    json.series("batch=" + std::to_string(batch))
        .param("batch", static_cast<long long>(batch))
        .metric("f1", val.f1())
        .metric("auc", auc)
        .metric("seconds_per_epoch", spe);
  }

  // Full-graph = the "batch is the whole event" extreme.
  {
    GnnTrainConfig cfg;
    cfg.epochs = epochs;
    cfg.seed = 13;
    cfg.evaluate_every_epoch = false;
    GnnModel model(gnn, cfg.seed);
    TrainResult r = train_full_graph(model, data.train, data.val, cfg);
    const BinaryMetrics val = evaluate_edges(model, data.val);
    const double auc = roc_auc(score_events(model, data.val));
    const double spe = r.total_seconds / static_cast<double>(epochs);
    std::printf("%-12s %-10.4f %-10.4f %-10.4f %-10.4f %-10.2f\n",
                "full-graph", val.precision(), val.recall(), val.f1(), auc,
                spe);
    csv.row(std::vector<std::string>{"full", format_double(val.precision()),
                                     format_double(val.recall()),
                                     format_double(val.f1()),
                                     format_double(auc), format_double(spe)});
    json.series("batch=full")
        .param("batch", "full")
        .metric("f1", val.f1())
        .metric("auc", auc)
        .metric("seconds_per_epoch", spe);
  }
  std::printf("\nseries written to batchsize_ablation.csv\n");
  const std::string json_path =
      BenchJsonWriter::resolve_path(args.get("json-out", ""));
  if (json.write(json_path))
    std::printf("bench JSON written to %s\n", json_path.c_str());
  return 0;
}
