// Kernel-layer roofline: per-kernel bandwidth (GB/s) and arithmetic
// throughput (GFLOP/s) for the scalar and AVX2 dispatch tables at
// pipeline-representative shapes.
//
//   ./bench_kernels [--reps 9] [--inner 4] [--json-out BENCH_kernels.json]
//
// Each series is one (kernel, isa) pair; metrics carry the median wall
// time plus derived gb_per_sec / gflops_per_sec, and AVX2 series add
// speedup_vs_scalar so the regression gate and the DESIGN.md roofline
// table read straight off the artifact. On hosts without AVX2+FMA only
// the scalar series are emitted.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <functional>
#include <string>
#include <vector>

#include "bench_json.hpp"

#include "sparse/spgemm.hpp"
#include "tensor/kernels/kernels.hpp"
#include "tensor/matrix.hpp"
#include "util/cli.hpp"
#include "util/log.hpp"
#include "util/rng.hpp"

namespace trkx {
namespace {

using Clock = std::chrono::steady_clock;

/// Median wall seconds of `reps` timed runs, each executing fn() `inner`
/// times (inner repetition amortises clock granularity on fast kernels).
template <typename Fn>
double median_seconds(int reps, int inner, Fn&& fn) {
  std::vector<double> t;
  t.reserve(static_cast<std::size_t>(reps));
  fn();  // warm-up: page in buffers, resolve dispatch
  for (int r = 0; r < reps; ++r) {
    const auto t0 = Clock::now();
    for (int i = 0; i < inner; ++i) fn();
    const auto t1 = Clock::now();
    t.push_back(std::chrono::duration<double>(t1 - t0).count() / inner);
  }
  std::sort(t.begin(), t.end());
  return t[t.size() / 2];
}

struct Workload {
  std::string name;
  double bytes;   // touched per run (read + write), for GB/s
  double flops;   // arithmetic per run, for GFLOP/s
  double scalar_s = 0.0;
};

/// Pipeline-representative shapes: hidden_dim 64 message passing over
/// ~8k-node sampled subgraphs (ShaDow depth-2 fanout-4 batches).
constexpr std::size_t kRows = 8192;
constexpr std::size_t kCols = 64;
constexpr std::size_t kInner = 64;
constexpr std::size_t kEwN = kRows * kCols;

void run_isa(const kernels::KernelTable& t, int reps, int inner,
             std::vector<Workload>& loads, BenchJsonWriter& json,
             bool is_scalar) {
  Rng rng(17);
  const Matrix a = Matrix::random_normal(kRows, kInner, rng);
  const Matrix b = Matrix::random_normal(kInner, kCols, rng);
  const Matrix x = Matrix::random_normal(kRows, kCols, rng);
  const Matrix y = Matrix::random_normal(kRows, kCols, rng);
  Matrix out(kRows, kCols);
  std::vector<float> gamma(kCols, 1.0f), beta(kCols, 0.1f);
  std::vector<float> xhat(kEwN), inv_std(kRows), colsum(kCols);

  // ~degree-8 random sparse adjacency for spmm.
  std::vector<Triplet> trips;
  for (std::size_t r = 0; r < kRows; ++r)
    for (int d = 0; d < 8; ++d)
      trips.push_back({static_cast<std::uint32_t>(r),
                       static_cast<std::uint32_t>(rng.uniform_index(kRows)),
                       1.0f});
  const CsrMatrix adj = CsrMatrix::from_triplets(kRows, kRows, trips);
  const double nnz = static_cast<double>(adj.nnz());

  std::vector<std::uint32_t> idx(kRows);
  for (std::size_t i = 0; i < kRows; ++i)
    idx[i] = static_cast<std::uint32_t>(rng.uniform_index(kRows));

  Matrix w = Matrix::random_normal(kRows, kCols, rng);
  Matrix m0(kRows, kCols, 0.0f), v0(kRows, kCols, 0.0f);
  const kernels::AdamStep step{1e-3f, 0.9f, 0.999f, 1e-8f, 0.0f, 1.111f,
                               1.001f};

  struct Case {
    const char* name;
    double bytes;
    double flops;
    std::function<void()> fn;
  };
  const double fR = static_cast<double>(kRows), fC = static_cast<double>(kCols),
               fK = static_cast<double>(kInner), fN = static_cast<double>(kEwN);
  std::vector<Case> cases;
  cases.push_back({"gemm", 4.0 * (fR * fK + fK * fC + 2.0 * fR * fC),
                   2.0 * fR * fK * fC, [&] {
                     std::memset(out.data(), 0, kEwN * sizeof(float));
                     t.gemm(a.data(), b.data(), out.data(), kRows, kInner,
                            kCols);
                   }});
  cases.push_back({"spmm", 4.0 * (nnz * 2.0 + fR * fC * 2.0 + nnz * fC),
                   2.0 * nnz * fC, [&] {
                     std::memset(out.data(), 0, kEwN * sizeof(float));
                     t.spmm(adj.row_ptr().data(), adj.col_idx().data(),
                            adj.values().data(), x.data(), out.data(), kRows,
                            kCols);
                   }});
  cases.push_back({"row_gather", 4.0 * (fN * 2.0) + 4.0 * fR, 0.0, [&] {
                     t.row_gather(x.data(), idx.data(), out.data(), kRows,
                                  kCols);
                   }});
  cases.push_back({"ew_add", 4.0 * fN * 3.0, fN, [&] {
                     t.ew_add(x.data(), y.data(), out.data(), kEwN);
                   }});
  cases.push_back({"ew_axpy", 4.0 * fN * 3.0, 2.0 * fN, [&] {
                     t.ew_axpy(out.data(), 0.5f, x.data(), kEwN);
                   }});
  cases.push_back({"rowwise_sum", 4.0 * (fN + fR), fN, [&] {
                     t.rowwise_sum(x.data(), inv_std.data(), kRows, kCols);
                   }});
  cases.push_back({"colwise_sum", 4.0 * (fN + 2.0 * fC), fN, [&] {
                     std::memset(colsum.data(), 0, kCols * sizeof(float));
                     t.colwise_sum(x.data(), colsum.data(), kRows, kCols);
                   }});
  cases.push_back({"layer_norm_fwd", 4.0 * (fN * 3.0 + fR + 2.0 * fC),
                   8.0 * fN, [&] {
                     t.layer_norm_fwd(x.data(), gamma.data(), beta.data(),
                                      out.data(), xhat.data(), inv_std.data(),
                                      kRows, kCols, 1e-5f);
                   }});
  cases.push_back({"adam_update", 4.0 * fN * 7.0, 11.0 * fN, [&] {
                     t.adam_update(w.data(), x.data(), m0.data(), v0.data(),
                                   kEwN, step);
                   }});

  for (std::size_t c = 0; c < cases.size(); ++c) {
    const Case& k = cases[c];
    const double sec = median_seconds(reps, inner, k.fn);
    if (is_scalar) {
      loads.push_back({k.name, k.bytes, k.flops, sec});
    }
    auto& s = json.series(std::string(k.name) + "/" + t.name);
    s.param("kernel", k.name)
        .param("isa", t.name)
        .param("rows", static_cast<long long>(kRows))
        .param("cols", static_cast<long long>(kCols))
        .metric("seconds_median", sec)
        .metric("gb_per_sec", k.bytes / sec / 1e9)
        .metric("gflops_per_sec", k.flops / sec / 1e9);
    double speedup = 1.0;
    if (!is_scalar) {
      for (const Workload& wl : loads)
        if (wl.name == k.name) speedup = wl.scalar_s / sec;
      s.metric("speedup_vs_scalar", speedup);
    }
    std::printf("  %-16s %-6s  %8.1f us  %7.2f GB/s  %7.2f GFLOP/s", k.name,
                t.name, sec * 1e6, k.bytes / sec / 1e9, k.flops / sec / 1e9);
    if (!is_scalar)
      std::printf("  %5.2fx vs scalar", speedup);
    std::printf("\n");
  }
}

}  // namespace
}  // namespace trkx

int main(int argc, char** argv) {
  using namespace trkx;
  set_log_level(LogLevel::kWarn);
  ArgParser args(argc, argv);
  const int reps = args.get_int("reps", 9);
  const int inner = args.get_int("inner", 4);

  std::printf("=== Kernel roofline: scalar vs AVX2 dispatch tables ===\n");
  BenchJsonWriter json("kernels");
  std::vector<Workload> loads;
  run_isa(kernels::scalar_table(), reps, inner, loads, json,
          /*is_scalar=*/true);
  if (kernels::host_has_avx2()) {
    run_isa(kernels::avx2_table(), reps, inner, loads, json,
            /*is_scalar=*/false);
  } else {
    std::printf("host lacks AVX2+FMA: scalar series only\n");
  }

  const std::string json_path =
      BenchJsonWriter::resolve_path(args.get("json-out", ""));
  if (json.write(json_path))
    std::printf("bench JSON written to %s\n", json_path.c_str());
  return 0;
}
