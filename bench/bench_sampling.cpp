// Ablation A2: ShaDow sampler implementations (paper §III-C, Figure 2).
//
//   reference — Algorithm 2, one batch at a time (per-vertex walks)
//   matrix    — matrix-based sampling, one batch per call
//   bulk-k    — matrix-based sampling, k batches stacked per call (Eq. 1)
//
// Run on an Ex3-like event graph. Counters report the SpGEMM/sample/
// extract split for the matrix paths.

#include <benchmark/benchmark.h>

#include "bench_gb_json.hpp"

#include "detector/presets.hpp"
#include "sampling/matrix_shadow.hpp"
#include "sampling/shadow.hpp"

namespace trkx {
namespace {

const Event& test_event() {
  static const Event event = [] {
    DatasetSpec spec = ex3_spec(0.15);  // ~2k vertices
    Rng rng(5);
    return generate_event(spec.detector, rng);
  }();
  return event;
}

std::vector<std::vector<std::uint32_t>> batches_for(const Event& e,
                                                    std::size_t batch_size,
                                                    std::size_t count) {
  Rng rng(17);
  auto all = make_minibatches(e.num_hits(), batch_size, rng);
  all.resize(std::min(count, all.size()));
  return all;
}

void BM_ShadowReference(benchmark::State& state) {
  const Event& e = test_event();
  const auto batches = batches_for(e, 256, 4);
  ShadowSampler sampler(e.graph, {.depth = 3, .fanout = 6});
  Rng rng(23);
  std::size_t vertices = 0;
  for (auto _ : state) {
    for (const auto& b : batches) {
      ShadowSample s = sampler.sample(b, rng);
      vertices += s.sub.graph.num_vertices();
      benchmark::DoNotOptimize(s);
    }
  }
  state.counters["sampled_vertices_per_iter"] =
      static_cast<double>(vertices) / static_cast<double>(state.iterations());
}
BENCHMARK(BM_ShadowReference)->Iterations(10)->Unit(benchmark::kMillisecond);

void BM_ShadowMatrixPerBatch(benchmark::State& state) {
  const Event& e = test_event();
  const auto batches = batches_for(e, 256, 4);
  MatrixShadowSampler sampler(e.graph, {.depth = 3, .fanout = 6});
  Rng rng(23);
  BulkSampleStats stats;
  for (auto _ : state) {
    for (const auto& b : batches) {
      ShadowSample s = sampler.sample(b, rng, &stats);
      benchmark::DoNotOptimize(s);
    }
  }
  const double iters = static_cast<double>(state.iterations());
  state.counters["spgemm_ms"] = stats.spgemm_seconds * 1e3 / iters;
  state.counters["sample_ms"] = stats.sample_seconds * 1e3 / iters;
  state.counters["extract_ms"] = stats.extract_seconds * 1e3 / iters;
}
BENCHMARK(BM_ShadowMatrixPerBatch)->Iterations(10)->Unit(benchmark::kMillisecond);

void BM_ShadowMatrixBulk(benchmark::State& state) {
  const std::size_t k = static_cast<std::size_t>(state.range(0));
  const Event& e = test_event();
  const auto batches = batches_for(e, 256, 4);
  MatrixShadowSampler sampler(e.graph, {.depth = 3, .fanout = 6});
  Rng rng(23);
  BulkSampleStats stats;
  for (auto _ : state) {
    // Sample all 4 batches in chunks of k.
    for (std::size_t i = 0; i < batches.size(); i += k) {
      std::vector<std::vector<std::uint32_t>> chunk(
          batches.begin() + static_cast<std::ptrdiff_t>(i),
          batches.begin() +
              static_cast<std::ptrdiff_t>(std::min(i + k, batches.size())));
      auto s = sampler.sample_bulk(chunk, rng, &stats);
      benchmark::DoNotOptimize(s);
    }
  }
  const double iters = static_cast<double>(state.iterations());
  state.counters["spgemm_ms"] = stats.spgemm_seconds * 1e3 / iters;
  state.counters["sample_ms"] = stats.sample_seconds * 1e3 / iters;
  state.counters["extract_ms"] = stats.extract_seconds * 1e3 / iters;
}
BENCHMARK(BM_ShadowMatrixBulk)->Arg(1)->Arg(2)->Arg(4)->Iterations(10)
    ->Unit(benchmark::kMillisecond);

/// Sampler scaling with fanout/depth (cost drivers of the receptive field).
void BM_ShadowFanout(benchmark::State& state) {
  const Event& e = test_event();
  const auto batches = batches_for(e, 256, 1);
  MatrixShadowSampler sampler(
      e.graph, {.depth = 3,
                .fanout = static_cast<std::size_t>(state.range(0))});
  Rng rng(29);
  for (auto _ : state) {
    auto s = sampler.sample_bulk(batches, rng);
    benchmark::DoNotOptimize(s);
  }
}
BENCHMARK(BM_ShadowFanout)->Arg(2)->Arg(4)->Arg(8)->Iterations(10)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace trkx

int main(int argc, char** argv) {
  return trkx::gb_json_main(argc, argv, "sampling");
}
