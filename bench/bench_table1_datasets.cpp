// Table I reproduction: dataset summary statistics.
//
// Generates the two synthetic dataset presets (CTD-like and Ex3-like) and
// prints the same columns the paper's Table I reports, next to the paper's
// values. Ex3 is generated at full scale; CTD at 1/16 scale with the
// paper-matching edges-per-vertex density (see DESIGN.md §2 for the
// substitution rationale). A CSV with the series is written next to the
// binary.
//
//   ./bench_table1_datasets [--events 8] [--ex3-scale 1.0]
//                           [--ctd-scale 0.0625] [--seed 1]
//                           [--json-out table1.json]

#include <cstdio>

#include "bench_json.hpp"
#include "detector/presets.hpp"
#include "io/csv.hpp"
#include "util/cli.hpp"
#include "util/log.hpp"

using namespace trkx;

namespace {

struct Row {
  DatasetSpec spec;
  double avg_vertices = 0.0;
  double avg_edges = 0.0;
  double positive_fraction = 0.0;
};

Row measure(DatasetSpec spec, std::size_t events, std::uint64_t seed) {
  Row row;
  row.spec = spec;
  Rng rng(seed);
  for (std::size_t i = 0; i < events; ++i) {
    Rng er = rng.split();
    Event e = generate_event(spec.detector, er);
    row.avg_vertices += static_cast<double>(e.num_hits());
    row.avg_edges += static_cast<double>(e.num_edges());
    row.positive_fraction += e.positive_edge_fraction();
  }
  row.avg_vertices /= static_cast<double>(events);
  row.avg_edges /= static_cast<double>(events);
  row.positive_fraction /= static_cast<double>(events);
  return row;
}

std::string human(double v) {
  char buf[32];
  if (v >= 1e6)
    std::snprintf(buf, sizeof buf, "%.1fM", v / 1e6);
  else if (v >= 1e3)
    std::snprintf(buf, sizeof buf, "%.1fK", v / 1e3);
  else
    std::snprintf(buf, sizeof buf, "%.0f", v);
  return buf;
}

}  // namespace

int main(int argc, char** argv) {
  set_log_level(LogLevel::kWarn);
  ArgParser args(argc, argv);
  const std::size_t events =
      static_cast<std::size_t>(args.get_int("events", 8));
  const double ex3_scale = args.get_double("ex3-scale", 1.0);
  const double ctd_scale = args.get_double("ctd-scale", 1.0 / 16.0);
  const std::uint64_t seed = static_cast<std::uint64_t>(args.get_int("seed", 1));

  std::printf("=== Table I: datasets (paper vs this reproduction) ===\n");
  std::printf("averaged over %zu generated events per dataset\n\n", events);

  const Row rows[] = {
      measure(ctd_spec(ctd_scale), events, seed),
      measure(ex3_spec(ex3_scale), events, seed + 1),
  };

  std::printf("%-6s %-7s | %-12s %-12s | %-12s %-12s | %-10s %-6s %-6s\n",
              "Name", "Graphs", "Vertices(p)", "Vertices", "Edges(p)",
              "Edges", "MLP-Layers", "VtxF", "EdgeF");
  CsvWriter csv("table1_datasets.csv",
                {"name", "scale", "avg_vertices", "avg_edges",
                 "paper_vertices", "paper_edges", "edges_per_vertex",
                 "paper_edges_per_vertex", "positive_fraction"});
  BenchJsonWriter json("table1_datasets");
  for (const Row& r : rows) {
    // The paper uses 80 train / 10 val / 10 test graphs for both datasets.
    std::printf("%-6s %-7s | %-12s %-12s | %-12s %-12s | %-10zu %-6zu %-6zu\n",
                r.spec.name.c_str(), "80",
                human(r.spec.paper_avg_vertices * r.spec.scale).c_str(),
                human(r.avg_vertices).c_str(),
                human(r.spec.paper_avg_edges * r.spec.scale).c_str(),
                human(r.avg_edges).c_str(), r.spec.mlp_hidden_layers,
                r.spec.detector.node_feature_dim,
                r.spec.detector.edge_feature_dim);
    csv.row(std::vector<double>{
        r.spec.name == "CTD" ? 0.0 : 1.0, r.spec.scale, r.avg_vertices,
        r.avg_edges, r.spec.paper_avg_vertices, r.spec.paper_avg_edges,
        r.avg_edges / r.avg_vertices,
        r.spec.paper_avg_edges / r.spec.paper_avg_vertices,
        r.positive_fraction});
    json.series(r.spec.name)
        .param("dataset", r.spec.name)
        .metric("avg_vertices", r.avg_vertices)
        .metric("avg_edges", r.avg_edges)
        .metric("edges_per_vertex", r.avg_edges / r.avg_vertices)
        .metric("positive_fraction", r.positive_fraction);
  }
  std::printf(
      "\n(p) columns are the paper's Table I values scaled by the preset's\n"
      "generation scale (CTD %.4f, Ex3 %.4f); the edges-per-vertex density\n"
      "target is the paper's full-scale ratio (CTD %.1f, Ex3 %.1f).\n",
      ctd_scale, ex3_scale, 6.9e6 / 330.7e3, 47.8e3 / 13.0e3);
  std::printf("measured: CTD %.1f  Ex3 %.1f edges/vertex\n",
              rows[0].avg_edges / rows[0].avg_vertices,
              rows[1].avg_edges / rows[1].avg_vertices);
  std::printf("series written to table1_datasets.csv\n");
  const std::string json_path =
      BenchJsonWriter::resolve_path(args.get("json-out", ""));
  if (json.write(json_path))
    std::printf("bench JSON written to %s\n", json_path.c_str());
  return 0;
}
