#include "util/rng.hpp"

#include <cmath>
#include <unordered_set>

namespace trkx {

double Rng::normal() {
  if (have_spare_) {
    have_spare_ = false;
    return spare_;
  }
  // Box–Muller; u must be in (0, 1].
  double u = 1.0 - uniform();
  double v = uniform();
  // NOLINT(trkx-exp-log): u = 1 - uniform() ∈ (0, 1], so log(u) is finite
  double r = std::sqrt(-2.0 * std::log(u));
  double theta = 2.0 * M_PI * v;
  spare_ = r * std::sin(theta);
  have_spare_ = true;
  return r * std::cos(theta);
}

int Rng::poisson(double lambda) {
  TRKX_CHECK(lambda >= 0.0);
  if (lambda == 0.0) return 0;
  if (lambda < 30.0) {
    // Knuth's multiplication method.
    const double limit = std::exp(-lambda);
    double p = 1.0;
    int k = 0;
    do {
      ++k;
      p *= uniform();
    } while (p > limit);
    return k - 1;
  }
  // Normal approximation with continuity correction; adequate for the
  // detector noise model where lambda is O(10^2..10^4).
  double x = normal(lambda, std::sqrt(lambda));
  return x < 0.0 ? 0 : static_cast<int>(x + 0.5);
}

std::vector<std::uint32_t> Rng::sample_without_replacement(std::uint32_t n,
                                                           std::uint32_t k) {
  std::vector<std::uint32_t> out;
  if (k >= n) {
    out.resize(n);
    for (std::uint32_t i = 0; i < n; ++i) out[i] = i;
    return out;
  }
  out.reserve(k);
  // Floyd's algorithm: k iterations, expected O(k) set operations.
  std::unordered_set<std::uint32_t> seen;
  seen.reserve(k * 2);
  for (std::uint32_t j = n - k; j < n; ++j) {
    // NOLINT(trkx-narrow-cast): uniform_index(j + 1) <= j, already a uint32
    std::uint32_t t = static_cast<std::uint32_t>(uniform_index(j + 1));
    if (seen.insert(t).second) {
      out.push_back(t);
    } else {
      seen.insert(j);
      out.push_back(j);
    }
  }
  return out;
}

}  // namespace trkx
