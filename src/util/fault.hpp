#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace trkx::fault {

/// What an armed fault site does when it fires.
enum class Kind {
  kError,     ///< throw FaultInjectedError at the site
  kDelay,     ///< sleep for `delay_ms` (models a slow disk / NIC hiccup)
  kRankKill,  ///< throw RankKilledError (simulates a dead rank)
};

const char* kind_name(Kind kind);

/// One armed fault: a named site plus a deterministic trigger. Exactly one
/// of the triggers is normally set; when several are set, any of them
/// firing injects the fault.
struct Spec {
  std::string site;     ///< e.g. "io.read_event", "dist.all_reduce"
  Kind kind = Kind::kError;
  std::uint64_t nth = 0;    ///< fire on exactly the nth matching call (1-based)
  std::uint64_t every = 0;  ///< fire on every k-th matching call
  double prob = 0.0;        ///< seeded per-call probability in [0, 1]
  std::uint64_t seed = 0;   ///< RNG seed for `prob` draws (reproducible)
  std::uint64_t delay_ms = 10;  ///< sleep length for kDelay
  int rank = -1;            ///< only fire on this rank; -1 = any rank
};

/// Parse one `site:kind[:key=value]...` clause. Kinds: error | delay |
/// rank-kill. Keys: nth=N, every=K, prob=P, seed=S, ms=M, rank=R.
/// Throws trkx::Error on malformed input (chaos runs must fail loudly on
/// a typo, not silently run fault-free).
Spec parse_spec(const std::string& text);

/// Fired-fault callback (site, kind). Installed once by the obs layer to
/// bump `fault.injected` counters; a plain function pointer so util does
/// not depend on obs (the library layering goes the other way).
using Observer = void (*)(const char* site, Kind kind);

/// Process-wide registry of armed faults. Thread-safe; the un-armed fast
/// path is a single relaxed atomic load so production code can leave
/// `fault::inject(...)` calls compiled in.
class Registry {
 public:
  static Registry& global();

  void arm(Spec spec);
  /// Arm every `;`-separated clause of `text` (the TRKX_FAULTS grammar).
  void arm_from_string(const std::string& text);
  /// Arm from the TRKX_FAULTS environment variable, if set. Call sites:
  /// example/bench mains and chaos tests — never static initialisers, so
  /// ordinary test runs stay fault-free.
  void arm_from_env();
  /// Disarm everything and reset call/injection counters.
  void clear();

  std::size_t armed_count() const;
  /// Injections fired at `site` since the last clear().
  std::uint64_t injected(const std::string& site) const;
  std::uint64_t total_injected() const;

  void set_observer(Observer observer);

  /// Evaluate every armed spec for `site` on `rank`; sleeps or throws if
  /// one fires. No-op (one atomic load) when nothing is armed.
  void check(const char* site, int rank);

 private:
  Registry() = default;
  struct Impl;
  static Impl& impl();
};

/// The per-site hook. Sites pass their rank when they have one so
/// rank-scoped specs (rank=R) can target a single replica.
inline void inject(const char* site, int rank = -1) {
  Registry::global().check(site, rank);
}

}  // namespace trkx::fault
