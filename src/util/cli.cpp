#include "util/cli.hpp"

#include <cstdlib>

#include "util/error.hpp"

namespace trkx {

ArgParser::ArgParser(int argc, char** argv) {
  program_ = argc > 0 ? argv[0] : "";
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(arg);
      continue;
    }
    std::string key = arg.substr(2);
    auto eq = key.find('=');
    if (eq != std::string::npos) {
      values_[key.substr(0, eq)] = key.substr(eq + 1);
    } else if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      values_[key] = argv[++i];
    } else {
      values_[key] = "true";  // bare flag
    }
  }
}

bool ArgParser::has(const std::string& key) const {
  return values_.count(key) > 0;
}

std::string ArgParser::get(const std::string& key,
                           const std::string& fallback) const {
  auto it = values_.find(key);
  return it == values_.end() ? fallback : it->second;
}

int ArgParser::get_int(const std::string& key, int fallback) const {
  auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  return std::atoi(it->second.c_str());
}

double ArgParser::get_double(const std::string& key, double fallback) const {
  auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  return std::atof(it->second.c_str());
}

bool ArgParser::get_bool(const std::string& key, bool fallback) const {
  auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  const std::string& v = it->second;
  return v == "true" || v == "1" || v == "yes" || v == "on";
}

}  // namespace trkx
