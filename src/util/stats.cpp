#include "util/stats.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"
#include "util/rng.hpp"

namespace trkx {

namespace {
/// Deterministic per-stat random index in [0, n): one splitmix64 step on
/// the stat's own state. Using trkx::Rng machinery keeps the reservoir
/// reproducible across runs (fixed seed, no global RNG involved).
std::size_t reservoir_index(std::uint64_t& state, std::size_t n) {
  Rng r(state);
  const std::uint64_t draw = r.next_u64();
  state = draw;
  return static_cast<std::size_t>(draw % n);
}
}  // namespace

void RunningStat::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
  // Algorithm R: the i-th observation replaces a uniformly random slot
  // with probability cap/i once the reservoir is full.
  if (reservoir_.size() < kReservoirCap) {
    reservoir_.push_back(x);
  } else {
    const std::size_t j = reservoir_index(rng_state_, n_);
    if (j < kReservoirCap) reservoir_[j] = x;
  }
}

void RunningStat::merge(const RunningStat& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(n_);
  const double nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  mean_ += delta * nb / (na + nb);  // NOLINT(trkx-div-guard): na, nb >= 1
  // NOLINT(trkx-div-guard): na, nb >= 1 after the early returns above
  m2_ += other.m2_ + delta * delta * na * nb / (na + nb);
  if (reservoir_.size() + other.reservoir_.size() <= kReservoirCap) {
    reservoir_.insert(reservoir_.end(), other.reservoir_.begin(),
                      other.reservoir_.end());
  } else {
    // Re-sample a cap-sized reservoir where each side contributes in
    // proportion to its observation count (with replacement — this is a
    // quantile estimator, not an exact archive).
    std::vector<double> merged;
    merged.reserve(kReservoirCap);
    const std::uint64_t threshold = static_cast<std::uint64_t>(
        na / (na + nb) * 1e9);  // NOLINT(trkx-div-guard): na, nb >= 1
    for (std::size_t i = 0; i < kReservoirCap; ++i) {
      const bool from_a =
          reservoir_index(rng_state_, 1000000000ull) < threshold;
      const std::vector<double>& src =
          from_a ? reservoir_ : other.reservoir_;
      merged.push_back(src[reservoir_index(rng_state_, src.size())]);
    }
    reservoir_ = std::move(merged);
  }
  n_ += other.n_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double RunningStat::percentile(double p) const {
  if (n_ == 0 || reservoir_.empty()) return 0.0;
  const double est = trkx::percentile(reservoir_, p);
  return std::clamp(est, min_, max_);
}

double RunningStat::variance() const {
  return n_ < 2 ? 0.0 : m2_ / static_cast<double>(n_ - 1);
}

double RunningStat::stddev() const { return std::sqrt(variance()); }

double percentile(std::vector<double> values, double p) {
  TRKX_CHECK(!values.empty());
  TRKX_CHECK(p >= 0.0 && p <= 100.0);
  std::sort(values.begin(), values.end());
  if (values.size() == 1) return values[0];
  const double rank = p / 100.0 * static_cast<double>(values.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, values.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return values[lo] * (1.0 - frac) + values[hi] * frac;
}

double mean(const std::vector<double>& values) {
  if (values.empty()) return 0.0;
  double s = 0.0;
  for (double v : values) s += v;
  return s / static_cast<double>(values.size());
}

double stddev(const std::vector<double>& values) {
  if (values.size() < 2) return 0.0;
  const double m = mean(values);
  double s = 0.0;
  for (double v : values) s += (v - m) * (v - m);
  return std::sqrt(s / static_cast<double>(values.size() - 1));
}

void BinaryMetrics::add(bool predicted, bool actual) {
  if (predicted && actual) ++true_positives;
  else if (predicted && !actual) ++false_positives;
  else if (!predicted && actual) ++false_negatives;
  else ++true_negatives;
}

void BinaryMetrics::merge(const BinaryMetrics& other) {
  true_positives += other.true_positives;
  false_positives += other.false_positives;
  true_negatives += other.true_negatives;
  false_negatives += other.false_negatives;
}

std::size_t BinaryMetrics::total() const {
  return true_positives + false_positives + true_negatives + false_negatives;
}

double BinaryMetrics::precision() const {
  const std::size_t denom = true_positives + false_positives;
  return denom == 0 ? 0.0
                    : static_cast<double>(true_positives) /
                          static_cast<double>(denom);
}

double BinaryMetrics::recall() const {
  const std::size_t denom = true_positives + false_negatives;
  return denom == 0 ? 0.0
                    : static_cast<double>(true_positives) /
                          static_cast<double>(denom);
}

double BinaryMetrics::f1() const {
  const double p = precision();
  const double r = recall();
  return (p + r) == 0.0 ? 0.0 : 2.0 * p * r / (p + r);
}

double BinaryMetrics::accuracy() const {
  const std::size_t t = total();
  return t == 0 ? 0.0
                : static_cast<double>(true_positives + true_negatives) /
                      static_cast<double>(t);
}

}  // namespace trkx
