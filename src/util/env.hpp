#pragma once

#include <cstddef>
#include <iosfwd>
#include <string>
#include <vector>

/// Central registry of every TRKX_* runtime environment knob.
///
/// The scattered `std::getenv("TRKX_...")` call sites grew one per PR —
/// tracing, pooling, SIMD dispatch, fault injection — until no single
/// place could answer "what knobs exist, what do they default to, and
/// where are they documented?". All runtime knobs now route through
/// `trkx::env::get_*`, which validates the name against the static
/// registry below (an unregistered name is a programming error and
/// throws), and the registry itself is machine-readable:
///
///   * `dump_registry_json()` feeds the trkx-env-registry analyzer pass
///     and `scripts/check_env_docs.py`, which validates the README's
///     knob table against this table — docs cannot drift from code.
///   * The trkx-analyze `env-registry` pass rejects any direct
///     `getenv("TRKX_*")` outside env.cpp and any accessor call naming
///     a knob this table does not declare.
///
/// Values are read live from the process environment on every call (no
/// caching here): several knobs are re-read intentionally (tests toggle
/// TRKX_SIMD between ctest laps), and callers that want
/// read-once-at-startup semantics keep their own `static` (they always
/// did).
namespace trkx::env {

/// One registered knob. `def` is the documented default *as a string*
/// (what the typed accessors fall back to when the variable is unset or
/// empty); `doc` is the one-line description the README table carries.
struct Knob {
  const char* name;
  const char* def;
  const char* doc;
};

/// Every registered TRKX_* knob, sorted by name.
const std::vector<Knob>& knobs();

/// True iff `name` is in the registry.
bool is_registered(const std::string& name);

/// Raw environment value, or nullptr when unset. Throws trkx::Error if
/// `name` is not registered — new knobs must be added to the registry
/// (src/util/env.cpp) first.
const char* raw(const std::string& name);

/// True when the variable is set to a non-empty value.
bool is_set(const std::string& name);

/// String value; unset/empty falls back to the registry default.
std::string get_string(const std::string& name);

/// Integer value; unset/empty/non-numeric falls back to the registry
/// default.
long get_int(const std::string& name);

/// Floating-point value; unset/empty/non-numeric falls back to the
/// registry default.
double get_double(const std::string& name);

/// Boolean value: "0", "false", "off", "no" (case-sensitive) are false,
/// any other non-empty value is true; unset/empty falls back to the
/// registry default.
bool get_bool(const std::string& name);

/// Dump the registry as a JSON array of {"name", "default", "doc"}
/// objects (sorted by name) — the machine-readable side consumed by the
/// analyzer and the README-table validator.
void dump_registry_json(std::ostream& os);

}  // namespace trkx::env
