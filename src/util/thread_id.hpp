#pragma once

namespace trkx {

/// Small dense id for the calling thread: 0 for the first thread that asks,
/// 1 for the second, and so on. Stable for the thread's lifetime. Used to
/// attribute log lines and trace events to threads without exposing opaque
/// std::thread::id values, and to index per-thread metric shards.
int this_thread_id();

}  // namespace trkx
