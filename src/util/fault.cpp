#include "util/fault.hpp"

#include <atomic>
#include <charconv>
#include <chrono>
#include <cstdlib>
#include <thread>

#include "util/annotations.hpp"
#include "util/env.hpp"
#include "util/error.hpp"
#include "util/log.hpp"
#include "util/rng.hpp"

namespace trkx::fault {

namespace {

/// FNV-1a over the site name: keys the per-site probability streams so
/// two sites armed with the same seed draw independently.
std::uint64_t site_hash(const char* s) {
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (; *s != '\0'; ++s) h = (h ^ static_cast<unsigned char>(*s)) * 0x100000001b3ull;
  return h;
}

std::uint64_t parse_u64(const std::string& clause, const std::string& value) {
  std::uint64_t out = 0;
  const auto [ptr, ec] =
      std::from_chars(value.data(), value.data() + value.size(), out);
  TRKX_CHECK_MSG(ec == std::errc() && ptr == value.data() + value.size(),
                 "TRKX_FAULTS: bad integer '" << value << "' in '" << clause
                                              << "'");
  return out;
}

double parse_prob(const std::string& clause, const std::string& value) {
  double out = 0.0;
  const auto [ptr, ec] =
      std::from_chars(value.data(), value.data() + value.size(), out);
  TRKX_CHECK_MSG(ec == std::errc() && ptr == value.data() + value.size() &&
                     out >= 0.0 && out <= 1.0,
                 "TRKX_FAULTS: bad probability '" << value << "' in '"
                                                  << clause << "'");
  return out;
}

int parse_rank(const std::string& clause, const std::string& value) {
  const std::uint64_t r = parse_u64(clause, value);
  TRKX_CHECK_MSG(r <= 1u << 20, "TRKX_FAULTS: implausible rank in '" << clause
                                                                     << "'");
  return static_cast<int>(r);
}

}  // namespace

const char* kind_name(Kind kind) {
  switch (kind) {
    case Kind::kError: return "error";
    case Kind::kDelay: return "delay";
    case Kind::kRankKill: return "rank-kill";
  }
  return "?";
}

Spec parse_spec(const std::string& text) {
  std::vector<std::string> fields;
  std::size_t start = 0;
  while (start <= text.size()) {
    const std::size_t colon = text.find(':', start);
    if (colon == std::string::npos) {
      fields.push_back(text.substr(start));
      break;
    }
    fields.push_back(text.substr(start, colon - start));
    start = colon + 1;
  }
  TRKX_CHECK_MSG(fields.size() >= 2 && !fields[0].empty(),
                 "TRKX_FAULTS: expected 'site:kind[:key=value...]', got '"
                     << text << "'");
  Spec spec;
  spec.site = fields[0];
  const std::string& kind = fields[1];
  if (kind == "error") {
    spec.kind = Kind::kError;
  } else if (kind == "delay") {
    spec.kind = Kind::kDelay;
  } else if (kind == "rank-kill") {
    spec.kind = Kind::kRankKill;
  } else {
    TRKX_CHECK_MSG(false, "TRKX_FAULTS: unknown kind '"
                              << kind << "' in '" << text
                              << "' (want error|delay|rank-kill)");
  }
  bool have_trigger = false;
  for (std::size_t i = 2; i < fields.size(); ++i) {
    const std::string& field = fields[i];
    const std::size_t eq = field.find('=');
    TRKX_CHECK_MSG(eq != std::string::npos && eq > 0,
                   "TRKX_FAULTS: expected key=value, got '" << field
                                                            << "' in '"
                                                            << text << "'");
    const std::string key = field.substr(0, eq);
    const std::string value = field.substr(eq + 1);
    if (key == "nth") {
      spec.nth = parse_u64(text, value);
      have_trigger = true;
    } else if (key == "every") {
      spec.every = parse_u64(text, value);
      have_trigger = true;
    } else if (key == "prob") {
      spec.prob = parse_prob(text, value);
      have_trigger = true;
    } else if (key == "seed") {
      spec.seed = parse_u64(text, value);
    } else if (key == "ms") {
      spec.delay_ms = parse_u64(text, value);
    } else if (key == "rank") {
      spec.rank = parse_rank(text, value);
    } else {
      TRKX_CHECK_MSG(false, "TRKX_FAULTS: unknown key '" << key << "' in '"
                                                         << text << "'");
    }
  }
  if (!have_trigger) spec.nth = 1;  // default: fire on the first call
  return spec;
}

struct Registry::Impl {
  struct Armed {
    Spec spec;
    std::uint64_t calls = 0;
    std::uint64_t fired = 0;
  };

  std::atomic<std::size_t> armed{0};
  std::atomic<Observer> observer{nullptr};
  mutable Mutex mutex;
  std::vector<Armed> specs TRKX_GUARDED_BY(mutex);
};

Registry::Impl& Registry::impl() {
  static Impl instance;
  return instance;
}

Registry& Registry::global() {
  static Registry instance;
  return instance;
}

void Registry::arm(Spec spec) {
  Impl& im = impl();
  LockGuard lock(im.mutex);
  im.specs.push_back(Impl::Armed{std::move(spec), 0, 0});
  im.armed.store(im.specs.size(), std::memory_order_release);
}

void Registry::arm_from_string(const std::string& text) {
  std::size_t start = 0;
  while (start <= text.size()) {
    std::size_t semi = text.find(';', start);
    if (semi == std::string::npos) semi = text.size();
    const std::string clause = text.substr(start, semi - start);
    if (!clause.empty()) arm(parse_spec(clause));
    start = semi + 1;
  }
}

void Registry::arm_from_env() {
  const std::string spec = env::get_string("TRKX_FAULTS");
  if (!spec.empty()) {
    arm_from_string(spec);
    TRKX_INFO << "fault: armed " << armed_count() << " spec(s) from TRKX_FAULTS";
  }
}

void Registry::clear() {
  Impl& im = impl();
  LockGuard lock(im.mutex);
  im.specs.clear();
  im.armed.store(0, std::memory_order_release);
}

std::size_t Registry::armed_count() const {
  return impl().armed.load(std::memory_order_acquire);
}

std::uint64_t Registry::injected(const std::string& site) const {
  Impl& im = impl();
  LockGuard lock(im.mutex);
  std::uint64_t total = 0;
  for (const Impl::Armed& a : im.specs)
    if (a.spec.site == site) total += a.fired;
  return total;
}

std::uint64_t Registry::total_injected() const {
  Impl& im = impl();
  LockGuard lock(im.mutex);
  std::uint64_t total = 0;
  for (const Impl::Armed& a : im.specs) total += a.fired;
  return total;
}

void Registry::set_observer(Observer observer) {
  impl().observer.store(observer, std::memory_order_release);
}

void Registry::check(const char* site, int rank) {
  Impl& im = impl();
  if (im.armed.load(std::memory_order_acquire) == 0) return;

  // Decide under the lock, act outside it: sleeps and throws must not
  // hold the registry mutex (a delayed site would serialise every other
  // site's check).
  std::uint64_t sleep_ms = 0;
  bool throw_error = false;
  bool throw_kill = false;
  std::uint64_t fired_call = 0;
  {
    LockGuard lock(im.mutex);
    for (Impl::Armed& a : im.specs) {
      if (a.spec.site != site) continue;
      if (a.spec.rank >= 0 && a.spec.rank != rank) continue;
      const std::uint64_t call = ++a.calls;
      bool fire = false;
      if (a.spec.nth > 0 && call == a.spec.nth) fire = true;
      if (!fire && a.spec.every > 0 && call % a.spec.every == 0) fire = true;
      if (!fire && a.spec.prob > 0.0) {
        Rng draw = Rng::stream(a.spec.seed, site_hash(site), call);
        fire = draw.uniform() < a.spec.prob;
      }
      if (!fire) continue;
      ++a.fired;
      fired_call = call;
      switch (a.spec.kind) {
        case Kind::kError: throw_error = true; break;
        case Kind::kDelay: sleep_ms += a.spec.delay_ms; break;
        case Kind::kRankKill: throw_kill = true; break;
      }
      const Observer obs = im.observer.load(std::memory_order_acquire);
      if (obs != nullptr) obs(site, a.spec.kind);
    }
  }

  if (sleep_ms > 0) {
    TRKX_WARN << "fault injected: site=" << site << " kind=delay ms="
              << sleep_ms << " rank=" << rank;
    // The injected delay IS the modelled stall — it only runs when a
    // chaos spec arms this site, never in production.
    // NOLINT(trkx-hot-block): chaos-armed delay, not a production stall
    std::this_thread::sleep_for(std::chrono::milliseconds(sleep_ms));
  }
  if (throw_kill) {
    TRKX_WARN << "fault injected: site=" << site << " kind=rank-kill rank="
              << rank << " call=" << fired_call;
    std::ostringstream os;
    os << "rank-kill fault at " << site << " (rank " << rank << ", call "
       << fired_call << ")";
    throw RankKilledError(os.str());
  }
  if (throw_error) {
    TRKX_WARN << "fault injected: site=" << site << " kind=error rank="
              << rank << " call=" << fired_call;
    std::ostringstream os;
    os << "injected fault at " << site << " (rank " << rank << ", call "
       << fired_call << ")";
    throw FaultInjectedError(os.str());
  }
}

}  // namespace trkx::fault
