#pragma once

#include <cstdio>
#include <sstream>
#include <string>

namespace trkx {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Global minimum level; messages below it are dropped.
void set_log_level(LogLevel level);
LogLevel log_level();

/// Redirect log output to `sink` (default stderr). The caller keeps
/// ownership of the FILE; pass nullptr to restore stderr. Takes effect for
/// subsequent log_line calls on every thread.
void set_log_sink(std::FILE* sink);

/// Convenience: open `path` (truncating) and log there until the next
/// set_log_sink/set_log_file call or process exit. Lets each rank of a
/// distributed run write an attributable per-rank log file.
void set_log_file(const std::string& path);

/// Emit a single formatted line with a timestamp, level tag, and the dense
/// id of the emitting thread (see this_thread_id), so interleaved lines
/// from distributed-training ranks stay attributable.
/// Thread-safe (serialised by an internal mutex).
void log_line(LogLevel level, const std::string& message);

namespace detail {
struct LogStream {
  LogLevel level;
  std::ostringstream os;
  explicit LogStream(LogLevel l) : level(l) {}
  ~LogStream() { log_line(level, os.str()); }
};
}  // namespace detail

}  // namespace trkx

#define TRKX_LOG(level_tag)                                              \
  if (::trkx::LogLevel::level_tag < ::trkx::log_level()) {               \
  } else                                                                 \
    ::trkx::detail::LogStream(::trkx::LogLevel::level_tag).os

#define TRKX_DEBUG TRKX_LOG(kDebug)
#define TRKX_INFO TRKX_LOG(kInfo)
#define TRKX_WARN TRKX_LOG(kWarn)
#define TRKX_ERROR TRKX_LOG(kError)
