#pragma once

#include <sstream>
#include <string>

namespace trkx {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Global minimum level; messages below it are dropped.
void set_log_level(LogLevel level);
LogLevel log_level();

/// Emit a single formatted line to stderr with a timestamp and level tag.
/// Thread-safe (serialised by an internal mutex).
void log_line(LogLevel level, const std::string& message);

namespace detail {
struct LogStream {
  LogLevel level;
  std::ostringstream os;
  explicit LogStream(LogLevel l) : level(l) {}
  ~LogStream() { log_line(level, os.str()); }
};
}  // namespace detail

}  // namespace trkx

#define TRKX_LOG(level_tag)                                              \
  if (::trkx::LogLevel::level_tag < ::trkx::log_level()) {               \
  } else                                                                 \
    ::trkx::detail::LogStream(::trkx::LogLevel::level_tag).os

#define TRKX_DEBUG TRKX_LOG(kDebug)
#define TRKX_INFO TRKX_LOG(kInfo)
#define TRKX_WARN TRKX_LOG(kWarn)
#define TRKX_ERROR TRKX_LOG(kError)
