#pragma once

#include <chrono>
#include <condition_variable>
#include <mutex>

/// Clang Thread Safety Analysis attribute wrappers (no-ops elsewhere).
///
/// Shared-state classes declare which mutex protects which member
/// (TRKX_GUARDED_BY) and which functions expect a lock to be held
/// (TRKX_REQUIRES); a Clang build then proves at compile time that every
/// access happens under the right lock. The repo's concurrency claims —
/// lock-free sharded metrics, the prefetch producer/consumer, pooled
/// buffers migrating between threads — are exactly where such proofs pay
/// off, so `-Wthread-safety -Werror=thread-safety` is enabled for every
/// Clang build (see the top-level CMakeLists.txt). GCC compiles the
/// attributes away; the sanitizer matrix (TRKX_SANITIZE) covers the
/// dynamic side there.
///
/// Reference: https://clang.llvm.org/docs/ThreadSafetyAnalysis.html

#if defined(__clang__)
#define TRKX_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define TRKX_THREAD_ANNOTATION(x)
#endif

/// Marks a class as a lockable capability ("mutex" names the kind).
#define TRKX_CAPABILITY(x) TRKX_THREAD_ANNOTATION(capability(x))

/// Marks an RAII class that acquires in its ctor and releases in its dtor.
#define TRKX_SCOPED_CAPABILITY TRKX_THREAD_ANNOTATION(scoped_lockable)

/// Member may only be read/written while holding the named mutex.
#define TRKX_GUARDED_BY(x) TRKX_THREAD_ANNOTATION(guarded_by(x))

/// Pointer member: the pointee (not the pointer) is lock-protected.
#define TRKX_PT_GUARDED_BY(x) TRKX_THREAD_ANNOTATION(pt_guarded_by(x))

/// Function requires the listed capabilities held on entry (and exit).
#define TRKX_REQUIRES(...) \
  TRKX_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))

/// Function acquires the capability (held on exit, not on entry).
#define TRKX_ACQUIRE(...) \
  TRKX_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))

/// Function releases the capability (held on entry, not on exit).
#define TRKX_RELEASE(...) \
  TRKX_THREAD_ANNOTATION(release_capability(__VA_ARGS__))

/// Function acquires the capability iff it returns the given value.
#define TRKX_TRY_ACQUIRE(...) \
  TRKX_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))

/// Caller must NOT hold the listed capabilities (deadlock prevention).
#define TRKX_EXCLUDES(...) TRKX_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

/// Function returns a reference to the named capability.
#define TRKX_RETURN_CAPABILITY(x) TRKX_THREAD_ANNOTATION(lock_returned(x))

/// Escape hatch for code the analysis cannot model (use sparingly, with a
/// comment saying why).
#define TRKX_NO_THREAD_SAFETY_ANALYSIS \
  TRKX_THREAD_ANNOTATION(no_thread_safety_analysis)

/// Marks an inference-stage entry point whose transitive call closure must
/// stay free of heap allocation (outside the TensorPool / MemoryPlanner
/// front doors) and of blocking operations. Expands to nothing — it is a
/// marker for trkx-analyze's hot-path pass, which walks the call graph from
/// every annotated function and reports trkx-hot-alloc / trkx-hot-block
/// violations. Annotate declarations, not call sites.
#define TRKX_HOT

namespace trkx {

/// std::mutex wrapped as an annotated capability. Use with LockGuard /
/// UniqueLock below so Clang tracks acquire/release pairs; members it
/// protects carry TRKX_GUARDED_BY(that_mutex_).
class TRKX_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() TRKX_ACQUIRE() { m_.lock(); }
  void unlock() TRKX_RELEASE() { m_.unlock(); }
  bool try_lock() TRKX_TRY_ACQUIRE(true) { return m_.try_lock(); }

  /// The wrapped std::mutex, for interop with std wait primitives. Only
  /// UniqueLock (below) should need this.
  std::mutex& native() { return m_; }

 private:
  std::mutex m_;
};

/// Annotated drop-in for std::lock_guard<std::mutex> over trkx::Mutex.
class TRKX_SCOPED_CAPABILITY LockGuard {
 public:
  explicit LockGuard(Mutex& m) TRKX_ACQUIRE(m) : m_(m) { m_.lock(); }
  ~LockGuard() TRKX_RELEASE() { m_.unlock(); }
  LockGuard(const LockGuard&) = delete;
  LockGuard& operator=(const LockGuard&) = delete;

 private:
  Mutex& m_;
};

/// Annotated std::unique_lock for condition-variable waits. The analysis
/// treats the capability as held for the whole scope; CondVar::wait
/// reacquires before returning, so that model is sound.
class TRKX_SCOPED_CAPABILITY UniqueLock {
 public:
  explicit UniqueLock(Mutex& m) TRKX_ACQUIRE(m) : lock_(m.native()) {}
  ~UniqueLock() TRKX_RELEASE() {}
  UniqueLock(const UniqueLock&) = delete;
  UniqueLock& operator=(const UniqueLock&) = delete;

  std::unique_lock<std::mutex>& native() { return lock_; }

 private:
  std::unique_lock<std::mutex> lock_;
};

/// Condition variable paired with trkx::Mutex via UniqueLock.
class CondVar {
 public:
  void wait(UniqueLock& lock) { cv_.wait(lock.native()); }
  template <typename Predicate>
  void wait(UniqueLock& lock, Predicate pred) {
    cv_.wait(lock.native(), std::move(pred));
  }
  /// Timed wait against a steady_clock deadline; std::cv_status::timeout
  /// when the deadline passed. The timeout-aware dist barrier uses this to
  /// detect dead/hung ranks instead of blocking forever.
  std::cv_status wait_until(
      UniqueLock& lock,
      std::chrono::steady_clock::time_point deadline) {
    return cv_.wait_until(lock.native(), deadline);
  }
  template <typename Rep, typename Period>
  std::cv_status wait_for(UniqueLock& lock,
                          std::chrono::duration<Rep, Period> timeout) {
    return cv_.wait_for(lock.native(), timeout);
  }
  void notify_one() { cv_.notify_one(); }
  void notify_all() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace trkx
