#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace trkx {

/// Streaming mean/variance (Welford) plus min/max plus quantile
/// estimates from a bounded reservoir.
///
/// min()/max() are initialised from the first add() — never from a
/// spurious 0.0 — so an all-positive (or all-negative) stream reports only
/// values that were actually observed. With no observations both return 0.
///
/// percentile(p) draws on a deterministic reservoir sample (Vitter's
/// Algorithm R, capacity kReservoirCap, fixed internal seed so repeated
/// runs agree bit-for-bit): exact while count() <= kReservoirCap, an
/// unbiased estimate beyond that. Memory stays bounded at ~4 KB no
/// matter how long the stream runs.
class RunningStat {
 public:
  static constexpr std::size_t kReservoirCap = 512;

  void add(double x);
  /// Combine another stat into this one (Chan et al. parallel Welford);
  /// lets per-thread stats be accumulated shard-wise and merged on read.
  /// Reservoirs concatenate exactly while they fit; beyond the cap the
  /// merged reservoir is re-sampled proportionally to each side's count.
  void merge(const RunningStat& other);
  std::size_t count() const { return n_; }
  double mean() const { return mean_; }
  double variance() const;  ///< sample variance (n-1 denominator)
  double stddev() const;
  double min() const { return min_; }
  double max() const { return max_; }
  /// p in [0,100]; 0.0 with no observations. Exact for streams no longer
  /// than kReservoirCap, reservoir-estimated (clamped to [min,max]) after.
  double percentile(double p) const;

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;  ///< valid only when n_ > 0 (set on first add)
  double max_ = 0.0;  ///< valid only when n_ > 0 (set on first add)
  std::vector<double> reservoir_;
  std::uint64_t rng_state_ = 0x5eed0f57a7e5eedull;
};

/// p in [0,100]; linear interpolation between order statistics.
double percentile(std::vector<double> values, double p);

double mean(const std::vector<double>& values);
double stddev(const std::vector<double>& values);

/// Binary-classification counts and derived metrics used for the paper's
/// edge precision / recall curves (Figure 4).
struct BinaryMetrics {
  std::size_t true_positives = 0;
  std::size_t false_positives = 0;
  std::size_t true_negatives = 0;
  std::size_t false_negatives = 0;

  void add(bool predicted, bool actual);
  void merge(const BinaryMetrics& other);
  std::size_t total() const;
  double precision() const;  ///< tp / (tp + fp); 0 when undefined
  double recall() const;     ///< tp / (tp + fn); 0 when undefined
  double f1() const;
  double accuracy() const;
};

}  // namespace trkx
