#pragma once

#include <cstddef>
#include <vector>

namespace trkx {

/// Streaming mean/variance (Welford) plus min/max.
///
/// min()/max() are initialised from the first add() — never from a
/// spurious 0.0 — so an all-positive (or all-negative) stream reports only
/// values that were actually observed. With no observations both return 0.
class RunningStat {
 public:
  void add(double x);
  /// Combine another stat into this one (Chan et al. parallel Welford);
  /// lets per-thread stats be accumulated shard-wise and merged on read.
  void merge(const RunningStat& other);
  std::size_t count() const { return n_; }
  double mean() const { return mean_; }
  double variance() const;  ///< sample variance (n-1 denominator)
  double stddev() const;
  double min() const { return min_; }
  double max() const { return max_; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;  ///< valid only when n_ > 0 (set on first add)
  double max_ = 0.0;  ///< valid only when n_ > 0 (set on first add)
};

/// p in [0,100]; linear interpolation between order statistics.
double percentile(std::vector<double> values, double p);

double mean(const std::vector<double>& values);
double stddev(const std::vector<double>& values);

/// Binary-classification counts and derived metrics used for the paper's
/// edge precision / recall curves (Figure 4).
struct BinaryMetrics {
  std::size_t true_positives = 0;
  std::size_t false_positives = 0;
  std::size_t true_negatives = 0;
  std::size_t false_negatives = 0;

  void add(bool predicted, bool actual);
  void merge(const BinaryMetrics& other);
  std::size_t total() const;
  double precision() const;  ///< tp / (tp + fp); 0 when undefined
  double recall() const;     ///< tp / (tp + fn); 0 when undefined
  double f1() const;
  double accuracy() const;
};

}  // namespace trkx
