#pragma once

#include <atomic>
#include <cstddef>
#include <functional>
#include <future>
#include <memory>
#include <utility>
#include <vector>

#include "util/error.hpp"
#include "util/thread_pool.hpp"
#include "util/timer.hpp"

namespace trkx {

/// Bounded look-ahead runner over an indexed sequence of work items.
///
/// produce(i) for i in [0, count) is executed on a ThreadPool up to
/// `depth` items ahead of consumption; get(i) — which must be called in
/// order 0, 1, 2, … — blocks until item i is ready. With depth == 0 (or a
/// null pool) every produce runs inline inside get(), which is the serial
/// reference behaviour the determinism tests compare against.
///
/// This is the sampler↔trainer overlap primitive: the training loop
/// consumes batch t while the pool's producer task samples and gathers
/// batch t+1..t+depth. Work items must be independent (the per-stream RNG
/// scheme guarantees that for minibatch sampling), so results are
/// identical whichever thread runs them.
template <typename T>
class PrefetchQueue {
 public:
  struct Stats {
    double stall_seconds = 0.0;   ///< time the consumer spent blocked
    std::size_t stalls = 0;       ///< gets that found the item not ready
    std::size_t gets = 0;
    std::size_t inline_runs = 0;  ///< produces executed inside get()
    double occupancy_sum = 0.0;   ///< ready-but-unconsumed items per get
    double mean_occupancy() const {
      return gets == 0 ? 0.0 : occupancy_sum / static_cast<double>(gets);
    }
  };

  PrefetchQueue(ThreadPool* pool, std::size_t depth, std::size_t count,
                std::function<T(std::size_t)> produce)
      : pool_(depth > 0 ? pool : nullptr),
        depth_(depth),
        count_(count),
        produce_(std::move(produce)),
        ready_(std::make_shared<std::atomic<std::size_t>>(0)) {
    if (pool_ != nullptr) slots_.resize(count_);
    pump();
  }

  /// Wait for all in-flight work (consumer abandoned mid-sequence).
  ~PrefetchQueue() {
    for (std::size_t i = next_consume_; i < next_submit_; ++i)
      slots_[i].wait();
  }

  PrefetchQueue(const PrefetchQueue&) = delete;
  PrefetchQueue& operator=(const PrefetchQueue&) = delete;

  /// Result of produce(index). Must be called with index == number of
  /// prior get() calls (strictly in-order consumption).
  T get(std::size_t index) {
    TRKX_CHECK(index == next_consume_ && index < count_);
    ++next_consume_;
    ++stats_.gets;
    if (pool_ == nullptr) {
      ++stats_.inline_runs;
      return produce_(index);
    }
    // Occupancy before the wait: items already produced and not consumed.
    const std::size_t done = ready_->load(std::memory_order_acquire);
    stats_.occupancy_sum +=
        static_cast<double>(done > index ? done - index : 0);
    std::future<T>& fut = slots_[index];
    if (fut.wait_for(std::chrono::seconds(0)) !=
        std::future_status::ready) {
      ++stats_.stalls;
      WallTimer stall;
      fut.wait();
      stats_.stall_seconds += stall.seconds();
    }
    T out = fut.get();
    pump();
    return out;
  }

  const Stats& stats() const { return stats_; }
  std::size_t count() const { return count_; }

  /// Ready-but-unconsumed items right now. Consumer-thread only (reads
  /// next_consume_); the training loop publishes this as a gauge so the
  /// metrics snapshotter can track queue depth over time.
  std::size_t ready_ahead() const {
    const std::size_t done = ready_->load(std::memory_order_acquire);
    return done > next_consume_ ? done - next_consume_ : 0;
  }

 private:
  /// Submit producer tasks until `depth_` items are in flight beyond the
  /// consumption point (or the sequence is exhausted).
  void pump() {
    if (pool_ == nullptr) return;
    while (next_submit_ < count_ &&
           next_submit_ < next_consume_ + depth_) {
      const std::size_t i = next_submit_++;
      auto task = std::make_shared<std::packaged_task<T()>>(
          [this, i] { return produce_(i); });
      slots_[i] = task->get_future();
      auto ready = ready_;
      pool_->submit([task, ready] {
        (*task)();
        ready->fetch_add(1, std::memory_order_release);
      });
    }
  }

  ThreadPool* pool_;
  std::size_t depth_;
  std::size_t count_;
  std::function<T(std::size_t)> produce_;
  std::shared_ptr<std::atomic<std::size_t>> ready_;
  std::vector<std::future<T>> slots_;
  std::size_t next_submit_ = 0;
  std::size_t next_consume_ = 0;
  Stats stats_;
};

}  // namespace trkx
