#pragma once

#include <chrono>
#include <map>
#include <string>

#include "util/annotations.hpp"

namespace trkx {

/// Monotonic wall-clock timer.
class WallTimer {
 public:
  WallTimer() : start_(clock::now()) {}
  void reset() { start_ = clock::now(); }
  /// Seconds elapsed since construction or last reset().
  double seconds() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }
  double millis() const { return seconds() * 1e3; }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

/// Accumulates named time buckets; used by training loops to report the
/// sampling / forward-backward / all-reduce split that Figure 3 plots.
///
/// Thread-safe: add()/get()/merge() may be called concurrently (e.g. from
/// OpenMP regions or DDP rank threads), serialised by an internal mutex.
/// For contention-free accumulation in tight parallel loops, prefer one
/// local PhaseTimers per thread merged once at the end — merge() exists
/// for exactly that pattern. New code should record through the richer
/// src/obs layer (trace spans + metrics histograms); PhaseTimers remains
/// as the per-epoch accumulator behind TrainResult.
class PhaseTimers {
 public:
  PhaseTimers() = default;
  PhaseTimers(const PhaseTimers& other) : buckets_(other.buckets()) {}
  PhaseTimers& operator=(const PhaseTimers& other) {
    if (this != &other) {
      auto copy = other.buckets();
      LockGuard lock(mutex_);
      buckets_ = std::move(copy);
    }
    return *this;
  }

  void add(const std::string& phase, double seconds) {
    LockGuard lock(mutex_);
    buckets_[phase] += seconds;
  }
  double get(const std::string& phase) const {
    LockGuard lock(mutex_);
    auto it = buckets_.find(phase);
    return it == buckets_.end() ? 0.0 : it->second;
  }
  void clear() {
    LockGuard lock(mutex_);
    buckets_.clear();
  }
  /// Snapshot of the buckets (by value: the map may change concurrently).
  std::map<std::string, double> buckets() const {
    LockGuard lock(mutex_);
    return buckets_;
  }
  /// Merge another timer set into this one (summing buckets).
  void merge(const PhaseTimers& other) {
    auto theirs = other.buckets();
    LockGuard lock(mutex_);
    for (const auto& [k, v] : theirs) buckets_[k] += v;
  }

 private:
  mutable Mutex mutex_;
  std::map<std::string, double> buckets_ TRKX_GUARDED_BY(mutex_);
};

/// RAII helper: adds elapsed time into a PhaseTimers bucket on destruction.
class ScopedPhase {
 public:
  ScopedPhase(PhaseTimers& timers, std::string phase)
      : timers_(timers), phase_(std::move(phase)) {}
  ~ScopedPhase() { timers_.add(phase_, timer_.seconds()); }
  ScopedPhase(const ScopedPhase&) = delete;
  ScopedPhase& operator=(const ScopedPhase&) = delete;

 private:
  PhaseTimers& timers_;
  std::string phase_;
  WallTimer timer_;
};

}  // namespace trkx
