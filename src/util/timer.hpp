#pragma once

#include <chrono>
#include <map>
#include <string>

namespace trkx {

/// Monotonic wall-clock timer.
class WallTimer {
 public:
  WallTimer() : start_(clock::now()) {}
  void reset() { start_ = clock::now(); }
  /// Seconds elapsed since construction or last reset().
  double seconds() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }
  double millis() const { return seconds() * 1e3; }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

/// Accumulates named time buckets; used by training loops to report the
/// sampling / forward-backward / all-reduce split that Figure 3 plots.
class PhaseTimers {
 public:
  void add(const std::string& phase, double seconds) {
    buckets_[phase] += seconds;
  }
  double get(const std::string& phase) const {
    auto it = buckets_.find(phase);
    return it == buckets_.end() ? 0.0 : it->second;
  }
  void clear() { buckets_.clear(); }
  const std::map<std::string, double>& buckets() const { return buckets_; }
  /// Merge another timer set into this one (summing buckets).
  void merge(const PhaseTimers& other) {
    for (const auto& [k, v] : other.buckets_) buckets_[k] += v;
  }

 private:
  std::map<std::string, double> buckets_;
};

/// RAII helper: adds elapsed time into a PhaseTimers bucket on destruction.
class ScopedPhase {
 public:
  ScopedPhase(PhaseTimers& timers, std::string phase)
      : timers_(timers), phase_(std::move(phase)) {}
  ~ScopedPhase() { timers_.add(phase_, timer_.seconds()); }
  ScopedPhase(const ScopedPhase&) = delete;
  ScopedPhase& operator=(const ScopedPhase&) = delete;

 private:
  PhaseTimers& timers_;
  std::string phase_;
  WallTimer timer_;
};

}  // namespace trkx
