#include "util/env.hpp"

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <ostream>

#include "util/error.hpp"

namespace trkx::env {

namespace {

/// THE registry. Sorted by name; scripts/check_env_docs.py validates the
/// README knob table against exactly this list (via dump_registry_json),
/// and the trkx-env-registry analyzer pass parses these entries — so a
/// new knob lands as: (1) a row here, (2) an accessor call site, (3) a
/// regenerated README table. Keep the doc strings one line.
constexpr Knob kKnobs[] = {
    {"TRKX_BENCH_JSON", "",
     "Default output path for the unified bench JSON artifact (same as "
     "--json-out)"},
    {"TRKX_CHECK_NUMERICS", "0",
     "Enable forward/backward finiteness checks through the autograd tape "
     "(debug mode)"},
    {"TRKX_COMM_TIMEOUT_MS", "0",
     "Collective-communication timeout in milliseconds; 0 or unset "
     "disables the timeout"},
    {"TRKX_FAULTS", "",
     "Arm deterministic fault injection: `;`-separated "
     "site:kind[:key=value...] clauses"},
    {"TRKX_GIT_SHA", "",
     "Override the compile-time git SHA stamped into RunManifest "
     "provenance"},
    {"TRKX_MEM_PLAN", "1",
     "Tape-level memory planning (record/replay arena); set 0 to serve "
     "every gradient tensor from the pool"},
    {"TRKX_METRICS", "",
     "Write the metrics-registry JSON to this path at exit"},
    {"TRKX_POOL_MAX_MB", "128",
     "Per-thread TensorPool free-list cache cap in MiB"},
    {"TRKX_SERVE_DEADLINE_MS", "0",
     "trkx-serve default per-request deadline in milliseconds; 0 means "
     "unbounded"},
    {"TRKX_SERVE_QUEUE_DEPTH", "8",
     "trkx-serve bounded admission-queue capacity; a full queue rejects "
     "with OverloadError"},
    {"TRKX_SERVE_RETRY_BUDGET", "1",
     "trkx-serve per-stage retry attempts beyond the first; 0 fails fast"},
    {"TRKX_SERVE_SHED_HIGH_PCT", "75",
     "trkx-serve queue-occupancy percentage above which the degradation "
     "ladder escalates"},
    {"TRKX_SERVE_SHED_LOW_PCT", "25",
     "trkx-serve queue-occupancy percentage below which the degradation "
     "ladder recovers"},
    {"TRKX_SERVE_STAGE_TIMEOUT_MS", "0",
     "trkx-serve per-stage latency budget in milliseconds; 0 disables the "
     "stage timeout"},
    {"TRKX_SERVE_WORKERS", "2",
     "trkx-serve worker-thread count draining the admission queue"},
    {"TRKX_SIMD", "auto",
     "Kernel dispatch table: auto (cpuid resolves), avx2, or scalar"},
    {"TRKX_TENSOR_POOL", "1",
     "Size-bucketed tensor pooling; set 0 to route every Matrix buffer "
     "through the heap"},
    {"TRKX_TIMESERIES", "",
     "Start the metrics snapshotter and append time-series JSONL to this "
     "path"},
    {"TRKX_TIMESERIES_MS", "200",
     "Metrics-snapshotter sampling period in milliseconds"},
    {"TRKX_TRACE", "",
     "Start the span tracer and write Chrome-trace JSON to this path at "
     "exit"},
};

const Knob* find(const std::string& name) {
  for (const Knob& k : kKnobs) {
    if (name == k.name) return &k;
  }
  return nullptr;
}

const Knob& require(const std::string& name) {
  const Knob* k = find(name);
  TRKX_CHECK_MSG(k != nullptr,
                 "env knob '" << name << "' is not in the trkx::env "
                 "registry — add it to src/util/env.cpp");
  return *k;
}

/// Effective string value: the environment wins when set non-empty,
/// otherwise the registry default.
std::string effective(const std::string& name) {
  const Knob& k = require(name);
  // The one legitimate direct read: every other TU goes through these
  // accessors (enforced by the trkx-env-registry analyzer pass).
  const char* v = std::getenv(k.name);
  if (v != nullptr && *v != '\0') return v;
  return k.def;
}

std::string json_escape(const char* s) {
  std::string out;
  for (const char* p = s; *p != '\0'; ++p) {
    if (*p == '"' || *p == '\\') out.push_back('\\');
    out.push_back(*p);
  }
  return out;
}

}  // namespace

const std::vector<Knob>& knobs() {
  static const std::vector<Knob> all(std::begin(kKnobs), std::end(kKnobs));
  return all;
}

bool is_registered(const std::string& name) { return find(name) != nullptr; }

const char* raw(const std::string& name) {
  return std::getenv(require(name).name);
}

bool is_set(const std::string& name) {
  const char* v = raw(name);
  return v != nullptr && *v != '\0';
}

std::string get_string(const std::string& name) { return effective(name); }

long get_int(const std::string& name) {
  const std::string v = effective(name);
  char* end = nullptr;
  const long out = std::strtol(v.c_str(), &end, 10);
  if (end == v.c_str()) {
    const std::string d = require(name).def;
    return std::strtol(d.c_str(), nullptr, 10);
  }
  return out;
}

double get_double(const std::string& name) {
  const std::string v = effective(name);
  char* end = nullptr;
  const double out = std::strtod(v.c_str(), &end);
  if (end == v.c_str()) {
    const std::string d = require(name).def;
    return std::strtod(d.c_str(), nullptr);
  }
  return out;
}

bool get_bool(const std::string& name) {
  const std::string v = effective(name);
  if (v.empty()) return false;
  return v != "0" && v != "false" && v != "off" && v != "no";
}

void dump_registry_json(std::ostream& os) {
  os << "[\n";
  for (std::size_t i = 0; i < std::size(kKnobs); ++i) {
    const Knob& k = kKnobs[i];
    os << "  {\"name\": \"" << json_escape(k.name) << "\", \"default\": \""
       << json_escape(k.def) << "\", \"doc\": \"" << json_escape(k.doc)
       << "\"}" << (i + 1 < std::size(kKnobs) ? "," : "") << "\n";
  }
  os << "]\n";
}

}  // namespace trkx::env
