#include "util/log.hpp"

#include <atomic>
#include <chrono>
#include <cstdio>

#include "util/annotations.hpp"
#include "util/error.hpp"
#include "util/thread_id.hpp"

namespace trkx {

namespace {
std::atomic<LogLevel> g_level{LogLevel::kInfo};
Mutex g_mutex;

// g_sink points at stderr when null; g_owned is the FILE opened by
// set_log_file (closed when replaced).
std::FILE* g_sink TRKX_GUARDED_BY(g_mutex) = nullptr;
std::FILE* g_owned TRKX_GUARDED_BY(g_mutex) = nullptr;

void swap_sink_locked(std::FILE* sink, std::FILE* owned)
    TRKX_REQUIRES(g_mutex) {
  if (g_owned) std::fclose(g_owned);
  g_sink = sink;
  g_owned = owned;
}

const char* level_tag(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO ";
    case LogLevel::kWarn: return "WARN ";
    case LogLevel::kError: return "ERROR";
    default: return "?????";
  }
}
}  // namespace

void set_log_level(LogLevel level) { g_level.store(level); }
LogLevel log_level() { return g_level.load(); }

void set_log_sink(std::FILE* sink) {
  LockGuard lock(g_mutex);
  swap_sink_locked(sink, nullptr);
}

void set_log_file(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  TRKX_CHECK_MSG(f != nullptr, "set_log_file: cannot open " << path);
  LockGuard lock(g_mutex);
  swap_sink_locked(f, f);
}

void log_line(LogLevel level, const std::string& message) {
  if (level < g_level.load()) return;
  using clock = std::chrono::steady_clock;
  static const clock::time_point start = clock::now();
  const double t =
      std::chrono::duration<double>(clock::now() - start).count();
  const int tid = this_thread_id();
  LockGuard lock(g_mutex);
  std::FILE* out = g_sink ? g_sink : stderr;
  std::fprintf(out, "[%9.3f] [%s] [t%02d] %s\n", t, level_tag(level), tid,
               message.c_str());
  std::fflush(out);
}

}  // namespace trkx
