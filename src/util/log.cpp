#include "util/log.hpp"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <mutex>

namespace trkx {

namespace {
std::atomic<LogLevel> g_level{LogLevel::kInfo};
std::mutex g_mutex;

const char* level_tag(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO ";
    case LogLevel::kWarn: return "WARN ";
    case LogLevel::kError: return "ERROR";
    default: return "?????";
  }
}
}  // namespace

void set_log_level(LogLevel level) { g_level.store(level); }
LogLevel log_level() { return g_level.load(); }

void log_line(LogLevel level, const std::string& message) {
  if (level < g_level.load()) return;
  using clock = std::chrono::steady_clock;
  static const clock::time_point start = clock::now();
  const double t =
      std::chrono::duration<double>(clock::now() - start).count();
  std::lock_guard<std::mutex> lock(g_mutex);
  std::fprintf(stderr, "[%9.3f] [%s] %s\n", t, level_tag(level),
               message.c_str());
}

}  // namespace trkx
