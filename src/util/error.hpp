#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace trkx {

/// Exception thrown on any violated precondition or internal invariant.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

namespace detail {
[[noreturn]] inline void throw_check_failure(const char* expr, const char* file,
                                             int line, const std::string& msg) {
  std::ostringstream os;
  os << "TRKX_CHECK failed: (" << expr << ") at " << file << ":" << line;
  if (!msg.empty()) os << " — " << msg;
  throw Error(os.str());
}
}  // namespace detail

}  // namespace trkx

/// Precondition / invariant check that throws trkx::Error on failure.
/// Always enabled (not compiled out in release builds): the cost is trivial
/// next to the kernels it guards, and silent corruption is far worse.
#define TRKX_CHECK(expr)                                                   \
  do {                                                                     \
    if (!(expr))                                                           \
      ::trkx::detail::throw_check_failure(#expr, __FILE__, __LINE__, ""); \
  } while (0)

#define TRKX_CHECK_MSG(expr, msg)                                         \
  do {                                                                    \
    if (!(expr)) {                                                        \
      std::ostringstream trkx_os_;                                        \
      trkx_os_ << msg;                                                    \
      ::trkx::detail::throw_check_failure(#expr, __FILE__, __LINE__,      \
                                          trkx_os_.str());                \
    }                                                                     \
  } while (0)
