#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace trkx {

/// Exception thrown on any violated precondition or internal invariant.
/// Recoverable library failures derive from this so callers can select
/// how much to catch: a supervisor loop catches trkx::Error, a retry
/// loop catches IoError, a DDP trainer catches CommTimeoutError.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// File/stream failure (open, truncated read, short write). Messages carry
/// path + byte offset so quarantine logs identify the corrupt file.
class IoError : public Error {
 public:
  using Error::Error;
};

/// Checkpoint file is missing, corrupt (CRC/magic), or from an
/// incompatible version/run configuration.
class CheckpointError : public Error {
 public:
  using Error::Error;
};

/// Collective-communication failure.
class CommError : public Error {
 public:
  using Error::Error;
};

/// A collective did not complete within the configured timeout (a peer
/// rank died or hung). Raised on every *surviving* rank so they all
/// unwind instead of deadlocking in the barrier.
class CommTimeoutError : public CommError {
 public:
  using CommError::CommError;
};

/// Thrown by an armed `rank-kill` fault site: simulates a rank dying
/// mid-collective. Deliberately NOT a CommError — survivors see
/// CommTimeoutError; only the killed rank sees this.
class RankKilledError : public Error {
 public:
  using Error::Error;
};

/// Thrown by an armed `error`-kind fault site (deterministic chaos
/// injection; see util/fault.hpp).
class FaultInjectedError : public Error {
 public:
  explicit FaultInjectedError(const std::string& what) : Error(what) {}
};

namespace detail {
[[noreturn]] inline void throw_check_failure(const char* expr, const char* file,
                                             int line, const std::string& msg) {
  std::ostringstream os;
  os << "TRKX_CHECK failed: (" << expr << ") at " << file << ":" << line;
  if (!msg.empty()) os << " — " << msg;
  throw Error(os.str());
}
}  // namespace detail

}  // namespace trkx

/// Precondition / invariant check that throws trkx::Error on failure.
/// Always enabled (not compiled out in release builds): the cost is trivial
/// next to the kernels it guards, and silent corruption is far worse.
#define TRKX_CHECK(expr)                                                   \
  do {                                                                     \
    if (!(expr))                                                           \
      ::trkx::detail::throw_check_failure(#expr, __FILE__, __LINE__, ""); \
  } while (0)

#define TRKX_CHECK_MSG(expr, msg)                                         \
  do {                                                                    \
    if (!(expr)) {                                                        \
      std::ostringstream trkx_os_;                                        \
      trkx_os_ << msg;                                                    \
      ::trkx::detail::throw_check_failure(#expr, __FILE__, __LINE__,      \
                                          trkx_os_.str());                \
    }                                                                     \
  } while (0)
