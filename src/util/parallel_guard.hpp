#pragma once

#include <atomic>
#include <exception>
#include <utility>

#include "util/annotations.hpp"

namespace trkx {

/// Exception barrier for OpenMP parallel regions and detached threads.
///
/// An exception that escapes an `#pragma omp parallel` structured block —
/// or a thread entry function — is std::terminate by the standard, so a
/// TRKX_CHECK failure inside a parallel sampler loop would kill the whole
/// process instead of surfacing as a catchable trkx::Error. The barrier
/// restores normal error flow: every worker wraps its body in run(),
/// which captures the *first* exception thrown (later ones are dropped —
/// they are almost always the same root cause repeated per thread), and
/// the spawning thread calls rethrow() after the region joins.
///
///   ExceptionBarrier barrier;
///   #pragma omp parallel for ... shared(barrier, ...)
///   for (...) {
///     if (barrier.cancelled()) continue;   // optional early drain
///     barrier.run([&] { /* throwing body */ });
///   }
///   barrier.rethrow();
///
/// The fast path adds one relaxed atomic load per run() call; the mutex
/// is only touched on the throw path. The trkx-throw-boundary analyzer
/// pass recognises `barrier.run(...)` + `barrier.rethrow()` (or an inline
/// try/catch) as the sanctioned shape for throwing parallel bodies.
class ExceptionBarrier {
 public:
  /// Invoke `fn`, capturing any exception instead of letting it escape.
  template <typename Fn>
  void run(Fn&& fn) noexcept {
    try {
      std::forward<Fn>(fn)();
    } catch (...) {
      capture(std::current_exception());
    }
  }

  /// Store `e` as the barrier's exception if none is held yet. For code
  /// that already has its own try/catch (e.g. a thread run loop).
  void capture(std::exception_ptr e) noexcept {
    if (e == nullptr) return;
    LockGuard lock(mutex_);
    if (first_ == nullptr) {
      first_ = std::move(e);
      armed_.store(true, std::memory_order_release);
    }
  }

  /// True once any worker has thrown. Cheap (one relaxed load): loop
  /// bodies may poll it to skip useless work once the region is doomed.
  bool cancelled() const noexcept {
    return armed_.load(std::memory_order_relaxed);
  }

  /// Rethrow the captured exception, if any, and clear the barrier.
  /// Call on the spawning thread after the region / join.
  void rethrow() {
    if (!armed_.load(std::memory_order_acquire)) return;
    std::exception_ptr e;
    {
      LockGuard lock(mutex_);
      e = std::exchange(first_, nullptr);
      armed_.store(false, std::memory_order_release);
    }
    if (e != nullptr) std::rethrow_exception(e);
  }

 private:
  std::atomic<bool> armed_{false};
  mutable Mutex mutex_;
  std::exception_ptr first_ TRKX_GUARDED_BY(mutex_);
};

}  // namespace trkx
