#include "util/thread_id.hpp"

#include <atomic>

namespace trkx {

int this_thread_id() {
  static std::atomic<int> next{0};
  thread_local int id = next.fetch_add(1, std::memory_order_relaxed);
  return id;
}

}  // namespace trkx
