#pragma once

#include <map>
#include <string>
#include <vector>

namespace trkx {

/// Minimal command-line parser for examples and benches.
///
/// Accepts `--key value`, `--key=value`, and bare `--flag` forms. Unknown
/// keys are kept so callers can validate with `unknown_keys()`.
class ArgParser {
 public:
  ArgParser(int argc, char** argv);

  bool has(const std::string& key) const;
  std::string get(const std::string& key, const std::string& fallback) const;
  int get_int(const std::string& key, int fallback) const;
  double get_double(const std::string& key, double fallback) const;
  bool get_bool(const std::string& key, bool fallback) const;

  /// Positional (non --key) arguments in order of appearance.
  const std::vector<std::string>& positional() const { return positional_; }
  const std::string& program() const { return program_; }

 private:
  std::string program_;
  std::map<std::string, std::string> values_;
  std::vector<std::string> positional_;
};

}  // namespace trkx
