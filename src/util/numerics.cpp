#include "util/numerics.hpp"

#include "util/env.hpp"

namespace trkx {

namespace {

bool env_default() { return env::get_bool("TRKX_CHECK_NUMERICS"); }

bool& flag() {
  static bool on = env_default();
  return on;
}

}  // namespace

bool check_numerics_enabled() { return flag(); }

void set_check_numerics(bool on) { flag() = on; }

}  // namespace trkx
