#include "util/numerics.hpp"

#include <cstdlib>
#include <cstring>

namespace trkx {

namespace {

bool env_default() {
  const char* v = std::getenv("TRKX_CHECK_NUMERICS");
  return v != nullptr && v[0] != '\0' && std::strcmp(v, "0") != 0;
}

bool& flag() {
  static bool on = env_default();
  return on;
}

}  // namespace

bool check_numerics_enabled() { return flag(); }

void set_check_numerics(bool on) { flag() = on; }

}  // namespace trkx
