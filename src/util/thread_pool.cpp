#include "util/thread_pool.hpp"

#include <utility>

#include "util/error.hpp"

namespace trkx {

ThreadPool::ThreadPool(std::size_t num_threads) {
  TRKX_CHECK(num_threads > 0);
  workers_.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    LockGuard lock(mutex_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

std::future<void> ThreadPool::submit(std::function<void()> task) {
  std::packaged_task<void()> packaged(std::move(task));
  std::future<void> fut = packaged.get_future();
  {
    LockGuard lock(mutex_);
    TRKX_CHECK_MSG(!stop_, "submit() on stopped ThreadPool");
    tasks_.push(std::move(packaged));
  }
  cv_.notify_one();
  return fut;
}

void ThreadPool::parallel_for(std::size_t count,
                              const std::function<void(std::size_t)>& fn) {
  std::vector<std::future<void>> futures;
  futures.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    futures.push_back(submit([&fn, i] { fn(i); }));
  }
  for (auto& f : futures) f.get();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::packaged_task<void()> task;
    {
      UniqueLock lock(mutex_);
      // Explicit wait loop (not the predicate overload): the guarded reads
      // stay in this scope, where the analysis knows mutex_ is held.
      while (!stop_ && tasks_.empty()) cv_.wait(lock);
      if (stop_ && tasks_.empty()) return;
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();
  }
}

}  // namespace trkx
