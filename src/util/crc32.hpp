#pragma once

#include <cstddef>
#include <cstdint>

namespace trkx {

/// CRC-32 (IEEE 802.3 polynomial, reflected) over a byte range. Used to
/// frame event records (io/event_io.cpp) and checkpoint payloads
/// (pipeline/checkpoint.cpp) so corruption is detected before a partial
/// structure is handed to the caller. `seed` lets callers chain blocks:
/// pass a previous call's return value to continue the same checksum.
std::uint32_t crc32(const void* data, std::size_t size, std::uint32_t seed = 0);

}  // namespace trkx
