#pragma once

#include <cstdint>
#include <vector>

#include "util/error.hpp"

namespace trkx {

/// Deterministic, seedable, cheap-to-split PRNG (splitmix64 core).
///
/// Every stochastic component in the library (detector simulation, weight
/// init, samplers, noise) draws from an Rng instance that is explicitly
/// threaded through the call graph, so runs are reproducible given a seed
/// and independent streams can be created with split().
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull) : state_(seed) {}

  /// Next raw 64-bit value (splitmix64).
  std::uint64_t next_u64() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ull);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
  }

  /// Derive an independent stream; deterministic function of current state.
  Rng split() { return Rng(next_u64() ^ 0xda3e39cb94b95bdbull); }

  /// Independent stream keyed by up to four coordinates — a pure function
  /// of (seed, a, b, c, d) with no sequential draw dependence. This is
  /// what makes the prefetch pipeline deterministic: sampling minibatch
  /// (epoch, event, batch) draws from stream(seed, rank, epoch·M+event,
  /// batch) no matter which thread runs it or in what order, so pipelined
  /// and serial training consume bit-identical randomness.
  static Rng stream(std::uint64_t seed, std::uint64_t a, std::uint64_t b = 0,
                    std::uint64_t c = 0, std::uint64_t d = 0) {
    Rng r(seed);
    // Fold each key through one splitmix step so nearby coordinates land
    // on unrelated states (plain XOR of small ints would correlate).
    r.state_ = Rng(r.next_u64() ^ (a + 0x9e3779b97f4a7c15ull)).next_u64();
    r.state_ = Rng(r.next_u64() ^ (b + 0xbf58476d1ce4e5b9ull)).next_u64();
    r.state_ = Rng(r.next_u64() ^ (c + 0x94d049bb133111ebull)).next_u64();
    r.state_ = Rng(r.next_u64() ^ (d + 0xda3e39cb94b95bdbull)).next_u64();
    return r;
  }

  /// Uniform double in [0, 1).
  double uniform() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Uniform float in [lo, hi).
  float uniform(float lo, float hi) {
    return lo + static_cast<float>(uniform()) * (hi - lo);
  }

  /// Uniform integer in [0, n). Requires n > 0.
  std::uint64_t uniform_index(std::uint64_t n) {
    TRKX_CHECK(n > 0);
    // Lemire's multiply-shift rejection method: unbiased.
    std::uint64_t x = next_u64();
    __uint128_t m = static_cast<__uint128_t>(x) * n;
    std::uint64_t lo = static_cast<std::uint64_t>(m);
    if (lo < n) {
      std::uint64_t t = (0 - n) % n;
      while (lo < t) {
        x = next_u64();
        m = static_cast<__uint128_t>(x) * n;
        lo = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Standard normal via Box–Muller (one value per call; spare cached).
  double normal();

  /// Normal with given mean and stddev.
  double normal(double mean, double stddev) { return mean + stddev * normal(); }

  /// Bernoulli draw with probability p of true.
  bool bernoulli(double p) { return uniform() < p; }

  /// Poisson draw (Knuth for small lambda, normal approximation for large).
  int poisson(double lambda);

  /// Sample k distinct indices uniformly from [0, n) (Floyd's algorithm).
  /// If k >= n, returns all n indices. Output order is unspecified.
  std::vector<std::uint32_t> sample_without_replacement(std::uint32_t n,
                                                        std::uint32_t k);

  /// In-place Fisher–Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      std::size_t j = uniform_index(i);
      std::swap(v[i - 1], v[j]);
    }
  }

  std::uint64_t state() const { return state_; }

  /// Box–Muller spare cache, exposed so checkpoints can round-trip the
  /// full generator state (state_ alone is not enough mid normal() pair).
  bool have_spare() const { return have_spare_; }
  double spare_value() const { return spare_; }

  /// Restore a generator to a previously observed (state, spare) — the
  /// checkpoint/resume path. After restore the draw sequence continues
  /// bit-identically from where the saved generator left off.
  void restore(std::uint64_t state, bool have_spare = false,
               double spare = 0.0) {
    state_ = state;
    have_spare_ = have_spare;
    spare_ = spare;
  }

 private:
  std::uint64_t state_;
  bool have_spare_ = false;
  double spare_ = 0.0;
};

}  // namespace trkx
