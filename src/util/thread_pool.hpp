#pragma once

#include <cstddef>
#include <functional>
#include <future>
#include <queue>
#include <thread>
#include <vector>

#include "util/annotations.hpp"

namespace trkx {

/// Fixed-size worker pool. Used by the distributed runtime to host rank
/// workers, and available to callers that want task parallelism without
/// OpenMP (e.g. per-event pipeline inference).
class ThreadPool {
 public:
  explicit ThreadPool(std::size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueue a task; returns a future for its completion.
  std::future<void> submit(std::function<void()> task) TRKX_EXCLUDES(mutex_);

  /// Run fn(i) for i in [0, count) across the pool and wait for all.
  void parallel_for(std::size_t count,
                    const std::function<void(std::size_t)>& fn);

  std::size_t size() const { return workers_.size(); }

 private:
  void worker_loop() TRKX_EXCLUDES(mutex_);

  std::vector<std::thread> workers_;  ///< written only in ctor/dtor
  Mutex mutex_;
  std::queue<std::packaged_task<void()>> tasks_ TRKX_GUARDED_BY(mutex_);
  CondVar cv_;
  bool stop_ TRKX_GUARDED_BY(mutex_) = false;
};

}  // namespace trkx
