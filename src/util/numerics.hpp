#pragma once

namespace trkx {

/// Runtime switch for TRKX_CHECK_NUMERICS mode: when enabled, the autograd
/// tape verifies every non-leaf op output at record time and every gradient
/// contribution during backward(), and gradient sync verifies the synced
/// per-parameter gradients — each failure names the offending op/parameter.
///
/// Off by default (the checks walk every element). Enable per-process with
/// the TRKX_CHECK_NUMERICS environment variable (any value but "0"/"") or
/// per-scope with set_check_numerics().
bool check_numerics_enabled();

/// Override the environment default (tests flip this around NaN injection).
void set_check_numerics(bool on);

}  // namespace trkx
