#include "nn/mlp.hpp"

#include "util/error.hpp"

namespace trkx {

Var apply_activation(Tape& tape, Var x, Activation act) {
  switch (act) {
    case Activation::kNone: return x;
    case Activation::kRelu: return tape.relu(x);
    case Activation::kTanh: return tape.tanh(x);
    case Activation::kSigmoid: return tape.sigmoid(x);
  }
  TRKX_CHECK_MSG(false, "unknown activation");
}

Linear::Linear(ParameterStore& store, const std::string& name,
               std::size_t in_dim, std::size_t out_dim, Rng& rng) {
  TRKX_CHECK(in_dim > 0 && out_dim > 0);
  weight_ = &store.create(name + ".weight", in_dim, out_dim);
  bias_ = &store.create(name + ".bias", 1, out_dim);
  init_kaiming_uniform(weight_->value, rng);
  // Bias stays zero-initialised.
}

Var Linear::forward(TapeContext& ctx, Var x) const {
  TRKX_CHECK_MSG(x.cols() == in_dim(), "Linear expects input dim "
                                           << in_dim() << ", got "
                                           << x.cols());
  Var w = ctx.bind(*weight_);
  Var b = ctx.bind(*bias_);
  return ctx.tape().linear(x, w, b);
}

Mlp::Mlp(ParameterStore& store, const std::string& name,
         const MlpConfig& config, Rng& rng)
    : config_(config) {
  TRKX_CHECK(config.input_dim > 0 && config.output_dim > 0);
  TRKX_CHECK(config.num_hidden == 0 || config.hidden_dim > 0);
  std::size_t in = config.input_dim;
  for (std::size_t i = 0; i < config.num_hidden; ++i) {
    layers_.emplace_back(store, name + ".hidden" + std::to_string(i), in,
                         config.hidden_dim, rng);
    in = config.hidden_dim;
    if (config.layer_norm) {
      Parameter& gamma = store.create(
          name + ".ln" + std::to_string(i) + ".gamma", 1, config.hidden_dim);
      gamma.value.fill(1.0f);
      Parameter& beta = store.create(
          name + ".ln" + std::to_string(i) + ".beta", 1, config.hidden_dim);
      ln_gamma_.push_back(&gamma);
      ln_beta_.push_back(&beta);
    }
  }
  layers_.emplace_back(store, name + ".out", in, config.output_dim, rng);
}

Var Mlp::forward(TapeContext& ctx, Var x) const {
  Var h = x;
  for (std::size_t i = 0; i + 1 < layers_.size(); ++i) {
    h = layers_[i].forward(ctx, h);
    h = apply_activation(ctx.tape(), h, config_.hidden_activation);
    if (config_.layer_norm) {
      Var gamma = ctx.bind(*ln_gamma_[i]);
      Var beta = ctx.bind(*ln_beta_[i]);
      h = ctx.tape().layer_norm(h, gamma, beta);
    }
  }
  h = layers_.back().forward(ctx, h);
  return apply_activation(ctx.tape(), h, config_.output_activation);
}

}  // namespace trkx
