#pragma once

#include <string>
#include <vector>

#include "nn/module.hpp"

namespace trkx {

enum class Activation { kNone, kRelu, kTanh, kSigmoid };

Var apply_activation(Tape& tape, Var x, Activation act);

/// Fully-connected layer: y = x·W + b, with W (in×out) and b (1×out)
/// registered in a ParameterStore.
class Linear {
 public:
  Linear(ParameterStore& store, const std::string& name, std::size_t in_dim,
         std::size_t out_dim, Rng& rng);

  Var forward(TapeContext& ctx, Var x) const;

  std::size_t in_dim() const { return weight_->value.rows(); }
  std::size_t out_dim() const { return weight_->value.cols(); }

 private:
  Parameter* weight_;
  Parameter* bias_;
};

/// Configuration for an MLP block as used throughout the Exa.TrkX
/// pipeline: `num_hidden` hidden layers of width `hidden_dim`, hidden
/// activation, optional per-layer LayerNorm, and an output activation.
struct MlpConfig {
  std::size_t input_dim = 0;
  std::size_t hidden_dim = 0;
  std::size_t output_dim = 0;
  std::size_t num_hidden = 1;  ///< hidden layer count ("MLP Layers" in Table I is num_hidden+1 linear layers)
  Activation hidden_activation = Activation::kRelu;
  Activation output_activation = Activation::kNone;
  bool layer_norm = false;  ///< LayerNorm after each hidden activation
};

/// Multi-layer perceptron; the φ blocks in Algorithm 1.
class Mlp {
 public:
  Mlp(ParameterStore& store, const std::string& name, const MlpConfig& config,
      Rng& rng);

  Var forward(TapeContext& ctx, Var x) const;

  const MlpConfig& config() const { return config_; }
  /// Linear layer count (num_hidden + 1 output layer).
  std::size_t num_linear_layers() const { return layers_.size(); }

 private:
  MlpConfig config_;
  std::vector<Linear> layers_;
  // LayerNorm affine parameters per hidden layer (empty when disabled).
  std::vector<Parameter*> ln_gamma_;
  std::vector<Parameter*> ln_beta_;
};

}  // namespace trkx
