#pragma once

#include <utility>
#include <vector>

#include "autograd/tape.hpp"
#include "nn/parameter.hpp"

namespace trkx {

/// Couples a Tape with the parameters that were bound into it for one
/// forward/backward pass.
///
/// Layers call bind() to obtain a Var for each Parameter; after
/// backward(), the accumulated tape gradients are added into each
/// Parameter::grad. Binding the same Parameter twice (weight sharing, or a
/// module invoked repeatedly, as the IGNN does per layer) is supported:
/// each binding contributes its own gradient term.
class TapeContext {
 public:
  Tape& tape() { return tape_; }

  Var bind(Parameter& p) {
    Var v = tape_.leaf(p.value, /*requires_grad=*/true);
    bound_.emplace_back(&p, v);
    return v;
  }

  /// Constant (non-trainable) input.
  Var constant(Matrix value) { return tape_.leaf(std::move(value), false); }

  /// Backprop from `loss` and accumulate parameter gradients. A bound
  /// parameter whose branch never reaches the loss receives no gradient.
  void backward(Var loss) {
    tape_.backward(loss);
    for (auto& [p, v] : bound_) accumulate_if_present(*p, v);
  }

 private:
  void accumulate_if_present(Parameter& p, Var v);

  Tape tape_;
  std::vector<std::pair<Parameter*, Var>> bound_;
};

}  // namespace trkx
