#include "nn/optimizer.hpp"

#include <cmath>
#include <cstdint>
#include <istream>
#include <ostream>

#include "tensor/kernels/kernels.hpp"
#include "util/error.hpp"

namespace trkx {

void Optimizer::scale_grads(float s) {
  for (auto& p : store_->params())
    for (float& g : p.grad.flat()) g *= s;
}

double Optimizer::clip_grad_norm(double max_norm) {
  TRKX_CHECK(max_norm > 0.0);
  double sq = 0.0;
  for (const auto& p : store_->params())
    for (float g : p.grad.flat()) sq += static_cast<double>(g) * g;
  const double norm = std::sqrt(sq);
  if (norm > max_norm) {
    const float s = static_cast<float>(max_norm / (norm + 1e-12));
    scale_grads(s);
  }
  return norm;
}

Sgd::Sgd(ParameterStore& store, const SgdOptions& options)
    : Optimizer(store), options_(options) {
  for (const auto& p : store.params())
    velocity_.emplace_back(p.value.rows(), p.value.cols(), 0.0f);
}

void Sgd::step() {
  std::size_t i = 0;
  for (auto& p : store_->params()) {
    Matrix& vel = velocity_[i++];
    float* w = p.value.data();
    const float* g = p.grad.data();
    float* v = vel.data();
    for (std::size_t j = 0; j < p.size(); ++j) {
      float grad = g[j] + options_.weight_decay * w[j];
      if (options_.momentum != 0.0f) {
        v[j] = options_.momentum * v[j] + grad;
        grad = v[j];
      }
      w[j] -= options_.lr * grad;
    }
  }
}

Adam::Adam(ParameterStore& store, const AdamOptions& options)
    : Optimizer(store), options_(options) {
  for (const auto& p : store.params()) {
    m_.emplace_back(p.value.rows(), p.value.cols(), 0.0f);
    v_.emplace_back(p.value.rows(), p.value.cols(), 0.0f);
  }
}

namespace {
// Versioned Adam-state framing so a checkpoint written by a newer,
// incompatible layout is rejected instead of silently misread.
constexpr std::uint32_t kAdamStateMagic = 0x4d414441;  // "ADAM"
constexpr std::uint32_t kAdamStateVersion = 1;
}  // namespace

void Adam::save_state(std::ostream& os) const {
  os.write(reinterpret_cast<const char*>(&kAdamStateMagic),
           sizeof(kAdamStateMagic));
  os.write(reinterpret_cast<const char*>(&kAdamStateVersion),
           sizeof(kAdamStateVersion));
  const std::uint64_t t = t_;
  os.write(reinterpret_cast<const char*>(&t), sizeof(t));
  const std::uint64_t count = m_.size();
  os.write(reinterpret_cast<const char*>(&count), sizeof(count));
  for (const auto* moments : {&m_, &v_}) {
    for (const Matrix& m : *moments) {
      os.write(reinterpret_cast<const char*>(m.data()),
               static_cast<std::streamsize>(m.size() * sizeof(float)));
    }
  }
  TRKX_CHECK_MSG(os.good(), "Adam::save_state failed");
}

void Adam::load_state(std::istream& is) {
  std::uint32_t magic = 0, version = 0;
  is.read(reinterpret_cast<char*>(&magic), sizeof(magic));
  is.read(reinterpret_cast<char*>(&version), sizeof(version));
  if (!is.good() || magic != kAdamStateMagic)
    throw CheckpointError("Adam::load_state: bad magic (not an Adam state)");
  if (version != kAdamStateVersion) {
    std::ostringstream os;
    os << "Adam::load_state: unsupported state version " << version
       << " (expected " << kAdamStateVersion << ")";
    throw CheckpointError(os.str());
  }
  std::uint64_t t = 0, count = 0;
  is.read(reinterpret_cast<char*>(&t), sizeof(t));
  is.read(reinterpret_cast<char*>(&count), sizeof(count));
  TRKX_CHECK_MSG(is.good() && count == m_.size(),
                 "Adam::load_state: layout mismatch");
  t_ = static_cast<std::size_t>(t);
  for (auto* moments : {&m_, &v_}) {
    for (Matrix& m : *moments) {
      is.read(reinterpret_cast<char*>(m.data()),
              static_cast<std::streamsize>(m.size() * sizeof(float)));
    }
  }
  TRKX_CHECK_MSG(is.good(), "Adam::load_state: truncated stream");
}

void Adam::step() {
  ++t_;
  const float b1 = options_.beta1, b2 = options_.beta2;
  const float bias1 = 1.0f - std::pow(b1, static_cast<float>(t_));
  const float bias2 = 1.0f - std::pow(b2, static_cast<float>(t_));
  TRKX_CHECK(bias1 > 0.0f && bias2 > 0.0f);  // betas < 1, t_ >= 1
  const kernels::AdamStep step{options_.lr,           b1,
                               b2,                    options_.eps,
                               options_.weight_decay, 1.0f / bias1,
                               1.0f / bias2};
  std::size_t i = 0;
  for (auto& p : store_->params()) {
    kernels::active().adam_update(p.value.data(), p.grad.data(),
                                  m_[i].data(), v_[i].data(), p.size(), step);
    ++i;
  }
}

}  // namespace trkx
