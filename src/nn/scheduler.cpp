#include "nn/scheduler.hpp"

#include <cmath>

#include "util/error.hpp"

namespace trkx {

StepDecayLr::StepDecayLr(float base, float factor, std::size_t every)
    : base_(base), factor_(factor), every_(every) {
  TRKX_CHECK(base > 0.0f);
  TRKX_CHECK(factor > 0.0f && factor <= 1.0f);
  TRKX_CHECK(every > 0);
}

float StepDecayLr::lr_at(std::size_t step) const {
  // NOLINT(trkx-div-guard): every_ > 0 enforced in the constructor
  return base_ * std::pow(factor_, static_cast<float>(step / every_));
}

CosineLr::CosineLr(float base, float min_lr, std::size_t total_steps)
    : base_(base), min_lr_(min_lr), total_steps_(total_steps) {
  TRKX_CHECK(base >= min_lr && min_lr >= 0.0f);
  TRKX_CHECK(total_steps > 0);
}

float CosineLr::lr_at(std::size_t step) const {
  if (step >= total_steps_) return min_lr_;
  const double progress =
      static_cast<double>(step) / static_cast<double>(total_steps_);
  const double cosine = 0.5 * (1.0 + std::cos(M_PI * progress));
  return min_lr_ + static_cast<float>((base_ - min_lr_) * cosine);
}

WarmupLr::WarmupLr(std::shared_ptr<const LrScheduler> inner,
                   std::size_t warmup_steps)
    : inner_(std::move(inner)), warmup_steps_(warmup_steps) {
  TRKX_CHECK(inner_ != nullptr);
  TRKX_CHECK(warmup_steps > 0);
}

float WarmupLr::lr_at(std::size_t step) const {
  if (step < warmup_steps_) {
    const float target = inner_->lr_at(0);
    return target * static_cast<float>(step + 1) /
           static_cast<float>(warmup_steps_);
  }
  return inner_->lr_at(step - warmup_steps_);
}

bool EarlyStopping::update(double metric) {
  if (metric > best_ + min_delta_) {
    best_ = metric;
    bad_epochs_ = 0;
    return true;
  }
  ++bad_epochs_;
  return false;
}

}  // namespace trkx
