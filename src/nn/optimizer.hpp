#pragma once

#include <vector>

#include "nn/parameter.hpp"

namespace trkx {

/// Base optimizer interface over a ParameterStore.
class Optimizer {
 public:
  explicit Optimizer(ParameterStore& store) : store_(&store) {}
  virtual ~Optimizer() = default;

  /// Apply one update from the currently accumulated gradients.
  virtual void step() = 0;
  void zero_grad() { store_->zero_grad(); }

  /// Current learning rate (mutable so schedulers can drive it).
  virtual float learning_rate() const = 0;
  virtual void set_learning_rate(float lr) = 0;

  /// Scale all gradients (used to average DDP gradient sums by 1/P).
  void scale_grads(float s);
  /// Global L2 gradient-norm clipping; returns the pre-clip norm.
  double clip_grad_norm(double max_norm);

 protected:
  ParameterStore* store_;
};

struct SgdOptions {
  float lr = 1e-2f;
  float momentum = 0.0f;
  float weight_decay = 0.0f;
};

class Sgd : public Optimizer {
 public:
  Sgd(ParameterStore& store, const SgdOptions& options);
  void step() override;
  float learning_rate() const override { return options_.lr; }
  void set_learning_rate(float lr) override { options_.lr = lr; }

 private:
  SgdOptions options_;
  std::vector<Matrix> velocity_;  // one per parameter; lazily initialised
};

struct AdamOptions {
  float lr = 1e-3f;
  float beta1 = 0.9f;
  float beta2 = 0.999f;
  float eps = 1e-8f;
  float weight_decay = 0.0f;
};

class Adam : public Optimizer {
 public:
  Adam(ParameterStore& store, const AdamOptions& options);
  void step() override;
  std::size_t steps_taken() const { return t_; }
  float learning_rate() const override { return options_.lr; }
  void set_learning_rate(float lr) override { options_.lr = lr; }

  /// Checkpoint the optimizer state (step counter + both moments) so a
  /// training run can resume exactly. The parameter values themselves are
  /// saved separately via ParameterStore::save.
  void save_state(std::ostream& os) const;
  void load_state(std::istream& is);

 private:
  AdamOptions options_;
  std::size_t t_ = 0;
  std::vector<Matrix> m_;  // first moment per parameter
  std::vector<Matrix> v_;  // second moment per parameter
};

}  // namespace trkx
