#pragma once

#include <cstddef>
#include <memory>

#include "nn/optimizer.hpp"

namespace trkx {

/// Learning-rate schedule: maps a step counter to a learning rate.
/// Drive it from the training loop: `scheduler.apply(opt, global_step)`.
class LrScheduler {
 public:
  virtual ~LrScheduler() = default;
  virtual float lr_at(std::size_t step) const = 0;
  void apply(Optimizer& optimizer, std::size_t step) const {
    optimizer.set_learning_rate(lr_at(step));
  }
};

class ConstantLr : public LrScheduler {
 public:
  explicit ConstantLr(float lr) : lr_(lr) {}
  float lr_at(std::size_t) const override { return lr_; }

 private:
  float lr_;
};

/// lr = base · factor^(step / every).
class StepDecayLr : public LrScheduler {
 public:
  StepDecayLr(float base, float factor, std::size_t every);
  float lr_at(std::size_t step) const override;

 private:
  float base_;
  float factor_;
  std::size_t every_;
};

/// Cosine annealing from base to min_lr over total_steps, then min_lr.
class CosineLr : public LrScheduler {
 public:
  CosineLr(float base, float min_lr, std::size_t total_steps);
  float lr_at(std::size_t step) const override;

 private:
  float base_;
  float min_lr_;
  std::size_t total_steps_;
};

/// Linear ramp from 0 to the inner schedule's rate over warmup_steps,
/// then defers to the inner schedule (offset by the warmup length).
class WarmupLr : public LrScheduler {
 public:
  WarmupLr(std::shared_ptr<const LrScheduler> inner, std::size_t warmup_steps);
  float lr_at(std::size_t step) const override;

 private:
  std::shared_ptr<const LrScheduler> inner_;
  std::size_t warmup_steps_;
};

/// Early stopping on a metric that should increase (e.g. validation F1).
/// Call update() once per epoch; should_stop() flips after `patience`
/// consecutive non-improving epochs.
class EarlyStopping {
 public:
  explicit EarlyStopping(std::size_t patience, double min_delta = 0.0)
      : patience_(patience), min_delta_(min_delta) {}

  /// Returns true if this value is a new best.
  bool update(double metric);
  bool should_stop() const { return bad_epochs_ >= patience_; }
  double best() const { return best_; }
  std::size_t epochs_since_best() const { return bad_epochs_; }

  /// Reinstate a previously observed (best, bad_epochs) pair — the
  /// checkpoint/resume path, so a resumed run stops at the same epoch the
  /// uninterrupted run would have.
  void restore(double best, std::size_t bad_epochs) {
    best_ = best;
    bad_epochs_ = bad_epochs;
  }

 private:
  std::size_t patience_;
  double min_delta_;
  double best_ = -1e300;
  std::size_t bad_epochs_ = 0;
};

}  // namespace trkx
