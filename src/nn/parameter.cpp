#include "nn/parameter.hpp"

#include <cmath>
#include <cstring>
#include <istream>
#include <ostream>

#include "util/error.hpp"

namespace trkx {

Parameter& ParameterStore::create(const std::string& name, std::size_t rows,
                                  std::size_t cols) {
  TRKX_CHECK_MSG(find(name) == nullptr, "duplicate parameter name: " << name);
  params_.push_back(Parameter{name, Matrix(rows, cols, 0.0f),
                              Matrix(rows, cols, 0.0f)});
  return params_.back();
}

Parameter* ParameterStore::find(const std::string& name) {
  for (auto& p : params_)
    if (p.name == name) return &p;
  return nullptr;
}

std::size_t ParameterStore::total_size() const {
  std::size_t n = 0;
  for (const auto& p : params_) n += p.size();
  return n;
}

void ParameterStore::zero_grad() {
  for (auto& p : params_) p.grad.fill(0.0f);
}

std::vector<float> ParameterStore::flatten_grads() const {
  std::vector<float> flat;
  flat.reserve(total_size());
  for (const auto& p : params_)
    flat.insert(flat.end(), p.grad.data(), p.grad.data() + p.grad.size());
  return flat;
}

void ParameterStore::unflatten_grads(const std::vector<float>& flat) {
  TRKX_CHECK(flat.size() == total_size());
  std::size_t off = 0;
  for (auto& p : params_) {
    std::memcpy(p.grad.data(), flat.data() + off, p.size() * sizeof(float));
    off += p.size();
  }
}

std::vector<float> ParameterStore::flatten_values() const {
  std::vector<float> flat;
  flat.reserve(total_size());
  for (const auto& p : params_)
    flat.insert(flat.end(), p.value.data(), p.value.data() + p.value.size());
  return flat;
}

void ParameterStore::unflatten_values(const std::vector<float>& flat) {
  TRKX_CHECK(flat.size() == total_size());
  std::size_t off = 0;
  for (auto& p : params_) {
    std::memcpy(p.value.data(), flat.data() + off, p.size() * sizeof(float));
    off += p.size();
  }
}

void ParameterStore::copy_values_from(const ParameterStore& other) {
  TRKX_CHECK(params_.size() == other.params_.size());
  auto it = other.params_.begin();
  for (auto& p : params_) {
    TRKX_CHECK(p.value.same_shape(it->value));
    p.value = it->value;
    ++it;
  }
}

void ParameterStore::save(std::ostream& os) const {
  const std::uint64_t n = params_.size();
  os.write(reinterpret_cast<const char*>(&n), sizeof(n));
  for (const auto& p : params_) {
    const std::uint64_t len = p.name.size();
    os.write(reinterpret_cast<const char*>(&len), sizeof(len));
    os.write(p.name.data(), static_cast<std::streamsize>(len));
    const std::uint64_t r = p.value.rows(), c = p.value.cols();
    os.write(reinterpret_cast<const char*>(&r), sizeof(r));
    os.write(reinterpret_cast<const char*>(&c), sizeof(c));
    os.write(reinterpret_cast<const char*>(p.value.data()),
             static_cast<std::streamsize>(p.value.size() * sizeof(float)));
  }
}

void ParameterStore::load(std::istream& is) {
  std::uint64_t n = 0;
  is.read(reinterpret_cast<char*>(&n), sizeof(n));
  TRKX_CHECK_MSG(is.good(), "truncated parameter file");
  TRKX_CHECK_MSG(n == params_.size(),
                 "parameter count mismatch: file has "
                     << n << ", model has " << params_.size());
  for (auto& p : params_) {
    std::uint64_t len = 0;
    is.read(reinterpret_cast<char*>(&len), sizeof(len));
    std::string name(len, '\0');
    is.read(name.data(), static_cast<std::streamsize>(len));
    TRKX_CHECK_MSG(name == p.name, "parameter name mismatch: file has "
                                       << name << ", model has " << p.name);
    std::uint64_t r = 0, c = 0;
    is.read(reinterpret_cast<char*>(&r), sizeof(r));
    is.read(reinterpret_cast<char*>(&c), sizeof(c));
    TRKX_CHECK(r == p.value.rows() && c == p.value.cols());
    is.read(reinterpret_cast<char*>(p.value.data()),
            static_cast<std::streamsize>(p.value.size() * sizeof(float)));
    TRKX_CHECK_MSG(is.good(), "truncated parameter file");
  }
}

void init_kaiming_uniform(Matrix& w, Rng& rng) {
  // fan_in = rows for an (in x out) weight used as x·W.
  const float bound =
      std::sqrt(6.0f / static_cast<float>(std::max<std::size_t>(1, w.rows())));
  for (float& x : w.flat()) x = rng.uniform(-bound, bound);
}

void init_xavier_uniform(Matrix& w, Rng& rng) {
  const float bound = std::sqrt(
      6.0f / static_cast<float>(std::max<std::size_t>(1, w.rows() + w.cols())));
  for (float& x : w.flat()) x = rng.uniform(-bound, bound);
}

}  // namespace trkx
