#include "nn/module.hpp"

namespace trkx {

void TapeContext::accumulate_if_present(Parameter& p, Var v) {
  if (!tape_.has_grad(v)) return;
  add_inplace(p.grad, v.grad());
}

}  // namespace trkx
