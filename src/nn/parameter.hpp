#pragma once

#include <cstdint>
#include <deque>
#include <iosfwd>
#include <string>
#include <vector>

#include "tensor/matrix.hpp"

namespace trkx {

/// One trainable matrix with its accumulated gradient.
struct Parameter {
  std::string name;
  Matrix value;
  Matrix grad;  // same shape as value; zeroed by ParameterStore::zero_grad

  std::size_t size() const { return value.size(); }
};

/// Owns all trainable parameters of a model.
///
/// Parameters live in a deque so pointers remain stable as layers register
/// themselves. The store is also the unit of optimisation (optimizers walk
/// it) and of communication: flatten_grads()/unflatten_grads() give the
/// single contiguous buffer used by the paper's coalesced all-reduce.
class ParameterStore {
 public:
  ParameterStore() = default;
  ParameterStore(const ParameterStore&) = delete;
  ParameterStore& operator=(const ParameterStore&) = delete;
  // Moves keep registered Parameter* valid (deque storage is transferred).
  ParameterStore(ParameterStore&&) = default;
  ParameterStore& operator=(ParameterStore&&) = default;

  /// Create a zero-initialised parameter; name must be unique.
  Parameter& create(const std::string& name, std::size_t rows,
                    std::size_t cols);

  Parameter* find(const std::string& name);
  std::size_t count() const { return params_.size(); }
  /// Total number of floats across all parameter values.
  std::size_t total_size() const;

  std::deque<Parameter>& params() { return params_; }
  const std::deque<Parameter>& params() const { return params_; }

  void zero_grad();

  /// Copy every gradient into one contiguous buffer (deque order).
  std::vector<float> flatten_grads() const;
  /// Inverse of flatten_grads: scatter `flat` back into per-param grads.
  void unflatten_grads(const std::vector<float>& flat);
  std::vector<float> flatten_values() const;
  void unflatten_values(const std::vector<float>& flat);

  /// Copy values (not grads) from another store with identical layout.
  void copy_values_from(const ParameterStore& other);

  /// Binary serialization: (count, then per-param name/rows/cols/data).
  void save(std::ostream& os) const;
  void load(std::istream& is);

 private:
  std::deque<Parameter> params_;
};

/// Weight initialisers. fan_in/fan_out are taken from the matrix shape.
void init_kaiming_uniform(Matrix& w, Rng& rng);
void init_xavier_uniform(Matrix& w, Rng& rng);

}  // namespace trkx
