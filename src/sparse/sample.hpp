#pragma once

#include "sparse/csr.hpp"
#include "util/rng.hpp"

namespace trkx {

/// For each row of `probs` (nonnegative values, typically row-normalised),
/// draw up to `s` *distinct* stored columns. Rows with ≤ s nonzeros keep
/// all their columns. Sampling is weighted by the stored values
/// (systematic resampling over the row's cumulative distribution, then
/// dedup — equivalent to uniform without replacement when the row is
/// uniform, which is the ShaDow case).
///
/// Returns a 0/1-valued CSR matrix with the same shape whose row i holds
/// the sampled columns of row i.
CsrMatrix sample_rows(const CsrMatrix& probs, std::size_t s, Rng& rng);

/// Grouped variant: row i draws from rngs[group[i]] instead of a single
/// shared stream. Rows sharing a group id are processed in row order on
/// one stream; distinct groups are independent and sampled in parallel
/// (OpenMP), so the result is identical for any thread count. `group`
/// must be nondecreasing (groups are contiguous row ranges — the ShaDow
/// bulk sampler's roots-stacked layout). Group ids may exceed
/// rngs.size() - 1 only if the corresponding rows are absent.
CsrMatrix sample_rows(const CsrMatrix& probs, std::size_t s,
                      const std::vector<std::uint32_t>& group,
                      std::vector<Rng>& rngs);

}  // namespace trkx
