#pragma once

#include "sparse/csr.hpp"
#include "util/rng.hpp"

namespace trkx {

/// For each row of `probs` (nonnegative values, typically row-normalised),
/// draw up to `s` *distinct* stored columns. Rows with ≤ s nonzeros keep
/// all their columns. Sampling is weighted by the stored values
/// (systematic resampling over the row's cumulative distribution, then
/// dedup — equivalent to uniform without replacement when the row is
/// uniform, which is the ShaDow case).
///
/// Returns a 0/1-valued CSR matrix with the same shape whose row i holds
/// the sampled columns of row i.
CsrMatrix sample_rows(const CsrMatrix& probs, std::size_t s, Rng& rng);

/// Grouped variant: row i draws from rngs[group[i]] instead of a single
/// shared stream. Rows sharing a group id are processed in row order on
/// one stream; distinct groups are independent and sampled in parallel
/// (OpenMP), so the result is identical for any thread count. `group`
/// must be nondecreasing (groups are contiguous row ranges — the ShaDow
/// bulk sampler's roots-stacked layout). Group ids may exceed
/// rngs.size() - 1 only if the corresponding rows are absent.
CsrMatrix sample_rows(const CsrMatrix& probs, std::size_t s,
                      const std::vector<std::uint32_t>& group,
                      std::vector<Rng>& rngs);

/// Fused row-extract → normalise → sample: for each frontier vertex v,
/// draws up to `s` distinct neighbours from row v of `adj`, weighting by
/// the row-normalised stored values — in ONE pass over the CSR row,
/// without materialising the extracted or normalised intermediate
/// matrices. Bit-identical to
///   sample_rows(select_rows(adj, frontier).normalize_rows(), s, group,
///               rngs)
/// (same double row-sum order, same degenerate-row guard, same float
/// scaling, same RNG stream consumption). Grouping semantics match the
/// grouped sample_rows; the result has frontier.size() rows and
/// adj.cols() columns, values all 1.
CsrMatrix sample_neighbors_fused(const CsrMatrix& adj,
                                 const std::vector<std::uint32_t>& frontier,
                                 std::size_t s,
                                 const std::vector<std::uint32_t>& group,
                                 std::vector<Rng>& rngs);

}  // namespace trkx
