#include "sparse/csr.hpp"

#include <algorithm>
#include <cmath>

namespace trkx {

CsrMatrix::CsrMatrix(std::size_t rows, std::size_t cols)
    : rows_(rows), cols_(cols), row_ptr_(rows + 1, 0) {}

CsrMatrix CsrMatrix::from_triplets(std::size_t rows, std::size_t cols,
                                   std::vector<Triplet> triplets,
                                   bool sum_duplicates) {
  for (const auto& t : triplets) {
    TRKX_CHECK_MSG(t.row < rows && t.col < cols,
                   "triplet (" << t.row << "," << t.col << ") out of shape "
                               << rows << "x" << cols);
  }
  std::sort(triplets.begin(), triplets.end(),
            [](const Triplet& a, const Triplet& b) {
              return a.row != b.row ? a.row < b.row : a.col < b.col;
            });
  CsrMatrix m(rows, cols);
  m.col_.reserve(triplets.size());
  m.val_.reserve(triplets.size());
  std::size_t i = 0;
  for (std::size_t r = 0; r < rows; ++r) {
    const std::size_t row_start = m.col_.size();
    while (i < triplets.size() && triplets[i].row == r) {
      if (m.col_.size() > row_start && m.col_.back() == triplets[i].col) {
        TRKX_CHECK_MSG(sum_duplicates, "duplicate entry at ("
                                           << r << "," << triplets[i].col
                                           << ")");
        m.val_.back() += triplets[i].val;
      } else {
        m.col_.push_back(triplets[i].col);
        m.val_.push_back(triplets[i].val);
      }
      ++i;
    }
    m.row_ptr_[r + 1] = m.col_.size();
  }
  return m;
}

CsrMatrix CsrMatrix::from_csr(std::size_t rows, std::size_t cols,
                              std::vector<std::uint64_t> row_ptr,
                              std::vector<std::uint32_t> col_idx,
                              std::vector<float> values) {
  CsrMatrix m;
  m.rows_ = rows;
  m.cols_ = cols;
  m.row_ptr_ = std::move(row_ptr);
  m.col_ = std::move(col_idx);
  m.val_ = std::move(values);
  m.check_invariants();
  return m;
}

CsrMatrix CsrMatrix::identity(std::size_t n) {
  CsrMatrix m(n, n);
  m.col_.resize(n);
  m.val_.assign(n, 1.0f);
  for (std::size_t i = 0; i < n; ++i) {
    m.col_[i] = static_cast<std::uint32_t>(i);
    m.row_ptr_[i + 1] = i + 1;
  }
  return m;
}

CsrMatrix CsrMatrix::selection(std::size_t n,
                               const std::vector<std::uint32_t>& index) {
  CsrMatrix m(index.size(), n);
  m.col_.resize(index.size());
  m.val_.assign(index.size(), 1.0f);
  for (std::size_t i = 0; i < index.size(); ++i) {
    TRKX_CHECK(index[i] < n);
    m.col_[i] = index[i];
    m.row_ptr_[i + 1] = i + 1;
  }
  return m;
}

std::vector<std::uint32_t> CsrMatrix::row_cols(std::size_t r) const {
  TRKX_CHECK(r < rows_);
  return {col_.begin() + static_cast<std::ptrdiff_t>(row_ptr_[r]),
          col_.begin() + static_cast<std::ptrdiff_t>(row_ptr_[r + 1])};
}

float CsrMatrix::at(std::size_t r, std::size_t c) const {
  TRKX_CHECK(r < rows_ && c < cols_);
  const auto begin =
      col_.begin() + static_cast<std::ptrdiff_t>(row_ptr_[r]);
  const auto end = col_.begin() + static_cast<std::ptrdiff_t>(row_ptr_[r + 1]);
  const auto it = std::lower_bound(begin, end, static_cast<std::uint32_t>(c));
  if (it == end || *it != c) return 0.0f;
  return val_[static_cast<std::size_t>(it - col_.begin())];
}

CsrMatrix CsrMatrix::transpose() const {
  CsrMatrix t(cols_, rows_);
  t.col_.resize(nnz());
  t.val_.resize(nnz());
  // Counting sort by column.
  std::vector<std::uint64_t> count(cols_ + 1, 0);
  for (std::uint32_t c : col_) ++count[c + 1];
  for (std::size_t i = 0; i < cols_; ++i) count[i + 1] += count[i];
  t.row_ptr_ = count;
  std::vector<std::uint64_t> cursor = count;
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::uint64_t k = row_ptr_[r]; k < row_ptr_[r + 1]; ++k) {
      const std::uint32_t c = col_[k];
      const std::uint64_t pos = cursor[c]++;
      t.col_[pos] = static_cast<std::uint32_t>(r);
      t.val_[pos] = val_[k];
    }
  }
  return t;
}

Matrix CsrMatrix::to_dense() const {
  Matrix d(rows_, cols_, 0.0f);
  for (std::size_t r = 0; r < rows_; ++r)
    for (std::uint64_t k = row_ptr_[r]; k < row_ptr_[r + 1]; ++k)
      d(r, col_[k]) += val_[k];
  return d;
}

CsrMatrix CsrMatrix::from_dense(const Matrix& dense, float tol) {
  std::vector<Triplet> trips;
  for (std::size_t r = 0; r < dense.rows(); ++r)
    for (std::size_t c = 0; c < dense.cols(); ++c)
      if (std::fabs(dense(r, c)) > tol)
        trips.push_back({static_cast<std::uint32_t>(r),
                         static_cast<std::uint32_t>(c), dense(r, c)});
  return from_triplets(dense.rows(), dense.cols(), std::move(trips), false);
}

CsrMatrix CsrMatrix::select_rows(
    const std::vector<std::uint32_t>& index) const {
  CsrMatrix out(index.size(), cols_);
  std::size_t total = 0;
  for (std::uint32_t r : index) {
    TRKX_CHECK(r < rows_);
    total += row_nnz(r);
  }
  out.col_.reserve(total);
  out.val_.reserve(total);
  for (std::size_t i = 0; i < index.size(); ++i) {
    const std::uint32_t r = index[i];
    out.col_.insert(out.col_.end(),
                    col_.begin() + static_cast<std::ptrdiff_t>(row_ptr_[r]),
                    col_.begin() + static_cast<std::ptrdiff_t>(row_ptr_[r + 1]));
    out.val_.insert(out.val_.end(),
                    val_.begin() + static_cast<std::ptrdiff_t>(row_ptr_[r]),
                    val_.begin() + static_cast<std::ptrdiff_t>(row_ptr_[r + 1]));
    out.row_ptr_[i + 1] = out.col_.size();
  }
  return out;
}

CsrMatrix CsrMatrix::select_cols(
    const std::vector<std::uint32_t>& index) const {
  // Map old column -> new column (or sentinel for "dropped").
  constexpr std::uint32_t kDrop = 0xffffffffu;
  std::vector<std::uint32_t> remap(cols_, kDrop);
  for (std::size_t i = 0; i < index.size(); ++i) {
    TRKX_CHECK(index[i] < cols_);
    TRKX_CHECK_MSG(remap[index[i]] == kDrop, "duplicate column in selection");
    remap[index[i]] = static_cast<std::uint32_t>(i);
  }
  CsrMatrix out(rows_, index.size());
  for (std::size_t r = 0; r < rows_; ++r) {
    // Collect then sort by the new column order (remap is not monotone).
    std::vector<std::pair<std::uint32_t, float>> kept;
    for (std::uint64_t k = row_ptr_[r]; k < row_ptr_[r + 1]; ++k) {
      const std::uint32_t nc = remap[col_[k]];
      if (nc != kDrop) kept.emplace_back(nc, val_[k]);
    }
    std::sort(kept.begin(), kept.end());
    for (auto& [c, v] : kept) {
      out.col_.push_back(c);
      out.val_.push_back(v);
    }
    out.row_ptr_[r + 1] = out.col_.size();
  }
  return out;
}

CsrMatrix CsrMatrix::induced(const std::vector<std::uint32_t>& index) const {
  TRKX_CHECK(rows_ == cols_);
  return select_rows(index).select_cols(index);
}

void CsrMatrix::normalize_rows() {
  for (std::size_t r = 0; r < rows_; ++r) {
    double sum = 0.0;
    for (std::uint64_t k = row_ptr_[r]; k < row_ptr_[r + 1]; ++k)
      sum += val_[k];
    // Isolated vertex (or cancelling/non-finite mass): leave the row as
    // is rather than dividing by a degenerate sum.
    if (!(sum > 0.0)) continue;
    const float inv = static_cast<float>(1.0 / sum);
    for (std::uint64_t k = row_ptr_[r]; k < row_ptr_[r + 1]; ++k)
      val_[k] *= inv;
  }
}

void CsrMatrix::scale(float s) {
  for (float& v : val_) v *= s;
}

CsrMatrix CsrMatrix::vstack(const std::vector<const CsrMatrix*>& blocks) {
  TRKX_CHECK(!blocks.empty());
  const std::size_t cols = blocks[0]->cols_;
  std::size_t rows = 0, total_nnz = 0;
  for (const CsrMatrix* b : blocks) {
    TRKX_CHECK_MSG(b->cols_ == cols, "vstack column mismatch");
    rows += b->rows_;
    total_nnz += b->nnz();
  }
  CsrMatrix out(rows, cols);
  out.col_.reserve(total_nnz);
  out.val_.reserve(total_nnz);
  std::size_t row_off = 0;
  for (const CsrMatrix* b : blocks) {
    out.col_.insert(out.col_.end(), b->col_.begin(), b->col_.end());
    out.val_.insert(out.val_.end(), b->val_.begin(), b->val_.end());
    const std::uint64_t nnz_off = out.row_ptr_[row_off];
    for (std::size_t r = 0; r < b->rows_; ++r)
      out.row_ptr_[row_off + r + 1] = nnz_off + b->row_ptr_[r + 1];
    row_off += b->rows_;
  }
  return out;
}

std::vector<Triplet> CsrMatrix::to_triplets() const {
  std::vector<Triplet> trips;
  trips.reserve(nnz());
  for (std::size_t r = 0; r < rows_; ++r)
    for (std::uint64_t k = row_ptr_[r]; k < row_ptr_[r + 1]; ++k)
      trips.push_back({static_cast<std::uint32_t>(r), col_[k], val_[k]});
  return trips;
}

bool CsrMatrix::operator==(const CsrMatrix& other) const {
  return rows_ == other.rows_ && cols_ == other.cols_ &&
         row_ptr_ == other.row_ptr_ && col_ == other.col_ &&
         val_ == other.val_;
}

void CsrMatrix::check_invariants() const {
  TRKX_CHECK(row_ptr_.size() == rows_ + 1);
  TRKX_CHECK(row_ptr_.front() == 0);
  TRKX_CHECK(row_ptr_.back() == col_.size());
  TRKX_CHECK(col_.size() == val_.size());
  for (std::size_t r = 0; r < rows_; ++r) {
    TRKX_CHECK(row_ptr_[r] <= row_ptr_[r + 1]);
    for (std::uint64_t k = row_ptr_[r]; k < row_ptr_[r + 1]; ++k) {
      TRKX_CHECK(col_[k] < cols_);
      if (k + 1 < row_ptr_[r + 1])
        TRKX_CHECK_MSG(col_[k] < col_[k + 1],
                       "unsorted/duplicate column in row " << r);
    }
  }
}

}  // namespace trkx
