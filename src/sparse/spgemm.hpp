#pragma once

#include "sparse/csr.hpp"

namespace trkx {

/// C = A · B for CSR matrices (row-wise Gustavson with a dense accumulator
/// per thread). Values multiply-accumulate; explicit zeros are kept out of
/// the result.
CsrMatrix spgemm(const CsrMatrix& a, const CsrMatrix& b);

/// Y = A · X for CSR A and dense X.
Matrix spmm(const CsrMatrix& a, const Matrix& x);

/// Induced submatrix extraction through selection SpGEMMs:
///   A(S, S) = S_sel · A · S_selᵀ
/// where S_sel = CsrMatrix::selection(n, index). This is the extraction
/// step of the paper's matrix-based sampler (Figure 2, "row and column
/// selection SpGEMMs"); CsrMatrix::induced() is the direct reference.
CsrMatrix induced_via_spgemm(const CsrMatrix& a,
                             const std::vector<std::uint32_t>& index);

/// Elementwise union (values summed where both present).
CsrMatrix sparse_add(const CsrMatrix& a, const CsrMatrix& b);

}  // namespace trkx
