#pragma once

#include <cstdint>
#include <vector>

#include "tensor/matrix.hpp"
#include "util/error.hpp"

namespace trkx {

/// One COO (row, col, value) triplet.
struct Triplet {
  std::uint32_t row;
  std::uint32_t col;
  float val;
};

/// Compressed Sparse Row matrix with float values.
///
/// The workhorse of the matrix-based sampling framework (Figure 2 of the
/// paper): the graph adjacency A, the batch-selection matrices Q, the
/// frontier matrix F, the probability matrix P and the sampled adjacency
/// A_S are all instances of this type.
class CsrMatrix {
 public:
  CsrMatrix() = default;
  /// Empty matrix with the given shape (no nonzeros).
  CsrMatrix(std::size_t rows, std::size_t cols);

  /// Build from triplets. Duplicate (row, col) entries are summed when
  /// `sum_duplicates` is true, otherwise they are an error.
  static CsrMatrix from_triplets(std::size_t rows, std::size_t cols,
                                 std::vector<Triplet> triplets,
                                 bool sum_duplicates = true);
  /// Build directly from CSR arrays (validated).
  static CsrMatrix from_csr(std::size_t rows, std::size_t cols,
                            std::vector<std::uint64_t> row_ptr,
                            std::vector<std::uint32_t> col_idx,
                            std::vector<float> values);
  static CsrMatrix identity(std::size_t n);
  /// Selection matrix S (k×n): S[i, index[i]] = 1. Left-multiplying by S
  /// extracts rows; right-multiplying by Sᵀ extracts columns. This is the
  /// Q-matrix constructor from the paper.
  static CsrMatrix selection(std::size_t n,
                             const std::vector<std::uint32_t>& index);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  std::size_t nnz() const { return col_.size(); }

  const std::vector<std::uint64_t>& row_ptr() const { return row_ptr_; }
  const std::vector<std::uint32_t>& col_idx() const { return col_; }
  const std::vector<float>& values() const { return val_; }
  std::vector<float>& values() { return val_; }

  std::size_t row_nnz(std::size_t r) const {
    TRKX_CHECK(r < rows_);
    return row_ptr_[r + 1] - row_ptr_[r];
  }
  /// Column indices of row r (sorted ascending).
  std::vector<std::uint32_t> row_cols(std::size_t r) const;

  /// value at (r, c), 0 if not stored. O(log nnz(r)).
  float at(std::size_t r, std::size_t c) const;

  CsrMatrix transpose() const;
  Matrix to_dense() const;
  static CsrMatrix from_dense(const Matrix& dense, float tol = 0.0f);

  /// Rows indexed by `index`, in order (shape index.size() × cols).
  CsrMatrix select_rows(const std::vector<std::uint32_t>& index) const;
  /// Keep only columns in `index` and renumber them to 0..index.size()-1.
  CsrMatrix select_cols(const std::vector<std::uint32_t>& index) const;
  /// Induced submatrix A(index, index) with renumbered vertices —
  /// reference implementation for the SpGEMM-based extraction.
  CsrMatrix induced(const std::vector<std::uint32_t>& index) const;

  /// Divide every stored value by its row sum (rows with zero sum are left
  /// unchanged). Produces the per-row uniform distribution P in Figure 2.
  void normalize_rows();

  /// Scale all values.
  void scale(float s);

  /// Stack matrices vertically (all must share cols). Implements the
  /// Q/F/P stacking of Equation (1) in the paper.
  static CsrMatrix vstack(const std::vector<const CsrMatrix*>& blocks);

  /// All triplets in row-major order.
  std::vector<Triplet> to_triplets() const;

  bool operator==(const CsrMatrix& other) const;

  /// Internal invariant check (sorted columns, in-range indices, monotone
  /// row_ptr); used by tests and after complex kernels in debug paths.
  void check_invariants() const;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<std::uint64_t> row_ptr_{0};
  std::vector<std::uint32_t> col_;
  std::vector<float> val_;
};

}  // namespace trkx
