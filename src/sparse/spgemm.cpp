#include "sparse/spgemm.hpp"

#include <algorithm>
#include <vector>

#include "tensor/kernels/kernels.hpp"

namespace trkx {

CsrMatrix spgemm(const CsrMatrix& a, const CsrMatrix& b) {
  TRKX_CHECK_MSG(a.cols() == b.rows(), "spgemm shape mismatch "
                                           << a.rows() << "x" << a.cols()
                                           << " * " << b.rows() << "x"
                                           << b.cols());
  const std::size_t m = a.rows();
  const std::size_t n = b.cols();

  // Pass 1+2 fused per row with a sparse accumulator (dense value array +
  // touched-column list). Rows are independent; per-row outputs are
  // stitched afterwards. This is Gustavson's algorithm.
  std::vector<std::vector<std::uint32_t>> out_cols(m);
  std::vector<std::vector<float>> out_vals(m);

#pragma omp parallel default(none) shared(a, b, out_cols, out_vals) \
    firstprivate(m, n)
  {
    std::vector<float> acc(n, 0.0f);
    std::vector<char> flag(n, 0);
    std::vector<std::uint32_t> touched;
#pragma omp for schedule(dynamic, 64)
    for (std::size_t i = 0; i < m; ++i) {
      touched.clear();
      for (std::uint64_t ka = a.row_ptr()[i]; ka < a.row_ptr()[i + 1]; ++ka) {
        const std::uint32_t k = a.col_idx()[ka];
        const float av = a.values()[ka];
        for (std::uint64_t kb = b.row_ptr()[k]; kb < b.row_ptr()[k + 1];
             ++kb) {
          const std::uint32_t j = b.col_idx()[kb];
          if (!flag[j]) {
            flag[j] = 1;
            touched.push_back(j);
          }
          // Gustavson's sparse accumulator scatters by column index.
          // NOLINT(trkx-kernel-dispatch): no contiguous-row kernel applies
          acc[j] += av * b.values()[kb];
        }
      }
      std::sort(touched.begin(), touched.end());
      out_cols[i].reserve(touched.size());
      out_vals[i].reserve(touched.size());
      for (std::uint32_t j : touched) {
        out_cols[i].push_back(j);
        out_vals[i].push_back(acc[j]);
        acc[j] = 0.0f;
        flag[j] = 0;
      }
    }
  }

  std::vector<std::uint64_t> row_ptr(m + 1, 0);
  for (std::size_t i = 0; i < m; ++i)
    row_ptr[i + 1] = row_ptr[i] + out_cols[i].size();
  std::vector<std::uint32_t> col;
  std::vector<float> val;
  col.reserve(row_ptr[m]);
  val.reserve(row_ptr[m]);
  for (std::size_t i = 0; i < m; ++i) {
    col.insert(col.end(), out_cols[i].begin(), out_cols[i].end());
    val.insert(val.end(), out_vals[i].begin(), out_vals[i].end());
  }
  return CsrMatrix::from_csr(m, n, std::move(row_ptr), std::move(col),
                             std::move(val));
}

Matrix spmm(const CsrMatrix& a, const Matrix& x) {
  TRKX_CHECK_MSG(a.cols() == x.rows(), "spmm shape mismatch");
  Matrix y(a.rows(), x.cols(), 0.0f);
  kernels::active().spmm(a.row_ptr().data(), a.col_idx().data(),
                         a.values().data(), x.data(), y.data(), a.rows(),
                         x.cols());
  return y;
}

CsrMatrix induced_via_spgemm(const CsrMatrix& a,
                             const std::vector<std::uint32_t>& index) {
  TRKX_CHECK(a.rows() == a.cols());
  const CsrMatrix sel = CsrMatrix::selection(a.rows(), index);
  // Row selection: S·A ; column selection: (S·A)·Sᵀ.
  return spgemm(spgemm(sel, a), sel.transpose());
}

CsrMatrix sparse_add(const CsrMatrix& a, const CsrMatrix& b) {
  TRKX_CHECK(a.rows() == b.rows() && a.cols() == b.cols());
  std::vector<std::uint64_t> row_ptr(a.rows() + 1, 0);
  std::vector<std::uint32_t> col;
  std::vector<float> val;
  col.reserve(a.nnz() + b.nnz());
  val.reserve(a.nnz() + b.nnz());
  for (std::size_t r = 0; r < a.rows(); ++r) {
    std::uint64_t ia = a.row_ptr()[r], ea = a.row_ptr()[r + 1];
    std::uint64_t ib = b.row_ptr()[r], eb = b.row_ptr()[r + 1];
    while (ia < ea || ib < eb) {
      std::uint32_t ca = ia < ea ? a.col_idx()[ia] : 0xffffffffu;
      std::uint32_t cb = ib < eb ? b.col_idx()[ib] : 0xffffffffu;
      if (ca == cb) {
        col.push_back(ca);
        val.push_back(a.values()[ia] + b.values()[ib]);
        ++ia;
        ++ib;
      } else if (ca < cb) {
        col.push_back(ca);
        val.push_back(a.values()[ia]);
        ++ia;
      } else {
        col.push_back(cb);
        val.push_back(b.values()[ib]);
        ++ib;
      }
    }
    row_ptr[r + 1] = col.size();
  }
  return CsrMatrix::from_csr(a.rows(), a.cols(), std::move(row_ptr),
                             std::move(col), std::move(val));
}

}  // namespace trkx
