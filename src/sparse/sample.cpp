#include "sparse/sample.hpp"

#include <algorithm>
#include <cmath>
#include <utility>

#include "util/parallel_guard.hpp"

namespace trkx {

namespace {

/// Draw up to `s` distinct entries of one stored row (cols/vals, nnz
/// entries) into `out` (sorted). When `scale` is true, every stored value
/// is read as val * inv — this is how the fused path applies
/// normalize_rows() on the fly without materialising the scaled row; the
/// float product rounds exactly as the eager `val_[k] *= inv` would.
void sample_span(const std::uint32_t* cols, const float* vals,
                 std::size_t nnz, bool scale, float inv, std::size_t s,
                 Rng& rng, std::vector<std::uint32_t>& out) {
  const auto value_at = [&](std::size_t k) {
    return scale ? vals[k] * inv : vals[k];
  };
  if (nnz <= s) {
    // Keep the whole row (already column-sorted in CSR).
    out.insert(out.end(), cols, cols + nnz);
    return;
  }
  // Detect the uniform case (all stored values equal) — ShaDow rows are
  // uniform after normalize_rows() — and use exact uniform sampling
  // without replacement there. Otherwise fall back to weighted draws
  // with rejection on duplicates.
  bool uniform = true;
  const float v0 = value_at(0);
  for (std::size_t k = 1; k < nnz; ++k) {
    if (value_at(k) != v0) {
      uniform = false;
      break;
    }
  }
  std::vector<std::uint32_t> picked;
  if (uniform) {
    auto offsets = rng.sample_without_replacement(
        static_cast<std::uint32_t>(nnz), static_cast<std::uint32_t>(s));
    picked.reserve(s);
    for (std::uint32_t off : offsets) picked.push_back(cols[off]);
  } else {
    // Weighted without replacement via Efraimidis–Spirakis keys:
    // take the s largest u^(1/w). Deterministic given the RNG stream.
    std::vector<std::pair<double, std::uint32_t>> keys;
    keys.reserve(nnz);
    for (std::size_t k = 0; k < nnz; ++k) {
      const double w = std::max(1e-30, static_cast<double>(value_at(k)));
      const double u = std::max(1e-300, rng.uniform());
      keys.emplace_back(std::log(u) / w, cols[k]);
    }
    std::partial_sort(keys.begin(), keys.begin() + static_cast<std::ptrdiff_t>(s),
                      keys.end(), [](const auto& a, const auto& b) {
                        return a.first > b.first;
                      });
    picked.reserve(s);
    for (std::size_t i = 0; i < s; ++i) picked.push_back(keys[i].second);
  }
  std::sort(picked.begin(), picked.end());
  out.insert(out.end(), picked.begin(), picked.end());
}

/// Draw up to `s` distinct columns of row `r` into `out` (sorted).
void sample_row(const CsrMatrix& probs, std::size_t r, std::size_t s,
                Rng& rng, std::vector<std::uint32_t>& out) {
  const std::uint64_t begin = probs.row_ptr()[r];
  const std::size_t nnz = probs.row_ptr()[r + 1] - begin;
  sample_span(probs.col_idx().data() + begin, probs.values().data() + begin,
              nnz, /*scale=*/false, 1.0f, s, rng, out);
}

/// One fused frontier row: extract row `v` of `adj`, normalise it, and
/// sample — without materialising the extracted or normalised row.
/// Bit-identical to select_rows + normalize_rows + sample_row: the row
/// sum uses the same double accumulator over the same stored order, the
/// same `!(sum > 0)` degenerate guard, and the same float `val * inv`
/// rounding.
void sample_fused_row(const CsrMatrix& adj, std::uint32_t v, std::size_t s,
                      Rng& rng, std::vector<std::uint32_t>& out) {
  const std::uint64_t begin = adj.row_ptr()[v];
  const std::uint64_t end = adj.row_ptr()[v + 1];
  const std::size_t nnz = end - begin;
  const float* vals = adj.values().data() + begin;
  double sum = 0.0;
  for (std::size_t k = 0; k < nnz; ++k) sum += vals[k];
  const bool scale = sum > 0.0;  // normalize_rows leaves degenerate rows raw
  // NOLINT(trkx-div-guard): divides only when scale, i.e. sum > 0
  const float inv = scale ? static_cast<float>(1.0 / sum) : 1.0f;
  sample_span(adj.col_idx().data() + begin, vals, nnz, scale, inv, s, rng,
              out);
}

/// Assemble the 0/1 CSR result from per-row sampled column lists.
CsrMatrix assemble(std::size_t cols,
                   std::vector<std::vector<std::uint32_t>>& row_cols) {
  const std::size_t rows = row_cols.size();
  std::vector<std::uint64_t> row_ptr(rows + 1, 0);
  std::size_t total = 0;
  for (const auto& rc : row_cols) total += rc.size();
  std::vector<std::uint32_t> col;
  col.reserve(total);
  for (std::size_t r = 0; r < rows; ++r) {
    col.insert(col.end(), row_cols[r].begin(), row_cols[r].end());
    row_ptr[r + 1] = col.size();
  }
  std::vector<float> val(col.size(), 1.0f);
  return CsrMatrix::from_csr(rows, cols, std::move(row_ptr), std::move(col),
                             std::move(val));
}

/// Contiguous [begin, end) row ranges per group id, validating that the
/// group vector is nondecreasing and every id has a stream.
std::vector<std::pair<std::size_t, std::size_t>> group_ranges(
    const std::vector<std::uint32_t>& group, std::size_t num_rngs) {
  const std::size_t rows = group.size();
  std::vector<std::pair<std::size_t, std::size_t>> ranges;
  for (std::size_t r = 0; r < rows;) {
    const std::uint32_t g = group[r];
    TRKX_CHECK(g < num_rngs);
    std::size_t e = r + 1;
    while (e < rows && group[e] == g) ++e;
    TRKX_CHECK(ranges.empty() || group[ranges.back().first] < g);
    ranges.emplace_back(r, e);
    r = e;
  }
  return ranges;
}

}  // namespace

CsrMatrix sample_rows(const CsrMatrix& probs, std::size_t s, Rng& rng) {
  TRKX_CHECK(s > 0);
  const std::size_t rows = probs.rows();
  std::vector<std::vector<std::uint32_t>> row_cols(rows);
  for (std::size_t r = 0; r < rows; ++r) sample_row(probs, r, s, rng, row_cols[r]);
  return assemble(probs.cols(), row_cols);
}

CsrMatrix sample_rows(const CsrMatrix& probs, std::size_t s,
                      const std::vector<std::uint32_t>& group,
                      std::vector<Rng>& rngs) {
  TRKX_CHECK(s > 0);
  const std::size_t rows = probs.rows();
  TRKX_CHECK(group.size() == rows);
  const auto ranges = group_ranges(group, rngs.size());

  std::vector<std::vector<std::uint32_t>> row_cols(rows);
  // An exception escaping the omp region would be std::terminate; the
  // barrier captures the first one and rethrows it after the join.
  ExceptionBarrier barrier;
#pragma omp parallel for schedule(dynamic) default(none) \
    shared(ranges, rngs, group, probs, row_cols, barrier) firstprivate(s)
  for (std::ptrdiff_t i = 0; i < static_cast<std::ptrdiff_t>(ranges.size());
       ++i) {
    if (barrier.cancelled()) continue;
    barrier.run([&, i] {
      const auto [rb, re] = ranges[static_cast<std::size_t>(i)];
      Rng& rg = rngs[group[rb]];
      for (std::size_t r = rb; r < re; ++r)
        sample_row(probs, r, s, rg, row_cols[r]);
    });
  }
  barrier.rethrow();
  return assemble(probs.cols(), row_cols);
}

CsrMatrix sample_neighbors_fused(const CsrMatrix& adj,
                                 const std::vector<std::uint32_t>& frontier,
                                 std::size_t s,
                                 const std::vector<std::uint32_t>& group,
                                 std::vector<Rng>& rngs) {
  TRKX_CHECK(s > 0);
  const std::size_t rows = frontier.size();
  TRKX_CHECK(group.size() == rows);
  const auto ranges = group_ranges(group, rngs.size());

  std::vector<std::vector<std::uint32_t>> row_cols(rows);
  // Frontier bounds are validated inside the loop (no extra O(rows)
  // pre-pass), so this body genuinely throws: the barrier turns what
  // would be std::terminate into a catchable trkx::Error after the join.
  ExceptionBarrier barrier;
#pragma omp parallel for schedule(dynamic) default(none) \
    shared(ranges, rngs, group, adj, frontier, row_cols, barrier) \
    firstprivate(s)
  for (std::ptrdiff_t i = 0; i < static_cast<std::ptrdiff_t>(ranges.size());
       ++i) {
    if (barrier.cancelled()) continue;
    barrier.run([&, i] {
      const auto [rb, re] = ranges[static_cast<std::size_t>(i)];
      Rng& rg = rngs[group[rb]];
      for (std::size_t r = rb; r < re; ++r) {
        TRKX_CHECK(frontier[r] < adj.rows());
        sample_fused_row(adj, frontier[r], s, rg, row_cols[r]);
      }
    });
  }
  barrier.rethrow();
  return assemble(adj.cols(), row_cols);
}

}  // namespace trkx
