#include "sparse/sample.hpp"

#include <algorithm>
#include <cmath>

namespace trkx {

CsrMatrix sample_rows(const CsrMatrix& probs, std::size_t s, Rng& rng) {
  TRKX_CHECK(s > 0);
  const std::size_t rows = probs.rows();
  std::vector<std::uint64_t> row_ptr(rows + 1, 0);
  std::vector<std::uint32_t> col;
  std::vector<float> val;
  col.reserve(rows * s);

  for (std::size_t r = 0; r < rows; ++r) {
    const std::uint64_t begin = probs.row_ptr()[r];
    const std::uint64_t end = probs.row_ptr()[r + 1];
    const std::size_t nnz = end - begin;
    if (nnz <= s) {
      // Keep the whole row.
      for (std::uint64_t k = begin; k < end; ++k) col.push_back(probs.col_idx()[k]);
    } else {
      // Detect the uniform case (all stored values equal) — ShaDow rows are
      // uniform after normalize_rows() — and use exact uniform sampling
      // without replacement there. Otherwise fall back to weighted draws
      // with rejection on duplicates.
      bool uniform = true;
      const float v0 = probs.values()[begin];
      for (std::uint64_t k = begin + 1; k < end; ++k) {
        if (probs.values()[k] != v0) {
          uniform = false;
          break;
        }
      }
      std::vector<std::uint32_t> picked;
      if (uniform) {
        auto offsets = rng.sample_without_replacement(
            static_cast<std::uint32_t>(nnz), static_cast<std::uint32_t>(s));
        picked.reserve(s);
        for (std::uint32_t off : offsets)
          picked.push_back(probs.col_idx()[begin + off]);
      } else {
        // Weighted without replacement via Efraimidis–Spirakis keys:
        // take the s largest u^(1/w). Deterministic given the RNG stream.
        std::vector<std::pair<double, std::uint32_t>> keys;
        keys.reserve(nnz);
        for (std::uint64_t k = begin; k < end; ++k) {
          const double w = std::max(1e-30, static_cast<double>(probs.values()[k]));
          const double u = std::max(1e-300, rng.uniform());
          keys.emplace_back(std::log(u) / w, probs.col_idx()[k]);
        }
        std::partial_sort(keys.begin(), keys.begin() + static_cast<std::ptrdiff_t>(s),
                          keys.end(), [](const auto& a, const auto& b) {
                            return a.first > b.first;
                          });
        picked.reserve(s);
        for (std::size_t i = 0; i < s; ++i) picked.push_back(keys[i].second);
      }
      std::sort(picked.begin(), picked.end());
      col.insert(col.end(), picked.begin(), picked.end());
    }
    row_ptr[r + 1] = col.size();
  }
  // Ensure sorted column order within rows that kept everything (already
  // sorted since the source is CSR) — values are all 1.
  val.assign(col.size(), 1.0f);
  return CsrMatrix::from_csr(rows, probs.cols(), std::move(row_ptr),
                             std::move(col), std::move(val));
}

}  // namespace trkx
