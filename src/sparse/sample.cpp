#include "sparse/sample.hpp"

#include <algorithm>
#include <cmath>
#include <utility>

namespace trkx {

namespace {

/// Draw up to `s` distinct columns of row `r` into `out` (sorted).
void sample_row(const CsrMatrix& probs, std::size_t r, std::size_t s,
                Rng& rng, std::vector<std::uint32_t>& out) {
  const std::uint64_t begin = probs.row_ptr()[r];
  const std::uint64_t end = probs.row_ptr()[r + 1];
  const std::size_t nnz = end - begin;
  if (nnz <= s) {
    // Keep the whole row (already column-sorted in CSR).
    for (std::uint64_t k = begin; k < end; ++k)
      out.push_back(probs.col_idx()[k]);
    return;
  }
  // Detect the uniform case (all stored values equal) — ShaDow rows are
  // uniform after normalize_rows() — and use exact uniform sampling
  // without replacement there. Otherwise fall back to weighted draws
  // with rejection on duplicates.
  bool uniform = true;
  const float v0 = probs.values()[begin];
  for (std::uint64_t k = begin + 1; k < end; ++k) {
    if (probs.values()[k] != v0) {
      uniform = false;
      break;
    }
  }
  std::vector<std::uint32_t> picked;
  if (uniform) {
    auto offsets = rng.sample_without_replacement(
        static_cast<std::uint32_t>(nnz), static_cast<std::uint32_t>(s));
    picked.reserve(s);
    for (std::uint32_t off : offsets)
      picked.push_back(probs.col_idx()[begin + off]);
  } else {
    // Weighted without replacement via Efraimidis–Spirakis keys:
    // take the s largest u^(1/w). Deterministic given the RNG stream.
    std::vector<std::pair<double, std::uint32_t>> keys;
    keys.reserve(nnz);
    for (std::uint64_t k = begin; k < end; ++k) {
      const double w = std::max(1e-30, static_cast<double>(probs.values()[k]));
      const double u = std::max(1e-300, rng.uniform());
      keys.emplace_back(std::log(u) / w, probs.col_idx()[k]);
    }
    std::partial_sort(keys.begin(), keys.begin() + static_cast<std::ptrdiff_t>(s),
                      keys.end(), [](const auto& a, const auto& b) {
                        return a.first > b.first;
                      });
    picked.reserve(s);
    for (std::size_t i = 0; i < s; ++i) picked.push_back(keys[i].second);
  }
  std::sort(picked.begin(), picked.end());
  out.insert(out.end(), picked.begin(), picked.end());
}

/// Assemble the 0/1 CSR result from per-row sampled column lists.
CsrMatrix assemble(const CsrMatrix& probs,
                   std::vector<std::vector<std::uint32_t>>& row_cols) {
  const std::size_t rows = probs.rows();
  std::vector<std::uint64_t> row_ptr(rows + 1, 0);
  std::size_t total = 0;
  for (const auto& rc : row_cols) total += rc.size();
  std::vector<std::uint32_t> col;
  col.reserve(total);
  for (std::size_t r = 0; r < rows; ++r) {
    col.insert(col.end(), row_cols[r].begin(), row_cols[r].end());
    row_ptr[r + 1] = col.size();
  }
  std::vector<float> val(col.size(), 1.0f);
  return CsrMatrix::from_csr(rows, probs.cols(), std::move(row_ptr),
                             std::move(col), std::move(val));
}

}  // namespace

CsrMatrix sample_rows(const CsrMatrix& probs, std::size_t s, Rng& rng) {
  TRKX_CHECK(s > 0);
  const std::size_t rows = probs.rows();
  std::vector<std::vector<std::uint32_t>> row_cols(rows);
  for (std::size_t r = 0; r < rows; ++r) sample_row(probs, r, s, rng, row_cols[r]);
  return assemble(probs, row_cols);
}

CsrMatrix sample_rows(const CsrMatrix& probs, std::size_t s,
                      const std::vector<std::uint32_t>& group,
                      std::vector<Rng>& rngs) {
  TRKX_CHECK(s > 0);
  const std::size_t rows = probs.rows();
  TRKX_CHECK(group.size() == rows);

  // Contiguous [begin, end) row ranges per group id.
  std::vector<std::pair<std::size_t, std::size_t>> ranges;
  for (std::size_t r = 0; r < rows;) {
    const std::uint32_t g = group[r];
    TRKX_CHECK(g < rngs.size());
    std::size_t e = r + 1;
    while (e < rows && group[e] == g) ++e;
    TRKX_CHECK(ranges.empty() || group[ranges.back().first] < g);
    ranges.emplace_back(r, e);
    r = e;
  }

  std::vector<std::vector<std::uint32_t>> row_cols(rows);
#pragma omp parallel for schedule(dynamic) default(none) \
    shared(ranges, rngs, group, probs, row_cols) firstprivate(s)
  for (std::ptrdiff_t i = 0; i < static_cast<std::ptrdiff_t>(ranges.size());
       ++i) {
    const auto [rb, re] = ranges[static_cast<std::size_t>(i)];
    Rng& rg = rngs[group[rb]];
    for (std::size_t r = rb; r < re; ++r)
      sample_row(probs, r, s, rg, row_cols[r]);
  }
  return assemble(probs, row_cols);
}

}  // namespace trkx
