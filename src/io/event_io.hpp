#pragma once

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "detector/generator.hpp"

namespace trkx {

/// Binary (de)serialization for events and datasets so generated data can
/// be cached between runs (the paper's datasets live on disk too).
///
/// Two file-container formats exist:
///   v1 (legacy): u64 count, then back-to-back event blobs. No per-event
///       framing, so one corrupt byte poisons everything after it.
///   v2 (current): file magic + version + u64 count, then per-event
///       records framed as {u64 length, u32 crc32, blob}. The CRC detects
///       corruption before a partial Event escapes, and the length lets
///       the tolerant loader skip a bad record and keep going.
/// load_events reads both; save_events writes v2. Failures throw IoError
/// whose message carries the path and byte offset of the bad read.
void save_event(std::ostream& os, const Event& event);
Event load_event(std::istream& is);

void save_events(const std::string& path, const std::vector<Event>& events);
std::vector<Event> load_events(const std::string& path);

/// Bounded exponential backoff for retrying a corrupt/unreadable event
/// record before quarantining it.
struct IoRetryPolicy {
  std::size_t max_attempts = 3;     ///< total tries per record (>= 1)
  double initial_backoff_ms = 1.0;  ///< sleep before the 2nd attempt
  double backoff_multiplier = 2.0;
  double max_backoff_ms = 50.0;
};

/// What a tolerant load produced: the events that survived, plus the
/// quarantine bookkeeping (also mirrored into the obs counters
/// `io.retries` and `events.quarantined`).
struct TolerantLoadResult {
  std::vector<Event> events;
  std::size_t quarantined = 0;  ///< records dropped after all retries
  std::size_t retries = 0;      ///< re-read attempts that were needed
  std::vector<std::string> quarantine_log;  ///< one message per dropped record
};

/// Degraded-mode dataset load: each event record is retried with bounded
/// exponential backoff and quarantined on persistent failure while the
/// rest of the file keeps loading (v2 records are independently framed;
/// in a legacy v1 file the records after a corrupt one are unreachable
/// and quarantined wholesale). The fault site `io.read_event` fires once
/// per read attempt. Missing/unopenable files still throw IoError — there
/// is nothing to degrade to.
TolerantLoadResult load_events_tolerant(const std::string& path,
                                        const IoRetryPolicy& policy = {});

/// Export one event as two analysis-friendly CSVs:
///   <prefix>_hits.csv  — hit_id, x, y, z, r, phi, eta, layer, particle
///   <prefix>_edges.csv — edge_id, src, dst, label, score (empty = -1)
/// `scores` is optional (pass {} to omit); useful for plotting GNN output
/// against truth in external tools.
void export_event_csv(const std::string& prefix, const Event& event,
                      const std::vector<float>& scores = {});

}  // namespace trkx
