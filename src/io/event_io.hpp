#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "detector/generator.hpp"

namespace trkx {

/// Binary (de)serialization for events and datasets so generated data can
/// be cached between runs (the paper's datasets live on disk too).
/// Format: little-endian, versioned header; see event_io.cpp.
void save_event(std::ostream& os, const Event& event);
Event load_event(std::istream& is);

void save_events(const std::string& path, const std::vector<Event>& events);
std::vector<Event> load_events(const std::string& path);

/// Export one event as two analysis-friendly CSVs:
///   <prefix>_hits.csv  — hit_id, x, y, z, r, phi, eta, layer, particle
///   <prefix>_edges.csv — edge_id, src, dst, label, score (empty = -1)
/// `scores` is optional (pass {} to omit); useful for plotting GNN output
/// against truth in external tools.
void export_event_csv(const std::string& prefix, const Event& event,
                      const std::vector<float>& scores = {});

}  // namespace trkx
