#include "io/csv.hpp"

#include <sstream>

#include "util/error.hpp"

namespace trkx {

CsvWriter::CsvWriter(const std::string& path,
                     const std::vector<std::string>& columns)
    : path_(path), os_(path), num_columns_(columns.size()) {
  TRKX_CHECK_MSG(os_.good(), "cannot open " << path << " for writing");
  TRKX_CHECK(!columns.empty());
  for (std::size_t i = 0; i < columns.size(); ++i) {
    if (i) os_ << ',';
    os_ << columns[i];
  }
  os_ << '\n';
}

void CsvWriter::row(const std::vector<std::string>& cells) {
  TRKX_CHECK(cells.size() == num_columns_);
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (i) os_ << ',';
    os_ << cells[i];
  }
  os_ << '\n';
  os_.flush();
}

void CsvWriter::row(const std::vector<double>& cells) {
  std::vector<std::string> s;
  s.reserve(cells.size());
  for (double v : cells) s.push_back(format_double(v));
  row(s);
}

std::string format_double(double v, int precision) {
  std::ostringstream os;
  os.precision(precision);
  os << v;
  return os.str();
}

}  // namespace trkx
