#include "io/event_io.hpp"

#include <chrono>
#include <fstream>
#include <sstream>
#include <thread>

#include "obs/metrics.hpp"
#include "util/crc32.hpp"
#include "util/error.hpp"
#include "util/fault.hpp"
#include "util/log.hpp"

namespace trkx {

namespace {

constexpr std::uint32_t kMagic = 0x54524b58;  // "TRKX": per-event blob magic
constexpr std::uint32_t kVersion = 1;

constexpr std::uint32_t kFileMagic = 0x43524b58;   // "XKRC": v2 container
constexpr std::uint32_t kFileVersion = 2;

/// Per-record sanity cap: a corrupt length/count field must fail as a
/// clean IoError, not a multi-gigabyte allocation.
constexpr std::uint64_t kMaxChunkBytes = 1ull << 31;

/// Where a stream's bytes sit inside the file being read, so every
/// failure can name "<path> at byte N" even when the stream is an
/// in-memory copy of one framed record.
struct StreamContext {
  std::string path = "<stream>";
  std::uint64_t base_offset = 0;
};

std::uint64_t stream_offset(std::istream& is) {
  const std::streampos pos = is.tellg();
  return pos < 0 ? 0 : static_cast<std::uint64_t>(pos);
}

[[noreturn]] void throw_io(const StreamContext& ctx, std::uint64_t offset,
                           const std::string& what) {
  std::ostringstream os;
  os << what << " (" << ctx.path << " at byte " << ctx.base_offset + offset
     << ")";
  throw IoError(os.str());
}

template <typename T>
void write_pod(std::ostream& os, const T& v) {
  os.write(reinterpret_cast<const char*>(&v), sizeof(T));
}

template <typename T>
T read_pod(std::istream& is, const StreamContext& ctx) {
  const std::uint64_t off = stream_offset(is);
  T v{};
  is.read(reinterpret_cast<char*>(&v), sizeof(T));
  if (!is.good()) throw_io(ctx, off, "truncated event stream");
  return v;
}

template <typename T>
void write_vec(std::ostream& os, const std::vector<T>& v) {
  write_pod<std::uint64_t>(os, v.size());
  os.write(reinterpret_cast<const char*>(v.data()),
           static_cast<std::streamsize>(v.size() * sizeof(T)));
}

template <typename T>
std::vector<T> read_vec(std::istream& is, const StreamContext& ctx) {
  const std::uint64_t off = stream_offset(is);
  const auto n = read_pod<std::uint64_t>(is, ctx);
  if (n > kMaxChunkBytes / sizeof(T))
    throw_io(ctx, off, "implausible element count (corrupt length field)");
  std::vector<T> v(n);
  is.read(reinterpret_cast<char*>(v.data()),
          static_cast<std::streamsize>(n * sizeof(T)));
  if (!is.good()) throw_io(ctx, off, "truncated event stream");
  return v;
}

void write_matrix(std::ostream& os, const Matrix& m) {
  write_pod<std::uint64_t>(os, m.rows());
  write_pod<std::uint64_t>(os, m.cols());
  os.write(reinterpret_cast<const char*>(m.data()),
           static_cast<std::streamsize>(m.size() * sizeof(float)));
}

Matrix read_matrix(std::istream& is, const StreamContext& ctx) {
  const std::uint64_t off = stream_offset(is);
  const auto r = read_pod<std::uint64_t>(is, ctx);
  const auto c = read_pod<std::uint64_t>(is, ctx);
  if (r != 0 && c > kMaxChunkBytes / sizeof(float) / r)
    throw_io(ctx, off, "implausible matrix shape (corrupt header)");
  Matrix m(r, c);
  is.read(reinterpret_cast<char*>(m.data()),
          static_cast<std::streamsize>(m.size() * sizeof(float)));
  if (!is.good()) throw_io(ctx, off, "truncated event stream");
  return m;
}

Event load_event(std::istream& is, const StreamContext& ctx) {
  const std::uint64_t off = stream_offset(is);
  if (read_pod<std::uint32_t>(is, ctx) != kMagic)
    throw_io(ctx, off, "bad magic");
  if (read_pod<std::uint32_t>(is, ctx) != kVersion)
    throw_io(ctx, off, "unsupported event version");
  Event event;
  event.hits = read_vec<Hit>(is, ctx);
  const auto np = read_pod<std::uint64_t>(is, ctx);
  if (np > kMaxChunkBytes / sizeof(TruthParticle))
    throw_io(ctx, off, "implausible particle count (corrupt header)");
  event.particles.resize(np);
  for (TruthParticle& p : event.particles) {
    p.pt = read_pod<float>(is, ctx);
    p.phi0 = read_pod<float>(is, ctx);
    p.eta = read_pod<float>(is, ctx);
    p.z0 = read_pod<float>(is, ctx);
    p.charge = read_pod<int>(is, ctx);
    p.hits = read_vec<std::uint32_t>(is, ctx);
  }
  const auto nv = read_pod<std::uint64_t>(is, ctx);
  event.graph = Graph(nv, read_vec<Edge>(is, ctx));
  event.edge_labels = read_vec<char>(is, ctx);
  event.node_features = read_matrix(is, ctx);
  event.edge_features = read_matrix(is, ctx);
  if (event.edge_labels.size() != event.graph.num_edges())
    throw_io(ctx, off, "edge label count disagrees with graph");
  return event;
}

/// Serialize one event into a standalone blob for the framed container.
std::string event_blob(const Event& event) {
  std::ostringstream os(std::ios::binary);
  save_event(os, event);
  return os.str();
}

/// Parse one framed v2 record in place: length + crc + blob. Leaves the
/// stream positioned after the record on success. `record_index` is only
/// for error text.
Event read_framed_event(std::istream& is, const StreamContext& file_ctx,
                        std::size_t record_index) {
  const std::uint64_t record_off = stream_offset(is);
  const auto length = read_pod<std::uint64_t>(is, file_ctx);
  if (length > kMaxChunkBytes)
    throw_io(file_ctx, record_off, "implausible record length");
  const auto crc_expect = read_pod<std::uint32_t>(is, file_ctx);
  std::string blob(length, '\0');
  is.read(blob.data(), static_cast<std::streamsize>(length));
  if (!is.good()) throw_io(file_ctx, record_off, "truncated event record");
  const std::uint32_t crc_got = crc32(blob.data(), blob.size());
  if (crc_got != crc_expect) {
    std::ostringstream what;
    what << "CRC mismatch on event record " << record_index << " (stored "
         << crc_expect << ", computed " << crc_got << ")";
    throw_io(file_ctx, record_off, what.str());
  }
  std::istringstream bs(blob, std::ios::binary);
  StreamContext blob_ctx{file_ctx.path,
                         file_ctx.base_offset + record_off + 12};
  return load_event(bs, blob_ctx);
}

struct FileHeader {
  std::uint32_t version = 0;  ///< 1 = legacy unframed, 2 = framed
  std::uint64_t count = 0;
};

/// Read the container header, sniffing legacy v1 files (which start
/// directly with the u64 event count) by the absence of the file magic.
FileHeader read_file_header(std::istream& is, const StreamContext& ctx) {
  FileHeader h;
  const auto first = read_pod<std::uint64_t>(is, ctx);
  if (static_cast<std::uint32_t>(first) == kFileMagic) {
    const auto version = static_cast<std::uint32_t>(first >> 32);
    if (version != kFileVersion) {
      std::ostringstream what;
      what << "unsupported event file version " << version;
      throw_io(ctx, 0, what.str());
    }
    h.version = version;
    h.count = read_pod<std::uint64_t>(is, ctx);
  } else {
    h.version = 1;
    h.count = first;
  }
  if (h.count > kMaxChunkBytes)
    throw_io(ctx, 0, "implausible event count (corrupt header)");
  return h;
}

double next_backoff_ms(double current, const IoRetryPolicy& policy) {
  const double next = current * policy.backoff_multiplier;
  return next > policy.max_backoff_ms ? policy.max_backoff_ms : next;
}

}  // namespace

void save_event(std::ostream& os, const Event& event) {
  write_pod(os, kMagic);
  write_pod(os, kVersion);
  write_vec(os, event.hits);  // Hit is trivially copyable
  write_pod<std::uint64_t>(os, event.particles.size());
  for (const TruthParticle& p : event.particles) {
    write_pod(os, p.pt);
    write_pod(os, p.phi0);
    write_pod(os, p.eta);
    write_pod(os, p.z0);
    write_pod(os, p.charge);
    write_vec(os, p.hits);
  }
  write_pod<std::uint64_t>(os, event.graph.num_vertices());
  write_vec(os, event.graph.edges());  // Edge is trivially copyable
  write_vec(os, event.edge_labels);
  write_matrix(os, event.node_features);
  write_matrix(os, event.edge_features);
}

Event load_event(std::istream& is) { return load_event(is, StreamContext{}); }

void save_events(const std::string& path, const std::vector<Event>& events) {
  std::ofstream os(path, std::ios::binary);
  if (!os.good()) throw IoError("cannot open " + path + " for writing");
  // Pack magic + version into the leading u64 so legacy readers of the
  // old "count-first" layout see an impossible count, not garbage events.
  const std::uint64_t tag =
      (static_cast<std::uint64_t>(kFileVersion) << 32) | kFileMagic;
  write_pod(os, tag);
  write_pod<std::uint64_t>(os, events.size());
  for (const Event& e : events) {
    const std::string blob = event_blob(e);
    write_pod<std::uint64_t>(os, blob.size());
    write_pod<std::uint32_t>(os, crc32(blob.data(), blob.size()));
    os.write(blob.data(), static_cast<std::streamsize>(blob.size()));
  }
  if (!os.good()) throw IoError("write failure on " + path);
}

std::vector<Event> load_events(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  if (!is.good()) throw IoError("cannot open " + path);
  const StreamContext ctx{path, 0};
  const FileHeader header = read_file_header(is, ctx);
  std::vector<Event> events;
  events.reserve(header.count);
  for (std::uint64_t i = 0; i < header.count; ++i) {
    if (header.version >= kFileVersion)
      events.push_back(read_framed_event(is, ctx, i));
    else
      events.push_back(load_event(is, ctx));
  }
  return events;
}

TolerantLoadResult load_events_tolerant(const std::string& path,
                                        const IoRetryPolicy& policy) {
  TRKX_CHECK(policy.max_attempts >= 1);
  std::ifstream is(path, std::ios::binary);
  if (!is.good()) throw IoError("cannot open " + path);
  const StreamContext ctx{path, 0};
  const FileHeader header = read_file_header(is, ctx);

  TolerantLoadResult result;
  result.events.reserve(header.count);
  for (std::uint64_t i = 0; i < header.count; ++i) {
    const std::uint64_t record_off = stream_offset(is);
    double backoff_ms = policy.initial_backoff_ms;
    bool loaded = false;
    std::string last_error;
    for (std::size_t attempt = 1; attempt <= policy.max_attempts; ++attempt) {
      try {
        fault::inject("io.read_event");
        if (header.version >= kFileVersion) {
          result.events.push_back(
              read_framed_event(is, ctx, static_cast<std::size_t>(i)));
        } else {
          result.events.push_back(load_event(is, ctx));
        }
        loaded = true;
        break;
      } catch (const Error& e) {
        last_error = e.what();
        // Rewind to the record and try again: transient faults (injected
        // or a flaky filesystem) deserve the retry; genuine on-disk
        // corruption will fail identically and get quarantined below.
        is.clear();
        is.seekg(static_cast<std::streamoff>(record_off));
        if (!is.good()) break;  // cannot even reposition: quarantine
        if (attempt < policy.max_attempts) {
          ++result.retries;
          metrics().counter("io.retries").add(1);
          TRKX_WARN << "io: retrying event record " << i << " of " << path
                    << " (attempt " << attempt + 1 << "/"
                    << policy.max_attempts << "): " << e.what();
          if (backoff_ms > 0.0)
            std::this_thread::sleep_for(
                std::chrono::duration<double, std::milli>(backoff_ms));
          backoff_ms = next_backoff_ms(backoff_ms, policy);
        }
      }
    }
    if (loaded) continue;

    ++result.quarantined;
    metrics().counter("events.quarantined").add(1);
    {
      std::ostringstream what;
      what << "quarantined event record " << i << " of " << path
           << " at byte " << record_off << ": " << last_error;
      TRKX_WARN << "io: " << what.str();
      result.quarantine_log.push_back(what.str());
    }
    if (header.version >= kFileVersion) {
      // Framed container: hop over the bad record using its length field
      // so the remaining records still load.
      is.clear();
      is.seekg(static_cast<std::streamoff>(record_off));
      try {
        const auto length = read_pod<std::uint64_t>(is, ctx);
        if (length > kMaxChunkBytes)
          throw_io(ctx, record_off, "implausible record length");
        (void)read_pod<std::uint32_t>(is, ctx);
        is.seekg(static_cast<std::streamoff>(length), std::ios::cur);
        if (!is.good()) throw_io(ctx, record_off, "seek past record failed");
      } catch (const Error&) {
        const std::uint64_t rest = header.count - i - 1;
        result.quarantined += rest;
        metrics().counter("events.quarantined").add(rest);
        TRKX_WARN << "io: record framing of " << path
                  << " unrecoverable after byte " << record_off << "; "
                  << rest << " further event(s) quarantined";
        break;
      }
    } else {
      // Legacy v1 has no framing: everything after a corrupt record is
      // unreachable.
      const std::uint64_t rest = header.count - i - 1;
      result.quarantined += rest;
      metrics().counter("events.quarantined").add(rest);
      TRKX_WARN << "io: legacy event file " << path
                << " has no record framing; " << rest
                << " further event(s) quarantined";
      break;
    }
  }
  return result;
}

void export_event_csv(const std::string& prefix, const Event& event,
                      const std::vector<float>& scores) {
  TRKX_CHECK(scores.empty() || scores.size() == event.num_edges());
  {
    std::ofstream os(prefix + "_hits.csv");
    TRKX_CHECK_MSG(os.good(), "cannot open " << prefix << "_hits.csv");
    os << "hit_id,x,y,z,r,phi,eta,layer,particle\n";
    for (std::size_t i = 0; i < event.hits.size(); ++i) {
      const Hit& h = event.hits[i];
      os << i << ',' << h.x << ',' << h.y << ',' << h.z << ',' << h.r()
         << ',' << h.phi() << ',' << h.eta() << ',' << h.layer << ','
         << h.particle << '\n';
    }
  }
  {
    std::ofstream os(prefix + "_edges.csv");
    TRKX_CHECK_MSG(os.good(), "cannot open " << prefix << "_edges.csv");
    os << "edge_id,src,dst,label,score\n";
    for (std::size_t e = 0; e < event.num_edges(); ++e) {
      os << e << ',' << event.graph.edge(e).src << ','
         << event.graph.edge(e).dst << ','
         << static_cast<int>(event.edge_labels[e]) << ','
         << (scores.empty() ? -1.0f : scores[e]) << '\n';
    }
  }
}

}  // namespace trkx
