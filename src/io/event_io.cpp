#include "io/event_io.hpp"

#include <fstream>

#include "util/error.hpp"

namespace trkx {

namespace {

constexpr std::uint32_t kMagic = 0x54524b58;  // "TRKX"
constexpr std::uint32_t kVersion = 1;

template <typename T>
void write_pod(std::ostream& os, const T& v) {
  os.write(reinterpret_cast<const char*>(&v), sizeof(T));
}

template <typename T>
T read_pod(std::istream& is) {
  T v{};
  is.read(reinterpret_cast<char*>(&v), sizeof(T));
  TRKX_CHECK_MSG(is.good(), "truncated event stream");
  return v;
}

template <typename T>
void write_vec(std::ostream& os, const std::vector<T>& v) {
  write_pod<std::uint64_t>(os, v.size());
  os.write(reinterpret_cast<const char*>(v.data()),
           static_cast<std::streamsize>(v.size() * sizeof(T)));
}

template <typename T>
std::vector<T> read_vec(std::istream& is) {
  const auto n = read_pod<std::uint64_t>(is);
  std::vector<T> v(n);
  is.read(reinterpret_cast<char*>(v.data()),
          static_cast<std::streamsize>(n * sizeof(T)));
  TRKX_CHECK_MSG(is.good(), "truncated event stream");
  return v;
}

void write_matrix(std::ostream& os, const Matrix& m) {
  write_pod<std::uint64_t>(os, m.rows());
  write_pod<std::uint64_t>(os, m.cols());
  os.write(reinterpret_cast<const char*>(m.data()),
           static_cast<std::streamsize>(m.size() * sizeof(float)));
}

Matrix read_matrix(std::istream& is) {
  const auto r = read_pod<std::uint64_t>(is);
  const auto c = read_pod<std::uint64_t>(is);
  Matrix m(r, c);
  is.read(reinterpret_cast<char*>(m.data()),
          static_cast<std::streamsize>(m.size() * sizeof(float)));
  TRKX_CHECK_MSG(is.good(), "truncated event stream");
  return m;
}

}  // namespace

void save_event(std::ostream& os, const Event& event) {
  write_pod(os, kMagic);
  write_pod(os, kVersion);
  write_vec(os, event.hits);  // Hit is trivially copyable
  write_pod<std::uint64_t>(os, event.particles.size());
  for (const TruthParticle& p : event.particles) {
    write_pod(os, p.pt);
    write_pod(os, p.phi0);
    write_pod(os, p.eta);
    write_pod(os, p.z0);
    write_pod(os, p.charge);
    write_vec(os, p.hits);
  }
  write_pod<std::uint64_t>(os, event.graph.num_vertices());
  write_vec(os, event.graph.edges());  // Edge is trivially copyable
  write_vec(os, event.edge_labels);
  write_matrix(os, event.node_features);
  write_matrix(os, event.edge_features);
}

Event load_event(std::istream& is) {
  TRKX_CHECK_MSG(read_pod<std::uint32_t>(is) == kMagic, "bad magic");
  TRKX_CHECK_MSG(read_pod<std::uint32_t>(is) == kVersion,
                 "unsupported event version");
  Event event;
  event.hits = read_vec<Hit>(is);
  const auto np = read_pod<std::uint64_t>(is);
  event.particles.resize(np);
  for (TruthParticle& p : event.particles) {
    p.pt = read_pod<float>(is);
    p.phi0 = read_pod<float>(is);
    p.eta = read_pod<float>(is);
    p.z0 = read_pod<float>(is);
    p.charge = read_pod<int>(is);
    p.hits = read_vec<std::uint32_t>(is);
  }
  const auto nv = read_pod<std::uint64_t>(is);
  event.graph = Graph(nv, read_vec<Edge>(is));
  event.edge_labels = read_vec<char>(is);
  event.node_features = read_matrix(is);
  event.edge_features = read_matrix(is);
  TRKX_CHECK(event.edge_labels.size() == event.graph.num_edges());
  return event;
}

void save_events(const std::string& path, const std::vector<Event>& events) {
  std::ofstream os(path, std::ios::binary);
  TRKX_CHECK_MSG(os.good(), "cannot open " << path << " for writing");
  std::uint64_t n = events.size();
  os.write(reinterpret_cast<const char*>(&n), sizeof(n));
  for (const Event& e : events) save_event(os, e);
  TRKX_CHECK_MSG(os.good(), "write failure on " << path);
}

void export_event_csv(const std::string& prefix, const Event& event,
                      const std::vector<float>& scores) {
  TRKX_CHECK(scores.empty() || scores.size() == event.num_edges());
  {
    std::ofstream os(prefix + "_hits.csv");
    TRKX_CHECK_MSG(os.good(), "cannot open " << prefix << "_hits.csv");
    os << "hit_id,x,y,z,r,phi,eta,layer,particle\n";
    for (std::size_t i = 0; i < event.hits.size(); ++i) {
      const Hit& h = event.hits[i];
      os << i << ',' << h.x << ',' << h.y << ',' << h.z << ',' << h.r()
         << ',' << h.phi() << ',' << h.eta() << ',' << h.layer << ','
         << h.particle << '\n';
    }
  }
  {
    std::ofstream os(prefix + "_edges.csv");
    TRKX_CHECK_MSG(os.good(), "cannot open " << prefix << "_edges.csv");
    os << "edge_id,src,dst,label,score\n";
    for (std::size_t e = 0; e < event.num_edges(); ++e) {
      os << e << ',' << event.graph.edge(e).src << ','
         << event.graph.edge(e).dst << ','
         << static_cast<int>(event.edge_labels[e]) << ','
         << (scores.empty() ? -1.0f : scores[e]) << '\n';
    }
  }
}

std::vector<Event> load_events(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  TRKX_CHECK_MSG(is.good(), "cannot open " << path);
  std::uint64_t n = 0;
  is.read(reinterpret_cast<char*>(&n), sizeof(n));
  TRKX_CHECK(is.good());
  std::vector<Event> events;
  events.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) events.push_back(load_event(is));
  return events;
}

}  // namespace trkx
