#pragma once

#include <fstream>
#include <string>
#include <vector>

namespace trkx {

/// Tiny CSV emitter used by the bench harness to dump the series behind
/// each reproduced table/figure (so plots can be regenerated offline).
class CsvWriter {
 public:
  /// Opens `path` (truncating) and writes the header row.
  CsvWriter(const std::string& path, const std::vector<std::string>& columns);

  void row(const std::vector<std::string>& cells);
  /// Convenience: formats doubles with 6 significant digits.
  void row(const std::vector<double>& cells);

  const std::string& path() const { return path_; }

 private:
  std::string path_;
  std::ofstream os_;
  std::size_t num_columns_;
};

/// Format helper shared with stdout tables.
std::string format_double(double v, int precision = 6);

}  // namespace trkx
