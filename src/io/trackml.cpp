#include "io/trackml.hpp"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <map>
#include <sstream>

#include "util/error.hpp"

namespace trkx {

namespace {

/// Split one CSV line on commas (TrackML files are plain, unquoted CSV).
std::vector<std::string> split_csv(const std::string& line) {
  std::vector<std::string> out;
  std::string cell;
  std::stringstream ss(line);
  while (std::getline(ss, cell, ',')) out.push_back(cell);
  return out;
}

/// Header-indexed CSV table.
struct CsvTable {
  std::vector<std::string> columns;
  std::vector<std::vector<std::string>> rows;

  std::size_t column(const std::string& name) const {
    for (std::size_t i = 0; i < columns.size(); ++i)
      if (columns[i] == name) return i;
    throw Error("CSV is missing required column '" + name + "'");
  }
};

CsvTable read_csv(const std::string& path) {
  std::ifstream is(path);
  TRKX_CHECK_MSG(is.good(), "cannot open " << path);
  CsvTable table;
  std::string line;
  TRKX_CHECK_MSG(std::getline(is, line), "empty CSV: " << path);
  // Tolerate a UTF-8 BOM and trailing CR.
  if (line.size() >= 3 && line.compare(0, 3, "\xef\xbb\xbf") == 0)
    line.erase(0, 3);
  auto strip_cr = [](std::string& s) {
    if (!s.empty() && s.back() == '\r') s.pop_back();
  };
  strip_cr(line);
  table.columns = split_csv(line);
  while (std::getline(is, line)) {
    strip_cr(line);
    if (line.empty()) continue;
    auto row = split_csv(line);
    TRKX_CHECK_MSG(row.size() >= table.columns.size(),
                   "short CSV row in " << path);
    table.rows.push_back(std::move(row));
  }
  return table;
}

}  // namespace

Event read_trackml_event(const std::string& prefix,
                         const TrackmlReadOptions& options) {
  const CsvTable hits_csv = read_csv(prefix + "-hits.csv");
  const CsvTable truth_csv = read_csv(prefix + "-truth.csv");

  const std::size_t c_hit = hits_csv.column("hit_id");
  const std::size_t c_x = hits_csv.column("x");
  const std::size_t c_y = hits_csv.column("y");
  const std::size_t c_z = hits_csv.column("z");
  const std::size_t c_vol = hits_csv.column("volume_id");
  const std::size_t c_lay = hits_csv.column("layer_id");

  // Compact surface ids deterministically: sort the distinct
  // (volume_id, layer_id) pairs so surface order follows the detector
  // numbering rather than hit encounter order.
  std::map<std::pair<long, long>, std::uint32_t> surf;  // ordered map
  for (const auto& row : hits_csv.rows)
    surf.emplace(std::make_pair(std::stol(row[c_vol]),
                                std::stol(row[c_lay])),
                 0);
  {
    std::uint32_t next = 0;
    for (auto& [key, id] : surf) id = next++;
  }

  Event event;
  event.hits.reserve(hits_csv.rows.size());
  std::map<long long, std::uint32_t> hit_index;  // hit_id -> index
  for (const auto& row : hits_csv.rows) {
    Hit h;
    h.x = std::stof(row[c_x]);
    h.y = std::stof(row[c_y]);
    h.z = std::stof(row[c_z]);
    h.layer = surf.at(std::make_pair(std::stol(row[c_vol]),
                                     std::stol(row[c_lay])));
    h.particle = Hit::kNoise;  // assigned from truth below
    TRKX_CHECK(event.hits.size() < 0xffffffffu);  // hit ids are uint32
    hit_index[std::stoll(row[c_hit])] =
        static_cast<std::uint32_t>(event.hits.size());
    event.hits.push_back(h);
  }

  const std::size_t t_hit = truth_csv.column("hit_id");
  const std::size_t t_pid = truth_csv.column("particle_id");
  const std::size_t t_px = truth_csv.column("tpx");
  const std::size_t t_py = truth_csv.column("tpy");
  const std::size_t t_pz = truth_csv.column("tpz");

  std::map<long long, std::size_t> particle_index;  // particle_id -> index
  for (const auto& row : truth_csv.rows) {
    const long long pid = std::stoll(row[t_pid]);
    if (pid == 0) continue;  // noise
    const auto hit_it = hit_index.find(std::stoll(row[t_hit]));
    TRKX_CHECK_MSG(hit_it != hit_index.end(),
                   "truth references unknown hit_id " << row[t_hit]);
    auto pit = particle_index.find(pid);
    if (pit == particle_index.end()) {
      pit = particle_index.emplace(pid, event.particles.size()).first;
      TruthParticle p;
      const float px = std::stof(row[t_px]);
      const float py = std::stof(row[t_py]);
      const float pz = std::stof(row[t_pz]);
      p.pt = std::hypot(px, py);
      p.phi0 = std::atan2(py, px);
      p.eta = p.pt > 0.0f ? std::asinh(pz / p.pt) : 0.0f;
      p.charge = 1;  // TrackML truth carries no charge; bend sign unknown
      event.particles.push_back(p);
    }
    event.hits[hit_it->second].particle =
        static_cast<std::int32_t>(pit->second);
    event.particles[pit->second].hits.push_back(hit_it->second);
  }

  // Order each particle's hits along the trajectory (distance from origin,
  // the TrackML convention for prompt tracks), and estimate z0 from an
  // r–z extrapolation of the two innermost hits.
  for (TruthParticle& p : event.particles) {
    std::sort(p.hits.begin(), p.hits.end(),
              [&](std::uint32_t a, std::uint32_t b) {
                const Hit& ha = event.hits[a];
                const Hit& hb = event.hits[b];
                const float da = ha.x * ha.x + ha.y * ha.y + ha.z * ha.z;
                const float db = hb.x * hb.x + hb.y * hb.y + hb.z * hb.z;
                return da < db;
              });
    if (p.hits.size() >= 2) {
      const Hit& a = event.hits[p.hits[0]];
      const Hit& b = event.hits[p.hits[1]];
      const float dr = b.r() - a.r();
      p.z0 = dr > 1e-3f ? a.z - a.r() * (b.z - a.z) / dr : a.z;
    } else if (!p.hits.empty()) {
      p.z0 = event.hits[p.hits[0]].z;
    }
  }

  if (options.build_graph) {
    build_candidate_graph(event, options.graph_config);
  } else {
    event.graph = Graph(event.hits.size(), {});
    event.edge_labels.clear();
    event.node_features = Matrix(event.hits.size(),
                                 options.graph_config.node_feature_dim);
    event.edge_features = Matrix(0, options.graph_config.edge_feature_dim);
  }
  return event;
}

void write_trackml_event(const std::string& prefix, const Event& event) {
  {
    std::ofstream os(prefix + "-hits.csv");
    TRKX_CHECK_MSG(os.good(), "cannot open " << prefix << "-hits.csv");
    os << "hit_id,x,y,z,volume_id,layer_id,module_id\n";
    for (std::size_t i = 0; i < event.hits.size(); ++i) {
      const Hit& h = event.hits[i];
      os << (i + 1) << ',' << h.x << ',' << h.y << ',' << h.z << ",0,"
         << h.layer << ",0\n";
    }
  }
  {
    std::ofstream os(prefix + "-truth.csv");
    TRKX_CHECK_MSG(os.good(), "cannot open " << prefix << "-truth.csv");
    os << "hit_id,particle_id,tx,ty,tz,tpx,tpy,tpz,weight\n";
    for (std::size_t i = 0; i < event.hits.size(); ++i) {
      const Hit& h = event.hits[i];
      // particle_id 0 = noise; otherwise 1-based.
      const long long pid = h.particle == Hit::kNoise
                                ? 0
                                : static_cast<long long>(h.particle) + 1;
      float px = 0.0f, py = 0.0f, pz = 0.0f;
      if (h.particle != Hit::kNoise) {
        const TruthParticle& p =
            event.particles[static_cast<std::size_t>(h.particle)];
        px = p.pt * std::cos(p.phi0);
        py = p.pt * std::sin(p.phi0);
        pz = p.pt * std::sinh(p.eta);
      }
      os << (i + 1) << ',' << pid << ',' << h.x << ',' << h.y << ',' << h.z
         << ',' << px << ',' << py << ',' << pz << ",1\n";
    }
  }
}

}  // namespace trkx
