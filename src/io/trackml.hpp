#pragma once

#include <string>
#include <vector>

#include "detector/generator.hpp"

namespace trkx {

/// TrackML-style CSV ingestion ("bring your own data").
///
/// The TrackML challenge (and the acorn pipeline the paper builds on)
/// distributes events as per-event CSV files. This reader accepts the two
/// files that matter for the GNN stage and assembles a trkx::Event:
///
///   <prefix>-hits.csv    hit_id,x,y,z,volume_id,layer_id,module_id
///   <prefix>-truth.csv   hit_id,particle_id,tx,ty,tz,tpx,tpy,tpz,weight
///
/// Columns are matched by header name, so column order is free and extra
/// columns are ignored. particle_id 0 means noise. Hits of each particle
/// are ordered along the trajectory by distance from the origin (the
/// TrackML convention for prompt tracks).
///
/// Layer ids are compacted: each distinct (volume_id, layer_id) pair maps
/// to one surface index in encounter order.
struct TrackmlReadOptions {
  /// Build the candidate graph with these geometric windows after reading
  /// (uses the same construction as the synthetic generator). When false,
  /// the event has truth and hits but an empty graph.
  bool build_graph = true;
  DetectorConfig graph_config{};  ///< windows/features for construction
};

/// Read one event from `<prefix>-hits.csv` and `<prefix>-truth.csv`.
Event read_trackml_event(const std::string& prefix,
                         const TrackmlReadOptions& options = {});

/// Write an Event back out in the same format (round-trip / export).
void write_trackml_event(const std::string& prefix, const Event& event);

}  // namespace trkx
