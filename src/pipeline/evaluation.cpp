#include "pipeline/evaluation.hpp"

#include <algorithm>
#include <numeric>

#include "util/error.hpp"

namespace trkx {

ScoredEdges score_events(const GnnModel& model,
                         const std::vector<Event>& events) {
  ScoredEdges out;
  for (const Event& event : events) {
    if (event.graph.num_edges() == 0) continue;
    const auto scores = model.gnn->predict(event.node_features,
                                           event.edge_features, event.graph);
    for (std::size_t e = 0; e < scores.size(); ++e)
      out.add(scores[e], event.edge_labels[e] != 0);
  }
  return out;
}

double roc_auc(const ScoredEdges& edges) {
  TRKX_CHECK(edges.scores.size() == edges.labels.size());
  const std::size_t n = edges.size();
  std::size_t pos = 0;
  for (char l : edges.labels) pos += (l != 0);
  const std::size_t neg = n - pos;
  if (pos == 0 || neg == 0) return 0.5;

  // Rank scores ascending; average ranks over ties.
  std::vector<std::uint32_t> order(n);
  std::iota(order.begin(), order.end(), 0u);
  std::sort(order.begin(), order.end(), [&](std::uint32_t a, std::uint32_t b) {
    return edges.scores[a] < edges.scores[b];
  });
  double pos_rank_sum = 0.0;
  std::size_t i = 0;
  while (i < n) {
    std::size_t j = i;
    while (j < n && edges.scores[order[j]] == edges.scores[order[i]]) ++j;
    // Ranks are 1-based; ties share the mean rank of their block.
    const double mean_rank = 0.5 * static_cast<double>(i + 1 + j);
    for (std::size_t k = i; k < j; ++k)
      if (edges.labels[order[k]]) pos_rank_sum += mean_rank;
    i = j;
  }
  const double u = pos_rank_sum -
                   static_cast<double>(pos) * (static_cast<double>(pos) + 1.0) /
                       2.0;
  // NOLINT(trkx-div-guard): pos, neg > 0 after the early return above
  return u / (static_cast<double>(pos) * static_cast<double>(neg));
}

std::vector<ThresholdPoint> threshold_sweep(
    const ScoredEdges& edges, const std::vector<float>& thresholds) {
  TRKX_CHECK(std::is_sorted(thresholds.begin(), thresholds.end()));
  const std::size_t n = edges.size();
  std::size_t total_pos = 0;
  for (char l : edges.labels) total_pos += (l != 0);

  // Sort edges by score ascending; walk thresholds upward, moving edges
  // below the threshold from "predicted positive" to "predicted negative".
  std::vector<std::uint32_t> order(n);
  std::iota(order.begin(), order.end(), 0u);
  std::sort(order.begin(), order.end(), [&](std::uint32_t a, std::uint32_t b) {
    return edges.scores[a] < edges.scores[b];
  });

  std::vector<ThresholdPoint> out;
  out.reserve(thresholds.size());
  std::size_t below = 0;       // edges with score < threshold
  std::size_t below_pos = 0;   // of those, true edges
  for (float t : thresholds) {
    while (below < n && edges.scores[order[below]] < t) {
      below_pos += (edges.labels[order[below]] != 0);
      ++below;
    }
    ThresholdPoint p;
    p.threshold = t;
    p.metrics.true_positives = total_pos - below_pos;
    p.metrics.false_negatives = below_pos;
    p.metrics.false_positives = (n - below) - (total_pos - below_pos);
    p.metrics.true_negatives = below - below_pos;
    out.push_back(p);
  }
  return out;
}

std::vector<float> uniform_thresholds(std::size_t n) {
  TRKX_CHECK(n > 0);
  std::vector<float> out(n);
  for (std::size_t i = 0; i < n; ++i)
    out[i] = static_cast<float>(i + 1) / static_cast<float>(n + 1);
  return out;
}

ThresholdPoint best_f1_point(const ScoredEdges& edges,
                             const std::vector<float>& thresholds) {
  const auto sweep = threshold_sweep(edges, thresholds);
  TRKX_CHECK(!sweep.empty());
  const auto it = std::max_element(
      sweep.begin(), sweep.end(), [](const auto& a, const auto& b) {
        return a.metrics.f1() < b.metrics.f1();
      });
  return *it;
}

TrackingMetrics evaluate_tracking(const GnnModel& model,
                                  const std::vector<Event>& events,
                                  const TrackBuildConfig& config) {
  TrackingMetrics total;
  for (const Event& event : events) {
    std::vector<float> scores;
    if (event.graph.num_edges() > 0)
      scores = model.gnn->predict(event.node_features, event.edge_features,
                                  event.graph);
    const auto tracks = build_tracks(event, scores, config);
    total.merge(score_tracks(event, tracks, config));
  }
  return total;
}

}  // namespace trkx
