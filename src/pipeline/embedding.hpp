#pragma once

#include <memory>
#include <vector>

#include "detector/generator.hpp"
#include "nn/mlp.hpp"
#include "nn/optimizer.hpp"
#include "util/annotations.hpp"

namespace trkx {

/// Stage 1 of the Exa.TrkX pipeline: a metric-learning MLP that embeds
/// each hit so that hits adjacent on the same track land close together
/// and unrelated hits land far apart. Stage 2 builds a fixed-radius graph
/// in this embedding space.
struct EmbeddingConfig {
  std::size_t embed_dim = 4;
  std::size_t hidden_dim = 64;
  std::size_t num_hidden = 2;
  float margin = 1.0f;        ///< hinge margin for negative pairs
  std::size_t epochs = 8;
  std::size_t pairs_per_event = 4096;  ///< sampled training pairs per event
  float lr = 1e-3f;
  std::uint64_t seed = 1;
};

class EmbeddingModel {
 public:
  explicit EmbeddingModel(std::size_t node_feature_dim,
                          const EmbeddingConfig& config);

  /// Embed all hits of an event (rows match event.hits).
  /// Inference stage 1: TRKX_HOT — no allocation/blocking in its closure.
  TRKX_HOT Matrix embed(const Matrix& node_features) const;

  /// Train on truth pairs: positives are consecutive same-track hits,
  /// negatives are random hit pairs. Returns per-epoch mean loss.
  std::vector<double> train(const std::vector<Event>& events);

  const EmbeddingConfig& config() const { return config_; }
  ParameterStore& store() { return store_; }

 private:
  /// Hinge contrastive loss on a batch of (a, b, is_positive) pairs.
  double train_batch(const Matrix& feats_a, const Matrix& feats_b,
                     const std::vector<float>& is_positive, Adam& opt);

  EmbeddingConfig config_;
  ParameterStore store_;
  std::unique_ptr<Mlp> mlp_;
  Rng rng_;
};

}  // namespace trkx
