#pragma once

#include <memory>
#include <vector>

#include "detector/generator.hpp"
#include "nn/mlp.hpp"
#include "nn/optimizer.hpp"
#include "util/annotations.hpp"

namespace trkx {

/// Stage 3 of the Exa.TrkX pipeline: a cheap per-edge MLP that prunes
/// obviously-fake edges before the memory-hungry GNN. Classifies each edge
/// from [x_src ‖ x_dst ‖ y_edge] and drops edges below `keep_threshold`
/// (set low: the filter must preserve recall, the GNN restores precision).
struct FilterConfig {
  std::size_t hidden_dim = 64;
  std::size_t num_hidden = 2;
  std::size_t epochs = 6;
  float lr = 1e-3f;
  float keep_threshold = 0.1f;
  float pos_weight = 0.0f;  ///< 0 = auto from label imbalance
  std::uint64_t seed = 2;
};

class FilterModel {
 public:
  FilterModel(std::size_t node_feature_dim, std::size_t edge_feature_dim,
              const FilterConfig& config);

  /// Per-edge keep probability.
  std::vector<float> score(const Event& event) const;

  /// Train on labelled events; returns per-epoch mean loss.
  std::vector<double> train(const std::vector<Event>& events);

  /// Drop edges of `event` scoring below keep_threshold (rebuilds the
  /// graph, labels, and edge features in place; keeps node features).
  /// Returns the number of edges removed.
  /// Inference stage 3: TRKX_HOT — no allocation/blocking in its closure.
  TRKX_HOT std::size_t apply(Event& event) const;

  /// Same, with an explicit cut overriding config().keep_threshold — the
  /// serving layer's coarse-filter degradation level passes a raised one.
  TRKX_HOT std::size_t apply(Event& event, float keep_threshold) const;

  const FilterConfig& config() const { return config_; }
  ParameterStore& store() { return store_; }

 private:
  Matrix edge_inputs(const Event& event) const;

  FilterConfig config_;
  ParameterStore store_;
  std::unique_ptr<Mlp> mlp_;
  Rng rng_;
};

}  // namespace trkx
