#pragma once

#include <optional>
#include <vector>

#include "detector/generator.hpp"
#include "pipeline/track_building.hpp"
#include "util/annotations.hpp"

namespace trkx {

/// Estimated helix parameters of one track candidate.
struct FittedTrack {
  float pt = 0.0f;     ///< transverse momentum estimate [GeV]
  float phi0 = 0.0f;   ///< production azimuth estimate [rad]
  float eta = 0.0f;    ///< pseudorapidity estimate
  float z0 = 0.0f;     ///< longitudinal impact parameter [mm]
  int charge = 1;      ///< bend-direction estimate
  float circle_chi2 = 0.0f;  ///< mean squared transverse residual [mm²]
  float line_chi2 = 0.0f;    ///< mean squared r–z residual [mm²]
};

/// Resolution summary over matched candidates.
struct FitResolution {
  std::size_t fitted = 0;
  std::size_t failed = 0;
  double pt_bias = 0.0;       ///< mean relative pt residual (rec−true)/true
  double pt_resolution = 0.0; ///< RMS of the relative pt residual
  double z0_resolution = 0.0; ///< RMS of z0 residual [mm]
  double phi_resolution = 0.0;  ///< RMS of φ0 residual [rad]
  double charge_correct_fraction = 0.0;
};

/// Fit a helix through the candidate's hits:
///  * transverse plane — Kåsa algebraic circle fit constrained through
///    the beamline region, giving curvature radius R (pt = 0.3·B·R),
///    bend direction, and φ0;
///  * r–z plane — least-squares line z = z0 + r·cot θ, giving z0 and η.
/// Needs ≥ 3 hits; returns nullopt for degenerate configurations.
/// Inference stage 6 (fit): TRKX_HOT — no allocation/blocking in its closure.
TRKX_HOT std::optional<FittedTrack> fit_track(const Event& event,
                                              const TrackCandidate& candidate,
                                              double b_field_tesla);

/// Fit every candidate and compare matched ones against truth.
FitResolution evaluate_fits(const Event& event,
                            const std::vector<TrackCandidate>& candidates,
                            double b_field_tesla);

}  // namespace trkx
