#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "nn/optimizer.hpp"
#include "nn/parameter.hpp"

namespace trkx {

struct GnnTrainConfig;
enum class SamplerKind;

/// Everything besides model parameters and optimizer moments that the
/// ShaDow training loop needs to continue a run bit-identically: the
/// epoch/step cursor, the shared batch-order RNG (sampling randomness is
/// keyed per (rank, epoch, event, batch) via Rng::stream, so it needs no
/// state here), model-selection and early-stopping state, and the
/// per-epoch loss/val trajectory so a resumed TrainResult matches the
/// uninterrupted one.
struct TrainCheckpointState {
  /// Hash of the run configuration (seed, batch geometry, sampler,
  /// world size, ...). Resuming under a different configuration cannot
  /// be bit-identical, so a mismatch is rejected.
  std::uint64_t fingerprint = 0;
  std::uint64_t next_epoch = 0;   ///< first epoch the resumed run executes
  std::uint64_t global_step = 0;  ///< optimizer steps taken so far
  std::uint64_t rng_state = 0;    ///< batch_rng splitmix state
  bool rng_have_spare = false;    ///< batch_rng Box–Muller spare cache
  double rng_spare = 0.0;
  double early_best = -1e300;     ///< EarlyStopping::best()
  std::uint64_t early_bad_epochs = 0;
  double best_f1 = -1.0;          ///< keep_best_weights tracking
  std::uint64_t best_epoch = 0;
  std::vector<float> best_weights;  ///< empty = no best snapshot yet

  /// One completed epoch's observable results (PhaseTimers are wall-time
  /// diagnostics, deliberately not checkpointed).
  struct EpochSummary {
    double train_loss = 0.0;
    std::uint64_t tp = 0, fp = 0, tn = 0, fn = 0;  ///< val edge counts
    double wall_seconds = 0.0;
  };
  std::vector<EpochSummary> epochs;
};

/// Serialize state + parameters + optimizer moments into a checkpoint
/// envelope: magic, version, payload size, CRC-32, payload. The CRC is
/// verified before anything is deserialized, so a torn or corrupt file
/// fails with CheckpointError instead of poisoning the model.
std::string serialize_checkpoint(const TrainCheckpointState& state,
                                 const ParameterStore& store,
                                 const Adam& opt);

/// Inverse of serialize_checkpoint: validates the envelope, then loads
/// parameters into `store` and moments into `opt`. Throws CheckpointError
/// on bad magic/version/CRC or layout mismatch.
TrainCheckpointState deserialize_checkpoint(const std::string& bytes,
                                            ParameterStore& store, Adam& opt);

/// Read + deserialize a checkpoint file.
TrainCheckpointState read_checkpoint(const std::string& path,
                                     ParameterStore& store, Adam& opt);

/// Durable atomic file replacement: write to a unique temp file in the
/// destination directory, fsync it, rename() over `path`, fsync the
/// directory. A crash at any point leaves either the old file or the new
/// one — never a torn mix. Every checkpoint write in the repo must go
/// through this helper (enforced by the trkx-atomic-write analyzer rule).
void atomic_write_file(const std::string& path, const std::string& bytes);

/// serialize + atomic_write_file, with the obs metric checkpoint.write_ns.
void write_checkpoint(const std::string& path,
                      const TrainCheckpointState& state,
                      const ParameterStore& store, const Adam& opt);

/// atomic_write_file of pre-serialized checkpoint bytes (the emergency
/// path: survivors of a comm timeout write their retained epoch-boundary
/// blob without touching the model again).
void write_checkpoint_bytes(const std::string& path, const std::string& bytes);

/// Canonical checkpoint filename for a given epoch cursor:
/// `<dir>/ckpt-<next_epoch, zero-padded>.ckpt`.
std::string checkpoint_path(const std::string& dir, std::uint64_t next_epoch);

/// Scan `dir` for the valid checkpoint with the highest epoch cursor.
/// Files that fail envelope/CRC validation are skipped with a warning
/// (a torn write must not block resume from an older good checkpoint).
/// Returns "" when none is found (including when `dir` does not exist).
std::string latest_checkpoint(const std::string& dir);

/// Fingerprint of the parts of the run configuration that determine the
/// training trajectory. Resume requires an exact match.
std::uint64_t checkpoint_fingerprint(const GnnTrainConfig& config,
                                     SamplerKind sampler, int world_size);

}  // namespace trkx
