#include "pipeline/track_fit.hpp"

#include <cmath>

#include "util/error.hpp"

namespace trkx {

namespace {

float wrap_angle(float d) {
  while (d > static_cast<float>(M_PI)) d -= 2.0f * static_cast<float>(M_PI);
  while (d <= -static_cast<float>(M_PI)) d += 2.0f * static_cast<float>(M_PI);
  return d;
}

}  // namespace

std::optional<FittedTrack> fit_track(const Event& event,
                                     const TrackCandidate& candidate,
                                     double b_field_tesla) {
  if (candidate.hits.size() < 3) return std::nullopt;

  // --- transverse plane: Kåsa circle fit constrained through the origin.
  // Circle through (0,0): x² + y² = 2a·x + 2b·y with centre (a, b).
  double sxx = 0.0, sxy = 0.0, syy = 0.0, sxs = 0.0, sys = 0.0;
  for (std::uint32_t h : candidate.hits) {
    const double x = event.hits[h].x;
    const double y = event.hits[h].y;
    const double s = x * x + y * y;
    sxx += x * x;
    sxy += x * y;
    syy += y * y;
    sxs += x * s;
    sys += y * s;
  }
  // Normal equations: [sxx sxy; sxy syy]·[2a; 2b] = [sxs; sys].
  const double det = sxx * syy - sxy * sxy;
  if (std::fabs(det) < 1e-9) return std::nullopt;  // collinear through origin
  const double two_a = (syy * sxs - sxy * sys) / det;
  const double two_b = (sxx * sys - sxy * sxs) / det;
  const double a = two_a / 2.0, b = two_b / 2.0;
  const double radius = std::hypot(a, b);
  if (radius < 1e-6) return std::nullopt;

  FittedTrack fit;
  // pt[GeV] = 0.3 · B[T] · R[m].
  fit.pt = static_cast<float>(0.3 * b_field_tesla * radius / 1000.0);

  // Tangent at the origin is perpendicular to the centre vector; orient it
  // toward the innermost hit.
  const Hit& inner = event.hits[candidate.hits.front()];
  double tx = -b / radius, ty = a / radius;
  if (tx * inner.x + ty * inner.y < 0.0) {
    tx = -tx;
    ty = -ty;
  }
  fit.phi0 = static_cast<float>(std::atan2(ty, tx));
  // Positive charge turns left (centre 90° left of the direction).
  fit.charge = (tx * b - ty * a) > 0.0 ? 1 : -1;

  double circle_chi2 = 0.0;
  for (std::uint32_t h : candidate.hits) {
    const double r = std::hypot(event.hits[h].x - a, event.hits[h].y - b);
    circle_chi2 += (r - radius) * (r - radius);
  }
  const double nhits = static_cast<double>(candidate.hits.size());
  // NOLINT(trkx-div-guard): hits.size() >= 3 checked at entry
  fit.circle_chi2 = static_cast<float>(circle_chi2 / nhits);

  // --- r–z plane: z = z0 + sinh(η) · ℓ, with ℓ the transverse arc length
  // from the origin along the fitted circle (ℓ = R·t, d = 2R·sin(t/2)).
  double sl = 0.0, sz = 0.0, sll = 0.0, slz = 0.0;
  const double n = static_cast<double>(candidate.hits.size());
  std::vector<double> arc(candidate.hits.size());
  for (std::size_t i = 0; i < candidate.hits.size(); ++i) {
    const Hit& h = event.hits[candidate.hits[i]];
    const double d = std::hypot(h.x, h.y);
    const double ratio = std::min(1.0, d / (2.0 * radius));
    const double ell = 2.0 * radius * std::asin(ratio);
    arc[i] = ell;
    sl += ell;
    sz += h.z;
    sll += ell * ell;
    slz += ell * h.z;
  }
  const double line_det = n * sll - sl * sl;
  if (std::fabs(line_det) < 1e-9) return std::nullopt;
  const double slope = (n * slz - sl * sz) / line_det;   // sinh(η)
  const double intercept = (sz * sll - sl * slz) / line_det;  // z0
  fit.z0 = static_cast<float>(intercept);
  fit.eta = static_cast<float>(std::asinh(slope));
  double line_chi2 = 0.0;
  for (std::size_t i = 0; i < candidate.hits.size(); ++i) {
    const double zhat = intercept + slope * arc[i];
    const double dz = event.hits[candidate.hits[i]].z - zhat;
    line_chi2 += dz * dz;
  }
  // NOLINT(trkx-div-guard): n = hits.size() >= 3 checked at entry
  fit.line_chi2 = static_cast<float>(line_chi2 / n);
  return fit;
}

FitResolution evaluate_fits(const Event& event,
                            const std::vector<TrackCandidate>& candidates,
                            double b_field_tesla) {
  FitResolution out;
  double sum_dpt = 0.0, sum_dpt2 = 0.0;
  double sum_dz02 = 0.0, sum_dphi2 = 0.0;
  std::size_t charges_correct = 0, matched = 0;
  for (const TrackCandidate& cand : candidates) {
    if (cand.matched_particle < 0) continue;
    const auto fit = fit_track(event, cand, b_field_tesla);
    if (!fit) {
      ++out.failed;
      continue;
    }
    ++out.fitted;
    ++matched;
    const TruthParticle& truth =
        event.particles[static_cast<std::size_t>(cand.matched_particle)];
    // NOLINT(trkx-div-guard): generated truth particles have pt >= pt_min > 0
    const double dpt = (fit->pt - truth.pt) / truth.pt;
    sum_dpt += dpt;
    sum_dpt2 += dpt * dpt;
    const double dz0 = fit->z0 - truth.z0;
    sum_dz02 += dz0 * dz0;
    const double dphi = wrap_angle(fit->phi0 - truth.phi0);
    sum_dphi2 += dphi * dphi;
    charges_correct += (fit->charge == truth.charge);
  }
  if (matched > 0) {
    const double inv_n = 1.0 / static_cast<double>(matched);
    out.pt_bias = sum_dpt * inv_n;
    out.pt_resolution = std::sqrt(sum_dpt2 * inv_n);
    out.z0_resolution = std::sqrt(sum_dz02 * inv_n);
    out.phi_resolution = std::sqrt(sum_dphi2 * inv_n);
    out.charge_correct_fraction = static_cast<double>(charges_correct) * inv_n;
  }
  return out;
}

}  // namespace trkx
