#pragma once

#include "detector/event.hpp"
#include "graph/graph.hpp"
#include "tensor/matrix.hpp"

namespace trkx {

/// Stage 2 of the Exa.TrkX pipeline: build a fixed-radius nearest-
/// neighbour graph over points in the learned embedding space.
struct FrnnConfig {
  float radius = 0.5f;        ///< connection radius in embedding space
  std::size_t max_neighbors = 64;  ///< cap per query point (closest kept)
};

/// All ordered pairs (i, j), i != j, with ‖points[i] − points[j]‖ ≤ radius.
/// Directed edges are emitted from the lower-layer hit to the higher-layer
/// hit when `layers` is provided (ties broken by index), halving the edge
/// count and matching the detector convention; with no layers every pair
/// appears once as (min, max).
///
/// Implemented with a uniform grid hash of cell size `radius`: each query
/// only inspects its 3^d neighbouring cells, giving O(n · occupancy)
/// instead of O(n²).
Graph build_frnn_graph(const Matrix& points, const FrnnConfig& config,
                       const std::vector<std::uint32_t>& layers = {});

/// Brute-force O(n²) reference used by tests.
Graph build_frnn_graph_bruteforce(const Matrix& points,
                                  const FrnnConfig& config,
                                  const std::vector<std::uint32_t>& layers = {});

/// Replace `event.graph` with an FRNN graph over `embedded` and rebuild
/// edge labels and edge features accordingly.
void rebuild_event_graph(Event& event, const Matrix& embedded,
                         const FrnnConfig& config,
                         std::size_t edge_feature_dim,
                         const FeatureScales& scales);

}  // namespace trkx
