#pragma once

#include <cstddef>
#include <vector>

#include "detector/generator.hpp"
#include "pipeline/gnn_train.hpp"
#include "pipeline/track_building.hpp"
#include "util/stats.hpp"

namespace trkx {

/// One point of a score-threshold sweep.
struct ThresholdPoint {
  float threshold = 0.0f;
  BinaryMetrics metrics;
};

/// Scored edges pooled across events: (score, label) pairs.
struct ScoredEdges {
  std::vector<float> scores;
  std::vector<char> labels;

  std::size_t size() const { return scores.size(); }
  void add(float score, bool label) {
    scores.push_back(score);
    labels.push_back(label ? 1 : 0);
  }
};

/// Run full-graph GNN inference over `events` and pool all edge scores.
ScoredEdges score_events(const GnnModel& model,
                         const std::vector<Event>& events);

/// Area under the ROC curve via the rank-sum (Mann–Whitney) statistic.
/// Returns 0.5 when either class is empty. Exact (ties averaged).
double roc_auc(const ScoredEdges& edges);

/// Precision/recall/etc. at each threshold in `thresholds` (ascending).
/// Computed in one sorted pass over the edges.
std::vector<ThresholdPoint> threshold_sweep(
    const ScoredEdges& edges, const std::vector<float>& thresholds);

/// Evenly spaced thresholds in (0, 1): {1/(n+1), ..., n/(n+1)}.
std::vector<float> uniform_thresholds(std::size_t n);

/// The threshold (from `thresholds`) maximising F1.
ThresholdPoint best_f1_point(const ScoredEdges& edges,
                             const std::vector<float>& thresholds);

/// Track-level evaluation: run inference + track building over events and
/// aggregate physics metrics.
TrackingMetrics evaluate_tracking(const GnnModel& model,
                                  const std::vector<Event>& events,
                                  const TrackBuildConfig& config);

}  // namespace trkx
