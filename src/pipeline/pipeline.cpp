#include "pipeline/pipeline.hpp"

#include <cmath>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/log.hpp"

namespace trkx {

TrackingPipeline::TrackingPipeline(std::size_t node_dim, std::size_t edge_dim,
                                   const PipelineConfig& config)
    : config_(config), node_dim_(node_dim), edge_dim_(edge_dim) {
  embedding_ = std::make_unique<EmbeddingModel>(node_dim, config.embedding);
  filter_ = std::make_unique<FilterModel>(node_dim, edge_dim, config.filter);
  IgnnConfig gnn_cfg = config.gnn;
  gnn_cfg.node_input_dim = node_dim;
  gnn_cfg.edge_input_dim = edge_dim;
  config_.gnn = gnn_cfg;
  gnn_ = std::make_unique<GnnModel>(gnn_cfg, config.gnn_train.seed);
}

Event TrackingPipeline::prepare_event(const Event& event) const {
  Event out = event;
  embed_stage(out);
  filter_stage(out, 1.0f);
  return out;
}

void TrackingPipeline::embed_stage(Event& event) const {
  if (!config_.use_learned_graphs) return;
  const Matrix embedded = embedding_->embed(event.node_features);
  rebuild_event_graph(event, embedded, config_.frnn, edge_dim_, scales_);
}

std::size_t TrackingPipeline::filter_stage(Event& event,
                                           float threshold_scale) const {
  if (!config_.use_learned_graphs) return 0;
  return filter_->apply(event,
                        filter_->config().keep_threshold * threshold_scale);
}

std::vector<float> TrackingPipeline::gnn_stage(const Event& event) const {
  if (event.graph.num_edges() == 0) return {};
  return gnn_->gnn->predict(event.node_features, event.edge_features,
                            event.graph);
}

std::vector<TrackCandidate> TrackingPipeline::build_stage(
    const Event& event, const std::vector<float>& scores) const {
  return build_tracks(event, scores, config_.track);
}

TrainResult TrackingPipeline::fit(const std::vector<Event>& train_events,
                                  const std::vector<Event>& val_events) {
  TRKX_TRACE_SPAN("pipeline.fit", "pipeline");
  TRKX_CHECK(!train_events.empty());
  // Derive the feature normalisation envelope from the data.
  float r_max = 1.0f, z_max = 1.0f;
  for (const Event& e : train_events)
    for (const Hit& h : e.hits) {
      r_max = std::max(r_max, h.r());
      z_max = std::max(z_max, std::fabs(h.z));
    }
  scales_.r_max = r_max;
  scales_.z_max = z_max;

  // Stage 1: metric-learning embedding.
  TRKX_INFO << "pipeline: training embedding MLP";
  embedding_->train(train_events);

  std::vector<Event> gnn_train_events;
  std::vector<Event> gnn_val_events;
  if (config_.use_learned_graphs) {
    // Stage 3 training uses the FRNN graphs from stage 2 (which the filter
    // then prunes before the GNN sees them).
    TRKX_INFO << "pipeline: rebuilding graphs in embedding space";
    std::vector<Event> frnn_train;
    frnn_train.reserve(train_events.size());
    for (const Event& e : train_events) {
      Event copy = e;
      const Matrix embedded = embedding_->embed(copy.node_features);
      rebuild_event_graph(copy, embedded, config_.frnn, edge_dim_, scales_);
      frnn_train.push_back(std::move(copy));
    }
    TRKX_INFO << "pipeline: training filter MLP";
    filter_->train(frnn_train);
    for (Event& e : frnn_train) filter_->apply(e);
    gnn_train_events = std::move(frnn_train);
    for (const Event& e : val_events)
      gnn_val_events.push_back(prepare_event(e));
  } else {
    TRKX_INFO << "pipeline: training filter MLP (geometric graphs)";
    filter_->train(train_events);
    gnn_train_events = train_events;
    gnn_val_events = val_events;
  }

  // Stage 4: the Interaction GNN, minibatch-trained with bulk ShaDow (the
  // paper's augmented regime).
  TRKX_INFO << "pipeline: training GNN ("
            << gnn_train_events.size() << " graphs)";
  return train_shadow(*gnn_, gnn_train_events, gnn_val_events,
                      config_.gnn_train, SamplerKind::kMatrixBulk);
}

void TrackingPipeline::save(std::ostream& os) const {
  os.write(reinterpret_cast<const char*>(&scales_), sizeof(scales_));
  embedding_->store().save(os);
  filter_->store().save(os);
  gnn_->store.save(os);
  TRKX_CHECK_MSG(os.good(), "pipeline save failed");
}

void TrackingPipeline::load(std::istream& is) {
  is.read(reinterpret_cast<char*>(&scales_), sizeof(scales_));
  TRKX_CHECK_MSG(is.good(), "pipeline load: truncated stream");
  embedding_->store().load(is);
  filter_->store().load(is);
  gnn_->store.load(is);
}

PipelineOutput TrackingPipeline::reconstruct(const Event& event) const {
  TRKX_TRACE_SPAN("pipeline.reconstruct", "pipeline");
  metrics().counter("pipeline.reconstruct.events").add(1);
  const Event prepared = prepare_event(event);
  PipelineOutput out;
  const std::vector<float> scores = gnn_stage(prepared);
  for (std::size_t e = 0; e < scores.size(); ++e)
    out.edge_metrics.add(scores[e] >= config_.track.edge_threshold,
                         prepared.edge_labels[e] != 0);
  out.tracks = build_stage(prepared, scores);
  out.metrics = score_tracks(prepared, out.tracks, config_.track);
  return out;
}

}  // namespace trkx
