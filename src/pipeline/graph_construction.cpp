#include "pipeline/graph_construction.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <unordered_map>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/error.hpp"

namespace trkx {

namespace {

/// Hash key for an integer grid cell in up to 8 dimensions.
struct CellKey {
  std::array<std::int32_t, 8> c{};
  std::size_t dims = 0;
  bool operator==(const CellKey& o) const {
    if (dims != o.dims) return false;
    for (std::size_t i = 0; i < dims; ++i)
      if (c[i] != o.c[i]) return false;
    return true;
  }
};

struct CellKeyHash {
  std::size_t operator()(const CellKey& k) const {
    std::size_t h = 0x9e3779b97f4a7c15ull;
    for (std::size_t i = 0; i < k.dims; ++i) {
      h ^= static_cast<std::size_t>(static_cast<std::uint32_t>(k.c[i])) +
           0x9e3779b9u + (h << 6) + (h >> 2);
    }
    return h;
  }
};

float sq_dist(const Matrix& pts, std::size_t a, std::size_t b) {
  float d2 = 0.0f;
  for (std::size_t j = 0; j < pts.cols(); ++j) {
    const float d = pts(a, j) - pts(b, j);
    d2 += d * d;
  }
  return d2;
}

/// Orient a close pair into a directed edge (inner → outer).
Edge orient(std::uint32_t i, std::uint32_t j,
            const std::vector<std::uint32_t>& layers) {
  if (!layers.empty()) {
    if (layers[i] < layers[j]) return {i, j};
    if (layers[j] < layers[i]) return {j, i};
  }
  return i < j ? Edge{i, j} : Edge{j, i};
}

Graph finalize(std::size_t n, std::vector<Edge> edges) {
  std::sort(edges.begin(), edges.end(), [](const Edge& a, const Edge& b) {
    return a.src != b.src ? a.src < b.src : a.dst < b.dst;
  });
  edges.erase(std::unique(edges.begin(), edges.end()), edges.end());
  return Graph(n, std::move(edges));
}

}  // namespace

Graph build_frnn_graph(const Matrix& points, const FrnnConfig& config,
                       const std::vector<std::uint32_t>& layers) {
  TRKX_CHECK(config.radius > 0.0f);
  const std::size_t n = points.rows();
  const std::size_t d = points.cols();
  TRKX_CHECK_MSG(d <= 8, "FRNN grid supports up to 8 dims");
  TRKX_CHECK(layers.empty() || layers.size() == n);
  const float r2 = config.radius * config.radius;

  auto cell_of = [&](std::size_t i) {
    CellKey key;
    key.dims = d;
    for (std::size_t j = 0; j < d; ++j)
      key.c[j] = static_cast<std::int32_t>(
          std::floor(points(i, j) / config.radius));
    return key;
  };

  std::unordered_map<CellKey, std::vector<std::uint32_t>, CellKeyHash> grid;
  grid.reserve(n);
  for (std::size_t i = 0; i < n; ++i)
    grid[cell_of(i)].push_back(static_cast<std::uint32_t>(i));

  std::vector<Edge> edges;
  std::vector<std::pair<float, std::uint32_t>> near;  // (dist², neighbour)
  for (std::size_t i = 0; i < n; ++i) {
    near.clear();
    const CellKey base = cell_of(i);
    // Enumerate the 3^d neighbouring cells with an odometer.
    std::array<std::int32_t, 8> offset{};
    offset.fill(-1);
    for (;;) {
      CellKey key = base;
      for (std::size_t j = 0; j < d; ++j) key.c[j] += offset[j];
      auto it = grid.find(key);
      if (it != grid.end()) {
        for (std::uint32_t j : it->second) {
          if (j <= i) continue;  // each unordered pair once
          const float d2 = sq_dist(points, i, j);
          if (d2 <= r2) near.emplace_back(d2, j);
        }
      }
      // Advance the odometer.
      std::size_t pos = 0;
      while (pos < d && offset[pos] == 1) offset[pos++] = -1;
      if (pos == d) break;
      ++offset[pos];
    }
    if (near.size() > config.max_neighbors) {
      std::nth_element(near.begin(),
                       near.begin() + static_cast<std::ptrdiff_t>(
                                          config.max_neighbors),
                       near.end());
      near.resize(config.max_neighbors);
    }
    for (const auto& [d2, j] : near)
      edges.push_back(orient(static_cast<std::uint32_t>(i), j, layers));
  }
  return finalize(n, std::move(edges));
}

Graph build_frnn_graph_bruteforce(const Matrix& points,
                                  const FrnnConfig& config,
                                  const std::vector<std::uint32_t>& layers) {
  const std::size_t n = points.rows();
  TRKX_CHECK(layers.empty() || layers.size() == n);
  const float r2 = config.radius * config.radius;
  std::vector<Edge> edges;
  std::vector<std::pair<float, std::uint32_t>> near;
  for (std::size_t i = 0; i < n; ++i) {
    near.clear();
    for (std::size_t j = i + 1; j < n; ++j) {
      const float d2 = sq_dist(points, i, j);
      if (d2 <= r2) near.emplace_back(d2, static_cast<std::uint32_t>(j));
    }
    if (near.size() > config.max_neighbors) {
      std::nth_element(near.begin(),
                       near.begin() + static_cast<std::ptrdiff_t>(
                                          config.max_neighbors),
                       near.end());
      near.resize(config.max_neighbors);
    }
    for (const auto& [d2, j] : near)
      edges.push_back(orient(static_cast<std::uint32_t>(i), j, layers));
  }
  return finalize(n, std::move(edges));
}

void rebuild_event_graph(Event& event, const Matrix& embedded,
                         const FrnnConfig& config,
                         std::size_t edge_feature_dim,
                         const FeatureScales& scales) {
  TRKX_TRACE_SPAN("graph_construction", "pipeline");
  metrics().counter("pipeline.graph_construction.events").add(1);
  TRKX_CHECK(embedded.rows() == event.hits.size());
  std::vector<std::uint32_t> layers(event.hits.size());
  for (std::size_t i = 0; i < event.hits.size(); ++i)
    layers[i] = event.hits[i].layer;
  event.graph = build_frnn_graph(embedded, config, layers);

  // Relabel edges against truth.
  event.edge_labels.assign(event.graph.num_edges(), 0);
  for (const TruthParticle& p : event.particles) {
    for (std::size_t i = 0; i + 1 < p.hits.size(); ++i) {
      const std::uint32_t e = event.graph.find_edge(p.hits[i], p.hits[i + 1]);
      if (e != Graph::kNoEdge) event.edge_labels[e] = 1;
    }
  }
  // Rebuild edge features for the new edge set (node features unchanged).
  std::size_t num_layers = 0;
  for (const Hit& h : event.hits)
    num_layers = std::max<std::size_t>(num_layers, h.layer + 1);
  build_features(event, event.node_features.cols(), edge_feature_dim, scales,
                 std::max<std::size_t>(num_layers, 1));
}

}  // namespace trkx
