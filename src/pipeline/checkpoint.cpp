#include "pipeline/checkpoint.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "obs/metrics.hpp"
#include "pipeline/gnn_train.hpp"
#include "util/crc32.hpp"
#include "util/error.hpp"
#include "util/fault.hpp"
#include "util/log.hpp"
#include "util/timer.hpp"

namespace trkx {

namespace {

constexpr std::uint32_t kCheckpointMagic = 0x50434b54;  // "TKCP"
constexpr std::uint32_t kCheckpointVersion = 1;
constexpr std::uint64_t kMaxPayloadBytes = 1ull << 34;  // 16 GiB sanity cap

template <typename T>
void put(std::ostream& os, const T& v) {
  os.write(reinterpret_cast<const char*>(&v), sizeof(T));
}

template <typename T>
T get(std::istream& is) {
  T v{};
  is.read(reinterpret_cast<char*>(&v), sizeof(T));
  if (!is.good()) throw CheckpointError("checkpoint payload truncated");
  return v;
}

void put_floats(std::ostream& os, const std::vector<float>& v) {
  put<std::uint64_t>(os, v.size());
  os.write(reinterpret_cast<const char*>(v.data()),
           static_cast<std::streamsize>(v.size() * sizeof(float)));
}

std::vector<float> get_floats(std::istream& is) {
  const auto n = get<std::uint64_t>(is);
  if (n > kMaxPayloadBytes / sizeof(float))
    throw CheckpointError("checkpoint payload corrupt (implausible size)");
  std::vector<float> v(n);
  is.read(reinterpret_cast<char*>(v.data()),
          static_cast<std::streamsize>(n * sizeof(float)));
  if (!is.good()) throw CheckpointError("checkpoint payload truncated");
  return v;
}

/// splitmix64 finalizer — the mixing step behind Rng, reused to fold
/// config fields into the fingerprint.
std::uint64_t mix(std::uint64_t h, std::uint64_t v) {
  std::uint64_t z = h ^ (v + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2));
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

std::uint64_t mix_double(std::uint64_t h, double v) {
  std::uint64_t bits = 0;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));
  return mix(h, bits);
}

[[noreturn]] void throw_errno(const std::string& what,
                              const std::string& path) {
  std::ostringstream os;
  os << what << " " << path << ": " << std::strerror(errno);
  throw IoError(os.str());
}

/// RAII fd so error paths cannot leak descriptors.
struct Fd {
  int fd = -1;
  ~Fd() {
    if (fd >= 0) ::close(fd);
  }
};

}  // namespace

std::string serialize_checkpoint(const TrainCheckpointState& state,
                                 const ParameterStore& store,
                                 const Adam& opt) {
  std::ostringstream payload(std::ios::binary);
  put<std::uint64_t>(payload, state.fingerprint);
  put<std::uint64_t>(payload, state.next_epoch);
  put<std::uint64_t>(payload, state.global_step);
  put<std::uint64_t>(payload, state.rng_state);
  put<std::uint8_t>(payload, state.rng_have_spare ? 1 : 0);
  put<double>(payload, state.rng_spare);
  put<double>(payload, state.early_best);
  put<std::uint64_t>(payload, state.early_bad_epochs);
  put<double>(payload, state.best_f1);
  put<std::uint64_t>(payload, state.best_epoch);
  put_floats(payload, state.best_weights);
  put<std::uint64_t>(payload, state.epochs.size());
  for (const TrainCheckpointState::EpochSummary& e : state.epochs) {
    put<double>(payload, e.train_loss);
    put<std::uint64_t>(payload, e.tp);
    put<std::uint64_t>(payload, e.fp);
    put<std::uint64_t>(payload, e.tn);
    put<std::uint64_t>(payload, e.fn);
    put<double>(payload, e.wall_seconds);
  }
  store.save(payload);
  opt.save_state(payload);
  const std::string bytes = payload.str();

  std::ostringstream envelope(std::ios::binary);
  put<std::uint32_t>(envelope, kCheckpointMagic);
  put<std::uint32_t>(envelope, kCheckpointVersion);
  put<std::uint64_t>(envelope, bytes.size());
  put<std::uint32_t>(envelope, crc32(bytes.data(), bytes.size()));
  envelope.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  return envelope.str();
}

namespace {

/// Validate the envelope and return the payload. Shared by the real
/// deserializer and latest_checkpoint's candidate filter.
std::string checked_payload(const std::string& bytes) {
  std::istringstream is(bytes, std::ios::binary);
  std::uint32_t magic = 0, version = 0;
  is.read(reinterpret_cast<char*>(&magic), sizeof(magic));
  is.read(reinterpret_cast<char*>(&version), sizeof(version));
  if (!is.good() || magic != kCheckpointMagic)
    throw CheckpointError("not a trkx checkpoint (bad magic)");
  if (version != kCheckpointVersion) {
    std::ostringstream os;
    os << "unsupported checkpoint version " << version << " (expected "
       << kCheckpointVersion << ")";
    throw CheckpointError(os.str());
  }
  std::uint64_t size = 0;
  std::uint32_t crc_expect = 0;
  is.read(reinterpret_cast<char*>(&size), sizeof(size));
  is.read(reinterpret_cast<char*>(&crc_expect), sizeof(crc_expect));
  if (!is.good() || size > kMaxPayloadBytes)
    throw CheckpointError("checkpoint header corrupt");
  std::string payload(size, '\0');
  is.read(payload.data(), static_cast<std::streamsize>(size));
  if (!is.good() || is.gcount() != static_cast<std::streamsize>(size))
    throw CheckpointError("checkpoint payload truncated");
  const std::uint32_t crc_got = crc32(payload.data(), payload.size());
  if (crc_got != crc_expect) {
    std::ostringstream os;
    os << "checkpoint CRC mismatch (stored " << crc_expect << ", computed "
       << crc_got << ")";
    throw CheckpointError(os.str());
  }
  return payload;
}

}  // namespace

TrainCheckpointState deserialize_checkpoint(const std::string& bytes,
                                            ParameterStore& store,
                                            Adam& opt) {
  const std::string payload = checked_payload(bytes);
  std::istringstream is(payload, std::ios::binary);
  TrainCheckpointState state;
  state.fingerprint = get<std::uint64_t>(is);
  state.next_epoch = get<std::uint64_t>(is);
  state.global_step = get<std::uint64_t>(is);
  state.rng_state = get<std::uint64_t>(is);
  state.rng_have_spare = get<std::uint8_t>(is) != 0;
  state.rng_spare = get<double>(is);
  state.early_best = get<double>(is);
  state.early_bad_epochs = get<std::uint64_t>(is);
  state.best_f1 = get<double>(is);
  state.best_epoch = get<std::uint64_t>(is);
  state.best_weights = get_floats(is);
  const auto num_epochs = get<std::uint64_t>(is);
  if (num_epochs > kMaxPayloadBytes / sizeof(TrainCheckpointState::EpochSummary))
    throw CheckpointError("checkpoint payload corrupt (epoch count)");
  state.epochs.resize(num_epochs);
  for (TrainCheckpointState::EpochSummary& e : state.epochs) {
    e.train_loss = get<double>(is);
    e.tp = get<std::uint64_t>(is);
    e.fp = get<std::uint64_t>(is);
    e.tn = get<std::uint64_t>(is);
    e.fn = get<std::uint64_t>(is);
    e.wall_seconds = get<double>(is);
  }
  try {
    store.load(is);
    opt.load_state(is);
  } catch (const CheckpointError&) {
    throw;
  } catch (const Error& e) {
    // ParameterStore::load failures (name/shape mismatches) surface as
    // plain Error; reclassify — in this context they mean the checkpoint
    // belongs to a different model.
    throw CheckpointError(std::string("checkpoint model state rejected: ") +
                          e.what());
  }
  return state;
}

TrainCheckpointState read_checkpoint(const std::string& path,
                                     ParameterStore& store, Adam& opt) {
  std::ifstream is(path, std::ios::binary);
  if (!is.good()) throw CheckpointError("cannot open checkpoint " + path);
  std::ostringstream buf(std::ios::binary);
  buf << is.rdbuf();
  if (is.bad()) throw CheckpointError("read failure on checkpoint " + path);
  try {
    return deserialize_checkpoint(buf.str(), store, opt);
  } catch (const CheckpointError& e) {
    throw CheckpointError(path + ": " + e.what());
  }
}

void atomic_write_file(const std::string& path, const std::string& bytes) {
  namespace fs = std::filesystem;
  const fs::path dest(path);
  const fs::path dir = dest.parent_path().empty() ? fs::path(".")
                                                  : dest.parent_path();
  // Unique temp name per (process, call): concurrent writers — e.g. every
  // surviving rank flushing an emergency checkpoint — never collide, and
  // whichever rename lands last wins atomically.
  static std::atomic<std::uint64_t> sequence{0};
  std::ostringstream tmp_name;
  tmp_name << dest.filename().string() << ".tmp." << ::getpid() << "."
           << sequence.fetch_add(1, std::memory_order_relaxed);
  // NOLINT(trkx-div-guard): std::filesystem path join, not a division.
  const fs::path tmp = dir / tmp_name.str();

  {
    Fd fd;
    fd.fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
    if (fd.fd < 0) throw_errno("cannot create", tmp.string());
    std::size_t written = 0;
    while (written < bytes.size()) {
      const ::ssize_t n =
          ::write(fd.fd, bytes.data() + written, bytes.size() - written);
      if (n < 0) {
        if (errno == EINTR) continue;
        const int saved = errno;
        ::unlink(tmp.c_str());
        errno = saved;
        throw_errno("write failed on", tmp.string());
      }
      written += static_cast<std::size_t>(n);
    }
    if (::fsync(fd.fd) != 0) {
      const int saved = errno;
      ::unlink(tmp.c_str());
      errno = saved;
      throw_errno("fsync failed on", tmp.string());
    }
  }
  if (::rename(tmp.c_str(), dest.c_str()) != 0) {
    const int saved = errno;
    ::unlink(tmp.c_str());
    errno = saved;
    throw_errno("rename failed for", dest.string());
  }
  // Persist the directory entry too: without this the rename itself can
  // be lost on power failure.
  Fd dirfd;
  dirfd.fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (dirfd.fd >= 0) (void)::fsync(dirfd.fd);
}

void write_checkpoint_bytes(const std::string& path,
                            const std::string& bytes) {
  fault::inject("checkpoint.write");
  WallTimer timer;
  atomic_write_file(path, bytes);
  metrics().histogram("checkpoint.write_ns").observe(timer.seconds() * 1e9);
  metrics().counter("checkpoint.writes").add(1);
}

void write_checkpoint(const std::string& path,
                      const TrainCheckpointState& state,
                      const ParameterStore& store, const Adam& opt) {
  write_checkpoint_bytes(path, serialize_checkpoint(state, store, opt));
}

std::string checkpoint_path(const std::string& dir,
                            std::uint64_t next_epoch) {
  std::ostringstream os;
  os << dir << "/ckpt-";
  os.width(6);
  os.fill('0');
  os << next_epoch;
  os << ".ckpt";
  return os.str();
}

std::string latest_checkpoint(const std::string& dir) {
  namespace fs = std::filesystem;
  std::error_code ec;
  if (!fs::is_directory(dir, ec)) return "";
  std::string best_path;
  std::uint64_t best_epoch = 0;
  for (const fs::directory_entry& entry : fs::directory_iterator(dir, ec)) {
    if (ec) break;
    const std::string name = entry.path().filename().string();
    if (name.size() < 10 || name.rfind("ckpt-", 0) != 0 ||
        name.substr(name.size() - 5) != ".ckpt")
      continue;
    // Validate the envelope before trusting the filename: a torn write
    // must fall back to the previous good checkpoint, not block resume.
    std::uint64_t epoch = 0;
    try {
      std::ifstream is(entry.path(), std::ios::binary);
      if (!is.good()) continue;
      std::ostringstream buf(std::ios::binary);
      buf << is.rdbuf();
      const std::string payload = checked_payload(buf.str());
      std::istringstream ps(payload, std::ios::binary);
      (void)get<std::uint64_t>(ps);     // fingerprint
      epoch = get<std::uint64_t>(ps);   // next_epoch
    } catch (const Error& e) {
      TRKX_WARN << "checkpoint: skipping invalid " << entry.path().string()
                << ": " << e.what();
      continue;
    }
    if (best_path.empty() || epoch > best_epoch) {
      best_epoch = epoch;
      best_path = entry.path().string();
    }
  }
  return best_path;
}

std::uint64_t checkpoint_fingerprint(const GnnTrainConfig& config,
                                     SamplerKind sampler, int world_size) {
  std::uint64_t h = 0x74726b78636b7074ull;  // "trkxckpt"
  h = mix(h, config.seed);
  h = mix(h, config.batch_size);
  h = mix(h, config.bulk_k);
  h = mix(h, config.shadow.depth);
  h = mix(h, config.shadow.fanout);
  h = mix(h, config.shadow.generic_spgemm ? 1 : 0);
  h = mix(h, static_cast<std::uint64_t>(sampler));
  h = mix(h, static_cast<std::uint64_t>(world_size));
  h = mix_double(h, static_cast<double>(config.lr));
  h = mix_double(h, static_cast<double>(config.pos_weight));
  h = mix_double(h, static_cast<double>(config.grad_clip));
  h = mix(h, config.early_stop_patience);
  h = mix(h, config.keep_best_weights ? 1 : 0);
  h = mix(h, config.evaluate_every_epoch ? 1 : 0);
  h = mix(h, static_cast<std::uint64_t>(config.sync));
  return h;
}

}  // namespace trkx
