#pragma once

#include <memory>

#include "pipeline/embedding.hpp"
#include "pipeline/filter.hpp"
#include "pipeline/gnn_train.hpp"
#include "pipeline/graph_construction.hpp"
#include "pipeline/track_building.hpp"

namespace trkx {

/// Configuration of the full five-stage Exa.TrkX pipeline (Figure 1).
struct PipelineConfig {
  EmbeddingConfig embedding{};
  FrnnConfig frnn{};
  FilterConfig filter{};
  IgnnConfig gnn{};  ///< input dims filled in from the dataset
  GnnTrainConfig gnn_train{};
  TrackBuildConfig track{};
  /// Train/infer the GNN on learned graphs (embedding → FRNN → filter) as
  /// the real pipeline does; false trains directly on the detector's
  /// geometric candidate graphs (the regime of the paper's experiments,
  /// which evaluate the GNN stage in isolation).
  bool use_learned_graphs = true;
};

/// Result of end-to-end inference on one event.
struct PipelineOutput {
  std::vector<TrackCandidate> tracks;
  TrackingMetrics metrics;
  BinaryMetrics edge_metrics;  ///< GNN edge classification on this event
};

/// The complete pipeline: hit embedding → FRNN graph construction → edge
/// filter → Interaction GNN → connected-component track building.
class TrackingPipeline {
 public:
  /// `node_dim`/`edge_dim` are the dataset's feature widths (Table I).
  TrackingPipeline(std::size_t node_dim, std::size_t edge_dim,
                   const PipelineConfig& config);

  /// Train every stage in order on `train_events`; the GNN additionally
  /// monitors `val_events`. Returns the GNN's training record.
  TrainResult fit(const std::vector<Event>& train_events,
                  const std::vector<Event>& val_events);

  /// Run all five stages on a fresh event (its candidate graph is rebuilt
  /// from scratch when use_learned_graphs is set).
  PipelineOutput reconstruct(const Event& event) const;

  /// Stage-resolved inference API for the serving layer (src/serve): the
  /// same computation as reconstruct(), split so a caller can check a
  /// request deadline between stages and degrade stages individually.
  /// embed_stage re-embeds the hits and rebuilds the FRNN candidate graph
  /// in place (a no-op when use_learned_graphs is false); filter_stage
  /// prunes with the configured cut times `threshold_scale` (> 1 = a
  /// coarser cut keeping fewer edges); gnn_stage scores the surviving
  /// edges; build_stage walks them into track candidates.
  void embed_stage(Event& event) const;
  std::size_t filter_stage(Event& event, float threshold_scale) const;
  std::vector<float> gnn_stage(const Event& event) const;
  std::vector<TrackCandidate> build_stage(
      const Event& event, const std::vector<float>& scores) const;

  /// Stage access for examples and tests.
  EmbeddingModel& embedding() { return *embedding_; }
  FilterModel& filter() { return *filter_; }
  GnnModel& gnn() { return *gnn_; }
  const PipelineConfig& config() const { return config_; }

  /// Persist / restore all three trained stages plus the feature
  /// normalisation envelope. The receiving pipeline must have been
  /// constructed with the same configuration.
  void save(std::ostream& os) const;
  void load(std::istream& is);

 private:
  /// Apply stages 1–3 to an event copy: re-embed, rebuild the FRNN graph,
  /// filter edges. No-op when use_learned_graphs is false.
  Event prepare_event(const Event& event) const;

  PipelineConfig config_;
  std::size_t node_dim_;
  std::size_t edge_dim_;
  FeatureScales scales_;
  std::unique_ptr<EmbeddingModel> embedding_;
  std::unique_ptr<FilterModel> filter_;
  std::unique_ptr<GnnModel> gnn_;
};

}  // namespace trkx
