#pragma once

#include <vector>

#include "detector/generator.hpp"
#include "graph/components.hpp"
#include "util/annotations.hpp"

namespace trkx {

/// Stage 5 of the Exa.TrkX pipeline: threshold the GNN edge scores, drop
/// sub-threshold edges, and read track candidates off the connected
/// components of what remains.
struct TrackBuildConfig {
  float edge_threshold = 0.5f;
  std::size_t min_hits = 3;  ///< candidates with fewer hits are discarded
};

/// One reconstructed track candidate.
struct TrackCandidate {
  std::vector<std::uint32_t> hits;  ///< hit indices, ascending
  /// Majority truth particle among the hits (−1 if none reaches 50%).
  std::int32_t matched_particle = -1;
  double majority_fraction = 0.0;  ///< fraction of hits from that particle
};

/// Track-level quality measures (the physics figures of merit).
struct TrackingMetrics {
  std::size_t reconstructable = 0;  ///< truth particles with ≥ min_hits hits
  std::size_t matched = 0;          ///< of those, reconstructed correctly
  std::size_t candidates = 0;
  std::size_t fake_candidates = 0;  ///< candidates matched to no particle

  double efficiency() const {
    return reconstructable == 0
               ? 0.0
               : static_cast<double>(matched) /
                     static_cast<double>(reconstructable);
  }
  double fake_rate() const {
    return candidates == 0 ? 0.0
                           : static_cast<double>(fake_candidates) /
                                 static_cast<double>(candidates);
  }
  void merge(const TrackingMetrics& other);
};

/// Build candidates from per-edge scores. A candidate matches a particle
/// under the double-majority rule: >50 % of the candidate's hits belong to
/// the particle AND the candidate contains >50 % of the particle's hits.
/// Inference stage 5: TRKX_HOT — no allocation/blocking in its closure.
TRKX_HOT std::vector<TrackCandidate> build_tracks(
    const Event& event, const std::vector<float>& edge_scores,
    const TrackBuildConfig& config);

/// Score candidates against truth.
TrackingMetrics score_tracks(const Event& event,
                             const std::vector<TrackCandidate>& candidates,
                             const TrackBuildConfig& config);

}  // namespace trkx
