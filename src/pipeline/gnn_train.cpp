#include "pipeline/gnn_train.hpp"

#include <algorithm>
#include <array>
#include <filesystem>
#include <thread>

#include "obs/manifest.hpp"
#include "obs/metrics.hpp"
#include "obs/phase.hpp"
#include "obs/snapshot.hpp"
#include "obs/trace.hpp"
#include "pipeline/checkpoint.hpp"
#include "tensor/plan.hpp"
#include "tensor/pool.hpp"
#include "util/error.hpp"
#include "util/fault.hpp"
#include "util/log.hpp"
#include "util/prefetch.hpp"
#include "util/thread_pool.hpp"

namespace trkx {

GnnModel::GnnModel(const IgnnConfig& cfg, std::uint64_t seed) : config(cfg) {
  Rng rng(seed);
  gnn = std::make_unique<InteractionGnn>(store, cfg, rng);
}

double TrainResult::total_phase(const std::string& phase) const {
  double s = 0.0;
  for (const auto& e : epochs) s += e.timers.get(phase);
  return s;
}

const EpochRecord& TrainResult::last() const {
  TRKX_CHECK(!epochs.empty());
  return epochs.back();
}

BinaryMetrics evaluate_edges(const GnnModel& model,
                             const std::vector<Event>& events,
                             float threshold, std::size_t threads) {
  TRKX_TRACE_SPAN("eval", "phase");
  const std::size_t n = events.size();
  const std::size_t hw =
      std::max<std::size_t>(1, std::thread::hardware_concurrency());
  if (threads == 0) threads = std::min(n, hw);
  const auto score_event = [&](const Event& event, BinaryMetrics& out) {
    if (event.graph.num_edges() == 0) return;
    const std::vector<float> scores = model.gnn->predict(
        event.node_features, event.edge_features, event.graph);
    for (std::size_t e = 0; e < scores.size(); ++e)
      out.add(scores[e] >= threshold, event.edge_labels[e] != 0);
  };
  BinaryMetrics metrics;
  if (threads <= 1 || n <= 1) {
    for (const Event& event : events) score_event(event, metrics);
    return metrics;
  }
  // Score events concurrently, then merge counts in event order (merge is
  // integer sums, so the result matches the serial path exactly).
  std::vector<BinaryMetrics> per_event(n);
  ThreadPool pool(std::min(threads, n));
  pool.parallel_for(
      n, [&](std::size_t i) { score_event(events[i], per_event[i]); });
  for (const BinaryMetrics& m : per_event) metrics.merge(m);
  return metrics;
}

float auto_pos_weight(const std::vector<Event>& events) {
  std::size_t pos = 0, total = 0;
  for (const Event& e : events) {
    for (char l : e.edge_labels) pos += (l != 0);
    total += e.edge_labels.size();
  }
  if (pos == 0 || total == pos) return 1.0f;
  const float w = static_cast<float>(total - pos) / static_cast<float>(pos);
  return std::clamp(w, 1.0f, 20.0f);
}

std::size_t full_graph_memory_estimate(const IgnnConfig& config,
                                       const Event& event) {
  // Forward activations (retained for backprop) plus roughly 2× again for
  // gradients and transient workspace.
  const std::size_t activation_floats = ignn_activation_estimate(
      config, event.num_hits(), event.num_edges());
  return activation_floats * sizeof(float) * 3;
}

bool fits_memory_budget(const GnnTrainConfig& config, const IgnnConfig& gnn,
                        const Event& event) {
  if (event.num_edges() > config.max_edges) return false;
  if (config.memory_budget_bytes > 0 &&
      full_graph_memory_estimate(gnn, event) > config.memory_budget_bytes)
    return false;
  return true;
}

namespace {

/// Tensors for one gradient step on a (sub)graph.
struct StepData {
  Matrix node_features;
  Matrix edge_features;
  std::vector<float> labels;
};

StepData gather_sample(const Event& event, const ShadowSample& sample) {
  StepData d;
  d.node_features = row_gather(event.node_features, sample.sub.vertex_map);
  d.edge_features = row_gather(event.edge_features, sample.sub.edge_map);
  d.labels.reserve(sample.sub.edge_map.size());
  for (std::uint32_t e : sample.sub.edge_map)
    d.labels.push_back(event.edge_labels[e] != 0 ? 1.0f : 0.0f);
  return d;
}

/// zero_grad + forward + loss + backward; returns the loss value. Does NOT
/// step the optimizer (DDP synchronises gradients in between).
double compute_gradients(GnnModel& model, Optimizer& opt, const Graph& graph,
                         const StepData& data, float pos_weight) {
  opt.zero_grad();
  if (graph.num_edges() == 0) return 0.0;
  // Tape allocations inside this scope repeat exactly whenever the step
  // shapes repeat; the planner then serves them from one arena instead of
  // the pool (record on first sight of a signature, verified replay
  // after). Parameter gradients escape the scope and stay pool-served.
  MemoryPlanner::Scope plan_scope(MemoryPlanner::fingerprint(
      {graph.num_vertices(), graph.num_edges(), data.node_features.cols(),
       data.edge_features.cols()}));
  TapeContext ctx;
  Var loss;
  {
    TRKX_TRACE_SPAN("forward", "phase");
    Var logits = model.gnn->forward(ctx, data.node_features,
                                    data.edge_features, graph);
    loss = ctx.tape().bce_with_logits(logits, data.labels, {}, pos_weight);
  }
  {
    TRKX_TRACE_SPAN("backward", "phase");
    ctx.backward(loss);
  }
  return loss.value()(0, 0);
}

void apply_step(Optimizer& opt, float grad_clip) {
  if (grad_clip > 0.0f) opt.clip_grad_norm(grad_clip);
  opt.step();
}

/// Global minibatches for one event, identical on every rank (shared seed).
std::vector<std::vector<std::uint32_t>> event_minibatches(
    const Event& event, std::size_t batch_size, Rng& rng) {
  return make_minibatches(event.num_hits(), batch_size, rng);
}

}  // namespace

std::vector<std::uint32_t> shard_batch(const std::vector<std::uint32_t>& batch,
                                       int rank, int size) {
  TRKX_CHECK(size > 0 && rank >= 0 && rank < size);
  const std::size_t n = batch.size();
  const std::size_t r = static_cast<std::size_t>(rank);
  const std::size_t p = static_cast<std::size_t>(size);
  TRKX_CHECK(p > 0);
  // Balanced contiguous partition: ceil-sized shards for the first
  // n mod p ranks, floor-sized for the rest. Unlike all-ceil chunking,
  // this never starves the trailing ranks (n = p + 1 used to give rank
  // p−1 nothing while rank 0 got two), and small batches (n < p) spread
  // one element to each of the first n ranks.
  const std::size_t base = n / p;
  const std::size_t rem = n % p;
  const std::size_t begin = r * base + std::min(r, rem);
  const std::size_t end = begin + base + (r < rem ? 1 : 0);
  return {batch.begin() + static_cast<std::ptrdiff_t>(begin),
          batch.begin() + static_cast<std::ptrdiff_t>(end)};
}

TrainResult train_full_graph(GnnModel& model, const std::vector<Event>& train,
                             const std::vector<Event>& val,
                             const GnnTrainConfig& config) {
  TRKX_CHECK(!train.empty());
  TrainResult result;
  WallTimer total_timer;
  Adam opt(model.store, AdamOptions{.lr = config.lr});
  const float pos_weight =
      config.pos_weight > 0.0f ? config.pos_weight : auto_pos_weight(train);
  // The full-graph baseline is single-rank with no prefetch and no
  // mid-epoch resume, so sequential draws are confined to this function.
  // NOLINT(trkx-rng-stream): single-rank baseline, sequential by design
  Rng rng(config.seed);
  EarlyStopping early(std::max<std::size_t>(config.early_stop_patience, 1));
  std::size_t global_step = 0;
  std::vector<float> best_weights;
  double best_f1 = -1.0;

  for (std::size_t epoch = 0; epoch < config.epochs; ++epoch) {
    TRKX_TRACE_SPAN("epoch", "train");
    EpochRecord record;
    WallTimer epoch_timer;
    double loss_sum = 0.0;
    std::size_t steps = 0;
    std::vector<std::uint32_t> order(train.size());
    for (std::size_t i = 0; i < order.size(); ++i)
      order[i] = static_cast<std::uint32_t>(i);
    rng.shuffle(order);
    for (std::uint32_t ei : order) {
      const Event& event = train[ei];
      if (!fits_memory_budget(config, model.config, event)) {
        // The paper's memory-wall behaviour: the graph would not fit on
        // the GPU, so the original pipeline skips it entirely.
        if (epoch == 0) ++result.skipped_graphs;
        continue;
      }
      if (event.num_edges() == 0) continue;
      PhaseSpan phase(record.timers, "train");
      StepData data;
      data.node_features = event.node_features;
      data.edge_features = event.edge_features;
      data.labels.assign(event.edge_labels.begin(), event.edge_labels.end());
      loss_sum += compute_gradients(model, opt, event.graph, data, pos_weight);
      if (config.scheduler) config.scheduler->apply(opt, global_step);
      apply_step(opt, config.grad_clip);
      ++global_step;
      ++steps;
    }
    record.train_loss = steps == 0 ? 0.0 : loss_sum / static_cast<double>(steps);
    if (config.evaluate_every_epoch)
      record.val = evaluate_edges(model, val, config.eval_threshold);
    record.wall_seconds = epoch_timer.seconds();
    const double val_f1 = record.val.f1();
    metrics().counter("train.epochs").add(1);
    metrics().gauge("train.loss").set(record.train_loss);
    metrics().gauge("val.precision").set(record.val.precision());
    metrics().gauge("val.recall").set(record.val.recall());
    metrics().histogram("epoch.wall_s").observe(record.wall_seconds);
    result.epochs.push_back(std::move(record));
    TRKX_DEBUG << "full-graph epoch " << epoch << " loss "
               << result.epochs.back().train_loss << " valP "
               << result.epochs.back().val.precision() << " valR "
               << result.epochs.back().val.recall();
    result.selected_epoch = epoch;
    if (config.keep_best_weights && config.evaluate_every_epoch &&
        val_f1 > best_f1) {
      best_f1 = val_f1;
      best_weights = model.store.flatten_values();
      result.selected_epoch = epoch;
    }
    if (config.early_stop_patience > 0 && config.evaluate_every_epoch) {
      early.update(val_f1);
      if (early.should_stop()) break;
    }
  }
  if (config.keep_best_weights && !best_weights.empty()) {
    model.store.unflatten_values(best_weights);
    // selected_epoch already points at the best epoch.
    for (std::size_t e = 0; e < result.epochs.size(); ++e)
      if (result.epochs[e].val.f1() == best_f1) {
        result.selected_epoch = e;
        break;
      }
  }
  result.total_seconds = total_timer.seconds();
  return result;
}

namespace {

/// Shared epoch loop for single-process and DDP ShaDow training. The rank
/// abstraction collapses to rank 0 of 1 in the single-process case.
struct ShadowTrainContext {
  GnnModel* model;
  Adam* opt;
  const std::vector<Event>* train;
  const std::vector<Event>* val;
  const GnnTrainConfig* config;
  SamplerKind sampler_kind;
  float pos_weight;
  Communicator* comm = nullptr;  // null = single process
  TrainResult* result = nullptr; // written by rank 0 only
};

/// One prefetchable unit of sampling work: a single minibatch for the
/// reference sampler, one bulk-k chunk for the matrix sampler. Built
/// serially at epoch start (so the shared batch_rng sequence is identical
/// on every rank), then produced in any order by the prefetch pipeline.
struct SampleUnit {
  std::uint32_t ei = 0;         ///< event index into the training set
  std::size_t first_batch = 0;  ///< event-local index of batches.front()
  std::vector<std::vector<std::uint32_t>> batches;  ///< my local shards
};

/// A unit after sampling and gathering — everything forward/backward
/// needs. Entries with empty roots are empty rank shards that still
/// participate in the gradient all-reduce.
struct PreparedUnit {
  std::uint32_t ei = 0;
  std::vector<ShadowSample> samples;
  std::vector<StepData> data;  ///< parallel to samples
};

/// Domain-separation tag for the per-(rank, epoch, event, batch) sampling
/// streams, so they never collide with other uses of config.seed.
constexpr std::uint64_t kSampleStreamTag = 0x53414d504c453344ull;

/// Root's validation counts + epoch wall time, broadcast so every rank
/// tracks model-selection / early-stop / checkpoint state identically
/// (identical integer counts → identical F1 → identical decisions, no
/// flag collectives needed). Counts travel as three 16-bit limbs per
/// value — each limb is a small integer, exactly representable in the
/// float payload of Communicator::broadcast — so they survive the trip
/// bit-exactly for anything below 2^48 edges.
constexpr std::size_t kValPacketFloats = 13;

void pack_count(std::uint64_t v, float* out) {
  out[0] = static_cast<float>(v & 0xffffu);
  out[1] = static_cast<float>((v >> 16) & 0xffffu);
  out[2] = static_cast<float>((v >> 32) & 0xffffu);
}

std::uint64_t unpack_count(const float* in) {
  return static_cast<std::uint64_t>(in[0]) |
         (static_cast<std::uint64_t>(in[1]) << 16) |
         (static_cast<std::uint64_t>(in[2]) << 32);
}

std::array<float, kValPacketFloats> pack_val(const BinaryMetrics& val,
                                             double wall_seconds) {
  std::array<float, kValPacketFloats> packet{};
  pack_count(val.true_positives, packet.data());
  pack_count(val.false_positives, packet.data() + 3);
  pack_count(val.true_negatives, packet.data() + 6);
  pack_count(val.false_negatives, packet.data() + 9);
  packet[12] = static_cast<float>(wall_seconds);
  return packet;
}

void unpack_val(const std::array<float, kValPacketFloats>& packet,
                BinaryMetrics& val, double& wall_seconds) {
  val.true_positives = static_cast<std::size_t>(unpack_count(packet.data()));
  val.false_positives =
      static_cast<std::size_t>(unpack_count(packet.data() + 3));
  val.true_negatives =
      static_cast<std::size_t>(unpack_count(packet.data() + 6));
  val.false_negatives =
      static_cast<std::size_t>(unpack_count(packet.data() + 9));
  wall_seconds = static_cast<double>(packet[12]);
}

void run_shadow_training(ShadowTrainContext ctx) {
  const GnnTrainConfig& config = *ctx.config;
  const int rank = ctx.comm ? ctx.comm->rank() : 0;
  const int world = ctx.comm ? ctx.comm->size() : 1;
  const bool is_root = rank == 0;
  WallTimer total_timer;

  // Per-event samplers, built once (adjacency precomputation dominates).
  std::vector<std::unique_ptr<ShadowSampler>> ref_samplers;
  std::vector<std::unique_ptr<MatrixShadowSampler>> mat_samplers;
  for (const Event& e : *ctx.train) {
    if (ctx.sampler_kind == SamplerKind::kReference)
      ref_samplers.push_back(
          std::make_unique<ShadowSampler>(e.graph, config.shadow));
    else
      mat_samplers.push_back(
          std::make_unique<MatrixShadowSampler>(e.graph, config.shadow));
  }

  // Batch order must be identical across ranks: derived from the shared
  // config seed. Sampling randomness comes from independent streams keyed
  // by (rank, epoch, event, batch) — see Rng::stream — so the prefetch
  // pipeline can sample units in any order, on any thread, and still
  // reproduce the serial run bit for bit.
  // Deliberately shared-sequential: every rank must shuffle the batch order
  // identically, and the epoch-boundary state is checkpointed (PR 5).
  // NOLINT(trkx-rng-stream): rank-shared shuffle, checkpointed for resume
  Rng batch_rng(config.seed);
  EarlyStopping early(std::max<std::size_t>(config.early_stop_patience, 1));
  std::size_t global_step = 0;
  std::vector<float> best_weights;
  double best_f1 = -1.0;
  std::size_t best_epoch = 0;

  // Checkpoint bookkeeping. Every rank serializes the epoch-boundary state
  // blob (replicas are bitwise identical, so the blobs are too); rank 0
  // writes the periodic files and every survivor of a collective timeout
  // writes the retained blob as an emergency checkpoint.
  const bool checkpointing = !config.checkpoint_dir.empty();
  const std::uint64_t fingerprint =
      checkpoint_fingerprint(config, ctx.sampler_kind, world);
  if (is_root) {
    // Stamp the run's config identity into every obs artifact (bench
    // JSON, trace metadata, time-series header) and bridge the pool stats
    // into the snapshotter — obs cannot include tensor/, so the gauge is
    // published from here via a sampler hook.
    set_run_fingerprint(fingerprint);
    MetricsSnapshotter::global().add_sampler("tensor_pool", [] {
      const TensorPool::Stats pstats = TensorPool::stats();
      metrics().gauge("pool.bytes_cached")
          .set(static_cast<double>(pstats.bytes_cached));
      metrics().gauge("pool.hit_rate").set(pstats.hit_rate());
      // When the static memory plan bypasses the pool, the step's working
      // set
      // moves into plan arenas — report it so occupancy stays honest.
      const MemoryPlanner::Stats mstats = MemoryPlanner::stats();
      metrics().gauge("memplan.arena_bytes")
          .set(static_cast<double>(mstats.arena_bytes));
      metrics().gauge("memplan.plan_reuses")
          .set(static_cast<double>(mstats.plan_reuses));
      metrics().gauge("memplan.replans")
          .set(static_cast<double>(mstats.replans));
    });
  }
  std::size_t start_epoch = 0;
  std::vector<TrainCheckpointState::EpochSummary> summaries;
  std::string boundary_blob;
  std::uint64_t boundary_next_epoch = 0;
  if (checkpointing) {
    std::error_code ec;
    std::filesystem::create_directories(config.checkpoint_dir, ec);
    if (config.resume) {
      const std::string ckpt = latest_checkpoint(config.checkpoint_dir);
      if (!ckpt.empty()) {
        const TrainCheckpointState st =
            read_checkpoint(ckpt, ctx.model->store, *ctx.opt);
        if (st.fingerprint != fingerprint)
          throw CheckpointError(
              ckpt + ": written by a different run configuration "
                     "(fingerprint mismatch); resume cannot be bit-identical");
        batch_rng.restore(st.rng_state, st.rng_have_spare, st.rng_spare);
        global_step = st.global_step;
        early.restore(st.early_best, st.early_bad_epochs);
        best_f1 = st.best_f1;
        best_epoch = static_cast<std::size_t>(st.best_epoch);
        best_weights = st.best_weights;
        start_epoch = static_cast<std::size_t>(st.next_epoch);
        summaries = st.epochs;
        if (is_root) {
          for (const auto& s : summaries) {
            EpochRecord r;
            r.train_loss = s.train_loss;
            r.val.true_positives = static_cast<std::size_t>(s.tp);
            r.val.false_positives = static_cast<std::size_t>(s.fp);
            r.val.true_negatives = static_cast<std::size_t>(s.tn);
            r.val.false_negatives = static_cast<std::size_t>(s.fn);
            r.wall_seconds = s.wall_seconds;
            ctx.result->epochs.push_back(std::move(r));
          }
          if (!summaries.empty())
            ctx.result->selected_epoch = summaries.size() - 1;
          TRKX_INFO << "resumed from " << ckpt << " at epoch " << start_epoch
                    << " (step " << global_step << ")";
          metrics().counter("checkpoint.resumes").add(1);
        }
      }
    }
  }

  // Producer threads for the sampler↔trainer overlap, reused across
  // epochs. Depth 0 keeps everything on this thread (serial reference).
  std::unique_ptr<ThreadPool> producer;
  if (config.prefetch_depth > 0)
    producer = std::make_unique<ThreadPool>(
        std::max<std::size_t>(1, config.prefetch_threads));

  try {
  for (std::size_t epoch = start_epoch; epoch < config.epochs; ++epoch) {
    TRKX_TRACE_SPAN("epoch", "train");
    fault::inject("train.epoch", rank);
    EpochRecord record;
    WallTimer epoch_timer;
    double loss_sum = 0.0;
    std::size_t steps = 0;

    std::vector<std::uint32_t> order(ctx.train->size());
    for (std::size_t i = 0; i < order.size(); ++i)
      order[i] = static_cast<std::uint32_t>(i);
    batch_rng.shuffle(order);

    // Epoch plan: every unit of sampling work, in consumption order.
    std::vector<SampleUnit> units;
    for (std::uint32_t ei : order) {
      const Event& event = (*ctx.train)[ei];
      if (event.num_hits() == 0) continue;
      const auto global_batches =
          event_minibatches(event, config.batch_size, batch_rng);
      std::vector<std::vector<std::uint32_t>> local;
      local.reserve(global_batches.size());
      for (const auto& b : global_batches)
        local.push_back(world > 1 ? shard_batch(b, rank, world) : b);

      std::size_t bi = 0;
      while (bi < local.size()) {
        const std::size_t k =
            ctx.sampler_kind == SamplerKind::kReference
                ? 1
                : std::min(config.bulk_k, local.size() - bi);
        SampleUnit unit;
        unit.ei = ei;
        unit.first_batch = bi;
        unit.batches.assign(
            local.begin() + static_cast<std::ptrdiff_t>(bi),
            local.begin() + static_cast<std::ptrdiff_t>(bi + k));
        units.push_back(std::move(unit));
        bi += k;
      }
    }

    // Producer: sample + gather one unit. Runs on the prefetch thread
    // when depth > 0, inline inside queue.get() when depth == 0.
    const auto produce = [&, epoch](std::size_t u) {
      TRKX_TRACE_SPAN("prefetch.produce", "prefetch");
      const SampleUnit& unit = units[u];
      const Event& event = (*ctx.train)[unit.ei];
      Rng rng = Rng::stream(config.seed ^ kSampleStreamTag,
                            static_cast<std::uint64_t>(rank), epoch,
                            unit.ei, unit.first_batch);
      PreparedUnit out;
      out.ei = unit.ei;
      {
        PhaseSpan phase(record.timers, "sample");
        if (ctx.sampler_kind == SamplerKind::kReference) {
          if (!unit.batches.front().empty())
            out.samples.push_back(
                ref_samplers[unit.ei]->sample(unit.batches.front(), rng));
          else
            out.samples.emplace_back();
        } else {
          // Bulk-sample the non-empty shards of the chunk in one stacked
          // pass; empty shards keep an empty sample slot.
          std::vector<std::vector<std::uint32_t>> chunk;
          std::vector<std::size_t> chunk_pos;
          for (std::size_t j = 0; j < unit.batches.size(); ++j) {
            if (!unit.batches[j].empty()) {
              chunk.push_back(unit.batches[j]);
              chunk_pos.push_back(j);
            }
          }
          std::vector<ShadowSample> sampled;
          if (!chunk.empty())
            sampled = mat_samplers[unit.ei]->sample_bulk(chunk, rng);
          out.samples.resize(unit.batches.size());
          for (std::size_t j = 0; j < chunk.size(); ++j)
            out.samples[chunk_pos[j]] = std::move(sampled[j]);
        }
      }
      {
        PhaseSpan phase(record.timers, "gather");
        out.data.resize(out.samples.size());
        for (std::size_t j = 0; j < out.samples.size(); ++j)
          if (!out.samples[j].roots.empty())
            out.data[j] = gather_sample(event, out.samples[j]);
      }
      return out;
    };

    {
      PrefetchQueue<PreparedUnit> queue(producer.get(),
                                        config.prefetch_depth, units.size(),
                                        produce);
      for (std::size_t u = 0; u < units.size(); ++u) {
        PreparedUnit prepared;
        {
          TRKX_TRACE_SPAN("prefetch.get", "prefetch");
          prepared = queue.get(u);
        }
        metrics().gauge("prefetch.depth")
            .set(static_cast<double>(queue.ready_ahead()));
        for (std::size_t j = 0; j < prepared.samples.size(); ++j) {
          const ShadowSample& sample = prepared.samples[j];
          double local_loss = 0.0;
          {
            PhaseSpan phase(record.timers, "train");
            if (!sample.roots.empty()) {
              local_loss = compute_gradients(*ctx.model, *ctx.opt,
                                             sample.sub.graph,
                                             prepared.data[j],
                                             ctx.pos_weight);
            } else {
              ctx.opt->zero_grad();  // empty shard still participates
            }
          }
          if (ctx.comm) {
            PhaseSpan phase(record.timers, "allreduce");
            synchronize_gradients(*ctx.comm, ctx.model->store, config.sync);
          }
          {
            PhaseSpan phase(record.timers, "train");
            if (config.scheduler)
              config.scheduler->apply(*ctx.opt, global_step);
            apply_step(*ctx.opt, config.grad_clip);
          }
          ++global_step;
          loss_sum += local_loss;
          ++steps;
        }
      }

      const auto& ps = queue.stats();
      record.timers.add("prefetch_stall", ps.stall_seconds);
      metrics().histogram("prefetch.stall_s").observe(ps.stall_seconds);
      metrics().gauge("prefetch.occupancy").set(ps.mean_occupancy());
      metrics().counter("prefetch.stalls").add(ps.stalls);
      metrics().counter("prefetch.units").add(ps.gets);
      metrics().counter("prefetch.inline_units").add(ps.inline_runs);
    }

    if (is_root) {
      TRKX_TRACE_SPAN("pool.publish", "pool");
      const TensorPool::Stats pstats = TensorPool::stats();
      metrics().gauge("pool.hit_rate").set(pstats.hit_rate());
      metrics().gauge("pool.hits").set(static_cast<double>(pstats.hits));
      metrics().gauge("pool.misses").set(static_cast<double>(pstats.misses));
      metrics().gauge("pool.bytes_cached")
          .set(static_cast<double>(pstats.bytes_cached));
      const MemoryPlanner::Stats mstats = MemoryPlanner::stats();
      metrics().gauge("memplan.arena_bytes")
          .set(static_cast<double>(mstats.arena_bytes));
      metrics().gauge("memplan.plan_reuses")
          .set(static_cast<double>(mstats.plan_reuses));
      metrics().gauge("memplan.replans")
          .set(static_cast<double>(mstats.replans));
    }

    record.train_loss =
        steps == 0 ? 0.0 : loss_sum / static_cast<double>(steps);
    if (ctx.comm) {
      const double total = ctx.comm->all_reduce_scalar(record.train_loss);
      record.train_loss = total / world;  // NOLINT(trkx-div-guard): world >= 1
    }
    if (is_root && config.evaluate_every_epoch)
      record.val = evaluate_edges(*ctx.model, *ctx.val, config.eval_threshold);
    record.wall_seconds = epoch_timer.seconds();
    if (ctx.comm) {
      if (config.evaluate_every_epoch) {
        // Root's validation counts + wall time, broadcast so every rank
        // holds identical numbers and makes the model-selection /
        // early-stop / checkpoint decisions locally — replacing the old
        // is_best/stop flag collectives. Doubles as the "wait for root
        // evaluation" barrier.
        auto packet = pack_val(record.val, record.wall_seconds);
        ctx.comm->broadcast(std::span<float>(packet.data(), packet.size()), 0);
        unpack_val(packet, record.val, record.wall_seconds);
      } else {
        ctx.comm->barrier();  // ranks wait for root
      }
    }
    // After the broadcast every rank holds root's validation counts, so
    // each decides identically without further collectives.
    const bool have_val = config.evaluate_every_epoch;
    if (config.keep_best_weights && have_val && record.val.f1() > best_f1) {
      // Replicas are identical, so every rank snapshots its own weights.
      best_f1 = record.val.f1();
      best_weights = ctx.model->store.flatten_values();
      best_epoch = epoch;
    }
    bool stop = false;
    if (config.early_stop_patience > 0 && have_val) {
      early.update(record.val.f1());
      stop = early.should_stop();
    }
    if (checkpointing) {
      TrainCheckpointState::EpochSummary summary;
      summary.train_loss = record.train_loss;
      summary.tp = record.val.true_positives;
      summary.fp = record.val.false_positives;
      summary.tn = record.val.true_negatives;
      summary.fn = record.val.false_negatives;
      summary.wall_seconds = record.wall_seconds;
      summaries.push_back(summary);
    }
    if (is_root) {
      TRKX_DEBUG << "shadow epoch " << epoch << " loss " << record.train_loss
                 << " valP " << record.val.precision() << " valR "
                 << record.val.recall();
      metrics().counter("train.epochs").add(1);
      metrics().gauge("train.loss").set(record.train_loss);
      metrics().gauge("val.precision").set(record.val.precision());
      metrics().gauge("val.recall").set(record.val.recall());
      metrics().histogram("epoch.wall_s").observe(record.wall_seconds);
      ctx.result->epochs.push_back(std::move(record));
      ctx.result->selected_epoch = epoch;
    }
    if (checkpointing) {
      // batch_rng is only consumed while building the epoch plan, so its
      // state here is exactly the epoch+1 boundary state.
      TrainCheckpointState st;
      st.fingerprint = fingerprint;
      st.next_epoch = epoch + 1;
      st.global_step = global_step;
      st.rng_state = batch_rng.state();
      st.rng_have_spare = batch_rng.have_spare();
      st.rng_spare = batch_rng.spare_value();
      st.early_best = early.best();
      st.early_bad_epochs = early.epochs_since_best();
      st.best_f1 = best_f1;
      st.best_epoch = best_epoch;
      st.best_weights = best_weights;
      st.epochs = summaries;
      boundary_blob = serialize_checkpoint(st, ctx.model->store, *ctx.opt);
      boundary_next_epoch = epoch + 1;
      if (is_root && (epoch + 1) % std::max<std::size_t>(
                                       config.checkpoint_every, 1) ==
                         0) {
        try {
          write_checkpoint_bytes(
              checkpoint_path(config.checkpoint_dir, boundary_next_epoch),
              boundary_blob);
        } catch (const Error& e) {
          // A failed periodic write degrades durability, not correctness:
          // log, count, keep training.
          metrics().counter("checkpoint.write_failures").add(1);
          TRKX_WARN << "checkpoint write failed (training continues): "
                    << e.what();
        }
      }
    }
    if (stop) break;
  }
  } catch (const CommTimeoutError& e) {
    // A peer died or a collective timed out. Every survivor lands here;
    // each writes the last epoch-boundary blob it retained (the blobs are
    // identical across ranks, and the write is atomic-rename, so
    // concurrent survivors are safe) and unwinds so the process can exit
    // resumable.
    if (checkpointing && !boundary_blob.empty()) {
      try {
        write_checkpoint_bytes(
            checkpoint_path(config.checkpoint_dir, boundary_next_epoch),
            boundary_blob);
        metrics().counter("checkpoint.emergency_writes").add(1);
        TRKX_WARN << "rank " << rank
                  << ": collective timeout — wrote emergency checkpoint for "
                     "epoch "
                  << boundary_next_epoch << ": " << e.what();
      } catch (const Error& werr) {
        metrics().counter("checkpoint.write_failures").add(1);
        TRKX_WARN << "rank " << rank
                  << ": emergency checkpoint write failed: " << werr.what();
      }
    }
    throw;
  }
  if (config.keep_best_weights && !best_weights.empty()) {
    ctx.model->store.unflatten_values(best_weights);
    if (is_root) ctx.result->selected_epoch = best_epoch;
  }
  if (is_root) {
    ctx.result->total_seconds = total_timer.seconds();
    if (ctx.comm) ctx.result->comm = ctx.comm->stats();
  }
}

}  // namespace

TrainResult train_shadow(GnnModel& model, const std::vector<Event>& train,
                         const std::vector<Event>& val,
                         const GnnTrainConfig& config, SamplerKind sampler) {
  TRKX_CHECK(!train.empty());
  TrainResult result;
  Adam opt(model.store, AdamOptions{.lr = config.lr});
  ShadowTrainContext ctx;
  ctx.model = &model;
  ctx.opt = &opt;
  ctx.train = &train;
  ctx.val = &val;
  ctx.config = &config;
  ctx.sampler_kind = sampler;
  ctx.pos_weight =
      config.pos_weight > 0.0f ? config.pos_weight : auto_pos_weight(train);
  ctx.result = &result;
  run_shadow_training(ctx);
  return result;
}

TrainResult train_shadow_ddp(GnnModel& model, const std::vector<Event>& train,
                             const std::vector<Event>& val,
                             const GnnTrainConfig& config,
                             DistRuntime& runtime, SamplerKind sampler) {
  TRKX_CHECK(!train.empty());
  TrainResult result;
  const float pos_weight =
      config.pos_weight > 0.0f ? config.pos_weight : auto_pos_weight(train);

  // One replica per rank, identically initialised from the shared seed.
  std::vector<std::unique_ptr<GnnModel>> replicas;
  std::vector<std::unique_ptr<Adam>> opts;
  for (int r = 0; r < runtime.size(); ++r) {
    replicas.push_back(std::make_unique<GnnModel>(model.config, config.seed));
    opts.push_back(
        std::make_unique<Adam>(replicas.back()->store,
                               AdamOptions{.lr = config.lr}));
  }

  runtime.run([&](Communicator& comm) {
    ShadowTrainContext ctx;
    ctx.model = replicas[static_cast<std::size_t>(comm.rank())].get();
    ctx.opt = opts[static_cast<std::size_t>(comm.rank())].get();
    ctx.train = &train;
    ctx.val = &val;
    ctx.config = &config;
    ctx.sampler_kind = sampler;
    ctx.pos_weight = pos_weight;
    ctx.comm = &comm;
    ctx.result = &result;
    run_shadow_training(ctx);
  });

  model.store.copy_values_from(replicas[0]->store);
  return result;
}

}  // namespace trkx
